module Sim = Wfs_core.Simulator
module Tablefmt = Wfs_util.Tablefmt
module Error = Wfs_util.Error

(* Bechamel's CLOCK_MONOTONIC stub: noalloc, ns since an arbitrary origin.
   Deliberately not Unix.gettimeofday (lint R1): the profiler measures
   durations, never reads wall-clock time, and nothing derived from it
   enters a result table — timings are reporting, not simulation state. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())

type span_record = { name : string; depth : int; seq : int; ns : int }

type t = {
  (* Per-phase accumulators, preallocated: the phase hooks do integer
     stores only (plus the clock read), nothing per-call is allocated. *)
  counts : int array;
  totals : int array;
  maxs : int array;
  starts : int array;
  mutable spans : span_record list;  (* completed, unordered *)
  mutable stack : (string * int * int) list;  (* name, seq, start ns *)
  mutable next_seq : int;
}

let create () =
  {
    counts = Array.make Sim.n_phases 0;
    totals = Array.make Sim.n_phases 0;
    maxs = Array.make Sim.n_phases 0;
    starts = Array.make Sim.n_phases 0;
    spans = [];
    stack = [];
    next_seq = 0;
  }

let hooks t =
  {
    Sim.phase_begin = (fun p -> t.starts.(p) <- now_ns ());
    phase_end =
      (fun p ->
        let dt = now_ns () - t.starts.(p) in
        t.counts.(p) <- t.counts.(p) + 1;
        t.totals.(p) <- t.totals.(p) + dt;
        if dt > t.maxs.(p) then t.maxs.(p) <- dt);
  }

let span t name f =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let depth = List.length t.stack in
  t.stack <- (name, seq, now_ns ()) :: t.stack;
  Fun.protect
    ~finally:(fun () ->
      match t.stack with
      | (n, s, start) :: rest ->
          t.stack <- rest;
          t.spans <- { name = n; depth; seq = s; ns = now_ns () - start } :: t.spans
      | [] -> Error.sim_fault ~who:"Profiler.span" "span stack underflow")
    f

let phase_count t p = t.counts.(p)
let phase_total_ns t p = t.totals.(p)
let phase_max_ns t p = t.maxs.(p)
let total_ns t = Array.fold_left ( + ) 0 t.totals

let spans t =
  List.sort (fun a b -> Int.compare a.seq b.seq) t.spans

let per f n = if n = 0 then 0. else float_of_int f /. float_of_int n

let phase_table ?(title = "profile: slot phases") ~slots t =
  let table =
    Tablefmt.create ~title
      ~columns:[ "phase"; "calls"; "total ms"; "ns/call"; "ns/slot"; "max ns" ]
  in
  for p = 0 to Sim.n_phases - 1 do
    Tablefmt.add_row table
      [
        Sim.phase_name p;
        string_of_int t.counts.(p);
        Tablefmt.cell_of_float ~decimals:3 (float_of_int t.totals.(p) /. 1e6);
        Tablefmt.cell_of_float ~decimals:1 (per t.totals.(p) t.counts.(p));
        Tablefmt.cell_of_float ~decimals:1 (per t.totals.(p) slots);
        string_of_int t.maxs.(p);
      ]
  done;
  let all = total_ns t in
  Tablefmt.add_row table
    [
      "all";
      string_of_int (Array.fold_left ( + ) 0 t.counts);
      Tablefmt.cell_of_float ~decimals:3 (float_of_int all /. 1e6);
      "";
      Tablefmt.cell_of_float ~decimals:1 (per all slots);
      "";
    ];
  table

let span_table ?(title = "profile: stages") t =
  let table = Tablefmt.create ~title ~columns:[ "stage"; "ms" ] in
  List.iter
    (fun s ->
      Tablefmt.add_row table
        [
          String.make (2 * s.depth) ' ' ^ s.name;
          Tablefmt.cell_of_float ~decimals:3 (float_of_int s.ns /. 1e6);
        ])
    (spans t);
  table
