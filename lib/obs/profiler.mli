(** Span-based self-profiler over a monotonic clock.

    Two granularities share one accumulator object:

    - {b slot phases}: {!hooks} produces the
      {!Wfs_core.Simulator.profiler_hooks} pair; the simulator calls them
      around each phase of each slot (arrivals, predict, drops, select,
      transmit, slot-end).  The hooks only read the clock and store into
      preallocated per-phase arrays — no allocation per call — but a clock
      read per phase is still real overhead, so profiling is strictly
      opt-in and never on in measurement runs;
    - {b stages}: {!span} wraps coarse runner/bench stages (load, sweep,
      render) and may nest; each completed span records its name, nesting
      depth and duration.

    The clock is bechamel's [CLOCK_MONOTONIC] stub — durations only,
    never wall-clock time (lint R1); nothing derived from it enters a
    result table.  A profiler instance is single-domain: share one per
    worker, not one across workers. *)

type t

val create : unit -> t

val hooks : t -> Wfs_core.Simulator.profiler_hooks
(** Phase hooks bound to this accumulator.  Pass to
    [Simulator.config ~profiler] / [Mac_sim.config ~profiler]. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()]; nesting is recorded via depth.  The span
    is recorded even when [f] raises (the exception propagates). *)

val phase_count : t -> int -> int
val phase_total_ns : t -> int -> int
val phase_max_ns : t -> int -> int
(** Indexed by the {!Wfs_core.Simulator} phase ids. *)

val total_ns : t -> int
(** Sum over all phases. *)

type span_record = { name : string; depth : int; seq : int; ns : int }

val spans : t -> span_record list
(** Completed spans in start order. *)

val phase_table : ?title:string -> slots:int -> t -> Wfs_util.Tablefmt.t
(** Per-phase calls / total ms / ns-per-call / ns-per-slot / max, plus an
    [all] summary row; [slots] is the simulated slot count the per-slot
    column divides by. *)

val span_table : ?title:string -> t -> Wfs_util.Tablefmt.t
(** One row per completed span, indented two spaces per nesting level. *)
