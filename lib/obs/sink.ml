module Json = Wfs_util.Json
module Error = Wfs_util.Error

type format = Jsonl | Csv

type t = {
  oc : out_channel;
  format : format;
  n_flows : int;
  buf : Buffer.t;
  mutable written : int;
  mutable closed : bool;
}

let jsonl ~path (hdr : Trace.header) =
  let oc = open_out_bin path in
  output_string oc (Trace.header_to_string hdr);
  output_char oc '\n';
  {
    oc;
    format = Jsonl;
    n_flows = hdr.Trace.n_flows;
    buf = Buffer.create 256;
    written = 0;
    closed = false;
  }

let csv_columns n_flows =
  let base = [ "slot"; "selected"; "virtual_time"; "lag_sum" ] in
  let per_flow i =
    [
      Printf.sprintf "q%d" i;
      Printf.sprintf "good%d" i;
      Printf.sprintf "tag%d" i;
      Printf.sprintf "credit%d" i;
    ]
  in
  base @ List.concat (List.init n_flows per_flow)

let csv ~path (hdr : Trace.header) =
  let oc = open_out_bin path in
  output_string oc (String.concat "," (csv_columns hdr.Trace.n_flows));
  output_char oc '\n';
  {
    oc;
    format = Csv;
    n_flows = hdr.Trace.n_flows;
    buf = Buffer.create 256;
    written = 0;
    closed = false;
  }

(* One reused buffer per sink: the per-sample cost is formatting plus one
   [output_string]; nothing accumulates in memory (bounded streaming). *)

let put_csv_cell buf s = Buffer.add_string buf s

let write_csv t (s : Trace.sample) =
  let buf = t.buf in
  Buffer.add_string buf (string_of_int s.Trace.slot);
  Buffer.add_char buf ',';
  (match s.Trace.selected with
  | None -> ()
  | Some f -> put_csv_cell buf (string_of_int f));
  Buffer.add_char buf ',';
  (match s.Trace.virtual_time with
  | None -> ()
  | Some v -> put_csv_cell buf (Json.float_to_string v));
  Buffer.add_char buf ',';
  (match s.Trace.lag_sum with
  | None -> ()
  | Some l -> put_csv_cell buf (string_of_int l));
  Array.iter
    (fun (f : Trace.flow_sample) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int f.Trace.queue);
      Buffer.add_char buf ',';
      Buffer.add_char buf (if f.Trace.good then '1' else '0');
      Buffer.add_char buf ',';
      (match f.Trace.tag with
      | None -> ()
      | Some v -> put_csv_cell buf (Json.float_to_string v));
      Buffer.add_char buf ',';
      match f.Trace.credit with
      | None -> ()
      | Some c -> put_csv_cell buf (string_of_int c))
    s.Trace.flows;
  Buffer.add_char buf '\n'

let write t (s : Trace.sample) =
  if t.closed then Error.bad_config ~who:"Sink.write" "sink already closed";
  if Array.length s.Trace.flows <> t.n_flows then
    Error.bad_config ~who:"Sink.write" "sample width disagrees with header";
  Buffer.clear t.buf;
  (match t.format with
  | Jsonl ->
      Buffer.add_string t.buf (Trace.sample_to_string s);
      Buffer.add_char t.buf '\n'
  | Csv -> write_csv t s);
  Buffer.output_buffer t.oc t.buf;
  t.written <- t.written + 1

let written t = t.written

let close t =
  if not t.closed then begin
    t.closed <- true;
    flush t.oc;
    close_out t.oc
  end
