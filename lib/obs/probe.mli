(** Per-slot telemetry probe: a {!Wfs_core.Simulator.slot_probe} built from
    a scheduler instance.

    The probe is constructed {e after} the scheduler, captures the
    scheduler's read-only {!Wfs_core.Wireless_sched.probe} accessors
    (virtual time, finish tags, credit balances, global lag sum — exactly
    the quantities the invariant monitor reads, so sampling them cannot
    perturb the run), and on every [stride]-th slot emits one
    {!Trace.sample} to each sink and updates the standard instrument set.

    The cost model: with no probe configured the simulator pays one branch
    per slot; with a probe, non-sampled slots pay one extra [mod] and
    sampled slots pay the sample construction (O(flows)).  The probe never
    mutates scheduler state, so a probed run's delivered/dropped counts are
    identical to an unprobed run (lockstep-verified in [test/test_obs.ml]). *)

(** {b Standard instruments}, registered in this order when a registry is
    supplied to {!create}: [probe.samples] (counter), [probe.idle-slots]
    (counter), [probe.backlog] (histogram of total queued packets per
    sample), [probe.max-flow-queue] (max gauge), [probe.virtual-time]
    (last gauge), [probe.max-lag-sum] (max gauge).  Registration is
    unconditional so positional merge across replications always lines
    up; quantities the scheduler does not expose leave their gauge unset
    (rendered [-]). *)

val create :
  ?stride:int ->
  ?sinks:Sink.t list ->
  ?instruments:Instruments.t ->
  n_flows:int ->
  Wfs_core.Wireless_sched.instance ->
  Wfs_core.Simulator.slot_probe
(** [create ~n_flows sched] samples every slot by default; [stride]
    samples slots [0, stride, 2·stride, ...].  [n_flows] must match the
    length of the simulator's channel-state array (for {!Wfs_mac.Mac_sim}
    that is the data-flow count, and [selected] may be the control-flow
    index).
    @raise Wfs_util.Error.Error (kind [Bad_config]) when [stride < 1] or
    [n_flows < 1]. *)
