(** Allocation-conscious instrument registry: counters, gauges and
    histograms with a deterministic merge.

    A registry is created per simulation run.  {!Wfs_runner.Pool} workers
    each fill their own registry; after the pool returns (results in input
    order, regardless of which domain ran what), the per-run registries are
    combined with {!merge_all} — a {e positional} merge, instrument [i] of
    one registry with instrument [i] of the other.  Because every worker
    runs the same registration code, positions line up by construction, and
    because the merged order is the input order, the rendered table is
    byte-identical for any [--jobs] value.

    Recording is cheap — a counter bump is one store; a gauge set is a
    compare and a store — but not free: instruments are meant to be fed
    from a {!Probe} (itself behind one branch per slot), never from a
    [\[@hot\]] scope directly. *)

type t

type counter
type gauge
type histogram

type gauge_policy =
  | Sum  (** merged gauges add *)
  | Max  (** merged gauges keep the maximum (default) *)
  | Min
  | Last  (** merged gauges keep the right operand's value *)

val create : unit -> t

val counter : t -> string -> counter
val gauge : ?policy:gauge_policy -> t -> string -> gauge
val histogram : ?bin_width:float -> t -> string -> histogram
(** Register an instrument.  Registration order is significant (it is the
    merge key and the table row order).
    @raise Wfs_util.Error.Error (kind [Bad_config]) on a duplicate name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> float -> unit
(** Repeated sets combine under the gauge's own policy ([Max] keeps the
    running maximum, [Sum] accumulates, ...). *)

val value : gauge -> float option
(** [None] when never set. *)

val observe : histogram -> float -> unit

val size : t -> int
val names : t -> string list
(** In registration order. *)

val merge : t -> t -> t
(** Positional merge: counters add, gauges combine under their policy,
    histograms add binwise ({!Wfs_util.Stats.Histogram.merge}).  Inputs are
    not mutated.
    @raise Wfs_util.Error.Error (kind [Bad_config]) when sizes, names,
    kinds or gauge policies disagree at any position. *)

val merge_all : t list -> t
(** Left fold of {!merge}; the list order is the (deterministic) merge
    order.
    @raise Wfs_util.Error.Error (kind [Bad_config]) on an empty list. *)

val to_table : ?title:string -> t -> Wfs_util.Tablefmt.t
(** One row per instrument in registration order; unset cells render as
    [-].  Histograms show count, mean, p95 and max. *)

val schema : string
(** ["wfs-instruments/1"] *)

val to_json : t -> Wfs_util.Json.t
val of_json : Wfs_util.Json.t -> t option
(** Bit-exact round-trip (floats use the shortest decimal restoring the
    same bits), like {!Wfs_util.Stats.Summary.to_json}. *)
