(** The [wfs-trace/1] per-slot time-series format.

    A trace is line-oriented: one JSON header line carrying the schema tag,
    flow count, sampling stride and free-form run parameters, then one
    compact JSON object per {e sampled} slot.  Optional per-scheduler
    quantities (virtual time, finish tags, credit balances, the global lag
    sum) are encoded by field {e presence} — a scheduler that exposes no
    virtual time produces no [vt] key, and absence must not be read as
    zero.  The format streams: writers ({!Sink}) append a line per sample
    and never hold the series in memory, and {!load} tolerates a torn
    final line (an interrupted append) exactly like
    [Wfs_runner.Journal]. *)

val schema : string
(** ["wfs-trace/1"] *)

type flow_sample = {
  queue : int;  (** queue depth at end of slot *)
  good : bool;  (** true channel state this slot *)
  tag : float option;  (** scheduler finish/service tag, if exposed *)
  credit : int option;  (** credit balance, if exposed *)
}

type sample = {
  slot : int;
  selected : int option;  (** flow transmitted, [None] on an idle slot *)
  virtual_time : float option;
  lag_sum : int option;  (** global lag sum, if exposed (CIF-Q) *)
  flows : flow_sample array;
}

type header = {
  n_flows : int;
  stride : int;  (** every [stride]-th slot is sampled *)
  params : (string * Wfs_util.Json.t) list;  (** free-form run metadata *)
}

val header :
  ?stride:int -> ?params:(string * Wfs_util.Json.t) list -> n_flows:int -> unit -> header
(** Defaults: stride 1, no params.
    @raise Wfs_util.Error.Error (kind [Bad_config]) when [n_flows < 1],
    [stride < 1], or a param reuses a reserved name ([schema] / [n_flows]
    / [stride]). *)

val header_to_json : header -> Wfs_util.Json.t
val header_of_json : Wfs_util.Json.t -> header option
val header_to_string : header -> string
(** The header line (compact JSON, no trailing newline). *)

val sample_to_json : sample -> Wfs_util.Json.t
val sample_of_json : Wfs_util.Json.t -> sample option
val sample_to_string : sample -> string
val sample_of_string : string -> sample option
(** [sample_of_string (sample_to_string s)] = [Some s'] with
    [sample_equal s s'] — qcheck-verified bit-exact round-trip (floats use
    the shortest decimal restoring the same bits). *)

val flow_equal : flow_sample -> flow_sample -> bool
val sample_equal : sample -> sample -> bool
(** Floats compare by total order, so [nan] round-trips as equal. *)

val header_equal : header -> header -> bool

type contents = { hdr : header; samples : sample list }

val load : path:string -> (contents, Wfs_util.Error.t) result
(** Parse a trace file.  A torn {e final} line is silently dropped (the
    write was interrupted mid-append); a bad line {e followed by} valid
    lines is corruption and yields [Error] (kind [Bad_spec]), as does a
    sample whose flow count disagrees with the header. *)
