module Json = Wfs_util.Json
module Error = Wfs_util.Error

let schema = "wfs-trace/1"

type flow_sample = {
  queue : int;
  good : bool;
  tag : float option;
  credit : int option;
}

type sample = {
  slot : int;
  selected : int option;
  virtual_time : float option;
  lag_sum : int option;
  flows : flow_sample array;
}

type header = {
  n_flows : int;
  stride : int;
  params : (string * Json.t) list;
}

let header ?(stride = 1) ?(params = []) ~n_flows () =
  if n_flows < 1 then
    Error.bad_config ~who:"Trace.header" "n_flows must be >= 1";
  if stride < 1 then Error.bad_config ~who:"Trace.header" "stride must be >= 1";
  List.iter
    (fun (k, _) ->
      if
        List.exists (String.equal k) [ "schema"; "n_flows"; "stride" ]
      then
        Error.bad_config ~who:"Trace.header" ("reserved param name: " ^ k))
    params;
  { n_flows; stride; params }

(* --- JSON codecs.  Optional quantities are encoded by field presence, so
   a scheduler with no virtual time produces no "vt" key at all — parsers
   must not read absence as zero. --- *)

let header_to_json h =
  Json.Obj
    (("schema", Json.Str schema)
    :: ("n_flows", Json.Int h.n_flows)
    :: ("stride", Json.Int h.stride)
    :: h.params)

let header_of_json v =
  let ( let* ) = Option.bind in
  let* s = Option.bind (Json.member "schema" v) Json.to_str in
  if not (String.equal s schema) then None
  else
    let* n_flows = Option.bind (Json.member "n_flows" v) Json.to_int in
    let* stride = Option.bind (Json.member "stride" v) Json.to_int in
    if n_flows < 1 || stride < 1 then None
    else
      let params =
        match v with
        | Json.Obj fields ->
            List.filter
              (fun (k, _) ->
                not
                  (List.exists (String.equal k) [ "schema"; "n_flows"; "stride" ]))
              fields
        | _ -> []
      in
      Some { n_flows; stride; params }

let flow_to_json f =
  let base = [ ("q", Json.Int f.queue); ("g", Json.Int (if f.good then 1 else 0)) ] in
  let base =
    match f.tag with None -> base | Some t -> base @ [ ("tag", Json.of_float_ext t) ]
  in
  match f.credit with None -> base | Some c -> base @ [ ("cr", Json.Int c) ]

let flow_of_json v =
  let ( let* ) = Option.bind in
  let* queue = Option.bind (Json.member "q" v) Json.to_int in
  let* good = Option.bind (Json.member "g" v) Json.to_int in
  let tag = Option.bind (Json.member "tag" v) Json.to_float_ext in
  let credit = Option.bind (Json.member "cr" v) Json.to_int in
  Some { queue; good = good <> 0; tag; credit }

let sample_to_json s =
  let fields = [ ("slot", Json.Int s.slot) ] in
  let fields =
    match s.selected with
    | None -> fields
    | Some f -> fields @ [ ("sel", Json.Int f) ]
  in
  let fields =
    match s.virtual_time with
    | None -> fields
    | Some v -> fields @ [ ("vt", Json.of_float_ext v) ]
  in
  let fields =
    match s.lag_sum with
    | None -> fields
    | Some l -> fields @ [ ("lag", Json.Int l) ]
  in
  Json.Obj
    (fields
    @ [
        ( "flows",
          Json.Arr (Array.to_list (Array.map (fun f -> Json.Obj (flow_to_json f)) s.flows))
        );
      ])

let sample_of_json v =
  let ( let* ) = Option.bind in
  let* slot = Option.bind (Json.member "slot" v) Json.to_int in
  let selected = Option.bind (Json.member "sel" v) Json.to_int in
  let virtual_time = Option.bind (Json.member "vt" v) Json.to_float_ext in
  let lag_sum = Option.bind (Json.member "lag" v) Json.to_int in
  let* flows = Option.bind (Json.member "flows" v) Json.to_list in
  let* flows =
    List.fold_left
      (fun acc fv ->
        match acc with
        | None -> None
        | Some acc -> Option.map (fun f -> f :: acc) (flow_of_json fv))
      (Some []) flows
  in
  Some
    {
      slot;
      selected;
      virtual_time;
      lag_sum;
      flows = Array.of_list (List.rev flows);
    }

let sample_to_string s = Json.to_string ~pretty:false (sample_to_json s)

let sample_of_string line =
  match Json.of_string line with
  | Error _ -> None
  | Ok v -> sample_of_json v

let header_to_string h = Json.to_string ~pretty:false (header_to_json h)

(* --- equality, for round-trip tests.  Floats compare by total order so a
   nan that survives of_float_ext round-trips as equal. --- *)

let float_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Float.compare x y = 0
  | (None | Some _), _ -> false

let int_opt_equal (a : int option) (b : int option) =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x = y
  | (None | Some _), _ -> false

let flow_equal a b =
  a.queue = b.queue && a.good = b.good && float_opt_equal a.tag b.tag
  && int_opt_equal a.credit b.credit

let sample_equal a b =
  a.slot = b.slot
  && int_opt_equal a.selected b.selected
  && float_opt_equal a.virtual_time b.virtual_time
  && int_opt_equal a.lag_sum b.lag_sum
  && Array.length a.flows = Array.length b.flows
  && Array.for_all2 flow_equal a.flows b.flows

let header_equal a b =
  a.n_flows = b.n_flows && a.stride = b.stride
  && List.length a.params = List.length b.params
  && List.for_all2
       (fun (ka, va) (kb, vb) ->
         String.equal ka kb
         && String.equal
              (Json.to_string ~pretty:false va)
              (Json.to_string ~pretty:false vb))
       a.params b.params

(* --- loading (the Journal convention: a torn final line — an interrupted
   append or a kill mid-flush — is dropped; a bad line with valid lines
   after it is corruption and refuses to load). --- *)

type contents = { hdr : header; samples : sample list }

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load ~path =
  let fail what context =
    Error
      (Error.v Error.Bad_spec ~who:"Trace.load" what
         ~context:(("path", path) :: context))
  in
  match read_lines path with
  | exception Sys_error msg -> fail msg []
  | [] -> fail "empty trace (no header)" []
  | hline :: rest -> (
      match Json.of_string hline with
      | Error msg -> fail "unreadable header" [ ("detail", msg) ]
      | Ok hv -> (
          match header_of_json hv with
          | None -> fail "header is not a wfs-trace/1 header" []
          | Some hdr ->
              let n = List.length rest in
              let rec go acc i = function
                | [] -> Ok { hdr; samples = List.rev acc }
                | line :: tl -> (
                    match sample_of_string line with
                    | Some s ->
                        if Array.length s.flows <> hdr.n_flows then
                          fail "sample width disagrees with header"
                            [ ("line", string_of_int (i + 2)) ]
                        else go (s :: acc) (i + 1) tl
                    | None ->
                        if i = n - 1 then Ok { hdr; samples = List.rev acc }
                        else
                          fail "corrupt sample before end of trace"
                            [ ("line", string_of_int (i + 2)) ])
              in
              go [] 0 rest))
