module Sched = Wfs_core.Wireless_sched
module Channel = Wfs_channel.Channel
module Error = Wfs_util.Error

(* Handles for the standard instrument set, registered at probe
   construction.  Registration is unconditional (every run of a spec
   registers the same set in the same order) so positional merge across
   replications always lines up; quantities the scheduler does not expose
   simply leave their gauge unset. *)
type standard = {
  samples : Instruments.counter;
  idle : Instruments.counter;
  backlog : Instruments.histogram;
  max_queue : Instruments.gauge;
  vt : Instruments.gauge;
  max_lag : Instruments.gauge;
}

(* let-sequenced, not a record literal: record-field evaluation order is
   unspecified, and registration order is the merge key. *)
let standard reg =
  let samples = Instruments.counter reg "probe.samples" in
  let idle = Instruments.counter reg "probe.idle-slots" in
  let backlog = Instruments.histogram reg "probe.backlog" in
  let max_queue =
    Instruments.gauge ~policy:Instruments.Max reg "probe.max-flow-queue"
  in
  let vt = Instruments.gauge ~policy:Instruments.Last reg "probe.virtual-time" in
  let max_lag = Instruments.gauge ~policy:Instruments.Max reg "probe.max-lag-sum" in
  { samples; idle; backlog; max_queue; vt; max_lag }

let create ?(stride = 1) ?(sinks = []) ?instruments ~n_flows
    (sched : Sched.instance) : Wfs_core.Simulator.slot_probe =
  if stride < 1 then Error.bad_config ~who:"Probe.create" "stride must be >= 1";
  if n_flows < 1 then Error.bad_config ~who:"Probe.create" "n_flows must be >= 1";
  let p = sched.Sched.probe in
  let tag_of = p.Sched.finish_tag in
  let credit_of = p.Sched.credit in
  let vt_of = p.Sched.virtual_time in
  let lag_of = p.Sched.lag_sum in
  let queue_of = sched.Sched.queue_length in
  let std = Option.map standard instruments in
  fun ~slot ~selected ~states ->
    if slot mod stride = 0 then begin
      let flows =
        Array.init n_flows (fun i ->
            {
              Trace.queue = queue_of i;
              good = Channel.state_is_good states.(i);
              tag = (match tag_of with None -> None | Some f -> Some (f i));
              credit =
                (match credit_of with
                | None -> None
                | Some f ->
                    let balance, _, _ = f i in
                    Some balance);
            })
      in
      let virtual_time =
        match vt_of with None -> None | Some f -> Some (f ())
      in
      let lag_sum = match lag_of with None -> None | Some f -> Some (f ()) in
      let sample = { Trace.slot; selected; virtual_time; lag_sum; flows } in
      List.iter (fun sink -> Sink.write sink sample) sinks;
      match std with
      | None -> ()
      | Some s ->
          Instruments.incr s.samples;
          if Option.is_none selected then Instruments.incr s.idle;
          let total = ref 0 in
          Array.iter
            (fun (f : Trace.flow_sample) ->
              total := !total + f.Trace.queue;
              Instruments.set s.max_queue (float_of_int f.Trace.queue))
            flows;
          Instruments.observe s.backlog (float_of_int !total);
          (match virtual_time with
          | None -> ()
          | Some v -> Instruments.set s.vt v);
          match lag_sum with
          | None -> ()
          | Some l -> Instruments.set s.max_lag (float_of_int l)
    end
