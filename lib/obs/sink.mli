(** Bounded streaming writers for per-slot {!Trace} samples.

    Two formats over one interface: {!jsonl} writes the [wfs-trace/1]
    header line then one compact JSON line per sample; {!csv} writes a
    column-header row ([slot,selected,virtual_time,lag_sum] then
    [q{i},good{i},tag{i},credit{i}] per flow) and one comma row per
    sample, with optional quantities left as empty cells.  Memory use is
    O(1): each sample is formatted into a reused buffer and written out
    immediately, so traces of any horizon stream to disk. *)

type t

val jsonl : path:string -> Trace.header -> t
(** Create/truncate [path] and write the header line. *)

val csv : path:string -> Trace.header -> t
(** Create/truncate [path] and write the CSV column header. *)

val write : t -> Trace.sample -> unit
(** Append one sample.
    @raise Wfs_util.Error.Error (kind [Bad_config]) on a closed sink or a
    sample whose flow count disagrees with the header. *)

val written : t -> int
(** Samples appended so far. *)

val close : t -> unit
(** Flush and close; idempotent. *)
