module Stats = Wfs_util.Stats
module Json = Wfs_util.Json
module Error = Wfs_util.Error
module Tablefmt = Wfs_util.Tablefmt

type gauge_policy = Sum | Max | Min | Last

let policy_to_string = function
  | Sum -> "sum"
  | Max -> "max"
  | Min -> "min"
  | Last -> "last"

let policy_of_string = function
  | "sum" -> Some Sum
  | "max" -> Some Max
  | "min" -> Some Min
  | "last" -> Some Last
  | _ -> None

let policy_equal a b =
  match (a, b) with
  | Sum, Sum | Max, Max | Min, Min | Last, Last -> true
  | (Sum | Max | Min | Last), _ -> false

type counter = { mutable count : int }
type gauge = { policy : gauge_policy; mutable gvalue : float; mutable gset : bool }
type histogram = Stats.Histogram.t

type body = C of counter | G of gauge | H of histogram
type instrument = { iname : string; body : body }

(* Instruments in creation order.  Creation order is the merge key: two
   registries merge positionally, so every worker must register the same
   instruments in the same order — which holds by construction, since
   workers run identical code.  A name lookup would also work but would
   invite merging registries of different provenance. *)
type t = { mutable items : instrument list (* newest first *) }

let create () = { items = [] }

let register t iname body =
  if List.exists (fun i -> String.equal i.iname iname) t.items then
    Error.bad_config ~who:"Instruments.register"
      ("duplicate instrument name: " ^ iname);
  t.items <- { iname; body } :: t.items

let counter t name =
  let c = { count = 0 } in
  register t name (C c);
  c

let gauge ?(policy = Max) t name =
  let g = { policy; gvalue = 0.; gset = false } in
  register t name (G g);
  g

let histogram ?bin_width t name =
  let h = Stats.Histogram.create ?bin_width () in
  register t name (H h);
  h

let incr c = c.count <- c.count + 1
let add c k = c.count <- c.count + k
let count c = c.count

let set g v =
  if g.gset then
    g.gvalue <-
      (match g.policy with
      | Sum -> g.gvalue +. v
      | Max -> Float.max g.gvalue v
      | Min -> Float.min g.gvalue v
      | Last -> v)
  else g.gvalue <- v;
  g.gset <- true

let value g = if g.gset then Some g.gvalue else None
let observe h v = Stats.Histogram.add h v

let size t = List.length t.items
let names t = List.rev_map (fun i -> i.iname) t.items

(* --- deterministic positional merge --- *)

let mismatch ~who i what =
  Error.bad_config ~who
    (Printf.sprintf "registries disagree at position %d: %s" i what)

let merge_body ~who i a b =
  match (a, b) with
  | C x, C y -> C { count = x.count + y.count }
  | G x, G y ->
      if not (policy_equal x.policy y.policy) then
        mismatch ~who i "gauge policies differ";
      if not x.gset then G { y with policy = y.policy }
      else if not y.gset then G { x with policy = x.policy }
      else
        let v =
          match x.policy with
          | Sum -> x.gvalue +. y.gvalue
          | Max -> Float.max x.gvalue y.gvalue
          | Min -> Float.min x.gvalue y.gvalue
          | Last -> y.gvalue
        in
        G { policy = x.policy; gvalue = v; gset = true }
  | H x, H y -> H (Stats.Histogram.merge x y)
  | (C _ | G _ | H _), _ -> mismatch ~who i "instrument kinds differ"

let merge a b =
  let who = "Instruments.merge" in
  let xa = List.rev a.items and xb = List.rev b.items in
  if List.length xa <> List.length xb then
    Error.bad_config ~who "registries have different sizes";
  let items =
    List.mapi
      (fun i (ia, ib) ->
        if not (String.equal ia.iname ib.iname) then
          mismatch ~who i
            (Printf.sprintf "names differ (%s vs %s)" ia.iname ib.iname);
        { iname = ia.iname; body = merge_body ~who i ia.body ib.body })
      (List.combine xa xb)
  in
  { items = List.rev items }

let merge_all = function
  | [] -> Error.bad_config ~who:"Instruments.merge_all" "no registries"
  | first :: rest -> List.fold_left merge first rest

(* --- rendering --- *)

let dash = "-"
let cell v = Tablefmt.cell_of_float v
let icell v = string_of_int v

let to_table ?(title = "instruments") t =
  let table =
    Tablefmt.create ~title
      ~columns:[ "instrument"; "kind"; "value"; "n"; "mean"; "p95"; "max" ]
  in
  List.iter
    (fun { iname; body } ->
      let row =
        match body with
        | C c -> [ iname; "counter"; icell c.count; dash; dash; dash; dash ]
        | G g ->
            [
              iname;
              "gauge/" ^ policy_to_string g.policy;
              (if g.gset then cell g.gvalue else dash);
              dash; dash; dash; dash;
            ]
        | H h ->
            [
              iname;
              "histogram";
              dash;
              icell (Stats.Histogram.count h);
              cell (Stats.Histogram.mean h);
              cell (Stats.Histogram.percentile h 95.);
              cell (Stats.Histogram.max_value h);
            ]
      in
      Tablefmt.add_row table row)
    (List.rev t.items);
  table

(* --- bit-exact serialization (wfs-bench/1 idiom: schema field + shortest
   exact floats), so sharded registries journal and round-trip. --- *)

let schema = "wfs-instruments/1"

let body_to_json = function
  | C c -> [ ("kind", Json.Str "counter"); ("count", Json.Int c.count) ]
  | G g ->
      [
        ("kind", Json.Str "gauge");
        ("policy", Json.Str (policy_to_string g.policy));
        ("set", Json.Int (if g.gset then 1 else 0));
        ("value", Json.of_float_ext g.gvalue);
      ]
  | H h -> [ ("kind", Json.Str "histogram"); ("hist", Stats.Histogram.to_json h) ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "instruments",
        Json.Arr
          (List.rev_map
             (fun i -> Json.Obj (("name", Json.Str i.iname) :: body_to_json i.body))
             t.items) );
    ]

let body_of_json v =
  let ( let* ) = Option.bind in
  let* kind = Option.bind (Json.member "kind" v) Json.to_str in
  match kind with
  | "counter" ->
      let* count = Option.bind (Json.member "count" v) Json.to_int in
      Some (C { count })
  | "gauge" ->
      let* p = Option.bind (Json.member "policy" v) Json.to_str in
      let* policy = policy_of_string p in
      let* set = Option.bind (Json.member "set" v) Json.to_int in
      let* gvalue = Option.bind (Json.member "value" v) Json.to_float_ext in
      Some (G { policy; gvalue; gset = set <> 0 })
  | "histogram" ->
      let* h = Option.bind (Json.member "hist" v) Stats.Histogram.of_json in
      Some (H h)
  | _ -> None

let of_json v =
  let ( let* ) = Option.bind in
  let* s = Option.bind (Json.member "schema" v) Json.to_str in
  if not (String.equal s schema) then None
  else
    let* items = Option.bind (Json.member "instruments" v) Json.to_list in
    let* items =
      List.fold_left
        (fun acc v ->
          match acc with
          | None -> None
          | Some acc ->
              let* iname = Option.bind (Json.member "name" v) Json.to_str in
              let* body = body_of_json v in
              Some ({ iname; body } :: acc))
        (Some []) items
    in
    (* [items] is already newest-first from the fold. *)
    Some { items }
