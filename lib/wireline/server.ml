type completion = { job : Job.t; start : float; finish : float }

let run ~capacity (sched : Sched_intf.instance) jobs =
  if capacity <= 0. then Wfs_util.Error.invalid "Server.run" "capacity must be > 0";
  let arrivals =
    List.stable_sort
      (fun (a : Job.t) (b : Job.t) -> Float.compare a.arrival b.arrival)
      jobs
  in
  let pending = ref arrivals in
  let completions = ref [] in
  let free_at = ref 0. in
  (* Deliver every arrival with time <= t to the scheduler. *)
  let deliver_until t =
    let rec loop () =
      match !pending with
      | (j : Job.t) :: rest when j.arrival <= t ->
          sched.enqueue j;
          pending := rest;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  let rec step () =
    let next_arrival =
      match !pending with [] -> None | j :: _ -> Some j.Job.arrival
    in
    if sched.queued () = 0 then
      match next_arrival with
      | None -> ()
      | Some a ->
          (* Idle until the next arrival. *)
          deliver_until a;
          if !free_at < a then free_at := a;
          step ()
    else begin
      let t = !free_at in
      deliver_until t;
      match sched.dequeue ~time:t with
      | None ->
          (* queued() > 0 guarantees a job; defensive. *)
          assert false
      | Some job ->
          let finish = t +. (job.Job.size /. capacity) in
          completions := { job; start = t; finish } :: !completions;
          free_at := finish;
          step ()
    end
  in
  (* Prime with the first arrival so the first dequeue sees it. *)
  (match !pending with [] -> () | j :: _ -> free_at := Float.max 0. j.Job.arrival);
  deliver_until !free_at;
  step ();
  List.rev !completions

(* Flow ids in first-completion order, tracked alongside the table so the
   result never depends on hash-bucket order. *)
let delays_by_flow completions =
  let tbl = Hashtbl.create 16 in
  let flows = ref [] in
  List.iter
    (fun { job; finish; _ } ->
      let delay = finish -. job.Job.arrival in
      (match Hashtbl.find_opt tbl job.Job.flow with
      | None ->
          flows := job.Job.flow :: !flows;
          Hashtbl.replace tbl job.Job.flow [ delay ]
      | Some prev -> Hashtbl.replace tbl job.Job.flow (delay :: prev)))
    completions;
  List.sort Int.compare !flows
  |> List.map (fun flow ->
         (flow, List.rev (Option.value ~default:[] (Hashtbl.find_opt tbl flow))))

let throughput_by_flow completions ~until =
  let tbl = Hashtbl.create 16 in
  let flows = ref [] in
  List.iter
    (fun { job; finish; _ } ->
      if finish <= until then
        match Hashtbl.find_opt tbl job.Job.flow with
        | None ->
            flows := job.Job.flow :: !flows;
            Hashtbl.replace tbl job.Job.flow job.Job.size
        | Some prev -> Hashtbl.replace tbl job.Job.flow (prev +. job.Job.size))
    completions;
  List.sort Int.compare !flows
  |> List.map (fun flow ->
         (flow, Option.value ~default:0. (Hashtbl.find_opt tbl flow)))
