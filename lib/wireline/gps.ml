(* Event-driven fluid GPS.

   Invariants between calls:
   - [v] is the virtual time at real time [t_last];
   - a flow is active iff it has fluid work left, iff [max_finish.(i) > v];
   - every packet not yet fluid-departed has an entry in [pending] keyed by
     its finish tag, so the earliest pending finish tag is the next event at
     which either a packet departs or the active set shrinks.

   Advancing by [dv] of virtual time grants each active flow exactly
   [r_i * dv] bits of service (dv = C dt / sum_r and rate_i = C r_i / sum_r),
   which makes service accounting exact with no integration error. *)

type departure = { flow : int; seq : int; finish_tag : float; time : float }

type t = {
  capacity : float;
  weights : float array;
  mutable v : float;
  mutable t_last : float;
  mutable sum_active : float;
  active : bool array;
  last_finish : float array;  (* finish tag of the flow's latest packet *)
  service : float array;
  backlog : float array;  (* fluid bits remaining *)
  pending : (float * int * int) Wfs_util.Heap.t;  (* finish, flow, seq *)
  next_seq : int array;
  mutable departed : departure list;  (* reversed *)
}

let eps = 1e-9

let create ~capacity flows =
  if capacity <= 0. then Wfs_util.Error.invalid "Gps.create" "capacity must be > 0";
  let n = Array.length flows in
  Array.iteri
    (fun i (f : Flow.t) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Gps.create")
    flows;
  {
    capacity;
    weights = Array.map (fun (f : Flow.t) -> f.weight) flows;
    v = 0.;
    t_last = 0.;
    sum_active = 0.;
    active = Array.make n false;
    last_finish = Array.make n 0.;
    service = Array.make n 0.;
    backlog = Array.make n 0.;
    pending = Wfs_util.Heap.create ~leq:(fun (fa, _, _) (fb, _, _) -> fa <= fb) ();
    next_seq = Array.make n 0;
    departed = [];
  }

(* Grant [dv] virtual time of service to every active flow. *)
let credit t dv =
  if dv > 0. then
    for i = 0 to Array.length t.weights - 1 do
      if t.active.(i) then begin
        let bits = t.weights.(i) *. dv in
        t.service.(i) <- t.service.(i) +. bits;
        t.backlog.(i) <- Float.max 0. (t.backlog.(i) -. bits)
      end
    done

(* Pop every pending packet whose finish tag is reached, record its real
   departure time, and deactivate flows whose last packet departed. *)
let settle_crossings t =
  let rec loop () =
    match Wfs_util.Heap.peek t.pending with
    | Some (f, flow, seq) when f <= t.v +. eps ->
        ignore (Wfs_util.Heap.pop t.pending);
        t.departed <- { flow; seq; finish_tag = f; time = t.t_last } :: t.departed;
        if t.last_finish.(flow) <= t.v +. eps && t.active.(flow) then begin
          t.active.(flow) <- false;
          t.sum_active <- t.sum_active -. t.weights.(flow);
          t.backlog.(flow) <- 0.;
          if t.sum_active < eps then t.sum_active <- 0.
        end;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let advance_to t time =
  if time < t.t_last -. eps then
    Wfs_util.Error.invalidf "Gps.advance_to" "time %g precedes %g" time
      t.t_last;
  let rec step () =
    if t.t_last < time -. eps then
      if t.sum_active <= 0. then t.t_last <- time
      else begin
        match Wfs_util.Heap.peek t.pending with
        | None ->
            (* No pending work despite sum_active > 0: inconsistent. *)
            assert false
        | Some (f_next, _, _) ->
            let dv_event = f_next -. t.v in
            let dt_event = dv_event *. t.sum_active /. t.capacity in
            if t.t_last +. dt_event <= time +. eps then begin
              credit t dv_event;
              t.v <- f_next;
              t.t_last <- t.t_last +. dt_event;
              settle_crossings t;
              step ()
            end
            else begin
              let dv = (time -. t.t_last) *. t.capacity /. t.sum_active in
              credit t dv;
              t.v <- t.v +. dv;
              t.t_last <- time
            end
      end
  in
  step ();
  if time > t.t_last then t.t_last <- time

let arrive t ~time ~flow ~size =
  if size <= 0. then Wfs_util.Error.invalid "Gps.arrive" "size must be > 0";
  if flow < 0 || flow >= Array.length t.weights then
    Wfs_util.Error.unknown_flow "Gps.arrive";
  advance_to t time;
  let start_tag = Float.max t.v t.last_finish.(flow) in
  let finish_tag = start_tag +. (size /. t.weights.(flow)) in
  t.last_finish.(flow) <- finish_tag;
  let seq = t.next_seq.(flow) in
  t.next_seq.(flow) <- seq + 1;
  Wfs_util.Heap.push t.pending (finish_tag, flow, seq);
  t.backlog.(flow) <- t.backlog.(flow) +. size;
  if not t.active.(flow) then begin
    t.active.(flow) <- true;
    t.sum_active <- t.sum_active +. t.weights.(flow)
  end;
  (start_tag, finish_tag)

let virtual_time t ~time =
  advance_to t time;
  t.v

let service t ~flow = t.service.(flow)
let backlog t ~flow = t.backlog.(flow)
let is_backlogged t ~flow = t.active.(flow)
let backlogged_weight t = t.sum_active
let departures t = List.rev t.departed

let drain_departures t =
  let out = List.rev t.departed in
  t.departed <- [];
  out

let now t = t.t_last
