type tagged = { job : Job.t; finish : float }

type t = {
  weights : float array;
  heap : tagged Wfs_util.Heap.t;
  last_finish : float array;
  mutable v : float;  (* finish tag of the packet in service *)
}

let create ~capacity flows =
  ignore capacity;
  Array.iteri
    (fun i (f : Flow.t) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Scfq.create")
    flows;
  {
    weights = Array.map (fun (f : Flow.t) -> f.weight) flows;
    heap = Wfs_util.Heap.create ~leq:(fun a b -> a.finish <= b.finish) ();
    last_finish = Array.make (Array.length flows) 0.;
    v = 0.;
  }

let enqueue t (job : Job.t) =
  if job.flow < 0 || job.flow >= Array.length t.weights then
    Wfs_util.Error.unknown_flow "Scfq.enqueue";
  let start = Float.max t.v t.last_finish.(job.flow) in
  let finish = start +. (job.size /. t.weights.(job.flow)) in
  t.last_finish.(job.flow) <- finish;
  Wfs_util.Heap.push t.heap { job; finish }

let dequeue t ~time =
  ignore time;
  match Wfs_util.Heap.pop t.heap with
  | None -> None
  | Some { job; finish } ->
      t.v <- finish;
      Some job

let queued t = Wfs_util.Heap.length t.heap
let virtual_time t = t.v

let instance ~capacity flows =
  let t = create ~capacity flows in
  Sched_intf.make ~name:"SCFQ" ~enqueue:(enqueue t)
    ~dequeue:(fun ~time -> dequeue t ~time)
    ~queued:(fun () -> queued t)
