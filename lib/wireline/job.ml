type t = { flow : int; seq : int; arrival : float; size : float }

let make ~flow ~seq ~arrival ~size =
  if size <= 0. then Wfs_util.Error.invalid "Job.make" "size must be > 0";
  if arrival < 0. then Wfs_util.Error.invalid "Job.make" "negative arrival";
  { flow; seq; arrival; size }

let pp ppf t =
  Format.fprintf ppf "f%d#%d@%g(%g bits)" t.flow t.seq t.arrival t.size
