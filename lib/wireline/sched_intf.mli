(** Common runtime interface for the packetized wireline schedulers.

    Each scheduler module exposes a typed API plus an [instance] constructor
    returning this record, which the {!Server} driver and the comparative
    tests/benches consume uniformly.

    {b Error convention.}  Wireline schedulers never raise on an empty
    queue: emptiness is an expected state, so [dequeue] reports it as
    [None] and callers branch on the option.  Exceptions are reserved for
    caller bugs (e.g. out-of-range flow ids), which raise
    [Invalid_argument].  Contrast {!Wfs_core.Wireless_sched}, where
    [complete]/[drop_head] on an empty queue {e is} a caller bug — the
    simulator only reports outcomes for a packet it was just handed — and
    therefore raises. *)

type instance = {
  name : string;
  enqueue : Job.t -> unit;
      (** Called in non-decreasing order of [Job.arrival]. *)
  dequeue : time:float -> Job.t option;
      (** Select the next job to put on the wire at [time]; [None] iff no
          job is queued. *)
  queued : unit -> int;  (** Number of jobs waiting (excludes in service). *)
}

val make :
  name:string ->
  enqueue:(Job.t -> unit) ->
  dequeue:(time:float -> Job.t option) ->
  queued:(unit -> int) ->
  instance
