type tagged = { job : Job.t; stamp : float }

type t = {
  weights : float array;
  heap : tagged Wfs_util.Heap.t;
  auxvc : float array;
}

let create ~capacity flows =
  ignore capacity;
  Array.iteri
    (fun i (f : Flow.t) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Virtual_clock.create")
    flows;
  {
    weights = Array.map (fun (f : Flow.t) -> f.weight) flows;
    heap = Wfs_util.Heap.create ~leq:(fun a b -> a.stamp <= b.stamp) ();
    auxvc = Array.make (Array.length flows) 0.;
  }

let enqueue t (job : Job.t) =
  if job.flow < 0 || job.flow >= Array.length t.weights then
    Wfs_util.Error.unknown_flow "Virtual_clock.enqueue";
  (* auxVC = max(now, auxVC) + size/r; the max is what denies credit for
     idle periods yet lets a flow bank capacity it never used — the
     behaviour the wireless model rejects for error periods. *)
  let vc = Float.max job.arrival t.auxvc.(job.flow) +. (job.size /. t.weights.(job.flow)) in
  t.auxvc.(job.flow) <- vc;
  Wfs_util.Heap.push t.heap { job; stamp = vc }

let dequeue t ~time =
  ignore time;
  match Wfs_util.Heap.pop t.heap with
  | None -> None
  | Some { job; _ } -> Some job

let queued t = Wfs_util.Heap.length t.heap
let clock t ~flow = t.auxvc.(flow)

let instance ~capacity flows =
  let t = create ~capacity flows in
  Sched_intf.make ~name:"VirtualClock" ~enqueue:(enqueue t)
    ~dequeue:(fun ~time -> dequeue t ~time)
    ~queued:(fun () -> queued t)
