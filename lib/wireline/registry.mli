(** Wireline scheduler registry — the {!Wfs_core.Registry} mirror for the
    packetized reference schedulers.

    Maps canonical names (["WFQ"], ["WF2Q+"], ["VirtualClock"], ...) to
    {!Sched_intf.instance} constructors so comparative tests and benches
    enumerate the wireline family from one place.  Lookups are
    case-insensitive and cover aliases (["WF²Q"], ["VC"]). *)

type entry = {
  name : string;
  aliases : string list;
  make : capacity:float -> Flow.t array -> Sched_intf.instance;
}

val register : entry -> unit
(** @raise Invalid_argument on a (case-insensitive) name/alias collision. *)

val find : string -> entry option
val get : string -> entry
(** @raise Invalid_argument on an unknown name, listing the known ones. *)

val names : unit -> string list
(** Canonical names in registration order. *)

val instances : capacity:float -> Flow.t array -> Sched_intf.instance list
(** One instance of every registered scheduler, in registration order —
    the comparative-test enumeration. *)
