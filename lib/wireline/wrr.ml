type t = {
  weights : int array;
  queues : Job.t Queue.t array;
  mutable current : int;  (* flow being served this round *)
  mutable remaining : int;  (* packets the current flow may still send *)
  mutable total_queued : int;
}

let int_weight w =
  let k = int_of_float (Float.round w) in
  if k < 1 then 1 else k

let create ~capacity flows =
  ignore capacity;
  Array.iteri
    (fun i (f : Flow.t) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Wrr.create")
    flows;
  let n = Array.length flows in
  {
    weights = Array.map (fun (f : Flow.t) -> int_weight f.weight) flows;
    queues = Array.init n (fun _ -> Queue.create ());
    current = 0;
    remaining = (if n = 0 then 0 else int_weight flows.(0).weight);
    total_queued = 0;
  }

let enqueue t (job : Job.t) =
  if job.flow < 0 || job.flow >= Array.length t.queues then
    Wfs_util.Error.unknown_flow "Wrr.enqueue";
  Queue.push job t.queues.(job.flow);
  t.total_queued <- t.total_queued + 1

let advance t =
  t.current <- (t.current + 1) mod Array.length t.queues;
  t.remaining <- t.weights.(t.current)

let dequeue t ~time =
  ignore time;
  if t.total_queued = 0 then None
  else begin
    (* At least one queue is non-empty, so the scan terminates. *)
    while t.remaining = 0 || Queue.is_empty t.queues.(t.current) do
      advance t
    done;
    match Queue.take_opt t.queues.(t.current) with
    | None -> None  (* unreachable: the scan stopped on a non-empty queue *)
    | Some job ->
        t.remaining <- t.remaining - 1;
        t.total_queued <- t.total_queued - 1;
        Some job
  end

let queued t = t.total_queued

let instance ~capacity flows =
  let t = create ~capacity flows in
  Sched_intf.make ~name:"WRR" ~enqueue:(enqueue t)
    ~dequeue:(fun ~time -> dequeue t ~time)
    ~queued:(fun () -> queued t)
