type t = {
  quanta : float array;  (* per-round deficit increment per flow *)
  queues : Job.t Queue.t array;
  deficit : float array;
  active : int Queue.t;  (* round-robin list of backlogged flow ids *)
  in_active : bool array;
  mutable current : int option;  (* flow holding the round, if any *)
  mutable total_queued : int;
}

let create ?(quantum = 1.0) ~capacity flows =
  ignore capacity;
  if quantum <= 0. then Wfs_util.Error.invalid "Drr.create" "quantum must be > 0";
  Array.iteri
    (fun i (f : Flow.t) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Drr.create")
    flows;
  let n = Array.length flows in
  {
    quanta = Array.map (fun (f : Flow.t) -> quantum *. f.weight) flows;
    queues = Array.init n (fun _ -> Queue.create ());
    deficit = Array.make n 0.;
    active = Queue.create ();
    in_active = Array.make n false;
    current = None;
    total_queued = 0;
  }

let enqueue t (job : Job.t) =
  if job.flow < 0 || job.flow >= Array.length t.queues then
    Wfs_util.Error.unknown_flow "Drr.enqueue";
  Queue.push job t.queues.(job.flow);
  t.total_queued <- t.total_queued + 1;
  if not t.in_active.(job.flow) then begin
    (* A flow (re)entering the active list starts a fresh round with an
       empty deficit, as in the original algorithm. *)
    t.deficit.(job.flow) <- 0.;
    t.in_active.(job.flow) <- true;
    Queue.push job.flow t.active
  end

let dequeue t ~time =
  ignore time;
  if t.total_queued = 0 then None
  else begin
    (* The flow holding the round keeps sending while its deficit covers
       the head packet; it yields (rejoining the active tail if still
       backlogged) once the deficit runs out. *)
    let rec serve () =
      match t.current with
      | Some flow ->
          (match Queue.peek_opt t.queues.(flow) with
          | None ->
              t.in_active.(flow) <- false;
              t.deficit.(flow) <- 0.;
              t.current <- None;
              serve ()
          | Some head ->
              if t.deficit.(flow) >= head.Job.size then begin
                ignore (Queue.take_opt t.queues.(flow));
                t.deficit.(flow) <- t.deficit.(flow) -. head.Job.size;
                t.total_queued <- t.total_queued - 1;
                if Queue.is_empty t.queues.(flow) then begin
                  t.in_active.(flow) <- false;
                  t.deficit.(flow) <- 0.;
                  t.current <- None
                end;
                Some head
              end
              else begin
                Queue.push flow t.active;
                t.current <- None;
                serve ()
              end)
      | None ->
          (* lint: allow R5 -- total_queued > 0 guarantees a backlogged flow sits on the active ring; an empty pop here is a broken invariant that must fail loudly *)
          let flow = Queue.pop t.active in
          if Queue.is_empty t.queues.(flow) then begin
            (* Stale entry: the flow drained earlier in this round. *)
            t.in_active.(flow) <- false;
            serve ()
          end
          else begin
            t.deficit.(flow) <- t.deficit.(flow) +. t.quanta.(flow);
            t.current <- Some flow;
            serve ()
          end
    in
    serve ()
  end

let queued t = t.total_queued
let deficit t ~flow = t.deficit.(flow)

let instance ?quantum ~capacity flows =
  let t = create ?quantum ~capacity flows in
  Sched_intf.make ~name:"DRR" ~enqueue:(enqueue t)
    ~dequeue:(fun ~time -> dequeue t ~time)
    ~queued:(fun () -> queued t)
