type entry = {
  name : string;
  aliases : string list;
  make : capacity:float -> Flow.t array -> Sched_intf.instance;
}

include (
  Wfs_util.Registry_intf.Make (struct
    type t = entry

    let name e = e.name
    let aliases e = e.aliases
    let kind = "wireline scheduler"
  end) :
    Wfs_util.Registry_intf.S with type entry := entry)

let instances ~capacity flows =
  List.map (fun e -> e.make ~capacity flows) (entries ())

let () =
  List.iter register
    [
      { name = "WFQ"; aliases = [ "PGPS" ]; make = (fun ~capacity flows -> Wfq.instance ~capacity flows) };
      { name = "WF2Q"; aliases = [ "WF²Q" ]; make = (fun ~capacity flows -> Wf2q.instance ~capacity flows) };
      { name = "WF2Q+"; aliases = [ "WF²Q+" ]; make = (fun ~capacity flows -> Wf2q_plus.instance ~capacity flows) };
      { name = "SCFQ"; aliases = []; make = (fun ~capacity flows -> Scfq.instance ~capacity flows) };
      { name = "STFQ"; aliases = []; make = (fun ~capacity flows -> Stfq.instance ~capacity flows) };
      { name = "VirtualClock"; aliases = [ "VC" ]; make = (fun ~capacity flows -> Virtual_clock.instance ~capacity flows) };
      { name = "WRR"; aliases = []; make = (fun ~capacity flows -> Wrr.instance ~capacity flows) };
      { name = "DRR"; aliases = []; make = (fun ~capacity flows -> Drr.instance ~capacity flows) };
    ]
