type entry = {
  name : string;
  aliases : string list;
  make : capacity:float -> Flow.t array -> Sched_intf.instance;
}

let keys_of e = List.map String.lowercase_ascii (e.name :: e.aliases)

(* A linear list keeps registration order (and therefore enumeration order
   in tests/benches) deterministic. *)
let entries : entry list ref = ref []

let find name =
  let key = String.lowercase_ascii name in
  List.find_opt (fun e -> List.exists (String.equal key) (keys_of e)) !entries

let names () = List.map (fun e -> e.name) !entries

let register e =
  List.iter
    (fun key ->
      if List.exists (fun e' -> List.exists (String.equal key) (keys_of e')) !entries
      then
        Wfs_util.Error.invalidf "Registry.register" "%S is already registered"
          key)
    (keys_of e);
  entries := !entries @ [ e ]

let get name =
  match find name with
  | Some e -> e
  | None ->
      Wfs_util.Error.invalidf "Registry.get"
        "unknown wireline scheduler %S (known: %s)" name
        (String.concat ", " (names ()))

let instances ~capacity flows =
  List.map (fun e -> e.make ~capacity flows) !entries

let () =
  List.iter register
    [
      { name = "WFQ"; aliases = [ "PGPS" ]; make = (fun ~capacity flows -> Wfq.instance ~capacity flows) };
      { name = "WF2Q"; aliases = [ "WF²Q" ]; make = (fun ~capacity flows -> Wf2q.instance ~capacity flows) };
      { name = "WF2Q+"; aliases = [ "WF²Q+" ]; make = (fun ~capacity flows -> Wf2q_plus.instance ~capacity flows) };
      { name = "SCFQ"; aliases = []; make = (fun ~capacity flows -> Scfq.instance ~capacity flows) };
      { name = "STFQ"; aliases = []; make = (fun ~capacity flows -> Stfq.instance ~capacity flows) };
      { name = "VirtualClock"; aliases = [ "VC" ]; make = (fun ~capacity flows -> Virtual_clock.instance ~capacity flows) };
      { name = "WRR"; aliases = []; make = (fun ~capacity flows -> Wrr.instance ~capacity flows) };
      { name = "DRR"; aliases = []; make = (fun ~capacity flows -> Drr.instance ~capacity flows) };
    ]
