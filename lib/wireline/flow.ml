type t = { id : int; weight : float }

let make ~id ~weight =
  if weight <= 0. then Wfs_util.Error.invalid "Flow.make" "weight must be > 0";
  { id; weight }

let equal_weights n = Array.init n (fun id -> make ~id ~weight:1.)
let of_weights weights = Array.mapi (fun id weight -> make ~id ~weight) weights
let total_weight flows = Array.fold_left (fun acc f -> acc +. f.weight) 0. flows
