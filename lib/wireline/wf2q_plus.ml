type t = {
  weights : float array;
  total_weight : float;
  queues : Job.t Queue.t array;
  start : float array;  (* head-of-line start tag, valid when queue nonempty *)
  finish : float array;  (* head-of-line finish tag *)
  last_finish : float array;  (* finish tag of the last packet that left HOL *)
  mutable v : float;
}

let eps = 1e-9

let create ~capacity flows =
  ignore capacity;
  Array.iteri
    (fun i (f : Flow.t) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Wf2q_plus.create")
    flows;
  let n = Array.length flows in
  {
    weights = Array.map (fun (f : Flow.t) -> f.weight) flows;
    total_weight = Flow.total_weight flows;
    queues = Array.init n (fun _ -> Queue.create ());
    start = Array.make n 0.;
    finish = Array.make n 0.;
    last_finish = Array.make n 0.;
    v = 0.;
  }

let set_hol_tags t flow ~start_at (job : Job.t) =
  t.start.(flow) <- start_at;
  t.finish.(flow) <- start_at +. (job.size /. t.weights.(flow))

let enqueue t (job : Job.t) =
  let flow = job.Job.flow in
  if flow < 0 || flow >= Array.length t.weights then
    Wfs_util.Error.unknown_flow "Wf2q_plus.enqueue";
  let was_empty = Queue.is_empty t.queues.(flow) in
  Queue.push job t.queues.(flow);
  if was_empty then
    set_hol_tags t flow ~start_at:(Float.max t.v t.last_finish.(flow)) job

let min_backlogged_start t =
  let best = ref infinity in
  Array.iteri
    (fun i q -> if not (Queue.is_empty q) then best := Float.min !best t.start.(i))
    t.queues;
  !best

let dequeue t ~time =
  ignore time;
  (* Eligible = fluid service would have begun (S <= V); among those the
     smallest finish tag wins; fall back to the smallest start tag so the
     server never idles while backlogged. *)
  let pick restrict =
    let best = ref None in
    Array.iteri
      (fun i q ->
        if not (Queue.is_empty q) then
          if (not restrict) || t.start.(i) <= t.v +. eps then begin
            let key = if restrict then t.finish.(i) else t.start.(i) in
            match !best with
            | Some (_, k) when k <= key -> ()
            | Some _ | None -> best := Some (i, key)
          end)
      t.queues;
    Option.map fst !best
  in
  let chosen = match pick true with Some f -> Some f | None -> pick false in
  match chosen with
  | None -> None
  | Some flow -> (
      match Queue.take_opt t.queues.(flow) with
      | None -> None  (* unreachable: pick only returns backlogged flows *)
      | Some job ->
          t.last_finish.(flow) <- t.finish.(flow);
          (match Queue.peek_opt t.queues.(flow) with
          | Some next -> set_hol_tags t flow ~start_at:t.finish.(flow) next
          | None -> ());
          (* Advance the virtual clock: fluid pace plus the WF2Q+ jump. *)
          t.v <- t.v +. (job.Job.size /. t.total_weight);
          let m = min_backlogged_start t in
          if m > t.v && m < infinity then t.v <- m;
          Some job)

let queued t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues
let virtual_time t = t.v

let instance ~capacity flows =
  let t = create ~capacity flows in
  Sched_intf.make ~name:"WF2Q+" ~enqueue:(enqueue t)
    ~dequeue:(fun ~time -> dequeue t ~time)
    ~queued:(fun () -> queued t)
