type tagged = { job : Job.t; start : float; finish : float }

type t = {
  weights : float array;
  heap : tagged Wfs_util.Heap.t;  (* by start tag, ties by finish *)
  last_finish : float array;
  mutable v : float;  (* start tag of the packet in service *)
}

let leq a b = if a.start = b.start then a.finish <= b.finish else a.start < b.start

let create ~capacity flows =
  ignore capacity;
  Array.iteri
    (fun i (f : Flow.t) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Stfq.create")
    flows;
  {
    weights = Array.map (fun (f : Flow.t) -> f.weight) flows;
    heap = Wfs_util.Heap.create ~leq ();
    last_finish = Array.make (Array.length flows) 0.;
    v = 0.;
  }

let enqueue t (job : Job.t) =
  if job.flow < 0 || job.flow >= Array.length t.weights then
    Wfs_util.Error.unknown_flow "Stfq.enqueue";
  let start = Float.max t.v t.last_finish.(job.flow) in
  let finish = start +. (job.size /. t.weights.(job.flow)) in
  t.last_finish.(job.flow) <- finish;
  Wfs_util.Heap.push t.heap { job; start; finish }

let dequeue t ~time =
  ignore time;
  match Wfs_util.Heap.pop t.heap with
  | None -> None
  | Some { job; start; _ } ->
      t.v <- start;
      Some job

let queued t = Wfs_util.Heap.length t.heap
let virtual_time t = t.v

let instance ~capacity flows =
  let t = create ~capacity flows in
  Sched_intf.make ~name:"STFQ" ~enqueue:(enqueue t)
    ~dequeue:(fun ~time -> dequeue t ~time)
    ~queued:(fun () -> queued t)
