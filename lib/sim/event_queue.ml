type 'a t = (float * 'a) Wfs_util.Heap.t

let create () =
  Wfs_util.Heap.create ~leq:(fun ((ta : float), _) (tb, _) -> ta <= tb) ()

let schedule q ~at ev =
  if Float.is_nan at then Wfs_util.Error.invalid "Event_queue.schedule" "NaN time";
  Wfs_util.Heap.push q (at, ev)

let next_time q =
  match Wfs_util.Heap.peek q with None -> None | Some (t, _) -> Some t

let pop q = Wfs_util.Heap.pop q
let is_empty q = Wfs_util.Heap.is_empty q
let length q = Wfs_util.Heap.length q
let clear q = Wfs_util.Heap.clear q
