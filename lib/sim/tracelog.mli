(** Structured event trace of a simulation run.

    Optional recording of per-slot scheduler activity.  The bounds verifier
    (lib/bounds) replays traces to check the theorems of Section 5 against
    measured behaviour, tests use traces to assert scheduling order, and a
    capacity-bounded trace doubles as the {e flight recorder} the runner
    dumps next to a fault report (see [Wfs_runner.Exec]). *)

type event =
  | Arrival of { flow : int; seq : int }
  | Transmit_ok of { flow : int; seq : int; delay : int }
  | Transmit_fail of { flow : int; seq : int; attempt : int }
  | Drop of { flow : int; seq : int; reason : string }
  | Slot_idle
  | Swap of { from_flow : int; to_flow : int }
  | Credit of { flow : int; delta : int }
  | Frame_start of { length : int }

type entry = { slot : int; event : event }

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** A disabled trace records nothing and costs nothing (default enabled).
    Note that the cost of {e constructing} events is the caller's: the
    {!Wfs_core.Simulator} skips event construction entirely unless its
    config carries a trace that is both present and enabled, so passing a
    disabled trace is equivalent to passing none at all.

    With [capacity] the trace is a fixed-size ring: only the most recent
    [capacity] entries are retained, the oldest being evicted as new ones
    arrive — flight-recorder mode, safe on unbounded horizons.  Without it
    the trace grows with the run and is only suitable for short horizons.
    @raise Invalid_argument when [capacity < 1]. *)

val enabled : t -> bool

val capacity : t -> int option
(** The ring bound, or [None] for an unbounded trace. *)

val record : t -> slot:int -> event -> unit
(** Append an entry (evicting the oldest first at capacity). *)

val length : t -> int
(** Entries currently retained. *)

val events : t -> entry list
(** Retained entries in chronological order (at capacity: the last
    [capacity] recorded). *)

val filter : t -> (entry -> bool) -> entry list
val count : t -> (entry -> bool) -> int
val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
val pp_entry : Format.formatter -> entry -> unit

val entry_to_string : entry -> string
(** ["s<slot> <event>"] — the rendering used in flight-recorder dumps. *)
