type t = { mutable now : float }

let create () = { now = 0. }
let now t = t.now

let advance_to t target =
  if target < t.now then
    Wfs_util.Error.invalidf "Clock.advance_to" "%g precedes current time %g"
      target t.now;
  t.now <- target

let reset t = t.now <- 0.
