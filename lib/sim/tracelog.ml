type event =
  | Arrival of { flow : int; seq : int }
  | Transmit_ok of { flow : int; seq : int; delay : int }
  | Transmit_fail of { flow : int; seq : int; attempt : int }
  | Drop of { flow : int; seq : int; reason : string }
  | Slot_idle
  | Swap of { from_flow : int; to_flow : int }
  | Credit of { flow : int; delta : int }
  | Frame_start of { length : int }

type entry = { slot : int; event : event }

(* Both the unbounded log and the flight-recorder mode share one
   representation: a ring-buffer deque.  Without [capacity] the deque grows
   by doubling; with [capacity] the oldest entry is evicted from the front
   as each new one is pushed, so memory stays O(capacity) over any
   horizon. *)
type t = {
  enabled : bool;
  capacity : int option;
  entries : entry Wfs_util.Deque.t;
}

let dummy = { slot = 0; event = Slot_idle }

let create ?(enabled = true) ?capacity () =
  (match capacity with
  | Some c when c < 1 ->
      Wfs_util.Error.invalidf "Tracelog.create" "capacity must be >= 1, got %d" c
  | Some _ | None -> ());
  let initial = match capacity with Some c -> c | None -> 8 in
  { enabled; capacity; entries = Wfs_util.Deque.create ~capacity:initial ~dummy () }

let enabled t = t.enabled
let capacity t = t.capacity

let record t ~slot event =
  if t.enabled then begin
    Wfs_util.Deque.push_back t.entries { slot; event };
    match t.capacity with
    | Some c when Wfs_util.Deque.length t.entries > c ->
        ignore (Wfs_util.Deque.pop_front t.entries)
    | Some _ | None -> ()
  end

let length t = Wfs_util.Deque.length t.entries
let events t = Wfs_util.Deque.to_list t.entries

let filter t p =
  List.rev
    (Wfs_util.Deque.fold (fun acc e -> if p e then e :: acc else acc) [] t.entries)

let count t p =
  Wfs_util.Deque.fold (fun acc e -> if p e then acc + 1 else acc) 0 t.entries

let clear t = Wfs_util.Deque.clear t.entries

let pp_event ppf = function
  | Arrival { flow; seq } -> Format.fprintf ppf "arrival f%d#%d" flow seq
  | Transmit_ok { flow; seq; delay } ->
      Format.fprintf ppf "tx-ok f%d#%d delay=%d" flow seq delay
  | Transmit_fail { flow; seq; attempt } ->
      Format.fprintf ppf "tx-fail f%d#%d attempt=%d" flow seq attempt
  | Drop { flow; seq; reason } -> Format.fprintf ppf "drop f%d#%d (%s)" flow seq reason
  | Slot_idle -> Format.fprintf ppf "idle"
  | Swap { from_flow; to_flow } -> Format.fprintf ppf "swap f%d->f%d" from_flow to_flow
  | Credit { flow; delta } -> Format.fprintf ppf "credit f%d %+d" flow delta
  | Frame_start { length } -> Format.fprintf ppf "frame len=%d" length

let pp_entry ppf e = Format.fprintf ppf "s%d %a" e.slot pp_event e.event
let entry_to_string e = Format.asprintf "%a" pp_entry e
