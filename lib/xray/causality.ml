module Json = Wfs_util.Json
module Error = Wfs_util.Error
module Sched = Wfs_core.Wireless_sched

let schema = "wfs-causality/1"

type event =
  | Move of { slot : int; flow : int; src : int; dst : int; verdict : string }
  | Rehome of { slot : int; flow : int; dst : int }
  | Crash of { slot : int; cell : int; orphaned : int list }
  | Carry of {
      slot : int;
      flow : int;
      cell : int;
      carried : Sched.carry;
      accepted : Sched.carry;
    }

let verdict_deliver = "deliver"
let verdict_blocked = "blocked"
let verdict_lost = "lost"
let verdict_corrupt = "corrupt"

(* --- JSON codec.  One compact object per event, discriminated by "k". --- *)

let carry_fields prefix (c : Sched.carry) =
  [
    (prefix ^ "lag", Json.of_float_ext c.Sched.lag);
    (prefix ^ "cr", Json.Int c.Sched.credit);
  ]

let event_to_json = function
  | Move { slot; flow; src; dst; verdict } ->
      Json.Obj
        [
          ("k", Json.Str "move");
          ("slot", Json.Int slot);
          ("flow", Json.Int flow);
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("v", Json.Str verdict);
        ]
  | Rehome { slot; flow; dst } ->
      Json.Obj
        [
          ("k", Json.Str "rehome");
          ("slot", Json.Int slot);
          ("flow", Json.Int flow);
          ("dst", Json.Int dst);
        ]
  | Crash { slot; cell; orphaned } ->
      Json.Obj
        [
          ("k", Json.Str "crash");
          ("slot", Json.Int slot);
          ("cell", Json.Int cell);
          ("orphaned", Json.Arr (List.map (fun g -> Json.Int g) orphaned));
        ]
  | Carry { slot; flow; cell; carried; accepted } ->
      Json.Obj
        (("k", Json.Str "carry")
         :: ("slot", Json.Int slot)
         :: ("flow", Json.Int flow)
         :: ("cell", Json.Int cell)
         :: (carry_fields "" carried @ carry_fields "a" accepted))

let carry_of_json prefix v =
  let ( let* ) = Option.bind in
  let* lag = Option.bind (Json.member (prefix ^ "lag") v) Json.to_float_ext in
  let* credit = Option.bind (Json.member (prefix ^ "cr") v) Json.to_int in
  Some { Sched.lag; credit }

let event_of_json v =
  let ( let* ) = Option.bind in
  let* k = Option.bind (Json.member "k" v) Json.to_str in
  let int key = Option.bind (Json.member key v) Json.to_int in
  match k with
  | "move" ->
      let* slot = int "slot" in
      let* flow = int "flow" in
      let* src = int "src" in
      let* dst = int "dst" in
      let* verdict = Option.bind (Json.member "v" v) Json.to_str in
      Some (Move { slot; flow; src; dst; verdict })
  | "rehome" ->
      let* slot = int "slot" in
      let* flow = int "flow" in
      let* dst = int "dst" in
      Some (Rehome { slot; flow; dst })
  | "crash" ->
      let* slot = int "slot" in
      let* cell = int "cell" in
      let* gids = Option.bind (Json.member "orphaned" v) Json.to_list in
      let* orphaned =
        List.fold_left
          (fun acc gv ->
            match acc with
            | None -> None
            | Some acc -> Option.map (fun g -> g :: acc) (Json.to_int gv))
          (Some []) gids
      in
      Some (Crash { slot; cell; orphaned = List.rev orphaned })
  | "carry" ->
      let* slot = int "slot" in
      let* flow = int "flow" in
      let* cell = int "cell" in
      let* carried = carry_of_json "" v in
      let* accepted = carry_of_json "a" v in
      Some (Carry { slot; flow; cell; carried; accepted })
  | _ -> None

let event_to_string e = Json.to_string ~pretty:false (event_to_json e)

let event_of_string line =
  match Json.of_string line with
  | Error _ -> None
  | Ok v -> event_of_json v

let carry_equal (a : Sched.carry) (b : Sched.carry) =
  Float.compare a.Sched.lag b.Sched.lag = 0 && a.Sched.credit = b.Sched.credit

let event_equal a b =
  match (a, b) with
  | Move a, Move b ->
      a.slot = b.slot && a.flow = b.flow && a.src = b.src && a.dst = b.dst
      && String.equal a.verdict b.verdict
  | Rehome a, Rehome b -> a.slot = b.slot && a.flow = b.flow && a.dst = b.dst
  | Crash a, Crash b ->
      a.slot = b.slot && a.cell = b.cell
      && List.length a.orphaned = List.length b.orphaned
      && List.for_all2 ( = ) a.orphaned b.orphaned
  | Carry a, Carry b ->
      a.slot = b.slot && a.flow = b.flow && a.cell = b.cell
      && carry_equal a.carried b.carried
      && carry_equal a.accepted b.accepted
  | (Move _ | Rehome _ | Crash _ | Carry _), _ -> false

let slot_of = function
  | Move { slot; _ } | Rehome { slot; _ } | Crash { slot; _ }
  | Carry { slot; _ } ->
      slot

(* --- collector --- *)

type t = { mutable rev : event list; mutable n : int }

let create () = { rev = []; n = 0 }

let record t e =
  t.rev <- e :: t.rev;
  t.n <- t.n + 1

let events t = List.rev t.rev
let count t = t.n

(* --- file round-trip (Journal convention: torn final line dropped,
   corruption mid-file refused). --- *)

let header_line = Json.to_string ~pretty:false (Json.Obj [ ("schema", Json.Str schema) ])

let write ~path events =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc header_line;
      output_char oc '\n';
      List.iter
        (fun e ->
          output_string oc (event_to_string e);
          output_char oc '\n')
        events)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load ~path =
  let fail what context =
    Error
      (Error.v Error.Bad_spec ~who:"Causality.load" what
         ~context:(("path", path) :: context))
  in
  match read_lines path with
  | exception Sys_error msg -> fail msg []
  | [] -> fail "empty causality log (no header)" []
  | hline :: rest -> (
      match Json.of_string hline with
      | Error msg -> fail "unreadable header" [ ("detail", msg) ]
      | Ok hv -> (
          match Option.bind (Json.member "schema" hv) Json.to_str with
          | Some s when String.equal s schema ->
              let n = List.length rest in
              let rec go acc i = function
                | [] -> Ok (List.rev acc)
                | line :: tl -> (
                    match event_of_string line with
                    | Some e -> go (e :: acc) (i + 1) tl
                    | None ->
                        if i = n - 1 then Ok (List.rev acc)
                        else
                          fail "corrupt event before end of log"
                            [ ("line", string_of_int (i + 2)) ])
              in
              go [] 0 rest
          | _ -> fail "header is not a wfs-causality/1 header" []))

(* --- per-flow replay helpers --- *)

let journey events ~flow =
  List.filter
    (function
      | Move { flow = f; _ } | Rehome { flow = f; _ } | Carry { flow = f; _ }
        ->
          f = flow
      | Crash _ -> false)
    events

let truncation events ~flow =
  List.fold_left
    (fun (lag, cr) e ->
      match e with
      | Carry { flow = f; carried; accepted; _ } when f = flow ->
          ( lag +. Float.abs (carried.Sched.lag -. accepted.Sched.lag),
            cr + abs (carried.Sched.credit - accepted.Sched.credit) )
      | Move _ | Rehome _ | Crash _ | Carry _ -> (lag, cr))
    (0., 0) events

let flows events =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let note g =
    if not (Hashtbl.mem tbl g) then begin
      Hashtbl.add tbl g ();
      order := g :: !order
    end
  in
  List.iter
    (fun e ->
      match e with
      | Move { flow; _ } | Rehome { flow; _ } | Carry { flow; _ } -> note flow
      | Crash { orphaned; _ } -> List.iter note orphaned)
    events;
  List.sort Int.compare !order
