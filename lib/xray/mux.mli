(** The [wfs-xray-trace/1] per-cell trace multiplexer.

    Topology tracing without the [--jobs 1] restriction: during the
    parallel phase of an epoch each cell's probe appends cell-tagged
    samples to that cell's OWN part file (no cross-domain ordering exists
    to get wrong), rosters are written only from the sequential barrier
    (install / rebuild), and {!finish} reconstructs the deterministic
    global timeline by a positional merge on (slot, cell) — smallest slot
    first, ties broken by cell id, within-cell order preserved.  The merge
    is byte-identical across [--jobs] because the parts themselves are:
    every cell's stream depends only on that cell's deterministic state,
    and a failed (chaos-injected, retried) cell epoch writes no samples —
    injection happens before the cell advances.

    The merged stream is line-oriented: a JSON header line ([schema],
    [cells], [n_flows], [stride], free-form params), then one compact JSON
    object per entry.  Sample lines reuse the wfs-trace/1 sample codec
    bit-exactly, with a [cell] field prepended; roster lines
    [{"cell":c,"slot":s,"roster":[gids]}] map each cell's local flow
    indices to global ids as membership changes across handoffs. *)

val schema : string
(** ["wfs-xray-trace/1"] *)

type entry =
  | Roster of { cell : int; slot : int; gids : int array }
      (** [gids.(local)] is the global id of the cell's [local]-th flow
          from [slot] until the cell's next roster *)
  | Sample of { cell : int; sample : Wfs_obs.Trace.sample }
      (** one sampled slot of the cell's session; flow indices are
          cell-local (resolve through the latest roster) *)

val entry_to_json : entry -> Wfs_util.Json.t
val entry_of_json : Wfs_util.Json.t -> entry option
val entry_to_string : entry -> string

val entry_of_string : string -> entry option
(** Bit-exact round-trip of {!entry_to_string} (qcheck-verified). *)

val entry_equal : entry -> entry -> bool
val entry_slot : entry -> int
val entry_cell : entry -> int

(** {1 In-run writer} *)

type t

val create :
  ?stride:int ->
  ?params:(string * Wfs_util.Json.t) list ->
  cells:int ->
  part_base:string ->
  unit ->
  t
(** Open one part file per cell at ["<part_base>.part<cell>"].  Defaults:
    stride 1, no params.
    @raise Wfs_util.Error.Error (kind [Bad_config]) when [cells < 1],
    [stride < 1], or a param reuses a reserved name. *)

val note_roster : t -> cell:int -> slot:int -> gids:int array -> unit
(** Record the cell's membership from [slot] on.  Must only be called from
    sequential code (create / epoch barrier) — it writes to the cell's
    part, and the merge relies on rosters preceding that cell's samples. *)

val probe :
  t ->
  cell:int ->
  n_flows:int ->
  Wfs_core.Wireless_sched.instance ->
  Wfs_core.Simulator.slot_probe
(** A slot probe sampling every [stride]-th slot into the cell's part —
    the same quantities as [Wfs_obs.Probe.create] (queue depths, channel
    states, finish tags, credits, virtual time, lag sum).  [n_flows] is
    the CELL's current membership size. *)

val finish : t -> n_flows:int -> ?jsonl:string -> ?csv:string -> unit -> unit
(** Close the parts, merge them into the requested outputs, delete the
    parts.  [n_flows] is the topology-wide flow count (CSV width; roster
    gids must fit).  The CSV timeline has one row per sample — columns
    [slot,cell,selected,virtual_time,lag_sum] then [q/good/tag/credit] per
    GLOBAL flow id, empty for flows not resident in the sample's cell
    (presence encoding, like the single-cell CSV sink); [selected] is
    translated to a global id.  Idempotence guard: a finished (or aborted)
    mux refuses further writes. *)

val abort : t -> unit
(** Close and delete the parts without merging (failure path). *)

(** {1 Reading a merged stream} *)

type contents = {
  cells : int;
  n_flows : int;
  stride : int;
  params : (string * Wfs_util.Json.t) list;
  entries : entry list;
}

val load : path:string -> (contents, Wfs_util.Error.t) result
(** Journal convention: torn final line dropped; mid-file corruption, a
    missing header or a wrong schema tag yield [Error] (kind
    [Bad_spec]). *)
