(** The [wfs-causality/1] handoff/fault causality log.

    One line-oriented JSONL stream per topology run: a header line carrying
    the schema tag, then one compact JSON object per event, in the exact
    order the sequential epoch barrier produced them (chaos verdict draws in
    ascending flow id, then rehomes, then the carry import of every rebuilt
    cell) — so the §5 lag-compensation and §7 credit-bound ledgers can be
    replayed per flow end-to-end: which cell the flow sat in each epoch,
    what lag/credit it carried across each handoff, how much the importing
    scheduler's clamp truncated, and which chaos verdict each handoff drew.

    Like every stream in this repo, {!load} follows the Journal convention:
    a torn {e final} line (interrupted append) is dropped, a bad line
    followed by valid lines is corruption and refuses to load. *)

val schema : string
(** ["wfs-causality/1"] *)

type event =
  | Move of { slot : int; flow : int; src : int; dst : int; verdict : string }
      (** a mobility draw moved [flow] from cell [src] toward [dst] under
          chaos verdict {!verdict_deliver} / {!verdict_blocked} /
          {!verdict_lost} / {!verdict_corrupt} (blocked flows stay in
          [src]) *)
  | Rehome of { slot : int; flow : int; dst : int }
      (** an orphaned flow (its cell crashed) was re-homed to [dst] *)
  | Crash of { slot : int; cell : int; orphaned : int list }
      (** [cell] crashed at the barrier, orphaning the listed flows *)
  | Carry of {
      slot : int;
      flow : int;
      cell : int;
      carried : Wfs_core.Wireless_sched.carry;
      accepted : Wfs_core.Wireless_sched.carry;
    }
      (** the importing [cell]'s scheduler accepted [accepted] of the
          [carried] lag/credit; the difference is the §5/§7 clamp
          truncation (or a chaos Lost/Corrupt rewrite) *)

val verdict_deliver : string
val verdict_blocked : string
val verdict_lost : string
val verdict_corrupt : string

val event_to_json : event -> Wfs_util.Json.t
val event_of_json : Wfs_util.Json.t -> event option
val event_to_string : event -> string

val event_of_string : string -> event option
(** Bit-exact round-trip of {!event_to_string} (floats restore the same
    bits; qcheck-verified). *)

val event_equal : event -> event -> bool
(** Floats compare by total order, so [nan] carries round-trip as equal. *)

val slot_of : event -> int

(** {1 In-run collector} *)

type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** Recorded events in chronological (recording) order. *)

val count : t -> int

(** {1 File round-trip} *)

val write : path:string -> event list -> unit

val load : path:string -> (event list, Wfs_util.Error.t) result
(** Torn final line dropped; mid-file corruption, a missing header or a
    wrong schema tag yield [Error] (kind [Bad_spec]). *)

(** {1 Per-flow replay} *)

val journey : event list -> flow:int -> event list
(** The flow's own events (moves, rehomes, carries) in order. *)

val truncation : event list -> flow:int -> float * int
(** Total absolute lag / credit truncated across all of the flow's carry
    imports (the clamp's cumulative bite). *)

val flows : event list -> int list
(** Sorted ids of every flow that appears in the log. *)
