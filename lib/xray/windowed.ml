module Json = Wfs_util.Json
module Error = Wfs_util.Error
module Metrics = Wfs_core.Metrics
module Fairness = Wfs_core.Fairness

let schema = "wfs-windows/1"

type window = {
  index : int;
  start_slot : int;
  end_slot : int;
  jain : float;
  gap : float;
  arrivals : int;
  delivered : int;
  dropped : int;
  backlog : int;
  loss : float;
}

let window_to_json w =
  Json.Obj
    [
      ("i", Json.Int w.index);
      ("s", Json.Int w.start_slot);
      ("e", Json.Int w.end_slot);
      ("jain", Json.of_float_ext w.jain);
      ("gap", Json.of_float_ext w.gap);
      ("arr", Json.Int w.arrivals);
      ("del", Json.Int w.delivered);
      ("drop", Json.Int w.dropped);
      ("bkl", Json.Int w.backlog);
      ("loss", Json.of_float_ext w.loss);
    ]

let window_of_json v =
  let ( let* ) = Option.bind in
  let int key = Option.bind (Json.member key v) Json.to_int in
  let fl key = Option.bind (Json.member key v) Json.to_float_ext in
  let* index = int "i" in
  let* start_slot = int "s" in
  let* end_slot = int "e" in
  let* jain = fl "jain" in
  let* gap = fl "gap" in
  let* arrivals = int "arr" in
  let* delivered = int "del" in
  let* dropped = int "drop" in
  let* backlog = int "bkl" in
  let* loss = fl "loss" in
  Some
    {
      index;
      start_slot;
      end_slot;
      jain;
      gap;
      arrivals;
      delivered;
      dropped;
      backlog;
      loss;
    }

let window_to_string w = Json.to_string ~pretty:false (window_to_json w)

let window_of_string line =
  match Json.of_string line with
  | Error _ -> None
  | Ok v -> window_of_json v

let feq a b = Float.compare a b = 0

let window_equal a b =
  a.index = b.index && a.start_slot = b.start_slot && a.end_slot = b.end_slot
  && feq a.jain b.jain && feq a.gap b.gap && a.arrivals = b.arrivals
  && a.delivered = b.delivered && a.dropped = b.dropped
  && a.backlog = b.backlog && feq a.loss b.loss

(* --- collector.

   Tumbling windows over CUMULATIVE metrics snapshots: each [observe]
   carries the live accumulator, and a window closes on the first
   observation whose end-exclusive position reaches the next boundary.
   When observations are sparser than the window length (a topology
   sampling only at epoch barriers) the closed window's [start_slot] /
   [end_slot] record the span actually covered — the format never
   pretends to a resolution the sampling did not have. --- *)

type t = {
  weights : float array;
  window : int;
  mutable next_boundary : int;
  mutable win_start : int;
  mutable index : int;
  mutable base_arr : int;
  mutable base_del : int;
  mutable base_drop : int;
  base_flow_arr : int array;
  base_flow_del : int array;
  mutable rev : window list;
}

let create ~weights ~window =
  if window < 1 then
    Error.bad_config ~who:"Windowed.create" "window must be >= 1";
  if Array.length weights = 0 then
    Error.bad_config ~who:"Windowed.create" "no flows";
  Array.iter
    (fun w ->
      if not (w > 0.) then
        Error.bad_config ~who:"Windowed.create" "weights must be > 0")
    weights;
  {
    weights;
    window;
    next_boundary = window;
    win_start = 0;
    index = 0;
    base_arr = 0;
    base_del = 0;
    base_drop = 0;
    base_flow_arr = Array.make (Array.length weights) 0;
    base_flow_del = Array.make (Array.length weights) 0;
    rev = [];
  }

let totals metrics n =
  let arr = ref 0 and del = ref 0 and drop = ref 0 and bkl = ref 0 in
  for i = 0 to n - 1 do
    arr := !arr + Metrics.arrivals metrics ~flow:i;
    del := !del + Metrics.delivered metrics ~flow:i;
    drop := !drop + Metrics.dropped metrics ~flow:i;
    bkl := !bkl + Metrics.backlog_remaining metrics ~flow:i
  done;
  (!arr, !del, !drop, !bkl)

let close t ~end_slot ~metrics =
  let n = Array.length t.weights in
  let arr, del, drop, bkl = totals metrics n in
  let d_arr = arr - t.base_arr in
  let d_del = del - t.base_del in
  let d_drop = drop - t.base_drop in
  (* Fairness over the window's per-flow normalized service.  The eq-(1)
     gap is restricted to flows that actually had traffic in the window
     (an idle flow is not backlogged, so the paper's gap does not apply to
     it); Jain runs over the same set. *)
  let norm = ref [] in
  for i = n - 1 downto 0 do
    let da = Metrics.arrivals metrics ~flow:i - t.base_flow_arr.(i) in
    let dd = Metrics.delivered metrics ~flow:i - t.base_flow_del.(i) in
    let active = da > 0 || dd > 0 || Metrics.backlog_remaining metrics ~flow:i > 0 in
    if active then norm := (float_of_int dd /. t.weights.(i)) :: !norm;
    t.base_flow_arr.(i) <- t.base_flow_arr.(i) + da;
    t.base_flow_del.(i) <- t.base_flow_del.(i) + dd
  done;
  let norm = Array.of_list !norm in
  let jain = Fairness.jain norm in
  let gap =
    if Array.length norm < 2 then 0.
    else
      let ones = Array.make (Array.length norm) 1. in
      Fairness.max_normalized_gap ~weights:ones ~service:norm
  in
  let w =
    {
      index = t.index;
      start_slot = t.win_start;
      end_slot;
      jain;
      gap;
      arrivals = d_arr;
      delivered = d_del;
      dropped = d_drop;
      backlog = bkl;
      loss = (if d_arr = 0 then 0. else float_of_int d_drop /. float_of_int d_arr);
    }
  in
  t.rev <- w :: t.rev;
  t.index <- t.index + 1;
  t.win_start <- end_slot;
  t.base_arr <- arr;
  t.base_del <- del;
  t.base_drop <- drop;
  t.next_boundary <- (((end_slot / t.window) + 1) * t.window)

let observe t ~slot ~metrics =
  let pos = slot + 1 in
  if pos >= t.next_boundary && pos > t.win_start then
    close t ~end_slot:pos ~metrics

let flush t ~slot ~metrics =
  let pos = slot + 1 in
  if pos > t.win_start then close t ~end_slot:pos ~metrics

let windows t = List.rev t.rev

let observer t = fun slot metrics -> observe t ~slot ~metrics

(* --- file round-trip (Journal convention). --- *)

type contents = { window : int; windows : window list }

let header_to_string ~window =
  Json.to_string ~pretty:false
    (Json.Obj [ ("schema", Json.Str schema); ("window", Json.Int window) ])

let write ~path ~window windows =
  if window < 1 then Error.bad_config ~who:"Windowed.write" "window must be >= 1";
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (header_to_string ~window);
      output_char oc '\n';
      List.iter
        (fun w ->
          output_string oc (window_to_string w);
          output_char oc '\n')
        windows)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load ~path =
  let fail what context =
    Error
      (Error.v Error.Bad_spec ~who:"Windowed.load" what
         ~context:(("path", path) :: context))
  in
  match read_lines path with
  | exception Sys_error msg -> fail msg []
  | [] -> fail "empty window log (no header)" []
  | hline :: rest -> (
      match Json.of_string hline with
      | Error msg -> fail "unreadable header" [ ("detail", msg) ]
      | Ok hv -> (
          match
            ( Option.bind (Json.member "schema" hv) Json.to_str,
              Option.bind (Json.member "window" hv) Json.to_int )
          with
          | Some s, Some window when String.equal s schema && window >= 1 ->
              let n = List.length rest in
              let rec go acc i = function
                | [] -> Ok { window; windows = List.rev acc }
                | line :: tl -> (
                    match window_of_string line with
                    | Some w -> go (w :: acc) (i + 1) tl
                    | None ->
                        if i = n - 1 then Ok { window; windows = List.rev acc }
                        else
                          fail "corrupt window before end of log"
                            [ ("line", string_of_int (i + 2)) ])
              in
              go [] 0 rest
          | _, _ -> fail "header is not a wfs-windows/1 header" []))
