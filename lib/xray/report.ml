module Json = Wfs_util.Json
module Error = Wfs_util.Error
module Tablefmt = Wfs_util.Tablefmt
module Fairness = Wfs_core.Fairness
module Trace = Wfs_obs.Trace

type section = {
  heading : string;
  tables : Tablefmt.t list;
  notes : string list;
}

let section ~heading ?(notes = []) tables = { heading; tables; notes }

let f2 = Tablefmt.cell_of_float ~decimals:2
let f4 = Tablefmt.cell_of_float ~decimals:4

(* --- wfs-bench/1 artifacts: re-render every table plus a run-parameters
   summary, so a committed baseline renders into the same dashboard as a
   fresh sweep. --- *)

let of_artifact (a : Wfs_runner.Artifact.t) =
  let params = Tablefmt.create ~title:"run parameters" ~columns:[ "param"; "value" ] in
  Tablefmt.add_row params [ "schema"; a.Wfs_runner.Artifact.schema ];
  Tablefmt.add_row params [ "horizon"; string_of_int a.horizon ];
  Tablefmt.add_row params [ "seed"; string_of_int a.seed ];
  Tablefmt.add_row params [ "seeds"; string_of_int a.seeds ];
  Tablefmt.add_row params [ "jobs"; string_of_int a.jobs ];
  Tablefmt.add_row params [ "runs"; string_of_int a.runs ];
  Tablefmt.add_row params [ "slots"; string_of_int a.slots ];
  Tablefmt.add_row params [ "wall_clock_s"; f2 a.wall_clock_s ];
  Tablefmt.add_row params [ "slots/s"; f2 a.slots_per_sec ];
  let tables =
    params
    :: List.map
         (fun (t : Wfs_runner.Artifact.table) ->
           let tf = Tablefmt.create ~title:t.title ~columns:t.columns in
           List.iter (fun r -> Tablefmt.add_row tf r) t.rows;
           tf)
         a.tables
  in
  section ~heading:"bench artifact" tables

(* --- fairness summaries over sampled selections.  Service share per flow
   is approximated by its share of sampled transmissions; Jain over those
   shares is the dashboard's first-glance fairness signal (the exact
   windowed eq-(1) gap lives in the wfs-windows stream). --- *)

let jain_of_counts counts =
  Fairness.jain (Array.map float_of_int counts)

let of_trace (c : Trace.contents) =
  let n = c.hdr.Trace.n_flows in
  let selected = Array.make n 0 in
  let samples = ref 0 in
  let idle = ref 0 in
  List.iter
    (fun (s : Trace.sample) ->
      incr samples;
      match s.Trace.selected with
      | None -> incr idle
      | Some f -> if f >= 0 && f < n then selected.(f) <- selected.(f) + 1)
    c.samples;
  let t = Tablefmt.create ~title:"trace summary" ~columns:[ "metric"; "value" ] in
  Tablefmt.add_row t [ "flows"; string_of_int n ];
  Tablefmt.add_row t [ "stride"; string_of_int c.hdr.Trace.stride ];
  Tablefmt.add_row t [ "samples"; string_of_int !samples ];
  Tablefmt.add_row t [ "idle samples"; string_of_int !idle ];
  Tablefmt.add_row t [ "jain(selected)"; f4 (jain_of_counts selected) ];
  let per = Tablefmt.create ~title:"per-flow sampled service" ~columns:[ "flow"; "selected" ] in
  Array.iteri
    (fun i k -> Tablefmt.add_row per [ string_of_int i; string_of_int k ])
    selected;
  section ~heading:"trace" [ t; per ]

let of_xray (c : Mux.contents) =
  let per_cell_sel = Array.make c.Mux.cells 0 in
  let per_cell_samples = Array.make c.Mux.cells 0 in
  let per_cell_rosters = Array.make c.Mux.cells 0 in
  let rosters = Array.make c.Mux.cells [||] in
  let global_sel = Array.make c.Mux.n_flows 0 in
  let per_cell_flow_sel = Array.make c.Mux.cells [||] in
  List.iter
    (fun e ->
      match e with
      | Mux.Roster { cell; gids; _ } ->
          per_cell_rosters.(cell) <- per_cell_rosters.(cell) + 1;
          rosters.(cell) <- gids
      | Mux.Sample { cell; sample } -> (
          per_cell_samples.(cell) <- per_cell_samples.(cell) + 1;
          match sample.Trace.selected with
          | None -> ()
          | Some local ->
              per_cell_sel.(cell) <- per_cell_sel.(cell) + 1;
              if Array.length per_cell_flow_sel.(cell) = 0 then
                per_cell_flow_sel.(cell) <- Array.make c.Mux.n_flows 0;
              let r = rosters.(cell) in
              if local >= 0 && local < Array.length r then begin
                let g = r.(local) in
                if g >= 0 && g < c.Mux.n_flows then begin
                  global_sel.(g) <- global_sel.(g) + 1;
                  per_cell_flow_sel.(cell).(g) <-
                    per_cell_flow_sel.(cell).(g) + 1
                end
              end))
    c.Mux.entries;
  let t =
    Tablefmt.create ~title:"per-cell fairness (sampled)"
      ~columns:[ "cell"; "rosters"; "samples"; "selected"; "jain(selected)" ]
  in
  for cell = 0 to c.Mux.cells - 1 do
    let counts = per_cell_flow_sel.(cell) in
    let resident =
      if Array.length counts = 0 then [||]
      else Array.of_list (List.filter (fun k -> k > 0) (Array.to_list counts))
    in
    Tablefmt.add_row t
      [
        string_of_int cell;
        string_of_int per_cell_rosters.(cell);
        string_of_int per_cell_samples.(cell);
        string_of_int per_cell_sel.(cell);
        (if Array.length resident = 0 then "-"
         else f4 (Fairness.jain (Array.map float_of_int resident)));
      ]
  done;
  let g = Tablefmt.create ~title:"timeline summary" ~columns:[ "metric"; "value" ] in
  Tablefmt.add_row g [ "cells"; string_of_int c.Mux.cells ];
  Tablefmt.add_row g [ "flows"; string_of_int c.Mux.n_flows ];
  Tablefmt.add_row g [ "stride"; string_of_int c.Mux.stride ];
  Tablefmt.add_row g [ "entries"; string_of_int (List.length c.Mux.entries) ];
  Tablefmt.add_row g [ "jain(global selected)"; f4 (jain_of_counts global_sel) ];
  section ~heading:"topology trace" [ g; t ]

(* --- flow journeys out of the causality log --- *)

let of_causality events =
  let t =
    Tablefmt.create ~title:"flow journeys"
      ~columns:
        [
          "flow"; "moves"; "blocked"; "lost"; "corrupt"; "rehomes";
          "trunc lag"; "trunc credit"; "path";
        ]
  in
  List.iter
    (fun flow ->
      let j = Causality.journey events ~flow in
      let moves = ref 0 and blocked = ref 0 and lost = ref 0 in
      let corrupt = ref 0 and rehomes = ref 0 in
      let path = ref [] in
      List.iter
        (fun e ->
          match e with
          | Causality.Move { src; dst; verdict; _ } ->
              if String.equal verdict Causality.verdict_blocked then
                incr blocked
              else begin
                incr moves;
                if String.equal verdict Causality.verdict_lost then incr lost;
                if String.equal verdict Causality.verdict_corrupt then
                  incr corrupt;
                (match !path with
                | [] -> path := [ dst; src ]
                | _ -> path := dst :: !path)
              end
          | Causality.Rehome { dst; _ } ->
              incr rehomes;
              (match !path with
              | [] -> path := [ dst ]
              | _ -> path := dst :: !path)
          | Causality.Crash _ | Causality.Carry _ -> ())
        j;
      let tlag, tcr = Causality.truncation events ~flow in
      Tablefmt.add_row t
        [
          string_of_int flow;
          string_of_int !moves;
          string_of_int !blocked;
          string_of_int !lost;
          string_of_int !corrupt;
          string_of_int !rehomes;
          f4 tlag;
          string_of_int tcr;
          String.concat ">" (List.rev_map string_of_int !path);
        ])
    (Causality.flows events);
  let crashes =
    Tablefmt.create ~title:"cell crashes" ~columns:[ "slot"; "cell"; "orphaned" ]
  in
  List.iter
    (fun e ->
      match e with
      | Causality.Crash { slot; cell; orphaned } ->
          Tablefmt.add_row crashes
            [
              string_of_int slot;
              string_of_int cell;
              string_of_int (List.length orphaned);
            ]
      | Causality.Move _ | Causality.Rehome _ | Causality.Carry _ -> ())
    events;
  section ~heading:"handoff causality"
    ~notes:
      [
        Printf.sprintf "%d events; truncation totals are the cumulative \
                        §5 lag / §7 credit clamp bite per flow"
          (List.length events);
      ]
    [ t; crashes ]

let of_windows (c : Windowed.contents) =
  let t =
    Tablefmt.create
      ~title:(Printf.sprintf "tumbling windows (%d slots)" c.Windowed.window)
      ~columns:
        [
          "idx"; "start"; "end"; "jain"; "gap"; "arrivals"; "delivered";
          "dropped"; "backlog"; "loss";
        ]
  in
  List.iter
    (fun (w : Windowed.window) ->
      Tablefmt.add_row t
        [
          string_of_int w.Windowed.index;
          string_of_int w.start_slot;
          string_of_int w.end_slot;
          f4 w.jain;
          f4 w.gap;
          string_of_int w.arrivals;
          string_of_int w.delivered;
          string_of_int w.dropped;
          string_of_int w.backlog;
          f4 w.loss;
        ])
    c.Windowed.windows;
  section ~heading:"windowed aggregation" [ t ]

let of_skip k =
  section ~heading:"fast-path skip telemetry" [ Skip_telemetry.to_table k ]

(* --- chaos timelines (wfs-chaos/1-timeline JSONL).  Parsed generically —
   one {"spec":...,"event":{"slot":...,"fault":{"kind":...}}} per line —
   and summarized per fault kind, so the report needs no dependency on the
   chaos library itself. --- *)

let of_timeline ~path =
  let fail what context =
    Error
      (Error.v Error.Bad_spec ~who:"Report.of_timeline" what
         ~context:(("path", path) :: context))
  in
  let read_lines () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  match read_lines () with
  | exception Sys_error msg -> fail msg []
  | [] -> fail "empty timeline (no header)" []
  | hline :: rest -> (
      match Json.of_string hline with
      | Error msg -> fail "unreadable header" [ ("detail", msg) ]
      | Ok hv -> (
          match Option.bind (Json.member "schema" hv) Json.to_str with
          | Some s when String.equal s "wfs-chaos/1-timeline" ->
              let kinds : (string, int * int * int) Hashtbl.t =
                Hashtbl.create 8
              in
              let kind_names = ref [] in
              let total = ref 0 in
              let n = List.length rest in
              let rec go i = function
                | [] -> Ok ()
                | line :: tl -> (
                    match Json.of_string line with
                    | Error _ ->
                        if i = n - 1 then Ok ()
                        else
                          fail "corrupt timeline line"
                            [ ("line", string_of_int (i + 2)) ]
                    | Ok v -> (
                        let slot =
                          Option.bind
                            (Option.bind (Json.member "event" v)
                               (Json.member "slot"))
                            Json.to_int
                        in
                        let kind =
                          Option.bind
                            (Option.bind
                               (Option.bind (Json.member "event" v)
                                  (Json.member "fault"))
                               (Json.member "kind"))
                            Json.to_str
                        in
                        match (slot, kind) with
                        | Some slot, Some kind ->
                            incr total;
                            let lo, hi, k =
                              match Hashtbl.find_opt kinds kind with
                              | None ->
                                  kind_names := kind :: !kind_names;
                                  (slot, slot, 0)
                              | Some (lo, hi, k) -> (lo, hi, k)
                            in
                            Hashtbl.replace kinds kind
                              (Int.min lo slot, Int.max hi slot, k + 1);
                            go (i + 1) tl
                        | _, _ ->
                            if i = n - 1 then Ok ()
                            else
                              fail "timeline line has no event kind"
                                [ ("line", string_of_int (i + 2)) ]))
              in
              Result.map
                (fun () ->
                  let t =
                    Tablefmt.create ~title:"fault timeline"
                      ~columns:[ "kind"; "events"; "first slot"; "last slot" ]
                  in
                  let sorted =
                    List.filter_map
                      (fun k ->
                        Option.map
                          (fun v -> (k, v))
                          (Hashtbl.find_opt kinds k))
                      (List.sort String.compare !kind_names)
                  in
                  List.iter
                    (fun (kind, (lo, hi, k)) ->
                      Tablefmt.add_row t
                        [
                          kind;
                          string_of_int k;
                          string_of_int lo;
                          string_of_int hi;
                        ])
                    sorted;
                  section ~heading:"chaos timeline"
                    ~notes:[ Printf.sprintf "%d events" !total ]
                    [ t ])
                (go 0 rest)
          | _ -> fail "header is not a wfs-chaos/1-timeline header" []))

(* --- rendering --- *)

let to_text sections =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf "== ";
      Buffer.add_string buf s.heading;
      Buffer.add_string buf " ==\n";
      List.iter
        (fun t ->
          Buffer.add_string buf (Tablefmt.render t);
          Buffer.add_char buf '\n')
        s.tables;
      List.iter
        (fun n ->
          Buffer.add_string buf n;
          Buffer.add_char buf '\n')
        s.notes;
      Buffer.add_char buf '\n')
    sections;
  Buffer.contents buf

(* lint: allow R8 -- wfs_report's sanctioned stdout surface: [print] only echoes [to_text]; the report binary owns the channel *)
let print sections = print_string (to_text sections)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  "body{font-family:sans-serif;margin:2em;color:#222}\
   h1{border-bottom:2px solid #444}\
   h2{margin-top:1.6em;color:#334}\
   h3{margin-bottom:0.3em;color:#556}\
   table{border-collapse:collapse;margin:0.5em 0 1.2em 0}\
   th,td{border:1px solid #bbb;padding:0.25em 0.7em;text-align:right;\
   font-variant-numeric:tabular-nums}\
   th{background:#eef;text-align:center}\
   td:first-child{text-align:left}\
   p.note{color:#666;font-size:0.9em}"

let to_html ~title sections =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>";
  Buffer.add_string buf (html_escape title);
  Buffer.add_string buf "</title><style>";
  Buffer.add_string buf style;
  Buffer.add_string buf "</style></head><body><h1>";
  Buffer.add_string buf (html_escape title);
  Buffer.add_string buf "</h1>\n";
  List.iter
    (fun s ->
      Buffer.add_string buf "<h2>";
      Buffer.add_string buf (html_escape s.heading);
      Buffer.add_string buf "</h2>\n";
      List.iter
        (fun t ->
          Buffer.add_string buf "<h3>";
          Buffer.add_string buf (html_escape (Tablefmt.title t));
          Buffer.add_string buf "</h3>\n<table><tr>";
          List.iter
            (fun c ->
              Buffer.add_string buf "<th>";
              Buffer.add_string buf (html_escape c);
              Buffer.add_string buf "</th>")
            (Tablefmt.columns t);
          Buffer.add_string buf "</tr>\n";
          List.iter
            (fun row ->
              Buffer.add_string buf "<tr>";
              List.iter
                (fun cell ->
                  Buffer.add_string buf "<td>";
                  Buffer.add_string buf (html_escape cell);
                  Buffer.add_string buf "</td>")
                row;
              Buffer.add_string buf "</tr>\n")
            (Tablefmt.rows t);
          Buffer.add_string buf "</table>\n")
        s.tables;
      List.iter
        (fun n ->
          Buffer.add_string buf "<p class=\"note\">";
          Buffer.add_string buf (html_escape n);
          Buffer.add_string buf "</p>\n")
        s.notes)
    sections;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
