(** Offline dashboard rendering for [wfs_report].

    A report is a list of sections, each a heading plus {!Wfs_util.Tablefmt}
    tables and free-form notes.  Section builders exist for every on-disk
    artifact this repo produces — wfs-bench/1 artifacts, wfs-trace/1
    single-cell traces, wfs-xray-trace/1 merged topology timelines,
    wfs-causality/1 flow-journey logs, wfs-windows/1 aggregation streams,
    wfs-chaos/1-timeline fault logs, and skip-telemetry collectors — and
    the whole list renders to aligned text or a self-contained HTML page
    (inline CSS, no external assets: the CI dashboard artifact). *)

type section = {
  heading : string;
  tables : Wfs_util.Tablefmt.t list;
  notes : string list;
}

val section :
  heading:string -> ?notes:string list -> Wfs_util.Tablefmt.t list -> section

val of_artifact : Wfs_runner.Artifact.t -> section
(** Run-parameter summary plus every artifact table, re-rendered. *)

val of_trace : Wfs_obs.Trace.contents -> section
(** Single-cell trace: sample counts, idle share, per-flow sampled service
    and the Jain index over sampled selections. *)

val of_xray : Mux.contents -> section
(** Merged topology timeline: per-cell roster/sample/selection counts and
    per-cell Jain over sampled selections (resident flows only), plus a
    global summary. *)

val of_causality : Causality.event list -> section
(** Flow journeys: per flow, its move/blocked/lost/corrupt/rehome counts,
    cumulative clamp truncation ({!Causality.truncation}) and the cell
    path it walked; plus a crash table. *)

val of_windows : Windowed.contents -> section

val of_skip : Wfs_core.Skip_stats.t -> section

val of_timeline : path:string -> (section, Wfs_util.Error.t) result
(** Parse a wfs-chaos/1-timeline JSONL file (schema-checked, torn final
    line tolerated) and summarize events per fault kind. *)

val to_text : section list -> string

val print : section list -> unit
(** [print s] echoes [to_text s] to stdout — the report CLI's rendering
    surface (sanctioned R8 exception, like [Tablefmt.print]). *)

val to_html : title:string -> section list -> string
(** A single self-contained HTML page (inline CSS, escaped cells). *)
