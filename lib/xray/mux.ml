module Json = Wfs_util.Json
module Error = Wfs_util.Error
module Sched = Wfs_core.Wireless_sched
module Channel = Wfs_channel.Channel
module Trace = Wfs_obs.Trace

let schema = "wfs-xray-trace/1"

type entry =
  | Roster of { cell : int; slot : int; gids : int array }
  | Sample of { cell : int; sample : Trace.sample }

let reserved = [ "schema"; "cells"; "n_flows"; "stride" ]

(* --- line codec.  A roster line is {"cell":c,"slot":s,"roster":[gids]};
   a sample line is the wfs-trace/1 sample object with a "cell" field
   prepended (Trace.sample_of_json ignores the extra key, so the sample
   codec is reused bit-exactly). --- *)

let entry_to_json = function
  | Roster { cell; slot; gids } ->
      Json.Obj
        [
          ("cell", Json.Int cell);
          ("slot", Json.Int slot);
          ("roster", Json.Arr (Array.to_list (Array.map (fun g -> Json.Int g) gids)));
        ]
  | Sample { cell; sample } -> (
      match Trace.sample_to_json sample with
      | Json.Obj fields -> Json.Obj (("cell", Json.Int cell) :: fields)
      | other -> other)

let entry_of_json v =
  let ( let* ) = Option.bind in
  let* cell = Option.bind (Json.member "cell" v) Json.to_int in
  match Json.member "roster" v with
  | Some rv ->
      let* slot = Option.bind (Json.member "slot" v) Json.to_int in
      let* gids = Json.to_list rv in
      let* gids =
        List.fold_left
          (fun acc gv ->
            match acc with
            | None -> None
            | Some acc -> Option.map (fun g -> g :: acc) (Json.to_int gv))
          (Some []) gids
      in
      Some (Roster { cell; slot; gids = Array.of_list (List.rev gids) })
  | None ->
      let* sample = Trace.sample_of_json v in
      Some (Sample { cell; sample })

let entry_to_string e = Json.to_string ~pretty:false (entry_to_json e)

let entry_of_string line =
  match Json.of_string line with
  | Error _ -> None
  | Ok v -> entry_of_json v

let entry_equal a b =
  match (a, b) with
  | Roster a, Roster b ->
      a.cell = b.cell && a.slot = b.slot
      && Array.length a.gids = Array.length b.gids
      && Array.for_all2 ( = ) a.gids b.gids
  | Sample a, Sample b -> a.cell = b.cell && Trace.sample_equal a.sample b.sample
  | (Roster _ | Sample _), _ -> false

let entry_slot = function
  | Roster { slot; _ } -> slot
  | Sample { sample; _ } -> sample.Trace.slot

let entry_cell = function Roster { cell; _ } | Sample { cell; _ } -> cell

(* --- per-cell part writers.

   During the parallel phase of a topology epoch each cell appends to its
   OWN part file, so no cross-domain ordering exists to get wrong — the
   deterministic global order is reconstructed at [finish] by a positional
   merge on (slot, cell), which is exactly the order a --jobs 1 run would
   have produced.  Rosters are only written from the sequential barrier
   (cell install/rebuild), samples only from the owning cell's domain. --- *)

type part = { path : string; oc : out_channel; buf : Buffer.t }

type t = {
  cells : int;
  stride : int;
  params : (string * Json.t) list;
  parts : part array;
  mutable finished : bool;
}

let part_path ~part_base c = Printf.sprintf "%s.part%d" part_base c

let create ?(stride = 1) ?(params = []) ~cells ~part_base () =
  if cells < 1 then Error.bad_config ~who:"Mux.create" "cells must be >= 1";
  if stride < 1 then Error.bad_config ~who:"Mux.create" "stride must be >= 1";
  List.iter
    (fun (k, _) ->
      if List.exists (String.equal k) reserved then
        Error.bad_config ~who:"Mux.create" ("reserved param name: " ^ k))
    params;
  let parts =
    Array.init cells (fun c ->
        let path = part_path ~part_base c in
        { path; oc = open_out_bin path; buf = Buffer.create 256 })
  in
  { cells; stride; params; parts; finished = false }

let write_entry t e =
  let p = t.parts.(entry_cell e) in
  Buffer.clear p.buf;
  Buffer.add_string p.buf (entry_to_string e);
  Buffer.add_char p.buf '\n';
  Buffer.output_buffer p.oc p.buf

let note_roster t ~cell ~slot ~gids =
  if t.finished then Error.bad_config ~who:"Mux.note_roster" "mux already finished";
  if cell < 0 || cell >= t.cells then
    Error.bad_config ~who:"Mux.note_roster" "cell out of range";
  write_entry t (Roster { cell; slot; gids })

let probe t ~cell ~n_flows (sched : Sched.instance) :
    Wfs_core.Simulator.slot_probe =
  if cell < 0 || cell >= t.cells then
    Error.bad_config ~who:"Mux.probe" "cell out of range";
  if n_flows < 1 then Error.bad_config ~who:"Mux.probe" "n_flows must be >= 1";
  let p = sched.Sched.probe in
  let tag_of = p.Sched.finish_tag in
  let credit_of = p.Sched.credit in
  let vt_of = p.Sched.virtual_time in
  let lag_of = p.Sched.lag_sum in
  let queue_of = sched.Sched.queue_length in
  let stride = t.stride in
  fun ~slot ~selected ~states ->
    if slot mod stride = 0 then begin
      let flows =
        Array.init n_flows (fun i ->
            {
              Trace.queue = queue_of i;
              good = Channel.state_is_good states.(i);
              tag = (match tag_of with None -> None | Some f -> Some (f i));
              credit =
                (match credit_of with
                | None -> None
                | Some f ->
                    let balance, _, _ = f i in
                    Some balance);
            })
      in
      let virtual_time =
        match vt_of with None -> None | Some f -> Some (f ())
      in
      let lag_sum = match lag_of with None -> None | Some f -> Some (f ()) in
      write_entry t
        (Sample
           { cell; sample = { Trace.slot; selected; virtual_time; lag_sum; flows } })
    end

let close_parts t = Array.iter (fun p -> flush p.oc; close_out_noerr p.oc) t.parts

let remove_parts t =
  Array.iter (fun p -> try Sys.remove p.path with Sys_error _ -> ()) t.parts

let abort t =
  if not t.finished then begin
    t.finished <- true;
    close_parts t;
    remove_parts t
  end

(* --- merged header --- *)

let header_to_json ~cells ~n_flows ~stride ~params =
  Json.Obj
    (("schema", Json.Str schema)
    :: ("cells", Json.Int cells)
    :: ("n_flows", Json.Int n_flows)
    :: ("stride", Json.Int stride)
    :: params)

(* --- deterministic k-way merge.

   Each part is already slot-ordered (one cell's own timeline), so the
   global order is the positional merge on (slot, cell): smallest slot
   first, ties broken by cell id, within-cell order preserved.  This is
   byte-identical across --jobs because the parts themselves are — every
   cell's stream depends only on that cell's deterministic state. --- *)

type cursor = { ic : in_channel; mutable cur : (int * int * string) option }

let advance_cursor ~who cu =
  match input_line cu.ic with
  | exception End_of_file -> cu.cur <- None
  | line -> (
      match entry_of_string line with
      | Some e -> cu.cur <- Some (entry_slot e, entry_cell e, line)
      | None ->
          Error.invalidf who "corrupt part line during merge: %s" line)

(* CSV rendering of the merged timeline: one row per sample, flows mapped
   from cell-local index to global id through the latest roster of that
   cell; gids outside the sample's cell render as empty cells (presence
   encoding, like the single-cell CSV sink). *)

let csv_columns n_flows =
  let base = [ "slot"; "cell"; "selected"; "virtual_time"; "lag_sum" ] in
  let per_flow g =
    [
      Printf.sprintf "q%d" g;
      Printf.sprintf "good%d" g;
      Printf.sprintf "tag%d" g;
      Printf.sprintf "credit%d" g;
    ]
  in
  base @ List.concat (List.init n_flows per_flow)

let csv_row buf ~n_flows ~rosters (cell : int) (s : Trace.sample) =
  let who = "Mux.finish" in
  let roster =
    match rosters.(cell) with
    | Some r -> r
    | None -> Error.invalidf who "sample for cell %d precedes its roster" cell
  in
  if Array.length roster <> Array.length s.Trace.flows then
    Error.invalidf who "sample width disagrees with cell %d roster" cell;
  Buffer.clear buf;
  Buffer.add_string buf (string_of_int s.Trace.slot);
  Buffer.add_char buf ',';
  Buffer.add_string buf (string_of_int cell);
  Buffer.add_char buf ',';
  (match s.Trace.selected with
  | None -> ()
  | Some local ->
      if local < 0 || local >= Array.length roster then
        Error.invalidf who "selected flow outside cell %d roster" cell;
      Buffer.add_string buf (string_of_int roster.(local)));
  Buffer.add_char buf ',';
  (match s.Trace.virtual_time with
  | None -> ()
  | Some v -> Buffer.add_string buf (Json.float_to_string v));
  Buffer.add_char buf ',';
  (match s.Trace.lag_sum with
  | None -> ()
  | Some l -> Buffer.add_string buf (string_of_int l));
  let by_gid = Array.make n_flows None in
  Array.iteri
    (fun local f ->
      let g = roster.(local) in
      if g < 0 || g >= n_flows then
        Error.invalidf who "roster gid %d outside n_flows %d" g n_flows;
      by_gid.(g) <- Some f)
    s.Trace.flows;
  Array.iter
    (fun slot_flow ->
      match slot_flow with
      | None -> Buffer.add_string buf ",,,,"
      | Some (f : Trace.flow_sample) ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int f.Trace.queue);
          Buffer.add_char buf ',';
          Buffer.add_char buf (if f.Trace.good then '1' else '0');
          Buffer.add_char buf ',';
          (match f.Trace.tag with
          | None -> ()
          | Some v -> Buffer.add_string buf (Json.float_to_string v));
          Buffer.add_char buf ',';
          (match f.Trace.credit with
          | None -> ()
          | Some c -> Buffer.add_string buf (string_of_int c)))
    by_gid;
  Buffer.add_char buf '\n'

let finish t ~n_flows ?jsonl ?csv () =
  let who = "Mux.finish" in
  if t.finished then Error.bad_config ~who "mux already finished";
  if n_flows < 1 then Error.bad_config ~who "n_flows must be >= 1";
  t.finished <- true;
  close_parts t;
  Fun.protect
    ~finally:(fun () -> remove_parts t)
    (fun () ->
      let cursors =
        Array.map (fun p -> { ic = open_in_bin p.path; cur = None }) t.parts
      in
      Fun.protect
        ~finally:(fun () -> Array.iter (fun cu -> close_in_noerr cu.ic) cursors)
        (fun () ->
          Array.iter (advance_cursor ~who) cursors;
          let jout = Option.map open_out_bin jsonl in
          let cout = Option.map open_out_bin csv in
          Fun.protect
            ~finally:(fun () ->
              Option.iter close_out_noerr jout;
              Option.iter close_out_noerr cout)
            (fun () ->
              Option.iter
                (fun oc ->
                  output_string oc
                    (Json.to_string ~pretty:false
                       (header_to_json ~cells:t.cells ~n_flows
                          ~stride:t.stride ~params:t.params));
                  output_char oc '\n')
                jout;
              Option.iter
                (fun oc ->
                  output_string oc (String.concat "," (csv_columns n_flows));
                  output_char oc '\n')
                cout;
              let rosters = Array.make t.cells None in
              let buf = Buffer.create 256 in
              let rec loop () =
                let best = ref (-1) in
                Array.iteri
                  (fun c cu ->
                    match cu.cur with
                    | None -> ()
                    | Some (slot, _, _) -> (
                        match !best with
                        | -1 -> best := c
                        | b -> (
                            match cursors.(b).cur with
                            | Some (bslot, _, _) when slot < bslot -> best := c
                            | _ -> ())))
                  cursors;
                match !best with
                | -1 -> ()
                | c ->
                    let cu = cursors.(c) in
                    (match cu.cur with
                    | None -> ()
                    | Some (_, _, line) ->
                        Option.iter
                          (fun oc ->
                            output_string oc line;
                            output_char oc '\n')
                          jout;
                        (match entry_of_string line with
                        | Some (Roster { cell; gids; _ }) ->
                            rosters.(cell) <- Some gids
                        | Some (Sample { cell; sample }) ->
                            Option.iter
                              (fun oc ->
                                csv_row buf ~n_flows ~rosters cell sample;
                                Buffer.output_buffer oc buf)
                              cout
                        | None -> ()));
                    advance_cursor ~who cu;
                    loop ()
              in
              loop ())))

(* --- reading a merged stream back --- *)

type contents = {
  cells : int;
  n_flows : int;
  stride : int;
  params : (string * Json.t) list;
  entries : entry list;
}

let header_of_json v =
  let ( let* ) = Option.bind in
  let* s = Option.bind (Json.member "schema" v) Json.to_str in
  if not (String.equal s schema) then None
  else
    let* cells = Option.bind (Json.member "cells" v) Json.to_int in
    let* n_flows = Option.bind (Json.member "n_flows" v) Json.to_int in
    let* stride = Option.bind (Json.member "stride" v) Json.to_int in
    if cells < 1 || n_flows < 1 || stride < 1 then None
    else
      let params =
        match v with
        | Json.Obj fields ->
            List.filter
              (fun (k, _) -> not (List.exists (String.equal k) reserved))
              fields
        | _ -> []
      in
      Some (cells, n_flows, stride, params)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load ~path =
  let fail what context =
    Error
      (Error.v Error.Bad_spec ~who:"Mux.load" what
         ~context:(("path", path) :: context))
  in
  match read_lines path with
  | exception Sys_error msg -> fail msg []
  | [] -> fail "empty xray trace (no header)" []
  | hline :: rest -> (
      match Json.of_string hline with
      | Error msg -> fail "unreadable header" [ ("detail", msg) ]
      | Ok hv -> (
          match header_of_json hv with
          | None -> fail "header is not a wfs-xray-trace/1 header" []
          | Some (cells, n_flows, stride, params) ->
              let n = List.length rest in
              let rec go acc i = function
                | [] ->
                    Ok { cells; n_flows; stride; params; entries = List.rev acc }
                | line :: tl -> (
                    match entry_of_string line with
                    | Some e ->
                        if entry_cell e < 0 || entry_cell e >= cells then
                          fail "entry cell outside header cells"
                            [ ("line", string_of_int (i + 2)) ]
                        else go (e :: acc) (i + 1) tl
                    | None ->
                        if i = n - 1 then
                          Ok
                            {
                              cells;
                              n_flows;
                              stride;
                              params;
                              entries = List.rev acc;
                            }
                        else
                          fail "corrupt entry before end of trace"
                            [ ("line", string_of_int (i + 2)) ])
              in
              go [] 0 rest))
