(** The [wfs-windows/1] tumbling-window aggregation stream — the
    measurement bus the future [wfs_ric] controller subscribes to.

    A collector watches the run's CUMULATIVE {!Wfs_core.Metrics}
    accumulator and closes a window each time the observation position
    crosses a tumbling boundary, recording the window's Jain fairness
    index, the paper's eq-(1) normalized-service gap (over flows that had
    traffic in the window), and the window's arrival / delivery / drop /
    backlog / loss deltas.  Single-cell runs feed it every slot through
    {!observer}; a topology feeds it at epoch barriers via
    [Wfs_topo.Topology.peek_metrics] — when sampling is sparser than the
    window length, [start_slot] / [end_slot] record the span actually
    covered, so the stream never claims resolution the sampling lacked. *)

val schema : string
(** ["wfs-windows/1"] *)

type window = {
  index : int;
  start_slot : int;  (** inclusive *)
  end_slot : int;  (** exclusive *)
  jain : float;  (** Jain index of per-flow weight-normalized service *)
  gap : float;  (** eq-(1) max normalized-service gap, 0 under 2 active flows *)
  arrivals : int;
  delivered : int;
  dropped : int;
  backlog : int;  (** total queued packets at window end (not a delta) *)
  loss : float;  (** window drops / window arrivals; 0 when no arrivals *)
}

val window_to_json : window -> Wfs_util.Json.t
val window_of_json : Wfs_util.Json.t -> window option
val window_to_string : window -> string

val window_of_string : string -> window option
(** Bit-exact round-trip of {!window_to_string} (qcheck-verified). *)

val window_equal : window -> window -> bool
(** Floats compare by total order. *)

(** {1 In-run collector} *)

type t

val create : weights:float array -> window:int -> t
(** [weights] are the flows' rate weights (gid-indexed; normalization
    denominators for Jain and the gap).
    @raise Wfs_util.Error.Error (kind [Bad_config]) when [window < 1],
    the weight array is empty, or any weight is not positive. *)

val observe : t -> slot:int -> metrics:Wfs_core.Metrics.t -> unit
(** Feed the cumulative accumulator at the end of [slot].  Slots must be
    nondecreasing across calls; gaps are fine (barrier sampling). *)

val flush : t -> slot:int -> metrics:Wfs_core.Metrics.t -> unit
(** Close the trailing partial window at end of run (no-op when nothing
    accumulated since the last boundary). *)

val windows : t -> window list

val observer : t -> int -> Wfs_core.Metrics.t -> unit
(** Adapter with the {!Wfs_core.Simulator.config} observer shape.  NOTE:
    attaching an observer degenerates the fast path — windowed aggregation
    per slot is a reference-loop instrument; topology runs sample at
    barriers instead and stay compressed. *)

(** {1 File round-trip} *)

type contents = { window : int; windows : window list }

val write : path:string -> window:int -> window list -> unit

val load : path:string -> (contents, Wfs_util.Error.t) result
(** Journal convention: torn final line dropped; mid-file corruption, a
    missing header or a wrong schema tag yield [Error] (kind
    [Bad_spec]). *)
