module Skip_stats = Wfs_core.Skip_stats
module Histogram = Wfs_util.Stats.Histogram
module Tablefmt = Wfs_util.Tablefmt

let ratio_cell r = Printf.sprintf "%.4f" r

let rows (k : Skip_stats.t) =
  let h = Skip_stats.window_hist k in
  let pct p =
    if Histogram.count h = 0 then "-"
    else Tablefmt.cell_of_float ~decimals:1 (Histogram.percentile h p)
  in
  [
    [ "engine slots"; string_of_int (Skip_stats.engine_slots k) ];
    [ "reference slots"; string_of_int (Skip_stats.reference_slots k) ];
    [ "absorbed windows"; string_of_int (Skip_stats.absorbed_windows k) ];
    [ "absorbed slots"; string_of_int (Skip_stats.absorbed_slots k) ];
    [ "declined windows"; string_of_int (Skip_stats.declined_windows k) ];
    [ "max window"; string_of_int (Skip_stats.max_window k) ];
    [ "window p50"; pct 50. ];
    [ "window p90"; pct 90. ];
    [ "quiescence ratio"; ratio_cell (Skip_stats.quiescence_ratio k) ];
    [ "compressed"; (if Skip_stats.compressed k then "yes" else "no") ];
  ]

let columns = [ "metric"; "value" ]

let to_table ?(title = "fast-path skip telemetry") k =
  let t = Tablefmt.create ~title ~columns in
  List.iter (fun r -> Tablefmt.add_row t r) (rows k);
  t

let artifact_table ?(title = "fast-path skip telemetry") k =
  { Wfs_runner.Artifact.title; columns; rows = rows k }

let merge_all = function
  | [] -> None
  | k :: tl -> Some (List.fold_left Skip_stats.merge k tl)
