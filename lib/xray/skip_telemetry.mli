(** Rendering for {!Wfs_core.Skip_stats} collectors — the explanation of
    the eventcomp speedups in table form: how many quiescent windows the
    compressed engine absorbed in closed form, how long they were, and
    what fraction of simulated time never touched the per-slot loop. *)

val to_table : ?title:string -> Wfs_core.Skip_stats.t -> Wfs_util.Tablefmt.t
(** Two-column metric/value table: engine vs reference slots, absorbed /
    declined windows, window length percentiles, quiescence ratio, and
    whether the run stayed fully compressed. *)

val artifact_table :
  ?title:string -> Wfs_core.Skip_stats.t -> Wfs_runner.Artifact.table
(** The same rows as a wfs-bench/1 artifact table. *)

val merge_all : Wfs_core.Skip_stats.t list -> Wfs_core.Skip_stats.t option
(** Left fold of {!Wfs_core.Skip_stats.merge}; [None] on an empty list.
    Merge in unit order so multi-run aggregates are jobs-invariant. *)
