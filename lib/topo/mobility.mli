(** Deterministic flow mobility: the per-spec RNG stream handoffs are
    drawn from.

    One stream per topology, consumed only at epoch barriers by the
    {!Topology} driver, in ascending global-flow-id order — never inside
    the parallel per-cell phase — so the drawn moves are a pure function
    of (seed, cells, rate, barrier index, flow order) and the whole run
    stays byte-identical for any [--jobs] value. *)

type t

val create : seed:int -> cells:int -> rate:float -> t
(** [rate] is the per-flow, per-epoch handoff probability.
    @raise Invalid_argument when [rate] is outside [[0, 1]] or
    [cells < 1]. *)

val draw : t -> home:int -> int option
(** One per-flow draw: [Some target] when the flow hands off this epoch
    (a cell other than [home], uniform), [None] when it stays.  Always
    consumes exactly one Bernoulli draw (plus one integer draw when
    moving), so the stream position depends only on how many flows were
    asked and which moved — not on who asks.  With a single cell there is
    nowhere to go: always [None], still consuming the Bernoulli draw. *)
