module Rng = Wfs_util.Rng

type t = { rng : Rng.t; cells : int; rate : float }

let create ~seed ~cells ~rate =
  if cells < 1 then
    Wfs_util.Error.invalidf "Mobility.create" "cells must be >= 1, got %d" cells;
  if not (rate >= 0. && rate <= 1.) then
    Wfs_util.Error.invalidf "Mobility.create" "rate must be in [0,1], got %g"
      rate;
  { rng = Rng.create seed; cells; rate }

let draw t ~home =
  if Rng.bernoulli t.rng t.rate && t.cells > 1 then begin
    (* Uniform over the other cells: draw from [0, cells-1) and skip
       [home].  Bernoulli is drawn first (and unconditionally) so the
       stream advances identically whether or not a target exists. *)
    let k = Rng.int t.rng (t.cells - 1) in
    Some (if k >= home then k + 1 else k)
  end
  else None
