module Sched = Wfs_core.Wireless_sched
module Sim = Wfs_core.Simulator
module Params = Wfs_core.Params
module Registry = Wfs_core.Registry
module Metrics = Wfs_core.Metrics
module Sim_config = Wfs_core.Sim_config
module Instruments = Wfs_obs.Instruments
module Packet = Wfs_traffic.Packet
module Error = Wfs_util.Error

type member = { gid : int; setup : Sim.flow_setup }

type parcel = {
  member : member;
  carry : Sched.carry;
  backlog : Packet.t list;
  moved : bool;
}

(* Observability tap: every callback fires from sequential code only —
   [on_roster] and [on_carry] from install (cell creation and the epoch
   barrier's rebuild), and the probe builder once per install.  The probe
   it returns is the only tap artifact that runs inside the parallel
   phase, and it writes exclusively to per-cell state (Wfs_xray.Mux part
   files), so cross-domain ordering never exists. *)
type tap = {
  on_roster : cell:int -> slot:int -> gids:int array -> unit;
  probe :
    cell:int ->
    n_flows:int ->
    Sched.instance ->
    Wfs_core.Simulator.slot_probe option;
  on_carry :
    cell:int ->
    slot:int ->
    gid:int ->
    carried:Sched.carry ->
    accepted:Sched.carry ->
    unit;
}

type t = {
  cell_id : int;
  entry : Registry.entry;
  credit_limit : int option;
  debit_limit : int option;
  horizon : int;
  histograms : bool;
  invariants : bool;
  fast_path : bool;
  totals : Metrics.t;  (* indexed by global flow id *)
  ins : Instruments.t;
  epochs : Instruments.counter;
  handoffs_in : Instruments.counter;
  handoffs_out : Instruments.counter;
  rebuilds : Instruments.counter;
  carried_lag : Instruments.gauge;
  carried_credit : Instruments.gauge;
  truncated_lag : Instruments.gauge;
  truncated_credit : Instruments.gauge;
  tap : tap option;
  mutable members : member array;
  mutable sched : Sched.instance option;
  mutable session : Sim.Session.t option;
}

let id t = t.cell_id
let n_members t = Array.length t.members
let gids t = Array.to_list (Array.map (fun m -> m.gid) t.members)
let instruments t = t.ins
let note_departure t = Instruments.incr t.handoffs_out
let note_arrival t = Instruments.incr t.handoffs_in

(* The carry ledger: carried = accepted + truncated, where import may only
   shrink the magnitude (clamp toward zero), never grow it or flip its
   sign.  An import outside that envelope is a scheduler handoff-hook bug,
   caught here rather than surfacing as silently unfair service.  Half a
   packet of slack covers integral schedulers rounding a virtual-time
   denominated lag. *)
let check_ledger t ~gid ~(carried : Sched.carry) ~(accepted : Sched.carry) =
  Wfs_core.Invariant.check_carry ~who:"Wfs_topo.Cell.rebuild"
    ~context:
      [ ("cell", string_of_int t.cell_id); ("flow", string_of_int gid) ]
    ~carried ~accepted

let account_carry t ~accepted ~truncated =
  Instruments.set t.carried_lag (Float.abs accepted.Sched.lag);
  Instruments.set t.carried_credit (float_of_int (abs accepted.Sched.credit));
  Instruments.set t.truncated_lag (Float.abs truncated.Sched.lag);
  Instruments.set t.truncated_credit
    (float_of_int (abs truncated.Sched.credit))

(* (Re)construct the scheduler and session over a parcel list: re-number
   flows to dense local ids in ascending global id, import carries,
   re-enqueue backlogs, resume at [slot]. *)
let install t ~slot parcels =
  let parcels =
    List.sort (fun a b -> Int.compare a.member.gid b.member.gid) parcels
  in
  let members = Array.of_list (List.map (fun p -> p.member) parcels) in
  t.members <- members;
  (match t.tap with
  | Some tp ->
      tp.on_roster ~cell:t.cell_id ~slot
        ~gids:(Array.map (fun m -> m.gid) members)
  | None -> ());
  if Array.length members = 0 then begin
    t.sched <- None;
    t.session <- None
  end
  else begin
    let setups =
      Array.mapi
        (fun lid m ->
          { m.setup with Sim.flow = { m.setup.Sim.flow with Params.id = lid } })
        members
    in
    let flows = Wfs_core.Presets.flows_of setups in
    let sched =
      t.entry.Registry.make ?credit_limit:t.credit_limit
        ?debit_limit:t.debit_limit flows
    in
    List.iteri
      (fun lid p ->
        if p.carry.Sched.credit <> 0 || Float.abs p.carry.Sched.lag > 0. then begin
          let accepted =
            match sched.Sched.handoff with
            | Some h -> h.Sched.import ~flow:lid p.carry
            | None -> Sched.carry_zero
          in
          check_ledger t ~gid:p.member.gid ~carried:p.carry ~accepted;
          if p.moved then begin
            account_carry t ~accepted
              ~truncated:
                {
                  Sched.lag = p.carry.Sched.lag -. accepted.Sched.lag;
                  credit = p.carry.Sched.credit - accepted.Sched.credit;
                };
            match t.tap with
            | Some tp ->
                tp.on_carry ~cell:t.cell_id ~slot ~gid:p.member.gid
                  ~carried:p.carry ~accepted
            | None -> ()
          end
        end
        else if p.moved then begin
          account_carry t ~accepted:Sched.carry_zero
            ~truncated:Sched.carry_zero;
          match t.tap with
          | Some tp ->
              tp.on_carry ~cell:t.cell_id ~slot ~gid:p.member.gid
                ~carried:Sched.carry_zero ~accepted:Sched.carry_zero
          | None -> ()
        end)
      parcels;
    List.iteri
      (fun lid p ->
        List.iter
          (fun pkt -> sched.Sched.enqueue ~slot { pkt with Packet.flow = lid })
          p.backlog)
      parcels;
    let cfg =
      Sim_config.v ~horizon:t.horizon setups
      |> Sim_config.with_predictor t.entry.Registry.predictor
      |> (if t.histograms then Sim_config.with_histograms else Fun.id)
      |> (if t.invariants then Sim_config.with_invariants else Fun.id)
      |> Sim_config.with_fast_path t.fast_path
      |> (match t.tap with
         | Some tp -> (
             match
               tp.probe ~cell:t.cell_id ~n_flows:(Array.length members) sched
             with
             | Some p -> Sim_config.with_probe p
             | None -> Fun.id)
         | None -> Fun.id)
    in
    t.sched <- Some sched;
    t.session <- Some (Sim_config.start ~first_slot:slot sched cfg)
  end

let create ?credit_limit ?debit_limit ?(histograms = false)
    ?(invariants = false) ?(fast_path = false) ?tap ~id ~sched ~horizon
    ~n_total members =
  if n_total < 1 then
    Error.invalidf "Cell.create" "n_total must be >= 1, got %d" n_total;
  let ins = Instruments.create () in
  (* Registration order is the positional merge key across cells: every
     cell runs exactly this sequence. *)
  let epochs = Instruments.counter ins "topo.epochs" in
  let handoffs_in = Instruments.counter ins "topo.handoffs.in" in
  let handoffs_out = Instruments.counter ins "topo.handoffs.out" in
  let rebuilds = Instruments.counter ins "topo.rebuilds" in
  let carried_lag =
    Instruments.gauge ~policy:Instruments.Sum ins "topo.carry.lag"
  in
  let carried_credit =
    Instruments.gauge ~policy:Instruments.Sum ins "topo.carry.credit"
  in
  let truncated_lag =
    Instruments.gauge ~policy:Instruments.Sum ins "topo.carry.lag.truncated"
  in
  let truncated_credit =
    Instruments.gauge ~policy:Instruments.Sum ins "topo.carry.credit.truncated"
  in
  let t =
    {
      cell_id = id;
      entry = sched;
      credit_limit;
      debit_limit;
      horizon;
      histograms;
      invariants;
      fast_path;
      totals = Metrics.create ~histograms ~n_flows:n_total ();
      ins;
      epochs;
      handoffs_in;
      handoffs_out;
      rebuilds;
      carried_lag;
      carried_credit;
      truncated_lag;
      truncated_credit;
      tap;
      members = [||];
      sched = None;
      session = None;
    }
  in
  install t ~slot:0
    (List.map
       (fun m ->
         { member = m; carry = Sched.carry_zero; backlog = []; moved = false })
       members);
  t

let advance t ~until =
  (match t.session with
  | Some s -> Sim.Session.advance s ~until
  | None -> ());
  Instruments.incr t.epochs

let bank t session =
  Metrics.absorb t.totals ~src:(Sim.Session.metrics session)
    ~map:(fun lid -> t.members.(lid).gid)

let dissolve t =
  match (t.session, t.sched) with
  | Some session, Some sched ->
      bank t session;
      (* Export every carry before draining any queue: exports are
         read-only by contract, drains are not, and a scheduler may keep
         cross-flow accounting. *)
      let carries =
        Array.mapi
          (fun lid _ ->
            match sched.Sched.handoff with
            | Some h -> h.Sched.export ~flow:lid
            | None -> Sched.carry_zero)
          t.members
      in
      let parcels =
        Array.to_list
          (Array.mapi
             (fun lid m ->
               let rec drain acc =
                 match sched.Sched.head lid with
                 | Some pkt ->
                     sched.Sched.drop_head ~flow:lid;
                     drain (pkt :: acc)
                 | None -> List.rev acc
               in
               {
                 member = m;
                 carry = carries.(lid);
                 backlog = drain [];
                 moved = false;
               })
             t.members)
      in
      t.session <- None;
      t.sched <- None;
      t.members <- [||];
      parcels
  | _ ->
      t.session <- None;
      t.sched <- None;
      t.members <- [||];
      []

let rebuild t ~slot parcels =
  Instruments.incr t.rebuilds;
  install t ~slot parcels;
  t

(* Non-destructive cumulative view: banked totals plus the live session's
   accumulator, remapped to global ids.  Feeds barrier-time windowed
   aggregation without touching the session. *)
let peek t ~into =
  Metrics.absorb into ~src:t.totals ~map:Fun.id;
  match t.session with
  | Some s ->
      Metrics.absorb into ~src:(Sim.Session.metrics s)
        ~map:(fun lid -> t.members.(lid).gid)
  | None -> ()

let finish t =
  (match t.session with
  | Some s ->
      Sim.Session.advance s ~until:t.horizon;
      bank t s
  | None -> ());
  t.session <- None;
  t.sched <- None;
  t.totals
