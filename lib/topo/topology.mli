(** Multi-cell lockstep driver: many {!Cell}s sharing one horizon, with
    deterministic §5/§7 handoff state carry at epoch barriers.

    The run alternates two phases.  In the {e parallel} phase every cell
    advances its own session by one epoch — cells are independent work
    items fanned out over {!Wfs_runner.Pool} domains, and the pool's
    positional result ordering plus the cells' disjoint mutable state make
    the phase byte-identical for any [--jobs] value.  At the {e barrier},
    a single sequential pass draws mobility for every flow in ascending
    global id from the topology's one {!Mobility} stream, then executes
    the drawn handoffs: each affected cell is dissolved (metrics banked,
    carries exported, backlogs drained), departing flows change homes, and
    the affected cells are rebuilt with their new rosters, sessions
    resuming at the barrier slot.  Unaffected cells are never touched, so
    a zero-mobility topology runs each cell exactly as an independent
    single-cell simulation — the byte-identity anchor the tests pin.

    Cell [c] instantiates the spec's scenario with seed
    [cell_seed ~seed ~cell:c], so cells are statistically independent
    replicas of the same workload; the mobility stream takes the next
    seed in the sequence. *)

type t

val cell_seed : seed:int -> cell:int -> int
(** [seed + cell * 1_000_003] — the derived seed cell [cell] instantiates
    its scenario with.  Exposed so tests can run the matching independent
    single-cell spec. *)

val of_spec :
  ?credit_limit:int ->
  ?debit_limit:int ->
  ?histograms:bool ->
  ?invariants:bool ->
  Wfs_runner.Spec.t ->
  t
(** Build a topology from a spec carrying a topology clause.  The
    scheduler is resolved through {!Wfs_core.Registry.get}; every cell
    starts with its own instantiation of the spec's scenario ([cells × k]
    flows total, global ids assigned cell-major).
    @raise Invalid_argument when the spec has no topology clause, or on
    an unknown scheduler / example. *)

val n_cells : t -> int
val n_flows : t -> int
(** Topology-wide flow count (global ids are [0 .. n_flows - 1]). *)

val run : ?jobs:int -> t -> unit
(** Execute the whole horizon ([jobs] defaults to 1).  Single-shot:
    running twice raises.  After [run] returns, {!metrics},
    {!instruments}, {!homes} and {!handoffs} are valid.
    @raise Invalid_argument on a second call or [jobs < 1]. *)

val metrics : t -> Wfs_core.Metrics.t
(** Global accumulator, one row per global flow id, merged across cells
    in cell order; idle/busy slot counters are summed over cells.
    @raise Invalid_argument before {!run}. *)

val cell_instruments : t -> cell:int -> Wfs_obs.Instruments.t
val instruments : t -> Wfs_obs.Instruments.t
(** Per-cell registries merged positionally in cell order
    ({!Wfs_obs.Instruments.merge_all}) — identical for any [jobs]. *)

val homes : t -> int array
(** Current home cell of every flow, indexed by global id (the initial
    assignment before {!run}, the final one after). *)

val handoffs : t -> int
(** Total number of executed handoffs so far. *)
