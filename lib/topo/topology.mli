(** Multi-cell lockstep driver: many {!Cell}s sharing one horizon, with
    deterministic §5/§7 handoff state carry at epoch barriers.

    The run alternates two phases.  In the {e parallel} phase every cell
    advances its own session by one epoch — cells are independent work
    items fanned out over {!Wfs_runner.Pool} domains, and the pool's
    positional result ordering plus the cells' disjoint mutable state make
    the phase byte-identical for any [--jobs] value.  At the {e barrier},
    a single sequential pass draws mobility for every flow in ascending
    global id from the topology's one {!Mobility} stream, then executes
    the drawn handoffs: each affected cell is dissolved (metrics banked,
    carries exported, backlogs drained), departing flows change homes, and
    the affected cells are rebuilt with their new rosters, sessions
    resuming at the barrier slot.  Unaffected cells are never touched, so
    a zero-mobility topology runs each cell exactly as an independent
    single-cell simulation — the byte-identity anchor the tests pin.

    Cell [c] instantiates the spec's scenario with seed
    [cell_seed ~seed ~cell:c], so cells are statistically independent
    replicas of the same workload; the mobility stream takes the next
    seed in the sequence, and the chaos stream the one after that.

    {2 Graceful degradation under a fault plan}

    A spec whose topology clause carries an {e active}
    {!Wfs_runner.Spec.faults} plan gets a {!Wfs_chaos.Chaos} engine: all
    fault draws happen at the sequential barrier from the engine's own
    stream, so faulted runs stay byte-identical across [--jobs].  A
    crashed cell (random crash or an over-retry injected worker fault
    within budget) is dissolved — metrics banked, members parked as
    {e orphans} with their carries intact — and sits out whole epochs;
    its flows re-home to surviving cells at the {e next} barrier, passing
    through the same clamp-toward-zero carry ledger
    ({!Wfs_core.Invariant.check_carry}) as voluntary handoffs.  Handoffs
    can be blocked (destination down), lost (zero carry, empty backlog)
    or corrupted (digest mismatch detected, carry zeroed) in transit;
    blackout bursts force a cell's channels Bad without touching their
    underlying sample paths.  An inert plan engages no hook at all: the
    run is byte-identical to the same spec without a plan. *)

type t

val cell_seed : seed:int -> cell:int -> int
(** [seed + cell * 1_000_003] — the derived seed cell [cell] instantiates
    its scenario with.  Exposed so tests can run the matching independent
    single-cell spec. *)

val of_spec :
  ?credit_limit:int ->
  ?debit_limit:int ->
  ?histograms:bool ->
  ?invariants:bool ->
  ?fast_path:bool ->
  ?tap:Cell.tap ->
  ?causality:Wfs_xray.Causality.t ->
  Wfs_runner.Spec.t ->
  t
(** Build a topology from a spec carrying a topology clause.  The
    scheduler is resolved through {!Wfs_core.Registry.get}; every cell
    starts with its own instantiation of the spec's scenario ([cells × k]
    flows total, global ids assigned cell-major).

    [tap] is handed to every {!Cell} (per-cell tracing — see
    {!Cell.tap}); [causality] receives the flow-journey log: one
    {!Wfs_xray.Causality.Move} per mobility draw (with its chaos verdict;
    blocked moves stay put), a [Rehome] per orphan re-home, a [Crash] per
    cell crash — all recorded at the sequential barrier in draw order, so
    the log is byte-identical across [--jobs].  Per-flow [Carry] events
    come through the tap's [on_carry] (the cell import pass owns that
    information).  Both default to off at zero cost.
    @raise Invalid_argument when the spec has no topology clause, or on
    an unknown scheduler / example. *)

val n_cells : t -> int
val n_flows : t -> int
(** Topology-wide flow count (global ids are [0 .. n_flows - 1]). *)

val weights : t -> float array
(** Every flow's rate weight [r_i], indexed by global id (a copy) — the
    normalization denominators for windowed fairness aggregation. *)

val run : ?jobs:int -> ?on_barrier:(slot:int -> unit) -> t -> unit
(** Execute the whole horizon ([jobs] defaults to 1).  Single-shot:
    running twice raises.  [on_barrier] fires after each completed
    barrier (handoffs and fault processing done) with the barrier slot —
    the hook {!Topo_journal} epoch checkpoints are written from.  After
    [run] returns, {!metrics}, {!instruments}, {!homes} and {!handoffs}
    are valid.
    @raise Invalid_argument on a second call or [jobs < 1].
    @raise Wfs_util.Error.Error (kind [Sim_fault]) when injected worker
    faults exceed the plan's per-epoch budget, with the fault timeline
    attached to the error context; (kind [Invariant_violation]) on a
    carry-ledger breach. *)

val metrics : t -> Wfs_core.Metrics.t
(** Global accumulator, one row per global flow id, merged across cells
    in cell order; idle/busy slot counters are summed over cells.
    @raise Invalid_argument before {!run}. *)

val peek_metrics : t -> Wfs_core.Metrics.t
(** A fresh cumulative accumulator valid mid-run: every cell's banked
    totals plus its live session's counters, remapped to global ids.
    Intended for barrier-time sampling (windowed aggregation from an
    [on_barrier] hook); orphan parcels' drained backlogs are invisible
    until their re-home, exactly as in the final merge. *)

val cell_instruments : t -> cell:int -> Wfs_obs.Instruments.t
val instruments : t -> Wfs_obs.Instruments.t
(** Per-cell registries merged positionally in cell order
    ({!Wfs_obs.Instruments.merge_all}) — identical for any [jobs]. *)

val homes : t -> int array
(** Current home cell of every flow, indexed by global id (the initial
    assignment before {!run}, the final one after).  An orphaned flow
    still reports the crashed cell it last lived in. *)

val handoffs : t -> int
(** Total number of executed handoffs so far — voluntary moves plus
    chaos re-homes; blocked moves are not counted. *)

(** {1 Chaos} *)

val chaos_active : t -> bool
(** True when the spec carried an active fault plan. *)

val chaos_instruments : t -> Wfs_obs.Instruments.t option
(** The chaos engine's registry ([chaos.crashes], [chaos.rehomed],
    degradation gauges, ...) — global and barrier-side, deliberately
    separate from the positionally-merged per-cell registries.  [None]
    without an active plan. *)

val fault_timeline : t -> Wfs_chaos.Chaos.event list
(** Chronological fault events so far; [[]] without an active plan. *)

val orphaned : t -> int list
(** Global ids currently parked as crash orphans, ascending. *)

val snapshot : t -> slot:int -> Wfs_util.Json.t
(** The epoch checkpoint {!Topo_journal} records at each barrier: the
    slot, every flow's home, the handoff count and — under an active
    plan — the down mask, orphan set and fault count.  Two runs of the
    same spec agree on every snapshot iff they agree on the whole
    deterministic barrier history, which is what resume verification
    checks. *)
