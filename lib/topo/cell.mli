(** One cell of a multi-cell topology: a scheduler instance plus an
    epoch-resumable {!Wfs_core.Simulator.Session} over the flows currently
    homed here.

    A cell's flow roster changes at epoch barriers, so the cell follows a
    dissolve/rebuild protocol: {!dissolve} banks the live session's
    metrics into a topology-wide accumulator (indexed by {e global} flow
    id) and serializes every member into a {!parcel} — its §5/§7
    compensation {!Wfs_core.Wireless_sched.carry} exported through the
    scheduler's handoff hook plus its backlog drained in FIFO order —
    then {!rebuild} re-admits a (possibly different) parcel list: flows
    are re-numbered to dense local ids in ascending global id, the
    scheduler is constructed fresh, carries are imported (clamped to the
    new scheduler's bounds, with truncation accounted), backlogs are
    re-enqueued, and a new session resumes at the barrier slot.  Sources
    and channels live in the {!member} and are queried with absolute slot
    numbers, so a flow that never moves sees the same sample path as in a
    single-cell run.

    All per-cell telemetry lives in an {!Wfs_obs.Instruments} registry
    created by {!create} with a fixed registration order, so the
    topology can {!Wfs_obs.Instruments.merge_all} cells positionally. *)

module Sched = Wfs_core.Wireless_sched

type member = {
  gid : int;  (** global flow id, stable across handoffs *)
  setup : Wfs_core.Simulator.flow_setup;
      (** the flow's own parameters, source and channel — these move with
          the flow; only the [Params.flow.id] is rewritten per cell *)
}

type parcel = {
  member : member;
  carry : Sched.carry;  (** §5 lag + §7 credit, as exported *)
  backlog : Wfs_traffic.Packet.t list;  (** queued packets, FIFO order *)
  moved : bool;
      (** true when this parcel is crossing cells (set by the topology
          driver); reimports of stay-at-home flows keep it false so the
          carry telemetry counts genuine handoffs only *)
}

(** Observability tap, wired by the topology driver (the xray layer).
    Every callback fires from sequential code only: [on_roster] announces
    the cell's membership (ascending global ids, local index = array
    position) at creation and at every barrier rebuild; [on_carry] reports
    each {e moved} parcel's carried vs accepted lag/credit during a
    rebuild's import pass; [probe] is invoked once per (re)build with the
    fresh scheduler instance and may return a slot probe to attach to the
    new session — the only tap artifact running inside the parallel phase,
    so it must write to per-cell state only (e.g. a [Wfs_xray.Mux] part).
    Attaching a probe degenerates that cell's fast path, exactly like a
    single-cell probed run. *)
type tap = {
  on_roster : cell:int -> slot:int -> gids:int array -> unit;
  probe :
    cell:int ->
    n_flows:int ->
    Sched.instance ->
    Wfs_core.Simulator.slot_probe option;
  on_carry :
    cell:int ->
    slot:int ->
    gid:int ->
    carried:Sched.carry ->
    accepted:Sched.carry ->
    unit;
}

type t

val create :
  ?credit_limit:int ->
  ?debit_limit:int ->
  ?histograms:bool ->
  ?invariants:bool ->
  ?fast_path:bool ->
  ?tap:tap ->
  id:int ->
  sched:Wfs_core.Registry.entry ->
  horizon:int ->
  n_total:int ->
  member list ->
  t
(** A cell with the given initial roster, session started at slot 0.
    [n_total] is the topology-wide flow count — the size of the global-id
    metrics accumulator this cell banks into.  The roster may be empty
    (an empty cell simulates nothing until flows hand off into it). *)

val id : t -> int
val n_members : t -> int

val gids : t -> int list
(** Global ids of the current members, ascending. *)

val advance : t -> until:int -> unit
(** Advance this cell's session to [until] (a no-op past the roster for an
    empty cell) and count the epoch.  Safe to call from a pool worker:
    touches only this cell's state. *)

val dissolve : t -> parcel list
(** Bank the live session's metrics into the global accumulator and
    serialize every member out, ascending global id.  The cell is left
    empty; follow with {!rebuild}. *)

val rebuild : t -> slot:int -> parcel list -> t
(** Re-admit a parcel list (any order; sorted internally by global id) and
    resume the session at [slot].  Imported carries are clamped by the
    scheduler's own {!Sched.handoff} hook; the accepted and truncated
    amounts of {e moved} parcels are accumulated in the cell's
    instruments.  A scheduler without a handoff hook truncates the whole
    carry.  Returns [t] for chaining.
    @raise Wfs_util.Error.Error (kind [Invariant_violation]) when an
    import violates the carry ledger — the accepted state exceeds or
    flips the sign of what was carried (a scheduler handoff-hook bug). *)

val note_departure : t -> unit
val note_arrival : t -> unit
(** Handoff counters, bumped by the topology driver per move. *)

val peek : t -> into:Wfs_core.Metrics.t -> unit
(** Absorb the cell's cumulative view — banked totals plus the live
    session's accumulator, remapped to global flow ids — into [into]
    without disturbing the session.  Barrier-time sampling for windowed
    aggregation. *)

val finish : t -> Wfs_core.Metrics.t
(** Advance to the horizon if needed, bank the final session, and return
    the cell's global-id accumulator (per-flow rows are populated only at
    ids this cell ever hosted). *)

val instruments : t -> Wfs_obs.Instruments.t
(** The per-cell registry; identical shape across cells. *)
