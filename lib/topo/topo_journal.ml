module Journal = Wfs_runner.Journal
module Error = Wfs_util.Error
module Json = Wfs_util.Json

let schema = "wfs-bench/1-topo-journal"

type writer = Journal.writer

let create ~path ~params = Journal.create ~schema ~path ~params ()
let reopen ~path = Journal.reopen ~path
let close = Journal.close
let snapshot_key ~spec ~slot = Printf.sprintf "%s #epoch:%d" spec slot
let result_key ~spec = spec ^ " #result"

let append_snapshot w ~spec ~slot value =
  Journal.append w ~key:(snapshot_key ~spec ~slot) ~value

let append_result w ~spec value =
  Journal.append w ~key:(result_key ~spec) ~value

type contents = {
  params : (string * Json.t) list;
  snapshots : (string * (int * Json.t) list) list;
  results : (string * Json.t) list;
}

(* Spec strings never contain '#' (see the Spec grammar), so the last
   " #" splits the spec from the entry tag unambiguously. *)
let parse_key key =
  match String.rindex_opt key '#' with
  | Some i when i >= 1 && Char.equal key.[i - 1] ' ' -> (
      let spec = String.sub key 0 (i - 1) in
      let tag = String.sub key i (String.length key - i) in
      if String.equal tag "#result" then Some (`Result spec)
      else if
        String.length tag > 7 && String.equal (String.sub tag 0 7) "#epoch:"
      then
        match int_of_string_opt (String.sub tag 7 (String.length tag - 7)) with
        | Some slot -> Some (`Snapshot (spec, slot))
        | None -> None
      else None)
  | Some _ | None -> None

let load ~path =
  match Journal.load ~schema ~path () with
  | Error e -> Error e
  | Ok { Journal.params; entries } -> (
      let snap_tbl = Hashtbl.create 64 in
      let res_tbl = Hashtbl.create 16 in
      let seen_spec = Hashtbl.create 16 in
      let spec_order = ref [] in
      let note_spec s =
        if not (Hashtbl.mem seen_spec s) then begin
          Hashtbl.add seen_spec s ();
          spec_order := s :: !spec_order
        end
      in
      let bad = ref None in
      List.iter
        (fun (key, v) ->
          if Option.is_none !bad then
            match parse_key key with
            | Some (`Snapshot (spec, slot)) ->
                note_spec spec;
                Hashtbl.replace snap_tbl (spec, slot) v
            | Some (`Result spec) ->
                note_spec spec;
                Hashtbl.replace res_tbl spec v
            | None -> bad := Some key)
        entries;
      match !bad with
      | Some key ->
          Error
            (Error.v Error.Bad_spec ~who:"Topo_journal.load"
               "unrecognized topo-journal key"
               ~context:[ ("path", path); ("key", key) ])
      | None ->
          let specs = List.rev !spec_order in
          let snapshots =
            List.map
              (fun s ->
                let slots =
                  (* lint: allow R1 -- bindings are sorted by slot immediately below, so hash order never escapes *)
                  Hashtbl.fold (* analyze: allow A1 -- hash order is erased by the Int.compare sort below before anything reads the list *)
                    (fun (s', slot) v acc ->
                      if String.equal s s' then (slot, v) :: acc else acc)
                    snap_tbl []
                in
                ( s,
                  List.sort (fun (a, _) (b, _) -> Int.compare a b) slots ))
              specs
          in
          let results =
            List.filter_map
              (fun s ->
                Option.map (fun v -> (s, v)) (Hashtbl.find_opt res_tbl s))
              specs
          in
          Ok { params; snapshots; results })

let find_snapshot contents ~spec ~slot =
  Option.bind
    (List.find_opt (fun (s, _) -> String.equal s spec) contents.snapshots)
    (fun (_, slots) ->
      Option.map snd (List.find_opt (fun (sl, _) -> Int.equal sl slot) slots))

let find_result contents ~spec =
  Option.map snd
    (List.find_opt (fun (s, _) -> String.equal s spec) contents.results)
