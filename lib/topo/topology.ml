module Spec = Wfs_runner.Spec
module Exec = Wfs_runner.Exec
module Pool = Wfs_runner.Pool
module Metrics = Wfs_core.Metrics
module Instruments = Wfs_obs.Instruments
module Error = Wfs_util.Error

type t = {
  cells : Cell.t array;
  n_flows : int;
  epoch : int;
  horizon : int;
  histograms : bool;
  mobility : Mobility.t;
  homes : int array;  (* global flow id -> current cell *)
  mutable moves : int;
  mutable result : Metrics.t option;
}

(* A large odd stride keeps per-cell seed sequences disjoint from the
   consecutive-seed convention of Exec.replicate. *)
let cell_seed ~seed ~cell = seed + (cell * 1_000_003)

let of_spec ?credit_limit ?debit_limit ?histograms ?invariants
    (spec : Spec.t) =
  let topo =
    match spec.topo with
    | Some tp -> tp
    | None ->
        Error.invalid "Topology.of_spec" "spec has no topology clause"
  in
  let entry = Wfs_core.Registry.get spec.sched in
  let rosters =
    Array.init topo.Spec.cells (fun c ->
        Exec.setups_of (Spec.with_seed (cell_seed ~seed:spec.seed ~cell:c) spec))
  in
  let n_flows = Array.fold_left (fun n r -> n + Array.length r) 0 rosters in
  let offsets = Array.make topo.Spec.cells 0 in
  for c = 1 to topo.Spec.cells - 1 do
    offsets.(c) <- offsets.(c - 1) + Array.length rosters.(c - 1)
  done;
  let cells =
    Array.mapi
      (fun c roster ->
        let members =
          Array.to_list
            (Array.mapi
               (fun i setup -> { Cell.gid = offsets.(c) + i; setup })
               roster)
        in
        Cell.create ?credit_limit ?debit_limit ?histograms ?invariants ~id:c
          ~sched:entry ~horizon:spec.horizon ~n_total:n_flows members)
      rosters
  in
  let homes = Array.make n_flows 0 in
  Array.iteri
    (fun c roster ->
      for i = 0 to Array.length roster - 1 do
        homes.(offsets.(c) + i) <- c
      done)
    rosters;
  {
    cells;
    n_flows;
    epoch = topo.Spec.epoch;
    horizon = spec.horizon;
    histograms = Option.value histograms ~default:false;
    mobility =
      (* the next derived seed after the last cell's: same namespace,
         never colliding with a cell's scenario streams *)
      Mobility.create
        ~seed:(cell_seed ~seed:spec.seed ~cell:topo.Spec.cells)
        ~cells:topo.Spec.cells ~rate:topo.Spec.mobility;
    homes;
    moves = 0;
    result = None;
  }

let n_cells t = Array.length t.cells
let n_flows t = t.n_flows
let homes t = Array.copy t.homes
let handoffs t = t.moves

(* One barrier: draw mobility for every flow in ascending global id (the
   stream discipline {!Mobility} documents), then dissolve the affected
   cells, re-home the movers, and rebuild.  Strictly sequential — this is
   what keeps multi-cell runs byte-identical across [--jobs]. *)
let apply_handoffs t ~slot =
  let moves = ref [] in
  Array.iteri
    (fun gid home ->
      match Mobility.draw t.mobility ~home with
      | Some dst -> moves := (gid, home, dst) :: !moves
      | None -> ())
    t.homes;
  match List.rev !moves with
  | [] -> ()
  | moves ->
      let affected = Array.make (Array.length t.cells) false in
      List.iter
        (fun (_, src, dst) ->
          affected.(src) <- true;
          affected.(dst) <- true)
        moves;
      let parcel_of = Array.make t.n_flows None in
      Array.iteri
        (fun c cell ->
          if affected.(c) then
            List.iter
              (fun p -> parcel_of.(p.Cell.member.Cell.gid) <- Some p)
              (Cell.dissolve cell))
        t.cells;
      List.iter
        (fun (gid, src, dst) ->
          t.homes.(gid) <- dst;
          t.moves <- t.moves + 1;
          parcel_of.(gid) <-
            Option.map (fun p -> { p with Cell.moved = true }) parcel_of.(gid);
          Cell.note_departure t.cells.(src);
          Cell.note_arrival t.cells.(dst))
        moves;
      Array.iteri
        (fun c cell ->
          if affected.(c) then begin
            let parcels = ref [] in
            for gid = t.n_flows - 1 downto 0 do
              if t.homes.(gid) = c then
                match parcel_of.(gid) with
                | Some p -> parcels := p :: !parcels
                | None -> ()
            done;
            ignore (Cell.rebuild cell ~slot !parcels)
          end)
        t.cells

let run ?(jobs = 1) t =
  if jobs < 1 then Error.invalidf "Topology.run" "jobs must be >= 1, got %d" jobs;
  if Option.is_some t.result then
    Error.invalid "Topology.run" "topology already run";
  let rec loop barrier =
    if barrier < t.horizon then begin
      let until = Int.min (barrier + t.epoch) t.horizon in
      ignore (Pool.map ~jobs (fun cell -> Cell.advance cell ~until) t.cells);
      if until < t.horizon then apply_handoffs t ~slot:until;
      loop until
    end
  in
  loop 0;
  let merged = Metrics.create ~histograms:t.histograms ~n_flows:t.n_flows () in
  Array.iter
    (fun cell -> Metrics.absorb merged ~src:(Cell.finish cell) ~map:Fun.id)
    t.cells;
  t.result <- Some merged

let metrics t =
  match t.result with
  | Some m -> m
  | None -> Error.invalid "Topology.metrics" "run the topology first"

let cell_instruments t ~cell = Cell.instruments t.cells.(cell)

let instruments t =
  Instruments.merge_all
    (Array.to_list (Array.map Cell.instruments t.cells))
