module Spec = Wfs_runner.Spec
module Exec = Wfs_runner.Exec
module Pool = Wfs_runner.Pool
module Metrics = Wfs_core.Metrics
module Instruments = Wfs_obs.Instruments
module Error = Wfs_util.Error
module Json = Wfs_util.Json
module Sim = Wfs_core.Simulator
module Channel = Wfs_channel.Channel
module Sched = Wfs_core.Wireless_sched
module Chaos = Wfs_chaos.Chaos
module Causality = Wfs_xray.Causality

type t = {
  cells : Cell.t array;
  n_flows : int;
  epoch : int;
  horizon : int;
  histograms : bool;
  mobility : Mobility.t;
  chaos : Chaos.t option;
  causality : Causality.t option;
      (* flow-journey recorder; every record happens at the sequential
         barrier, in draw order, so the log is jobs-invariant *)
  flow_weights : float array;  (* gid -> the flow's rate weight r_i *)
  homes : int array;  (* global flow id -> current cell *)
  orphans : (Cell.parcel * int) option array;
      (* gid -> (parcel, orphaned-at slot) for flows whose home cell
         crashed; [homes] keeps pointing at the dead cell until re-home *)
  mutable moves : int;
  mutable result : Metrics.t option;
}

let note_event t e =
  match t.causality with Some c -> Causality.record c e | None -> ()

let verdict_name = function
  | Chaos.Deliver -> Causality.verdict_deliver
  | Chaos.Blocked -> Causality.verdict_blocked
  | Chaos.Lost -> Causality.verdict_lost
  | Chaos.Corrupt -> Causality.verdict_corrupt

(* A large odd stride keeps per-cell seed sequences disjoint from the
   consecutive-seed convention of Exec.replicate. *)
let cell_seed ~seed ~cell = seed + (cell * 1_000_003)

let of_spec ?credit_limit ?debit_limit ?histograms ?invariants ?fast_path
    ?tap ?causality (spec : Spec.t) =
  let topo =
    match spec.topo with
    | Some tp -> tp
    | None ->
        Error.invalid "Topology.of_spec" "spec has no topology clause"
  in
  let entry = Wfs_core.Registry.get spec.sched in
  let rosters =
    Array.init topo.Spec.cells (fun c ->
        Exec.setups_of (Spec.with_seed (cell_seed ~seed:spec.seed ~cell:c) spec))
  in
  let n_flows = Array.fold_left (fun n r -> n + Array.length r) 0 rosters in
  let offsets = Array.make topo.Spec.cells 0 in
  for c = 1 to topo.Spec.cells - 1 do
    offsets.(c) <- offsets.(c - 1) + Array.length rosters.(c - 1)
  done;
  let homes = Array.make n_flows 0 in
  let flow_weights = Array.make n_flows 1. in
  Array.iteri
    (fun c roster ->
      for i = 0 to Array.length roster - 1 do
        homes.(offsets.(c) + i) <- c;
        flow_weights.(offsets.(c) + i) <-
          roster.(i).Sim.flow.Wfs_core.Params.weight
      done)
    rosters;
  let chaos =
    match topo.Spec.faults with
    | Some plan when Spec.faults_active plan ->
        (* the chaos stream sits one derived seed past mobility's, in the
           same per-cell namespace *)
        Some
          (Chaos.create
             ~seed:(cell_seed ~seed:spec.seed ~cell:(topo.Spec.cells + 1))
             ~cells:topo.Spec.cells plan)
    | Some _ | None -> None
  in
  (* Blackout overlay: only a plan with a positive blackout rate wraps the
     member channels (the wrapper costs every channel its [is_static] fast
     path, and an inert overlay must not).  The wrapper advances the
     underlying channel every slot — its stream stays aligned with the
     fault-free run — then overrides the observed state to Bad while the
     flow's current cell is blacked out.  [homes] and the blackout table
     are written only at sequential barriers, so worker-domain reads here
     are race-free. *)
  (match chaos with
  | Some ch when (Chaos.plan ch).Spec.blackout > 0. ->
      Array.iteri
        (fun c roster ->
          Array.iteri
            (fun i (setup : Sim.flow_setup) ->
              let gid = offsets.(c) + i in
              let underlying = setup.channel in
              let wrapped =
                Channel.make
                  ~label:(Channel.label underlying ^ "+blackout")
                  ~initial:(Channel.previous_state underlying)
                  (fun slot ->
                    let st = Channel.advance underlying ~slot in
                    if Chaos.blacked_out ch ~cell:homes.(gid) ~slot then
                      Channel.Bad
                    else st)
              in
              roster.(i) <- { setup with Sim.channel = wrapped })
            roster)
        rosters
  | Some _ | None -> ());
  let cells =
    Array.mapi
      (fun c roster ->
        let members =
          Array.to_list
            (Array.mapi
               (fun i setup -> { Cell.gid = offsets.(c) + i; setup })
               roster)
        in
        Cell.create ?credit_limit ?debit_limit ?histograms ?invariants
          ?fast_path ?tap ~id:c
          ~sched:entry ~horizon:spec.horizon ~n_total:n_flows members)
      rosters
  in
  {
    cells;
    n_flows;
    epoch = topo.Spec.epoch;
    horizon = spec.horizon;
    histograms = Option.value histograms ~default:false;
    mobility =
      (* the next derived seed after the last cell's: same namespace,
         never colliding with a cell's scenario streams *)
      Mobility.create
        ~seed:(cell_seed ~seed:spec.seed ~cell:topo.Spec.cells)
        ~cells:topo.Spec.cells ~rate:topo.Spec.mobility;
    chaos;
    causality;
    flow_weights;
    homes;
    orphans = Array.make n_flows None;
    moves = 0;
    result = None;
  }

let n_cells t = Array.length t.cells
let n_flows t = t.n_flows
let weights t = Array.copy t.flow_weights
let homes t = Array.copy t.homes
let handoffs t = t.moves
let chaos_active t = Option.is_some t.chaos
let chaos_instruments t = Option.map Chaos.instruments t.chaos

let fault_timeline t =
  match t.chaos with Some chaos -> Chaos.timeline chaos | None -> []

let orphaned t =
  let gids = ref [] in
  for gid = t.n_flows - 1 downto 0 do
    match t.orphans.(gid) with
    | Some _ -> gids := gid :: !gids
    | None -> ()
  done;
  !gids

let orphan_count t =
  Array.fold_left
    (fun n o -> match o with Some _ -> n + 1 | None -> n)
    0 t.orphans

(* Crash a live cell: bank its session's metrics, serialize every member
   out, and park the parcels as orphans.  Their carries travel with them —
   a crash displaces compensation state, it does not destroy it. *)
let crash_cell t ~slot c =
  let parcels = Cell.dissolve t.cells.(c) in
  List.iter
    (fun p -> t.orphans.(p.Cell.member.Cell.gid) <- Some (p, slot))
    parcels;
  note_event t
    (Causality.Crash
       {
         slot;
         cell = c;
         orphaned = List.map (fun p -> p.Cell.member.Cell.gid) parcels;
       })

(* One barrier: draw mobility for every flow in ascending global id (the
   stream discipline {!Mobility} documents), then dissolve the affected
   cells, re-home the movers, and rebuild.  Strictly sequential — this is
   what keeps multi-cell runs byte-identical across [--jobs].

   With a chaos engine, the same pass also applies transit verdicts to
   the drawn moves and re-homes eligible crash orphans.  Orphaned flows
   still consume their mobility draw (the stream must stay aligned with
   the liveness history, which is itself deterministic) but cannot move. *)
let apply_handoffs t ~slot =
  let drawn = ref [] in
  Array.iteri
    (fun gid home ->
      match Mobility.draw t.mobility ~home with
      | Some dst -> (
          match t.orphans.(gid) with
          | Some _ -> ()
          | None -> drawn := (gid, home, dst) :: !drawn)
      | None -> ())
    t.homes;
  let moves, verdicts =
    match t.chaos with
    | None ->
        let moves = List.rev !drawn in
        if Option.is_some t.causality then
          List.iter
            (fun (gid, src, dst) ->
              note_event t
                (Causality.Move
                   {
                     slot;
                     flow = gid;
                     src;
                     dst;
                     verdict = Causality.verdict_deliver;
                   }))
            moves;
        (moves, [])
    | Some chaos ->
        let kept = ref [] and verdicts = ref [] in
        List.iter
          (fun (gid, src, dst) ->
            let v = Chaos.handoff_verdict chaos ~slot ~flow:gid ~src ~dst in
            if Option.is_some t.causality then
              note_event t
                (Causality.Move
                   { slot; flow = gid; src; dst; verdict = verdict_name v });
            match v with
            | Chaos.Blocked -> ()
            | Chaos.Deliver -> kept := (gid, src, dst) :: !kept
            | (Chaos.Lost | Chaos.Corrupt) as v ->
                kept := (gid, src, dst) :: !kept;
                verdicts := (gid, v) :: !verdicts)
          (List.rev !drawn);
        (List.rev !kept, List.rev !verdicts)
  in
  let rehomes = ref [] in
  (match t.chaos with
  | None -> ()
  | Some chaos ->
      (* Orphans from a barrier strictly before this one are eligible; a
         cell that died this very slot keeps its flows parked for at
         least one full epoch.  No draw is consumed when every cell is
         down — liveness is already deterministic. *)
      Array.iteri
        (fun gid o ->
          match o with
          | Some (parcel, since) when since < slot -> (
              match Chaos.rehome_target chaos with
              | Some dst -> rehomes := (gid, parcel, dst) :: !rehomes
              | None -> ())
          | Some _ | None -> ())
        t.orphans);
  let rehomes = List.rev !rehomes in
  (match (moves, rehomes) with
  | [], [] -> ()
  | _ ->
      let affected = Array.make (Array.length t.cells) false in
      List.iter
        (fun (_, src, dst) ->
          affected.(src) <- true;
          affected.(dst) <- true)
        moves;
      List.iter (fun (_, _, dst) -> affected.(dst) <- true) rehomes;
      let parcel_of = Array.make t.n_flows None in
      Array.iteri
        (fun c cell ->
          if affected.(c) then
            List.iter
              (fun p -> parcel_of.(p.Cell.member.Cell.gid) <- Some p)
              (Cell.dissolve cell))
        t.cells;
      List.iter
        (fun (gid, src, dst) ->
          t.homes.(gid) <- dst;
          t.moves <- t.moves + 1;
          parcel_of.(gid) <-
            Option.map (fun p -> { p with Cell.moved = true }) parcel_of.(gid);
          Cell.note_departure t.cells.(src);
          Cell.note_arrival t.cells.(dst))
        moves;
      (* Transit faults rewrite the parcels of lost/corrupted moves.  A
         lost parcel arrives as a fresh flow (zero carry, empty backlog);
         a corrupted one arrives mangled, the receiver detects the digest
         mismatch and falls back to a zero carry, keeping the backlog —
         packets are re-sent end-to-end, scheduler state is not. *)
      (match t.chaos with
      | Some chaos ->
          List.iter
            (fun (gid, v) ->
              parcel_of.(gid) <-
                Option.map
                  (fun p ->
                    match v with
                    | Chaos.Lost ->
                        Chaos.note_lost_carry chaos
                          ~lag:p.Cell.carry.Sched.lag
                          ~credit:p.Cell.carry.Sched.credit
                          ~packets:(List.length p.Cell.backlog);
                        { p with Cell.carry = Sched.carry_zero; backlog = [] }
                    | Chaos.Corrupt ->
                        let sent = Chaos.carry_digest p.Cell.carry in
                        let received = Chaos.mangle_carry p.Cell.carry in
                        let carry =
                          if Int.equal (Chaos.carry_digest received) sent then
                            received
                          else begin
                            Chaos.note_lost_carry chaos
                              ~lag:p.Cell.carry.Sched.lag
                              ~credit:p.Cell.carry.Sched.credit ~packets:0;
                            Sched.carry_zero
                          end
                        in
                        { p with Cell.carry = carry }
                    | Chaos.Deliver | Chaos.Blocked -> p)
                  parcel_of.(gid))
            verdicts
      | None -> ());
      List.iter
        (fun (gid, parcel, dst) ->
          t.homes.(gid) <- dst;
          t.orphans.(gid) <- None;
          t.moves <- t.moves + 1;
          parcel_of.(gid) <- Some { parcel with Cell.moved = true };
          (match t.chaos with
          | Some chaos -> Chaos.note_rehomed chaos
          | None -> ());
          note_event t (Causality.Rehome { slot; flow = gid; dst });
          Cell.note_arrival t.cells.(dst))
        rehomes;
      Array.iteri
        (fun c cell ->
          if affected.(c) then begin
            let parcels = ref [] in
            for gid = t.n_flows - 1 downto 0 do
              if t.homes.(gid) = c then
                match parcel_of.(gid) with
                | Some p -> parcels := p :: !parcels
                | None -> ()
            done;
            ignore (Cell.rebuild cell ~slot !parcels)
          end)
        t.cells)

let barrier t ~slot =
  (match t.chaos with
  | Some chaos ->
      (* Fixed draw order — recoveries, crashes, blackouts, armed faults —
         then the handoff pass below consumes its own verdict/re-home
         draws.  All sequential, all from the chaos stream. *)
      ignore (Chaos.draw_recoveries chaos ~slot);
      List.iter (fun c -> crash_cell t ~slot c) (Chaos.draw_crashes chaos ~slot);
      Chaos.draw_blackouts chaos ~slot;
      Chaos.arm_worker_faults chaos ~slot
  | None -> ());
  apply_handoffs t ~slot;
  match t.chaos with
  | Some chaos -> Chaos.note_gauges chaos ~orphaned:(orphan_count t)
  | None -> ()

(* Parallel phase.  Without chaos this is the plain fan-out.  With chaos,
   down cells sit the epoch out, every live cell's thunk first consumes
   its armed-fault flag ({!Chaos.inject} — before any session mutation, so
   a retry replays clean state), transient faults are retried once, and
   persistent ones are accepted as typed failures, graded against the
   plan's per-epoch budget after the join. *)
let advance_cells t ~jobs ~until =
  match t.chaos with
  | None ->
      ignore (Pool.map ~jobs (fun cell -> Cell.advance cell ~until) t.cells)
  | Some chaos ->
      let live = ref [] in
      for c = Array.length t.cells - 1 downto 0 do
        if not (Chaos.is_down chaos ~cell:c) then live := c :: !live
      done;
      let live = Array.of_list !live in
      let outcomes =
        Pool.map_outcomes ~jobs ~retries:1 ~retry_if:Chaos.retryable
          (fun c ->
            (* analyze: allow A2 -- inject only touches the armed-flag Atomic.t array; the mutable plan state is drawn at sequential barriers only *)
            Chaos.inject chaos ~cell:c;
            (* analyze: allow A2 -- cell c is owned by exactly one worker per epoch (live has no duplicates); writes are disjoint and joined at the barrier *)
            Cell.advance t.cells.(c) ~until;
            Ok ())
          live
      in
      let failed = ref [] in
      Array.iteri
        (fun i outcome ->
          match outcome with
          | Ok () -> ()
          | Error e ->
              if Chaos.injected_fault e then failed := live.(i) :: !failed
              else
                (* a real worker error — attach the fault history and
                   propagate; degradation is for injected faults only *)
                Error.raise_
                  (Error.add_context (Chaos.timeline_context chaos) e))
        outcomes;
      let failed = List.rev !failed in
      let budget = (Chaos.plan chaos).Spec.budget in
      if List.length failed > budget then
        Error.sim_fault ~who:"Wfs_topo.Topology"
          "injected worker faults exceeded the epoch budget"
          ~context:
            (("slot", string_of_int until)
            :: ( "failed-cells",
                 String.concat "," (List.map string_of_int failed) )
            :: ("budget", string_of_int budget)
            :: Chaos.timeline_context chaos)
      else
        List.iter
          (fun c ->
            Chaos.note_worker_fault chaos ~slot:until ~cell:c;
            crash_cell t ~slot:until c)
          failed

let run ?(jobs = 1) ?on_barrier t =
  if jobs < 1 then Error.invalidf "Topology.run" "jobs must be >= 1, got %d" jobs;
  if Option.is_some t.result then
    Error.invalid "Topology.run" "topology already run";
  let rec loop from =
    if from < t.horizon then begin
      let until = Int.min (from + t.epoch) t.horizon in
      advance_cells t ~jobs ~until;
      if until < t.horizon then begin
        barrier t ~slot:until;
        match on_barrier with Some f -> f ~slot:until | None -> ()
      end;
      loop until
    end
  in
  loop 0;
  let merged = Metrics.create ~histograms:t.histograms ~n_flows:t.n_flows () in
  Array.iter
    (fun cell -> Metrics.absorb merged ~src:(Cell.finish cell) ~map:Fun.id)
    t.cells;
  t.result <- Some merged

let metrics t =
  match t.result with
  | Some m -> m
  | None -> Error.invalid "Topology.metrics" "run the topology first"

(* Barrier-time cumulative view: banked totals of every cell plus each
   live session's accumulator, remapped to global ids.  Orphan parcels'
   backlogs are invisible here (their packets sit outside any session),
   exactly as in the final merge before their re-home. *)
let peek_metrics t =
  let m = Metrics.create ~histograms:t.histograms ~n_flows:t.n_flows () in
  Array.iter (fun cell -> Cell.peek cell ~into:m) t.cells;
  m

let cell_instruments t ~cell = Cell.instruments t.cells.(cell)

let instruments t =
  Instruments.merge_all
    (Array.to_list (Array.map Cell.instruments t.cells))

let snapshot t ~slot =
  let base =
    [
      ("slot", Json.Int slot);
      ( "homes",
        Json.Arr (Array.to_list (Array.map (fun c -> Json.Int c) t.homes)) );
      ("moves", Json.Int t.moves);
    ]
  in
  match t.chaos with
  | None -> Json.Obj base
  | Some chaos ->
      Json.Obj
        (base
        @ [
            ( "down",
              Json.Arr
                (List.init (n_cells t) (fun c ->
                     Json.Bool (Chaos.is_down chaos ~cell:c))) );
            ("orphans", Json.Arr (List.map (fun g -> Json.Int g) (orphaned t)));
            ("faults", Json.Int (List.length (Chaos.timeline chaos)));
          ])
