(** Epoch-granular checkpoint journal for multi-cell runs — the
    ["wfs-bench/1-topo-journal"] derived schema of {!Wfs_runner.Journal}
    (same line framing, atomic flushed appends, torn-tail tolerance and
    mid-file corruption refusal; only the header schema differs).

    A topology's full simulation state is closure-held (live scheduler
    instances, channel processes) and cannot be serialized, so resume is
    {e verified deterministic replay} rather than state restoration.  The
    journal records, per spec:

    - one {b snapshot} line per completed epoch barrier
      ([<spec> #epoch:<slot>] → {!Topology.snapshot}), and
    - one {b result} line when the spec's run completes
      ([<spec> #result] → whatever payload the driver needs to render).

    A resumed driver replays each completed spec's result verbatim; a
    spec that was killed mid-run is re-run from slot 0, and every barrier
    that already has a journaled snapshot is {e verified} against the
    replay (compact-JSON equality) — a mismatch means the journal was
    written under different settings or code and is refused rather than
    silently extended.  Barriers past the journal's tail are appended as
    the replay overtakes it, so a run killed and resumed at an arbitrary
    epoch converges on a journal byte-identical to an uninterrupted
    run's.

    Header [params] must capture every setting that changes the run
    (credit/debit overrides, invariants — {e not} [jobs], which is
    output-invariant by construction); the driver compares them before
    trusting a journal. *)

val schema : string
(** ["wfs-bench/1-topo-journal"] *)

type writer

val create : path:string -> params:(string * Wfs_util.Json.t) list -> writer
val reopen : path:string -> writer
val close : writer -> unit

val append_snapshot :
  writer -> spec:string -> slot:int -> Wfs_util.Json.t -> unit

val append_result : writer -> spec:string -> Wfs_util.Json.t -> unit

type contents = {
  params : (string * Wfs_util.Json.t) list;  (** header minus [schema] *)
  snapshots : (string * (int * Wfs_util.Json.t) list) list;
      (** per spec (first-appearance order), barrier snapshots ascending
          by slot; duplicate (spec, slot) lines keep the last *)
  results : (string * Wfs_util.Json.t) list;
      (** completed specs, first-appearance order *)
}

val load : path:string -> (contents, Wfs_util.Error.t) result
(** {!Wfs_runner.Journal.load} under this schema, then key parsing:
    [Error] (kind [Bad_spec]) additionally on a structurally valid line
    whose key is not [<spec> #epoch:<n>] or [<spec> #result]. *)

val find_snapshot :
  contents -> spec:string -> slot:int -> Wfs_util.Json.t option

val find_result : contents -> spec:string -> Wfs_util.Json.t option
