(** Empirical verification of Section 5's guarantees on simulated runs.

    Each check runs IWFQ on a scenario and compares measured trajectories
    against the corresponding {!Theorems} bound.  Checks return a {!report}
    rather than asserting, so tests can assert [violations = 0] and benches
    can print slack. *)

type report = {
  samples : int;  (** data points examined *)
  violations : int;  (** points where the bound failed *)
  worst_slack : float;
      (** minimum of [bound − measured] over all samples (negative iff a
          violation occurred) *)
}

val pp_report : Format.formatter -> report -> unit

val check_fact1 :
  ?params:Wfs_core.Params.iwfq ->
  horizon:int ->
  make_setups:(unit -> Wfs_core.Simulator.flow_setup array) ->
  predictor:Wfs_channel.Predictor.kind ->
  unit ->
  report
(** Fact 1: the aggregate positive lag [Σ_i max(lag_i, 0)] never exceeds
    [B] plus a one-packet-per-flow discretisation allowance (packetization
    can overshoot the fluid reference by under one packet per flow). *)

val check_long_term_throughput :
  ?params:Wfs_core.Params.iwfq ->
  horizon:int ->
  shift:int ->
  make_setups:(unit -> Wfs_core.Simulator.flow_setup array) ->
  predictor:Wfs_channel.Predictor.kind ->
  flow:int ->
  unit ->
  report
(** Theorems 2/6: cumulative delivered packets of [flow] under errored IWFQ
    at time [t + shift] must dominate its delivery curve under the same
    arrivals with {e all} channels error-free.  [make_setups] must be
    deterministic in the sense of {!Wfs_core.Presets} (same seed → same
    sample path); the error-free run replaces every channel with
    [Error_free]. *)

val check_error_free_delay :
  ?params:Wfs_core.Params.iwfq ->
  horizon:int ->
  make_setups:(unit -> Wfs_core.Simulator.flow_setup array) ->
  predictor:Wfs_channel.Predictor.kind ->
  flow:int ->
  unit ->
  report
(** Theorem 1 (empirical form): per-packet delivery times of an error-free
    [flow] under errored IWFQ exceed its delivery times under all-error-free
    IWFQ by at most [B/C] slots ([Theorems.extra_delay_error_free]) plus a
    one-slot packetization allowance. *)

val check_new_queue_delay :
  ?params:Wfs_core.Params.iwfq ->
  horizon:int ->
  make_setups:(unit -> Wfs_core.Simulator.flow_setup array) ->
  predictor:Wfs_channel.Predictor.kind ->
  flow:int ->
  unit ->
  report
(** Theorem 3: every packet of an error-free [flow] that arrives to an
    empty queue is delivered within [Δd_g + d_WFQ + ΔT_g] slots
    ({!Theorems.new_queue_delay}) plus a one-slot packetization allowance.
    New-queue packets are identified from the simulation trace. *)

val check_short_term_throughput :
  ?params:Wfs_core.Params.iwfq ->
  horizon:int ->
  window:int ->
  make_setups:(unit -> Wfs_core.Simulator.flow_setup array) ->
  predictor:Wfs_channel.Predictor.kind ->
  flow:int ->
  unit ->
  report
(** Theorem 7: over every window of [window] slots during which [flow] is
    continuously backlogged, the packets it receives are at least
    [(N_G − N(t))·r_e/Σr − 1], where [N_G] counts the window's good slots
    on [flow]'s true channel and [N(t)] is computed from the measured lags
    and lead at the window start ({!Theorems.throughput_short_term}). *)

val report_to_json : report -> Wfs_util.Json.t
val report_of_json : Wfs_util.Json.t -> report option
(** Bit-exact round-trip for the sweep checkpoint journal ([worst_slack]
    may be non-finite on an empty report). *)
