type system = {
  weights : float array;
  lag_total : float;
  lead : float array;
}

let make ~weights ~lag_total ~lead =
  if Array.length weights <> Array.length lead then
    Wfs_util.Error.invalid "Theorems.make" "weights/lead length mismatch";
  Array.iter
    (fun w -> if w <= 0. then Wfs_util.Error.invalid "Theorems.make" "weights must be > 0")
    weights;
  if lag_total < 0. then Wfs_util.Error.invalid "Theorems.make" "negative lag bound";
  { weights = Array.copy weights; lag_total; lead = Array.copy lead }

let total_weight s = Array.fold_left ( +. ) 0. s.weights

let other_weight s ~flow =
  total_weight s -. s.weights.(flow)

(* L_P = 1 packet, C = 1 packet/slot throughout. *)

let wfq_max_hol_delay s ~flow = 1. +. (total_weight s /. s.weights.(flow))

let extra_delay_error_free s = s.lag_total

let new_queue_delay s ~flow =
  let delta_t = s.lead.(flow) *. other_weight s ~flow /. s.weights.(flow) in
  extra_delay_error_free s +. wfq_max_hol_delay s ~flow +. delta_t

let short_term_backlog_clearance s ~flow ~lags ~lead_now =
  if Array.length lags <> Array.length s.weights then
    Wfs_util.Error.invalid "Theorems.short_term_backlog_clearance" "lags length mismatch";
  let other_lags = ref 0. in
  Array.iteri (fun j b -> if j <> flow then other_lags := !other_lags +. b) lags;
  !other_lags +. (lead_now *. other_weight s ~flow /. s.weights.(flow))

let max_lagging_slots_of_others s ~flow =
  (* Fact 1: Σ b_i ≤ B with b_i = B·r_i/Σr; excluding [flow]'s own share. *)
  s.lag_total *. other_weight s ~flow /. total_weight s

let error_prone_extra_delay s ~flow ~good_slot_time =
  let m = int_of_float (ceil (max_lagging_slots_of_others s ~flow)) in
  good_slot_time (m + 1)

let throughput_short_term s ~flow ~good_slots ~lags ~lead_now =
  if Array.length lags <> Array.length s.weights then
    Wfs_util.Error.invalid "Theorems.throughput_short_term" "lags length mismatch";
  let other_lags = ref 0. in
  Array.iteri (fun j b -> if j <> flow then other_lags := !other_lags +. b) lags;
  let n_t =
    !other_lags +. (lead_now *. other_weight s ~flow /. s.weights.(flow))
  in
  ((float_of_int good_slots -. n_t) *. s.weights.(flow) /. total_weight s) -. 1.
