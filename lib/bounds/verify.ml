module Core = Wfs_core
module Tracelog = Wfs_sim.Tracelog

type report = { samples : int; violations : int; worst_slack : float }

let pp_report ppf r =
  Format.fprintf ppf "samples=%d violations=%d worst_slack=%.3f" r.samples
    r.violations r.worst_slack

let empty_report = { samples = 0; violations = 0; worst_slack = infinity }

let observe r ~measured ~bound =
  let slack = bound -. measured in
  {
    samples = r.samples + 1;
    violations = (r.violations + if slack < 0. then 1 else 0);
    worst_slack = Float.min r.worst_slack slack;
  }

let iwfq_of ?params setups =
  let flows = Core.Presets.flows_of setups in
  let iwfq = Core.Iwfq.create ?params flows in
  (iwfq, Core.Iwfq.instance iwfq, flows)

let check_fact1 ?params ~horizon ~make_setups ~predictor () =
  let setups = make_setups () in
  let iwfq, sched, flows = iwfq_of ?params setups in
  let n = Array.length flows in
  let p =
    match params with Some p -> p | None -> Core.Params.iwfq_defaults ~n_flows:n
  in
  (* One packet per flow of packetization slack on top of B. *)
  let bound = p.Core.Params.lag_total +. float_of_int n in
  let report = ref empty_report in
  let observer _slot _metrics =
    let total = ref 0. in
    for i = 0 to n - 1 do
      total := !total +. Float.max 0. (Core.Iwfq.lag iwfq ~flow:i)
    done;
    report := observe !report ~measured:!total ~bound
  in
  let cfg = Core.Simulator.config ~predictor ~observer ~horizon setups in
  ignore (Core.Simulator.run cfg sched);
  !report

(* Run a scenario and sample each flow's cumulative delivered-packet curve. *)
let delivered_curve ?params ~horizon ~predictor setups ~flow =
  let _iwfq, sched, _flows = iwfq_of ?params setups in
  let curve = Array.make horizon 0 in
  let observer slot metrics = curve.(slot) <- Core.Metrics.delivered metrics ~flow in
  let cfg = Core.Simulator.config ~predictor ~observer ~horizon setups in
  ignore (Core.Simulator.run cfg sched);
  curve

let error_free_setups setups =
  Array.map
    (fun s ->
      { s with Core.Simulator.channel = Wfs_channel.Error_free.create () })
    setups

let check_long_term_throughput ?params ~horizon ~shift ~make_setups ~predictor
    ~flow () =
  if shift < 0 then Wfs_util.Error.invalid "Verify.check_long_term_throughput" "negative shift";
  let errored =
    delivered_curve ?params ~horizon ~predictor (make_setups ()) ~flow
  in
  let reference =
    delivered_curve ?params ~horizon ~predictor
      (error_free_setups (make_setups ()))
      ~flow
  in
  let report = ref empty_report in
  for t = 0 to horizon - 1 - shift do
    report :=
      observe !report
        ~measured:(float_of_int reference.(t))
        ~bound:(float_of_int errored.(t + shift))
  done;
  !report

let delivery_times ?params ~horizon ~predictor setups ~flow =
  let _iwfq, sched, _flows = iwfq_of ?params setups in
  let trace = Tracelog.create () in
  let cfg = Core.Simulator.config ~predictor ~trace ~horizon setups in
  ignore (Core.Simulator.run cfg sched);
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun { Tracelog.slot; event } ->
      match event with
      | Tracelog.Transmit_ok { flow = f; seq; _ } when f = flow ->
          Hashtbl.replace tbl seq slot
      | _ -> ())
    (Tracelog.events trace);
  tbl

let system_of ?params flows =
  let n = Array.length flows in
  let p =
    match params with Some p -> p | None -> Core.Params.iwfq_defaults ~n_flows:n
  in
  Theorems.make
    ~weights:(Array.map (fun (f : Core.Params.flow) -> f.weight) flows)
    ~lag_total:p.Core.Params.lag_total ~lead:p.Core.Params.lead

let check_new_queue_delay ?params ~horizon ~make_setups ~predictor ~flow () =
  let setups = make_setups () in
  let _iwfq, sched, flows = iwfq_of ?params setups in
  let system = system_of ?params flows in
  let bound = Theorems.new_queue_delay system ~flow +. 1. in
  let trace = Tracelog.create () in
  let cfg = Core.Simulator.config ~predictor ~trace ~horizon setups in
  ignore (Core.Simulator.run cfg sched);
  (* Replay the trace to find packets that arrived at an empty queue. *)
  let queue = Array.make (Array.length flows) 0 in
  let new_queue_seqs = Hashtbl.create 64 in
  let report = ref empty_report in
  List.iter
    (fun { Tracelog.event; _ } ->
      match event with
      | Tracelog.Arrival { flow = f; seq } ->
          if f = flow && queue.(f) = 0 then Hashtbl.replace new_queue_seqs seq ();
          queue.(f) <- queue.(f) + 1
      | Tracelog.Transmit_ok { flow = f; seq; delay } ->
          queue.(f) <- queue.(f) - 1;
          if f = flow && Hashtbl.mem new_queue_seqs seq then
            report := observe !report ~measured:(float_of_int delay) ~bound
      | Tracelog.Drop { flow = f; _ } -> queue.(f) <- queue.(f) - 1
      | Tracelog.Transmit_fail _ | Tracelog.Slot_idle | Tracelog.Swap _
      | Tracelog.Credit _ | Tracelog.Frame_start _ ->
          ())
    (Tracelog.events trace);
  !report

let check_short_term_throughput ?params ~horizon ~window ~make_setups ~predictor
    ~flow () =
  if window <= 0 then
    Wfs_util.Error.invalid "Verify.check_short_term_throughput" "window must be > 0";
  let setups = make_setups () in
  let iwfq, sched, flows = iwfq_of ?params setups in
  let n = Array.length flows in
  let system = system_of ?params flows in
  let report = ref empty_report in
  (* Window state: lags/lead are snapshotted at the window start, exactly
     the [b_j(t)] and [l_e(t)] of the theorem. *)
  let start_delivered = ref 0 in
  let continuously_backlogged = ref true in
  let good_slots = ref 0 in
  let start_lags = Array.make n 0. in
  let start_lead = ref 0. in
  let slots_in_window = ref 0 in
  let observer _slot metrics =
    if !slots_in_window = 0 then begin
      start_delivered := Core.Metrics.delivered metrics ~flow;
      continuously_backlogged := true;
      good_slots := 0;
      for i = 0 to n - 1 do
        start_lags.(i) <- Float.max 0. (Core.Iwfq.lag iwfq ~flow:i)
      done;
      start_lead := Float.max 0. (-.Core.Iwfq.lag iwfq ~flow)
    end;
    if sched.Core.Wireless_sched.queue_length flow = 0 then
      continuously_backlogged := false;
    if
      Wfs_channel.Channel.state_is_good
        (Wfs_channel.Channel.state setups.(flow).Core.Simulator.channel)
    then incr good_slots;
    incr slots_in_window;
    if !slots_in_window >= window then begin
      if !continuously_backlogged then begin
        let delivered =
          float_of_int (Core.Metrics.delivered metrics ~flow - !start_delivered)
        in
        let theorem_bound =
          Theorems.throughput_short_term system ~flow ~good_slots:!good_slots
            ~lags:start_lags ~lead_now:!start_lead
        in
        (* slack = delivered − theorem lower bound must be ≥ 0 *)
        report := observe !report ~measured:theorem_bound ~bound:delivered
      end;
      slots_in_window := 0
    end
  in
  let cfg = Core.Simulator.config ~predictor ~observer ~horizon setups in
  ignore (Core.Simulator.run cfg sched);
  !report

let check_error_free_delay ?params ~horizon ~make_setups ~predictor ~flow () =
  let setups = make_setups () in
  let n = Array.length setups in
  let p =
    match params with Some p -> p | None -> Core.Params.iwfq_defaults ~n_flows:n
  in
  let bound = p.Core.Params.lag_total +. 1. in
  let errored = delivery_times ?params ~horizon ~predictor setups ~flow in
  let reference =
    delivery_times ?params ~horizon ~predictor (error_free_setups (make_setups ()))
      ~flow
  in
  let report = ref empty_report in
  (* lint: allow R1 -- bindings are sorted by seq immediately below, so hash order never reaches the report *)
  Hashtbl.fold (fun seq t_ref acc -> (seq, t_ref) :: acc) reference [] (* analyze: allow A1 -- hash order is erased by the Int.compare sort on the next line *)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (seq, t_ref) ->
         match Hashtbl.find_opt errored seq with
         | Some t_err ->
             report :=
               observe !report ~measured:(float_of_int (t_err - t_ref)) ~bound
         | None -> ());
  !report

module Json = Wfs_util.Json

let report_to_json r =
  Json.Obj
    [
      ("samples", Json.Int r.samples);
      ("violations", Json.Int r.violations);
      ("worst_slack", Json.of_float_ext r.worst_slack);
    ]

let report_of_json v =
  let ( let* ) = Option.bind in
  let* samples = Option.bind (Json.member "samples" v) Json.to_int in
  let* violations = Option.bind (Json.member "violations" v) Json.to_int in
  let* worst_slack =
    Option.bind (Json.member "worst_slack" v) Json.to_float_ext
  in
  Some { samples; violations; worst_slack }
