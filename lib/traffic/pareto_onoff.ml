let pareto ~rng ~shape ~scale =
  let u = 1. -. Wfs_util.Rng.float rng in
  (* u in (0,1] *)
  scale /. (u ** (1. /. shape))

(* Scale such that E[Pareto(shape, scale)] = shape*scale/(shape-1) equals
   the requested mean. *)
let scale_for ~shape ~mean = mean *. (shape -. 1.) /. shape

let create ~rng ?(packets_per_on_slot = 1) ?(shape = 1.5) ~mean_on ~mean_off () =
  if shape <= 1. then Wfs_util.Error.invalid "Pareto_onoff.create" "shape must be > 1";
  if mean_on < 1. || mean_off < 1. then
    Wfs_util.Error.invalid "Pareto_onoff.create" "means must be >= 1";
  if packets_per_on_slot <= 0 then
    Wfs_util.Error.invalid "Pareto_onoff.create" "packets_per_on_slot must be > 0";
  let on_scale = scale_for ~shape ~mean:mean_on in
  let off_scale = scale_for ~shape ~mean:mean_off in
  let on = ref false in
  let remaining = ref 0 in
  let draw_period scale =
    Int.max 1 (int_of_float (Float.round (pareto ~rng ~shape ~scale)))
  in
  let step _slot =
    if !remaining <= 0 then begin
      on := not !on;
      remaining := draw_period (if !on then on_scale else off_scale)
    end;
    decr remaining;
    if !on then packets_per_on_slot else 0
  in
  (* Mid-period off slots are draw-free counter decrements, so a whole off
     span collapses to one subtraction; draws happen only at period
     boundaries, exactly where [step] makes them. *)
  let next_event pending ~from ~upto =
    let found = ref (-1) in
    let s = ref from in
    while !found < 0 && !s < upto do
      if (not !on) && !remaining > 0 then begin
        let span = upto - !s in
        let skip = if !remaining < span then !remaining else span in
        remaining := !remaining - skip;
        s := !s + skip
      end
      else begin
        if !remaining <= 0 then begin
          on := not !on;
          remaining := draw_period (if !on then on_scale else off_scale)
        end;
        decr remaining;
        if !on then begin
          pending := packets_per_on_slot;
          found := !s
        end;
        incr s
      end
    done;
    !found
  in
  let mean_rate =
    float_of_int packets_per_on_slot *. mean_on /. (mean_on +. mean_off)
  in
  Arrival.make
    ~label:
      (Printf.sprintf "pareto-onoff(%g/%g,a=%g)" mean_on mean_off shape)
    ~mean_rate ~next_event step
