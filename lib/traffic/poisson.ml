let create ~rng ~rate =
  if rate < 0. then Wfs_util.Error.invalid "Poisson.create" "negative rate";
  let step _slot = Wfs_util.Rng.poisson rng ~mean:rate in
  Arrival.make ~label:(Printf.sprintf "poisson(%g)" rate) ~mean_rate:rate step
