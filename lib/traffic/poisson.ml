let create ~rng ~rate =
  if rate < 0. then Wfs_util.Error.invalid "Poisson.create" "negative rate";
  let step _slot = Wfs_util.Rng.poisson rng ~mean:rate in
  let next_event pending =
    if rate <= 0. then fun ~from:_ ~upto:_ -> -1
    else if rate < 500. then begin
      (* [Rng.poisson]'s Knuth inversion with [exp (-.rate)] hoisted out of
         the per-slot query: the identical draw sequence, without a
         transcendental per quiescent slot. *)
      let limit = exp (-.rate) in
      fun ~from ~upto ->
        let found = ref (-1) in
        let s = ref from in
        while !found < 0 && !s < upto do
          let k = ref 0 in
          let p = ref 1.0 in
          let continue = ref true in
          while !continue do
            p := !p *. Wfs_util.Rng.float rng;
            if !p <= limit then continue := false else incr k
          done;
          if !k > 0 then begin
            pending := !k;
            found := !s
          end;
          incr s
        done;
        !found
    end
    else
      (* Huge-mean normal approximation inside [Rng.poisson]: nothing to
         hoist, and virtually every slot is an event anyway. *)
      fun ~from ~upto ->
        let found = ref (-1) in
        let s = ref from in
        while !found < 0 && !s < upto do
          let k = Wfs_util.Rng.poisson rng ~mean:rate in
          if k > 0 then begin
            pending := k;
            found := !s
          end;
          incr s
        done;
        !found
  in
  Arrival.make ~label:(Printf.sprintf "poisson(%g)" rate) ~mean_rate:rate
    ~next_event step
