type t = { label : string; mean_rate : float; null : bool; step : int -> int }

let make ~label ~mean_rate step = { label; mean_rate; null = false; step }
let never ?(label = "never") () = { label; mean_rate = 0.; null = true; step = (fun _ -> 0) }
let is_never t = t.null
let arrivals t ~slot = t.step slot
let label t = t.label
let mean_rate t = t.mean_rate
