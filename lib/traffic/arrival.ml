type t = {
  label : string;
  mean_rate : float;
  null : bool;
  step : int -> int;
  next_event : from:int -> upto:int -> int;
  pending : int ref;
}

(* The default event query replays [step] slot by slot, so any process is
   event-queryable with exactly the stepwise draw sequence; processes with
   draw-free quiescent spans (CBR, MMPP, Pareto on-off) supply a [next_event]
   builder that jumps them in closed form.  The builder receives the pending
   cell so the count at the returned slot comes back without allocating. *)
let stepwise_next_event step pending ~from ~upto =
  let found = ref (-1) in
  let s = ref from in
  while !found < 0 && !s < upto do
    let c = step !s in
    if c > 0 then begin
      pending := c;
      found := !s
    end;
    incr s
  done;
  !found

let make ~label ~mean_rate ?next_event step =
  let pending = ref 0 in
  let next_event =
    match next_event with
    | Some build -> build pending
    | None -> stepwise_next_event step pending
  in
  { label; mean_rate; null = false; step; next_event; pending }

let never ?(label = "never") () =
  {
    label;
    mean_rate = 0.;
    null = true;
    step = (fun _ -> 0);
    next_event = (fun ~from:_ ~upto:_ -> -1);
    pending = ref 0;
  }

let is_never t = t.null
let arrivals t ~slot = t.step slot
let next_event t ~from ~upto = t.next_event ~from ~upto
let pending_count t = !(t.pending)
let label t = t.label
let mean_rate t = t.mean_rate
