let create ~rng ?(packets_per_on_slot = 1) ~p_on_to_off ~p_off_to_on () =
  let check name p =
    if not (p > 0. && p <= 1.) then
      Wfs_util.Error.invalidf "Onoff.create" "%s must be in (0,1]" name
  in
  check "p_on_to_off" p_on_to_off;
  check "p_off_to_on" p_off_to_on;
  if packets_per_on_slot <= 0 then
    Wfs_util.Error.invalid "Onoff.create" "packets_per_on_slot must be > 0";
  let on = ref false in
  let step _slot =
    (* Switch decision at the slot boundary, then emit according to the new
       state, so burst lengths are geometric with the stated parameters. *)
    let p = if !on then p_on_to_off else p_off_to_on in
    if Wfs_util.Rng.bernoulli rng p then on := not !on;
    if !on then packets_per_on_slot else 0
  in
  (* The chain draws one Bernoulli per slot whichever mode it is in, so the
     event query is the stepwise scan with the closure call peeled off; it
     exists to keep the draw-equivalence contract explicit and testable. *)
  let next_event pending ~from ~upto =
    let found = ref (-1) in
    let s = ref from in
    while !found < 0 && !s < upto do
      let p = if !on then p_on_to_off else p_off_to_on in
      if Wfs_util.Rng.bernoulli rng p then on := not !on;
      if !on then begin
        pending := packets_per_on_slot;
        found := !s
      end;
      incr s
    done;
    !found
  in
  let p_on = p_off_to_on /. (p_off_to_on +. p_on_to_off) in
  Arrival.make
    ~label:(Printf.sprintf "onoff(%d,%g/%g)" packets_per_on_slot p_on_to_off p_off_to_on)
    ~mean_rate:(float_of_int packets_per_on_slot *. p_on)
    ~next_event step
