let create ?(phase = 0.) ~interarrival () =
  if interarrival <= 0. then Wfs_util.Error.invalid "Cbr.create" "interarrival must be > 0";
  let next = ref phase in
  let step slot =
    let slot_end = float_of_int (slot + 1) in
    let count = ref 0 in
    while !next < slot_end do
      incr count;
      next := !next +. interarrival
    done;
    !count
  in
  Arrival.make
    ~label:(Printf.sprintf "cbr(1/%g)" interarrival)
    ~mean_rate:(1. /. interarrival) step
