let create ?(phase = 0.) ~interarrival () =
  if interarrival <= 0. then Wfs_util.Error.invalid "Cbr.create" "interarrival must be > 0";
  let next = ref phase in
  let step slot =
    let slot_end = float_of_int (slot + 1) in
    let count = ref 0 in
    while !next < slot_end do
      incr count;
      next := !next +. interarrival
    done;
    !count
  in
  (* Draw-free closed form: [step] only consults [next], so the first
     non-empty slot of a window is where [next] lands — clamped to [from],
     because arrivals accumulated before a window (a gap, or a phase behind
     the resume slot) are emitted on the first slot actually queried,
     exactly as the stepwise scan does. *)
  let next_event pending ~from ~upto =
    if !next >= float_of_int upto then -1
    else begin
      let s =
        let at = int_of_float (floor !next) in
        if at < from then from else at
      in
      let slot_end = float_of_int (s + 1) in
      let count = ref 0 in
      while !next < slot_end do
        incr count;
        next := !next +. interarrival
      done;
      pending := !count;
      s
    end
  in
  Arrival.make
    ~label:(Printf.sprintf "cbr(1/%g)" interarrival)
    ~mean_rate:(1. /. interarrival) ~next_event step
