type mode = On | Off

type state = {
  rng : Wfs_util.Rng.t;
  on_to_off : float;
  off_to_on : float;
  on_rate : float;
  mutable mode : mode;
  mutable next_switch : float;  (* absolute time of the next mode change *)
}

let sojourn st =
  let rate = match st.mode with On -> st.on_to_off | Off -> st.off_to_on in
  Wfs_util.Rng.exponential st.rng ~rate

(* Arrivals over a segment of length [dt] in the current mode. *)
let arrivals_in_segment st dt =
  match st.mode with
  | Off -> 0
  | On -> Wfs_util.Rng.poisson st.rng ~mean:(st.on_rate *. dt)

let create ~rng ?(on_to_off = 9.) ?(off_to_on = 1.) ?(time_scale = 1.) ~on_rate () =
  if on_to_off <= 0. || off_to_on <= 0. then
    Wfs_util.Error.invalid "Mmpp.create" "modulating rates must be > 0";
  if time_scale <= 0. then Wfs_util.Error.invalid "Mmpp.create" "time_scale must be > 0";
  if on_rate < 0. then Wfs_util.Error.invalid "Mmpp.create" "negative on_rate";
  let on_to_off = on_to_off /. time_scale and off_to_on = off_to_on /. time_scale in
  let st =
    { rng; on_to_off; off_to_on; on_rate; mode = Off; next_switch = 0. }
  in
  st.next_switch <- sojourn st;
  let step slot =
    let slot_start = float_of_int slot and slot_end = float_of_int (slot + 1) in
    (* A contiguous run keeps [next_switch >= slot_start] invariantly, but
       a flow can skip slots entirely (a topology orphan sitting out
       epochs in a crashed cell).  Catch the modulating chain up across
       the gap without emitting arrivals — traffic offered while the flow
       was unhosted is gone, not deferred. *)
    while st.next_switch < slot_start do
      st.mode <- (match st.mode with On -> Off | Off -> On);
      st.next_switch <- st.next_switch +. sojourn st
    done;
    let count = ref 0 in
    let cursor = ref slot_start in
    while st.next_switch < slot_end do
      count := !count + arrivals_in_segment st (st.next_switch -. !cursor);
      cursor := st.next_switch;
      st.mode <- (match st.mode with On -> Off | Off -> On);
      st.next_switch <- st.next_switch +. sojourn st
    done;
    count := !count + arrivals_in_segment st (slot_end -. !cursor);
    !count
  in
  (* A slot lying entirely inside an Off sojourn is a draw-free no-op in
     [step] (no segment boundary, Off segments emit nothing), so the event
     query jumps a fully-Off span straight to the slot containing the next
     mode switch; every boundary slot goes through [step] itself, keeping
     the sojourn and Poisson draws in stepwise order. *)
  let next_event pending ~from ~upto =
    let found = ref (-1) in
    let s = ref from in
    while !found < 0 && !s < upto do
      if
        (match st.mode with Off -> true | On -> false)
        && st.next_switch >= float_of_int (!s + 1)
      then
        s :=
          (if st.next_switch >= float_of_int upto then upto
           else int_of_float st.next_switch)
      else begin
        let c = step !s in
        if c > 0 then begin
          pending := c;
          found := !s
        end;
        incr s
      end
    done;
    !found
  in
  let p_on = off_to_on /. (off_to_on +. on_to_off) in
  Arrival.make
    ~label:(Printf.sprintf "mmpp(on=%g,%g/%g)" on_rate on_to_off off_to_on)
    ~mean_rate:(on_rate *. p_on) ~next_event step

let paper_source ?(time_scale = 20.) ~rng ~mean_rate () =
  if mean_rate < 0. then Wfs_util.Error.invalid "Mmpp.paper_source" "negative mean_rate";
  create ~rng ~on_to_off:9. ~off_to_on:1. ~time_scale ~on_rate:(10. *. mean_rate) ()
