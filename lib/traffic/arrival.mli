(** Arrival-process abstraction.

    An arrival process is queried once per slot and answers how many packets
    arrive during that slot.  Concrete processes (CBR, Poisson, MMPP, on-off,
    trace) live in sibling modules and all construct values of this type, so
    simulators can mix heterogeneous sources freely.

    {b Two query disciplines, one sample path.}  A slot-by-slot driver calls
    {!arrivals} for every slot; an event-compressed driver calls
    {!next_event} to jump to the next non-empty slot.  Both consume the
    process's RNG draws in the same order, so switching disciplines
    mid-stream (e.g. a topology session dissolving at an epoch barrier and
    its successor resuming slot-by-slot) continues the identical sample
    path.  Within one window, use one discipline: after
    [next_event ~from ~upto] the process state is as if [arrivals] had been
    called for every slot of [from..] up to the returned slot (or through
    [upto - 1] on [-1]), so the next query must resume from there. *)

type t

val make :
  label:string ->
  mean_rate:float ->
  ?next_event:(int ref -> from:int -> upto:int -> int) ->
  (int -> int) ->
  t
(** [make ~label ~mean_rate step] wraps [step], which receives the slot index
    and returns the number of arrivals in that slot.  [mean_rate] is the
    long-run packets-per-slot average, used for load accounting and display
    only.

    [next_event] overrides the default event query (which replays [step]
    slot by slot) with a closed-form one; the builder receives the pending
    cell it must set to the arrival count of any slot it returns.  The
    override must be draw-equivalent to the stepwise replay: same RNG draws
    in the same order, no draws consumed past the last slot it accounts
    for. *)

val never : ?label:string -> unit -> t
(** A source that is statically known to emit nothing, ever.  Equivalent to
    [make ~mean_rate:0. (fun _ -> 0)] except that {!is_never} returns [true],
    which lets a simulator skip the per-slot arrival query for the flow
    entirely.  Use it for provisioned-but-silent flows in large-fan-in
    scenarios. *)

val is_never : t -> bool
(** [true] only for sources built with {!never}; such a source never emits a
    packet, so callers may elide {!arrivals} calls for it. *)

val arrivals : t -> slot:int -> int
(** Number of packets arriving in [slot].  Must be called with strictly
    increasing slot indices; processes may keep internal state. *)

val next_event : t -> from:int -> upto:int -> int
(** The first slot in [[from, upto)] with at least one arrival, or [-1] when
    that window is empty.  Consumes exactly the draws the stepwise
    {!arrivals} replay of the covered slots consumes — and none beyond
    [upto - 1], so no pre-drawn state outlives the window (epoch-barrier
    safe).  The returned slot's arrival count is read with {!pending_count};
    the subsequent query (or {!arrivals} call) must resume at the following
    slot.  Allocation-free. *)

val pending_count : t -> int
(** Arrival count at the slot the last successful {!next_event} returned.
    Meaningless before the first successful query. *)

val label : t -> string

val mean_rate : t -> float
(** Declared long-run rate in packets per slot. *)
