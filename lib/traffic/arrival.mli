(** Arrival-process abstraction.

    An arrival process is queried once per slot and answers how many packets
    arrive during that slot.  Concrete processes (CBR, Poisson, MMPP, on-off,
    trace) live in sibling modules and all construct values of this type, so
    simulators can mix heterogeneous sources freely. *)

type t

val make : label:string -> mean_rate:float -> (int -> int) -> t
(** [make ~label ~mean_rate step] wraps [step], which receives the slot index
    and returns the number of arrivals in that slot.  [mean_rate] is the
    long-run packets-per-slot average, used for load accounting and display
    only. *)

val never : ?label:string -> unit -> t
(** A source that is statically known to emit nothing, ever.  Equivalent to
    [make ~mean_rate:0. (fun _ -> 0)] except that {!is_never} returns [true],
    which lets a simulator skip the per-slot arrival query for the flow
    entirely.  Use it for provisioned-but-silent flows in large-fan-in
    scenarios. *)

val is_never : t -> bool
(** [true] only for sources built with {!never}; such a source never emits a
    packet, so callers may elide {!arrivals} calls for it. *)

val arrivals : t -> slot:int -> int
(** Number of packets arriving in [slot].  Must be called with strictly
    increasing slot indices; processes may keep internal state. *)

val label : t -> string

val mean_rate : t -> float
(** Declared long-run rate in packets per slot. *)
