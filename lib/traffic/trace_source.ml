let create arrivals =
  let tbl = Hashtbl.create 16 in
  let total = ref 0 in
  let horizon = ref 0 in
  List.iter
    (fun (slot, count) ->
      if slot < 0 || count < 0 then
        Wfs_util.Error.invalid "Trace_source.create" "negative slot or count";
      total := !total + count;
      if slot + 1 > !horizon then horizon := slot + 1;
      Hashtbl.replace tbl slot
        (count + Option.value ~default:0 (Hashtbl.find_opt tbl slot)))
    arrivals;
  let mean_rate =
    if !horizon = 0 then 0. else float_of_int !total /. float_of_int !horizon
  in
  let step slot = Option.value ~default:0 (Hashtbl.find_opt tbl slot) in
  Arrival.make ~label:"trace" ~mean_rate step

let of_slots slots = create (List.map (fun s -> (s, 1)) slots)
