(** Ring-buffer double-ended queue.

    O(1) amortized push/pop at both ends, O(1) random access, and an
    O(min(prefix, suffix) + deleted) middle-range removal.  Used for the
    per-flow packet and slot-tag queues on the scheduler hot path, where
    list- or [Queue]-backed representations cost O(n) per tail drop.

    The structure needs a [dummy] element to fill vacated cells (so popped
    values are not kept alive by the buffer) — any value of the element
    type will do; it is never returned. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [capacity] (default 8) is rounded up to a power of two. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a option
val pop_back : 'a t -> 'a option

val peek_front : 'a t -> 'a option
val peek_back : 'a t -> 'a option

val get : 'a t -> int -> 'a
(** [get t i] is the element at logical position [i], front = 0.
    @raise Wfs_util.Error.Error if [i] is out of bounds. *)

val remove_range : 'a t -> pos:int -> len:int -> unit
(** Remove the [len] elements at logical positions [pos..pos+len-1],
    shifting whichever side of the hole is shorter.
    @raise Wfs_util.Error.Error if the range exceeds the deque. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
