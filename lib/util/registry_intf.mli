(** Functor-generated registry stores: one alias/lookup/error contract.

    {!Wfs_core.Registry} (wireless schedulers) and {!Wfs_wireline.Registry}
    (packetized reference schedulers) grew as near-identical linear-list
    stores with independently worded errors.  Both are now instantiations
    of {!Make}: entries keep registration order (which is the presentation
    and enumeration order, so a [Hashtbl] would be wrong), lookups are
    case-insensitive over canonical names and aliases, and the error
    surface is shared — [register] collisions and [get] misses raise the
    historical [Invalid_argument] wordings, while {!S.lookup} returns the
    typed {!Error.t} the runner's failure tables classify. *)

(** What {!Make} needs to know about an entry: its canonical name, its
    aliases, and the noun used in error messages (["scheduler"],
    ["wireline scheduler"], ...). *)
module type ENTRY = sig
  type t

  val name : t -> string
  val aliases : t -> string list

  val kind : string
  (** Error-message noun: [get]/[lookup] misses read
      ["unknown <kind> %S ..."]. *)
end

(** The generated store.  One mutable entry list per functor application —
    apply {!Make} once per registry, at module level. *)
module type S = sig
  type entry

  val register : entry -> unit
  (** Append to the store.
      @raise Invalid_argument when the name or an alias
      (case-insensitively) collides with an existing registration. *)

  val find : string -> entry option
  (** Resolve a canonical name or alias, case-insensitively. *)

  val lookup : string -> (entry, Error.t) result
  (** {!find} with a typed miss: unknown names become kind [Bad_config]
      with the known names in the context.  Never raises. *)

  val get : string -> entry
  (** Like {!find}.
      @raise Invalid_argument on an unknown name, listing the known
      ones (the historical wording both registries' tests assert). *)

  val mem : string -> bool

  val names : unit -> string list
  (** Canonical names in registration order. *)

  val entries : unit -> entry list
  (** All entries in registration order. *)
end

module Make (E : ENTRY) : S with type entry = E.t
