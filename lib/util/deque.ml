(* Ring-buffer double-ended queue.

   A growable circular buffer with O(1) push/pop at both ends and O(1)
   random access — the backing store for packet queues and slot-tag queues
   on the per-slot hot path, where the previous list- and Queue-based
   representations cost O(n) per drop.  Capacity is kept a power of two so
   logical-to-physical index mapping is a mask, not a division.  Vacated
   cells are overwritten with [dummy] so popped elements do not linger
   reachable from the buffer. *)

type 'a t = {
  dummy : 'a;
  mutable data : 'a array;
  mutable head : int;  (* physical index of the front element *)
  mutable len : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(capacity = 8) ~dummy () =
  if capacity < 1 then Error.invalid "Deque.create" "capacity must be >= 1";
  let cap = pow2_at_least capacity 4 in
  { dummy; data = Array.make cap dummy; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

(* Physical index of logical position [i] (0 = front). *)
let phys t i = (t.head + i) land (Array.length t.data - 1)

let grow t =
  let cap = Array.length t.data in
  let ndata = Array.make (cap * 2) t.dummy in
  for i = 0 to t.len - 1 do
    ndata.(i) <- t.data.(phys t i)
  done;
  t.data <- ndata;
  t.head <- 0

let push_back t x =
  if t.len = Array.length t.data then grow t;
  t.data.(phys t t.len) <- x;
  t.len <- t.len + 1

let push_front t x =
  if t.len = Array.length t.data then grow t;
  let mask = Array.length t.data - 1 in
  t.head <- (t.head - 1) land mask;
  t.data.(t.head) <- x;
  t.len <- t.len + 1

let pop_front t =
  if t.len = 0 then None
  else begin
    let x = t.data.(t.head) in
    t.data.(t.head) <- t.dummy;
    t.head <- (t.head + 1) land (Array.length t.data - 1);
    t.len <- t.len - 1;
    Some x
  end

let pop_back t =
  if t.len = 0 then None
  else begin
    let i = phys t (t.len - 1) in
    let x = t.data.(i) in
    t.data.(i) <- t.dummy;
    t.len <- t.len - 1;
    Some x
  end

let peek_front t = if t.len = 0 then None else Some t.data.(t.head)
let peek_back t = if t.len = 0 then None else Some t.data.(phys t (t.len - 1))

let get t i =
  if i < 0 || i >= t.len then
    Error.invalidf "Deque.get" "index %d out of bounds (length %d)" i t.len;
  t.data.(phys t i)

let remove_range t ~pos ~len =
  if len < 0 || pos < 0 || pos + len > t.len then
    Error.invalidf "Deque.remove_range" "range [%d,%d) out of bounds (length %d)"
      pos (pos + len) t.len;
  if len > 0 then begin
    let left = pos and right = t.len - pos - len in
    if left <= right then begin
      (* Shift the prefix right over the hole, then retire the old front. *)
      for i = pos - 1 downto 0 do
        t.data.(phys t (i + len)) <- t.data.(phys t i)
      done;
      for i = 0 to len - 1 do
        t.data.(phys t i) <- t.dummy
      done;
      t.head <- phys t len;
      t.len <- t.len - len
    end
    else begin
      (* Shift the suffix left over the hole, then retire the old back. *)
      for i = pos + len to t.len - 1 do
        t.data.(phys t (i - len)) <- t.data.(phys t i)
      done;
      for i = t.len - len to t.len - 1 do
        t.data.(phys t i) <- t.dummy
      done;
      t.len <- t.len - len
    end
  end

let clear t =
  for i = 0 to t.len - 1 do
    t.data.(phys t i) <- t.dummy
  done;
  t.head <- 0;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(phys t i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(phys t i)
  done;
  !acc

let to_list t =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (t.data.(phys t i) :: acc)
  in
  build (t.len - 1) []
