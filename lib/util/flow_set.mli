(** Sorted index of flow ids over a fixed universe [0..n-1].

    The backlogged-flow index behind sub-linear scheduler selection:
    membership tests are O(1) and iteration visits members in {e ascending
    id order} — the same order the naive full-array scans used, which is
    what keeps heap- and index-based selection byte-identical to them.
    [add]/[remove] are O(cardinal) (array shift): cheap in the
    few-active-among-many regime this index targets. *)

type t

val create : n:int -> t
val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool
val add : t -> int -> unit
(** No-op if already a member. *)

val remove : t -> int -> unit
(** No-op if not a member. *)

val get : t -> int -> int
(** [get t i] is the [i]-th smallest member.
    @raise Wfs_util.Error.Error if [i >= cardinal t]. *)

val find_from : t -> int -> int
(** [find_from t flow] is the position (for {!get}) of the smallest member
    [>= flow], or [cardinal t] if none — the starting point for cyclic
    round-robin iteration. *)

val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val elements : t -> int list
(** Ascending. *)
