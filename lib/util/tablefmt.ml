type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  let ncols = List.length t.columns in
  let rec fit i = function
    | [] -> if i < ncols then "" :: fit (i + 1) [] else []
    | c :: rest -> if i >= ncols then [] else c :: fit (i + 1) rest
  in
  t.rows <- fit 0 cells :: t.rows

let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rows

let cell_of_float ?(decimals = 2) x =
  if Float.is_nan x then "-"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*f" decimals x

let add_float_row t ~label ?decimals values =
  add_row t (label :: List.map (cell_of_float ?decimals) values)

let render t =
  let all = t.columns :: List.rev t.rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols && String.length cell > widths.(i) then
            widths.(i) <- String.length cell)
        row)
    all;
  let pad i cell = Printf.sprintf "%-*s" widths.(i) cell in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let sep =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.contents buf

(* lint: allow R8 -- the one sanctioned convenience: [print] only echoes [render]; binaries still own their channels *)
let print t = print_string (render t)
