(* Next-event calendar: a min-heap over object ids keyed by an int slot.

   Built for the simulator's event-compressed fast path: each traffic
   source owns at most one pending entry ("my next arrival is at slot k"),
   the engine pops entries in (slot, id) order — lowest id on ties, the
   same order the slot loop's ascending-id arrival scan produces — and
   re-pushes the source once its following event is sampled.

   Unlike {!Flow_heap} there is no lazy invalidation: an id has at most
   one entry, keys are never updated in place (pop, then push the new
   key), so a dense position index keeps every operation O(log n) and
   allocation-free. *)

type t = {
  n : int;
  keys : int array;  (* heap-ordered slot keys *)
  ids : int array;  (* heap-ordered object ids *)
  pos : int array;  (* id -> heap index, or -1 when absent *)
  mutable size : int;
}

let create ~n =
  if n < 0 then Error.invalid "Event_cal.create" "negative id count";
  let cap = Int.max n 1 in
  {
    n;
    keys = Array.make cap 0;
    ids = Array.make cap 0;
    pos = Array.make cap (-1);
    size = 0;
  }

let cardinal t = t.size
let is_empty t = t.size = 0

let mem t ~id =
  if id < 0 || id >= t.n then
    Error.invalidf "Event_cal.mem" "id %d out of range [0,%d)" id t.n;
  t.pos.(id) >= 0

(* Entry ordering: (key, id) lexicographic — lowest id wins ties. *)
let entry_before t i j =
  t.keys.(i) < t.keys.(j) || (t.keys.(i) = t.keys.(j) && t.ids.(i) < t.ids.(j))

let swap_entries t i j =
  let k = t.keys.(i) and d = t.ids.(i) in
  t.keys.(i) <- t.keys.(j);
  t.ids.(i) <- t.ids.(j);
  t.keys.(j) <- k;
  t.ids.(j) <- d;
  t.pos.(t.ids.(i)) <- i;
  t.pos.(t.ids.(j)) <- j

let[@hot] sift_up t start =
  let i = ref start in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_before t !i parent then begin
      swap_entries t !i parent;
      i := parent
    end
    else continue := false
  done

let[@hot] sift_down t start =
  let i = ref start in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && entry_before t l !smallest then smallest := l;
    if r < t.size && entry_before t r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap_entries t !i !smallest;
      i := !smallest
    end
    else continue := false
  done

let[@hot] push t ~key ~id =
  if id < 0 || id >= t.n then
    Error.invalidf "Event_cal.push" "id %d out of range [0,%d)" id t.n;
  if t.pos.(id) >= 0 then
    Error.invalidf "Event_cal.push" "id %d already has a pending event" id;
  let i = t.size in
  t.keys.(i) <- key;
  t.ids.(i) <- id;
  t.pos.(id) <- i;
  t.size <- t.size + 1;
  sift_up t i

let min_key t = if t.size = 0 then max_int else t.keys.(0)

let[@hot] pop t =
  if t.size = 0 then Error.invalid "Event_cal.pop" "empty calendar";
  let id = t.ids.(0) in
  t.pos.(id) <- -1;
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.keys.(0) <- t.keys.(t.size);
    t.ids.(0) <- t.ids.(t.size);
    t.pos.(t.ids.(0)) <- 0;
    sift_down t 0
  end;
  id

let clear t =
  for i = 0 to t.size - 1 do
    t.pos.(t.ids.(i)) <- -1
  done;
  t.size <- 0
