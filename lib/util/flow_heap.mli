(** Min-heap over flow ids keyed by a float tag, with lazy invalidation.

    Built for scheduler selection: "the flow with the smallest tag among
    those a predicate accepts", where ties break toward the {e lowest flow
    id} — the paper's deterministic tie-break, and exactly the flow a naive
    ascending-id scan keeping the first strictly smaller tag returns.

    Tag changes push a fresh entry and invalidate the old one lazily via a
    per-flow version counter; stale entries are discarded as they surface
    and the store is compacted when they dominate, so space stays O(live)
    amortized and each operation costs O(log live) amortized.
    {!min_accept} is allocation-free (returns [-1] for "none"). *)

type t

val create : n:int -> t
(** A heap over the flow-id universe [0..n-1], initially empty. *)

val set : t -> flow:int -> tag:float -> unit
(** Insert [flow], or update its tag if already present. *)

val remove : t -> flow:int -> unit
(** Remove [flow]; no-op if absent. *)

val mem : t -> flow:int -> bool
val cardinal : t -> int

val current_tag : t -> flow:int -> float
(** @raise Wfs_util.Error.Error if [flow] is absent. *)

val min : t -> int
(** The member with the smallest (tag, id); [-1] when empty. *)

val min_accept : t -> accept:(int -> bool) -> int
(** The smallest (tag, id) member satisfying [accept]; [-1] if none.
    Costs O((rejected + stale) · log live).  [accept] must not mutate this
    heap. *)
