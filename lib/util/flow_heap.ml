(* Min-heap over flow ids keyed by a float tag, with lazy invalidation.

   The scheduler hot path needs "flow with the smallest finish tag among
   those satisfying a predicate", where tags change on every enqueue /
   dequeue and ties break toward the LOWEST flow id (the paper's
   deterministic tie-break, and exactly what a naive ascending-id scan
   keeping the first strictly-smaller tag produces).

   Instead of a decrease-key heap we push a fresh entry on every tag change
   and invalidate the old one lazily: each flow carries a version counter,
   bumped by [set] and [remove]; an entry is live iff its recorded version
   still matches.  A flow therefore has at most one live entry.  Stale
   entries are discarded as they surface at the top, and the arrays are
   compacted when stale entries dominate, so the heap never holds more than
   O(live) entries amortized.

   All operations are allocation-free ([min_accept] returns a flow id or
   [-1]); entries live in three parallel unboxed arrays. *)

type t = {
  n : int;
  version : int array;  (* bumped on every set/remove of the flow *)
  present : bool array;
  tag : float array;  (* current tag; meaningful only when present *)
  mutable heap_tag : float array;
  mutable heap_flow : int array;
  mutable heap_ver : int array;
  mutable size : int;
  mutable live : int;  (* = number of present flows *)
  (* Scratch for [min_accept]'s popped-but-rejected entries. *)
  mutable scr_tag : float array;
  mutable scr_flow : int array;
  mutable scr_ver : int array;
}

let create ~n =
  if n < 0 then Error.invalid "Flow_heap.create" "negative flow count";
  let cap = 16 in
  {
    n;
    version = Array.make (Int.max n 1) 0;
    present = Array.make (Int.max n 1) false;
    tag = Array.make (Int.max n 1) 0.;
    heap_tag = Array.make cap 0.;
    heap_flow = Array.make cap 0;
    heap_ver = Array.make cap 0;
    size = 0;
    live = 0;
    scr_tag = Array.make cap 0.;
    scr_flow = Array.make cap 0;
    scr_ver = Array.make cap 0;
  }

let cardinal t = t.live

let mem t ~flow =
  if flow < 0 || flow >= t.n then
    Error.invalidf "Flow_heap.mem" "flow %d out of range [0,%d)" flow t.n;
  t.present.(flow)

let current_tag t ~flow =
  if not (mem t ~flow) then
    Error.invalidf "Flow_heap.current_tag" "flow %d is not in the heap" flow;
  t.tag.(flow)

(* Entry ordering: (tag, flow id) lexicographic — lowest id wins ties. *)
let entry_before t i j =
  let c = Float.compare t.heap_tag.(i) t.heap_tag.(j) in
  c < 0 || (c = 0 && t.heap_flow.(i) < t.heap_flow.(j))

let entry_live t i = t.heap_ver.(i) = t.version.(t.heap_flow.(i))

let swap_entries t i j =
  let tg = t.heap_tag.(i) and fl = t.heap_flow.(i) and ver = t.heap_ver.(i) in
  t.heap_tag.(i) <- t.heap_tag.(j);
  t.heap_flow.(i) <- t.heap_flow.(j);
  t.heap_ver.(i) <- t.heap_ver.(j);
  t.heap_tag.(j) <- tg;
  t.heap_flow.(j) <- fl;
  t.heap_ver.(j) <- ver

let sift_up t start =
  let i = ref start in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_before t !i parent then begin
      swap_entries t !i parent;
      i := parent
    end
    else continue := false
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && entry_before t l !smallest then smallest := l;
    if r < t.size && entry_before t r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap_entries t !i !smallest;
      i := !smallest
    end
    else continue := false
  done

(* Drop the root entry (already saved by the caller if needed). *)
let pop_top t =
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap_tag.(0) <- t.heap_tag.(t.size);
    t.heap_flow.(0) <- t.heap_flow.(t.size);
    t.heap_ver.(0) <- t.heap_ver.(t.size);
    sift_down t
  end

let raw_push t ~tag ~flow ~ver =
  t.heap_tag.(t.size) <- tag;
  t.heap_flow.(t.size) <- flow;
  t.heap_ver.(t.size) <- ver;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Rebuild the heap from its live entries only (bottom-up heapify). *)
let compact t =
  let w = ref 0 in
  for i = 0 to t.size - 1 do
    if entry_live t i then begin
      t.heap_tag.(!w) <- t.heap_tag.(i);
      t.heap_flow.(!w) <- t.heap_flow.(i);
      t.heap_ver.(!w) <- t.heap_ver.(i);
      incr w
    end
  done;
  t.size <- !w;
  for i = (t.size / 2) - 1 downto 0 do
    (* sift down from [i] *)
    let j = ref i in
    let continue = ref true in
    while !continue do
      let l = (2 * !j) + 1 and r = (2 * !j) + 2 in
      let smallest = ref !j in
      if l < t.size && entry_before t l !smallest then smallest := l;
      if r < t.size && entry_before t r !smallest then smallest := r;
      if !smallest <> !j then begin
        swap_entries t !j !smallest;
        j := !smallest
      end
      else continue := false
    done
  done

let grow_heap t =
  let cap = Array.length t.heap_tag * 2 in
  let ntag = Array.make cap 0. and nflow = Array.make cap 0 and nver = Array.make cap 0 in
  Array.blit t.heap_tag 0 ntag 0 t.size;
  Array.blit t.heap_flow 0 nflow 0 t.size;
  Array.blit t.heap_ver 0 nver 0 t.size;
  t.heap_tag <- ntag;
  t.heap_flow <- nflow;
  t.heap_ver <- nver

let push_entry t ~tag ~flow ~ver =
  if t.size = Array.length t.heap_tag then begin
    (* Prefer reclaiming stale entries over growing. *)
    compact t;
    if t.size * 2 > Array.length t.heap_tag then grow_heap t
  end;
  raw_push t ~tag ~flow ~ver

let set t ~flow ~tag =
  if flow < 0 || flow >= t.n then
    Error.invalidf "Flow_heap.set" "flow %d out of range [0,%d)" flow t.n;
  if not t.present.(flow) then begin
    t.present.(flow) <- true;
    t.live <- t.live + 1
  end;
  t.version.(flow) <- t.version.(flow) + 1;
  t.tag.(flow) <- tag;
  push_entry t ~tag ~flow ~ver:t.version.(flow)

let remove t ~flow =
  if flow < 0 || flow >= t.n then
    Error.invalidf "Flow_heap.remove" "flow %d out of range [0,%d)" flow t.n;
  if t.present.(flow) then begin
    t.present.(flow) <- false;
    t.live <- t.live - 1;
    t.version.(flow) <- t.version.(flow) + 1
  end

let drop_stale_top t =
  while t.size > 0 && not (entry_live t 0) do
    pop_top t
  done

let grow_scratch t need =
  let cap = Int.max need (Array.length t.scr_tag * 2) in
  let ntag = Array.make cap 0. and nflow = Array.make cap 0 and nver = Array.make cap 0 in
  Array.blit t.scr_tag 0 ntag 0 (Array.length t.scr_tag);
  Array.blit t.scr_flow 0 nflow 0 (Array.length t.scr_flow);
  Array.blit t.scr_ver 0 nver 0 (Array.length t.scr_ver);
  t.scr_tag <- ntag;
  t.scr_flow <- nflow;
  t.scr_ver <- nver

let[@hot] min_accept t ~accept =
  (* Pop live-but-rejected entries into the scratch, stop at the first live
     accepted one (it is the (tag, id)-minimum by heap order), then push the
     scratch back.  [accept] must not call [set]/[remove] on this heap. *)
  let rejected = ref 0 in
  let found = ref (-1) in
  let continue = ref true in
  while !continue do
    drop_stale_top t;
    if t.size = 0 then continue := false
    else begin
      let flow = t.heap_flow.(0) in
      if accept flow then begin
        found := flow;
        continue := false
      end
      else begin
        if !rejected = Array.length t.scr_tag then grow_scratch t (!rejected + 1);
        t.scr_tag.(!rejected) <- t.heap_tag.(0);
        t.scr_flow.(!rejected) <- flow;
        t.scr_ver.(!rejected) <- t.heap_ver.(0);
        incr rejected;
        pop_top t
      end
    end
  done;
  for i = 0 to !rejected - 1 do
    push_entry t ~tag:t.scr_tag.(i) ~flow:t.scr_flow.(i) ~ver:t.scr_ver.(i)
  done;
  !found

let min t = min_accept t ~accept:(fun _ -> true)
