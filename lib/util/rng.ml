(* xoshiro256** with splitmix64 seeding.  Chosen over Stdlib.Random to keep
   sample paths stable across OCaml releases and to support cheap stream
   splitting.

   The four 64-bit state words are stored as native-int 32-bit halves
   rather than [int64] fields: without flambda every [int64] field store
   boxes (seven heap allocations per draw), and the RNG is the per-slot
   floor of the event-compressed simulator — byte-identity makes every
   dynamic channel and live source consume exactly one draw per slot, so
   draw cost bounds slots/s no matter how many slots the calendar skips.
   Halved native ints keep the whole step in immediate arithmetic: zero
   allocation, bit-exact xoshiro256** output (pinned by the golden CSVs
   and test_util's stream tests).  Each 32-bit half lives in a 63-bit
   native int, so products by 5/9 (< 2^36) and shifted halves never
   overflow; [land m32] renormalizes after every op. *)

type t = {
  mutable lo0 : int;
  mutable hi0 : int;
  mutable lo1 : int;
  mutable hi1 : int;
  mutable lo2 : int;
  mutable hi2 : int;
  mutable lo3 : int;
  mutable hi3 : int;
  (* Halves of the last output: [next] leaves its result here so the hot
     readers ([float]/[int]/[bool]) never build a tuple or an [Int64]. *)
  mutable rlo : int;
  mutable rhi : int;
}

let m32 = 0xFFFFFFFF

(* Seeding stays in [Int64] — it runs once per stream, never per slot. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let lo_of z = Int64.to_int (Int64.logand z 0xFFFFFFFFL)
let hi_of z = Int64.to_int (Int64.shift_right_logical z 32)

let create seed =
  let state = ref (Int64.of_int seed) in
  let w0 = splitmix64_next state in
  let w1 = splitmix64_next state in
  let w2 = splitmix64_next state in
  let w3 = splitmix64_next state in
  {
    lo0 = lo_of w0;
    hi0 = hi_of w0;
    lo1 = lo_of w1;
    hi1 = hi_of w1;
    lo2 = lo_of w2;
    hi2 = hi_of w2;
    lo3 = lo_of w3;
    hi3 = hi_of w3;
    rlo = 0;
    rhi = 0;
  }

(* One xoshiro256** step: result = rotl(s1 * 5, 7) * 9, then the state
   scramble.  A 64-bit op on halves: multiplies carry [l lsr 32] into the
   high half, [rotl k] (k < 32) is
   (lo, hi) -> ((lo lsl k) lor (hi lsr (32-k)), (hi lsl k) lor (lo lsr (32-k)))
   and [rotl 45] is a half swap followed by [rotl 13]. *)
let[@hot] next t =
  let lo1 = t.lo1 and hi1 = t.hi1 in
  (* s1 * 5 *)
  let l = lo1 * 5 in
  let mlo = l land m32 in
  let mhi = ((hi1 * 5) + (l lsr 32)) land m32 in
  (* rotl 7 *)
  let rlo = ((mlo lsl 7) lor (mhi lsr 25)) land m32 in
  let rhi = ((mhi lsl 7) lor (mlo lsr 25)) land m32 in
  (* * 9 *)
  let l = rlo * 9 in
  t.rlo <- l land m32;
  t.rhi <- ((rhi * 9) + (l lsr 32)) land m32;
  (* tmp = s1 lsl 17 *)
  let tlo = (lo1 lsl 17) land m32 in
  let thi = ((hi1 lsl 17) lor (lo1 lsr 15)) land m32 in
  let lo2 = t.lo2 lxor t.lo0 and hi2 = t.hi2 lxor t.hi0 in
  let lo3 = t.lo3 lxor lo1 and hi3 = t.hi3 lxor hi1 in
  t.lo1 <- lo1 lxor lo2;
  t.hi1 <- hi1 lxor hi2;
  t.lo0 <- t.lo0 lxor lo3;
  t.hi0 <- t.hi0 lxor hi3;
  t.lo2 <- lo2 lxor tlo;
  t.hi2 <- hi2 lxor thi;
  (* s3 = rotl s3 45 *)
  t.lo3 <- ((hi3 lsl 13) lor (lo3 lsr 19)) land m32;
  t.hi3 <- ((lo3 lsl 13) lor (hi3 lsr 19)) land m32

let bits64 t =
  next t;
  Int64.logor (Int64.shift_left (Int64.of_int t.rhi) 32) (Int64.of_int t.rlo)

let split t =
  let state = ref (bits64 t) in
  let w0 = splitmix64_next state in
  let w1 = splitmix64_next state in
  let w2 = splitmix64_next state in
  let w3 = splitmix64_next state in
  {
    lo0 = lo_of w0;
    hi0 = hi_of w0;
    lo1 = lo_of w1;
    hi1 = hi_of w1;
    lo2 = lo_of w2;
    hi2 = hi_of w2;
    lo3 = lo_of w3;
    hi3 = hi_of w3;
    rlo = 0;
    rhi = 0;
  }

let copy t =
  {
    lo0 = t.lo0;
    hi0 = t.hi0;
    lo1 = t.lo1;
    hi1 = t.hi1;
    lo2 = t.lo2;
    hi2 = t.hi2;
    lo3 = t.lo3;
    hi3 = t.hi3;
    rlo = t.rlo;
    rhi = t.rhi;
  }

let[@hot] float t =
  (* Top 53 bits scaled to [0,1): (output lsr 11) fits a native int. *)
  next t;
  let x = (t.rhi lsl 21) lor (t.rlo lsr 11) in
  float_of_int x *. 0x1.0p-53

let int t n =
  assert (n > 0);
  (* Rejection sampling on the low bits to avoid modulo bias. *)
  if n = 1 then 0
  else begin
    let mask =
      let rec widen m = if m >= n - 1 then m else widen ((m lsl 1) lor 1) in
      widen 1
    in
    let rec draw () =
      next t;
      (* Low 62 bits of the output, as the Int64 path masked them. *)
      let v = (((t.rhi land 0x3FFFFFFF) lsl 32) lor t.rlo) land mask in
      if v < n then v else draw ()
    in
    draw ()
  end

let bool t =
  next t;
  t.rlo land 1 <> 0

let[@hot] bernoulli t p = float t < p

let exponential t ~rate =
  assert (rate > 0.);
  let u = float t in
  (* 1 - u is in (0,1], so log is finite. *)
  -.log (1. -. u) /. rate

let poisson t ~mean =
  assert (mean >= 0.);
  if mean <= 0. then 0
  else if mean < 500. then begin
    (* Inversion by sequential search (Knuth), linear in the mean. *)
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. float t in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0
  end
  else begin
    (* Normal approximation; adequate for the rare huge-mean case. *)
    let u1 = float t and u2 = float t in
    let z = sqrt (-2. *. log (1. -. u1)) *. cos (2. *. Float.pi *. u2) in
    let x = mean +. (sqrt mean *. z) in
    if x < 0. then 0 else int_of_float (Float.round x)
  end

let geometric t ~p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else
    let u = float t in
    int_of_float (floor (log (1. -. u) /. log (1. -. p)))

let uniform t ~lo ~hi =
  assert (hi >= lo);
  lo +. ((hi -. lo) *. float t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
