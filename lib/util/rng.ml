(* xoshiro256** with splitmix64 seeding.  Chosen over Stdlib.Random to keep
   sample paths stable across OCaml releases and to support cheap stream
   splitting. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let float t =
  (* Top 53 bits scaled to [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1.0p-53

let int t n =
  assert (n > 0);
  (* Rejection sampling on the low bits to avoid modulo bias. *)
  if n = 1 then 0
  else begin
    let mask =
      let rec widen m = if m >= n - 1 then m else widen ((m lsl 1) lor 1) in
      widen 1
    in
    let rec draw () =
      let v = Int64.to_int (Int64.logand (bits64 t) 0x3FFFFFFFFFFFFFFFL) land mask in
      if v < n then v else draw ()
    in
    draw ()
  end

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p = float t < p

let exponential t ~rate =
  assert (rate > 0.);
  let u = float t in
  (* 1 - u is in (0,1], so log is finite. *)
  -.log (1. -. u) /. rate

let poisson t ~mean =
  assert (mean >= 0.);
  if mean <= 0. then 0
  else if mean < 500. then begin
    (* Inversion by sequential search (Knuth), linear in the mean. *)
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. float t in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0
  end
  else begin
    (* Normal approximation; adequate for the rare huge-mean case. *)
    let u1 = float t and u2 = float t in
    let z = sqrt (-2. *. log (1. -. u1)) *. cos (2. *. Float.pi *. u2) in
    let x = mean +. (sqrt mean *. z) in
    if x < 0. then 0 else int_of_float (Float.round x)
  end

let geometric t ~p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else
    let u = float t in
    int_of_float (floor (log (1. -. u) /. log (1. -. p)))

let uniform t ~lo ~hi =
  assert (hi >= lo);
  lo +. ((hi -. lo) *. float t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
