module type ENTRY = sig
  type t

  val name : t -> string
  val aliases : t -> string list
  val kind : string
end

module type S = sig
  type entry

  val register : entry -> unit
  val find : string -> entry option
  val lookup : string -> (entry, Error.t) result
  val get : string -> entry
  val mem : string -> bool
  val names : unit -> string list
  val entries : unit -> entry list
end

module Make (E : ENTRY) : S with type entry = E.t = struct
  type entry = E.t

  let keys_of e = List.map String.lowercase_ascii (E.name e :: E.aliases e)

  (* Registration order is the presentation order (paper tables first), so
     a plain list, scanned linearly, is the right structure — it also keeps
     iteration deterministic, which a Hashtbl would not. *)
  let store : entry list ref = ref []

  let find name =
    let key = String.lowercase_ascii name in
    List.find_opt (fun e -> List.exists (String.equal key) (keys_of e)) !store

  let mem name = Option.is_some (find name)
  let names () = List.map E.name !store
  let entries () = !store

  let register e =
    List.iter
      (fun key ->
        if
          List.exists
            (fun e' -> List.exists (String.equal key) (keys_of e'))
            !store
        then Error.invalidf "Registry.register" "%S is already registered" key)
      (keys_of e);
    store := !store @ [ e ]

  let get name =
    match find name with
    | Some e -> e
    | None ->
        Error.invalidf "Registry.get" "unknown %s %S (known: %s)" E.kind name
          (String.concat ", " (names ()))

  let lookup name =
    match find name with
    | Some e -> Ok e
    | None ->
        Stdlib.Error
          (Error.v Error.Bad_config ~who:"Registry.lookup"
             (Printf.sprintf "unknown %s %S" E.kind name)
             ~context:[ ("known", String.concat ", " (names ())) ])
end
