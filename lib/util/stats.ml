module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable minv : float;
    mutable maxv : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; minv = nan; maxv = nan; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.n = 1 then begin
      t.minv <- x;
      t.maxv <- x
    end
    else begin
      if x < t.minv then t.minv <- x;
      if x > t.maxv then t.maxv <- x
    end

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int t.n
  let stddev t = sqrt (variance t)
  let min t = t.minv
  let max t = t.maxv
  let total t = t.total

  (* Two-sided 97.5% Student-t quantiles for df = 1..30; larger samples use
     the normal approximation. *)
  let t975 =
    [|
      12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
      2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
      2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
    |]

  let ci95 t =
    if t.n < 2 then 0.
    else begin
      let df = t.n - 1 in
      let quantile = if df <= 30 then t975.(df - 1) else 1.96 in
      let sample_stddev = sqrt (t.m2 /. float_of_int df) in
      quantile *. sample_stddev /. sqrt (float_of_int t.n)
    end

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      {
        n;
        mean;
        m2;
        minv = Float.min a.minv b.minv;
        maxv = Float.max a.maxv b.maxv;
        total = a.total +. b.total;
      }
    end
end

module Histogram = struct
  type t = {
    bin_width : float;
    mutable bins : int array;
    mutable n : int;
    summary : Summary.t;
  }

  let create ?(bin_width = 1.0) () =
    assert (bin_width > 0.);
    { bin_width; bins = Array.make 64 0; n = 0; summary = Summary.create () }

  let bin_of t x =
    if x <= 0. then 0 else int_of_float (x /. t.bin_width)

  let add t x =
    let b = bin_of t x in
    if b >= Array.length t.bins then begin
      let ncap =
        let rec widen c = if c > b then c else widen (c * 2) in
        widen (Array.length t.bins)
      in
      let nbins = Array.make ncap 0 in
      Array.blit t.bins 0 nbins 0 (Array.length t.bins);
      t.bins <- nbins
    end;
    t.bins.(b) <- t.bins.(b) + 1;
    t.n <- t.n + 1;
    Summary.add t.summary x

  let count t = t.n

  let percentile t p =
    assert (p >= 0. && p <= 100.);
    if t.n = 0 then nan
    else begin
      let target = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
      let target = if target < 1 then 1 else target in
      let rec scan i acc =
        if i >= Array.length t.bins then float_of_int (Array.length t.bins) *. t.bin_width
        else
          let acc = acc + t.bins.(i) in
          if acc >= target then float_of_int i *. t.bin_width else scan (i + 1) acc
      in
      scan 0 0
    end

  let mean t = Summary.mean t.summary
  let max_value t = Summary.max t.summary
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let incr_by t k = t.v <- t.v + k
  let value t = t.v

  let ratio t ~over =
    if over.v = 0 then 0. else float_of_int t.v /. float_of_int over.v
end
