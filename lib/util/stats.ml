module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable minv : float;
    mutable maxv : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; minv = nan; maxv = nan; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.n = 1 then begin
      t.minv <- x;
      t.maxv <- x
    end
    else begin
      if x < t.minv then t.minv <- x;
      if x > t.maxv then t.maxv <- x
    end

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int t.n
  let stddev t = sqrt (variance t)
  let min t = t.minv
  let max t = t.maxv
  let total t = t.total

  (* Two-sided 97.5% Student-t quantiles for df = 1..30; larger samples use
     the normal approximation. *)
  let t975 =
    [|
      12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
      2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
      2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
    |]

  let ci95 t =
    if t.n < 2 then 0.
    else begin
      let df = t.n - 1 in
      let quantile = if df <= 30 then t975.(df - 1) else 1.96 in
      let sample_stddev = sqrt (t.m2 /. float_of_int df) in
      quantile *. sample_stddev /. sqrt (float_of_int t.n)
    end

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      {
        n;
        mean;
        m2;
        minv = Float.min a.minv b.minv;
        maxv = Float.max a.maxv b.maxv;
        total = a.total +. b.total;
      }
    end

  (* Serialization must round-trip bit-exactly (checkpoint/resume renders
     byte-identical tables from journaled summaries), so every float goes
     through Json.float_to_string's shortest-exact form; min/max are nan
     on an empty summary, hence of_float_ext. *)
  let to_json t =
    Json.Obj
      [
        ("n", Json.Int t.n);
        ("mean", Json.Float t.mean);
        ("m2", Json.Float t.m2);
        ("min", Json.of_float_ext t.minv);
        ("max", Json.of_float_ext t.maxv);
        ("total", Json.Float t.total);
      ]

  let of_json v =
    let ( let* ) = Option.bind in
    let* n = Option.bind (Json.member "n" v) Json.to_int in
    let* mean = Option.bind (Json.member "mean" v) Json.to_float_ext in
    let* m2 = Option.bind (Json.member "m2" v) Json.to_float_ext in
    let* minv = Option.bind (Json.member "min" v) Json.to_float_ext in
    let* maxv = Option.bind (Json.member "max" v) Json.to_float_ext in
    let* total = Option.bind (Json.member "total" v) Json.to_float_ext in
    Some { n; mean; m2; minv; maxv; total }
end

module Histogram = struct
  type t = {
    bin_width : float;
    mutable bins : int array;
    mutable n : int;
    summary : Summary.t;
  }

  let create ?(bin_width = 1.0) () =
    assert (bin_width > 0.);
    { bin_width; bins = Array.make 64 0; n = 0; summary = Summary.create () }

  let bin_of t x =
    if x <= 0. then 0 else int_of_float (x /. t.bin_width)

  let add t x =
    let b = bin_of t x in
    if b >= Array.length t.bins then begin
      let ncap =
        let rec widen c = if c > b then c else widen (c * 2) in
        widen (Array.length t.bins)
      in
      let nbins = Array.make ncap 0 in
      Array.blit t.bins 0 nbins 0 (Array.length t.bins);
      t.bins <- nbins
    end;
    t.bins.(b) <- t.bins.(b) + 1;
    t.n <- t.n + 1;
    Summary.add t.summary x

  let count t = t.n

  let percentile t p =
    assert (p >= 0. && p <= 100.);
    if t.n = 0 then nan
    else begin
      let target = int_of_float (ceil (p /. 100. *. float_of_int t.n)) in
      let target = if target < 1 then 1 else target in
      let rec scan i acc =
        if i >= Array.length t.bins then float_of_int (Array.length t.bins) *. t.bin_width
        else
          let acc = acc + t.bins.(i) in
          if acc >= target then float_of_int i *. t.bin_width else scan (i + 1) acc
      in
      scan 0 0
    end

  let mean t = Summary.mean t.summary
  let max_value t = Summary.max t.summary

  let merge a b =
    if a.bin_width <> b.bin_width then
      Error.invalid "Histogram.merge" "bin widths differ";
    let len = Int.max (Array.length a.bins) (Array.length b.bins) in
    let bins = Array.make (Int.max 64 len) 0 in
    Array.iteri (fun i c -> bins.(i) <- c) a.bins;
    Array.iteri (fun i c -> bins.(i) <- bins.(i) + c) b.bins;
    {
      bin_width = a.bin_width;
      bins;
      n = a.n + b.n;
      summary = Summary.merge a.summary b.summary;
    }

  let to_json t =
    (* Trailing zero bins are dropped: capacity growth is an allocation
       detail that must not leak into the serialized form. *)
    let last = ref (-1) in
    Array.iteri (fun i c -> if c > 0 then last := i) t.bins;
    Json.Obj
      [
        ("bin_width", Json.Float t.bin_width);
        ("n", Json.Int t.n);
        ( "bins",
          Json.Arr
            (List.init (!last + 1) (fun i -> Json.Int t.bins.(i))) );
        ("summary", Summary.to_json t.summary);
      ]

  let of_json v =
    let ( let* ) = Option.bind in
    let* bin_width = Option.bind (Json.member "bin_width" v) Json.to_float in
    let* n = Option.bind (Json.member "n" v) Json.to_int in
    let* bins = Option.bind (Json.member "bins" v) Json.to_list in
    let* bins =
      List.fold_left
        (fun acc c ->
          match (acc, Json.to_int c) with
          | Some acc, Some c -> Some (c :: acc)
          | _ -> None)
        (Some []) bins
      |> Option.map (fun l -> Array.of_list (List.rev l))
    in
    let* summary = Option.bind (Json.member "summary" v) Summary.of_json in
    if bin_width <= 0. then None
    else
      Some
        {
          bin_width;
          bins = (if Array.length bins = 0 then Array.make 64 0 else bins);
          n;
          summary;
        }
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let incr_by t k = t.v <- t.v + k
  let value t = t.v

  let ratio t ~over =
    if over.v = 0 then 0. else float_of_int t.v /. float_of_int over.v
end
