(* Sorted index of flow ids over a fixed universe [0..n-1].

   The backlogged-flow index behind sub-linear scheduler selection: a
   membership bitmap plus a sorted compact array of the members, so
   "iterate the backlogged flows in ascending id order" costs O(active)
   instead of O(n_flows), while keeping exactly the ascending-id iteration
   order the naive full scans had (byte-identical tie-breaking).

   [add]/[remove] shift the compact array — O(active) worst case, which is
   the regime this index is for (few active flows among many); when every
   flow is active the naive scan was O(n) anyway. *)

type t = { bitmap : bool array; elts : int array; mutable count : int }

let create ~n =
  if n < 0 then Error.invalid "Flow_set.create" "negative flow count";
  { bitmap = Array.make (Int.max n 1) false; elts = Array.make (Int.max n 1) 0; count = 0 }

let cardinal t = t.count
let is_empty t = t.count = 0

let check t name flow =
  if flow < 0 || flow >= Array.length t.bitmap then
    Error.invalidf name "flow %d out of range [0,%d)" flow (Array.length t.bitmap)

let mem t flow =
  check t "Flow_set.mem" flow;
  t.bitmap.(flow)

(* Position of the first member >= [flow] (= [count] when none). *)
let lower_bound t flow =
  let lo = ref 0 and hi = ref t.count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.elts.(mid) < flow then lo := mid + 1 else hi := mid
  done;
  !lo

let add t flow =
  check t "Flow_set.add" flow;
  if not t.bitmap.(flow) then begin
    t.bitmap.(flow) <- true;
    let pos = lower_bound t flow in
    Array.blit t.elts pos t.elts (pos + 1) (t.count - pos);
    t.elts.(pos) <- flow;
    t.count <- t.count + 1
  end

let remove t flow =
  check t "Flow_set.remove" flow;
  if t.bitmap.(flow) then begin
    t.bitmap.(flow) <- false;
    let pos = lower_bound t flow in
    Array.blit t.elts (pos + 1) t.elts pos (t.count - pos - 1);
    t.count <- t.count - 1
  end

let get t i =
  if i < 0 || i >= t.count then
    Error.invalidf "Flow_set.get" "index %d out of bounds (cardinal %d)" i
      t.count;
  t.elts.(i)

let find_from t flow =
  check t "Flow_set.find_from" flow;
  lower_bound t flow

let iter f t =
  for i = 0 to t.count - 1 do
    f t.elts.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.count - 1 do
    acc := f !acc t.elts.(i)
  done;
  !acc

let elements t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.elts.(i) :: acc) in
  build (t.count - 1) []
