(* Binary min-heap over a growable array.  Each element carries an insertion
   sequence number so that equal-priority elements pop FIFO — schedulers rely
   on this for deterministic tie-breaking. *)

type 'a entry = { value : 'a; seq : int }

type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(initial_capacity = 16) ~leq () =
  ignore initial_capacity;
  { leq; data = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* [before a b]: should entry [a] pop before entry [b]? *)
let before t a b =
  if t.leq a.value b.value then
    if t.leq b.value a.value then a.seq < b.seq else true
  else false

let grow t =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    (* Dummy from an existing element or lazily via Obj-free trick: we only
       grow when size >= cap, and when cap = 0 we can't have a template, so
       we delay allocation to the first push. *)
    let template =
      if t.size > 0 then t.data.(0)
      else Error.invalid "Heap.grow" "cannot grow an empty heap"
    in
    let ndata = Array.make ncap template in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let push t v =
  let entry = { value = v; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.data = 0 then t.data <- Array.make 16 entry
  else if t.size >= Array.length t.data then grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t t.data.(!i) t.data.(parent) then begin
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek t = if t.size = 0 then None else Some t.data.(0).value

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t t.data.(l) t.data.(!smallest) then smallest := l;
    if r < t.size && before t t.data.(r) t.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.data.(!smallest) in
      t.data.(!smallest) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0).value in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t
    end;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some v -> v
  | None -> Error.invalid "Heap.pop_exn" "empty heap"

let clear t =
  t.size <- 0;
  t.next_seq <- 0

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.data.(i).value :: acc) in
  build (t.size - 1) []

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i).value
  done;
  !acc
