(** Plain-text table rendering for the benchmark harness.

    Produces aligned, pipe-separated tables mirroring the layout of the
    paper's result tables so measured and published rows can be eyeballed
    side by side. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption row and the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    are truncated. *)

val add_float_row : t -> label:string -> ?decimals:int -> float list -> unit
(** Convenience: a label cell followed by formatted floats (default 2
    decimals; integers render without a fractional part; [nan] renders
    as [-]). *)

val title : t -> string
val columns : t -> string list

val rows : t -> string list list
(** Added rows in insertion order, already padded/truncated to the header
    width — the shape serialized into the bench's JSON artifact. *)

val render : t -> string
val print : t -> unit

val cell_of_float : ?decimals:int -> float -> string
(** Shared float formatting used by [add_float_row]. *)
