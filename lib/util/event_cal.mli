(** Next-event calendar: a min-heap over object ids keyed by an int slot.

    Built for the simulator's event-compressed fast path: each traffic
    source owns at most one pending entry ("my next arrival is at slot
    [k]"), the engine reads {!min_key} to bound a quiescent skip, {!pop}s
    entries in (slot, id) order — ties break toward the {e lowest id},
    matching the slot loop's ascending-id arrival scan — and re-pushes a
    source once its following event is sampled.

    An id has at most one entry and keys are never updated in place, so a
    dense position index keeps every operation O(log n) and
    allocation-free. *)

type t

val create : n:int -> t
(** A calendar over the id universe [0..n-1], initially empty. *)

val push : t -> key:int -> id:int -> unit
(** Insert an event for [id] at slot [key].
    @raise Invalid_argument when [id] is out of range or already has a
    pending event — pop it first; keys are never updated in place. *)

val min_key : t -> int
(** The earliest pending slot; [max_int] when empty — usable directly as
    a skip bound without an emptiness branch. *)

val pop : t -> int
(** Remove and return the id with the smallest (key, id).
    @raise Invalid_argument when empty. *)

val mem : t -> id:int -> bool
val cardinal : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Drop every pending event. *)
