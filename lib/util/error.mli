(** Typed error taxonomy for the whole simulator.

    Every failure a sweep driver may need to report, classify or retry is
    one {!t}: a {!kind} saying {e what class} of failure it is, a [who]
    naming the raising function ("Wps.complete", "Spec.of_string"), a
    human-readable [what], and a [context] association list with the
    machine-readable details (slot number, flow id, paper section, ...).

    {b Raising convention.}  Library code raises through this module only
    — either the typed {!Error} exception via {!raise_} / the kind
    constructors, or a classic [Invalid_argument] via {!invalid} /
    {!invalidf} so that existing callers (and tests asserting exact
    message texts) keep working.  [wfs_lint] rule R6 enforces that no bare
    [invalid_arg] / [failwith] remains outside this module.

    {b Classifying convention} (used by {!of_exn} and the runner):
    - [Bad_spec] — the run description itself is wrong: unparsable spec
      string, unknown example number, unreadable scenario file, corrupt
      journal.  Retrying cannot help.
    - [Bad_config] — a structurally valid description with out-of-range
      parameters: negative horizon, unknown scheduler, weight 0.  This is
      what every [Invalid_argument] raised through {!invalid} maps to.
    - [Sim_fault] — the simulation itself misbehaved: an unexpected
      exception from a worker, or the deterministic slot-budget watchdog
      refusing a runaway job.
    - [Invariant_violation] — a runtime monitor caught the scheduler
      breaking one of the paper's own safety properties (see
      {!Wfs_core.Invariant}). *)

type kind = Bad_spec | Bad_config | Sim_fault | Invariant_violation

type t = {
  kind : kind;
  who : string;  (** raising function, "Module.function" *)
  what : string;  (** human-readable description *)
  context : (string * string) list;  (** machine-readable details *)
}

exception Error of t

val kind_to_string : kind -> string
(** ["bad-spec"], ["bad-config"], ["sim-fault"], ["invariant-violation"]. *)

val v : ?context:(string * string) list -> kind -> who:string -> string -> t
(** Build an error value without raising. *)

val bad_spec : ?context:(string * string) list -> who:string -> string -> 'a
val bad_config : ?context:(string * string) list -> who:string -> string -> 'a
val sim_fault : ?context:(string * string) list -> who:string -> string -> 'a

val invariant_violation :
  ?context:(string * string) list -> who:string -> string -> 'a
(** Each raises {!Error} with the corresponding kind. *)

val raise_ : t -> 'a
(** Raise an already-built error. *)

val add_context : (string * string) list -> t -> t
(** Append key/value pairs to the error's context (later wins on render). *)

val to_string : t -> string
(** One line: ["[kind] who: what (k=v, ...)"]. *)

val pp : Format.formatter -> t -> unit

val of_exn : ?who:string -> ?backtrace:Printexc.raw_backtrace -> exn -> t
(** Classify an arbitrary exception: {!Error} payloads pass through
    (gaining [who]/backtrace context), [Invalid_argument] becomes
    [Bad_config], {!Wfs_core.Scenario.Parse_error}-style parse failures
    and [Sys_error] become [Bad_spec] when recognizable, anything else
    becomes [Sim_fault] carrying the exception text and (when given) the
    raw backtrace in the context. *)

(** {1 Legacy [Invalid_argument] boundary}

    The pre-existing public error convention of the libraries is
    [Invalid_argument "Who: message"] with exact, test-asserted wording.
    These two helpers are the single formatting point for that convention
    — same wording everywhere, one place to change it. *)

val invalid : string -> string -> 'a
(** [invalid who msg] raises [Invalid_argument (who ^ ": " ^ msg)]. *)

val invalidf : string -> ('a, unit, string, 'b) format4 -> 'a
(** [invalidf who fmt ...] — {!invalid} with a format string. *)

(** {1 Domain-specific shared wordings}

    One helper per message that several modules must word identically
    (the wireline create/enqueue paths used to drift apart). *)

val invalid_flow_ids : string -> 'a
(** [invalid_flow_ids who] = [invalid who "flow ids must be 0..n-1"]. *)

val unknown_flow : string -> 'a
(** [unknown_flow who] = [invalid who "unknown flow"]. *)

val empty_queue : string -> 'a
(** [empty_queue who] = [invalid who "empty queue"] — the wireless
    outcome-callback convention (see {!Wfs_core.Wireless_sched}). *)
