(** Minimal JSON tree, writer and reader.

    Just enough JSON for the bench artifact ([BENCH_*.json]): objects,
    arrays, strings (with escapes), ints, floats, bools, null.  The writer
    and reader round-trip each other exactly — floats are printed with the
    shortest decimal form that restores the same bits.  No external
    dependency (the image has no yojson). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val float_to_string : float -> string
(** Shortest decimal representation that parses back to the same float. *)

val to_string : ?pretty:bool -> t -> string
(** [pretty] (default true) adds newlines and two-space indentation. *)

val of_string : string -> (t, string) result
(** Parse a JSON document; [Error] carries a message with a character
    offset.  Accepts exactly the subset {!to_string} emits (plus arbitrary
    whitespace). *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing field or non-object. *)

val to_int : t -> int option
val to_float : t -> float option
(** Accepts [Int] too (JSON does not distinguish 3 from 3.0). *)

val to_str : t -> string option
val to_list : t -> t list option

(** {1 Non-finite-safe floats}

    JSON has no nan/inf literals; these helpers encode non-finite floats
    as the strings ["nan"] / ["inf"] / ["-inf"] so serializers of
    possibly-degenerate statistics (empty {!Wfs_util.Stats.Summary}
    min/max, unbounded slack) still round-trip exactly. *)

val of_float_ext : float -> t
val to_float_ext : t -> float option
(** Accepts [Int] too, like {!to_float}. *)
