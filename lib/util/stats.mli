(** Streaming statistics for simulation metrics.

    {!Summary} accumulates count/mean/variance/min/max in O(1) space
    (Welford's algorithm); {!Histogram} adds fixed-width binning for
    percentile estimates; {!Counter} tracks simple event ratios such as
    packet loss. *)

module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Population variance; 0 when fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** [nan] when empty. *)

  val max : t -> float
  (** [nan] when empty. *)

  val total : t -> float

  val ci95 : t -> float
  (** Half-width of the 95% confidence interval for the mean (Student-t for
      samples up to 31, normal approximation beyond); 0 with fewer than two
      samples.  Used by the bench to report mean ± CI across seed
      replications. *)

  val merge : t -> t -> t
  (** Combine two summaries as if all samples were added to one. *)

  val to_json : t -> Json.t
  val of_json : Json.t -> t option
  (** Bit-exact round-trip (floats use the shortest decimal that restores
      the same bits), so tables rendered from a resumed checkpoint are
      byte-identical to an uninterrupted run. *)
end

module Histogram : sig
  type t

  val create : ?bin_width:float -> unit -> t
  (** Fixed-width bins starting at 0; values below 0 clamp to bin 0.
      Default bin width 1.0 (natural for slot-valued delays). *)

  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile h p] for [p] in [0,100]: lower edge of the bin containing
      the p-th percentile sample.  [nan] when empty. *)

  val mean : t -> float
  val max_value : t -> float

  val merge : t -> t -> t
  (** Combine two histograms binwise, as if every sample were added to one.
      @raise Invalid_argument when the bin widths differ. *)

  val to_json : t -> Json.t
  val of_json : Json.t -> t option
  (** Bit-exact round-trip, like {!Summary.to_json}. *)
end

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val incr_by : t -> int -> unit
  val value : t -> int
  val ratio : t -> over:t -> float
  (** [ratio num ~over:den] = num/den, 0 when [den] is zero. *)
end
