type kind = Bad_spec | Bad_config | Sim_fault | Invariant_violation

type t = {
  kind : kind;
  who : string;
  what : string;
  context : (string * string) list;
}

exception Error of t

let kind_to_string = function
  | Bad_spec -> "bad-spec"
  | Bad_config -> "bad-config"
  | Sim_fault -> "sim-fault"
  | Invariant_violation -> "invariant-violation"

let v ?(context = []) kind ~who what = { kind; who; what; context }
let raise_ t = raise (Error t)
let bad_spec ?context ~who what = raise_ (v ?context Bad_spec ~who what)
let bad_config ?context ~who what = raise_ (v ?context Bad_config ~who what)
let sim_fault ?context ~who what = raise_ (v ?context Sim_fault ~who what)

let invariant_violation ?context ~who what =
  raise_ (v ?context Invariant_violation ~who what)

let add_context extra t = { t with context = t.context @ extra }

let to_string t =
  let ctx =
    match t.context with
    | [] -> ""
    | kvs ->
        Printf.sprintf " (%s)"
          (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs))
  in
  Printf.sprintf "[%s] %s: %s%s" (kind_to_string t.kind) t.who t.what ctx

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* "Who: message" split of the legacy Invalid_argument convention; falls
   back to attributing the whole text to [who] when no separator exists. *)
let split_legacy ~who msg =
  match String.index_opt msg ':' with
  | Some i when i > 0 && i + 2 <= String.length msg ->
      let head = String.sub msg 0 i in
      let rest = String.sub msg (i + 1) (String.length msg - i - 1) in
      (head, String.trim rest)
  | Some _ | None -> (who, msg)

let of_exn ?(who = "worker") ?backtrace exn =
  let bt_context =
    match backtrace with
    | None -> []
    | Some bt -> (
        match Printexc.raw_backtrace_to_string bt with
        | "" -> []
        | s -> [ ("backtrace", String.trim s) ])
  in
  match exn with
  | Error t -> add_context bt_context t
  | Invalid_argument msg ->
      let head, what = split_legacy ~who msg in
      v ~context:bt_context Bad_config ~who:head what
  | Sys_error msg -> v ~context:bt_context Bad_spec ~who msg
  | exn ->
      v
        ~context:(bt_context @ [ ("exception", Printexc.to_string exn) ])
        Sim_fault ~who (Printexc.to_string exn)

let invalid who msg = raise (Invalid_argument (who ^ ": " ^ msg))
let invalidf who fmt = Printf.ksprintf (invalid who) fmt
let invalid_flow_ids who = invalid who "flow ids must be 0..n-1"
let unknown_flow who = invalid who "unknown flow"
let empty_queue who = invalid who "empty queue"
