type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let float_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else begin
    let short = Printf.sprintf "%.12g" x in
    (* lint: allow R3 -- exact round-trip probe: picks the shortest decimal that restores the bits *)
    if float_of_string short = x then short else Printf.sprintf "%.17g" x
  end

(* --- writer --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(pretty = true) v =
  let buf = Buffer.create 1024 in
  let indent depth =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_to_string x)
    | Str s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            go (depth + 1) item)
          items;
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) item)
          fields;
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- reader --- *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.equal (String.sub s !pos m) word then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> begin
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 > n then fail "short \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | Some code when code < 0x80 ->
                    (* ASCII only: the writer never emits higher escapes. *)
                    Buffer.add_char buf (Char.chr code)
                | Some _ -> fail "non-ASCII \\u escape unsupported"
                | None -> fail "bad \\u escape")
            | _ -> fail "unknown escape");
            go ()
          end
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let tok = String.sub s start (!pos - start) in
    let is_floaty =
      String.exists
        (fun c -> match c with '.' | 'e' | 'E' -> true | _ -> false)
        tok
    in
    if is_floaty then
      match float_of_string_opt tok with
      | Some x -> Float x
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if Option.equal Char.equal (peek ()) (Some '}') then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((key, v) :: acc)
            | Some '}' -> advance (); List.rev ((key, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if Option.equal Char.equal (peek ()) (Some ']') then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (items [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* --- accessors --- *)

let member key v =
  match v with
  | Obj fields ->
      Option.map snd
        (List.find_opt (fun (k, _) -> String.equal k key) fields)
  | _ -> None

let to_int v = match v with Int i -> Some i | _ -> None

let to_float v =
  match v with Float x -> Some x | Int i -> Some (float_of_int i) | _ -> None

let to_str v = match v with Str s -> Some s | _ -> None
let to_list v = match v with Arr items -> Some items | _ -> None

(* --- non-finite-safe float encoding ---

   JSON has no nan/inf literals, so serializers that may see them (empty
   Summary min/max, unbounded slack) encode non-finite values as the
   strings "nan"/"inf"/"-inf" and decode them back exactly. *)

let of_float_ext x =
  if Float.is_finite x then Float x
  else if Float.is_nan x then Str "nan"
  else if x > 0. then Str "inf"
  else Str "-inf"

let to_float_ext v =
  match v with
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | Str "nan" -> Some nan
  | Str "inf" -> Some infinity
  | Str "-inf" -> Some neg_infinity
  | _ -> None
