(** Incremental checkpoint journal for sweeps — the [wfs-bench/1] schema's
    crash-recovery extension.

    A journal is a line-oriented file: one compact-JSON header line
    [{"schema":"wfs-bench/1-journal", ...params}] followed by one compact
    JSON object ([{"key":...,"value":...}]) per completed job, appended
    and flushed as each job finishes.  Keys are the sweep's dedup job keys
    (see {!Wfs_runner.Spec.to_string} and the bench's custom keys), so a
    killed sweep restarted with [--resume] skips exactly the jobs whose
    results survived.

    Reading tolerates the one failure mode an interrupted append can
    cause: a truncated (unparsable) final line is discarded and every
    entry before it is kept.  Corruption {e before} the last line is a
    typed [Bad_spec] error — that file was not produced by an interrupted
    writer and silently dropping its tail could resurrect stale results.

    Appends are mutex-serialized and flushed per line, so the writer can
    be shared by every worker domain of a {!Pool}. *)

val schema : string
(** ["wfs-bench/1-journal"] — the default schema.  Derived journal formats
    (e.g. {!Wfs_topo.Topo_journal}'s ["wfs-bench/1-topo-journal"] epoch
    snapshots) reuse this module's framing, atomic-append and
    corruption-handling machinery under their own schema string; a file is
    only ever readable under the schema it was written with. *)

type writer

val create :
  ?schema:string ->
  path:string ->
  params:(string * Wfs_util.Json.t) list ->
  unit ->
  writer
(** Truncate/create [path] and write the header line: the [schema] field
    (default {!schema}) plus [params] (the sweep settings the journal is
    only valid for — horizon, seed, ...). *)

val reopen : path:string -> writer
(** Open an existing journal for appending (header already present). *)

val append : writer -> key:string -> value:Wfs_util.Json.t -> unit
(** Append one completed-job line and flush it. *)

val close : writer -> unit

type contents = {
  params : (string * Wfs_util.Json.t) list;  (** header minus [schema] *)
  entries : (string * Wfs_util.Json.t) list;
      (** completed jobs, file order, duplicates kept (last one wins for
          resumption — rerunning a job after a resume overwrites it) *)
}

val load :
  ?schema:string -> path:string -> unit -> (contents, Wfs_util.Error.t) result
(** Read a journal back, requiring its header schema to equal [schema]
    (default {!schema}).  [Error] (kind [Bad_spec]) on a missing file, a
    bad header, a schema mismatch, or corruption before the final line; a
    truncated final line alone is silently dropped. *)
