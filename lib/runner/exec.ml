module Core = Wfs_core

let setups_of (spec : Spec.t) =
  match spec.scenario with
  | Spec.Example { n; sum } -> begin
      let seed = spec.seed in
      match n with
      | 1 -> Core.Presets.example1 ?sum ~seed ()
      | 2 -> Core.Presets.example2 ?sum ~seed ()
      | 3 -> Core.Presets.example3 ~seed ()
      | 4 -> Core.Presets.example4 ~seed ()
      | 5 -> Core.Presets.example5 ~seed ()
      | 6 -> Core.Presets.example6 ~seed ()
      | n ->
          (* Spec.example validates 1-6; an out-of-range n here means the
             record was built by hand. *)
          Wfs_util.Error.invalidf "Exec.run" "unknown example %d" n
    end
  | Spec.File path ->
      let sc = Core.Scenario.load ~seed:spec.seed ~horizon:spec.horizon path in
      sc.Core.Scenario.setups

(* Optional-to-builder adapter: apply the step only when the caller passed
   the knob, so the built config is field-for-field what the legacy
   optional-argument constructor produced. *)
let maybe step opt t = match opt with None -> t | Some v -> step v t

let run ?credit_limit ?debit_limit ?limits ?observer ?trace ?probe ?profiler
    ?histograms ?invariants ?fast_path ?skip_stats (spec : Spec.t) =
  (match spec.topo with
  | Some _ ->
      (* Exec drives exactly one cell; the multi-cell driver lives a layer
         up (Wfs_topo depends on this library, not the reverse). *)
      Wfs_util.Error.invalid "Exec.run"
        "spec has a topology clause; run it through Wfs_topo.Topology"
  | None -> ());
  let entry = Core.Registry.get spec.sched in
  let setups = setups_of spec in
  let flows = Core.Presets.flows_of setups in
  let sched = entry.Core.Registry.make ?credit_limit ?debit_limit ?limits flows in
  (* The scheduler instance exists only here, so telemetry probes arrive as
     builders: the caller says how to probe, this function says what. *)
  let slot_probe = Option.map (fun build -> build sched) probe in
  Core.Sim_config.v ~horizon:spec.horizon setups
  |> Core.Sim_config.with_predictor entry.Core.Registry.predictor
  |> maybe Core.Sim_config.with_observer observer
  |> maybe Core.Sim_config.with_trace trace
  |> maybe Core.Sim_config.with_probe slot_probe
  |> maybe Core.Sim_config.with_profiler profiler
  |> maybe (fun on t -> if on then Core.Sim_config.with_histograms t else t) histograms
  |> maybe (fun on t -> if on then Core.Sim_config.with_invariants t else t) invariants
  |> maybe Core.Sim_config.with_fast_path fast_path
  |> maybe Core.Sim_config.with_skip_stats skip_stats
  |> Core.Sim_config.run sched

(* The flight recorder is a capacity-bounded Tracelog: cheap enough to
   leave on for whole sweeps, and when a run dies its last [capacity]
   events ride along in the error context, so the runner's failure table
   shows what the scheduler was doing right before the fault. *)
let flight_context tr =
  let events = Wfs_sim.Tracelog.events tr in
  [
    ( "flight-recorder-events",
      string_of_int (Wfs_sim.Tracelog.length tr) );
    ( "flight-recorder",
      String.concat " | " (List.map Wfs_sim.Tracelog.entry_to_string events) );
  ]

let run_outcome ?credit_limit ?debit_limit ?limits ?observer ?trace ?probe
    ?profiler ?flight_recorder ?histograms ?invariants ?fast_path ?skip_stats
    ?max_slots (spec : Spec.t) =
  let module Error = Wfs_util.Error in
  let spec_context = [ ("spec", Spec.to_string spec) ] in
  let recorder =
    match (flight_recorder, trace) with
    | None, _ -> Ok None
    | Some _, Some _ ->
        Error
          (Error.v Error.Bad_config ~who:"Exec.run_outcome"
             "flight_recorder and trace are mutually exclusive"
             ~context:spec_context)
    | Some cap, None -> (
        match Wfs_sim.Tracelog.create ~capacity:cap () with
        | tr -> Ok (Some tr)
        | exception Invalid_argument msg ->
            Error
              (Error.v Error.Bad_config ~who:"Exec.run_outcome" msg
                 ~context:spec_context))
  in
  match (recorder, max_slots) with
  | Error e, _ -> Error e
  | Ok _, Some cap when spec.horizon > cap ->
      (* The slot loop is horizon-bounded, so runaway cost is declared up
         front: refuse jobs whose slot budget exceeds the cap instead of
         pretending to watch a loop that cannot diverge. *)
      Error
        (Error.v Error.Sim_fault ~who:"Exec.run_outcome"
           "slot budget exceeded"
           ~context:
             (spec_context
             @ [
                 ("horizon", string_of_int spec.horizon);
                 ("max_slots", string_of_int cap);
               ]))
  | Ok recorder, _ -> (
      let trace =
        match recorder with Some tr -> Some tr | None -> trace
      in
      let recorder_context () =
        match recorder with None -> [] | Some tr -> flight_context tr
      in
      match
        run ?credit_limit ?debit_limit ?limits ?observer ?trace ?probe
          ?profiler ?histograms ?invariants ?fast_path ?skip_stats spec
      with
      | metrics -> Ok metrics
      | exception Core.Scenario.Parse_error { line; message } ->
          Error
            (Error.v Error.Bad_spec ~who:"Exec.run_outcome" message
               ~context:(spec_context @ [ ("line", string_of_int line) ]))
      | exception exn ->
          let backtrace = Printexc.get_raw_backtrace () in
          Error
            (Error.add_context
               (spec_context @ recorder_context ())
               (Error.of_exn ~who:"Exec.run_outcome" ~backtrace exn)))

let run_all ~jobs ?credit_limit ?debit_limit ?limits specs =
  Pool.map ~jobs (fun spec -> run ?credit_limit ?debit_limit ?limits spec) specs

let replicate ~jobs ~seeds (spec : Spec.t) =
  if seeds < 1 then
    Wfs_util.Error.invalidf "Exec.replicate" "seeds must be >= 1, got %d"
      seeds;
  run_all ~jobs
    (Array.init seeds (fun k -> Spec.with_seed (spec.seed + k) spec))

let summarize metric results =
  let s = Wfs_util.Stats.Summary.create () in
  Array.iter (fun m -> Wfs_util.Stats.Summary.add s (metric m)) results;
  s
