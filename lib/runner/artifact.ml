type table = {
  title : string;
  columns : string list;
  rows : string list list;
}

type t = {
  schema : string;
  horizon : int;
  seed : int;
  seeds : int;
  jobs : int;
  runs : int;
  slots : int;
  wall_clock_s : float;
  slots_per_sec : float;
  tables : table list;
}

let schema_version = "wfs-bench/1"

let v ~horizon ~seed ~seeds ~jobs ~runs ~slots ~wall_clock_s ~tables =
  {
    schema = schema_version;
    horizon;
    seed;
    seeds;
    jobs;
    runs;
    slots;
    wall_clock_s;
    slots_per_sec =
      (if wall_clock_s > 0. then float_of_int slots /. wall_clock_s else 0.);
    tables;
  }

let table_to_json tb =
  Json.Obj
    [
      ("title", Json.Str tb.title);
      ("columns", Json.Arr (List.map (fun c -> Json.Str c) tb.columns));
      ( "rows",
        Json.Arr
          (List.map
             (fun row -> Json.Arr (List.map (fun c -> Json.Str c) row))
             tb.rows) );
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str t.schema);
      ("horizon", Json.Int t.horizon);
      ("seed", Json.Int t.seed);
      ("seeds", Json.Int t.seeds);
      ("jobs", Json.Int t.jobs);
      ("runs", Json.Int t.runs);
      ("slots", Json.Int t.slots);
      ("wall_clock_s", Json.Float t.wall_clock_s);
      ("slots_per_sec", Json.Float t.slots_per_sec);
      ("tables", Json.Arr (List.map table_to_json t.tables));
    ]

(* --- decoding --- *)

let ( let* ) r f = Result.bind r f

let field name decode j =
  match Option.bind (Json.member name j) decode with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "artifact: missing or bad field %S" name)

let str_list j =
  Option.bind (Json.to_list j) (fun items ->
      let strs = List.filter_map Json.to_str items in
      if List.compare_lengths strs items = 0 then Some strs else None)

let table_of_json j =
  let* title = field "title" Json.to_str j in
  let* columns = field "columns" str_list j in
  let* rows =
    field "rows"
      (fun j ->
        Option.bind (Json.to_list j) (fun items ->
            let rows = List.filter_map str_list items in
            if List.compare_lengths rows items = 0 then Some rows else None))
      j
  in
  Ok { title; columns; rows }

let rec tables_of_json acc items =
  match items with
  | [] -> Ok (List.rev acc)
  | j :: rest ->
      let* tb = table_of_json j in
      tables_of_json (tb :: acc) rest

let of_json j =
  let* schema = field "schema" Json.to_str j in
  if not (String.equal schema schema_version) then
    Error
      (Printf.sprintf "artifact: unknown schema %S (expected %S)" schema
         schema_version)
  else
    let* horizon = field "horizon" Json.to_int j in
    let* seed = field "seed" Json.to_int j in
    let* seeds = field "seeds" Json.to_int j in
    let* jobs = field "jobs" Json.to_int j in
    let* runs = field "runs" Json.to_int j in
    let* slots = field "slots" Json.to_int j in
    let* wall_clock_s = field "wall_clock_s" Json.to_float j in
    let* slots_per_sec = field "slots_per_sec" Json.to_float j in
    let* tables = Result.bind (field "tables" Json.to_list j) (tables_of_json []) in
    Ok
      {
        schema;
        horizon;
        seed;
        seeds;
        jobs;
        runs;
        slots;
        wall_clock_s;
        slots_per_sec;
        tables;
      }

let write ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let read path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Result.bind (Json.of_string text) of_json

let table_equal a b =
  String.equal a.title b.title
  && List.equal String.equal a.columns b.columns
  && List.equal (List.equal String.equal) a.rows b.rows

let equal a b =
  String.equal a.schema b.schema
  && Int.equal a.horizon b.horizon
  && Int.equal a.seed b.seed
  && Int.equal a.seeds b.seeds
  && Int.equal a.jobs b.jobs
  && Int.equal a.runs b.runs
  && Int.equal a.slots b.slots
  && Float.equal a.wall_clock_s b.wall_clock_s
  && Float.equal a.slots_per_sec b.slots_per_sec
  && List.equal table_equal a.tables b.tables
