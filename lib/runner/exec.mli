(** Execute run specs: spec enumeration → parallel execution → merge.

    {!run} turns one {!Spec.t} into metrics by resolving the scheduler
    through {!Wfs_core.Registry}, building the scenario's seeded flow
    setups, and driving {!Wfs_core.Simulator}.  Every run is
    self-contained — all RNG streams are split from the spec's own seed —
    so {!run_all} can execute any number of specs on a {!Pool} of domains
    and the merged result array is byte-identical for any [jobs] count and
    any execution order. *)

val setups_of : Spec.t -> Wfs_core.Simulator.flow_setup array
(** The spec's seeded flow setups (source/channel streams split from the
    spec seed), freshly built — sources and channels are stateful, so each
    run needs its own.  Exposed for drivers that assemble a custom
    {!Wfs_core.Simulator.config} (e.g. to attach a fairness monitor).
    @raise Wfs_core.Scenario.Parse_error / [Sys_error] on a bad file *)

val run :
  ?credit_limit:int ->
  ?debit_limit:int ->
  ?limits:(int * int) array ->
  ?observer:(int -> Wfs_core.Metrics.t -> unit) ->
  ?trace:Wfs_sim.Tracelog.t ->
  ?probe:(Wfs_core.Wireless_sched.instance -> Wfs_core.Simulator.slot_probe) ->
  ?profiler:Wfs_core.Simulator.profiler_hooks ->
  ?histograms:bool ->
  ?invariants:bool ->
  ?fast_path:bool ->
  ?skip_stats:Wfs_core.Skip_stats.t ->
  Spec.t ->
  Wfs_core.Metrics.t
(** Run one spec to completion in the calling domain.  The optional
    scheduler knobs are forwarded to the registry constructor; [observer],
    [histograms], [invariants], [fast_path] and [skip_stats] to
    {!Wfs_core.Simulator.config} ([skip_stats] records fast-path skip
    telemetry without degenerating the compressed engine).
    [probe] is a {e builder}: the scheduler instance only exists inside
    this call, so the caller passes a function from instance to slot probe
    (e.g. [Wfs_obs.Probe.create ~n_flows]) and it is invoked once, after
    scheduler construction.  For a
    [File] scenario the spec's seed/horizon override the file's
    directives, and the scheduler entry's predictor overrides the file's
    [predictor] line (the registry name states the channel knowledge,
    e.g. "-I" vs "-P").
    @raise Invalid_argument on an unknown scheduler name, or when the
    spec carries a topology clause — a multi-cell spec describes a
    [Wfs_topo.Topology] run, not a single-scheduler one; route it
    through [Wfs_topo.Topology.of_spec]
    @raise Wfs_core.Scenario.Parse_error / [Sys_error] on a bad file
    @raise Wfs_util.Error.Error (kind [Invariant_violation]) when
    [invariants] is on and a monitor fires *)

val run_outcome :
  ?credit_limit:int ->
  ?debit_limit:int ->
  ?limits:(int * int) array ->
  ?observer:(int -> Wfs_core.Metrics.t -> unit) ->
  ?trace:Wfs_sim.Tracelog.t ->
  ?probe:(Wfs_core.Wireless_sched.instance -> Wfs_core.Simulator.slot_probe) ->
  ?profiler:Wfs_core.Simulator.profiler_hooks ->
  ?flight_recorder:int ->
  ?histograms:bool ->
  ?invariants:bool ->
  ?fast_path:bool ->
  ?skip_stats:Wfs_core.Skip_stats.t ->
  ?max_slots:int ->
  Spec.t ->
  (Wfs_core.Metrics.t, Wfs_util.Error.t) result
(** Crash-isolated {!run}: never raises, every failure is a typed error
    carrying the spec string in its context.  Classification: scenario
    parse failures and unreadable files are [Bad_spec]; out-of-range
    parameters and unknown schedulers ([Invalid_argument]) are
    [Bad_config]; monitor hits are [Invariant_violation]; anything else —
    including the [max_slots] budget refusal — is [Sim_fault].

    [max_slots] is the deterministic watchdog: a spec whose [horizon]
    exceeds it is refused {e before} running.  The slot loop is strictly
    horizon-bounded, so the budget is knowable up front — no wall-clock
    timers, identical verdicts on any machine.

    [flight_recorder n] runs the spec with a capacity-[n] ring trace
    ({!Wfs_sim.Tracelog.create}[ ~capacity]).  On {e any} failure the
    error context gains [flight-recorder-events] (count retained) and
    [flight-recorder] (the last [n] events, rendered ["s<slot> <event>"]
    and ["|"]-separated) — so a [Sim_fault]/[Invariant_violation] row in
    the failure table shows what the scheduler did right before dying.
    Mutually exclusive with [trace] ([Bad_config] if both are given;
    [Bad_config] too when [n < 1]). *)

val flight_context : Wfs_sim.Tracelog.t -> (string * string) list
(** The context fields a flight recorder contributes to an error:
    [flight-recorder-events] (entries retained) and [flight-recorder] (the
    entries rendered ["s<slot> <event>"], ["|"]-separated).  Exposed for
    drivers that manage their own recorder (e.g. the CLI's fairness path,
    which builds its scheduler outside {!run}). *)

val run_all :
  jobs:int ->
  ?credit_limit:int ->
  ?debit_limit:int ->
  ?limits:(int * int) array ->
  Spec.t array ->
  Wfs_core.Metrics.t array
(** {!run} every spec on up to [jobs] domains; result [i] belongs to spec
    [i] regardless of scheduling. *)

val replicate : jobs:int -> seeds:int -> Spec.t -> Wfs_core.Metrics.t array
(** Multi-seed replication: run [seeds] copies of the spec with seeds
    [spec.seed, spec.seed + 1, ..., spec.seed + seeds - 1] in parallel.
    @raise Invalid_argument when [seeds < 1]. *)

val summarize :
  (Wfs_core.Metrics.t -> float) ->
  Wfs_core.Metrics.t array ->
  Wfs_util.Stats.Summary.t
(** Fold one scalar metric across replications into a summary (mean,
    stddev, {!Wfs_util.Stats.Summary.ci95}, ...). *)
