let default_jobs () = Domain.recommended_domain_count ()

exception Worker_error of exn * Printexc.raw_backtrace

let map ~jobs f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let jobs = Int.max 1 (Int.min jobs n) in
    if jobs = 1 then Array.map f items
    else begin
      let results = Array.make n None in
      let error = Atomic.make None in
      let next = Atomic.make 0 in
      (* Self-scheduling loop: each worker claims the next unclaimed index.
         The claim order is racy but harmless — result slot [i] only ever
         receives [f items.(i)], so the merged output is order-independent. *)
      let rec work () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Option.is_none (Atomic.get error) then begin
          (match f items.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore
                (Atomic.compare_and_set error None
                   (Some (Worker_error (e, bt)))));
          work ()
        end
      in
      let workers = Array.init (jobs - 1) (fun _ -> Domain.spawn work) in
      work ();
      Array.iter Domain.join workers;
      (match Atomic.get error with
      | Some (Worker_error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some e -> raise e
      | None -> ());
      Array.map
        (function Some v -> v | None -> assert false (* all indices filled *))
        results
    end
  end
