let default_jobs () = Domain.recommended_domain_count ()

exception Worker_error of exn * Printexc.raw_backtrace

type 'a outcome = ('a, Wfs_util.Error.t) result

let map ~jobs f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let jobs = Int.max 1 (Int.min jobs n) in
    if jobs = 1 then Array.map f items
    else begin
      let results = Array.make n None in
      let error = Atomic.make None in
      let next = Atomic.make 0 in
      (* Self-scheduling loop: each worker claims the next unclaimed index.
         The claim order is racy but harmless — result slot [i] only ever
         receives [f items.(i)], so the merged output is order-independent. *)
      let rec work () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Option.is_none (Atomic.get error) then begin
          (* analyze: allow A2 -- items is frozen before spawn: workers only read it *)
          (match f items.(i) with
          (* analyze: allow A2 -- slot i belongs to the worker that won the fetch_and_add; writes are disjoint and joined before any read *)
          | v -> results.(i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore
                (Atomic.compare_and_set error None
                   (Some (Worker_error (e, bt)))));
          work ()
        end
      in
      let workers = Array.init (jobs - 1) (fun _ -> Domain.spawn work) in
      work ();
      Array.iter Domain.join workers;
      (match Atomic.get error with
      | Some (Worker_error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some e -> raise e
      | None -> ());
      Array.map
        (function Some v -> v | None -> assert false (* all indices filled *))
        results
    end
  end

let map_outcomes ~jobs ?(retries = 0) ?(retry_if = fun _ -> true) ?notify f
    items =
  if retries < 0 then
    Wfs_util.Error.invalidf "Pool.map_outcomes" "retries must be >= 0, got %d"
      retries;
  (* The notify callback (incremental journaling) runs on whichever worker
     domain finished the job; serialize the calls so callers need no
     locking of their own. *)
  let notify_mutex = Mutex.create () in
  let notified i outcome =
    (match notify with
    | None -> ()
    | Some cb ->
        Mutex.lock notify_mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock notify_mutex)
          (fun () -> cb i outcome));
    outcome
  in
  let one (i, item) =
    (* Work items are self-contained (they re-derive every RNG stream from
       their own captured seed), so a retry replays the exact same
       computation: useful against spurious environmental failures, and —
       deliberately — a no-op amplifier for deterministic bugs, which is
       what makes retried sweeps reproducible. *)
    let attempt () =
      match f item with
      | outcome -> outcome
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Error (Wfs_util.Error.of_exn ~backtrace:bt e)
    in
    let rec go k =
      match attempt () with
      | Ok _ as ok -> notified i ok
      | Error e ->
          (* retry_if is a pure classifier over the typed error (e.g. the
             chaos layer retries transient injected faults but not
             persistent ones), so whether a retry happens is itself
             deterministic. *)
          if k < retries && retry_if e then go (k + 1)
          else
            notified i
              (Error
                 (if retries = 0 then e
                  else
                    Wfs_util.Error.add_context
                      [ ("attempts", string_of_int (k + 1)) ]
                      e))
    in
    go 0
  in
  map ~jobs one (Array.mapi (fun i item -> (i, item)) items)
