type scenario =
  | Example of { n : int; sum : float option }
  | File of string

type topo = { cells : int; mobility : float; epoch : int }

type t = {
  scenario : scenario;
  sched : string;
  seed : int;
  horizon : int;
  topo : topo option;
}

let default_seed = 42
let default_horizon = 200_000

let example ?sum n =
  if n < 1 || n > 6 then
    Wfs_util.Error.invalidf "Spec.example" "unknown example %d (use 1-6)" n;
  if n > 2 && Option.is_some sum then
    Wfs_util.Error.invalidf "Spec.example"
      "sum (pg+pe) is only a knob of examples 1-2, not %d" n;
  Example { n; sum }

let file path = File path

let topo ~cells ~mobility ~epoch =
  if cells < 1 then
    Wfs_util.Error.invalidf "Spec.topo" "cells must be >= 1, got %d" cells;
  if epoch < 1 then
    Wfs_util.Error.invalidf "Spec.topo" "epoch must be >= 1, got %d" epoch;
  if not (mobility >= 0. && mobility <= 1.) then
    Wfs_util.Error.invalidf "Spec.topo" "mobility must be in [0,1], got %g"
      mobility;
  { cells; mobility; epoch }

let make ?(seed = default_seed) ?(horizon = default_horizon) ?topo ~sched
    scenario =
  if horizon <= 0 then
    Wfs_util.Error.invalidf "Spec.make" "non-positive horizon %d" horizon;
  { scenario; sched; seed; horizon; topo }

let with_seed seed t = { t with seed }

let with_horizon horizon t =
  make ~seed:t.seed ~horizon ?topo:t.topo ~sched:t.sched t.scenario

let with_sched sched t = { t with sched }
let with_topo topo t = { t with topo = Some topo }

let of_scenario_file ?(sched = "WPS") path =
  let sc = Wfs_core.Scenario.load path in
  {
    scenario = File path;
    sched;
    seed = sc.Wfs_core.Scenario.seed;
    horizon = sc.Wfs_core.Scenario.horizon;
    topo = None;
  }

let scenario_to_string s =
  match s with
  | Example { n; sum = None } -> Printf.sprintf "example:%d" n
  | Example { n; sum = Some sum } ->
      Printf.sprintf "example:%d?sum=%s" n (Json.float_to_string sum)
  | File path -> "file:" ^ path

let topo_to_string tp =
  Printf.sprintf "cells=%d,mobility=%s,epoch=%d" tp.cells
    (Json.float_to_string tp.mobility)
    tp.epoch

let to_string t =
  let base =
    Printf.sprintf "%s | %s | seed=%d | horizon=%d"
      (scenario_to_string t.scenario)
      t.sched t.seed t.horizon
  in
  match t.topo with
  | None -> base
  | Some tp -> base ^ " | " ^ topo_to_string tp

let scenario_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "scenario %S: expected example:N or file:PATH" s)
  | Some i -> begin
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "file" ->
          if String.length rest = 0 then Error "file: needs a path"
          else Ok (File rest)
      | "example" -> begin
          let num, sum_part =
            match String.index_opt rest '?' with
            | None -> (rest, None)
            | Some j ->
                ( String.sub rest 0 j,
                  Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
          in
          match int_of_string_opt num with
          | None -> Error (Printf.sprintf "example number %S is not an integer" num)
          | Some n -> begin
              let sum =
                match sum_part with
                | None -> Ok None
                | Some kv -> begin
                    match String.split_on_char '=' kv with
                    | [ "sum"; v ] -> begin
                        match float_of_string_opt v with
                        | Some f -> Ok (Some f)
                        | None ->
                            Error (Printf.sprintf "sum value %S is not a number" v)
                      end
                    | _ ->
                        Error
                          (Printf.sprintf "unknown example parameter %S (only sum=F)" kv)
                  end
              in
              match sum with
              | Error _ as e -> e
              | Ok sum -> begin
                  match example ?sum n with
                  | scenario -> Ok scenario
                  | exception Invalid_argument msg -> Error msg
                end
            end
        end
      | _ -> Error (Printf.sprintf "unknown scenario kind %S (example | file)" kind)
    end

let int_field ~key s =
  match String.split_on_char '=' s with
  | [ k; v ] when String.equal k key -> begin
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "%s value %S is not an integer" key v)
    end
  | _ -> Error (Printf.sprintf "expected %s=N, got %S" key s)

(* The topology clause is the optional 5th field:
   [cells=K,mobility=R,epoch=E] — comma-separated, all three keys
   required, in that order (one canonical spelling keeps
   to_string/of_string a bijection). *)
let topo_of_string s =
  match String.split_on_char ',' s with
  | [ cells; mobility; epoch ] -> begin
      match int_field ~key:"cells" cells with
      | Error _ as e -> e
      | Ok cells -> begin
          match String.split_on_char '=' mobility with
          | [ "mobility"; v ] -> begin
              match float_of_string_opt v with
              | None ->
                  Error (Printf.sprintf "mobility value %S is not a number" v)
              | Some mobility -> begin
                  match int_field ~key:"epoch" epoch with
                  | Error _ as e -> e
                  | Ok epoch -> begin
                      match topo ~cells ~mobility ~epoch with
                      | tp -> Ok tp
                      | exception Invalid_argument msg -> Error msg
                    end
                end
            end
          | _ -> Error (Printf.sprintf "expected mobility=R, got %S" mobility)
        end
    end
  | _ ->
      Error
        (Printf.sprintf
           "topology %S: expected cells=K,mobility=R,epoch=E" s)

let of_string s =
  let fields = List.map String.trim (String.split_on_char '|' s) in
  let of_base scenario sched seed horizon topo =
    match scenario_of_string scenario with
    | Error _ as e -> e
    | Ok scenario -> begin
        if String.length sched = 0 then Error "empty scheduler name"
        else
          match int_field ~key:"seed" seed with
          | Error _ as e -> e
          | Ok seed -> begin
              match int_field ~key:"horizon" horizon with
              | Error _ as e -> e
              | Ok horizon ->
                  if horizon <= 0 then
                    Error (Printf.sprintf "non-positive horizon %d" horizon)
                  else Ok { scenario; sched; seed; horizon; topo }
            end
      end
  in
  match fields with
  | [ scenario; sched; seed; horizon ] -> of_base scenario sched seed horizon None
  | [ scenario; sched; seed; horizon; topo ] -> begin
      match topo_of_string topo with
      | Error _ as e -> e
      | Ok tp -> of_base scenario sched seed horizon (Some tp)
    end
  | _ ->
      Error
        (Printf.sprintf
           "spec %S: expected 4 |-separated fields (scenario | sched | seed=N \
            | horizon=N), optionally followed by | cells=K,mobility=R,epoch=E"
           s)

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error msg -> Wfs_util.Error.invalid "Spec.of_string" msg

let parse s =
  match of_string s with
  | Ok _ as ok -> ok
  | Error msg ->
      Error
        (Wfs_util.Error.v Wfs_util.Error.Bad_spec ~who:"Spec.parse" msg
           ~context:[ ("spec", s) ])

let scenario_equal a b =
  match (a, b) with
  | Example a, Example b ->
      Int.equal a.n b.n && Option.equal Float.equal a.sum b.sum
  | File a, File b -> String.equal a b
  | Example _, File _ | File _, Example _ -> false

let topo_equal a b =
  Int.equal a.cells b.cells
  && Float.equal a.mobility b.mobility
  && Int.equal a.epoch b.epoch

let equal a b =
  scenario_equal a.scenario b.scenario
  && String.equal a.sched b.sched
  && Int.equal a.seed b.seed
  && Int.equal a.horizon b.horizon
  && Option.equal topo_equal a.topo b.topo
