type scenario =
  | Example of { n : int; sum : float option }
  | File of string

type faults = {
  crash : float;
  recover : float;
  lose : float;
  corrupt : float;
  blackout : float;
  blackout_len : int;
  exn : float;
  persist : float;
  budget : int;
}

type topo = {
  cells : int;
  mobility : float;
  epoch : int;
  faults : faults option;
}

type t = {
  scenario : scenario;
  sched : string;
  seed : int;
  horizon : int;
  topo : topo option;
}

let default_seed = 42
let default_horizon = 200_000

let example ?sum n =
  if n < 1 || n > 6 then
    Wfs_util.Error.invalidf "Spec.example" "unknown example %d (use 1-6)" n;
  if n > 2 && Option.is_some sum then
    Wfs_util.Error.invalidf "Spec.example"
      "sum (pg+pe) is only a knob of examples 1-2, not %d" n;
  Example { n; sum }

let file path = File path

let faults ?(crash = 0.) ?(recover = 0.) ?(lose = 0.) ?(corrupt = 0.)
    ?(blackout = 0.) ?(blackout_len = 1) ?(exn = 0.) ?(persist = 0.)
    ?(budget = 0) () =
  let rate name r =
    if not (r >= 0. && r <= 1.) then
      Wfs_util.Error.invalidf "Spec.faults" "%s must be in [0,1], got %g" name r
  in
  rate "crash" crash;
  rate "recover" recover;
  rate "lose" lose;
  rate "corrupt" corrupt;
  rate "blackout" blackout;
  rate "exn" exn;
  rate "persist" persist;
  if blackout_len < 1 then
    Wfs_util.Error.invalidf "Spec.faults" "blackout length must be >= 1, got %d"
      blackout_len;
  if budget < 0 then
    Wfs_util.Error.invalidf "Spec.faults" "budget must be >= 0, got %d" budget;
  { crash; recover; lose; corrupt; blackout; blackout_len; exn; persist; budget }

(* Recovery, persistence and the budget only shape how injected faults
   play out; a plan is inert unless at least one injection rate is
   positive — and an inert plan must leave the run byte-identical to a
   plan-less spec, so this predicate gates every chaos hook. *)
let faults_active p =
  p.crash > 0. || p.lose > 0. || p.corrupt > 0. || p.blackout > 0. || p.exn > 0.

let topo ~cells ~mobility ~epoch =
  if cells < 1 then
    Wfs_util.Error.invalidf "Spec.topo" "cells must be >= 1, got %d" cells;
  if epoch < 1 then
    Wfs_util.Error.invalidf "Spec.topo" "epoch must be >= 1, got %d" epoch;
  if not (mobility >= 0. && mobility <= 1.) then
    Wfs_util.Error.invalidf "Spec.topo" "mobility must be in [0,1], got %g"
      mobility;
  { cells; mobility; epoch; faults = None }

let with_faults faults tp = { tp with faults = Some faults }

let make ?(seed = default_seed) ?(horizon = default_horizon) ?topo ~sched
    scenario =
  if horizon <= 0 then
    Wfs_util.Error.invalidf "Spec.make" "non-positive horizon %d" horizon;
  { scenario; sched; seed; horizon; topo }

let with_seed seed t = { t with seed }

let with_horizon horizon t =
  make ~seed:t.seed ~horizon ?topo:t.topo ~sched:t.sched t.scenario

let with_sched sched t = { t with sched }
let with_topo topo t = { t with topo = Some topo }

let of_scenario_file ?(sched = "WPS") path =
  let sc = Wfs_core.Scenario.load path in
  {
    scenario = File path;
    sched;
    seed = sc.Wfs_core.Scenario.seed;
    horizon = sc.Wfs_core.Scenario.horizon;
    topo = None;
  }

let scenario_to_string s =
  match s with
  | Example { n; sum = None } -> Printf.sprintf "example:%d" n
  | Example { n; sum = Some sum } ->
      Printf.sprintf "example:%d?sum=%s" n (Json.float_to_string sum)
  | File path -> "file:" ^ path

(* The fault plan has its own key:value micro-grammar, ;-separated because
   the surrounding topology clause already splits on commas.  All eight
   keys are required, in this one canonical order, so to_string/of_string
   stays a bijection (same discipline as the clause itself). *)
let faults_to_string p =
  Printf.sprintf "crash:%s;recover:%s;lose:%s;corrupt:%s;blackout:%sx%d;exn:%s;persist:%s;budget:%d"
    (Json.float_to_string p.crash)
    (Json.float_to_string p.recover)
    (Json.float_to_string p.lose)
    (Json.float_to_string p.corrupt)
    (Json.float_to_string p.blackout)
    p.blackout_len
    (Json.float_to_string p.exn)
    (Json.float_to_string p.persist)
    p.budget

let topo_to_string tp =
  let base =
    Printf.sprintf "cells=%d,mobility=%s,epoch=%d" tp.cells
      (Json.float_to_string tp.mobility)
      tp.epoch
  in
  match tp.faults with
  | None -> base
  | Some p -> Printf.sprintf "%s,faults=%s" base (faults_to_string p)

let to_string t =
  let base =
    Printf.sprintf "%s | %s | seed=%d | horizon=%d"
      (scenario_to_string t.scenario)
      t.sched t.seed t.horizon
  in
  match t.topo with
  | None -> base
  | Some tp -> base ^ " | " ^ topo_to_string tp

let scenario_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "scenario %S: expected example:N or file:PATH" s)
  | Some i -> begin
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "file" ->
          if String.length rest = 0 then Error "file: needs a path"
          else Ok (File rest)
      | "example" -> begin
          let num, sum_part =
            match String.index_opt rest '?' with
            | None -> (rest, None)
            | Some j ->
                ( String.sub rest 0 j,
                  Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
          in
          match int_of_string_opt num with
          | None -> Error (Printf.sprintf "example number %S is not an integer" num)
          | Some n -> begin
              let sum =
                match sum_part with
                | None -> Ok None
                | Some kv -> begin
                    match String.split_on_char '=' kv with
                    | [ "sum"; v ] -> begin
                        match float_of_string_opt v with
                        | Some f -> Ok (Some f)
                        | None ->
                            Error (Printf.sprintf "sum value %S is not a number" v)
                      end
                    | _ ->
                        Error
                          (Printf.sprintf "unknown example parameter %S (only sum=F)" kv)
                  end
              in
              match sum with
              | Error _ as e -> e
              | Ok sum -> begin
                  match example ?sum n with
                  | scenario -> Ok scenario
                  | exception Invalid_argument msg -> Error msg
                end
            end
        end
      | _ -> Error (Printf.sprintf "unknown scenario kind %S (example | file)" kind)
    end

let int_field ~key s =
  match String.split_on_char '=' s with
  | [ k; v ] when String.equal k key -> begin
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "%s value %S is not an integer" key v)
    end
  | _ -> Error (Printf.sprintf "expected %s=N, got %S" key s)

let float_field ~key s =
  match String.split_on_char ':' s with
  | [ k; v ] when String.equal k key -> begin
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "%s value %S is not a number" key v)
    end
  | _ -> Error (Printf.sprintf "expected %s:R, got %S" key s)

(* [crash:R;recover:R;lose:R;corrupt:R;blackout:RxN;exn:R;persist:R;budget:N]
   — every key required, in that order. *)
let faults_of_string s =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  match String.split_on_char ';' s with
  | [ crash; recover; lose; corrupt; blackout; exn_; persist; budget ] ->
      let* crash = float_field ~key:"crash" crash in
      let* recover = float_field ~key:"recover" recover in
      let* lose = float_field ~key:"lose" lose in
      let* corrupt = float_field ~key:"corrupt" corrupt in
      let* blackout, blackout_len =
        match String.split_on_char ':' blackout with
        | [ "blackout"; v ] -> begin
            match String.split_on_char 'x' v with
            | [ rate; len ] -> begin
                match (float_of_string_opt rate, int_of_string_opt len) with
                | Some rate, Some len -> Ok (rate, len)
                | _ ->
                    Error (Printf.sprintf "blackout value %S is not RxN" v)
              end
            | _ -> Error (Printf.sprintf "blackout value %S is not RxN" v)
          end
        | _ -> Error (Printf.sprintf "expected blackout:RxN, got %S" blackout)
      in
      let* exn = float_field ~key:"exn" exn_ in
      let* persist = float_field ~key:"persist" persist in
      let* budget =
        match String.split_on_char ':' budget with
        | [ "budget"; v ] -> begin
            match int_of_string_opt v with
            | Some n -> Ok n
            | None -> Error (Printf.sprintf "budget value %S is not an integer" v)
          end
        | _ -> Error (Printf.sprintf "expected budget:N, got %S" budget)
      in
      begin
        match
          faults ~crash ~recover ~lose ~corrupt ~blackout ~blackout_len ~exn
            ~persist ~budget ()
        with
        | p -> Ok p
        | exception Invalid_argument msg -> Error msg
      end
  | _ ->
      Error
        (Printf.sprintf
           "fault plan %S: expected \
            crash:R;recover:R;lose:R;corrupt:R;blackout:RxN;exn:R;persist:R;budget:N"
           s)

(* The topology clause is the optional 5th field:
   [cells=K,mobility=R,epoch=E[,faults=PLAN]] — comma-separated, the
   first three keys required, in that order (one canonical spelling keeps
   to_string/of_string a bijection). *)
let topo_of_string s =
  let of_parts cells mobility epoch faults_part =
    match int_field ~key:"cells" cells with
    | Error _ as e -> e
    | Ok cells -> begin
        match String.split_on_char '=' mobility with
        | [ "mobility"; v ] -> begin
            match float_of_string_opt v with
            | None ->
                Error (Printf.sprintf "mobility value %S is not a number" v)
            | Some mobility -> begin
                match int_field ~key:"epoch" epoch with
                | Error _ as e -> e
                | Ok epoch -> begin
                    let fl =
                      match faults_part with
                      | None -> Ok None
                      | Some fp -> begin
                          match String.index_opt fp '=' with
                          | Some i when String.equal (String.sub fp 0 i) "faults"
                            -> begin
                              match
                                faults_of_string
                                  (String.sub fp (i + 1)
                                     (String.length fp - i - 1))
                              with
                              | Ok p -> Ok (Some p)
                              | Error _ as e -> e
                            end
                          | _ ->
                              Error
                                (Printf.sprintf "expected faults=PLAN, got %S"
                                   fp)
                        end
                    in
                    match fl with
                    | Error msg -> Error msg
                    | Ok fl -> begin
                        match topo ~cells ~mobility ~epoch with
                        | tp -> Ok { tp with faults = fl }
                        | exception Invalid_argument msg -> Error msg
                      end
                  end
              end
          end
        | _ -> Error (Printf.sprintf "expected mobility=R, got %S" mobility)
      end
  in
  match String.split_on_char ',' s with
  | [ cells; mobility; epoch ] -> of_parts cells mobility epoch None
  | [ cells; mobility; epoch; faults ] ->
      of_parts cells mobility epoch (Some faults)
  | _ ->
      Error
        (Printf.sprintf
           "topology %S: expected cells=K,mobility=R,epoch=E[,faults=PLAN]" s)

let of_string s =
  let fields = List.map String.trim (String.split_on_char '|' s) in
  let of_base scenario sched seed horizon topo =
    match scenario_of_string scenario with
    | Error _ as e -> e
    | Ok scenario -> begin
        if String.length sched = 0 then Error "empty scheduler name"
        else
          match int_field ~key:"seed" seed with
          | Error _ as e -> e
          | Ok seed -> begin
              match int_field ~key:"horizon" horizon with
              | Error _ as e -> e
              | Ok horizon ->
                  if horizon <= 0 then
                    Error (Printf.sprintf "non-positive horizon %d" horizon)
                  else Ok { scenario; sched; seed; horizon; topo }
            end
      end
  in
  match fields with
  | [ scenario; sched; seed; horizon ] -> of_base scenario sched seed horizon None
  | [ scenario; sched; seed; horizon; topo ] -> begin
      match topo_of_string topo with
      | Error _ as e -> e
      | Ok tp -> of_base scenario sched seed horizon (Some tp)
    end
  | _ ->
      Error
        (Printf.sprintf
           "spec %S: expected 4 |-separated fields (scenario | sched | seed=N \
            | horizon=N), optionally followed by | \
            cells=K,mobility=R,epoch=E[,faults=PLAN]"
           s)

let of_string_exn s =
  match of_string s with
  | Ok t -> t
  | Error msg -> Wfs_util.Error.invalid "Spec.of_string" msg

let parse s =
  match of_string s with
  | Ok _ as ok -> ok
  | Error msg ->
      Error
        (Wfs_util.Error.v Wfs_util.Error.Bad_spec ~who:"Spec.parse" msg
           ~context:[ ("spec", s) ])

let scenario_equal a b =
  match (a, b) with
  | Example a, Example b ->
      Int.equal a.n b.n && Option.equal Float.equal a.sum b.sum
  | File a, File b -> String.equal a b
  | Example _, File _ | File _, Example _ -> false

let faults_equal a b =
  Float.equal a.crash b.crash
  && Float.equal a.recover b.recover
  && Float.equal a.lose b.lose
  && Float.equal a.corrupt b.corrupt
  && Float.equal a.blackout b.blackout
  && Int.equal a.blackout_len b.blackout_len
  && Float.equal a.exn b.exn
  && Float.equal a.persist b.persist
  && Int.equal a.budget b.budget

let topo_equal a b =
  Int.equal a.cells b.cells
  && Float.equal a.mobility b.mobility
  && Int.equal a.epoch b.epoch
  && Option.equal faults_equal a.faults b.faults

let equal a b =
  scenario_equal a.scenario b.scenario
  && String.equal a.sched b.sched
  && Int.equal a.seed b.seed
  && Int.equal a.horizon b.horizon
  && Option.equal topo_equal a.topo b.topo
