(** Alias of {!Wfs_util.Json} (the tree moved to lib/util so statistics
    and metrics serializers can use it); kept so existing
    [Wfs_runner.Json] users keep compiling. *)

include module type of struct
  include Wfs_util.Json
end
