(** The bench's machine-readable result artifact ([BENCH_*.json]).

    One artifact captures a whole bench invocation: the run parameters
    (horizon, base seed, replication count, worker count), the throughput
    of the engine itself (wall-clock seconds and simulated slots/second —
    the perf trajectory the ROADMAP asks for), and every measured table as
    title + columns + cell rows, exactly as rendered.  {!write} and
    {!read} round-trip: [read path] after [write ~path t] yields [Ok t']
    with [equal t t'].

    Wall-clock values are measured by the {e caller} (the bench binary) and
    passed in — nothing in this library reads a clock, so results stay
    deterministic (lint rule R1). *)

type table = {
  title : string;
  columns : string list;
  rows : string list list;  (** rendered cells, row-major *)
}

type t = {
  schema : string;  (** {!schema_version} *)
  horizon : int;
  seed : int;  (** base seed; replication k runs with seed + k *)
  seeds : int;  (** replications per spec (>= 1) *)
  jobs : int;  (** worker domains used *)
  runs : int;  (** distinct simulation runs executed *)
  slots : int;  (** total slots simulated across all runs *)
  wall_clock_s : float;  (** caller-measured elapsed time; 0 when unknown *)
  slots_per_sec : float;  (** [slots /. wall_clock_s]; 0 when unknown *)
  tables : table list;
}

val schema_version : string
(** ["wfs-bench/1"] *)

val v :
  horizon:int ->
  seed:int ->
  seeds:int ->
  jobs:int ->
  runs:int ->
  slots:int ->
  wall_clock_s:float ->
  tables:table list ->
  t
(** Fills in [schema] and derives [slots_per_sec]. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val write : path:string -> t -> unit
val read : string -> (t, string) result
(** [Error] on unreadable file, bad JSON, missing fields, or an unknown
    schema version. *)

val equal : t -> t -> bool
