(** Typed run specs: the (scenario, scheduler, seed, horizon) tuple.

    A spec names one simulation run completely: which workload (a paper
    example or a scenario file), which scheduler (a {!Wfs_core.Registry}
    name), the PRNG seed every stream in the run is split from, and the
    horizon in slots.  Specs are pure data — {!Exec} turns one into a
    {!Wfs_core.Metrics.t} — and serialize to a stable string form that
    round-trips through {!of_string}, so a spec is also a reproducible
    experiment id (the bench uses it as the dedup/merge key, the CLI
    accepts it via [--spec]).

    String form (fields separated by [|], whitespace around fields is
    ignored).  The optional 5th field is the multi-cell topology clause —
    a spec without it means the classic single-cell run, so every
    pre-topology spec string keeps parsing unchanged:

    {v
    example:1?sum=0.5 | SwapA-P | seed=42 | horizon=200000
    file:examples/cell.scenario | WPS | seed=7 | horizon=50000
    example:1 | WPS | seed=42 | horizon=20000 | cells=4,mobility=0.01,epoch=500
    example:1 | WPS | seed=42 | horizon=20000 | cells=4,mobility=0.01,epoch=500,faults=crash:0.01;recover:0.5;lose:0.05;corrupt:0.05;blackout:0.02x250;exn:0.01;persist:0.25;budget:1
    v} *)

type scenario =
  | Example of { n : int; sum : float option }
      (** paper Example [n] (1–6); [sum] is the pg+pe burstiness knob of
          Examples 1–2 *)
  | File of string  (** a scenario file, {!Wfs_core.Scenario} format *)

type faults = {
  crash : float;  (** per-cell crash probability at each epoch barrier *)
  recover : float;
      (** per-crashed-cell recovery probability at each later barrier *)
  lose : float;  (** per-handoff probability the parcel is lost in transit *)
  corrupt : float;
      (** per-handoff probability the carried state arrives corrupted *)
  blackout : float;
      (** per-cell probability a channel blackout burst starts at a barrier *)
  blackout_len : int;  (** blackout burst duration in slots *)
  exn : float;
      (** per-cell probability a worker-domain exception is injected into
          the next epoch's advance *)
  persist : float;
      (** fraction of injected exceptions that are persistent (survive
          retries) rather than transient (one-shot) *)
  budget : int;
      (** worker-fault watchdog: how many cells may fail in one epoch
          before the whole run is refused as a [Sim_fault] *)
}
(** A deterministic fault plan for a {!Wfs_topo} run — all draws happen at
    epoch barriers from the plan's own RNG stream (see
    [docs/ROBUSTNESS.md]).  String form, ;-separated, all keys required in
    this order:
    [crash:R;recover:R;lose:R;corrupt:R;blackout:RxN;exn:R;persist:R;budget:N] *)

type topo = {
  cells : int;  (** number of cells; the scenario is instantiated per cell *)
  mobility : float;
      (** per-flow probability of handing off at each epoch barrier *)
  epoch : int;  (** slots per lockstep epoch (the handoff granularity) *)
  faults : faults option;  (** [None] or an inert plan = no chaos hooks *)
}

type t = {
  scenario : scenario;
  sched : string;  (** scheduler registry name, e.g. ["SwapA-P"] *)
  seed : int;
  horizon : int;
  topo : topo option;
      (** [None] = the classic single-cell run; [Some _] = a
          {!Wfs_topo.Topology} run *)
}

val default_seed : int
(** 42 — the bench default. *)

val default_horizon : int
(** 200000 slots — the paper's evaluation horizon. *)

(** {1 Builder} *)

val example : ?sum:float -> int -> scenario
(** @raise Invalid_argument when [n] is outside 1–6 or [sum] is given for
    an example other than 1–2. *)

val file : string -> scenario

val topo : cells:int -> mobility:float -> epoch:int -> topo
(** A topology clause without a fault plan ([faults = None]); add one with
    {!with_faults}.
    @raise Invalid_argument on [cells < 1], [epoch < 1], or a mobility
    outside [[0, 1]]. *)

val faults :
  ?crash:float ->
  ?recover:float ->
  ?lose:float ->
  ?corrupt:float ->
  ?blackout:float ->
  ?blackout_len:int ->
  ?exn:float ->
  ?persist:float ->
  ?budget:int ->
  unit ->
  faults
(** A fault plan; every rate defaults to 0, [blackout_len] to 1, [budget]
    to 0 (any persistent worker fault fails its run).
    @raise Invalid_argument on a rate outside [[0, 1]],
    [blackout_len < 1] or [budget < 0]. *)

val faults_active : faults -> bool
(** [true] when at least one injection rate ([crash], [lose], [corrupt],
    [blackout], [exn]) is positive.  An inert plan engages no chaos hook:
    the run is byte-identical to the same spec without the plan. *)

val with_faults : faults -> topo -> topo

val make : ?seed:int -> ?horizon:int -> ?topo:topo -> sched:string -> scenario -> t
(** Defaults: {!default_seed}, {!default_horizon}, no topology.
    @raise Invalid_argument on a non-positive horizon. *)

val with_seed : int -> t -> t
val with_horizon : int -> t -> t
val with_sched : string -> t -> t
val with_topo : topo -> t -> t

val of_scenario_file : ?sched:string -> string -> t
(** [of_scenario_file path] parses the scenario file and lifts it into a
    spec, taking seed and horizon from the file's directives (their
    defaults when absent).  [sched] defaults to ["WPS"].
    @raise Wfs_core.Scenario.Parse_error or [Sys_error]. *)

(** {1 Serialization} *)

val faults_to_string : faults -> string

val faults_of_string : string -> (faults, string) result
(** Inverse of {!faults_to_string}; also the [--faults] CLI grammar. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Inverse of {!to_string}: [of_string (to_string t)] always yields
    [Ok t'] with [equal t t'].  Purely syntactic — the scheduler name is
    validated by {!Exec}, not here. *)

val of_string_exn : string -> t
(** @raise Invalid_argument with the parse message. *)

val parse : string -> (t, Wfs_util.Error.t) result
(** {!of_string} with a typed error: parse failures become kind
    [Bad_spec] with the offending spec string in the context.  Never
    raises. *)

val equal : t -> t -> bool
val topo_equal : topo -> topo -> bool
val faults_equal : faults -> faults -> bool
