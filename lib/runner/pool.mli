(** Fixed-size domain pool with deterministic result ordering.

    {!map} fans an array of independent work items out over OCaml 5
    domains.  Results land at the index of their input item, so the output
    is byte-identical regardless of worker count or completion order — the
    property the parallel experiment engine is built on.  Work items must
    be self-contained (each simulation run seeds its own RNG streams and
    owns all its mutable state); the pool adds no synchronization beyond
    the work-stealing counter and the final join. *)

val default_jobs : unit -> int
(** The runtime's recommended domain count for this machine. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f items] applies [f] to every item, on up to [jobs] domains
    ([jobs] is clamped to [1 .. length items]; [jobs <= 1] runs everything
    in the calling domain, spawning nothing).  [f] must not share mutable
    state across items.  If any application raises, the first error (in
    completion order) is re-raised in the caller after all workers have
    stopped; remaining items are skipped. *)

type 'a outcome = ('a, Wfs_util.Error.t) result

val map_outcomes :
  jobs:int ->
  ?retries:int ->
  ?retry_if:(Wfs_util.Error.t -> bool) ->
  ?notify:(int -> 'b outcome -> unit) ->
  ('a -> 'b outcome) ->
  'a array ->
  'b outcome array
(** Crash-isolated {!map}: every item yields an outcome, never an escaped
    exception.  [f] may return [Error] itself (typed failures) or raise —
    raised exceptions are captured per job with their backtrace and
    classified through {!Wfs_util.Error.of_exn}, so one crashing job
    loses only that job.

    [retries] (default 0) re-runs a failed item up to that many extra
    times before accepting the failure; items re-derive all randomness
    from their own captured seed, so a retry replays the identical RNG
    stream and the merged output stays deterministic.  [retry_if]
    (default [fun _ -> true]) classifies which typed errors are worth
    retrying — a pure predicate, so retry decisions are as reproducible
    as the failures themselves (the chaos layer retries transient
    injected faults and refuses persistent ones).  Accepted failures
    gain an ["attempts"] context entry when retries were configured.

    [notify i outcome] is invoked once per item as it completes (on the
    finishing worker's domain, but serialized under an internal mutex) —
    the hook incremental checkpointing is built on.  Completion order is
    racy; result array order is not.
    @raise Invalid_argument when [retries < 0]. *)
