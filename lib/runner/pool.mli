(** Fixed-size domain pool with deterministic result ordering.

    {!map} fans an array of independent work items out over OCaml 5
    domains.  Results land at the index of their input item, so the output
    is byte-identical regardless of worker count or completion order — the
    property the parallel experiment engine is built on.  Work items must
    be self-contained (each simulation run seeds its own RNG streams and
    owns all its mutable state); the pool adds no synchronization beyond
    the work-stealing counter and the final join. *)

val default_jobs : unit -> int
(** The runtime's recommended domain count for this machine. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f items] applies [f] to every item, on up to [jobs] domains
    ([jobs] is clamped to [1 .. length items]; [jobs <= 1] runs everything
    in the calling domain, spawning nothing).  [f] must not share mutable
    state across items.  If any application raises, the first error (in
    completion order) is re-raised in the caller after all workers have
    stopped; remaining items are skipped. *)
