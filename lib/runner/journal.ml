module Error = Wfs_util.Error

let schema = "wfs-bench/1-journal"

type writer = { oc : out_channel; mutex : Mutex.t }

let create ?(schema = schema) ~path ~params () =
  let oc = open_out_bin path in
  output_string oc
    (Json.to_string ~pretty:false (Json.Obj (("schema", Json.Str schema) :: params)));
  output_char oc '\n';
  flush oc;
  { oc; mutex = Mutex.create () }

let reopen ~path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
  in
  { oc; mutex = Mutex.create () }

let append w ~key ~value =
  let line =
    Json.to_string ~pretty:false
      (Json.Obj [ ("key", Json.Str key); ("value", value) ])
  in
  Mutex.lock w.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.mutex)
    (fun () ->
      output_string w.oc line;
      output_char w.oc '\n';
      flush w.oc)

let close w = close_out w.oc

type contents = {
  params : (string * Json.t) list;
  entries : (string * Json.t) list;
}

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load ?(schema = schema) ~path () =
  match read_lines path with
  | exception Sys_error msg ->
      Error
        (Error.v Error.Bad_spec ~who:"Journal.load" msg
           ~context:[ ("path", path) ])
  | [] ->
      Error
        (Error.v Error.Bad_spec ~who:"Journal.load" "empty journal (no header)"
           ~context:[ ("path", path) ])
  | header :: rest -> (
      let fail what context =
        Error
          (Error.v Error.Bad_spec ~who:"Journal.load" what
             ~context:(("path", path) :: context))
      in
      match Json.of_string header with
      | Error msg -> fail "unreadable header" [ ("detail", msg) ]
      | Ok h -> (
          match Option.bind (Json.member "schema" h) Json.to_str with
          | Some s when String.equal s schema ->
              let params =
                match h with
                | Json.Obj fields ->
                    List.filter (fun (k, _) -> not (String.equal k "schema")) fields
                | _ -> []
              in
              let n = List.length rest in
              let rec entries acc i = function
                | [] -> Ok { params; entries = List.rev acc }
                | line :: tl -> (
                    match Json.of_string line with
                    | Error msg ->
                        (* The final line is where an interrupted append
                           (or a kill -9 mid-flush) lands: drop it.  A bad
                           line with valid lines after it is corruption. *)
                        if i = n - 1 then Ok { params; entries = List.rev acc }
                        else
                          fail "corrupt entry before end of journal"
                            [ ("line", string_of_int (i + 2)); ("detail", msg) ]
                    | Ok v -> (
                        match
                          ( Option.bind (Json.member "key" v) Json.to_str,
                            Json.member "value" v )
                        with
                        | Some key, Some value ->
                            entries ((key, value) :: acc) (i + 1) tl
                        | _ ->
                            if i = n - 1 then
                              Ok { params; entries = List.rev acc }
                            else
                              fail "entry missing key/value"
                                [ ("line", string_of_int (i + 2)) ]))
              in
              entries [] 0 rest
          | Some s -> fail "unexpected schema" [ ("schema", s) ]
          | None -> fail "header has no schema field" []))
