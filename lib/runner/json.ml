(* The JSON tree moved to Wfs_util.Json (PR 3) so lib/util and lib/core
   serializers can use it; this alias keeps Wfs_runner.Json working. *)
include Wfs_util.Json
