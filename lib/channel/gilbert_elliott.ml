let steady_state_good ~pg ~pe = pg /. (pg +. pe)

let create ~rng ~pg ~pe ?start_good () =
  if pg < 0. || pg > 1. || pe < 0. || pe > 1. then
    Wfs_util.Error.invalid "Gilbert_elliott.create" "pg, pe must lie in [0,1]";
  if pg +. pe <= 0. then Wfs_util.Error.invalid "Gilbert_elliott.create" "pg + pe must be > 0";
  let p_good = steady_state_good ~pg ~pe in
  let good =
    ref
      (match start_good with
      | Some b -> b
      | None -> Wfs_util.Rng.bernoulli rng p_good)
  in
  let step _slot =
    let p_flip = if !good then pe else pg in
    if Wfs_util.Rng.bernoulli rng p_flip then good := not !good;
    if !good then Channel.Good else Channel.Bad
  in
  (* One Bernoulli per slot, slot index unused: the bulk span is the same
     loop with the closure call and state boxing peeled off. *)
  let bulk lo hi =
    let g = ref !good in
    for _ = lo to hi do
      let p_flip = if !g then pe else pg in
      if Wfs_util.Rng.bernoulli rng p_flip then g := not !g
    done;
    good := !g;
    if !g then Channel.Good else Channel.Bad
  in
  let initial = if !good then Channel.Good else Channel.Bad in
  Channel.make ~label:(Printf.sprintf "ge(pg=%g,pe=%g)" pg pe) ~initial ~bulk step

let of_burstiness ~rng ~good_prob ~sum () =
  if not (good_prob > 0. && good_prob < 1.) then
    Wfs_util.Error.invalid "Gilbert_elliott.of_burstiness" "good_prob must be in (0,1)";
  let pg = good_prob *. sum and pe = (1. -. good_prob) *. sum in
  if sum <= 0. || pg > 1. || pe > 1. then
    Wfs_util.Error.invalid "Gilbert_elliott.of_burstiness" "sum out of range";
  create ~rng ~pg ~pe ()
