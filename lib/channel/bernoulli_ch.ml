let create ~rng ~good_prob =
  if good_prob < 0. || good_prob > 1. then
    Wfs_util.Error.invalid "Bernoulli_ch.create" "good_prob must lie in [0,1]";
  let step _slot =
    if Wfs_util.Rng.bernoulli rng good_prob then Channel.Good else Channel.Bad
  in
  let bulk lo hi =
    let last = ref Channel.Good in
    for _ = lo to hi do
      last :=
        (if Wfs_util.Rng.bernoulli rng good_prob then Channel.Good
         else Channel.Bad)
    done;
    !last
  in
  Channel.make ~label:(Printf.sprintf "bernoulli(%g)" good_prob) ~bulk step
