type spec = { transition : float array array; good_prob : float array }

let validate { transition; good_prob } =
  let n = Array.length transition in
  if n = 0 then Wfs_util.Error.invalid "Markov_ch" "empty chain";
  if Array.length good_prob <> n then
    Wfs_util.Error.invalid "Markov_ch" "good_prob length mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> n then Wfs_util.Error.invalid "Markov_ch" "matrix not square";
      let sum = Array.fold_left ( +. ) 0. row in
      Array.iter
        (fun p ->
          if p < 0. || p > 1. then
            Wfs_util.Error.invalid "Markov_ch" "transition probabilities must be in [0,1]")
        row;
      if abs_float (sum -. 1.) > 1e-9 then
        Wfs_util.Error.invalid "Markov_ch" "rows must sum to 1")
    transition;
  Array.iter
    (fun p ->
      if p < 0. || p > 1. then
        Wfs_util.Error.invalid "Markov_ch" "good_prob must be in [0,1]")
    good_prob

let step_state rng row =
  let u = Wfs_util.Rng.float rng in
  let rec pick i acc =
    if i >= Array.length row - 1 then i
    else
      let acc = acc +. row.(i) in
      if u < acc then i else pick (i + 1) acc
  in
  pick 0 0.

let create ~rng ?(start = 0) spec =
  validate spec;
  let n = Array.length spec.transition in
  if start < 0 || start >= n then Wfs_util.Error.invalid "Markov_ch.create" "bad start state";
  let state = ref start in
  let step _slot =
    state := step_state rng spec.transition.(!state);
    if Wfs_util.Rng.bernoulli rng spec.good_prob.(!state) then Channel.Good
    else Channel.Bad
  in
  (* Two draws per slot (transition pick, then emission), slot-independent;
     the bulk span replays them verbatim, reporting only the last slot. *)
  let bulk lo hi =
    let last = ref Channel.Good in
    for _ = lo to hi do
      state := step_state rng spec.transition.(!state);
      last :=
        (if Wfs_util.Rng.bernoulli rng spec.good_prob.(!state) then Channel.Good
         else Channel.Bad)
    done;
    !last
  in
  Channel.make ~label:(Printf.sprintf "markov(%d states)" n) ~bulk step

let stationary spec =
  validate spec;
  let n = Array.length spec.transition in
  let pi = Array.make n (1. /. float_of_int n) in
  let next = Array.make n 0. in
  for _ = 1 to 10_000 do
    Array.fill next 0 n 0.;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        next.(j) <- next.(j) +. (pi.(i) *. spec.transition.(i).(j))
      done
    done;
    Array.blit next 0 pi 0 n
  done;
  pi

let steady_state_good spec =
  let pi = stationary spec in
  let sum = ref 0. in
  Array.iteri (fun i p -> sum := !sum +. (p *. spec.good_prob.(i))) pi;
  !sum

let of_gilbert_elliott ~pg ~pe =
  {
    transition = [| [| 1. -. pe; pe |]; [| pg; 1. -. pg |] |];
    good_prob = [| 1.; 0. |];
  }
