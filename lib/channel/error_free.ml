let create () = Channel.make_const ~label:"error-free" Channel.Good
