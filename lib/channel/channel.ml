type state = Good | Bad

let pp_state ppf = function
  | Good -> Format.pp_print_string ppf "good"
  | Bad -> Format.pp_print_string ppf "bad"

let state_is_good = function Good -> true | Bad -> false

type t = {
  label : string;
  step : int -> state;
  static : bool;
  mutable current : state option;
  mutable previous : state;
  mutable last_slot : int;
}

let make ~label ?(initial = Good) step =
  { label; step; static = false; current = None; previous = initial; last_slot = -1 }

let make_const ~label st =
  {
    label;
    step = (fun _ -> st);
    static = true;
    current = None;
    previous = st;
    last_slot = -1;
  }

let is_static t = t.static

let advance t ~slot =
  if slot <= t.last_slot then
    Wfs_util.Error.invalidf "Channel.advance" "slot %d not after %d" slot
      t.last_slot;
  (match t.current with Some s -> t.previous <- s | None -> ());
  let s = t.step slot in
  t.current <- Some s;
  t.last_slot <- slot;
  s

let state t =
  match t.current with
  | Some s -> s
  | None -> Wfs_util.Error.invalid "Channel.state" "not advanced yet"

let previous_state t = t.previous
let label t = t.label
