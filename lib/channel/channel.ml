type state = Good | Bad

let pp_state ppf = function
  | Good -> Format.pp_print_string ppf "good"
  | Bad -> Format.pp_print_string ppf "bad"

let state_is_good = function Good -> true | Bad -> false

type t = {
  label : string;
  step : int -> state;
  bulk : (int -> int -> state) option;
  static : bool;
  mutable current : state option;
  mutable previous : state;
  mutable last_slot : int;
}

let make ~label ?(initial = Good) ?bulk step =
  {
    label;
    step;
    bulk;
    static = false;
    current = None;
    previous = initial;
    last_slot = -1;
  }

let make_const ~label st =
  {
    label;
    step = (fun _ -> st);
    bulk = None;
    static = true;
    current = None;
    previous = st;
    last_slot = -1;
  }

let is_static t = t.static

let advance t ~slot =
  if slot <= t.last_slot then
    Wfs_util.Error.invalidf "Channel.advance" "slot %d not after %d" slot
      t.last_slot;
  (match t.current with Some s -> t.previous <- s | None -> ());
  let s = t.step slot in
  t.current <- Some s;
  t.last_slot <- slot;
  s

let advance_run t ~from ~slot =
  if from <= t.last_slot then
    Wfs_util.Error.invalidf "Channel.advance_run" "from %d not after %d" from
      t.last_slot;
  if slot < from then
    Wfs_util.Error.invalidf "Channel.advance_run" "slot %d before from %d" slot
      from;
  if slot = from then advance t ~slot
  else begin
    (* Slots [from .. slot-1] feed [previous]; only the last state of that
       span is observable, so a [bulk] hook may run them without the
       per-slot bookkeeping — it must consume exactly the stepwise draws. *)
    let prev =
      match t.bulk with
      | Some bulk -> bulk from (slot - 1)
      | None ->
          let s = ref t.previous in
          for i = from to slot - 1 do
            s := t.step i
          done;
          !s
    in
    t.previous <- prev;
    let s = t.step slot in
    t.current <- Some s;
    t.last_slot <- slot;
    s
  end

let state t =
  match t.current with
  | Some s -> s
  | None -> Wfs_util.Error.invalid "Channel.state" "not advanced yet"

let previous_state t = t.previous
let label t = t.label
