(** Channel-state predictors.

    The scheduler never knows the current slot's true state a priori; it
    acts on a prediction.  The paper evaluates three information models:

    - [Perfect] — an oracle returning the true current state (the "-I",
      ideal-information variants);
    - [One_step] — predict that this slot equals the previous slot's
      observed state (the "-P" variants; Section 6.1), which works well
      exactly when errors are bursty ([pg + pe < 1]);
    - [Blind] — always predict Good (Blind WRR transmits regardless);
    - [Periodic_snoop k] — like one-step but the channel is only monitored
      every [k] slots (Section 6.1's proposed power-saving extension); the
      last observed state is held between snoops.

    A predictor instance is stateful and must be dedicated to one channel. *)

type kind = Perfect | One_step | Blind | Periodic_snoop of int

type t

val create : kind -> t
(** @raise Invalid_argument for [Periodic_snoop k] with [k <= 0]. *)

val kind : t -> kind

val predict : t -> Channel.t -> slot:int -> Channel.state
(** Predicted state of [slot].  The channel must already have been advanced
    to [slot]; the predictor only reads information legitimately available
    before transmission ([Channel.previous_state], or the true state for
    [Perfect]). *)

val peek : t -> Channel.t -> slot:int -> Channel.state
(** Exactly {!predict}'s answer for [slot], but with any internal state
    change rolled back — for [Periodic_snoop], the snoop clock is left
    untouched.  Lets an observer (the {!Wfs_core.Invariant} monitor) ask
    "what would the scheduler have been told?" without perturbing the
    predictor's future behavior. *)

val label : kind -> string
(** Short suffix used in algorithm names: "I", "P", "blind", "snoopK". *)
