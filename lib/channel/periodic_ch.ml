let create ~pattern =
  let n = Array.length pattern in
  if n = 0 then Wfs_util.Error.invalid "Periodic_ch.create" "empty pattern";
  Channel.make ~label:(Printf.sprintf "periodic(%d)" n) (fun slot ->
      pattern.(slot mod n))

let bad_every ~period ~offset =
  if period <= 0 then Wfs_util.Error.invalid "Periodic_ch.bad_every" "period must be > 0";
  let offset = ((offset mod period) + period) mod period in
  Channel.make
    ~label:(Printf.sprintf "bad-every(%d@%d)" period offset)
    (fun slot -> if slot mod period = offset then Channel.Bad else Channel.Good)

let bad_burst ~start ~length =
  if length < 0 then Wfs_util.Error.invalid "Periodic_ch.bad_burst" "negative length";
  Channel.make
    ~label:(Printf.sprintf "burst(%d+%d)" start length)
    (fun slot ->
      if slot >= start && slot < start + length then Channel.Bad else Channel.Good)
