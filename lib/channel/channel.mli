(** Per-flow wireless channel abstraction.

    A channel is the error process seen by one flow: in each slot it is
    either [Good] (a transmission would succeed) or [Bad] (a transmission
    would be corrupted).  The paper's key premise is that these states are
    location-dependent — each flow owns an independent channel — and bursty.

    A channel is advanced exactly once per slot by the simulator; the state
    for the current slot can then be read repeatedly ({!state}), and the
    previous slot's state remains available for one-step prediction
    ({!previous_state}). *)

type state = Good | Bad

val pp_state : Format.formatter -> state -> unit
val state_is_good : state -> bool

type t

val make :
  label:string -> ?initial:state -> ?bulk:(int -> int -> state) -> (int -> state) -> t
(** [make ~label step] wraps [step], called once per slot with the slot
    index to produce that slot's state.  [initial] (default [Good]) seeds
    {!previous_state} for slot 0's prediction.

    [bulk lo hi], when given, must be observationally equivalent to calling
    [step] on every slot of [lo..hi] in order and returning the last state
    — identical RNG draws in the identical order, just without a closure
    call per slot.  {!advance_run} uses it to replay unobserved spans; the
    qcheck stream-equivalence suite pins each implementation to its
    [step]. *)

val make_const : label:string -> state -> t
(** [make_const ~label st] is a channel that is statically known to stay in
    state [st] forever (its seed {!previous_state} is also [st]).  Such a
    channel reports {!is_static} [true]: once advanced at least once, every
    later {!advance} is a no-op observationally, so a simulator may advance
    it a single time and skip the per-slot call afterwards. *)

val is_static : t -> bool
(** [true] only for channels built with {!make_const}. *)

val advance : t -> slot:int -> state
(** Draw the state for [slot].  Must be called with strictly increasing
    slot indices, exactly once per slot. *)

val advance_run : t -> from:int -> slot:int -> state
(** Catch a channel up across a span it was not observed in: equivalent to
    calling {!advance} at [from, from+1, ..., slot] — the same draws in the
    same order (via the [bulk] hook when the process supplies one), with
    {!state} and {!previous_state} left as the last two slots' states.
    The event-compressed simulator calls this at the first observation
    after a quiescent window, and at the end of every advance window so no
    lazily-deferred draws outlive an epoch barrier.
    @raise Invalid_argument unless [last advanced < from <= slot]. *)

val state : t -> state
(** State of the most recently advanced slot.
    @raise Invalid_argument before the first {!advance}. *)

val previous_state : t -> state
(** State of the slot before the most recently advanced one (the seed state
    before slot 0) — the information a one-step predictor works from. *)

val label : t -> string
