type kind = Perfect | One_step | Blind | Periodic_snoop of int

type t = {
  kind : kind;
  mutable last_observed : Channel.state;
  mutable last_snoop : int;
}

let create kind =
  (match kind with
  | Periodic_snoop k when k <= 0 ->
      Wfs_util.Error.invalid "Predictor.create" "snoop period must be > 0"
  | Perfect | One_step | Blind | Periodic_snoop _ -> ());
  { kind; last_observed = Channel.Good; last_snoop = min_int }

let kind t = t.kind

let predict t ch ~slot =
  match t.kind with
  | Perfect -> Channel.state ch
  | Blind -> Channel.Good
  | One_step -> Channel.previous_state ch
  | Periodic_snoop k ->
      if t.last_snoop = min_int || slot - t.last_snoop >= k then begin
        t.last_observed <- Channel.previous_state ch;
        t.last_snoop <- slot
      end;
      t.last_observed

let peek t ch ~slot =
  let observed = t.last_observed and snoop = t.last_snoop in
  let state = predict t ch ~slot in
  t.last_observed <- observed;
  t.last_snoop <- snoop;
  state

let label = function
  | Perfect -> "I"
  | One_step -> "P"
  | Blind -> "blind"
  | Periodic_snoop k -> Printf.sprintf "snoop%d" k
