type direction = Uplink | Downlink

type flow_addr = { host : int; direction : direction; index : int }

let control_addr = { host = 0; direction = Downlink; index = 0 }

let addr_equal a b =
  a.host = b.host && a.direction = b.direction && a.index = b.index

let is_control a = addr_equal a control_addr

let pp_addr ppf a =
  Format.fprintf ppf "<%d,%s,%d>" a.host
    (match a.direction with Uplink -> "up" | Downlink -> "down")
    a.index

type slot_kind = Data_slot of { flow : int } | Control_slot

let advertised_window = 3
let notification_minislots = 4
