(** Slot and frame structures of the Section-6 MAC protocol.

    Time is divided into frames of logical slots.  A {e data} slot carries a
    control sub-slot of four mini-slots (three channel-good flags from the
    flows pre-announced for the next slots, plus the base station's final
    pick), a data sub-slot and an ack sub-slot.  A {e control} slot carries
    a notification sub-slot (contention mini-slots for newly backlogged
    uplink flows) and an advertisement sub-slot.  The control "flow"
    <0, downlink, 0> is scheduled like a unit-weight, always-backlogged,
    error-free data flow; when it wins a slot the MAC emits a control slot
    instead. *)

type direction = Uplink | Downlink

type flow_addr = {
  host : int;  (** mobile host id; the base station is not a host *)
  direction : direction;
  index : int;  (** per-host flow index *)
}

val control_addr : flow_addr
(** The distinguished control flow <0, downlink, 0>. *)

val addr_equal : flow_addr -> flow_addr -> bool
(** Field-wise equality on addresses (typed; no runtime structural compare). *)

val is_control : flow_addr -> bool
val pp_addr : Format.formatter -> flow_addr -> unit

type slot_kind =
  | Data_slot of { flow : int }  (** internal flow id scheduled to transmit *)
  | Control_slot

val advertised_window : int
(** Number of upcoming slot allocations the base station piggybacks on every
    transmission (the paper uses three). *)

val notification_minislots : int
(** Mini-slots in a control slot's notification sub-slot (default 4,
    mirroring the data slot's control sub-slot). *)
