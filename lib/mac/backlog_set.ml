type t = { believed : int array }

let create ~n_flows = { believed = Array.make n_flows 0 }

let known t ~flow = t.believed.(flow) > 0
let believed_queue t ~flow = t.believed.(flow)

let report t ~flow ~queue =
  if queue < 0 then Wfs_util.Error.invalid "Backlog_set.report" "negative queue";
  t.believed.(flow) <- queue

let notify t ~flow ~queue = t.believed.(flow) <- Int.max 1 queue

let decrement t ~flow =
  if t.believed.(flow) > 0 then t.believed.(flow) <- t.believed.(flow) - 1

let known_flows t =
  let out = ref [] in
  for i = Array.length t.believed - 1 downto 0 do
    if t.believed.(i) > 0 then out := i :: !out
  done;
  !out

let cardinal t = List.length (known_flows t)
