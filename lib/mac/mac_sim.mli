(** Integrated MAC + scheduler simulation of a packet cell (Section 6).

    Extends the plain scheduler evaluation with the information constraints
    the MAC imposes:

    - {b uplink invisibility}: the base station cannot see uplink arrivals;
      packets become schedulable only when revealed by a piggybacked queue
      report (on any successful transmission from the same host) or by a
      won notification contention in a control slot;
    - {b control flow}: the distinguished flow <0, downlink, 0> competes for
      slots like a unit-weight, always-backlogged, error-free flow; when it
      wins, the slot becomes a control slot carrying the notification
      mini-slots;
    - {b acknowledgements}: every data slot's outcome is known immediately
      (the ack sub-slot), driving retransmissions and one-step prediction.

    Scheduling itself is the full WPS algorithm ({!Wfs_core.Wps}) over the
    known-backlogged set.  The three-slot advertisement pipeline is
    abstracted: WPS may swap across the whole frame, and the trace records
    every swap so its distance distribution can be compared with the
    advertised window. *)

type flow_spec = {
  addr : Frame.flow_addr;
  weight : float;
  source : Wfs_traffic.Arrival.t;
  channel : Wfs_channel.Channel.t;
  drop : Wfs_core.Params.drop_policy;
}

type contention_policy =
  | Single_shot  (** the paper's baseline: contenders transmit every time *)
  | Aloha of float
      (** p-persistent slotted ALOHA (the Section 6.2 improvement) *)

type config = {
  flows : flow_spec array;
  control_weight : float;
  wps : Wfs_core.Params.wps;
  contention : contention_policy;
  horizon : int;
  rng : Wfs_util.Rng.t;  (** drives notification contention *)
  trace : Wfs_sim.Tracelog.t option;
  slot_probe :
    (Wfs_core.Wireless_sched.instance -> Wfs_core.Simulator.slot_probe) option;
      (** per-slot telemetry hook, as in {!Wfs_core.Simulator}, but passed
          as a {e builder} (the WPS instance is internal to {!run}, exactly
          like [Wfs_runner.Exec.run]'s [probe]); the probe's [states] array
          covers the [n] data flows and [selected] may be [Some n] — the
          control-flow index — on a control slot *)
  profiler : Wfs_core.Simulator.profiler_hooks option;
      (** per-phase timing hooks, sharing {!Wfs_core.Simulator}'s phase ids
          (the contention resolution of a control slot is counted under the
          transmit phase) *)
}

val config :
  ?control_weight:float ->
  ?wps:Wfs_core.Params.wps ->
  ?contention:contention_policy ->
  ?trace:Wfs_sim.Tracelog.t ->
  ?slot_probe:
    (Wfs_core.Wireless_sched.instance -> Wfs_core.Simulator.slot_probe) ->
  ?profiler:Wfs_core.Simulator.profiler_hooks ->
  rng:Wfs_util.Rng.t ->
  horizon:int ->
  flow_spec array ->
  config
(** Defaults: control weight 1, full WPS ({!Wfs_core.Params.swapa}),
    single-shot contention.
    @raise Invalid_argument if two flows share an address, an address is the
    control address, or the horizon is negative. *)

type result = {
  metrics : Wfs_core.Metrics.t;  (** per data flow, indexed as in [flows] *)
  control_slots : int;
  data_slots : int;
  idle_slots : int;
  notifications_won : int;
  notification_collisions : int;
  piggyback_reveals : int;
      (** packets revealed by piggybacked queue reports *)
  mean_reveal_delay : float;
      (** mean slots an uplink packet stayed invisible to the scheduler *)
}

val run : config -> result

val result_to_json : result -> Wfs_util.Json.t
val result_of_json : Wfs_util.Json.t -> result option
(** Bit-exact round-trip for the sweep checkpoint journal. *)
