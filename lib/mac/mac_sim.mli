(** Integrated MAC + scheduler simulation of a packet cell (Section 6).

    Extends the plain scheduler evaluation with the information constraints
    the MAC imposes:

    - {b uplink invisibility}: the base station cannot see uplink arrivals;
      packets become schedulable only when revealed by a piggybacked queue
      report (on any successful transmission from the same host) or by a
      won notification contention in a control slot;
    - {b control flow}: the distinguished flow <0, downlink, 0> competes for
      slots like a unit-weight, always-backlogged, error-free flow; when it
      wins, the slot becomes a control slot carrying the notification
      mini-slots;
    - {b acknowledgements}: every data slot's outcome is known immediately
      (the ack sub-slot), driving retransmissions and one-step prediction.

    Scheduling itself is the full WPS algorithm ({!Wfs_core.Wps}) over the
    known-backlogged set.  The three-slot advertisement pipeline is
    abstracted: WPS may swap across the whole frame, and the trace records
    every swap so its distance distribution can be compared with the
    advertised window. *)

type flow_spec = {
  addr : Frame.flow_addr;
  weight : float;
  source : Wfs_traffic.Arrival.t;
  channel : Wfs_channel.Channel.t;
  drop : Wfs_core.Params.drop_policy;
}

type contention_policy =
  | Single_shot  (** the paper's baseline: contenders transmit every time *)
  | Aloha of float
      (** p-persistent slotted ALOHA (the Section 6.2 improvement) *)

type config = {
  flows : flow_spec array;
  control_weight : float;
  wps : Wfs_core.Params.wps;
  contention : contention_policy;
  horizon : int;
  rng : Wfs_util.Rng.t;  (** drives notification contention *)
  trace : Wfs_sim.Tracelog.t option;
}

val config :
  ?control_weight:float ->
  ?wps:Wfs_core.Params.wps ->
  ?contention:contention_policy ->
  ?trace:Wfs_sim.Tracelog.t ->
  rng:Wfs_util.Rng.t ->
  horizon:int ->
  flow_spec array ->
  config
(** Defaults: control weight 1, full WPS ({!Wfs_core.Params.swapa}),
    single-shot contention.
    @raise Invalid_argument if two flows share an address, an address is the
    control address, or the horizon is negative. *)

type result = {
  metrics : Wfs_core.Metrics.t;  (** per data flow, indexed as in [flows] *)
  control_slots : int;
  data_slots : int;
  idle_slots : int;
  notifications_won : int;
  notification_collisions : int;
  piggyback_reveals : int;
      (** packets revealed by piggybacked queue reports *)
  mean_reveal_delay : float;
      (** mean slots an uplink packet stayed invisible to the scheduler *)
}

val run : config -> result

val result_to_json : result -> Wfs_util.Json.t
val result_of_json : Wfs_util.Json.t -> result option
(** Bit-exact round-trip for the sweep checkpoint journal. *)
