module Core = Wfs_core
module Packet = Wfs_traffic.Packet
module Channel = Wfs_channel.Channel
module Predictor = Wfs_channel.Predictor

type flow_spec = {
  addr : Frame.flow_addr;
  weight : float;
  source : Wfs_traffic.Arrival.t;
  channel : Channel.t;
  drop : Core.Params.drop_policy;
}

type contention_policy = Single_shot | Aloha of float

type config = {
  flows : flow_spec array;
  control_weight : float;
  wps : Core.Params.wps;
  contention : contention_policy;
  horizon : int;
  rng : Wfs_util.Rng.t;
  trace : Wfs_sim.Tracelog.t option;
  slot_probe :
    (Core.Wireless_sched.instance -> Core.Simulator.slot_probe) option;
  profiler : Core.Simulator.profiler_hooks option;
}

let config ?(control_weight = 1.) ?wps ?(contention = Single_shot) ?trace
    ?slot_probe ?profiler ~rng ~horizon flows =
  if horizon < 0 then Wfs_util.Error.invalid "Mac_sim.config" "negative horizon";
  let wps = match wps with Some p -> p | None -> Core.Params.swapa () in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun fs ->
      if Frame.is_control fs.addr then
        Wfs_util.Error.invalid "Mac_sim.config" "the control address is reserved";
      if Hashtbl.mem seen fs.addr then
        Wfs_util.Error.invalid "Mac_sim.config" "duplicate flow address";
      Hashtbl.replace seen fs.addr ())
    flows;
  (match contention with
  | Aloha p when not (p > 0. && p <= 1.) ->
      Wfs_util.Error.invalid "Mac_sim.config" "ALOHA persistence must be in (0,1]"
  | Aloha _ | Single_shot -> ());
  { flows; control_weight; wps; contention; horizon; rng; trace; slot_probe; profiler }

type result = {
  metrics : Core.Metrics.t;
  control_slots : int;
  data_slots : int;
  idle_slots : int;
  notifications_won : int;
  notification_collisions : int;
  piggyback_reveals : int;
  mean_reveal_delay : float;
}

(* Per-flow MAC-side state: packets the base station has not been told about
   yet (uplink only — downlink queues live at the base station). *)
type mac_flow = {
  spec : flow_spec;
  unknown : Packet.t Queue.t;
  predictor : Predictor.t;
}

let is_uplink mf = mf.spec.addr.Frame.direction = Frame.Uplink

let run cfg =
  let n = Array.length cfg.flows in
  let control = n in
  (* WPS sees n data flows plus the always-backlogged control flow. *)
  let params_flows =
    Array.init (n + 1) (fun id ->
        if id = control then
          Core.Params.flow ~id ~weight:cfg.control_weight ()
        else
          Core.Params.flow ~id ~weight:cfg.flows.(id).weight
            ~drop:cfg.flows.(id).drop ())
  in
  let wps = Core.Wps.create ~params:cfg.wps ?trace:cfg.trace params_flows in
  let sched = Core.Wps.instance wps in
  (* As in Exec.run, the probe arrives as a builder: the WPS instance is
     internal, so the caller says how to probe and this function applies it
     once the scheduler exists. *)
  let slot_probe = Option.map (fun build -> build sched) cfg.slot_probe in
  let mac =
    Array.map
      (fun spec ->
        { spec; unknown = Queue.create (); predictor = Predictor.create One_step })
      cfg.flows
  in
  let metrics = Core.Metrics.create ~n_flows:n () in
  let reveal_delay = Wfs_util.Stats.Summary.create () in
  let control_slots = ref 0 in
  let data_slots = ref 0 in
  let idle_slots = ref 0 in
  let notifications_won = ref 0 in
  let notification_collisions = ref 0 in
  let piggyback_reveals = ref 0 in
  let seqs = Array.make n 0 in
  (* Keep the control flow's queue at exactly one dummy packet. *)
  let control_seq = ref 0 in
  let feed_control ~slot =
    if sched.queue_length control = 0 then begin
      let pkt = Packet.make ~flow:control ~seq:!control_seq ~arrival:slot () in
      incr control_seq;
      sched.enqueue ~slot pkt
    end
  in
  let reveal ~slot ~via_piggyback flow =
    let mf = mac.(flow) in
    let continue = ref true in
    while !continue do
      match Queue.take_opt mf.unknown with
      | None -> continue := false
      | Some pkt ->
          Wfs_util.Stats.Summary.add reveal_delay
            (float_of_int (slot - pkt.Packet.arrival));
          if via_piggyback then incr piggyback_reveals;
          sched.enqueue ~slot pkt
    done
  in
  (* Piggybacking: a successful transmission from host [h] carries current
     queue sizes for every flow of that host. *)
  let piggyback_host ~slot host =
    Array.iteri
      (fun i mf ->
        if is_uplink mf && mf.spec.addr.Frame.host = host then
          reveal ~slot ~via_piggyback:true i)
      mac
  in
  let known flow = sched.queue_length flow > 0 in
  let host_has_known_flow host =
    let found = ref false in
    Array.iteri
      (fun i mf ->
        if
          (not !found) && is_uplink mf
          && mf.spec.addr.Frame.host = host
          && known i
        then found := true)
      mac;
    !found
  in
  let delay_bound_of = function
    | Core.Params.Delay_bound d | Core.Params.Retx_or_delay (_, d) -> Some d
    | Core.Params.No_drop | Core.Params.Retx_limit _ -> None
  in
  let retx_limit_of = function
    | Core.Params.Retx_limit k | Core.Params.Retx_or_delay (k, _) -> Some k
    | Core.Params.No_drop | Core.Params.Delay_bound _ -> None
  in
  (* Observability hooks (same contract as {!Core.Simulator}): one branch
     each when disabled. *)
  let phase_begin p =
    match cfg.profiler with None -> () | Some h -> h.Core.Simulator.phase_begin p
  in
  let phase_end p =
    match cfg.profiler with None -> () | Some h -> h.Core.Simulator.phase_end p
  in
  for slot = 0 to cfg.horizon - 1 do
    feed_control ~slot;
    (* 1. Arrivals: downlink packets are immediately known; uplink packets
       start invisible. *)
    phase_begin Core.Simulator.phase_arrivals;
    Array.iteri
      (fun i mf ->
        let count = Wfs_traffic.Arrival.arrivals mf.spec.source ~slot in
        for _ = 1 to count do
          let pkt = Packet.make ~flow:i ~seq:seqs.(i) ~arrival:slot () in
          seqs.(i) <- seqs.(i) + 1;
          Core.Metrics.on_arrival metrics ~flow:i;
          if is_uplink mf then Queue.push pkt mf.unknown
          else sched.enqueue ~slot pkt
        done)
      mac;
    phase_end Core.Simulator.phase_arrivals;
    (* 2–3. Channels and one-step predictions (the control flow is always
       good). *)
    phase_begin Core.Simulator.phase_predict;
    let states =
      Array.map (fun mf -> Channel.advance mf.spec.channel ~slot) mac
    in
    let predicted_good i =
      i = control
      || Channel.state_is_good
           (Predictor.predict mac.(i).predictor mac.(i).spec.channel ~slot)
    in
    phase_end Core.Simulator.phase_predict;
    (* 4. Delay-bound drops apply to known and still-invisible packets
       alike (the host drops its own stale packets). *)
    phase_begin Core.Simulator.phase_drops;
    Array.iteri
      (fun i mf ->
        match delay_bound_of mf.spec.drop with
        | None -> ()
        | Some bound ->
            List.iter
              (fun (_pkt : Packet.t) -> Core.Metrics.on_drop metrics ~flow:i)
              (sched.drop_expired ~flow:i ~now:slot ~bound);
            let continue = ref true in
            while !continue do
              match Queue.peek_opt mf.unknown with
              | Some pkt when Packet.age pkt ~now:slot > bound ->
                  ignore (Queue.take_opt mf.unknown);
                  Core.Metrics.on_drop metrics ~flow:i
              | Some _ | None -> continue := false
            done)
      mac;
    phase_end Core.Simulator.phase_drops;
    (* 5. Scheduling decision. *)
    phase_begin Core.Simulator.phase_select;
    let selected = sched.select ~slot ~predicted_good in
    phase_end Core.Simulator.phase_select;
    phase_begin Core.Simulator.phase_transmit;
    (match selected with
    | None ->
        incr idle_slots;
        Core.Metrics.on_idle_slot metrics
    | Some f when f = control ->
        (* Control slot: notification contention for unknown uplink flows
           whose host has nothing to piggyback on. *)
        incr control_slots;
        sched.complete ~flow:control;
        let contenders =
          let out = ref [] in
          Array.iteri
            (fun i mf ->
              if
                is_uplink mf
                && (not (Queue.is_empty mf.unknown))
                && (not (known i))
                && not (host_has_known_flow mf.spec.addr.Frame.host)
              then out := i :: !out)
            mac;
          List.rev !out
        in
        let outcome =
          match cfg.contention with
          | Single_shot ->
              Contention.contend ~rng:cfg.rng
                ~minislots:Frame.notification_minislots ~contenders
          | Aloha persistence ->
              Contention.contend_aloha ~rng:cfg.rng
                ~minislots:Frame.notification_minislots ~persistence
                ~contenders
        in
        notifications_won := !notifications_won + List.length outcome.winners;
        notification_collisions :=
          !notification_collisions + List.length outcome.collided;
        List.iter (reveal ~slot ~via_piggyback:false) outcome.winners
    | Some f -> (
        incr data_slots;
        Core.Metrics.on_busy_slot metrics;
        match sched.head f with
        | None -> Wfs_util.Error.invalid "Mac_sim.run" "selected flow has empty queue"
        | Some pkt ->
            if Channel.state_is_good states.(f) then begin
              sched.complete ~flow:f;
              Core.Metrics.on_deliver metrics ~flow:f
                ~delay:(slot - pkt.Packet.arrival);
              (* The ack/data exchange carries piggybacked queue sizes for
                 the transmitting host (uplink) — and the base station's own
                 transmission lets every host monitor the channel. *)
              if is_uplink mac.(f) then
                piggyback_host ~slot mac.(f).spec.addr.Frame.host
            end
            else begin
              pkt.Packet.attempts <- pkt.Packet.attempts + 1;
              Core.Metrics.on_failed_attempt metrics ~flow:f;
              sched.fail ~flow:f;
              match retx_limit_of mac.(f).spec.drop with
              | Some limit when pkt.Packet.attempts > limit ->
                  sched.drop_head ~flow:f;
                  Core.Metrics.on_drop metrics ~flow:f
              | Some _ | None -> ()
            end));
    phase_end Core.Simulator.phase_transmit;
    phase_begin Core.Simulator.phase_slot_end;
    sched.on_slot_end ~slot;
    (* The probe sees the data flows' true channel states; [selected] may be
       [Some n] (the control-flow index) on a control slot. *)
    (match slot_probe with
    | None -> ()
    | Some probe -> probe ~slot ~selected ~states);
    phase_end Core.Simulator.phase_slot_end
  done;
  {
    metrics;
    control_slots = !control_slots;
    data_slots = !data_slots;
    idle_slots = !idle_slots;
    notifications_won = !notifications_won;
    notification_collisions = !notification_collisions;
    piggyback_reveals = !piggyback_reveals;
    mean_reveal_delay = Wfs_util.Stats.Summary.mean reveal_delay;
  }

module Json = Wfs_util.Json

let result_to_json r =
  Json.Obj
    [
      ("metrics", Core.Metrics.to_json r.metrics);
      ("control_slots", Json.Int r.control_slots);
      ("data_slots", Json.Int r.data_slots);
      ("idle_slots", Json.Int r.idle_slots);
      ("notifications_won", Json.Int r.notifications_won);
      ("notification_collisions", Json.Int r.notification_collisions);
      ("piggyback_reveals", Json.Int r.piggyback_reveals);
      ("mean_reveal_delay", Json.of_float_ext r.mean_reveal_delay);
    ]

let result_of_json v =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Json.member k v) Json.to_int in
  let* metrics = Option.bind (Json.member "metrics" v) Core.Metrics.of_json in
  let* control_slots = int "control_slots" in
  let* data_slots = int "data_slots" in
  let* idle_slots = int "idle_slots" in
  let* notifications_won = int "notifications_won" in
  let* notification_collisions = int "notification_collisions" in
  let* piggyback_reveals = int "piggyback_reveals" in
  let* mean_reveal_delay =
    Option.bind (Json.member "mean_reveal_delay" v) Json.to_float_ext
  in
  Some
    {
      metrics;
      control_slots;
      data_slots;
      idle_slots;
      notifications_won;
      notification_collisions;
      piggyback_reveals;
      mean_reveal_delay;
    }
