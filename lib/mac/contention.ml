type outcome = { winners : int list; collided : int list; deferred : int list }

let resolve picks =
  match picks with
  | [] -> ([], [])
  | _ ->
      let max_slot = List.fold_left (fun acc (_, m) -> Int.max acc m) 0 picks in
      let count = Array.make (max_slot + 1) 0 in
      List.iter (fun (_, m) -> count.(m) <- count.(m) + 1) picks;
      let winners, collided = List.partition (fun (_, m) -> count.(m) = 1) picks in
      (List.map fst winners, List.map fst collided)

let contend ~rng ~minislots ~contenders =
  if minislots <= 0 then Wfs_util.Error.invalid "Contention.contend" "minislots must be > 0";
  let picks = List.map (fun c -> (c, Wfs_util.Rng.int rng minislots)) contenders in
  let winners, collided = resolve picks in
  { winners; collided; deferred = [] }

let contend_aloha ~rng ~minislots ~persistence ~contenders =
  if minislots <= 0 then Wfs_util.Error.invalid "Contention.contend_aloha" "minislots must be > 0";
  if not (persistence > 0. && persistence <= 1.) then
    Wfs_util.Error.invalid "Contention.contend_aloha" "persistence must be in (0,1]";
  let transmitters, deferred =
    List.partition (fun _ -> Wfs_util.Rng.bernoulli rng persistence) contenders
  in
  let picks =
    List.map (fun c -> (c, Wfs_util.Rng.int rng minislots)) transmitters
  in
  let winners, collided = resolve picks in
  { winners; collided; deferred }

let success_probability ~minislots ~contenders =
  if contenders <= 0 then 0.
  else
    (1. -. (1. /. float_of_int minislots)) ** float_of_int (contenders - 1)

let aloha_success_probability ~minislots ~persistence ~contenders =
  if contenders <= 0 then 0.
  else
    persistence
    *. ((1. -. (persistence /. float_of_int minislots))
       ** float_of_int (contenders - 1))
