(** Text-file scenario descriptions.

    Lets a cell be described in a small line-oriented format instead of
    code, so workloads can be versioned and shared:

    {v
    # lines starting with # are comments
    horizon 100000
    seed 42
    predictor one-step          # one-step | perfect | blind | snoop:K
    flow weight=1 drop=retx:2  source=mmpp:0.2    channel=ge:0.07,0.03
    flow weight=1              source=cbr:2       channel=good
    flow weight=2 drop=delay:100 source=poisson:0.25 channel=bernoulli:0.7
    v}

    Flows get ids 0, 1, ... in file order.  Optional per-flow [buffer=N]
    bounds the queue, and [host=N dir=up|down] place the flow for MAC
    simulations ({!Wfs_mac.Mac_sim} via [bin/wfs_mac]).  Sources:
    [cbr:INTERARRIVAL], [poisson:RATE], [mmpp:MEANRATE] (the paper's
    modulating chain), [onoff:P_ON_OFF,P_OFF_ON].  Channels: [good],
    [ge:PG,PE] (Gilbert–Elliott), [bernoulli:GOODPROB],
    [badburst:START,LEN].  Drop policies: [none] (default), [retx:K],
    [delay:D], [retx-delay:K,D].

    Randomness: every stochastic source/channel receives its own stream
    split from the scenario seed, in file order, so a file plus a seed is a
    reproducible experiment. *)

type direction = Up | Down

type t = {
  setups : Simulator.flow_setup array;
  addrs : (int * direction) array;
      (** per-flow (host, direction) for MAC simulations; defaults to
          [(flow id + 1, Down)] when a flow line has no [host=]/[dir=] *)
  horizon : int;
  predictor : Wfs_channel.Predictor.kind;
  seed : int;
}

exception Parse_error of { line : int; message : string }

val parse : ?seed:int -> ?horizon:int -> string -> t
(** Parse scenario text.  Defaults: horizon 100000, seed 42, predictor
    one-step.  A [seed N] directive must precede the first [flow] line.
    The optional [seed]/[horizon] arguments override the file's directives
    (used by run specs, which carry their own seed and horizon).
    @raise Parse_error with a line number on malformed input. *)

val load : ?seed:int -> ?horizon:int -> string -> t
(** [load path] reads and parses a file, with the same overrides as
    {!parse}.
    @raise Parse_error or [Sys_error]. *)

val flows : t -> Params.flow array

val run : ?scheduler:(Params.flow array -> Wireless_sched.instance) -> t -> Metrics.t
(** Run the scenario; default scheduler is full WPS
    ([Wps.create ~params:(Params.swapa ())]). *)
