type slot = { mutable start : float; mutable finish : float }

module Deque = Wfs_util.Deque

(* Ring-buffer deque backing: O(1) head/pop at both ends and an
   O(kept prefix + deleted) middle-range deletion for [trim_lagging] —
   the two-list representation this replaces paid a full normalisation
   (list append + reverse) on back access and on every trim. *)
type t = {
  weight : float;
  dq : slot Deque.t;
  mutable last_finish : float;
}

(* Never returned; fills vacated ring cells so popped slots don't linger. *)
let dummy = { start = 0.; finish = 0. }

let create ~weight =
  if weight <= 0. then Wfs_util.Error.invalid "Slot_queue.create" "weight must be > 0";
  { weight; dq = Deque.create ~dummy (); last_finish = 0. }

let length t = Deque.length t.dq
let is_empty t = Deque.is_empty t.dq

let add t ~v =
  let start = Float.max v t.last_finish in
  let finish = start +. (1. /. t.weight) in
  let slot = { start; finish } in
  t.last_finish <- finish;
  Deque.push_back t.dq slot;
  slot

let head t = Deque.peek_front t.dq
let pop_front t = Deque.pop_front t.dq
let pop_back t = Deque.pop_back t.dq

(* Tags are non-decreasing, so the lagging slots form a prefix. *)
let lagging_count t ~v =
  let n = Deque.length t.dq in
  let i = ref 0 in
  while !i < n && (Deque.get t.dq !i).finish < v do
    incr i
  done;
  !i

let trim_lagging t ~v ~max_lagging =
  if max_lagging < 0 then Wfs_util.Error.invalid "Slot_queue.trim_lagging" "negative bound";
  let lagging = lagging_count t ~v in
  if lagging <= max_lagging then 0
  else begin
    (* Keep the first [max_lagging] lagging slots, drop the rest of the
       lagging prefix (Section 4.1 step 4a). *)
    let deleted = lagging - max_lagging in
    Deque.remove_range t.dq ~pos:max_lagging ~len:deleted;
    deleted
  end

let clamp_lead t ~v ~max_lead ~weight =
  match head t with
  | None -> false
  | Some s ->
      let limit = v +. (max_lead /. weight) in
      if s.start > limit then begin
        s.start <- limit;
        s.finish <- limit +. (1. /. weight);
        (* If this is also the most recent slot, future tags chain from the
           clamped finish. *)
        if length t = 1 then t.last_finish <- s.finish;
        true
      end
      else false

let to_list t = Deque.to_list t.dq
