type slot = { mutable start : float; mutable finish : float }

(* Two-list queue with O(1) amortised front/back access; the middle-range
   deletion in [trim_lagging] normalises to one list first (queues are small
   in practice — bounded by the lag cap plus in-flight backlog). *)
type t = {
  weight : float;
  mutable front : slot list;
  mutable back : slot list;  (* reversed *)
  mutable len : int;
  mutable last_finish : float;
}

let create ~weight =
  if weight <= 0. then Wfs_util.Error.invalid "Slot_queue.create" "weight must be > 0";
  { weight; front = []; back = []; len = 0; last_finish = 0. }

let length t = t.len
let is_empty t = t.len = 0

let normalize t =
  if not (List.is_empty t.back) then begin
    t.front <- t.front @ List.rev t.back;
    t.back <- []
  end

let add t ~v =
  let start = Float.max v t.last_finish in
  let finish = start +. (1. /. t.weight) in
  let slot = { start; finish } in
  t.last_finish <- finish;
  t.back <- slot :: t.back;
  t.len <- t.len + 1;
  slot

let head t =
  match t.front with
  | s :: _ -> Some s
  | [] -> (
      normalize t;
      match t.front with s :: _ -> Some s | [] -> None)

let pop_front t =
  normalize t;
  match t.front with
  | [] -> None
  | s :: rest ->
      t.front <- rest;
      t.len <- t.len - 1;
      Some s

let pop_back t =
  match t.back with
  | s :: rest ->
      t.back <- rest;
      t.len <- t.len - 1;
      Some s
  | [] -> (
      (* Move the front into back-order to access the last element. *)
      match List.rev t.front with
      | [] -> None
      | s :: rest ->
          t.back <- rest;
          t.front <- [];
          t.len <- t.len - 1;
          Some s)

(* Tags are non-decreasing, so the lagging slots form a prefix.  Scan the
   front list and only pay for a normalisation when the entire front is
   lagging (i.e. the prefix may continue into the back list) — keeping the
   per-slot readjustment O(lagging prefix) rather than O(queue). *)
let lagging_count t ~v =
  let rec count acc = function
    | s :: rest -> if s.finish < v then count (acc + 1) rest else Some acc
    | [] -> None
  in
  match count 0 t.front with
  | Some n -> n
  | None ->
      if List.is_empty t.back then List.length t.front
      else begin
        normalize t;
        match count 0 t.front with Some n -> n | None -> t.len
      end

let trim_lagging t ~v ~max_lagging =
  if max_lagging < 0 then Wfs_util.Error.invalid "Slot_queue.trim_lagging" "negative bound";
  let lagging = lagging_count t ~v in
  if lagging <= max_lagging then 0
  else begin
    normalize t;
    let deleted = lagging - max_lagging in
    (* Keep the first [max_lagging] slots, drop the next [deleted], keep
       the rest. *)
    let rec rebuild i acc = function
      | [] -> List.rev acc
      | s :: tl ->
          if i < max_lagging then rebuild (i + 1) (s :: acc) tl
          else if i < lagging then rebuild (i + 1) acc tl
          else List.rev_append acc (s :: tl)
    in
    t.front <- rebuild 0 [] t.front;
    t.len <- t.len - deleted;
    deleted
  end

let clamp_lead t ~v ~max_lead ~weight =
  match head t with
  | None -> false
  | Some s ->
      let limit = v +. (max_lead /. weight) in
      if s.start > limit then begin
        s.start <- limit;
        s.finish <- limit +. (1. /. weight);
        (* If this is also the most recent slot, future tags chain from the
           clamped finish. *)
        if t.len = 1 then t.last_finish <- s.finish;
        true
      end
      else false

let to_list t =
  normalize t;
  t.front
