(** Wireless Packet Scheduling — the paper's practical algorithm
    (Section 7) and its ablated variants (Section 8).

    WPS is a weighted round robin over the known backlogged flows with four
    mechanisms layered on top, each switchable through {!Params.wps}:

    - {b spreading}: each frame's slots are laid out in WF²Q order of the
      flows' effective weights ({!Spreading});
    - {b intra-frame swapping}: a flow whose slot is (predicted) in error
      exchanges positions with a later in-frame flow that has a good
      channel;
    - {b credit/debit adjustment}: when swapping fails, the slot is handed
      to the next good backlogged flow on a marker ring and the accounts
      are settled through per-frame attempt counts ({!Credit});
    - {b prediction}: the channel state used for the above is supplied by
      the caller (perfect, one-step or blind — see
      {!Wfs_channel.Predictor}).

    Variant map (Table 1's row labels):
    Blind WRR = {!Params.blind_wrr}, WRR-I/P = {!Params.wrr},
    NoSwap = {!Params.noswap}, SwapW = {!Params.swapw},
    SwapA = full WPS = {!Params.swapa}. *)

type t

val create :
  ?params:Params.wps ->
  ?limits:(int * int) array ->
  ?naive:bool ->
  ?trace:Wfs_sim.Tracelog.t ->
  Params.flow array ->
  t
(** Flow ids must be [0..n-1]; weights are rounded to integers ≥ 1 for
    frame allocation.  Default params: {!Params.swapa}[ ()].
    [limits] overrides the global (credit, debit) caps per flow — the knob
    Example 6 sweeps to trade one flow's loss against the others'.
    [naive] (default [false], for differential testing only) rebuilds
    frames with the original dense whole-flow-array scans instead of the
    backlogged-flow index; both modes are byte-identical by construction
    and pinned to each other by the qcheck suite. *)

val instance : t -> Wireless_sched.instance

val credit : t -> flow:int -> int
(** Current credit balance (0 when credits are disabled). *)

val effective_weight : t -> flow:int -> int
(** Effective weight in the current frame (0 when not in the frame). *)

val frame_snapshot : t -> int array
(** Remaining slot allocation of the current frame, for tests; [-1] marks
    deleted slots. *)

val frame_position : t -> int
