type entry = {
  name : string;
  aliases : string list;
  predictor : Wfs_channel.Predictor.kind;
  make :
    ?credit_limit:int ->
    ?debit_limit:int ->
    ?limits:(int * int) array ->
    Params.flow array ->
    Wireless_sched.instance;
}

let keys_of e = List.map String.lowercase_ascii (e.name :: e.aliases)

(* Registration order is the presentation order (paper tables first), so a
   plain list, scanned linearly, is the right structure — it also keeps
   iteration deterministic, which a Hashtbl would not. *)
let entries : entry list ref = ref []

let find name =
  let key = String.lowercase_ascii name in
  List.find_opt (fun e -> List.exists (String.equal key) (keys_of e)) !entries

let mem name = Option.is_some (find name)

let names () = List.map (fun e -> e.name) !entries

let register e =
  List.iter
    (fun key ->
      if List.exists (fun e' -> List.exists (String.equal key) (keys_of e')) !entries
      then
        Wfs_util.Error.invalidf "Registry.register" "%S is already registered"
          key)
    (keys_of e);
  entries := !entries @ [ e ]

let get name =
  match find name with
  | Some e -> e
  | None ->
      Wfs_util.Error.invalidf "Registry.get" "unknown scheduler %S (known: %s)"
        name
        (String.concat ", " (names ()))

(* --- built-ins, from the Presets variants --- *)

let of_preset ?(aliases = []) alg info =
  {
    name = Presets.algorithm_name alg info;
    aliases;
    predictor = Presets.predictor alg info;
    make =
      (fun ?credit_limit ?debit_limit ?limits flows ->
        Presets.scheduler ?credit_limit ?debit_limit ?limits alg flows);
  }

let table1_names =
  List.map
    (fun (alg, info) -> Presets.algorithm_name alg info)
    Presets.table1_algorithms

let table1 () = List.map get table1_names
let table1_extended () = table1 () @ [ get "IWFQ-I"; get "IWFQ-P" ]

let () =
  (* "WPS" is the paper's name for the full algorithm: SwapA running on
     one-step prediction.  The bare "IWFQ" / "CIF-Q" aliases resolve to the
     predicted variants for the same reason. *)
  let builtin_aliases name =
    match name with "SwapA-P" -> [ "WPS" ] | _ -> []
  in
  List.iter register
    (List.map
       (fun (alg, info) ->
         let e = of_preset alg info in
         { e with aliases = builtin_aliases e.name })
       Presets.table1_algorithms);
  List.iter register
    [
      of_preset Presets.Iwfq_alg Presets.Ideal;
      of_preset ~aliases:[ "IWFQ" ] Presets.Iwfq_alg Presets.Predicted;
      of_preset Presets.Cifq_alg Presets.Ideal;
      of_preset ~aliases:[ "CIF-Q"; "CIFQ" ] Presets.Cifq_alg Presets.Predicted;
      of_preset ~aliases:[ "CSDPS-P" ] Presets.Csdps_alg Presets.Predicted;
    ]
