type entry = {
  name : string;
  aliases : string list;
  predictor : Wfs_channel.Predictor.kind;
  make :
    ?credit_limit:int ->
    ?debit_limit:int ->
    ?limits:(int * int) array ->
    Params.flow array ->
    Wireless_sched.instance;
}

include (
  Wfs_util.Registry_intf.Make (struct
    type t = entry

    let name e = e.name
    let aliases e = e.aliases
    let kind = "scheduler"
  end) :
    Wfs_util.Registry_intf.S with type entry := entry)

(* --- built-ins, from the Presets variants --- *)

let of_preset ?(aliases = []) alg info =
  {
    name = Presets.algorithm_name alg info;
    aliases;
    predictor = Presets.predictor alg info;
    make =
      (fun ?credit_limit ?debit_limit ?limits flows ->
        Presets.scheduler ?credit_limit ?debit_limit ?limits alg flows);
  }

let table1_names =
  List.map
    (fun (alg, info) -> Presets.algorithm_name alg info)
    Presets.table1_algorithms

let table1 () = List.map get table1_names
let table1_extended () = table1 () @ [ get "IWFQ-I"; get "IWFQ-P" ]

let () =
  (* "WPS" is the paper's name for the full algorithm: SwapA running on
     one-step prediction.  The bare "IWFQ" / "CIF-Q" aliases resolve to the
     predicted variants for the same reason. *)
  let builtin_aliases name =
    match name with "SwapA-P" -> [ "WPS" ] | _ -> []
  in
  List.iter register
    (List.map
       (fun (alg, info) ->
         let e = of_preset alg info in
         { e with aliases = builtin_aliases e.name })
       Presets.table1_algorithms);
  List.iter register
    [
      of_preset Presets.Iwfq_alg Presets.Ideal;
      of_preset ~aliases:[ "IWFQ" ] Presets.Iwfq_alg Presets.Predicted;
      of_preset Presets.Cifq_alg Presets.Ideal;
      of_preset ~aliases:[ "CIF-Q"; "CIFQ" ] Presets.Cifq_alg Presets.Predicted;
      of_preset ~aliases:[ "CSDPS-P" ] Presets.Csdps_alg Presets.Predicted;
    ]
