module Packet = Wfs_traffic.Packet
module Flow_heap = Wfs_util.Flow_heap
module Flow_set = Wfs_util.Flow_set

type flow_state = {
  cfg : Params.flow;
  packets : Packet.t Queue.t;
  mutable v : float;  (* reference-system virtual time *)
  mutable lag : int;  (* reference service − real service, packets *)
  mutable selected_leading : int;  (* times picked by the reference while leading *)
  mutable relinquished : int;  (* of those, times it gave the slot away *)
}

(* [heap] keys the backlogged (= active) flows by their reference virtual
   time, lowest flow id on ties — the flow the naive ascending-id scan
   picks.  [naive = true] (differential testing) selects with the original
   O(n_flows) scans instead; both paths perform identical mutations. *)
type t = {
  alpha : float;
  flows : flow_state array;
  backlog : Flow_set.t;
  heap : Flow_heap.t;
  naive : bool;
  mutable pred : int -> bool;  (* current slot's predicate, during select *)
  mutable skip : int;  (* reference pick to exclude from redistribution *)
  mutable accept_taker : int -> bool;  (* preallocated closures *)
  mutable accept_other : int -> bool;
}

let no_pred (_ : int) = false

let create ?(alpha = 0.9) ?(naive = false) flows =
  if not (alpha >= 0. && alpha <= 1.) then
    Wfs_util.Error.invalid "Cifq.create" "alpha must be in [0,1]";
  Array.iteri
    (fun i (f : Params.flow) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Cifq.create")
    flows;
  let n = Array.length flows in
  let t =
    {
      alpha;
      flows =
        Array.map
          (fun cfg ->
            {
              cfg;
              packets = Queue.create ();
              v = 0.;
              lag = 0;
              selected_leading = 0;
              relinquished = 0;
            })
          flows;
      backlog = Flow_set.create ~n;
      heap = Flow_heap.create ~n;
      naive;
      pred = no_pred;
      skip = -1;
      accept_taker = no_pred;
      accept_other = no_pred;
    }
  in
  (* Heap membership already implies backlogged, so [can_transmit] reduces
     to the predicted-channel test inside these accepts. *)
  t.accept_taker <-
    (fun j -> j <> t.skip && t.flows.(j).lag > 0 && t.pred j);
  t.accept_other <- (fun j -> j <> t.skip && t.pred j);
  t

let backlogged fs = not (Queue.is_empty fs.packets)

(* An "active" flow for the reference system: one with real work.  (The
   full CIF-Q also keeps flows active while they are owed/owing service;
   with bounded runs and persistent flows this simplification only affects
   flows that drain completely, whose lag CIF-Q redistributes — we simply
   freeze it.) *)
let active fs = backlogged fs

let min_v_flow t ~pred =
  let best = ref None in
  Array.iteri
    (fun i fs ->
      if pred i fs then
        match !best with
        | Some (_, bv) when bv <= fs.v -> ()
        | Some _ | None -> best := Some (i, fs.v))
    t.flows;
  Option.map fst !best

(* Should a leading flow give this reference slot away?  Deterministic
   α-accounting, called after [selected_leading] was incremented for the
   current selection: relinquish whenever doing so still leaves at least an
   α fraction of its leading selections retained. *)
let must_relinquish t fs =
  float_of_int (fs.selected_leading - fs.relinquished - 1)
  >= (t.alpha *. float_of_int fs.selected_leading) -. Params.eps_tag

(* Reference charge for the picked flow.  The heap tag must follow the new
   virtual time immediately: the taker/redistribution scans below compare
   against the charged value. *)
let charge t i fi =
  fi.v <- fi.v +. (1. /. fi.cfg.Params.weight);
  fi.lag <- fi.lag + 1;
  if backlogged fi then Flow_heap.set t.heap ~flow:i ~tag:fi.v

(* Steps 2-4 of the per-slot rule, shared by the naive and indexed paths;
   [taker] and [other] find the redistribution candidates (excluding [i])
   among backlogged flows with a (predicted) good channel — lagging flows
   first, then anyone. *)
let finish_select t i ~can_transmit_i ~taker ~other =
  let fi = t.flows.(i) in
  let keeps =
    if not can_transmit_i then false
    else if fi.lag - 1 < 0 then begin
      (* Leading (lag was negative before the charge).  The α account only
         counts selections where relinquishing was possible — a lagging
         flow stood ready to take the slot — so uncontested slots never
         build up a give-away debt. *)
      let taker_exists = Option.is_some (taker ()) in
      if taker_exists then begin
        fi.selected_leading <- fi.selected_leading + 1;
        if must_relinquish t fi then begin
          fi.relinquished <- fi.relinquished + 1;
          false
        end
        else true
      end
      else true
    end
    else true
  in
  let transmitter =
    if keeps then Some i
    else
      match taker () with
      | Some j -> Some j
      | None -> (
          match other () with
          | Some j -> Some j
          | None -> if can_transmit_i then Some i else None)
  in
  (match transmitter with
  | Some k -> t.flows.(k).lag <- t.flows.(k).lag - 1
  | None -> ());
  transmitter

(* Reference path: the original O(n_flows) scans, kept as the executable
   specification the heap path is pinned to by the differential tests. *)
let select_naive t ~predicted_good =
  match min_v_flow t ~pred:(fun _ fs -> active fs) with
  | None -> None
  | Some i ->
      let fi = t.flows.(i) in
      charge t i fi;
      let can_transmit j = backlogged t.flows.(j) && predicted_good j in
      finish_select t i ~can_transmit_i:(can_transmit i)
        ~taker:(fun () ->
          min_v_flow t ~pred:(fun j fs -> j <> i && fs.lag > 0 && can_transmit j))
        ~other:(fun () ->
          min_v_flow t ~pred:(fun j _ -> j <> i && can_transmit j))

let opt_taker t () =
  let j = Flow_heap.min_accept t.heap ~accept:t.accept_taker in
  if j < 0 then None else Some j

let opt_other t () =
  let j = Flow_heap.min_accept t.heap ~accept:t.accept_other in
  if j < 0 then None else Some j

let[@hot] select t ~slot:_ ~predicted_good =
  if t.naive then select_naive t ~predicted_good
  else begin
    let i = Flow_heap.min t.heap in
    if i < 0 then None
    else begin
      let fi = t.flows.(i) in
      charge t i fi;
      t.pred <- predicted_good;
      t.skip <- i;
      let can_transmit_i = backlogged fi && predicted_good i in
      let transmitter =
        finish_select t i ~can_transmit_i ~taker:(opt_taker t)
          ~other:(opt_other t)
      in
      t.pred <- no_pred;
      t.skip <- -1;
      transmitter
    end
  end

(* Keep the backlog index and heap in step with queue emptiness; a flow's
   virtual time is frozen while it is absent and re-indexed on return. *)
let index_if_became_backlogged t flow =
  let fs = t.flows.(flow) in
  if Queue.length fs.packets = 1 then begin
    Flow_set.add t.backlog flow;
    Flow_heap.set t.heap ~flow ~tag:fs.v
  end

let deindex_if_empty t flow =
  if not (backlogged t.flows.(flow)) then begin
    Flow_set.remove t.backlog flow;
    Flow_heap.remove t.heap ~flow
  end

let enqueue t ~slot:_ (pkt : Packet.t) =
  Queue.push pkt t.flows.(pkt.flow).packets;
  index_if_became_backlogged t pkt.flow

let head t flow = Queue.peek_opt t.flows.(flow).packets

let complete t ~flow =
  (match Queue.pop t.flows.(flow).packets with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Cifq.complete"
  | _ -> ());
  deindex_if_empty t flow

(* A failed transmission: the real service did not happen after all, so the
   credit taken in [select] is returned. *)
let fail t ~flow = t.flows.(flow).lag <- t.flows.(flow).lag + 1

let drop_head t ~flow =
  (match Queue.pop t.flows.(flow).packets with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Cifq.drop_head"
  | _ -> ());
  deindex_if_empty t flow

let rec drop_expired_loop q ~now ~bound acc =
  match Queue.peek_opt q with
  | Some pkt when Packet.age pkt ~now > bound ->
      ignore (Queue.take_opt q);
      drop_expired_loop q ~now ~bound (pkt :: acc)
  | Some _ | None -> List.rev acc

let drop_expired t ~flow ~now ~bound =
  let dropped = drop_expired_loop t.flows.(flow).packets ~now ~bound [] in
  deindex_if_empty t flow;
  dropped

let queue_length t flow = Queue.length t.flows.(flow).packets

let instance t =
  {
    Wireless_sched.name = "CIF-Q";
    enqueue = (fun ~slot pkt -> enqueue t ~slot pkt);
    select = (fun ~slot ~predicted_good -> select t ~slot ~predicted_good);
    head = head t;
    complete = (fun ~flow -> complete t ~flow);
    fail = (fun ~flow -> fail t ~flow);
    drop_head = (fun ~flow -> drop_head t ~flow);
    drop_expired = (fun ~flow ~now ~bound -> drop_expired t ~flow ~now ~bound);
    queue_length = queue_length t;
    on_slot_end = (fun ~slot:_ -> ());
    probe =
      {
        Wireless_sched.no_probe with
        finish_tag = Some (fun flow -> t.flows.(flow).v);
        lag_sum =
          Some
            (fun () ->
              Array.fold_left (fun acc fs -> acc + fs.lag) 0 t.flows);
        work_conserving = true;
      };
    handoff =
      (* §5 lag is the flow-attached compensation state; virtual times and
         the α-account are cell-local.  CIF-Q lags are integral packets, so
         importing truncates any fractional carry (visible to the caller
         through the returned accepted value). *)
      Some
        {
          Wireless_sched.export =
            (fun ~flow ->
              { Wireless_sched.lag = float_of_int t.flows.(flow).lag; credit = 0 });
          import =
            (fun ~flow carry ->
              let lag = int_of_float (Float.round carry.Wireless_sched.lag) in
              let fs = t.flows.(flow) in
              fs.lag <- fs.lag + lag;
              { Wireless_sched.lag = float_of_int lag; credit = 0 });
        };
    quiescent =
      (* With no backlog, CIF-Q's select is a pure no-op in both indexed
         and naive modes (empty heap / no backlogged flow -> None, nothing
         mutated) and there is no end-of-slot hook: idle slots carry zero
         state, so the whole window is absorbed by doing nothing. *)
      Some
        {
          Wireless_sched.backlog_empty =
            (fun () -> Flow_set.cardinal t.backlog = 0);
          advance_quiescent = (fun ~now:_ ~slots -> slots);
        };
  }

let lag t ~flow = t.flows.(flow).lag
let virtual_time t ~flow = t.flows.(flow).v
