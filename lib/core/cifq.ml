module Packet = Wfs_traffic.Packet

type flow_state = {
  cfg : Params.flow;
  packets : Packet.t Queue.t;
  mutable v : float;  (* reference-system virtual time *)
  mutable lag : int;  (* reference service − real service, packets *)
  mutable selected_leading : int;  (* times picked by the reference while leading *)
  mutable relinquished : int;  (* of those, times it gave the slot away *)
}

type t = { alpha : float; flows : flow_state array }

let create ?(alpha = 0.9) flows =
  if not (alpha >= 0. && alpha <= 1.) then
    Wfs_util.Error.invalid "Cifq.create" "alpha must be in [0,1]";
  Array.iteri
    (fun i (f : Params.flow) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Cifq.create")
    flows;
  {
    alpha;
    flows =
      Array.map
        (fun cfg ->
          {
            cfg;
            packets = Queue.create ();
            v = 0.;
            lag = 0;
            selected_leading = 0;
            relinquished = 0;
          })
        flows;
  }

let backlogged fs = not (Queue.is_empty fs.packets)

(* An "active" flow for the reference system: one with real work.  (The
   full CIF-Q also keeps flows active while they are owed/owing service;
   with bounded runs and persistent flows this simplification only affects
   flows that drain completely, whose lag CIF-Q redistributes — we simply
   freeze it.) *)
let active fs = backlogged fs

let min_v_flow t ~pred =
  let best = ref None in
  Array.iteri
    (fun i fs ->
      if pred i fs then
        match !best with
        | Some (_, bv) when bv <= fs.v -> ()
        | Some _ | None -> best := Some (i, fs.v))
    t.flows;
  Option.map fst !best

(* Should a leading flow give this reference slot away?  Deterministic
   α-accounting, called after [selected_leading] was incremented for the
   current selection: relinquish whenever doing so still leaves at least an
   α fraction of its leading selections retained. *)
let must_relinquish t fs =
  float_of_int (fs.selected_leading - fs.relinquished - 1)
  >= (t.alpha *. float_of_int fs.selected_leading) -. 1e-9

let select t ~slot:_ ~predicted_good =
  (* 1. Reference selection and charge. *)
  match min_v_flow t ~pred:(fun _ fs -> active fs) with
  | None -> None
  | Some i ->
      let fi = t.flows.(i) in
      fi.v <- fi.v +. (1. /. fi.cfg.Params.weight);
      fi.lag <- fi.lag + 1;
      let can_transmit j = backlogged t.flows.(j) && predicted_good j in
      (* 2. Does i keep the slot? *)
      let keeps =
        if not (can_transmit i) then false
        else if fi.lag - 1 < 0 then begin
          (* Leading (lag was negative before the charge).  The α account
             only counts selections where relinquishing was possible — a
             lagging flow stood ready to take the slot — so uncontested
             slots never build up a give-away debt. *)
          let taker_exists =
            Option.is_some
              (min_v_flow t ~pred:(fun j fs ->
                   j <> i && fs.lag > 0 && can_transmit j))
          in
          if taker_exists then begin
            fi.selected_leading <- fi.selected_leading + 1;
            if must_relinquish t fi then begin
              fi.relinquished <- fi.relinquished + 1;
              false
            end
            else true
          end
          else true
        end
        else true
      in
      let transmitter =
        if keeps then Some i
        else
          (* 3. Redistribute: lagging flows first (min v), then anyone. *)
          match
            min_v_flow t ~pred:(fun j fs -> j <> i && fs.lag > 0 && can_transmit j)
          with
          | Some j -> Some j
          | None -> (
              match min_v_flow t ~pred:(fun j _ -> j <> i && can_transmit j) with
              | Some j -> Some j
              | None -> if can_transmit i then Some i else None)
      in
      (match transmitter with
      | Some k -> t.flows.(k).lag <- t.flows.(k).lag - 1
      | None -> ());
      transmitter

let enqueue t ~slot:_ (pkt : Packet.t) = Queue.push pkt t.flows.(pkt.flow).packets
let head t flow = Queue.peek_opt t.flows.(flow).packets

let complete t ~flow =
  match Queue.pop t.flows.(flow).packets with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Cifq.complete"
  | _ -> ()

(* A failed transmission: the real service did not happen after all, so the
   credit taken in [select] is returned. *)
let fail t ~flow = t.flows.(flow).lag <- t.flows.(flow).lag + 1

let drop_head t ~flow =
  match Queue.pop t.flows.(flow).packets with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Cifq.drop_head"
  | _ -> ()

let drop_expired t ~flow ~now ~bound =
  let q = t.flows.(flow).packets in
  let dropped = ref [] in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt q with
    | Some pkt when Packet.age pkt ~now > bound ->
        ignore (Queue.take_opt q);
        dropped := pkt :: !dropped
    | Some _ | None -> continue := false
  done;
  List.rev !dropped

let queue_length t flow = Queue.length t.flows.(flow).packets

let instance t =
  {
    Wireless_sched.name = "CIF-Q";
    enqueue = (fun ~slot pkt -> enqueue t ~slot pkt);
    select = (fun ~slot ~predicted_good -> select t ~slot ~predicted_good);
    head = head t;
    complete = (fun ~flow -> complete t ~flow);
    fail = (fun ~flow -> fail t ~flow);
    drop_head = (fun ~flow -> drop_head t ~flow);
    drop_expired = (fun ~flow ~now ~bound -> drop_expired t ~flow ~now ~bound);
    queue_length = queue_length t;
    on_slot_end = (fun ~slot:_ -> ());
    probe =
      {
        Wireless_sched.no_probe with
        finish_tag = Some (fun flow -> t.flows.(flow).v);
        lag_sum =
          Some
            (fun () ->
              Array.fold_left (fun acc fs -> acc + fs.lag) 0 t.flows);
        work_conserving = true;
      };
  }

let lag t ~flow = t.flows.(flow).lag
let virtual_time t ~flow = t.flows.(flow).v
