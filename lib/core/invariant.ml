module Error = Wfs_util.Error

type t = {
  mutable prev_virtual_time : float option;
  mutable prev_lag_sum : int option;
}

let create () = { prev_virtual_time = None; prev_lag_sum = None }

let fg = Printf.sprintf "%.17g"

let violation ~slot ~sched ~paper what context =
  Error.invariant_violation ~who:"Invariant.check"
    ~context:
      (("slot", string_of_int slot)
      :: ("scheduler", sched.Wireless_sched.name)
      :: ("paper", paper)
      :: context)
    what

let check_virtual_time t ~slot ~sched f =
  let v = f () in
  if not (Float.is_finite v) then
    violation ~slot ~sched ~paper:"Section 4.1"
      "virtual time is not finite"
      [ ("virtual_time", fg v) ];
  (match t.prev_virtual_time with
  | Some prev when v < prev ->
      violation ~slot ~sched ~paper:"Section 4.1"
        "virtual time regressed"
        [ ("virtual_time", fg v); ("previous", fg prev) ]
  | Some _ | None -> ());
  t.prev_virtual_time <- Some v

let check_finish_tags ~slot ~sched ~n_flows f =
  for flow = 0 to n_flows - 1 do
    let tag = f flow in
    if Float.is_nan tag then
      violation ~slot ~sched ~paper:"Section 4.1"
        "finish tag is NaN"
        [ ("flow", string_of_int flow) ];
    if sched.Wireless_sched.queue_length flow > 0 && not (Float.is_finite tag)
    then
      violation ~slot ~sched ~paper:"Section 4.1"
        "backlogged flow has non-finite finish tag"
        [ ("flow", string_of_int flow); ("finish_tag", fg tag) ]
  done

let check_credits ~slot ~sched ~n_flows f =
  for flow = 0 to n_flows - 1 do
    let balance, credit_limit, debit_limit = f flow in
    if balance > credit_limit || balance < -debit_limit then
      violation ~slot ~sched ~paper:"Section 7"
        "credit balance outside [-debit_limit, credit_limit]"
        [
          ("flow", string_of_int flow);
          ("balance", string_of_int balance);
          ("credit_limit", string_of_int credit_limit);
          ("debit_limit", string_of_int debit_limit);
        ]
  done

let check_lag_sum t ~slot ~sched f =
  let sum = f () in
  (match t.prev_lag_sum with
  | Some prev ->
      let delta = sum - prev in
      if delta < 0 || delta > 1 then
        violation ~slot ~sched ~paper:"Section 5"
          "sum of lags changed by more than one transmission's worth"
          [
            ("lag_sum", string_of_int sum);
            ("previous", string_of_int prev);
            ("delta", string_of_int delta);
          ]
  | None -> ());
  t.prev_lag_sum <- Some sum

let check_work_conserving ~slot ~sched ~n_flows ~predicted_good =
  let serviceable = ref None in
  for flow = 0 to n_flows - 1 do
    if
      Option.is_none !serviceable
      && sched.Wireless_sched.queue_length flow > 0
      && predicted_good flow
    then serviceable := Some flow
  done;
  match !serviceable with
  | Some flow ->
      violation ~slot ~sched ~paper:"Sections 4-5"
        "idle slot while a backlogged flow was predicted clean"
        [ ("flow", string_of_int flow) ]
  | None -> ()

(* Stateless, unlike the per-run monitors above: every handoff import is
   judged against only the carry it was offered. *)
let check_carry ~who ~context ~(carried : Wireless_sched.carry)
    ~(accepted : Wireless_sched.carry) =
  let lag_ok =
    (* the sign product is >= 0 when either side is zero, so this single
       inequality covers both "same sign" and "declined entirely"; the
       +0.5 slack is the half-transmission of rounding the §5 import
       hook is allowed *)
    accepted.lag *. carried.lag >= 0.
    && Float.abs accepted.lag <= Float.abs carried.lag +. 0.5
  in
  let credit_ok =
    (* §7 credits are integral — no rounding, so no slack *)
    accepted.credit * carried.credit >= 0
    && abs accepted.credit <= abs carried.credit
  in
  if not (lag_ok && credit_ok) then
    Error.invariant_violation ~who "handoff import exceeds carried state"
      ~context:
        ((("paper", "Section 5 / Section 7") :: context)
        @ [
            ("carried-lag", fg carried.lag);
            ("accepted-lag", fg accepted.lag);
            ("carried-credit", string_of_int carried.credit);
            ("accepted-credit", string_of_int accepted.credit);
          ])

let check t ~slot ~sched ~n_flows ~predicted_good ~selected =
  let probe = sched.Wireless_sched.probe in
  Option.iter (check_virtual_time t ~slot ~sched) probe.virtual_time;
  Option.iter (check_finish_tags ~slot ~sched ~n_flows) probe.finish_tag;
  Option.iter (check_credits ~slot ~sched ~n_flows) probe.credit;
  Option.iter (check_lag_sum t ~slot ~sched) probe.lag_sum;
  if probe.work_conserving && Option.is_none selected then
    check_work_conserving ~slot ~sched ~n_flows ~predicted_good
