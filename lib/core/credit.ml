type t = {
  credit_limit : int;
  debit_limit : int;
  credit_per_frame : int option;
  weight : int;
  mutable balance : int;
  mutable carry : int;  (* unredeemed credit withheld this frame *)
  mutable effective : int;  (* effective weight of the open frame *)
}

let create ~credit_limit ~debit_limit ?credit_per_frame ~weight () =
  if credit_limit < 0 || debit_limit < 0 then
    Wfs_util.Error.invalid "Credit.create" "negative limit";
  if weight < 1 then Wfs_util.Error.invalid "Credit.create" "weight must be >= 1";
  (match credit_per_frame with
  | Some k when k < 0 -> Wfs_util.Error.invalid "Credit.create" "negative per-frame cap"
  | Some _ | None -> ());
  {
    credit_limit;
    debit_limit;
    credit_per_frame;
    weight;
    balance = 0;
    carry = 0;
    effective = weight;
  }

let balance t = t.balance

let clamp t v = Int.min (Int.max v (-t.debit_limit)) t.credit_limit

let begin_frame t =
  let redeemed =
    match t.credit_per_frame with
    | Some cap when t.balance > cap -> cap
    | Some _ | None -> t.balance
  in
  t.carry <- t.balance - redeemed;
  t.effective <- t.weight + redeemed;
  t.effective

let end_frame t ~attempts =
  if attempts < 0 then Wfs_util.Error.invalid "Credit.end_frame" "negative attempts";
  t.balance <- clamp t (t.effective - attempts + t.carry);
  t.carry <- 0;
  t.effective <- t.weight

let admit t v =
  t.balance <- clamp t v;
  t.balance

let weight t = t.weight
let credit_limit t = t.credit_limit
let debit_limit t = t.debit_limit
