(** Channel-State Dependent Packet Scheduling (CSDPS) — Bhagwat,
    Bhattacharya, Krishna & Tripathi, INFOCOM 1997.

    The closest prior work the paper compares against (Section 9): a
    round-robin server that {e marks} a flow's link bad when a transmission
    fails and skips marked flows for a backoff period, unmarking on expiry
    (or on a successful probe).  It needs only ACK feedback — no channel
    prediction — but, as the paper argues, it "does not address the issues
    of fairness, throughput and delay guarantees": a flow whose link was
    marked receives no compensation for the service it missed.

    Included as a baseline so that claim is measurable: the fairness
    ablation in the bench compares CSDPS's normalised-service gap against
    WPS's under identical channels. *)

type t

val create : ?backoff:int -> ?naive:bool -> Params.flow array -> t
(** [backoff] (default 10 slots) is how long a flow stays marked after a
    failed transmission.  Weights are honoured as in WRR (rounded to
    integers ≥ 1).  [naive] (default [false], for differential testing
    only) selects with the original one-flow-at-a-time round-robin scan
    instead of the backlogged-flow index; both modes are byte-identical by
    construction and pinned to each other by the qcheck suite.
    @raise Invalid_argument on non-positive backoff or bad flow ids. *)

val instance : t -> Wireless_sched.instance
(** Note: CSDPS ignores the [predicted_good] argument of [select] — its
    only channel knowledge is its own marking state. *)

val is_marked : t -> flow:int -> now:int -> bool
