(** Slotted error-free fluid fair queueing reference service.

    The wireless fairness model (Section 3) measures every flow against the
    service it {e would} have received from a fluid fair queueing server
    with the same arrivals and {e no} channel errors.  This module simulates
    that reference exactly on the slotted time axis: arrivals land at slot
    starts, and during each slot one packet's worth of capacity is
    distributed among backlogged flows in proportion to their weights
    (water-filling handles flows that empty mid-slot).

    The system virtual time [v(t)] advances with slope [C / Σ_{i∈B(t)} r_i]
    during fluid busy periods and is constant when idle; IWFQ stamps
    arriving packets with [v] at their arrival instant. *)

type t

val create : ?capacity:float -> weights:float array -> unit -> t
(** [capacity] in packets per slot, default 1.  Weights must be positive. *)

val n_flows : t -> int

val add_arrivals : t -> flow:int -> count:int -> unit
(** Register [count] packet arrivals at the current instant (the start of
    the next un-stepped slot). *)

val virtual_time : t -> float
(** [v] at the current instant. *)

val step : t -> unit
(** Advance one slot of fluid service. *)

val is_busy : t -> bool
(** [true] iff some flow has fluid backlog above the drain epsilon — the
    exact predicate {!step}'s water-filling uses to decide whether a slot
    does any work.  When [false] (and no arrivals intervene), a step only
    increments the slot counter. *)

val skip_idle : t -> slots:int -> unit
(** Advance the slot counter by [slots] without serving anything.
    Identical to calling {!step} [slots] times while {!is_busy} is [false]:
    an idle step moves no fluid and leaves [v] unchanged, so the closed
    form is a single addition. *)

val slot : t -> int
(** Number of slots stepped so far. *)

val queue : t -> flow:int -> float
(** Fluid backlog of [flow] at the current instant, in packets. *)

val service : t -> flow:int -> float
(** Cumulative fluid service granted to [flow], in packets. *)

val is_backlogged : t -> flow:int -> bool
val backlogged_weight : t -> float
