(** Typed builder for simulator configurations — the primary construction
    surface for {!Simulator.config}.

    {!Simulator.config}'s optional-argument constructor grew one knob per
    PR (trace, observer, probe, profiler, histograms, invariants, ...);
    this builder replaces that sprawl with a pipeline of typed steps:

    {[
      Sim_config.v ~horizon:200_000 flows
      |> Sim_config.with_predictor Predictor.One_step
      |> Sim_config.with_probe probe
      |> Sim_config.with_invariants
      |> Sim_config.run sched
    ]}

    A value of type {!t} {e is} a validated [Simulator.config] (see
    {!to_config}), so single-cell entry points ({!Exec.run}, the CLIs) and
    per-cell sessions ({!Wfs_topo.Cell}) build through the same steps and
    golden outputs stay byte-identical with the legacy constructor. *)

type t

val v : horizon:int -> Simulator.flow_setup array -> t
(** Base configuration: the given flows, [One_step] prediction, no
    telemetry, no histograms, no invariant monitor.
    @raise Invalid_argument on a negative horizon, flow ids out of order,
    or an empty flow array. *)

val with_predictor : Wfs_channel.Predictor.kind -> t -> t
(** Channel knowledge the scheduler runs with ([Perfect] / [One_step] /
    [Blind] / ...). *)

val with_flows : Simulator.flow_setup array -> t -> t
(** Replace the flow roster (re-validated).  Used by per-cell rebuilds
    after a handoff changes cell membership. *)

val with_horizon : int -> t -> t
(** @raise Invalid_argument on a negative horizon. *)

val with_trace : Wfs_sim.Tracelog.t -> t -> t
val with_observer : (int -> Metrics.t -> unit) -> t -> t
val with_probe : Simulator.slot_probe -> t -> t
val with_profiler : Simulator.profiler_hooks -> t -> t
val with_histograms : t -> t
val with_invariants : t -> t

val with_fast_path : bool -> t -> t
(** Opt in to (or out of) the event-compressed engine — see
    {!Simulator.config}'s [fast_path] field for the contract and the
    degeneration rules.  Takes the value rather than being a set-only
    step so sweeps can toggle both engines from one code path. *)

val with_skip_stats : Skip_stats.t -> t -> t
(** Attach a fast-path skip-telemetry collector (see
    {!Simulator.config}'s [skip_stats] field).  Unlike every other
    observability hook this does NOT degenerate the fast path: updates
    happen at quiescent-window granularity, not per slot. *)

val to_config : t -> Simulator.config
(** The underlying record — every builder value is already validated. *)

val run : Wireless_sched.instance -> t -> Metrics.t
(** [run sched t] = [Simulator.run (to_config t) sched]; pipeline-ordered
    so a builder chain ends [... |> run sched]. *)

val start :
  ?metrics:Metrics.t -> ?first_slot:int -> Wireless_sched.instance -> t ->
  Simulator.Session.t
(** Open an epoch-resumable {!Simulator.Session} on this configuration
    (same parameters as {!Simulator.Session.create}). *)
