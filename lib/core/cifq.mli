(** CIF-Q — Channel-condition Independent Fair Queueing (Ng, Stoica &
    Zhang, INFOCOM 1998), the direct successor of this paper's model.

    Included as an extension because it answers the two rough edges the
    paper itself acknowledges in IWFQ/WPS: a lagging flow seizing the
    channel outright when it recovers, and leading flows losing service
    abruptly.  CIF-Q runs an error-free {e reference system} (start-time
    fair queueing: per-flow virtual times advancing by [1/r_i] per served
    packet) and tracks each flow's [lag] = reference service − real
    service.  Each slot:

    + the reference system picks the active flow [i] with minimum virtual
      time and charges it ([v_i += 1/r_i], [lag_i += 1]);
    + if [i] can transmit and is not obliged to give the slot away, it
      transmits ([lag_i -= 1]: net zero);
    + a {e leading} flow ([lag < 0]) relinquishes at most a fraction
      [1 − α] of its reference slots to lagging flows — the graceful
      degradation knob: [α = 1] never gives up (full separation), [α = 0]
      gives up everything until the laggers catch up;
    + a slot [i] cannot use (bad channel, or relinquished) goes to the
      lagging flow with the smallest virtual time among those that can
      transmit, else to any transmittable active flow, else idles.  The
      actual transmitter [k] is credited ([lag_k -= 1]).

    Simplifications vs. the full paper, documented here: fixed-size
    packets and slotted time (as everywhere in this repository), no
    dynamic flow join/leave redistribution, and deterministic
    (counter-based) rather than randomised α-relinquishing. *)

type t

val create : ?alpha:float -> ?naive:bool -> Params.flow array -> t
(** [alpha] in [\[0,1\]], default 0.9 (the CIF-Q paper's recommendation).
    [naive] (default [false], for differential testing only) selects with
    the reference O(n_flows) scans instead of the backlog-indexed heap;
    both modes are byte-identical by construction and pinned to each other
    by the qcheck suite.
    @raise Invalid_argument on out-of-range alpha or bad flow ids. *)

val instance : t -> Wireless_sched.instance

val lag : t -> flow:int -> int
(** Current lag in packets (positive = owed service, negative = ahead). *)

val virtual_time : t -> flow:int -> float
