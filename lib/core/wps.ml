module Packet = Wfs_traffic.Packet
module Ring = Wfs_util.Ring
module Tracelog = Wfs_sim.Tracelog

type flow_state = {
  weight_int : int;
  packets : Packet.t Queue.t;
  credit : Credit.t;
  mutable attempts : int;  (* transmissions counted against this frame *)
  mutable eff : int;  (* effective weight of the current frame *)
  mutable in_frame : bool;  (* participates in the current frame's accounts *)
  mutable contending : bool;
      (* still eligible to transmit this frame; cleared when the flow drains
         its queue mid-frame (it then stays out until the next frame even if
         it refills — Section 7 requirement (c)) *)
}

type t = {
  params : Params.wps;
  flows : flow_state array;
  mutable frame : int array;  (* flow id per slot; -1 = deleted *)
  mutable pos : int;
  ring : int Ring.t;  (* cross-frame swap ring, marker persists *)
  mutable ring_members : int list;  (* backlogged set the ring was built from *)
  trace : Tracelog.t option;
}

let int_weight w =
  let k = int_of_float (Float.round w) in
  if k < 1 then 1 else k

let create ?params ?limits ?trace flows =
  let params = match params with Some p -> p | None -> Params.swapa () in
  Params.validate_wps params;
  Array.iteri
    (fun i (f : Params.flow) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Wps.create")
    flows;
  (match limits with
  | Some l when Array.length l <> Array.length flows ->
      Wfs_util.Error.invalid "Wps.create" "limits must match flow count"
  | Some _ | None -> ());
  {
    params;
    flows =
      Array.mapi
        (fun i (cfg : Params.flow) ->
          let weight_int = int_weight cfg.weight in
          let credit_limit, debit_limit =
            match limits with
            | Some l -> l.(i)
            | None -> (params.credit_limit, params.debit_limit)
          in
          {
            weight_int;
            packets = Queue.create ();
            credit =
              Credit.create ~credit_limit ~debit_limit
                ?credit_per_frame:params.credit_per_frame ~weight:weight_int ();
            attempts = 0;
            eff = 0;
            in_frame = false;
            contending = false;
          })
        flows;
    frame = [||];
    pos = 0;
    ring = Ring.create [||];
    ring_members = [];
    trace;
  }

let record t ~slot ev =
  match t.trace with None -> () | Some tr -> Tracelog.record tr ~slot ev

let backlogged fs = not (Queue.is_empty fs.packets)

(* Rebuild the cross-frame swap ring when the known-backlogged set changes
   (the paper's "new queue phase"), spread by default weights. *)
let refresh_ring t members =
  if not (List.equal Int.equal members t.ring_members) then begin
    let weights =
      Array.mapi
        (fun i fs -> if List.memq i members then fs.weight_int else 0)
        t.flows
    in
    Ring.rebuild t.ring (Spreading.frame ~weights);
    t.ring_members <- members
  end

(* Close the previous frame's accounts and open a new frame over the flows
   known backlogged now. *)
let new_frame t ~slot =
  Array.iter
    (fun fs ->
      if fs.in_frame && t.params.credits then
        Credit.end_frame fs.credit ~attempts:fs.attempts;
      fs.attempts <- 0;
      fs.in_frame <- false;
      fs.contending <- false;
      fs.eff <- 0)
    t.flows;
  let members = ref [] in
  Array.iteri
    (fun i fs -> if backlogged fs then members := i :: !members)
    t.flows;
  let members = List.rev !members in
  List.iter
    (fun i ->
      let fs = t.flows.(i) in
      fs.in_frame <- true;
      fs.contending <- true;
      fs.eff <-
        (if t.params.credits then Credit.begin_frame fs.credit else fs.weight_int))
    members;
  let weights = Array.map (fun fs -> if fs.in_frame then fs.eff else 0) t.flows in
  t.frame <- Spreading.frame ~weights;
  t.pos <- 0;
  refresh_ring t members;
  if Array.length t.frame > 0 then
    record t ~slot (Tracelog.Frame_start { length = Array.length t.frame })

(* A flow drained its queue mid-frame: delete its remaining slots and make
   sure the unused grant does not turn into credit (empty queues are not
   compensable — only channel error is). *)
let drop_from_frame t f =
  let fs = t.flows.(f) in
  for i = t.pos to Array.length t.frame - 1 do
    if t.frame.(i) = f then t.frame.(i) <- -1
  done;
  fs.contending <- false;
  if fs.attempts < fs.eff then fs.attempts <- fs.eff

(* "No flow can transmit" for the exception case is read as universal
   channel error: if some contending flow's channel is good, the blocked
   flow's miss is attributable to its own channel error and stays
   compensable even when the good-channel peers happen to have empty
   queues (the fluid model compensates error, never idleness). *)
let exists_good_channel t ~predicted_good =
  let found = ref false in
  Array.iteri
    (fun i fs -> if (not !found) && fs.contending && predicted_good i then found := true)
    t.flows;
  !found

(* Intra-frame swap: find a later slot in the frame held by a flow that is
   backlogged and predicted good, and exchange it with position [pos]. *)
let try_swap_intra t ~predicted_good ~slot =
  let f = t.frame.(t.pos) in
  let limit =
    match t.params.swap_window with
    | None -> Array.length t.frame
    | Some w -> Int.min (Array.length t.frame) (t.pos + w)
  in
  let rec scan j =
    if j >= limit then false
    else begin
      let g = t.frame.(j) in
      if g >= 0 && g <> f && backlogged t.flows.(g) && predicted_good g then begin
        t.frame.(j) <- f;
        t.frame.(t.pos) <- g;
        record t ~slot (Tracelog.Swap { from_flow = f; to_flow = g });
        true
      end
      else scan (j + 1)
    end
  in
  scan (t.pos + 1)

(* Cross-frame reallocation: hand the slot to the next good backlogged flow
   on the marker ring; accounts settle implicitly through attempts. *)
let try_swap_inter t ~predicted_good ~slot =
  let f = t.frame.(t.pos) in
  let eligible g =
    g <> f && t.flows.(g).contending && backlogged t.flows.(g) && predicted_good g
  in
  match Ring.next_matching t.ring eligible with
  | Some g ->
      record t ~slot (Tracelog.Swap { from_flow = f; to_flow = g });
      Some g
  | None -> None

let select t ~slot ~predicted_good =
  (* Bounded by frame rebuilds: each pass either consumes a frame position
     or rebuilds an exhausted frame, and an empty rebuild idles. *)
  let rec pick ~rebuilt =
    if t.pos >= Array.length t.frame then
      if rebuilt then None
      else begin
        new_frame t ~slot;
        if Array.length t.frame = 0 then None else pick ~rebuilt:true
      end
    else begin
      let f = t.frame.(t.pos) in
      if f < 0 then begin
        t.pos <- t.pos + 1;
        pick ~rebuilt
      end
      else begin
        let fs = t.flows.(f) in
        if not (backlogged fs) then begin
          (* Case 1: the flow has no queue. *)
          drop_from_frame t f;
          pick ~rebuilt
        end
        else if predicted_good f || not t.params.skip_on_predicted_error then begin
          (* Case 4 (or Blind WRR transmitting into the error). *)
          t.pos <- t.pos + 1;
          fs.attempts <- fs.attempts + 1;
          Some f
        end
        else if t.params.swap_intra && try_swap_intra t ~predicted_good ~slot
        then
          (* Case 3a: the swapped-in flow now owns position [pos]. *)
          pick ~rebuilt
        else if t.params.swap_inter then begin
          if not (exists_good_channel t ~predicted_good) then begin
            (* Case 2: universal channel error; no credit for the missed
               slot. *)
            fs.attempts <- fs.attempts + 1;
            t.pos <- t.pos + 1;
            None
          end
          else
            (* Case 3b: cross-frame swap via the marker ring; if every
               good-channel peer is idle the slot is skipped with the
               credit kept (attempts untouched). *)
            match try_swap_inter t ~predicted_good ~slot with
            | Some g ->
                t.pos <- t.pos + 1;
                t.flows.(g).attempts <- t.flows.(g).attempts + 1;
                Some g
            | None ->
                t.pos <- t.pos + 1;
                pick ~rebuilt
        end
        else if not t.params.credits then begin
          (* Plain WRR "skips the slot": the physical slot is wasted and
             nothing is owed to anyone (Section 8's WRR-I/P). *)
          fs.attempts <- fs.attempts + 1;
          t.pos <- t.pos + 1;
          None
        end
        else begin
          (* NoSwap / SwapW with no (or failed) intra-frame swap: give the
             flow credit and "skip to the next slot" of the frame within
             the same physical slot — the frame compresses, as in the
             paper's get_next_slot scan.  The unincremented attempt count
             becomes credit at frame end. *)
          t.pos <- t.pos + 1;
          pick ~rebuilt
        end
      end
    end
  in
  pick ~rebuilt:false

let enqueue t ~slot:_ (pkt : Packet.t) = Queue.push pkt t.flows.(pkt.flow).packets

let head t flow =
  match Queue.peek_opt t.flows.(flow).packets with
  | Some pkt -> Some pkt
  | None -> None

let complete t ~flow =
  match Queue.pop t.flows.(flow).packets with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Wps.complete"
  | _pkt -> ()

let fail _t ~flow:_ = ()

let drop_head t ~flow =
  match Queue.pop t.flows.(flow).packets with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Wps.drop_head"
  | _ -> ()

let drop_expired t ~flow ~now ~bound =
  let fs = t.flows.(flow) in
  let dropped = ref [] in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt fs.packets with
    | Some pkt when Packet.age pkt ~now > bound ->
        ignore (Queue.take_opt fs.packets);
        dropped := pkt :: !dropped
    | Some _ | None -> continue := false
  done;
  List.rev !dropped

let queue_length t flow = Queue.length t.flows.(flow).packets
let on_slot_end _t ~slot:_ = ()

let name_of_params (p : Params.wps) =
  if not p.skip_on_predicted_error then "BlindWRR"
  else if not p.credits then "WRR"
  else if p.swap_inter then "SwapA"
  else if p.swap_intra then "SwapW"
  else "NoSwap"

let instance t =
  {
    Wireless_sched.name = name_of_params t.params;
    enqueue = (fun ~slot pkt -> enqueue t ~slot pkt);
    select = (fun ~slot ~predicted_good -> select t ~slot ~predicted_good);
    head = head t;
    complete = (fun ~flow -> complete t ~flow);
    fail = (fun ~flow -> fail t ~flow);
    drop_head = (fun ~flow -> drop_head t ~flow);
    drop_expired = (fun ~flow ~now ~bound -> drop_expired t ~flow ~now ~bound);
    queue_length = queue_length t;
    on_slot_end = (fun ~slot -> on_slot_end t ~slot);
    probe =
      {
        Wireless_sched.no_probe with
        credit =
          Some
            (fun flow ->
              let c = t.flows.(flow).credit in
              (Credit.balance c, Credit.credit_limit c, Credit.debit_limit c));
        (* Frame membership means a backlogged clean flow outside the
           current frame legitimately idles the slot (Section 7(c)). *)
        work_conserving = false;
      };
  }

let credit t ~flow = Credit.balance t.flows.(flow).credit
let effective_weight t ~flow = if t.flows.(flow).in_frame then t.flows.(flow).eff else 0

let frame_snapshot t =
  let len = Array.length t.frame in
  let pos = Int.min t.pos len in
  Array.sub t.frame pos (len - pos)

let frame_position t = t.pos
