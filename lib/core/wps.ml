module Packet = Wfs_traffic.Packet
module Ring = Wfs_util.Ring
module Flow_set = Wfs_util.Flow_set
module Tracelog = Wfs_sim.Tracelog

type flow_state = {
  weight_int : int;
  packets : Packet.t Queue.t;
  credit : Credit.t;
  mutable attempts : int;  (* transmissions counted against this frame *)
  mutable eff : int;  (* effective weight of the current frame *)
  mutable in_frame : bool;  (* participates in the current frame's accounts *)
  mutable contending : bool;
      (* still eligible to transmit this frame; cleared when the flow drains
         its queue mid-frame (it then stays out until the next frame even if
         it refills — Section 7 requirement (c)) *)
}

(* [backlog] indexes the flows with a non-empty queue so frame builds and
   accounting touch only members instead of the whole flow array; the
   per-frame fields above are non-default only for flows in [frame_flows]
   (the members of the current frame, ascending), which is what lets
   [new_frame] close accounts by walking that list alone.  [naive = true]
   (differential testing) rebuilds frames with the original dense
   whole-array scans instead; selection logic is shared, so both modes are
   byte-identical. *)
type t = {
  params : Params.wps;
  flows : flow_state array;
  backlog : Flow_set.t;
  mutable frame : int array;  (* flow id per slot; -1 = deleted *)
  mutable pos : int;
  mutable frame_flows : int list;  (* current frame's members, ascending *)
  ring : int Ring.t;  (* cross-frame swap ring, marker persists *)
  mutable ring_members : int list;  (* backlogged set the ring was built from *)
  naive : bool;
  trace : Tracelog.t option;
}

let int_weight w =
  let k = int_of_float (Float.round w) in
  if k < 1 then 1 else k

let create ?params ?limits ?(naive = false) ?trace flows =
  let params = match params with Some p -> p | None -> Params.swapa () in
  Params.validate_wps params;
  Array.iteri
    (fun i (f : Params.flow) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Wps.create")
    flows;
  (match limits with
  | Some l when Array.length l <> Array.length flows ->
      Wfs_util.Error.invalid "Wps.create" "limits must match flow count"
  | Some _ | None -> ());
  {
    params;
    flows =
      Array.mapi
        (fun i (cfg : Params.flow) ->
          let weight_int = int_weight cfg.weight in
          let credit_limit, debit_limit =
            match limits with
            | Some l -> l.(i)
            | None -> (params.credit_limit, params.debit_limit)
          in
          {
            weight_int;
            packets = Queue.create ();
            credit =
              Credit.create ~credit_limit ~debit_limit
                ?credit_per_frame:params.credit_per_frame ~weight:weight_int ();
            attempts = 0;
            eff = 0;
            in_frame = false;
            contending = false;
          })
        flows;
    backlog = Flow_set.create ~n:(Array.length flows);
    frame = [||];
    pos = 0;
    frame_flows = [];
    ring = Ring.create [||];
    ring_members = [];
    naive;
    trace;
  }

let record t ~slot ev =
  match t.trace with None -> () | Some tr -> Tracelog.record tr ~slot ev

let backlogged fs = not (Queue.is_empty fs.packets)

(* Compact (flow, weight) arrays for a sparse frame build. *)
let member_weights t members weight_of =
  let m = List.length members in
  let ids = Array.make m (-1) in
  let eff = Array.make m 0 in
  List.iteri
    (fun k i ->
      ids.(k) <- i;
      eff.(k) <- weight_of t.flows.(i))
    members;
  (ids, eff)

(* Rebuild the cross-frame swap ring when the known-backlogged set changes
   (the paper's "new queue phase"), spread by default weights. *)
let refresh_ring t members =
  if not (List.equal Int.equal members t.ring_members) then begin
    let seq =
      if t.naive then
        let weights =
          Array.mapi
            (fun i fs -> if List.memq i members then fs.weight_int else 0)
            t.flows
        in
        Spreading.frame ~weights
      else
        let ids, eff = member_weights t members (fun fs -> fs.weight_int) in
        Spreading.frame_sparse ~flows:ids ~weights:eff
    in
    Ring.rebuild t.ring seq;
    t.ring_members <- members
  end

let close_frame_accounts t fs =
  if fs.in_frame && t.params.credits then
    Credit.end_frame fs.credit ~attempts:fs.attempts;
  fs.attempts <- 0;
  fs.in_frame <- false;
  fs.contending <- false;
  fs.eff <- 0

(* Close the previous frame's accounts and open a new frame over the flows
   known backlogged now. *)
let new_frame t ~slot =
  if t.naive then Array.iter (close_frame_accounts t) t.flows
  else List.iter (fun i -> close_frame_accounts t t.flows.(i)) t.frame_flows;
  let members =
    if t.naive then begin
      let members = ref [] in
      Array.iteri
        (fun i fs -> if backlogged fs then members := i :: !members)
        t.flows;
      List.rev !members
    end
    else Flow_set.elements t.backlog
  in
  List.iter
    (fun i ->
      let fs = t.flows.(i) in
      fs.in_frame <- true;
      fs.contending <- true;
      fs.eff <-
        (if t.params.credits then Credit.begin_frame fs.credit else fs.weight_int))
    members;
  (t.frame <-
     (if t.naive then
        let weights =
          Array.map (fun fs -> if fs.in_frame then fs.eff else 0) t.flows
        in
        Spreading.frame ~weights
      else
        let ids, eff = member_weights t members (fun fs -> fs.eff) in
        Spreading.frame_sparse ~flows:ids ~weights:eff));
  t.pos <- 0;
  t.frame_flows <- members;
  refresh_ring t members;
  if Array.length t.frame > 0 then
    record t ~slot (Tracelog.Frame_start { length = Array.length t.frame })

(* A flow drained its queue mid-frame: delete its remaining slots and make
   sure the unused grant does not turn into credit (empty queues are not
   compensable — only channel error is). *)
let drop_from_frame t f =
  let fs = t.flows.(f) in
  for i = t.pos to Array.length t.frame - 1 do
    if t.frame.(i) = f then t.frame.(i) <- -1
  done;
  fs.contending <- false;
  if fs.attempts < fs.eff then fs.attempts <- fs.eff

(* "No flow can transmit" for the exception case is read as universal
   channel error: if some contending flow's channel is good, the blocked
   flow's miss is attributable to its own channel error and stays
   compensable even when the good-channel peers happen to have empty
   queues (the fluid model compensates error, never idleness).  Contending
   flows are a subset of the current frame's members, so only those need
   scanning (order is irrelevant: pure existence). *)
let exists_good_channel t ~predicted_good =
  if t.naive then begin
    let found = ref false in
    Array.iteri
      (fun i fs ->
        if (not !found) && fs.contending && predicted_good i then found := true)
      t.flows;
    !found
  end
  else
    List.exists
      (fun i -> t.flows.(i).contending && predicted_good i)
      t.frame_flows

(* Intra-frame swap: find a later slot in the frame held by a flow that is
   backlogged and predicted good, and exchange it with position [pos]. *)
let rec swap_scan t ~predicted_good ~slot f limit j =
  if j >= limit then false
  else begin
    let g = t.frame.(j) in
    if g >= 0 && g <> f && backlogged t.flows.(g) && predicted_good g then begin
      t.frame.(j) <- f;
      t.frame.(t.pos) <- g;
      record t ~slot (Tracelog.Swap { from_flow = f; to_flow = g });
      true
    end
    else swap_scan t ~predicted_good ~slot f limit (j + 1)
  end

let try_swap_intra t ~predicted_good ~slot =
  let f = t.frame.(t.pos) in
  let limit =
    match t.params.swap_window with
    | None -> Array.length t.frame
    | Some w -> Int.min (Array.length t.frame) (t.pos + w)
  in
  swap_scan t ~predicted_good ~slot f limit (t.pos + 1)

(* Cross-frame reallocation: hand the slot to the next good backlogged flow
   on the marker ring; accounts settle implicitly through attempts. *)
let try_swap_inter t ~predicted_good ~slot =
  let f = t.frame.(t.pos) in
  let eligible g =
    g <> f && t.flows.(g).contending && backlogged t.flows.(g) && predicted_good g
  in
  match Ring.next_matching t.ring eligible with
  | Some g ->
      record t ~slot (Tracelog.Swap { from_flow = f; to_flow = g });
      Some g
  | None -> None

(* Bounded by frame rebuilds: each pass either consumes a frame position
   or rebuilds an exhausted frame, and an empty rebuild idles. *)
let[@hot] rec pick t ~slot ~predicted_good ~rebuilt =
  if t.pos >= Array.length t.frame then
    if rebuilt then None
    else begin
      new_frame t ~slot;
      if Array.length t.frame = 0 then None
      else pick t ~slot ~predicted_good ~rebuilt:true
    end
  else begin
    let f = t.frame.(t.pos) in
    if f < 0 then begin
      t.pos <- t.pos + 1;
      pick t ~slot ~predicted_good ~rebuilt
    end
    else begin
      let fs = t.flows.(f) in
      if not (backlogged fs) then begin
        (* Case 1: the flow has no queue. *)
        drop_from_frame t f;
        pick t ~slot ~predicted_good ~rebuilt
      end
      else if predicted_good f || not t.params.skip_on_predicted_error then begin
        (* Case 4 (or Blind WRR transmitting into the error). *)
        t.pos <- t.pos + 1;
        fs.attempts <- fs.attempts + 1;
        Some f
      end
      else if t.params.swap_intra && try_swap_intra t ~predicted_good ~slot
      then
        (* Case 3a: the swapped-in flow now owns position [pos]. *)
        pick t ~slot ~predicted_good ~rebuilt
      else if t.params.swap_inter then begin
        if not (exists_good_channel t ~predicted_good) then begin
          (* Case 2: universal channel error; no credit for the missed
             slot. *)
          fs.attempts <- fs.attempts + 1;
          t.pos <- t.pos + 1;
          None
        end
        else
          (* Case 3b: cross-frame swap via the marker ring; if every
             good-channel peer is idle the slot is skipped with the
             credit kept (attempts untouched). *)
          match try_swap_inter t ~predicted_good ~slot with
          | Some g ->
              t.pos <- t.pos + 1;
              t.flows.(g).attempts <- t.flows.(g).attempts + 1;
              Some g
          | None ->
              t.pos <- t.pos + 1;
              pick t ~slot ~predicted_good ~rebuilt
      end
      else if not t.params.credits then begin
        (* Plain WRR "skips the slot": the physical slot is wasted and
           nothing is owed to anyone (Section 8's WRR-I/P). *)
        fs.attempts <- fs.attempts + 1;
        t.pos <- t.pos + 1;
        None
      end
      else begin
        (* NoSwap / SwapW with no (or failed) intra-frame swap: give the
           flow credit and "skip to the next slot" of the frame within
           the same physical slot — the frame compresses, as in the
           paper's get_next_slot scan.  The unincremented attempt count
           becomes credit at frame end. *)
        t.pos <- t.pos + 1;
        pick t ~slot ~predicted_good ~rebuilt
      end
    end
  end

let select t ~slot ~predicted_good = pick t ~slot ~predicted_good ~rebuilt:false

let enqueue t ~slot:_ (pkt : Packet.t) =
  let fs = t.flows.(pkt.flow).packets in
  Queue.push pkt fs;
  if Queue.length fs = 1 then Flow_set.add t.backlog pkt.flow

let deindex_if_empty t flow =
  if Queue.is_empty t.flows.(flow).packets then Flow_set.remove t.backlog flow

let head t flow =
  match Queue.peek_opt t.flows.(flow).packets with
  | Some pkt -> Some pkt
  | None -> None

let complete t ~flow =
  (match Queue.pop t.flows.(flow).packets with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Wps.complete"
  | _pkt -> ());
  deindex_if_empty t flow

let fail _t ~flow:_ = ()

let drop_head t ~flow =
  (match Queue.pop t.flows.(flow).packets with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Wps.drop_head"
  | _ -> ());
  deindex_if_empty t flow

let rec drop_expired_loop q ~now ~bound acc =
  match Queue.peek_opt q with
  | Some pkt when Packet.age pkt ~now > bound ->
      ignore (Queue.take_opt q);
      drop_expired_loop q ~now ~bound (pkt :: acc)
  | Some _ | None -> List.rev acc

let drop_expired t ~flow ~now ~bound =
  let dropped = drop_expired_loop t.flows.(flow).packets ~now ~bound [] in
  deindex_if_empty t flow;
  dropped

let queue_length t flow = Queue.length t.flows.(flow).packets
let on_slot_end _t ~slot:_ = ()

let name_of_params (p : Params.wps) =
  if not p.skip_on_predicted_error then "BlindWRR"
  else if not p.credits then "WRR"
  else if p.swap_inter then "SwapA"
  else if p.swap_intra then "SwapW"
  else "NoSwap"

let instance t =
  {
    Wireless_sched.name = name_of_params t.params;
    enqueue = (fun ~slot pkt -> enqueue t ~slot pkt);
    select = (fun ~slot ~predicted_good -> select t ~slot ~predicted_good);
    head = head t;
    complete = (fun ~flow -> complete t ~flow);
    fail = (fun ~flow -> fail t ~flow);
    drop_head = (fun ~flow -> drop_head t ~flow);
    drop_expired = (fun ~flow ~now ~bound -> drop_expired t ~flow ~now ~bound);
    queue_length = queue_length t;
    on_slot_end = (fun ~slot -> on_slot_end t ~slot);
    probe =
      {
        Wireless_sched.no_probe with
        credit =
          Some
            (fun flow ->
              let c = t.flows.(flow).credit in
              (Credit.balance c, Credit.credit_limit c, Credit.debit_limit c));
        (* Frame membership means a backlogged clean flow outside the
           current frame legitimately idles the slot (Section 7(c)). *)
        work_conserving = false;
      };
    handoff =
      (* §7 credit is the flow-attached compensation state; the frame and
         marker ring are cell-local and rebuilt at the new base station. *)
      Some
        {
          Wireless_sched.export =
            (fun ~flow ->
              {
                Wireless_sched.lag = 0.;
                credit = Credit.balance t.flows.(flow).credit;
              });
          import =
            (fun ~flow carry ->
              {
                Wireless_sched.lag = 0.;
                credit = Credit.admit t.flows.(flow).credit carry.Wireless_sched.credit;
              });
        };
    quiescent =
      (* The first idle select is genuine work: it tears the stale frame
         down (dropping departed members, closing credit accounts at the
         frame boundary) and leaves members/frame/ring empty.  Every later
         idle select is observationally a no-op — with nothing backlogged
         the frame stays empty and the predictor is provably never
         consulted (all pick branches require backlog).  So one real
         select absorbs the whole window; the constant-false predictor
         stands in for the never-read prediction. *)
      Some
        {
          Wireless_sched.backlog_empty =
            (fun () -> Flow_set.cardinal t.backlog = 0);
          advance_quiescent =
            (fun ~now ~slots ->
              if slots > 0 then
                (match select t ~slot:now ~predicted_good:(fun _ -> false) with
                | None -> ()
                | Some f ->
                    Wfs_util.Error.invalidf "Wps.advance_quiescent"
                      "selected flow %d with empty backlog" f);
              slots);
        };
  }

let credit t ~flow = Credit.balance t.flows.(flow).credit
let effective_weight t ~flow = if t.flows.(flow).in_frame then t.flows.(flow).eff else 0

let frame_snapshot t =
  let len = Array.length t.frame in
  let pos = Int.min t.pos len in
  Array.sub t.frame pos (len - pos)

let frame_position t = t.pos
