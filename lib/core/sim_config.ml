(* A builder value is the validated config record itself: every [with_]
   step is a functional update, so [to_config] is free and the legacy
   [Simulator.config] constructor trivially produces the same values. *)
type t = Simulator.config

let v ~horizon flows = Simulator.config ~horizon flows

let with_predictor predictor (t : t) = { t with Simulator.predictor }

let with_flows flows (t : t) =
  (* Re-run the constructor so the new roster is validated like the old. *)
  Simulator.config ~predictor:t.Simulator.predictor ?trace:t.Simulator.trace
    ?observer:t.Simulator.observer ?slot_probe:t.Simulator.slot_probe
    ?profiler:t.Simulator.profiler ~histograms:t.Simulator.histograms
    ~invariants:t.Simulator.invariants ~fast_path:t.Simulator.fast_path
    ?skip_stats:t.Simulator.skip_stats ~horizon:t.Simulator.horizon flows

let with_horizon horizon (t : t) =
  if horizon < 0 then
    Wfs_util.Error.invalid "Sim_config.with_horizon" "negative horizon";
  { t with Simulator.horizon }

let with_trace trace (t : t) = { t with Simulator.trace = Some trace }
let with_observer f (t : t) = { t with Simulator.observer = Some f }
let with_probe probe (t : t) = { t with Simulator.slot_probe = Some probe }
let with_profiler h (t : t) = { t with Simulator.profiler = Some h }
let with_histograms (t : t) = { t with Simulator.histograms = true }
let with_invariants (t : t) = { t with Simulator.invariants = true }
let with_fast_path fast_path (t : t) = { t with Simulator.fast_path }
let with_skip_stats k (t : t) = { t with Simulator.skip_stats = Some k }

let to_config (t : t) = t
let run sched (t : t) = Simulator.run t sched

let start ?metrics ?first_slot sched (t : t) =
  Simulator.Session.create ?metrics ?first_slot t sched
