(** Idealized Wireless Fair Queueing (Section 4).

    IWFQ packetizes the wireless fluid fairness model:

    - a parallel {e error-free} fluid reference ({!Fluid_ref}) with the same
      arrivals supplies the virtual time [v(t)];
    - every arriving packet creates a logical slot tagged
      [S = max(v(A), F_prev)], [F = S + 1/r_i] (equations 2–3);
    - each scheduling step first readjusts tags — lagging flows keep at most
      [B_i] slots with [F < v(t)] (excess slots, and a matching packet each,
      are deleted), and a flow leading by more than [l_i] has its head start
      tag clamped to [v(t) + l_i/r_i] (equation 4);
    - among backlogged flows whose channel is (predicted) good, the smallest
      service tag — the head slot's finish tag — transmits.  With
      [wf2q_selection] only slots whose fluid service has begun
      ([S ≤ v(t)]) are eligible, falling back to WFQ selection when none is.

    Because a denied flow's service tag does not change, a lagging flow
    regains precedence as soon as its channel turns good — the property the
    delay/throughput bounds of Section 5 rest on. *)

type t

val create : ?params:Params.iwfq -> ?naive:bool -> Params.flow array -> t
(** Flow ids must be [0..n-1] in order.  Default parameters:
    {!Params.iwfq_defaults}.  [naive] (default [false], for differential
    testing only) selects with the reference O(n_flows) scans instead of
    the backlog-indexed heap; both modes are byte-identical by
    construction and pinned to each other by the qcheck suite. *)

val instance : t -> Wireless_sched.instance

val virtual_time : t -> float
(** Current error-free virtual time [v(t)]. *)

val service_tag : t -> flow:int -> float
(** Finish tag of the flow's head slot; [infinity] when not backlogged. *)

val lag : t -> flow:int -> float
(** Packets by which the flow trails its error-free fluid service:
    [queue_length − fluid_queue_length] (positive = lagging, negative =
    leading), the Section 3 definition. *)

val slot_queue_length : t -> flow:int -> int

val fluid : t -> Fluid_ref.t
(** The internal error-free reference (read-only use). *)
