(** Per-flow performance accounting.

    Collects exactly the measures reported in the paper's tables: average
    delay of successfully transmitted packets [d̄_i], loss probability
    [l_i], maximum delay [d^max_i] and delay standard deviation [σ_i] —
    plus throughput and channel/occupancy counters used by the extra
    benches. *)

type t

val create : ?histograms:bool -> n_flows:int -> unit -> t
(** With [histograms] (default off, saving memory on long runs) per-flow
    delay histograms are kept and {!delay_percentile} becomes available. *)

val on_arrival : t -> flow:int -> unit
val on_deliver : t -> flow:int -> delay:int -> unit
val on_drop : t -> flow:int -> unit
val on_idle_slot : t -> unit

val on_idle_slots : t -> count:int -> unit
(** [count] idle slots at once — what the event-compressed fast path
    records for a skipped quiescent window; equals [count] calls to
    {!on_idle_slot}.
    @raise Invalid_argument on a negative count. *)

val on_busy_slot : t -> unit
val on_failed_attempt : t -> flow:int -> unit

val n_flows : t -> int
val arrivals : t -> flow:int -> int
val delivered : t -> flow:int -> int
val dropped : t -> flow:int -> int
val failed_attempts : t -> flow:int -> int

val mean_delay : t -> flow:int -> float
(** Over delivered packets; 0 when none. *)

val max_delay : t -> flow:int -> float
(** 0 when none delivered. *)

val stddev_delay : t -> flow:int -> float

val delay_percentile : t -> flow:int -> p:float -> float
(** [p] in [0,100].  Two empty-data conventions, deliberately distinct:

    - {b no samples}: the histogram exists but no packet was delivered —
      a statistical question with no answer, so the result is [nan]
      (matching {!Wfs_util.Stats.Summary.min} on an empty summary);
    - {b no histogram}: the metrics were created without
      [~histograms:true] — a configuration mistake, so this raises
      [Wfs_util.Error.Error] with kind [Bad_config] (rendered as such in
      runner failure tables).

    @raise Wfs_util.Error.Error (kind [Bad_config]) unless the metrics
    were created with [~histograms:true]. *)

val loss : t -> flow:int -> float
(** dropped / arrivals; 0 when no arrivals. *)

val drop_share : t -> flow:int -> float
(** dropped / (delivered + dropped): the fraction of packets that entered
    service (or expired) and were lost.  For saturated sources — whose
    arrivals exceed any possible service — this is the loss measure the
    paper reports (Example 4's sources 2 and 4). *)

val throughput : t -> flow:int -> slots:int -> float
(** delivered packets per slot over a horizon of [slots]. *)

val idle_slots : t -> int
val busy_slots : t -> int

val backlog_remaining : t -> flow:int -> int
(** arrivals − delivered − dropped: packets still queued at the end of the
    run (neither counted as delivered nor lost). *)

val absorb : t -> src:t -> map:(int -> int) -> unit
(** [absorb t ~src ~map] folds every per-flow accumulator of [src] into
    [t] — flow [i] of [src] lands on flow [map i] of [t] — and adds the
    idle/busy slot counters; [src] is not modified.  This is how
    {!Wfs_topo} banks a retired cell session's metrics into a
    topology-wide accumulator indexed by global flow id: local ids are
    remapped through [map], and absorbing into an untouched target flow
    copies the source accumulator exactly (so zero-mobility multi-cell
    runs render byte-identically to independent single-cell runs).
    [map] must be injective into [[0, n_flows t)]. *)

val to_json : t -> Wfs_util.Json.t
val of_json : Wfs_util.Json.t -> t option
(** Bit-exact round-trip used by the sweep checkpoint journal: a table
    rendered from [of_json (to_json m)] is byte-identical to one rendered
    from [m]. *)
