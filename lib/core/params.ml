(* Shared tolerance for comparisons between accumulated float tags; see the
   .mli for the §4.1 eligibility rationale. *)
let eps_tag = 1e-9

type drop_policy =
  | No_drop
  | Retx_limit of int
  | Delay_bound of int
  | Retx_or_delay of int * int

let validate_drop_policy = function
  | No_drop -> ()
  | Retx_limit k ->
      if k < 0 then Wfs_util.Error.invalid "Params" "negative retransmission limit"
  | Delay_bound d -> if d < 0 then Wfs_util.Error.invalid "Params" "negative delay bound"
  | Retx_or_delay (k, d) ->
      if k < 0 || d < 0 then Wfs_util.Error.invalid "Params" "negative drop limits"

type flow = { id : int; weight : float; drop : drop_policy; buffer : int option }

let flow ?(drop = No_drop) ?buffer ~id ~weight () =
  if weight <= 0. then Wfs_util.Error.invalid "Params.flow" "weight must be > 0";
  validate_drop_policy drop;
  (match buffer with
  | Some b when b <= 0 -> Wfs_util.Error.invalid "Params.flow" "buffer must be > 0"
  | Some _ | None -> ());
  { id; weight; drop; buffer }

type iwfq = { lag_total : float; lead : float array; wf2q_selection : bool }

let iwfq_defaults ~n_flows =
  {
    lag_total = 4. *. float_of_int n_flows;
    lead = Array.make n_flows 4.;
    wf2q_selection = false;
  }

let per_flow_lag t ~flows =
  let total_weight = Array.fold_left (fun acc f -> acc +. f.weight) 0. flows in
  Array.map
    (fun f ->
      let share = t.lag_total *. f.weight /. total_weight in
      Int.max 1 (int_of_float (floor share)))
    flows

type wps = {
  skip_on_predicted_error : bool;
  swap_intra : bool;
  swap_window : int option;
  swap_inter : bool;
  credits : bool;
  credit_limit : int;
  debit_limit : int;
  credit_per_frame : int option;
}

let validate_wps t =
  if t.credit_limit < 0 then Wfs_util.Error.invalid "Params" "negative credit limit";
  (match t.swap_window with
  | Some w when w < 1 -> Wfs_util.Error.invalid "Params" "swap window must be >= 1"
  | Some _ | None -> ());
  if t.debit_limit < 0 then Wfs_util.Error.invalid "Params" "negative debit limit";
  (match t.credit_per_frame with
  | Some k when k < 0 -> Wfs_util.Error.invalid "Params" "negative per-frame credit cap"
  | Some _ | None -> ());
  if t.swap_inter && not t.credits then
    Wfs_util.Error.invalid "Params" "inter-frame swapping requires credit accounting"

let blind_wrr =
  {
    skip_on_predicted_error = false;
    swap_intra = false;
    swap_window = None;
    swap_inter = false;
    credits = false;
    credit_limit = 0;
    debit_limit = 0;
    credit_per_frame = None;
  }

let wrr = { blind_wrr with skip_on_predicted_error = true }

let noswap ?(credit_limit = 4) () =
  {
    wrr with
    credits = true;
    credit_limit;
    debit_limit = 0;
  }

let swapw ?(credit_limit = 4) () = { (noswap ~credit_limit ()) with swap_intra = true }

let swapa ?(credit_limit = 4) ?(debit_limit = 4) ?credit_per_frame ?swap_window
    () =
  {
    skip_on_predicted_error = true;
    swap_intra = true;
    swap_window;
    swap_inter = true;
    credits = true;
    credit_limit;
    debit_limit;
    credit_per_frame;
  }
