(** Configuration types shared by the wireless schedulers.

    Terminology follows the paper: weights [r_i], the aggregate lag bound
    [B] (bits) split into per-flow bounds [b_i = B·r_i/Σr_j], per-flow lead
    bounds [l_i], and WPS credit/debit caps.  Packets are fixed-size
    ([L_P = 1] slot each), so bit bounds translate 1:1 into packet/slot
    counts here. *)

val eps_tag : float
(** Tolerance ([1e-9]) for comparisons between accumulated virtual-time
    tags.  The §4.1 eligibility test admits a slot when its start tag [S]
    satisfies [S <= v(t)]; both sides are sums of [1/r_i] terms computed in
    different orders, so an exact float comparison would make eligibility
    depend on rounding noise.  Every start-tag eligibility test (IWFQ's
    WF²Q-style selection, the WRR spreading frame) — and the other
    accumulated-tag tolerance in the core schedulers (CIF-Q's α-accounting)
    — compares through this single constant instead. *)

type drop_policy =
  | No_drop  (** keep retrying forever *)
  | Retx_limit of int
      (** maximum number of retransmissions; a packet is dropped after
          [limit + 1] failed attempts (the paper's Example 1 uses 2) *)
  | Delay_bound of int
      (** drop any packet that has been in the system longer than this many
          slots, even before reaching the head of line (Example 2 uses 100) *)
  | Retx_or_delay of int * int  (** whichever triggers first *)

val validate_drop_policy : drop_policy -> unit
(** @raise Invalid_argument on negative limits. *)

type flow = {
  id : int;
  weight : float;  (** the paper's [r_i]; must be positive *)
  drop : drop_policy;
  buffer : int option;
      (** maximum queue length in packets; arrivals beyond it are dropped
          on entry (the WFQ-style buffer overflow the paper contrasts with
          IWFQ's lag-bound discards).  [None] = unbounded. *)
}

val flow :
  ?drop:drop_policy -> ?buffer:int -> id:int -> weight:float -> unit -> flow
(** Default drop policy: [No_drop]; default buffer: unbounded.
    @raise Invalid_argument on [buffer <= 0]. *)

type iwfq = {
  lag_total : float;
      (** the paper's [B], in packets; per-flow lag cap is
          [B·r_i / Σ_j r_j] *)
  lead : float array;
      (** per-flow lead bound [l_i], in packets *)
  wf2q_selection : bool;
      (** restrict selection to slots whose error-free fluid service has
          started (the WF²Q adaptation mentioned in Section 4.1) *)
}

val iwfq_defaults : n_flows:int -> iwfq
(** [B = 4·n] packets, [l_i = 4] packets, WFQ-style selection. *)

val per_flow_lag : iwfq -> flows:flow array -> int array
(** [B_i] in whole packets (floor, at least 1), per Section 4.1 step 4a. *)

type wps = {
  skip_on_predicted_error : bool;
      (** [false] = Blind WRR behaviour: transmit into the error *)
  swap_intra : bool;  (** intra-frame slot swapping *)
  swap_window : int option;
      (** how far ahead in the frame an intra-frame swap may reach.
          [None] = the whole frame (the idealised scheduler evaluation);
          [Some 3] models the Section-6.2 MAC, where only the three
          pre-announced slots can react to a channel-good flag *)
  swap_inter : bool;
      (** cross-frame reallocation via the marker ring (full WPS / SwapA) *)
  credits : bool;  (** credit/debit accounting across frames *)
  credit_limit : int;  (** max positive credit per flow *)
  debit_limit : int;  (** max debt per flow; 0 = "credits but no debits" *)
  credit_per_frame : int option;
      (** optional cap on credits redeemable in a single frame — the
          amortised-compensation extension discussed at the end of
          Section 7; [None] redeems everything at once (paper default) *)
}

val validate_wps : wps -> unit
(** @raise Invalid_argument on negative limits or on [swap_inter] without
    [credits] (SwapA's debits are implicit in credit accounting). *)

val blind_wrr : wps
val wrr : wps
val noswap : ?credit_limit:int -> unit -> wps
val swapw : ?credit_limit:int -> unit -> wps

val swapa :
  ?credit_limit:int ->
  ?debit_limit:int ->
  ?credit_per_frame:int ->
  ?swap_window:int ->
  unit ->
  wps
(** Full WPS; default caps 4/4 as in the paper's examples, whole-frame
    swapping. *)
