(** Central scheduler registry: canonical paper names to constructors.

    Every wireless scheduler variant the evaluation exercises is registered
    here once, under its table row label (["SwapA-P"], ["IWFQ-I"],
    ["CIF-Q-P"], ["Blind WRR"], ["CSDPS"], ...) plus aliases (["WPS"] is the
    paper's name for the full predicted SwapA variant).  The bench, the CLI
    drivers and the comparative tests all resolve schedulers through
    {!find}/{!get}, so adding a scheduler to the whole evaluation pipeline
    is one {!register} call.

    Lookups are case-insensitive.  A mirror registry for the wireline
    reference schedulers lives at {!Wfs_wireline.Registry}. *)

type entry = {
  name : string;  (** canonical table label, e.g. ["SwapA-P"] *)
  aliases : string list;
  predictor : Wfs_channel.Predictor.kind;
      (** channel knowledge the variant runs with: [Perfect] for "-I" rows,
          [One_step] for "-P" rows, [Blind] for blind WRR *)
  make :
    ?credit_limit:int ->
    ?debit_limit:int ->
    ?limits:(int * int) array ->
    Params.flow array ->
    Wireless_sched.instance;
      (** scheduler constructor; [credit_limit]/[debit_limit] default to the
          paper's 4/4 where applicable, [limits] gives per-flow overrides
          (Example 6's sweep) *)
}

val register : entry -> unit
(** Add a scheduler to the registry.
    @raise Invalid_argument when the name or an alias (case-insensitively)
    collides with an existing registration. *)

val find : string -> entry option
(** Resolve a canonical name or alias, case-insensitively. *)

val get : string -> entry
(** Like {!find}.
    @raise Invalid_argument on an unknown name, listing the known ones. *)

val mem : string -> bool

val names : unit -> string list
(** Canonical names in registration order (built-ins first). *)

val table1 : unit -> entry list
(** The nine rows of the paper's Tables 1–4, in paper order. *)

val table1_extended : unit -> entry list
(** {!table1} plus the IWFQ-I / IWFQ-P rows the paper defines but does not
    simulate — the grid the bench regenerates. *)
