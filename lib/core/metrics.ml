module Summary = Wfs_util.Stats.Summary
module Histogram = Wfs_util.Stats.Histogram
module Json = Wfs_util.Json

type flow_acc = {
  delays : Summary.t;
  histogram : Histogram.t option;
  mutable arrivals : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable failed : int;
}

type t = { flows : flow_acc array; mutable idle : int; mutable busy : int }

let create ?(histograms = false) ~n_flows () =
  {
    flows =
      Array.init n_flows (fun _ ->
          {
            delays = Summary.create ();
            histogram = (if histograms then Some (Histogram.create ()) else None);
            arrivals = 0;
            delivered = 0;
            dropped = 0;
            failed = 0;
          });
    idle = 0;
    busy = 0;
  }

let acc t flow = t.flows.(flow)
let on_arrival t ~flow = (acc t flow).arrivals <- (acc t flow).arrivals + 1

let on_deliver t ~flow ~delay =
  let a = acc t flow in
  a.delivered <- a.delivered + 1;
  Summary.add a.delays (float_of_int delay);
  match a.histogram with
  | Some h -> Histogram.add h (float_of_int delay)
  | None -> ()

let on_drop t ~flow = (acc t flow).dropped <- (acc t flow).dropped + 1
let on_idle_slot t = t.idle <- t.idle + 1

let on_idle_slots t ~count =
  if count < 0 then Wfs_util.Error.invalid "Metrics.on_idle_slots" "negative count";
  t.idle <- t.idle + count

let on_busy_slot t = t.busy <- t.busy + 1
let on_failed_attempt t ~flow = (acc t flow).failed <- (acc t flow).failed + 1

let n_flows t = Array.length t.flows
let arrivals t ~flow = (acc t flow).arrivals
let delivered t ~flow = (acc t flow).delivered
let dropped t ~flow = (acc t flow).dropped
let failed_attempts t ~flow = (acc t flow).failed
let mean_delay t ~flow = Summary.mean (acc t flow).delays

let max_delay t ~flow =
  let a = acc t flow in
  if Summary.count a.delays = 0 then 0. else Summary.max a.delays

let stddev_delay t ~flow = Summary.stddev (acc t flow).delays

(* Two distinct "no data" situations, two conventions: a histogram with no
   samples is an empty {e measurement} and yields [nan] (the caller asked a
   statistical question with no answer); metrics created without
   [~histograms] are a {e configuration} mistake and raise through the
   typed taxonomy so runner failure tables classify it as Bad_config. *)
let delay_percentile t ~flow ~p =
  match (acc t flow).histogram with
  | Some h -> Histogram.percentile h p
  | None ->
      Wfs_util.Error.bad_config ~who:"Metrics.delay_percentile"
        "metrics were created without ~histograms:true"

let loss t ~flow =
  let a = acc t flow in
  if a.arrivals = 0 then 0. else float_of_int a.dropped /. float_of_int a.arrivals

let drop_share t ~flow =
  let a = acc t flow in
  let settled = a.delivered + a.dropped in
  if settled = 0 then 0. else float_of_int a.dropped /. float_of_int settled

let throughput t ~flow ~slots =
  if slots <= 0 then 0.
  else float_of_int (acc t flow).delivered /. float_of_int slots

let idle_slots t = t.idle
let busy_slots t = t.busy

let backlog_remaining t ~flow =
  let a = acc t flow in
  a.arrivals - a.delivered - a.dropped

(* Merging through Summary.merge/Histogram.merge keeps the "absorb into
   empty = exact copy" property the multi-cell zero-mobility byte-identity
   gate relies on: both merges copy the non-empty side's floats verbatim
   when the other side has no samples. *)
let absorb t ~src ~map =
  Array.iteri
    (fun i (s : flow_acc) ->
      let j = map i in
      let d = t.flows.(j) in
      t.flows.(j) <-
        {
          delays = Summary.merge d.delays s.delays;
          histogram =
            (match (d.histogram, s.histogram) with
            | Some a, Some b -> Some (Histogram.merge a b)
            | (Some _ as a), None -> a
            | None, (Some _ as b) -> b
            | None, None -> None);
          arrivals = d.arrivals + s.arrivals;
          delivered = d.delivered + s.delivered;
          dropped = d.dropped + s.dropped;
          failed = d.failed + s.failed;
        })
    src.flows;
  t.idle <- t.idle + src.idle;
  t.busy <- t.busy + src.busy

(* Checkpoint/resume serialization: every float goes through the
   shortest-exact encoder, so a journaled run renders byte-identically to
   a live one. *)

let flow_to_json a =
  Json.Obj
    (("delays", Summary.to_json a.delays)
    :: (match a.histogram with
       | None -> []
       | Some h -> [ ("histogram", Histogram.to_json h) ])
    @ [
        ("arrivals", Json.Int a.arrivals);
        ("delivered", Json.Int a.delivered);
        ("dropped", Json.Int a.dropped);
        ("failed", Json.Int a.failed);
      ])

let flow_of_json v =
  let ( let* ) = Option.bind in
  let* delays = Option.bind (Json.member "delays" v) Summary.of_json in
  let* histogram =
    match Json.member "histogram" v with
    | None -> Some None
    | Some h -> Option.map Option.some (Histogram.of_json h)
  in
  let* arrivals = Option.bind (Json.member "arrivals" v) Json.to_int in
  let* delivered = Option.bind (Json.member "delivered" v) Json.to_int in
  let* dropped = Option.bind (Json.member "dropped" v) Json.to_int in
  let* failed = Option.bind (Json.member "failed" v) Json.to_int in
  Some { delays; histogram; arrivals; delivered; dropped; failed }

let to_json t =
  Json.Obj
    [
      ("flows", Json.Arr (Array.to_list (Array.map flow_to_json t.flows)));
      ("idle", Json.Int t.idle);
      ("busy", Json.Int t.busy);
    ]

let of_json v =
  let ( let* ) = Option.bind in
  let* flows = Option.bind (Json.member "flows" v) Json.to_list in
  let* flows =
    List.fold_left
      (fun acc f ->
        match (acc, flow_of_json f) with
        | Some acc, Some f -> Some (f :: acc)
        | _ -> None)
      (Some []) flows
    |> Option.map (fun l -> Array.of_list (List.rev l))
  in
  let* idle = Option.bind (Json.member "idle" v) Json.to_int in
  let* busy = Option.bind (Json.member "busy" v) Json.to_int in
  Some { flows; idle; busy }
