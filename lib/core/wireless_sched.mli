(** Runtime interface every wireless scheduler implements.

    The {!Simulator} drives a scheduler through this record once per slot:
    arrivals are enqueued, then [select] picks the flow to transmit given
    the current channel {e predictions}, and the transmission outcome
    (decided by the true channel state) is reported back via [complete] /
    [fail] / [drop_head].  Schedulers own the per-flow packet queues so
    they can make backlog-aware decisions.

    {b Error convention.}  Queries where emptiness is an expected state
    return options ([head], [select]).  Outcome callbacks ([complete],
    [fail], [drop_head]) may only refer to the packet the scheduler just
    offered via [select]/[head]; calling them on a flow with an empty
    queue is a driver bug and raises
    [Invalid_argument "<Module>.<function>: empty queue"] — uniformly
    worded across implementations so tests can assert on it.  Contrast
    {!Wfs_wireline.Sched_intf}, whose [dequeue] returns [None] instead of
    raising, because there an empty queue is a normal idle condition. *)

type instance = {
  name : string;
  enqueue : slot:int -> Wfs_traffic.Packet.t -> unit;
      (** A packet arrived at the start of [slot]. *)
  select : slot:int -> predicted_good:(int -> bool) -> int option;
      (** Flow chosen to transmit in [slot], or [None] to idle.  Called
          exactly once per slot, after all enqueues for that slot. *)
  head : int -> Wfs_traffic.Packet.t option;
      (** Head-of-line packet of a flow. *)
  complete : flow:int -> unit;
      (** The selected flow's head packet was delivered: consume it. *)
  fail : flow:int -> unit;
      (** The transmission failed; the packet stays at the head for
          retransmission. *)
  drop_head : flow:int -> unit;
      (** Drop the head packet (retransmission limit exceeded). *)
  drop_expired : flow:int -> now:int -> bound:int -> Wfs_traffic.Packet.t list;
      (** Drop every queued packet older than [bound] slots; returns the
          dropped packets (used for delay-bound loss accounting). *)
  queue_length : int -> int;
  on_slot_end : slot:int -> unit;
      (** End-of-slot housekeeping (e.g. advancing IWFQ's fluid
          reference). *)
}
