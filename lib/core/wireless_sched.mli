(** Runtime interface every wireless scheduler implements.

    The {!Simulator} drives a scheduler through this record once per slot:
    arrivals are enqueued, then [select] picks the flow to transmit given
    the current channel {e predictions}, and the transmission outcome
    (decided by the true channel state) is reported back via [complete] /
    [fail] / [drop_head].  Schedulers own the per-flow packet queues so
    they can make backlog-aware decisions.

    {b Error convention.}  Queries where emptiness is an expected state
    return options ([head], [select]).  Outcome callbacks ([complete],
    [fail], [drop_head]) may only refer to the packet the scheduler just
    offered via [select]/[head]; calling them on a flow with an empty
    queue is a driver bug and raises
    [Invalid_argument "<Module>.<function>: empty queue"] — uniformly
    worded across implementations so tests can assert on it.  Contrast
    {!Wfs_wireline.Sched_intf}, whose [dequeue] returns [None] instead of
    raising, because there an empty queue is a normal idle condition. *)

(** Read-only introspection hooks for the runtime {!Invariant} monitor.
    Every field is optional — a scheduler exposes exactly the quantities
    whose paper-stated safety properties apply to it — and reading a
    probe must not mutate scheduler state. *)
type probe = {
  virtual_time : (unit -> float) option;
      (** Global virtual time (IWFQ's fluid reference, Section 4.1):
          checked finite and monotonically non-decreasing. *)
  finish_tag : (int -> float) option;
      (** Per-flow service/finish tag: checked never-NaN, and finite for
          every backlogged flow (Section 4.1's slot tagging; CIF-Q's
          per-flow reference virtual time). *)
  credit : (int -> int * int * int) option;
      (** Per-flow [(balance, credit_limit, debit_limit)]: balance checked
          within [[-debit_limit, credit_limit]] (Section 7's bounded
          credit/debit accounting). *)
  lag_sum : (unit -> int) option;
      (** Sum of per-flow lags (CIF-Q): its per-slot change is checked in
          {m \{0, +1\}} — selection conserves total lag (+1 to the
          reference pick, −1 to the transmitter) and only a failed
          transmission returns (+1) the transmitter's debit. *)
  work_conserving : bool;
      (** When true, an idle slot while some backlogged flow is predicted
          good is a violation (the paper's work-conservation property for
          IWFQ/CIF-Q; false for WRR/WPS frame membership and CSDPS
          backoff, which idle by design). *)
}

val no_probe : probe
(** All fields [None]/[false] — the default for hand-built instances. *)

(** {1 Handoff state carry (Section 5 / Section 7)}

    When a flow hands off between cells ({!Wfs_topo}), the compensation
    state the paper attaches to the {e flow} — its §5 lag/lead (service
    error accrued against the error-free reference) and its §7 credit
    balance — must move with it, or fairness resets at every cell
    boundary.  Everything else a scheduler keeps is {e cell-local}
    (virtual times, frame position, α-accounting, predictor history) and
    is deliberately {b not} carried: a flow arrives at the new base
    station with its debt, not with the old cell's clock. *)

type carry = {
  lag : float;
      (** §5 lag/lead in packets: positive = the flow is owed service
          (lagging), negative = leading.  Float because IWFQ-family lags
          are virtual-time-denominated; integral schedulers round. *)
  credit : int;  (** §7 credit balance: positive = credit, negative = debt. *)
}

val carry_zero : carry
(** Zero lag, zero credit — what a freshly admitted flow carries. *)

type handoff = {
  export : flow:int -> carry;
      (** Serialize the flow's compensation state out of this scheduler.
          Read-only: exporting must not mutate scheduler state (the same
          contract as {!probe}). *)
  import : flow:int -> carry -> carry;
      (** Fold a carried state into this scheduler's own accounting,
          clamped to its §5/§7 bounds, and return the {e accepted} carry
          — so a topology ledger can account for what clamping truncated
          ([carried = accepted + truncated]).  Must only be called before
          the flow's first slot in this scheduler. *)
}

(** {1 Quiescent-slot compression}

    A slot is {e quiescent} for a scheduler when it holds no backlog: no
    enqueue happens, [select] returns [None], and the only state that
    moves is whatever per-slot clockwork the discipline runs while idle
    (IWFQ's fluid reference slot counter, CSDPS's round-robin rotation).
    The event-compressed simulator asks the scheduler to advance that
    clockwork across a whole idle window in closed form instead of
    calling [select]/[on_slot_end] once per slot. *)
type quiescent = {
  backlog_empty : unit -> bool;
      (** [true] iff no flow has a queued packet.  Read-only.  While this
          holds and no arrival intervenes, every slot is quiescent. *)
  advance_quiescent : now:int -> slots:int -> int;
      (** [advance_quiescent ~now ~slots] advances the scheduler's idle
          clockwork as if the per-slot driver ran [slots] consecutive
          empty slots starting at slot [now] (no enqueues, idle selects,
          end-of-slot hooks), and returns how many slots were actually
          absorbed, in [0..slots].  A return of [k < slots] tells the
          driver to fall back to the per-slot path at slot [now + k];
          returning [0] is always safe.  Must leave the scheduler
          byte-identical (selections, tags, credits, metrics thereafter)
          to the stepped execution — the differential lockstep suite
          enforces this per scheduler. *)
}

type instance = {
  name : string;
  enqueue : slot:int -> Wfs_traffic.Packet.t -> unit;
      (** A packet arrived at the start of [slot]. *)
  select : slot:int -> predicted_good:(int -> bool) -> int option;
      (** Flow chosen to transmit in [slot], or [None] to idle.  Called
          exactly once per slot, after all enqueues for that slot. *)
  head : int -> Wfs_traffic.Packet.t option;
      (** Head-of-line packet of a flow. *)
  complete : flow:int -> unit;
      (** The selected flow's head packet was delivered: consume it. *)
  fail : flow:int -> unit;
      (** The transmission failed; the packet stays at the head for
          retransmission. *)
  drop_head : flow:int -> unit;
      (** Drop the head packet (retransmission limit exceeded). *)
  drop_expired : flow:int -> now:int -> bound:int -> Wfs_traffic.Packet.t list;
      (** Drop every queued packet older than [bound] slots; returns the
          dropped packets (used for delay-bound loss accounting). *)
  queue_length : int -> int;
  on_slot_end : slot:int -> unit;
      (** End-of-slot housekeeping (e.g. advancing IWFQ's fluid
          reference). *)
  probe : probe;
      (** Introspection for the runtime invariant monitor; {!no_probe}
          when the scheduler exposes nothing. *)
  handoff : handoff option;
      (** Handoff state carry, for schedulers whose compensation state is
          flow-attachable ({!Wps} credits, {!Cifq} lag).  [None] when the
          scheduler has no carryable per-flow state (IWFQ derives lag
          from its fluid reference; CSDPS grants are positional). *)
  quiescent : quiescent option;
      (** Closed-form idle-window advancement; [None] forces the per-slot
          path (the simulator's fast path degenerates to the reference
          loop for such schedulers). *)
}
