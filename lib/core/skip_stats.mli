(** Fast-path skip telemetry.

    Counts the quiescent-slot windows absorbed in closed form by the
    event-compressed engine ({!Simulator.advance}'s fast path).  All updates
    happen at window granularity — one counter bump and one histogram
    observation per absorbed window, one counter bump per declined window —
    never per slot, so attaching a collector keeps the engine on the
    compressed path.  Unlike traces, probes, observers and profilers, a
    collector does NOT degenerate the fast path to the reference loop. *)

type t

val create : unit -> t

(** {1 Recording (called by the simulator)} *)

val note_window : t -> slots:int -> unit
(** An absorbed quiescent window of [slots] slots was skipped in closed
    form. *)

val note_declined : t -> unit
(** The engine reached a candidate window boundary but could not absorb it
    (backlog pending or the next event was immediate). *)

val note_engine : t -> slots:int -> unit
(** [slots] slots were advanced under the compressed engine (absorbed or
    stepped one-by-one). *)

val note_reference : t -> slots:int -> unit
(** [slots] slots were advanced by the reference loop (fast path off or
    degenerated). *)

(** {1 Accessors} *)

val absorbed_windows : t -> int
val absorbed_slots : t -> int
val declined_windows : t -> int
val engine_slots : t -> int
val reference_slots : t -> int
val max_window : t -> int

val window_hist : t -> Wfs_util.Stats.Histogram.t
(** Histogram of absorbed-window lengths (bin width 16 slots). *)

val total_slots : t -> int

val quiescence_ratio : t -> float
(** Absorbed slots over total slots advanced; 0 when nothing ran. *)

val compressed : t -> bool
(** True iff every advanced slot went through the compressed engine. *)

val merge : t -> t -> t
(** Fresh collector holding the sum of both; [max_window] is the max. *)

val to_json : t -> Wfs_util.Json.t

val of_json : Wfs_util.Json.t -> t option
(** Bit-exact round-trip of {!to_json}. *)
