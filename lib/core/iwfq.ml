module Packet = Wfs_traffic.Packet

type flow_state = {
  cfg : Params.flow;
  packets : Packet.t Queue.t;
  slots : Slot_queue.t;
}

type t = {
  flows : flow_state array;
  fluid : Fluid_ref.t;
  params : Params.iwfq;
  lag_caps : int array;  (* B_i in packets *)
}

let create ?params flows =
  let n = Array.length flows in
  Array.iteri
    (fun i (f : Params.flow) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Iwfq.create")
    flows;
  let params =
    match params with Some p -> p | None -> Params.iwfq_defaults ~n_flows:n
  in
  if Array.length params.lead <> n then
    Wfs_util.Error.invalid "Iwfq.create" "lead bounds must match flow count";
  let weights = Array.map (fun (f : Params.flow) -> f.weight) flows in
  {
    flows =
      Array.map
        (fun (cfg : Params.flow) ->
          {
            cfg;
            packets = Queue.create ();
            slots = Slot_queue.create ~weight:cfg.weight;
          })
        flows;
    fluid = Fluid_ref.create ~weights ();
    params;
    lag_caps = Params.per_flow_lag params ~flows;
  }

let virtual_time t = Fluid_ref.virtual_time t.fluid

let service_tag t ~flow =
  let fs = t.flows.(flow) in
  if Queue.is_empty fs.packets then infinity
  else
    match Slot_queue.head fs.slots with
    | Some s -> s.Slot_queue.finish
    | None -> infinity

let lag t ~flow =
  let fs = t.flows.(flow) in
  float_of_int (Queue.length fs.packets) -. Fluid_ref.queue t.fluid ~flow

let slot_queue_length t ~flow = Slot_queue.length t.flows.(flow).slots
let fluid t = t.fluid

let enqueue t ~slot:_ (pkt : Packet.t) =
  let fs = t.flows.(pkt.flow) in
  Fluid_ref.add_arrivals t.fluid ~flow:pkt.flow ~count:1;
  ignore (Slot_queue.add fs.slots ~v:(Fluid_ref.virtual_time t.fluid));
  Queue.push pkt fs.packets

(* Drop the newest packet so the flow keeps its earliest (lowest-tag)
   slots; used when the lag bound deletes slots. *)
let drop_newest_packet fs =
  let n = Queue.length fs.packets in
  if n > 0 then begin
    (* Queue has no remove-from-tail; rotate n-1 elements. *)
    let keep = Queue.create () in
    for _ = 1 to n - 1 do
      match Queue.take_opt fs.packets with
      | Some pkt -> Queue.push pkt keep
      | None -> ()
    done;
    ignore (Queue.take_opt fs.packets);
    Queue.transfer keep fs.packets
  end

let readjust t =
  let v = Fluid_ref.virtual_time t.fluid in
  Array.iteri
    (fun i fs ->
      (* Lag bound: retain at most B_i lagging slots (Section 4.1, 4a). *)
      let deleted =
        Slot_queue.trim_lagging fs.slots ~v ~max_lagging:t.lag_caps.(i)
      in
      for _ = 1 to deleted do
        drop_newest_packet fs
      done;
      (* Lead bound: clamp the head tags (Section 4.1, 4b). *)
      ignore
        (Slot_queue.clamp_lead fs.slots ~v ~max_lead:t.params.lead.(i)
           ~weight:fs.cfg.weight))
    t.flows

let select t ~slot:_ ~predicted_good =
  readjust t;
  let v = Fluid_ref.virtual_time t.fluid in
  let eligible_start fs =
    match Slot_queue.head fs.slots with
    | Some s -> s.Slot_queue.start <= v +. 1e-9
    | None -> false
  in
  let best restrict_eligible =
    let best = ref None in
    Array.iteri
      (fun i fs ->
        if
          (not (Queue.is_empty fs.packets))
          && (not (Slot_queue.is_empty fs.slots))
          && predicted_good i
          && ((not restrict_eligible) || eligible_start fs)
        then begin
          let tag = service_tag t ~flow:i in
          match !best with
          | Some (_, best_tag) when best_tag <= tag -> ()
          | Some _ | None -> best := Some (i, tag)
        end)
      t.flows;
    Option.map fst !best
  in
  if t.params.wf2q_selection then
    match best true with Some f -> Some f | None -> best false
  else best false

let head t flow = Queue.peek_opt t.flows.(flow).packets

let complete t ~flow =
  let fs = t.flows.(flow) in
  (match Slot_queue.pop_front fs.slots with
  | Some _ -> ()
  | None -> Wfs_util.Error.empty_queue "Iwfq.complete");
  match Queue.pop fs.packets with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Iwfq.complete"
  | _pkt -> ()

let fail _t ~flow:_ = ()

(* Head packet dropped (e.g. retransmission limit): the packet leaves but
   the flow keeps its earliest slot; the newest slot is removed instead to
   restore |slots| = |packets| (Section 4.2's dynamic slot/packet
   mapping). *)
let drop_head t ~flow =
  let fs = t.flows.(flow) in
  (match Queue.pop fs.packets with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Iwfq.drop_head"
  | _ -> ());
  ignore (Slot_queue.pop_back fs.slots)

let drop_expired t ~flow ~now ~bound =
  let fs = t.flows.(flow) in
  let dropped = ref [] in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt fs.packets with
    | Some pkt when Packet.age pkt ~now > bound ->
        ignore (Queue.take_opt fs.packets);
        ignore (Slot_queue.pop_back fs.slots);
        dropped := pkt :: !dropped
    | Some _ | None -> continue := false
  done;
  List.rev !dropped

let queue_length t flow = Queue.length t.flows.(flow).packets
let on_slot_end t ~slot:_ = Fluid_ref.step t.fluid

let instance t =
  {
    Wireless_sched.name = "IWFQ";
    enqueue = (fun ~slot pkt -> enqueue t ~slot pkt);
    select = (fun ~slot ~predicted_good -> select t ~slot ~predicted_good);
    head = head t;
    complete = (fun ~flow -> complete t ~flow);
    fail = (fun ~flow -> fail t ~flow);
    drop_head = (fun ~flow -> drop_head t ~flow);
    drop_expired = (fun ~flow ~now ~bound -> drop_expired t ~flow ~now ~bound);
    queue_length = queue_length t;
    on_slot_end = (fun ~slot -> on_slot_end t ~slot);
    probe =
      {
        Wireless_sched.no_probe with
        virtual_time = Some (fun () -> virtual_time t);
        finish_tag = Some (fun flow -> service_tag t ~flow);
        work_conserving = true;
      };
  }
