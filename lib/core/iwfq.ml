module Packet = Wfs_traffic.Packet
module Deque = Wfs_util.Deque
module Flow_heap = Wfs_util.Flow_heap
module Flow_set = Wfs_util.Flow_set

type flow_state = {
  cfg : Params.flow;
  packets : Packet.t Deque.t;
  slots : Slot_queue.t;
}

(* Selection is backlog-indexed: [backlog] holds exactly the flows with a
   non-empty queue (|slots| = |packets|, so one index covers both) and
   [heap] keys them by head-slot finish tag, lowest flow id on ties — the
   same flow the naive ascending-id full scan picks.  [naive = true]
   switches [readjust]/[select] back to those O(n_flows) scans; the
   differential qcheck suite drives both modes through identical operation
   sequences and requires identical selections. *)
type t = {
  flows : flow_state array;
  fluid : Fluid_ref.t;
  params : Params.iwfq;
  lag_caps : int array;  (* B_i in packets; always >= 1 (Params.per_flow_lag) *)
  backlog : Flow_set.t;
  heap : Flow_heap.t;
  naive : bool;
  mutable pred : int -> bool;  (* current slot's predicate, during select *)
  mutable cur_v : float;  (* virtual time, for the eligibility accept *)
  mutable accept_eligible : int -> bool;  (* preallocated closure *)
}

let no_pred (_ : int) = false

let create ?params ?(naive = false) flows =
  let n = Array.length flows in
  Array.iteri
    (fun i (f : Params.flow) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Iwfq.create")
    flows;
  let params =
    match params with Some p -> p | None -> Params.iwfq_defaults ~n_flows:n
  in
  if Array.length params.lead <> n then
    Wfs_util.Error.invalid "Iwfq.create" "lead bounds must match flow count";
  let weights = Array.map (fun (f : Params.flow) -> f.weight) flows in
  let dummy = Packet.make ~flow:0 ~seq:0 ~arrival:0 () in
  let t =
    {
      flows =
        Array.map
          (fun (cfg : Params.flow) ->
            {
              cfg;
              packets = Deque.create ~dummy ();
              slots = Slot_queue.create ~weight:cfg.weight;
            })
          flows;
      fluid = Fluid_ref.create ~weights ();
      params;
      lag_caps = Params.per_flow_lag params ~flows;
      backlog = Flow_set.create ~n;
      heap = Flow_heap.create ~n;
      naive;
      pred = no_pred;
      cur_v = 0.;
      accept_eligible = no_pred;
    }
  in
  t.accept_eligible <-
    (fun i ->
      t.pred i
      &&
      match Slot_queue.head t.flows.(i).slots with
      | Some s -> s.Slot_queue.start <= t.cur_v +. Params.eps_tag
      | None -> false);
  t

let virtual_time t = Fluid_ref.virtual_time t.fluid

let service_tag t ~flow =
  let fs = t.flows.(flow) in
  if Deque.is_empty fs.packets then infinity
  else
    match Slot_queue.head fs.slots with
    | Some s -> s.Slot_queue.finish
    | None -> infinity

let lag t ~flow =
  let fs = t.flows.(flow) in
  float_of_int (Deque.length fs.packets) -. Fluid_ref.queue t.fluid ~flow

let slot_queue_length t ~flow = Slot_queue.length t.flows.(flow).slots
let fluid t = t.fluid

(* Re-index a flow whose head slot (or emptiness) may have changed. *)
let refresh_flow t i =
  let fs = t.flows.(i) in
  match Slot_queue.head fs.slots with
  | Some s ->
      Flow_set.add t.backlog i;
      Flow_heap.set t.heap ~flow:i ~tag:s.Slot_queue.finish
  | None ->
      Flow_set.remove t.backlog i;
      Flow_heap.remove t.heap ~flow:i

(* A drop from the queue tail leaves the head tag alone; only emptiness can
   change the index. *)
let deindex_if_empty t i =
  if Slot_queue.is_empty t.flows.(i).slots then begin
    Flow_set.remove t.backlog i;
    Flow_heap.remove t.heap ~flow:i
  end

let enqueue t ~slot:_ (pkt : Packet.t) =
  let fs = t.flows.(pkt.flow) in
  Fluid_ref.add_arrivals t.fluid ~flow:pkt.flow ~count:1;
  ignore (Slot_queue.add fs.slots ~v:(Fluid_ref.virtual_time t.fluid));
  Deque.push_back fs.packets pkt;
  (* The head slot only changes when the queue was empty. *)
  if Deque.length fs.packets = 1 then refresh_flow t pkt.flow

(* Drop the newest packet so the flow keeps its earliest (lowest-tag)
   slots; used when the lag bound deletes slots.  O(1) on the deque — the
   former [Queue] rotation was O(queue) per deleted slot. *)
let drop_newest_packet fs = ignore (Deque.pop_back fs.packets)

(* Lag and lead bounds for one flow (Section 4.1, steps 4a-4b).  The lag
   caps are >= 1, so a trim never deletes the head slot and never empties
   the flow; only a lead clamp moves the head tags. *)
let readjust_flow t i fs ~v =
  let deleted =
    Slot_queue.trim_lagging fs.slots ~v ~max_lagging:t.lag_caps.(i)
  in
  for _ = 1 to deleted do
    drop_newest_packet fs
  done;
  if Slot_queue.clamp_lead fs.slots ~v ~max_lead:t.params.lead.(i)
       ~weight:fs.cfg.weight
     && not t.naive
  then refresh_flow t i

let readjust t =
  let v = Fluid_ref.virtual_time t.fluid in
  if t.naive then
    (* Reference path: visit every flow, as the pre-index code did.  The
       extra visits are no-ops (empty slot queues trim and clamp to
       nothing), which is exactly why the indexed path below is
       byte-identical. *)
    Array.iteri (fun i fs -> readjust_flow t i fs ~v) t.flows
  else
    for k = 0 to Flow_set.cardinal t.backlog - 1 do
      let i = Flow_set.get t.backlog k in
      readjust_flow t i t.flows.(i) ~v
    done

(* Reference selection: the naive ascending-id scan keeping the first
   strictly smaller tag (= lowest id on ties).  Kept as the executable
   specification the heap path is pinned to by the differential tests. *)
let select_naive t ~predicted_good ~v =
  let eligible_start fs =
    match Slot_queue.head fs.slots with
    | Some s -> s.Slot_queue.start <= v +. Params.eps_tag
    | None -> false
  in
  let best restrict_eligible =
    let best = ref None in
    Array.iteri
      (fun i fs ->
        if
          (not (Deque.is_empty fs.packets))
          && (not (Slot_queue.is_empty fs.slots))
          && predicted_good i
          && ((not restrict_eligible) || eligible_start fs)
        then begin
          let tag = service_tag t ~flow:i in
          match !best with
          | Some (_, best_tag) when best_tag <= tag -> ()
          | Some _ | None -> best := Some (i, tag)
        end)
      t.flows;
    Option.map fst !best
  in
  if t.params.wf2q_selection then
    match best true with Some f -> Some f | None -> best false
  else best false

let[@hot] select t ~slot:_ ~predicted_good =
  readjust t;
  let v = Fluid_ref.virtual_time t.fluid in
  if t.naive then select_naive t ~predicted_good ~v
  else begin
    t.pred <- predicted_good;
    t.cur_v <- v;
    let f =
      if t.params.wf2q_selection then begin
        let f = Flow_heap.min_accept t.heap ~accept:t.accept_eligible in
        if f >= 0 then f else Flow_heap.min_accept t.heap ~accept:predicted_good
      end
      else Flow_heap.min_accept t.heap ~accept:predicted_good
    in
    t.pred <- no_pred;
    if f < 0 then None else Some f
  end

let head t flow = Deque.peek_front t.flows.(flow).packets

let complete t ~flow =
  let fs = t.flows.(flow) in
  (match Slot_queue.pop_front fs.slots with
  | Some _ -> ()
  | None -> Wfs_util.Error.empty_queue "Iwfq.complete");
  (match Deque.pop_front fs.packets with
  | Some _ -> ()
  | None -> Wfs_util.Error.empty_queue "Iwfq.complete");
  refresh_flow t flow

let fail _t ~flow:_ = ()

(* Head packet dropped (e.g. retransmission limit): the packet leaves but
   the flow keeps its earliest slot; the newest slot is removed instead to
   restore |slots| = |packets| (Section 4.2's dynamic slot/packet
   mapping). *)
let drop_head t ~flow =
  let fs = t.flows.(flow) in
  (match Deque.pop_front fs.packets with
  | Some _ -> ()
  | None -> Wfs_util.Error.empty_queue "Iwfq.drop_head");
  ignore (Slot_queue.pop_back fs.slots);
  deindex_if_empty t flow

let rec drop_expired_loop fs ~now ~bound acc =
  match Deque.peek_front fs.packets with
  | Some pkt when Packet.age pkt ~now > bound ->
      ignore (Deque.pop_front fs.packets);
      ignore (Slot_queue.pop_back fs.slots);
      drop_expired_loop fs ~now ~bound (pkt :: acc)
  | Some _ | None -> List.rev acc

let drop_expired t ~flow ~now ~bound =
  let fs = t.flows.(flow) in
  let dropped = drop_expired_loop fs ~now ~bound [] in
  deindex_if_empty t flow;
  dropped

let queue_length t flow = Deque.length t.flows.(flow).packets
let on_slot_end t ~slot:_ = Fluid_ref.step t.fluid

(* An empty real backlog does not mean an empty fluid reference: the fluid
   server drains a packet's worth per busy slot, so it can lag the real
   system by a few slots.  Step it per-slot while it still carries fluid
   (each such step moves v and service, observable via the probe and
   packet tags), then collapse the genuinely dead remainder into one slot
   counter addition. *)
let[@hot] advance_quiescent t ~now:_ ~slots =
  let k = ref 0 in
  while !k < slots && Fluid_ref.is_busy t.fluid do
    Fluid_ref.step t.fluid;
    incr k
  done;
  if !k < slots then Fluid_ref.skip_idle t.fluid ~slots:(slots - !k);
  slots

let instance t =
  {
    Wireless_sched.name = "IWFQ";
    enqueue = (fun ~slot pkt -> enqueue t ~slot pkt);
    select = (fun ~slot ~predicted_good -> select t ~slot ~predicted_good);
    head = head t;
    complete = (fun ~flow -> complete t ~flow);
    fail = (fun ~flow -> fail t ~flow);
    drop_head = (fun ~flow -> drop_head t ~flow);
    drop_expired = (fun ~flow ~now ~bound -> drop_expired t ~flow ~now ~bound);
    queue_length = queue_length t;
    on_slot_end = (fun ~slot -> on_slot_end t ~slot);
    probe =
      {
        Wireless_sched.no_probe with
        virtual_time = Some (fun () -> virtual_time t);
        finish_tag = Some (fun flow -> service_tag t ~flow);
        work_conserving = true;
      };
    (* IWFQ's lag is derived (real queue vs. fluid-reference queue), not a
       flow-attached account: there is nothing to serialize that survives
       leaving this cell's fluid reference behind. *)
    handoff = None;
    quiescent =
      Some
        {
          backlog_empty = (fun () -> Flow_set.cardinal t.backlog = 0);
          advance_quiescent =
            (fun ~now ~slots -> advance_quiescent t ~now ~slots);
        };
  }
