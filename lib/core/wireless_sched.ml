type probe = {
  virtual_time : (unit -> float) option;
  finish_tag : (int -> float) option;
  credit : (int -> int * int * int) option;
  lag_sum : (unit -> int) option;
  work_conserving : bool;
}

let no_probe =
  {
    virtual_time = None;
    finish_tag = None;
    credit = None;
    lag_sum = None;
    work_conserving = false;
  }

type carry = { lag : float; credit : int }

let carry_zero = { lag = 0.; credit = 0 }

type handoff = {
  export : flow:int -> carry;
  import : flow:int -> carry -> carry;
}

type quiescent = {
  backlog_empty : unit -> bool;
  advance_quiescent : now:int -> slots:int -> int;
}

type instance = {
  name : string;
  enqueue : slot:int -> Wfs_traffic.Packet.t -> unit;
  select : slot:int -> predicted_good:(int -> bool) -> int option;
  head : int -> Wfs_traffic.Packet.t option;
  complete : flow:int -> unit;
  fail : flow:int -> unit;
  drop_head : flow:int -> unit;
  drop_expired : flow:int -> now:int -> bound:int -> Wfs_traffic.Packet.t list;
  queue_length : int -> int;
  on_slot_end : slot:int -> unit;
  probe : probe;
  handoff : handoff option;
  quiescent : quiescent option;
}
