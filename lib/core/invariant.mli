(** Runtime monitors for the paper's scheduler safety properties.

    A monitor is attached to one simulation run ({!Simulator.config}'s
    [invariants] flag) and checked once per slot, after the slot's
    transmission outcome and [on_slot_end] housekeeping.  Each check reads
    the scheduler's {!Wireless_sched.probe} — schedulers that do not
    expose a quantity are simply not checked for it — and a violation
    raises {!Wfs_util.Error.Error} with kind [Invariant_violation],
    carrying the slot, the scheduler name, and the paper section the
    property comes from.

    Checked properties:

    - {b virtual-time monotonicity} — the fluid reference's virtual time
      is finite and never decreases (Section 4.1).
    - {b finish-tag sanity} — per-flow service/finish tags are never NaN,
      and finite for every backlogged flow (Sections 4.1, 5).
    - {b credit bounds} — every flow's credit balance stays within
      [[-debit_limit, credit_limit]] (Section 7).
    - {b lag conservation} — the sum of per-flow lags changes by 0 or +1
      per slot: selection moves lag between the reference pick and the
      transmitter without creating any, and only a failed transmission
      returns the transmitter's debit (Section 5 / CIF-Q).
    - {b work conservation} — a scheduler that declares itself
      work-conserving may not idle a slot while some backlogged flow is
      predicted clean (Sections 4, 5). *)

type t

val create : unit -> t
(** A fresh monitor (no history).  Use one per run — the monotonicity and
    lag-delta checks compare against the previous slot of the same run. *)

val check :
  t ->
  slot:int ->
  sched:Wireless_sched.instance ->
  n_flows:int ->
  predicted_good:(int -> bool) ->
  selected:int option ->
  unit
(** Check every property [sched.probe] exposes for the slot that just
    ended.  [predicted_good] and [selected] must be the prediction
    function and selection actually used for that slot.
    @raise Wfs_util.Error.Error (kind [Invariant_violation]) on the first
    violated property. *)

val check_carry :
  who:string ->
  context:(string * string) list ->
  carried:Wireless_sched.carry ->
  accepted:Wireless_sched.carry ->
  unit
(** {b Carry conservation} (Section 5 / Section 7): when a handoff —
    including a chaos-layer re-home after a cell crash — imports
    compensation state, the accepted carry may only clamp the carried one
    toward zero: the signs must agree (or a side be zero), [|lag|] may
    not grow beyond a half-transmission of import rounding, and [|credit|]
    may not grow at all.  Stateless, so it also covers flows re-homed
    from a crashed cell whose importing scheduler never saw the exporter.
    [context] is prepended to the violation's context (cell, flow, ...).
    @raise Wfs_util.Error.Error (kind [Invariant_violation]). *)
