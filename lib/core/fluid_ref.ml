type t = {
  capacity : float;
  weights : float array;
  queue : float array;  (* fluid backlog, packets *)
  service : float array;
  mutable v : float;
  mutable slot : int;
}

let eps = 1e-12

let create ?(capacity = 1.0) ~weights () =
  if capacity <= 0. then Wfs_util.Error.invalid "Fluid_ref.create" "capacity must be > 0";
  Array.iter
    (fun w -> if w <= 0. then Wfs_util.Error.invalid "Fluid_ref.create" "weights must be > 0")
    weights;
  let n = Array.length weights in
  {
    capacity;
    weights = Array.copy weights;
    queue = Array.make n 0.;
    service = Array.make n 0.;
    v = 0.;
    slot = 0;
  }

let n_flows t = Array.length t.weights

let add_arrivals t ~flow ~count =
  if count < 0 then Wfs_util.Error.invalid "Fluid_ref.add_arrivals" "negative count";
  t.queue.(flow) <- t.queue.(flow) +. float_of_int count

let virtual_time t = t.v

(* Water-filling: serve the backlogged set at proportional rates until
   either the slot's capacity is exhausted or some flow empties; in the
   latter case redistribute among the survivors.  Advancing the virtual
   time by dv grants each backlogged flow exactly r_i * dv packets. *)
let step t =
  let n = Array.length t.weights in
  let capacity_left = ref t.capacity in
  let continue = ref true in
  while !continue && !capacity_left > eps do
    let sum_active = ref 0. in
    for i = 0 to n - 1 do
      if t.queue.(i) > eps then sum_active := !sum_active +. t.weights.(i)
    done;
    if !sum_active <= 0. then continue := false
    else begin
      (* Largest dv possible before capacity runs out ... *)
      let dv_capacity = !capacity_left /. !sum_active in
      (* ... or before the flow with the smallest normalised backlog drains. *)
      let dv_drain = ref infinity in
      for i = 0 to n - 1 do
        if t.queue.(i) > eps then begin
          let d = t.queue.(i) /. t.weights.(i) in
          if d < !dv_drain then dv_drain := d
        end
      done;
      let dv = Float.min dv_capacity !dv_drain in
      for i = 0 to n - 1 do
        if t.queue.(i) > eps then begin
          let served = t.weights.(i) *. dv in
          t.queue.(i) <- Float.max 0. (t.queue.(i) -. served);
          t.service.(i) <- t.service.(i) +. served
        end
      done;
      capacity_left := !capacity_left -. (dv *. !sum_active);
      t.v <- t.v +. dv
    end
  done;
  t.slot <- t.slot + 1

let is_busy t =
  let n = Array.length t.weights in
  let busy = ref false in
  let i = ref 0 in
  while (not !busy) && !i < n do
    if t.queue.(!i) > eps then busy := true;
    incr i
  done;
  !busy

let skip_idle t ~slots =
  if slots < 0 then Wfs_util.Error.invalid "Fluid_ref.skip_idle" "negative slots";
  t.slot <- t.slot + slots

let slot t = t.slot
let queue t ~flow = t.queue.(flow)
let service t ~flow = t.service.(flow)
let is_backlogged t ~flow = t.queue.(flow) > eps

let backlogged_weight t =
  let sum = ref 0. in
  for i = 0 to Array.length t.weights - 1 do
    if t.queue.(i) > eps then sum := !sum +. t.weights.(i)
  done;
  !sum
