(** Slotted wireless-cell simulator (the evaluation harness of Section 8).

    Per slot, in order: (1) packet arrivals join their flow queues, (2) every
    flow's channel advances one slot, (3) predictors produce per-flow
    channel estimates, (4) delay-bound drop policies discard expired
    packets, (5) the scheduler picks at most one flow to transmit, (6) the
    transmission succeeds iff the flow's {e true} channel state is good —
    on failure the packet stays at the head and its attempt count may
    trigger a retransmission-limit drop, (7) end-of-slot hooks run.

    All randomness lives in the sources and channels; given the same
    scheduler and the same seeded components, runs are reproducible. *)

module Tracelog : module type of struct
  include Wfs_sim.Tracelog
end
(** Re-export of {!Wfs_sim.Tracelog}, so binaries whose main module is
    named [wfs_sim] (the CLI) can still build capacity-bounded flight
    recorders without linking the [wfs_sim] library under its clashing
    top-level name. *)

type flow_setup = {
  flow : Params.flow;
  source : Wfs_traffic.Arrival.t;
  channel : Wfs_channel.Channel.t;
}

(** {1 Observability hooks}

    Phase ids passed to {!profiler_hooks}: one per numbered section of the
    slot loop above.  Contiguous in [0, n_phases); a profiler can index a
    preallocated accumulator array with them. *)

val phase_arrivals : int
val phase_predict : int
val phase_drops : int
val phase_select : int
val phase_transmit : int
val phase_slot_end : int
val n_phases : int

val phase_name : int -> string
(** Human-readable label for a phase id.
    @raise Invalid_argument on an id outside [0, n_phases). *)

type profiler_hooks = {
  phase_begin : int -> unit;
  phase_end : int -> unit;
}
(** Called at the start/end of every phase of every slot with the phase id.
    Hooks must not raise and must not touch the scheduler; they are meant
    to read a monotonic clock and accumulate (see [Wfs_obs.Profiler]). *)

type slot_probe =
  slot:int -> selected:int option -> states:Wfs_channel.Channel.state array -> unit
(** Called once per slot, after transmission and [on_slot_end] but before
    the observer: [selected] is the flow the scheduler picked (or [None]
    for an idle slot) and [states] is the true per-flow channel-state
    scratch array for this slot — {b borrowed}, valid only during the
    call; copy what you keep.  Per-flow scheduler internals (tags, credits,
    virtual time, lag) are available through the scheduler's own
    {!Wireless_sched.probe}, which a probe closure can capture at
    construction time (see [Wfs_obs.Probe]). *)

type config = {
  flows : flow_setup array;
  predictor : Wfs_channel.Predictor.kind;
  horizon : int;  (** number of slots to simulate *)
  trace : Wfs_sim.Tracelog.t option;
  observer : (int -> Metrics.t -> unit) option;
      (** called at the end of every slot with the slot index and the live
          metrics — used by the bounds verifier and tests to sample
          cumulative service/lag trajectories *)
  slot_probe : slot_probe option;
      (** per-slot telemetry hook; [None] costs one branch per slot *)
  profiler : profiler_hooks option;
      (** per-phase timing hooks; [None] costs one branch per phase *)
  histograms : bool;
      (** keep per-flow delay histograms so [Metrics.delay_percentile]
          works on the result *)
  invariants : bool;
      (** run an {!Invariant} monitor every slot; a violated paper
          property raises [Wfs_util.Error.Error] (kind
          [Invariant_violation]).  Off by default.  The monitor only reads
          scheduler probes and non-mutating {!Wfs_channel.Predictor.peek}
          views, so checked runs are byte-identical to unchecked ones for
          every predictor, [Periodic_snoop] included. *)
  fast_path : bool;
      (** opt in to the event-compressed engine: quiescent windows — no
          packet queued anywhere and no arrival scheduled before the
          window's end — are absorbed in closed form through the
          scheduler's {!Wireless_sched.quiescent} hook instead of being
          stepped slot by slot.  Byte-identical to the reference loop by
          construction (metrics, selections, RNG sample paths; enforced by
          the differential lockstep suite).  Requires per-object RNG
          streams (one [Rng.split] per source/channel, the repo-wide
          convention) — a single stream shared across objects would be
          re-interleaved.  Degenerates silently to the reference loop
          whenever any per-slot hook is attached (trace, observer,
          slot probe, profiler, invariants) or the scheduler publishes no
          quiescent hook.  Off by default. *)
  skip_stats : Skip_stats.t option;
      (** fast-path skip telemetry collector.  Deliberately NOT part of the
          fast-path degeneration condition above: the collector is updated
          at window granularity only (one call per absorbed or declined
          quiescent window, plus per-[advance] aggregates), so attaching it
          keeps the engine on the compressed path and leaves the simulated
          sample path untouched.  When the run executes on the reference
          loop (fast path off or degenerated) the collector records those
          slots as [reference_slots], making the degeneration visible. *)
}

val config :
  ?predictor:Wfs_channel.Predictor.kind ->
  ?trace:Wfs_sim.Tracelog.t ->
  ?observer:(int -> Metrics.t -> unit) ->
  ?slot_probe:slot_probe ->
  ?profiler:profiler_hooks ->
  ?histograms:bool ->
  ?invariants:bool ->
  ?fast_path:bool ->
  ?skip_stats:Skip_stats.t ->
  horizon:int ->
  flow_setup array ->
  config
(** Default predictor: [One_step].  {b Legacy surface}: new code should
    build configurations through the typed {!Sim_config} builder, which
    produces the same record — this optional-argument constructor is kept
    so existing call sites (and golden CSVs) stay byte-identical.
    @raise Invalid_argument on a negative horizon, flow ids out of order,
    or an empty flow array. *)

(** Epoch-resumable simulation: a session owns all per-run scratch (the
    metrics accumulator, packet sequence counters, predictors, channel
    scratch, the invariant monitor) and advances the slot loop in
    increments.  [Session.finish (Session.create cfg sched)] is exactly
    {!run}; a multi-cell {!Wfs_topo.Topology} instead advances each
    cell's session one epoch at a time and applies handoffs at the
    barrier.  A session started at [first_slot = 0] and advanced in any
    sequence of increments produces byte-identical metrics to a single
    {!run} — the loop body is shared and the scratch persists across
    [advance] calls. *)
module Session : sig
  type t

  val create :
    ?metrics:Metrics.t -> ?first_slot:int -> config -> Wireless_sched.instance -> t
  (** [metrics] lets the caller supply (and keep) the accumulator —
      [Wfs_topo] banks a retired session's metrics and threads fresh ones
      in; default is a fresh accumulator per session.  [first_slot]
      (default 0) is where the slot loop resumes: sources and channels
      are queried with absolute slot numbers, so a session rebuilt at an
      epoch barrier continues the same sample paths.
      @raise Invalid_argument when [first_slot] is outside
      [[0, horizon]] or [metrics] has the wrong flow count. *)

  val advance : t -> until:int -> unit
  (** Run slots [[next_slot t, until)].
      @raise Invalid_argument when [until] is behind [next_slot] or past
      the horizon. *)

  val next_slot : t -> int
  (** The first slot the next {!advance} will simulate. *)

  val metrics : t -> Metrics.t
  (** The live accumulator (the one passed to {!create}, if any). *)

  val finish : t -> Metrics.t
  (** {!advance} to the horizon and return {!metrics}. *)
end

val run : config -> Wireless_sched.instance -> Metrics.t
(** Simulate [horizon] slots and return the collected metrics.
    Equivalent to a single-increment {!Session}. *)

val run_with_channels :
  config ->
  Wireless_sched.instance ->
  channel_states:Wfs_channel.Channel.state array array ->
  Metrics.t
(** Like {!run} but forces the given per-flow, per-slot channel
    realisations (outer index = flow, inner = slot) instead of advancing
    [config]'s channels — used to compare schedulers on identical error
    sample paths.  Each row must cover [horizon] slots. *)
