(** Slotted wireless-cell simulator (the evaluation harness of Section 8).

    Per slot, in order: (1) packet arrivals join their flow queues, (2) every
    flow's channel advances one slot, (3) predictors produce per-flow
    channel estimates, (4) delay-bound drop policies discard expired
    packets, (5) the scheduler picks at most one flow to transmit, (6) the
    transmission succeeds iff the flow's {e true} channel state is good —
    on failure the packet stays at the head and its attempt count may
    trigger a retransmission-limit drop, (7) end-of-slot hooks run.

    All randomness lives in the sources and channels; given the same
    scheduler and the same seeded components, runs are reproducible. *)

type flow_setup = {
  flow : Params.flow;
  source : Wfs_traffic.Arrival.t;
  channel : Wfs_channel.Channel.t;
}

type config = {
  flows : flow_setup array;
  predictor : Wfs_channel.Predictor.kind;
  horizon : int;  (** number of slots to simulate *)
  trace : Wfs_sim.Tracelog.t option;
  observer : (int -> Metrics.t -> unit) option;
      (** called at the end of every slot with the slot index and the live
          metrics — used by the bounds verifier and tests to sample
          cumulative service/lag trajectories *)
  histograms : bool;
      (** keep per-flow delay histograms so [Metrics.delay_percentile]
          works on the result *)
  invariants : bool;
      (** run an {!Invariant} monitor every slot; a violated paper
          property raises [Wfs_util.Error.Error] (kind
          [Invariant_violation]).  Off by default.  The monitor only reads
          scheduler probes and non-mutating {!Wfs_channel.Predictor.peek}
          views, so checked runs are byte-identical to unchecked ones for
          every predictor, [Periodic_snoop] included. *)
}

val config :
  ?predictor:Wfs_channel.Predictor.kind ->
  ?trace:Wfs_sim.Tracelog.t ->
  ?observer:(int -> Metrics.t -> unit) ->
  ?histograms:bool ->
  ?invariants:bool ->
  horizon:int ->
  flow_setup array ->
  config
(** Default predictor: [One_step].
    @raise Invalid_argument on a negative horizon, flow ids out of order,
    or an empty flow array. *)

val run : config -> Wireless_sched.instance -> Metrics.t
(** Simulate [horizon] slots and return the collected metrics. *)

val run_with_channels :
  config ->
  Wireless_sched.instance ->
  channel_states:Wfs_channel.Channel.state array array ->
  Metrics.t
(** Like {!run} but forces the given per-flow, per-slot channel
    realisations (outer index = flow, inner = slot) instead of advancing
    [config]'s channels — used to compare schedulers on identical error
    sample paths.  Each row must cover [horizon] slots. *)
