(* Core WF²Q spreader over a compact member list: [ids.(k)] are flow ids in
   ascending order, [eff.(k) > 0] their effective weights.  Scanning members
   in ascending-id order with a strict "smaller finish wins" update keeps the
   output identical to a dense scan over the full flow array in which
   non-members have weight 0 (they are never considered there either). *)
let spread ~ids ~eff =
  let m = Array.length ids in
  let total = Array.fold_left ( + ) 0 eff in
  if total = 0 then [||]
  else begin
    let sent = Array.make m 0 in
    let out = Array.make total (-1) in
    let eps = Params.eps_tag in
    for pos = 0 to total - 1 do
      let v = float_of_int pos /. float_of_int total in
      (* Smallest finish tag among eligible slots; fall back to smallest
         finish overall (always non-empty: some flow has slots left). *)
      let consider restrict =
        let best = ref (-1) in
        let best_finish = ref 0. in
        for k = 0 to m - 1 do
          if sent.(k) < eff.(k) then begin
            let w = float_of_int eff.(k) in
            let start = float_of_int sent.(k) /. w in
            let finish = float_of_int (sent.(k) + 1) /. w in
            if
              ((not restrict) || start <= v +. eps)
              && (!best < 0 || finish < !best_finish)
            then begin
              best := k;
              best_finish := finish
            end
          end
        done;
        !best
      in
      let k =
        match consider true with -1 -> consider false | k -> k
      in
      if k < 0 then assert false;
      out.(pos) <- ids.(k);
      sent.(k) <- sent.(k) + 1
    done;
    out
  end

let frame_sparse ~flows ~weights =
  let m = Array.length flows in
  if Array.length weights <> m then
    Wfs_util.Error.invalid "Spreading.frame_sparse"
      "flows and weights must have the same length";
  let members = ref 0 in
  for k = 0 to m - 1 do
    if weights.(k) > 0 then incr members;
    if k > 0 && flows.(k) <= flows.(k - 1) then
      Wfs_util.Error.invalid "Spreading.frame_sparse"
        "flow ids must be strictly ascending"
  done;
  if !members = m then spread ~ids:flows ~eff:weights
  else begin
    let ids = Array.make !members (-1) in
    let eff = Array.make !members 0 in
    let j = ref 0 in
    for k = 0 to m - 1 do
      if weights.(k) > 0 then begin
        ids.(!j) <- flows.(k);
        eff.(!j) <- weights.(k);
        incr j
      end
    done;
    spread ~ids ~eff
  end

let frame ~weights =
  let n = Array.length weights in
  let members = ref 0 in
  for i = 0 to n - 1 do
    if weights.(i) > 0 then incr members
  done;
  let ids = Array.make !members (-1) in
  let eff = Array.make !members 0 in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if weights.(i) > 0 then begin
      ids.(!j) <- i;
      eff.(!j) <- weights.(i);
      incr j
    end
  done;
  spread ~ids ~eff

let is_spread_of ~weights seq =
  let n = Array.length weights in
  let counts = Array.make n 0 in
  let ok = ref true in
  Array.iter
    (fun i -> if i < 0 || i >= n then ok := false else counts.(i) <- counts.(i) + 1)
    seq;
  !ok
  && Array.for_all2
       (fun w c -> c = if w < 0 then 0 else w)
       weights counts
