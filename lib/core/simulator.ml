module Packet = Wfs_traffic.Packet
module Arrival = Wfs_traffic.Arrival
module Channel = Wfs_channel.Channel
module Predictor = Wfs_channel.Predictor
module Tracelog = Wfs_sim.Tracelog
module Event_cal = Wfs_util.Event_cal

type flow_setup = {
  flow : Params.flow;
  source : Arrival.t;
  channel : Channel.t;
}

(* Self-profiling phase ids: one per section of the slot loop.  Kept as
   plain ints so the hot-loop hook calls are branch + call, nothing more. *)
let phase_arrivals = 0
let phase_predict = 1
let phase_drops = 2
let phase_select = 3
let phase_transmit = 4
let phase_slot_end = 5
let n_phases = 6

let phase_name = function
  | 0 -> "arrivals"
  | 1 -> "predict"
  | 2 -> "drops"
  | 3 -> "select"
  | 4 -> "transmit"
  | 5 -> "slot-end"
  | p -> Wfs_util.Error.invalidf "Simulator.phase_name" "unknown phase %d" p

type profiler_hooks = {
  phase_begin : int -> unit;
  phase_end : int -> unit;
}

type slot_probe =
  slot:int -> selected:int option -> states:Channel.state array -> unit

type config = {
  flows : flow_setup array;
  predictor : Predictor.kind;
  horizon : int;
  trace : Tracelog.t option;
  observer : (int -> Metrics.t -> unit) option;
  slot_probe : slot_probe option;
  profiler : profiler_hooks option;
  histograms : bool;
  invariants : bool;
  fast_path : bool;
  skip_stats : Skip_stats.t option;
}

let config ?(predictor = Predictor.One_step) ?trace ?observer ?slot_probe
    ?profiler ?(histograms = false) ?(invariants = false)
    ?(fast_path = false) ?skip_stats ~horizon flows =
  if horizon < 0 then Wfs_util.Error.invalid "Simulator.config" "negative horizon";
  if Array.length flows = 0 then Wfs_util.Error.invalid "Simulator.config" "no flows";
  Array.iteri
    (fun i fs ->
      if fs.flow.Params.id <> i then
        Wfs_util.Error.invalid_flow_ids "Simulator.config")
    flows;
  {
    flows;
    predictor;
    horizon;
    trace;
    observer;
    slot_probe;
    profiler;
    histograms;
    invariants;
    fast_path;
    skip_stats;
  }

let delay_bound_of (p : Params.drop_policy) =
  match p with
  | Params.Delay_bound d | Params.Retx_or_delay (_, d) -> Some d
  | Params.No_drop | Params.Retx_limit _ -> None

let retx_limit_of (p : Params.drop_policy) =
  match p with
  | Params.Retx_limit k | Params.Retx_or_delay (k, _) -> Some k
  | Params.No_drop | Params.Delay_bound _ -> None

module Session = struct
  type t = {
    cfg : config;
    sched : Wireless_sched.instance;
    channel_state : flow:int -> slot:int -> Channel.state;
    metrics : Metrics.t;
    seqs : int array;
    tracing : bool;
    record : slot:int -> Tracelog.event -> unit;
    monitor : Invariant.t option;
    profiling : bool;
    phase_begin : int -> unit;
    phase_end : int -> unit;
    (* Hot-loop scratch, allocated once per session: the per-slot closures
       read [cur_slot] instead of capturing the loop variable, and [states]
       is overwritten in place each slot (see docs/PERF.md). *)
    states : Channel.state array;
    cur_slot : int ref;
    predicted_good : int -> bool;
    peek_good : int -> bool;
    live_sources : int array;
    static_channel : bool array;
    delay_bounds : int array;
    delay_flows : int array;
    buffers : int array;
    first_slot : int;
    mutable next : int;
    (* Event-compressed fast path (see docs/PERF.md).  [fast] is decided
       once at session creation: the config asked for it, every per-slot
       observability hook is absent, the scheduler published a quiescent
       hook, and channels are driven directly (so [Channel.advance_run]
       reaches the same objects the reference's [channel_state] would).
       [cal] holds at most one pending arrival event per source;
       [src_scanned.(i)] is the slot the next event query for source [i]
       resumes from; [chan_next] is the slot the next dynamic-channel
       catch-up resumes from. *)
    fast : bool;
    cal : Event_cal.t;
    src_scanned : int array;
    dynamic_channels : int array;
    mutable statics_done : bool;
    mutable chan_next : int;
  }

  let create_generic ?metrics ?(first_slot = 0) ?(direct_channels = false)
      cfg (sched : Wireless_sched.instance) ~channel_state =
    let n = Array.length cfg.flows in
    if first_slot < 0 || first_slot > cfg.horizon then
      Wfs_util.Error.invalidf "Simulator.Session.create"
        "first_slot %d outside [0, horizon %d]" first_slot cfg.horizon;
    let metrics =
      match metrics with
      | Some m ->
          if Metrics.n_flows m <> n then
            Wfs_util.Error.invalid "Simulator.Session.create"
              "metrics flow count does not match config";
          m
      | None -> Metrics.create ~histograms:cfg.histograms ~n_flows:n ()
    in
    let seqs = Array.make n 0 in
    let predictors =
      Array.map (fun _ -> Predictor.create cfg.predictor) cfg.flows
    in
    let tracing =
      match cfg.trace with None -> false | Some tr -> Tracelog.enabled tr
    in
    let record ~slot ev =
      match cfg.trace with None -> () | Some tr -> Tracelog.record tr ~slot ev
    in
    let monitor = if cfg.invariants then Some (Invariant.create ()) else None in
    (* Observability hooks: [profiling] is hoisted so the disabled path costs
       one branch on a register-resident bool per phase boundary — the hook
       closures are only entered when a profiler is actually attached. *)
    let profiling = Option.is_some cfg.profiler in
    let phase_begin p =
      match cfg.profiler with None -> () | Some h -> h.phase_begin p
    in
    let phase_end p =
      match cfg.profiler with None -> () | Some h -> h.phase_end p
    in
    let states = Array.make n Channel.Good in
    let cur_slot = ref first_slot in
    let predicted_good i =
      Channel.state_is_good
        (Predictor.predict predictors.(i) cfg.flows.(i).channel ~slot:!cur_slot)
    in
    (* The monitor's view of "what would the scheduler have been told" goes
       through Predictor.peek: same answer [select] saw this slot (channels
       only advance in phase 2), zero predictor mutation — so checked runs
       stay byte-identical, Periodic_snoop included. *)
    let peek_good i =
      Channel.state_is_good
        (Predictor.peek predictors.(i) cfg.flows.(i).channel ~slot:!cur_slot)
    in
    (* Flow classification, fixed for the whole session: null sources never
       produce an arrival, so their per-slot query is skipped outright, and a
       static channel keeps its state after the first advance, so phase 2
       re-reads [states.(i)] instead of advancing it again (both contracts
       documented in the respective .mlis). *)
    let live_sources =
      let acc = ref [] in
      for i = n - 1 downto 0 do
        if not (Arrival.is_never cfg.flows.(i).source) then acc := i :: !acc
      done;
      Array.of_list !acc
    in
    let static_channel =
      Array.map (fun fs -> Channel.is_static fs.channel) cfg.flows
    in
    let delay_bounds =
      Array.map
        (fun fs ->
          match delay_bound_of fs.flow.Params.drop with None -> -1 | Some d -> d)
        cfg.flows
    in
    let delay_flows =
      let acc = ref [] in
      for i = n - 1 downto 0 do
        if delay_bounds.(i) >= 0 then acc := i :: !acc
      done;
      Array.of_list !acc
    in
    let buffers =
      Array.map
        (fun fs ->
          match fs.flow.Params.buffer with None -> max_int | Some b -> b)
        cfg.flows
    in
    let fast =
      cfg.fast_path && direct_channels && not tracing
      && Option.is_none cfg.slot_probe
      && Option.is_none cfg.observer
      && Option.is_none cfg.profiler
      && not cfg.invariants
      && Option.is_some sched.Wireless_sched.quiescent
    in
    let dynamic_channels =
      let acc = ref [] in
      for i = n - 1 downto 0 do
        if not static_channel.(i) then acc := i :: !acc
      done;
      Array.of_list !acc
    in
    {
      cfg;
      sched;
      channel_state;
      metrics;
      seqs;
      tracing;
      record;
      monitor;
      profiling;
      phase_begin;
      phase_end;
      states;
      cur_slot;
      predicted_good;
      peek_good;
      live_sources;
      static_channel;
      delay_bounds;
      delay_flows;
      buffers;
      first_slot;
      next = first_slot;
      fast;
      cal = Event_cal.create ~n;
      src_scanned = Array.make n first_slot;
      dynamic_channels;
      statics_done = false;
      chan_next = first_slot;
    }

  let create ?metrics ?first_slot cfg sched =
    let channel_state ~flow ~slot =
      Channel.advance cfg.flows.(flow).channel ~slot
    in
    (* Channels must advance exactly once per slot, before predictions read
       them; [advance] calls [channel_state] once per flow per slot in
       phase 2. *)
    create_generic ?metrics ?first_slot ~direct_channels:true cfg sched
      ~channel_state

  let next_slot t = t.next
  let metrics t = t.metrics

  (* Reference engine: every slot of [next, until) runs the full 7-phase
     loop.  This is the executable spec the fast path is checked against
     (differential lockstep, test_perf_opt) and the path every
     observability hook runs on. *)
  let advance_reference t ~until =
    let cfg = t.cfg in
    let sched = t.sched in
    let n = Array.length cfg.flows in
    let metrics = t.metrics in
    let seqs = t.seqs in
    let tracing = t.tracing in
    let record = t.record in
    let monitor = t.monitor in
    let profiling = t.profiling in
    let phase_begin = t.phase_begin in
    let phase_end = t.phase_end in
    let states = t.states in
    let cur_slot = t.cur_slot in
    let channel_state = t.channel_state in
    let predicted_good = t.predicted_good in
    let peek_good = t.peek_good in
    let live_sources = t.live_sources in
    let static_channel = t.static_channel in
    let delay_bounds = t.delay_bounds in
    let delay_flows = t.delay_flows in
    let buffers = t.buffers in
    let first_slot = t.first_slot in
    (for slot = t.next to until - 1 do
      cur_slot := slot;
      (* 1. Arrivals. *)
      if profiling then phase_begin phase_arrivals;
      for li = 0 to Array.length live_sources - 1 do
        let i = live_sources.(li) in
        let count = Arrival.arrivals cfg.flows.(i).source ~slot in
        for _ = 1 to count do
          let pkt = Packet.make ~flow:i ~seq:seqs.(i) ~arrival:slot () in
          seqs.(i) <- seqs.(i) + 1;
          Metrics.on_arrival metrics ~flow:i;
          if tracing then
            record ~slot (Tracelog.Arrival { flow = i; seq = pkt.Packet.seq });
          if sched.queue_length i >= buffers.(i) then begin
            (* Buffer overflow: the packet never enters the system. *)
            Metrics.on_drop metrics ~flow:i;
            if tracing then
              record ~slot
                (Tracelog.Drop { flow = i; seq = pkt.Packet.seq; reason = "buffer" })
          end
          else sched.enqueue ~slot pkt
        done
      done;
      if profiling then phase_end phase_arrivals;
      (* 2–3. Channel states and predictions. *)
      if profiling then phase_begin phase_predict;
      for i = 0 to n - 1 do
        if (not static_channel.(i)) || slot = first_slot then
          states.(i) <- channel_state ~flow:i ~slot
      done;
      if profiling then phase_end phase_predict;
      (* 4. Delay-bound drops (may discard packets anywhere in the queue). *)
      if profiling then phase_begin phase_drops;
      for di = 0 to Array.length delay_flows - 1 do
        let i = delay_flows.(di) in
        match sched.drop_expired ~flow:i ~now:slot ~bound:delay_bounds.(i) with
        | [] -> ()
        | dropped ->
            (* lint: allow R7 rare path: allocates only on slots where delay drops fired *)
            List.iter (fun (pkt : Packet.t) ->
                Metrics.on_drop metrics ~flow:i;
                if tracing then
                  record ~slot
                    (Tracelog.Drop { flow = i; seq = pkt.seq; reason = "delay" }))
              dropped
      done;
      if profiling then phase_end phase_drops;
      (* 5–6. Selection and transmission outcome. *)
      if profiling then phase_begin phase_select;
      let selected = sched.select ~slot ~predicted_good in
      if profiling then phase_end phase_select;
      if profiling then phase_begin phase_transmit;
      (match selected with
      | None ->
          Metrics.on_idle_slot metrics;
          if tracing then record ~slot Tracelog.Slot_idle
      | Some f -> (
          Metrics.on_busy_slot metrics;
          match sched.head f with
          | None ->
              Wfs_util.Error.invalidf "Simulator.run"
                "scheduler selected flow %d with empty queue" f
          | Some pkt ->
              if Channel.state_is_good states.(f) then begin
                sched.complete ~flow:f;
                let delay = slot - pkt.Packet.arrival in
                Metrics.on_deliver metrics ~flow:f ~delay;
                if tracing then
                  record ~slot
                    (Tracelog.Transmit_ok { flow = f; seq = pkt.Packet.seq; delay })
              end
              else begin
                pkt.Packet.attempts <- pkt.Packet.attempts + 1;
                Metrics.on_failed_attempt metrics ~flow:f;
                sched.fail ~flow:f;
                if tracing then
                  record ~slot
                    (Tracelog.Transmit_fail
                       { flow = f; seq = pkt.Packet.seq; attempt = pkt.Packet.attempts });
                match retx_limit_of cfg.flows.(f).flow.Params.drop with
                | Some limit when pkt.Packet.attempts > limit ->
                    sched.drop_head ~flow:f;
                    Metrics.on_drop metrics ~flow:f;
                    if tracing then
                      record ~slot
                        (Tracelog.Drop
                           { flow = f; seq = pkt.Packet.seq; reason = "retx" })
                | Some _ | None -> ()
              end));
      if profiling then phase_end phase_transmit;
      (* 7. End-of-slot hooks. *)
      if profiling then phase_begin phase_slot_end;
      sched.on_slot_end ~slot;
      (match monitor with
      | None -> ()
      | Some m ->
          Invariant.check m ~slot ~sched ~n_flows:n ~predicted_good:peek_good
            ~selected);
      (match cfg.slot_probe with
      | None -> ()
      | Some probe -> probe ~slot ~selected ~states);
      (match cfg.observer with None -> () | Some f -> f slot metrics);
      if profiling then phase_end phase_slot_end
    done)
    [@hot];
    t.next <- until

  (* Refill the calendar for source [i] with its next arrival inside
     [.., until): called when its previous event was consumed (or at window
     top-up).  A [-1] answer means the source has drawn through [until - 1]
     and stays out of the calendar for the rest of the window. *)
  let[@hot] requery_source t ~until i =
    let e =
      Arrival.next_event t.cfg.flows.(i).source ~from:t.src_scanned.(i)
        ~upto:until
    in
    if e < 0 then t.src_scanned.(i) <- until
    else begin
      Event_cal.push t.cal ~key:e ~id:i;
      t.src_scanned.(i) <- e + 1
    end

  (* One full slot on the fast path: the reference loop's seven phases with
     arrivals read off the calendar instead of polled per source, and
     channels caught up lazily from [chan_next].  Runs only for state-
     changing slots; byte-identity with the reference slot is the
     lockstep suite's induction step. *)
  let[@hot] fast_slot t ~until s =
    let cfg = t.cfg in
    let flows = cfg.flows in
    let sched = t.sched in
    let metrics = t.metrics in
    let seqs = t.seqs in
    let states = t.states in
    let buffers = t.buffers in
    let cal = t.cal in
    t.cur_slot := s;
    (* 1. Arrivals: exactly the sources whose next event lands on [s],
       popped in ascending flow id — the reference's scan order. *)
    while Event_cal.min_key cal = s do
      let i = Event_cal.pop cal in
      let count = Arrival.pending_count flows.(i).source in
      for _ = 1 to count do
        let pkt = Packet.make ~flow:i ~seq:seqs.(i) ~arrival:s () in
        seqs.(i) <- seqs.(i) + 1;
        Metrics.on_arrival metrics ~flow:i;
        if sched.queue_length i >= buffers.(i) then
          Metrics.on_drop metrics ~flow:i
        else sched.enqueue ~slot:s pkt
      done;
      if t.src_scanned.(i) < until then requery_source t ~until i
    done;
    (* 2-3. Channels: statics once per session, dynamics caught up from
       the last observed slot in one run. *)
    if not t.statics_done then begin
      let static_channel = t.static_channel in
      for i = 0 to Array.length static_channel - 1 do
        if static_channel.(i) then
          states.(i) <- Channel.advance flows.(i).channel ~slot:s
      done;
      t.statics_done <- true
    end;
    let dyn = t.dynamic_channels in
    let from = t.chan_next in
    for di = 0 to Array.length dyn - 1 do
      let i = dyn.(di) in
      states.(i) <- Channel.advance_run flows.(i).channel ~from ~slot:s
    done;
    t.chan_next <- s + 1;
    (* 4. Delay-bound drops. *)
    let delay_flows = t.delay_flows in
    let delay_bounds = t.delay_bounds in
    for di = 0 to Array.length delay_flows - 1 do
      let i = delay_flows.(di) in
      match sched.drop_expired ~flow:i ~now:s ~bound:delay_bounds.(i) with
      | [] -> ()
      | dropped ->
          (* lint: allow R7 rare path: allocates only on slots where delay drops fired *)
          List.iter (fun (_ : Packet.t) -> Metrics.on_drop metrics ~flow:i)
            dropped
    done;
    (* 5-6. Selection and transmission outcome. *)
    let selected = sched.select ~slot:s ~predicted_good:t.predicted_good in
    (match selected with
    | None -> Metrics.on_idle_slot metrics
    | Some f -> (
        Metrics.on_busy_slot metrics;
        match sched.head f with
        | None ->
            Wfs_util.Error.invalidf "Simulator.run"
              "scheduler selected flow %d with empty queue" f
        | Some pkt ->
            if Channel.state_is_good states.(f) then begin
              sched.complete ~flow:f;
              Metrics.on_deliver metrics ~flow:f
                ~delay:(s - pkt.Packet.arrival)
            end
            else begin
              pkt.Packet.attempts <- pkt.Packet.attempts + 1;
              Metrics.on_failed_attempt metrics ~flow:f;
              sched.fail ~flow:f;
              match retx_limit_of flows.(f).flow.Params.drop with
              | Some limit when pkt.Packet.attempts > limit ->
                  sched.drop_head ~flow:f;
                  Metrics.on_drop metrics ~flow:f
              | Some _ | None -> ()
            end));
    (* 7. End of slot. *)
    sched.on_slot_end ~slot:s

  (* Event-compressed engine: identical observable behaviour to
     [advance_reference], reached by running only the state-changing slots
     and absorbing each quiescent window — no queued packet anywhere, no
     arrival scheduled before the window's end — through the scheduler's
     closed-form [advance_quiescent].  Channels catch up lazily
     ([Channel.advance_run]) and are forced current at the window end so
     no deferred draw crosses an epoch barrier (a dissolving topology
     session leaves its channels exactly where the reference would). *)
  let advance_fast t ~until ~(q : Wireless_sched.quiescent) =
    let live_sources = t.live_sources in
    let metrics = t.metrics in
    let cal = t.cal in
    (* Skip telemetry is recorded at window granularity only — one call per
       absorbed or declined window, never per slot — so an attached
       collector keeps this engine on the compressed path. *)
    let skips = t.cfg.skip_stats in
    (* Top-up: between advance calls the calendar is empty and every live
       source was scanned through the previous window, so each needs one
       query into the new one. *)
    (for li = 0 to Array.length live_sources - 1 do
      let i = live_sources.(li) in
      if t.src_scanned.(i) < until then requery_source t ~until i
    done;
    let slot = ref t.next in
    while !slot < until do
      let s = !slot in
      let nk = Event_cal.min_key cal in
      if nk > s && q.backlog_empty () then begin
        let stop = if nk < until then nk else until in
        let absorbed = q.advance_quiescent ~now:s ~slots:(stop - s) in
        if absorbed > 0 then begin
          Metrics.on_idle_slots metrics ~count:absorbed;
          (match skips with
          | Some k -> Skip_stats.note_window k ~slots:absorbed
          | None -> ());
          slot := s + absorbed
        end
        else begin
          (* The scheduler declined the window (always allowed): run one
             reference-equivalent slot and re-ask. *)
          (match skips with
          | Some k -> Skip_stats.note_declined k
          | None -> ());
          fast_slot t ~until s;
          slot := s + 1
        end
      end
      else begin
        fast_slot t ~until s;
        slot := s + 1
      end
    done)
    [@hot];
    (* Window-end channel catch-up: every dynamic channel must have drawn
       through [until - 1] before control returns (the next window, or a
       successor session after a topology epoch, resumes from there). *)
    if t.chan_next < until then begin
      let flows = t.cfg.flows in
      let dyn = t.dynamic_channels in
      let from = t.chan_next in
      for di = 0 to Array.length dyn - 1 do
        let i = dyn.(di) in
        t.states.(i) <-
          Channel.advance_run flows.(i).channel ~from ~slot:(until - 1)
      done;
      t.chan_next <- until
    end;
    t.next <- until

  let advance t ~until =
    if until < t.next || until > t.cfg.horizon then
      Wfs_util.Error.invalidf "Simulator.Session.advance"
        "until %d outside [next %d, horizon %d]" until t.next t.cfg.horizon;
    let engine =
      if t.fast then t.sched.Wireless_sched.quiescent else None
    in
    (match t.cfg.skip_stats with
    | Some k ->
        let slots = until - t.next in
        if Option.is_some engine then Skip_stats.note_engine k ~slots
        else Skip_stats.note_reference k ~slots
    | None -> ());
    match engine with
    | Some q -> advance_fast t ~until ~q
    | None -> advance_reference t ~until

  let finish t =
    advance t ~until:t.cfg.horizon;
    t.metrics
end

let run cfg sched = Session.finish (Session.create cfg sched)

let run_with_channels cfg sched ~channel_states =
  if Array.length channel_states <> Array.length cfg.flows then
    Wfs_util.Error.invalid "Simulator.run_with_channels" "one state row per flow required";
  Array.iter
    (fun row ->
      if Array.length row < cfg.horizon then
        Wfs_util.Error.invalid "Simulator.run_with_channels" "row shorter than horizon")
    channel_states;
  (* Feed the recorded states through trace channels so predictors see the
     same view as in a live run. *)
  let replay =
    Array.map
      (fun row ->
        Wfs_channel.Trace_ch.create
          (Array.to_list (Array.mapi (fun slot st -> (slot, st)) row)))
      channel_states
  in
  let cfg =
    {
      cfg with
      flows =
        Array.mapi (fun i fs -> { fs with channel = replay.(i) }) cfg.flows;
    }
  in
  (* [cfg.flows] was just rewritten to hold the replay channels, so direct
     channel access reaches the same objects [channel_state] drives. *)
  let channel_state ~flow ~slot = Channel.advance replay.(flow) ~slot in
  Session.finish
    (Session.create_generic ~direct_channels:true cfg sched ~channel_state)
