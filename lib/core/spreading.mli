(** WF²Q slot spreading for WPS frames (Section 7).

    Given per-flow effective weights, produce the order in which the frame's
    slots are allocated.  The allocation equals the service order WF²Q would
    give when every flow is continuously backlogged: slot [k] of flow [i]
    has virtual start [k/w_i] and finish [(k+1)/w_i]; at each frame position
    the eligible slot (start ≤ elapsed fraction of the frame) with the
    smallest finish tag is placed.  Errors and bursts being the norm,
    spreading a flow's slots evenly across the frame minimises the damage
    of an error burst hitting consecutive slots (requirement (d) of
    Section 7). *)

val frame : weights:int array -> int array
(** [frame ~weights] returns flow ids, one per slot, of length
    [Σ max(weights, 0)]; flows with weight ≤ 0 receive no slots (WPS's
    "ignore flows with effective weight < 0").
    Deterministic: ties break toward the lower flow id. *)

val frame_sparse : flows:int array -> weights:int array -> int array
(** [frame_sparse ~flows ~weights] is [frame] over a compact member list:
    [flows] holds strictly ascending flow ids, [weights.(k)] the effective
    weight of [flows.(k)].  The result is identical (including tie-breaks)
    to [frame] on the dense weight array in which every absent flow has
    weight 0, but costs O(length·members) instead of O(length·n_flows) —
    the backlogged-flow fast path for WPS frame builds.
    @raise Wfs_util.Error.Error on mismatched lengths or unsorted ids. *)

val is_spread_of : weights:int array -> int array -> bool
(** Check that a sequence contains exactly [w_i] slots of each flow [i] —
    used by tests and the MAC layer to validate externally supplied
    frames. *)
