(* Fast-path skip telemetry.

   The event-compressed engine (Simulator.advance_fast) absorbs runs of
   quiescent slots in closed form.  This module counts those absorptions at
   WINDOW granularity — one update per absorbed window, never per slot — so
   attaching a collector does not degenerate the fast path and costs one
   option match per window boundary.  The collector is deliberately excluded
   from the fast-path degeneration condition (see Simulator.config). *)

type t = {
  mutable absorbed_windows : int;
  mutable absorbed_slots : int;
  mutable declined_windows : int;
  mutable engine_slots : int;
  mutable reference_slots : int;
  mutable max_window : int;
  window_hist : Wfs_util.Stats.Histogram.t;
}

let create () =
  {
    absorbed_windows = 0;
    absorbed_slots = 0;
    declined_windows = 0;
    engine_slots = 0;
    reference_slots = 0;
    max_window = 0;
    window_hist = Wfs_util.Stats.Histogram.create ~bin_width:16. ();
  }

let note_window t ~slots =
  t.absorbed_windows <- t.absorbed_windows + 1;
  t.absorbed_slots <- t.absorbed_slots + slots;
  if slots > t.max_window then t.max_window <- slots;
  Wfs_util.Stats.Histogram.add t.window_hist (float_of_int slots)

let note_declined t = t.declined_windows <- t.declined_windows + 1
let note_engine t ~slots = t.engine_slots <- t.engine_slots + slots
let note_reference t ~slots = t.reference_slots <- t.reference_slots + slots

let absorbed_windows t = t.absorbed_windows
let absorbed_slots t = t.absorbed_slots
let declined_windows t = t.declined_windows
let engine_slots t = t.engine_slots
let reference_slots t = t.reference_slots
let max_window t = t.max_window
let window_hist t = t.window_hist
let total_slots t = t.engine_slots + t.reference_slots

let quiescence_ratio t =
  let total = total_slots t in
  if total = 0 then 0. else float_of_int t.absorbed_slots /. float_of_int total

let compressed t = t.engine_slots > 0 && t.reference_slots = 0

let merge a b =
  let t = create () in
  t.absorbed_windows <- a.absorbed_windows + b.absorbed_windows;
  t.absorbed_slots <- a.absorbed_slots + b.absorbed_slots;
  t.declined_windows <- a.declined_windows + b.declined_windows;
  t.engine_slots <- a.engine_slots + b.engine_slots;
  t.reference_slots <- a.reference_slots + b.reference_slots;
  t.max_window <- Int.max a.max_window b.max_window;
  let h =
    Wfs_util.Stats.Histogram.merge a.window_hist b.window_hist
  in
  {
    t with
    window_hist = h;
  }

let to_json t =
  let open Wfs_util.Json in
  Obj
    [
      ("absorbed_windows", Int t.absorbed_windows);
      ("absorbed_slots", Int t.absorbed_slots);
      ("declined_windows", Int t.declined_windows);
      ("engine_slots", Int t.engine_slots);
      ("reference_slots", Int t.reference_slots);
      ("max_window", Int t.max_window);
      ("window_hist", Wfs_util.Stats.Histogram.to_json t.window_hist);
    ]

let of_json j =
  let open Wfs_util.Json in
  match
    ( member "absorbed_windows" j,
      member "absorbed_slots" j,
      member "declined_windows" j,
      member "engine_slots" j,
      member "reference_slots" j,
      member "max_window" j,
      member "window_hist" j )
  with
  | Some aw, Some asl, Some dw, Some es, Some rs, Some mw, Some wh -> (
      match
        ( to_int aw,
          to_int asl,
          to_int dw,
          to_int es,
          to_int rs,
          to_int mw,
          Wfs_util.Stats.Histogram.of_json wh )
      with
      | ( Some absorbed_windows,
          Some absorbed_slots,
          Some declined_windows,
          Some engine_slots,
          Some reference_slots,
          Some max_window,
          Some window_hist ) ->
          Some
            {
              absorbed_windows;
              absorbed_slots;
              declined_windows;
              engine_slots;
              reference_slots;
              max_window;
              window_hist;
            }
      | _ -> None)
  | _ -> None
