(** Per-flow credit/debit accounting for WPS (Section 7).

    At the start of every frame a flow's effective weight is its default
    weight plus redeemed credit; at the end of the frame the balance is
    recomputed from what the flow actually transmitted:

    [credit = min(max(effective_weight − attempts, −debit_limit),
    credit_limit)]

    so missing granted slots earns credit, transmitting beyond the grant
    (via inter-frame swaps) incurs debt, and both are capped to bound how
    far any flow can drift from its error-free service — the
    credit-and-debit mirror of IWFQ's lag/lead bounds.

    The optional per-frame redemption cap implements the amortised
    compensation extension: a flow returning from a long error burst
    reclaims its credit over several frames instead of capturing the
    channel. *)

type t

val create :
  credit_limit:int -> debit_limit:int -> ?credit_per_frame:int -> weight:int -> unit -> t
(** [weight] is the flow's default integer weight (≥ 1). *)

val balance : t -> int
(** Current credit (negative = debt). *)

val begin_frame : t -> int
(** Open a frame: returns the effective weight [weight + redeemed], where
    [redeemed] is the full positive balance (or all debt) unless capped by
    [credit_per_frame].  May be ≤ 0 when in debt. *)

val end_frame : t -> attempts:int -> unit
(** Close the frame opened by {!begin_frame} given the number of
    transmission attempts the flow actually made. *)

val admit : t -> int -> int
(** [admit t v] sets the balance to [v] clamped to
    [[-debit_limit, credit_limit]] and returns the clamped value — the §7
    half of the handoff state carry: a flow arriving from another cell is
    re-admitted with its carried credit, bounded by {e this} cell's caps.
    Call only between frames (the balance is re-read at the next
    {!begin_frame}). *)

val weight : t -> int

val credit_limit : t -> int
(** The cap the balance is clamped to from above. *)

val debit_limit : t -> int
(** The cap (negated) the balance is clamped to from below. *)
