module Packet = Wfs_traffic.Packet

type t = {
  backoff : int;
  weights : int array;
  queues : Packet.t Queue.t array;
  marked_until : int array;  (* flow skipped while now < marked_until *)
  mutable current : int;  (* round-robin position *)
  mutable remaining : int;  (* grants left for the current flow *)
  mutable now : int;  (* last slot seen by select *)
}

let int_weight w =
  let k = int_of_float (Float.round w) in
  if k < 1 then 1 else k

let create ?(backoff = 10) flows =
  if backoff <= 0 then Wfs_util.Error.invalid "Csdps.create" "backoff must be > 0";
  Array.iteri
    (fun i (f : Params.flow) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Csdps.create")
    flows;
  let n = Array.length flows in
  {
    backoff;
    weights = Array.map (fun (f : Params.flow) -> int_weight f.weight) flows;
    queues = Array.init n (fun _ -> Queue.create ());
    marked_until = Array.make n 0;
    current = 0;
    remaining = (if n = 0 then 0 else 1);
    now = 0;
  }

let is_marked t ~flow ~now = now < t.marked_until.(flow)

let enqueue t ~slot:_ (pkt : Packet.t) = Queue.push pkt t.queues.(pkt.flow)

let n_flows t = Array.length t.weights

let advance t =
  t.current <- (t.current + 1) mod n_flows t;
  t.remaining <- t.weights.(t.current)

let select t ~slot ~predicted_good:_ =
  t.now <- slot;
  (* Serve the round-robin order, skipping empty queues and marked flows;
     at most one full cycle per slot. *)
  let n = n_flows t in
  if t.remaining <= 0 then advance t;
  let rec scan tried =
    if tried > n then None
    else begin
      let f = t.current in
      if (not (Queue.is_empty t.queues.(f))) && not (is_marked t ~flow:f ~now:slot)
      then begin
        t.remaining <- t.remaining - 1;
        Some f
      end
      else begin
        advance t;
        scan (tried + 1)
      end
    end
  in
  scan 0

let head t flow = Queue.peek_opt t.queues.(flow)

let complete t ~flow =
  match Queue.pop t.queues.(flow) with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Csdps.complete"
  | _ -> ()

(* The distinguishing CSDPS move: a failed transmission (missing ack) marks
   the link bad for [backoff] slots. *)
let fail t ~flow = t.marked_until.(flow) <- t.now + 1 + t.backoff

let drop_head t ~flow =
  match Queue.pop t.queues.(flow) with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Csdps.drop_head"
  | _ -> ()

let drop_expired t ~flow ~now ~bound =
  let q = t.queues.(flow) in
  let dropped = ref [] in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt q with
    | Some pkt when Packet.age pkt ~now > bound ->
        ignore (Queue.take_opt q);
        dropped := pkt :: !dropped
    | Some _ | None -> continue := false
  done;
  List.rev !dropped

let queue_length t flow = Queue.length t.queues.(flow)

let instance t =
  {
    Wireless_sched.name = "CSDPS";
    enqueue = (fun ~slot pkt -> enqueue t ~slot pkt);
    select = (fun ~slot ~predicted_good -> select t ~slot ~predicted_good);
    head = head t;
    complete = (fun ~flow -> complete t ~flow);
    fail = (fun ~flow -> fail t ~flow);
    drop_head = (fun ~flow -> drop_head t ~flow);
    drop_expired = (fun ~flow ~now ~bound -> drop_expired t ~flow ~now ~bound);
    queue_length = queue_length t;
    on_slot_end = (fun ~slot:_ -> ());
    (* Backoff marking can idle a slot on purpose; nothing else to expose. *)
    probe = Wireless_sched.no_probe;
  }
