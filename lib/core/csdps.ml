module Packet = Wfs_traffic.Packet
module Flow_set = Wfs_util.Flow_set

(* [backlog] indexes the non-empty queues so [select] visits only candidate
   flows (cyclically from [current]) instead of walking every empty queue in
   the round-robin.  [naive = true] (differential testing) scans with the
   original one-flow-at-a-time loop instead; both paths perform identical
   state transitions by construction. *)
type t = {
  backoff : int;
  weights : int array;
  queues : Packet.t Queue.t array;
  marked_until : int array;  (* flow skipped while now < marked_until *)
  backlog : Flow_set.t;
  naive : bool;
  mutable current : int;  (* round-robin position *)
  mutable remaining : int;  (* grants left for the current flow *)
  mutable now : int;  (* last slot seen by select *)
}

let int_weight w =
  let k = int_of_float (Float.round w) in
  if k < 1 then 1 else k

let create ?(backoff = 10) ?(naive = false) flows =
  if backoff <= 0 then Wfs_util.Error.invalid "Csdps.create" "backoff must be > 0";
  Array.iteri
    (fun i (f : Params.flow) ->
      if f.id <> i then Wfs_util.Error.invalid_flow_ids "Csdps.create")
    flows;
  let n = Array.length flows in
  {
    backoff;
    weights = Array.map (fun (f : Params.flow) -> int_weight f.weight) flows;
    queues = Array.init n (fun _ -> Queue.create ());
    marked_until = Array.make n 0;
    backlog = Flow_set.create ~n;
    naive;
    current = 0;
    remaining = (if n = 0 then 0 else 1);
    now = 0;
  }

let is_marked t ~flow ~now = now < t.marked_until.(flow)

let enqueue t ~slot:_ (pkt : Packet.t) =
  let q = t.queues.(pkt.flow) in
  Queue.push pkt q;
  if Queue.length q = 1 then Flow_set.add t.backlog pkt.flow

let n_flows t = Array.length t.weights

let advance t =
  t.current <- (t.current + 1) mod n_flows t;
  t.remaining <- t.weights.(t.current)

(* Reference path: walk the round-robin one flow at a time, skipping empty
   queues and marked flows; at most one full cycle per slot.  [tried] runs
   to [n] inclusive, so on total failure [advance] fires n+1 times — net
   effect: [current] one past where it started, with a fresh grant. *)
let rec scan_naive t ~slot ~n tried =
  if tried > n then None
  else begin
    let f = t.current in
    if (not (Queue.is_empty t.queues.(f))) && not (is_marked t ~flow:f ~now:slot)
    then begin
      t.remaining <- t.remaining - 1;
      Some f
    end
    else begin
      advance t;
      scan_naive t ~slot ~n (tried + 1)
    end
  end

(* Indexed path: the first eligible flow in cyclic order from [current] is
   the first unmarked member of [backlog] starting at position
   [find_from backlog current] (eligibility cannot change mid-scan).  Only
   the last [advance] of the naive walk is observable, so the intermediate
   ones are skipped:

   - found at distance 0: only [remaining] decrements;
   - found farther on: [current] jumps there with a fresh grant, minus the
     slot just consumed;
   - nobody eligible: [current] ends one past its start with a fresh grant
     (n+1 naive advances ≡ 1 step mod n). *)
let[@hot] select_indexed t ~slot =
  let c = t.current in
  let m = Flow_set.cardinal t.backlog in
  let pos = Flow_set.find_from t.backlog c in
  let found = ref (-1) in
  let k = ref 0 in
  while !found < 0 && !k < m do
    let idx = pos + !k in
    let f = Flow_set.get t.backlog (if idx >= m then idx - m else idx) in
    if not (is_marked t ~flow:f ~now:slot) then found := f;
    incr k
  done;
  if !found < 0 then begin
    t.current <- (c + 1) mod n_flows t;
    t.remaining <- t.weights.(t.current);
    None
  end
  else begin
    let f = !found in
    if f = c then t.remaining <- t.remaining - 1
    else begin
      t.current <- f;
      t.remaining <- t.weights.(f) - 1
    end;
    Some f
  end

let select t ~slot ~predicted_good:_ =
  t.now <- slot;
  if t.remaining <= 0 then advance t;
  if t.naive then scan_naive t ~slot ~n:(n_flows t) 0
  else select_indexed t ~slot

let head t flow = Queue.peek_opt t.queues.(flow)

let deindex_if_empty t flow =
  if Queue.is_empty t.queues.(flow) then Flow_set.remove t.backlog flow

let complete t ~flow =
  (match Queue.pop t.queues.(flow) with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Csdps.complete"
  | _ -> ());
  deindex_if_empty t flow

(* The distinguishing CSDPS move: a failed transmission (missing ack) marks
   the link bad for [backoff] slots. *)
let fail t ~flow = t.marked_until.(flow) <- t.now + 1 + t.backoff

let drop_head t ~flow =
  (match Queue.pop t.queues.(flow) with
  | exception Queue.Empty -> Wfs_util.Error.empty_queue "Csdps.drop_head"
  | _ -> ());
  deindex_if_empty t flow

let rec drop_expired_loop q ~now ~bound acc =
  match Queue.peek_opt q with
  | Some pkt when Packet.age pkt ~now > bound ->
      ignore (Queue.take_opt q);
      drop_expired_loop q ~now ~bound (pkt :: acc)
  | Some _ | None -> List.rev acc

let drop_expired t ~flow ~now ~bound =
  let dropped = drop_expired_loop t.queues.(flow) ~now ~bound [] in
  deindex_if_empty t flow;
  dropped

let queue_length t flow = Queue.length t.queues.(flow)

(* An empty-backlog slot still turns the round-robin: select stamps [now],
   fires the stale-grant advance if [remaining <= 0] (possible on the first
   idle slot only — every later slot leaves a fresh grant >= 1), then ends
   with [current] one step on and a fresh grant (the indexed miss directly;
   the naive walk via n+1 advances netting one step mod n).  [k] such slots
   therefore rotate [current] by [k] (+1 for the initial stale grant) and
   leave [remaining] at the landing flow's weight — one modular addition. *)
let[@hot] advance_quiescent t ~now ~slots =
  let n = n_flows t in
  if n = 0 || slots = 0 then 0
  else begin
    let extra = if t.remaining <= 0 then 1 else 0 in
    t.now <- now + slots - 1;
    t.current <- (t.current + extra + slots) mod n;
    t.remaining <- t.weights.(t.current);
    slots
  end

let instance t =
  {
    Wireless_sched.name = "CSDPS";
    enqueue = (fun ~slot pkt -> enqueue t ~slot pkt);
    select = (fun ~slot ~predicted_good -> select t ~slot ~predicted_good);
    head = head t;
    complete = (fun ~flow -> complete t ~flow);
    fail = (fun ~flow -> fail t ~flow);
    drop_head = (fun ~flow -> drop_head t ~flow);
    drop_expired = (fun ~flow ~now ~bound -> drop_expired t ~flow ~now ~bound);
    queue_length = queue_length t;
    on_slot_end = (fun ~slot:_ -> ());
    probe =
      {
        Wireless_sched.no_probe with
        (* Grant balance: remaining grants while the round-robin sits on
           the flow, alongside its per-round allowance and the slot until
           which backoff marking skips it.  Backoff can idle a slot on
           purpose, so CSDPS is not work-conserving. *)
        credit =
          (let credit flow =
             ( (if flow = t.current then t.remaining else 0),
               t.weights.(flow),
               t.marked_until.(flow) )
           in
           Some credit);
      };
    (* CSDPS grants are positional (whose turn in the round-robin), not a
       flow-attached account — nothing survives a cell change. *)
    handoff = None;
    quiescent =
      Some
        {
          Wireless_sched.backlog_empty =
            (fun () -> Flow_set.cardinal t.backlog = 0);
          advance_quiescent =
            (fun ~now ~slots -> advance_quiescent t ~now ~slots);
        };
  }
