let jain xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let sum = Array.fold_left ( +. ) 0. xs in
    let sumsq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if sumsq <= 0. then 1.0 else sum *. sum /. (float_of_int n *. sumsq)
  end

let max_normalized_gap ~weights ~service =
  let n = Array.length weights in
  if n = 0 || Array.length service <> n then
    Wfs_util.Error.invalid "Fairness.max_normalized_gap" "length mismatch";
  let normalized = Array.mapi (fun i s -> s /. weights.(i)) service in
  let lo = Array.fold_left Float.min infinity normalized in
  let hi = Array.fold_left Float.max neg_infinity normalized in
  hi -. lo

module Monitor = struct
  type t = {
    weights : float array;
    window : int;
    sched : Wireless_sched.instance;
    window_start_service : int array;
    mutable slots_in_window : int;
    mutable all_backlogged : bool;
    mutable windows : int;
    mutable jain_sum : float;
    mutable worst_gap : float;
  }

  let create ~weights ~window ~sched =
    if window <= 0 then Wfs_util.Error.invalid "Fairness.Monitor.create" "window must be > 0";
    {
      weights = Array.copy weights;
      window;
      sched;
      window_start_service = Array.make (Array.length weights) 0;
      slots_in_window = 0;
      all_backlogged = true;
      windows = 0;
      jain_sum = 0.;
      worst_gap = 0.;
    }

  let observer t _slot metrics =
    let n = Array.length t.weights in
    (* "Backlogged" for the window means every flow had work at every
       sampled slot; we require at least two to make fairness meaningful. *)
    let backlogged = ref 0 in
    for i = 0 to n - 1 do
      if t.sched.Wireless_sched.queue_length i > 0 then incr backlogged
    done;
    if !backlogged < 2 then t.all_backlogged <- false;
    t.slots_in_window <- t.slots_in_window + 1;
    if t.slots_in_window >= t.window then begin
      if t.all_backlogged then begin
        let service =
          Array.init n (fun i ->
              float_of_int
                (Metrics.delivered metrics ~flow:i - t.window_start_service.(i)))
        in
        let normalized = Array.mapi (fun i s -> s /. t.weights.(i)) service in
        t.jain_sum <- t.jain_sum +. jain normalized;
        let gap = max_normalized_gap ~weights:t.weights ~service in
        if gap > t.worst_gap then t.worst_gap <- gap;
        t.windows <- t.windows + 1
      end;
      (* Open the next window. *)
      t.slots_in_window <- 0;
      t.all_backlogged <- true;
      for i = 0 to n - 1 do
        t.window_start_service.(i) <- Metrics.delivered metrics ~flow:i
      done
    end

  let windows_sampled t = t.windows
  let mean_jain t = if t.windows = 0 then 1.0 else t.jain_sum /. float_of_int t.windows
  let worst_gap t = t.worst_gap
end
