type direction = Up | Down

type t = {
  setups : Simulator.flow_setup array;
  addrs : (int * direction) array;
  horizon : int;
  predictor : Wfs_channel.Predictor.kind;
  seed : int;
}

exception Parse_error of { line : int; message : string }

let fail ~line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let float_of ~line what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail ~line "%s: expected a number, got %S" what s

let int_of ~line what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail ~line "%s: expected an integer, got %S" what s

(* "kind:arg1,arg2" -> (kind, [args]) *)
let split_spec s =
  match String.index_opt s ':' with
  | None -> (s, [])
  | Some i ->
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      (kind, String.split_on_char ',' rest)

let parse_drop ~line s =
  match split_spec s with
  | "none", [] -> Params.No_drop
  | "retx", [ k ] -> Params.Retx_limit (int_of ~line "retx limit" k)
  | "delay", [ d ] -> Params.Delay_bound (int_of ~line "delay bound" d)
  | "retx-delay", [ k; d ] ->
      Params.Retx_or_delay (int_of ~line "retx limit" k, int_of ~line "delay bound" d)
  | _ -> fail ~line "unknown drop policy %S" s

let parse_source ~line ~rng s =
  match split_spec s with
  | "cbr", [ ia ] ->
      Wfs_traffic.Cbr.create ~interarrival:(float_of ~line "cbr interarrival" ia) ()
  | "poisson", [ r ] ->
      Wfs_traffic.Poisson.create ~rng:(rng ()) ~rate:(float_of ~line "poisson rate" r)
  | "mmpp", [ r ] ->
      Wfs_traffic.Mmpp.paper_source ~rng:(rng ())
        ~mean_rate:(float_of ~line "mmpp mean rate" r)
        ()
  | "onoff", [ p1; p2 ] ->
      Wfs_traffic.Onoff.create ~rng:(rng ())
        ~p_on_to_off:(float_of ~line "onoff p_on_to_off" p1)
        ~p_off_to_on:(float_of ~line "onoff p_off_to_on" p2)
        ()
  | "pareto", [ on; off ] ->
      Wfs_traffic.Pareto_onoff.create ~rng:(rng ())
        ~mean_on:(float_of ~line "pareto mean_on" on)
        ~mean_off:(float_of ~line "pareto mean_off" off)
        ()
  | _ -> fail ~line "unknown source %S" s

let parse_channel ~line ~rng s =
  match split_spec s with
  | "good", [] -> Wfs_channel.Error_free.create ()
  | "ge", [ pg; pe ] ->
      Wfs_channel.Gilbert_elliott.create ~rng:(rng ())
        ~pg:(float_of ~line "ge pg" pg) ~pe:(float_of ~line "ge pe" pe) ()
  | "bernoulli", [ p ] ->
      Wfs_channel.Bernoulli_ch.create ~rng:(rng ())
        ~good_prob:(float_of ~line "bernoulli good prob" p)
  | "badburst", [ start; len ] ->
      Wfs_channel.Periodic_ch.bad_burst
        ~start:(int_of ~line "badburst start" start)
        ~length:(int_of ~line "badburst length" len)
  | _ -> fail ~line "unknown channel %S" s

let parse_predictor ~line s =
  match split_spec s with
  | "one-step", [] -> Wfs_channel.Predictor.One_step
  | "perfect", [] -> Wfs_channel.Predictor.Perfect
  | "blind", [] -> Wfs_channel.Predictor.Blind
  | "snoop", [ k ] ->
      Wfs_channel.Predictor.Periodic_snoop (int_of ~line "snoop period" k)
  | _ -> fail ~line "unknown predictor %S" s

type flow_line = {
  weight : float;
  drop : Params.drop_policy;
  buffer : int option;
  host : int option;
  direction : direction;
  source_spec : string;
  channel_spec : string;
  line : int;
}

let parse_flow_line ~line tokens =
  let weight = ref 1. in
  let drop = ref Params.No_drop in
  let buffer = ref None in
  let host = ref None in
  let direction = ref Down in
  let source_spec = ref None in
  let channel_spec = ref None in
  List.iter
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> fail ~line "flow attribute %S is not key=value" tok
      | Some i ->
          let key = String.sub tok 0 i in
          let value = String.sub tok (i + 1) (String.length tok - i - 1) in
          (match key with
          | "weight" -> weight := float_of ~line "weight" value
          | "drop" -> drop := parse_drop ~line value
          | "buffer" -> buffer := Some (int_of ~line "buffer" value)
          | "host" -> host := Some (int_of ~line "host" value)
          | "dir" ->
              direction :=
                (match value with
                | "up" -> Up
                | "down" -> Down
                | _ -> fail ~line "dir must be up or down, got %S" value)
          | "source" -> source_spec := Some value
          | "channel" -> channel_spec := Some value
          | _ -> fail ~line "unknown flow attribute %S" key))
    tokens;
  let source_spec =
    match !source_spec with Some s -> s | None -> fail ~line "flow needs source="
  in
  let channel_spec =
    match !channel_spec with
    | Some s -> s
    | None -> fail ~line "flow needs channel="
  in
  {
    weight = !weight;
    drop = !drop;
    buffer = !buffer;
    host = !host;
    direction = !direction;
    source_spec;
    channel_spec;
    line;
  }

let tokens_of line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> String.length s > 0)

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let parse ?seed:seed_override ?horizon:horizon_override text =
  let horizon = ref 100_000 in
  let seed = ref 42 in
  let predictor = ref Wfs_channel.Predictor.One_step in
  let flow_lines = ref [] in
  let seen_flow = ref false in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      match tokens_of (strip_comment raw) with
      | [] -> ()
      | "horizon" :: [ n ] -> horizon := int_of ~line "horizon" n
      | "seed" :: [ n ] ->
          if !seen_flow then
            fail ~line "seed must be set before the first flow";
          seed := int_of ~line "seed" n
      | "predictor" :: [ p ] -> predictor := parse_predictor ~line p
      | "flow" :: attrs ->
          seen_flow := true;
          flow_lines := parse_flow_line ~line attrs :: !flow_lines
      | directive :: _ -> fail ~line "unknown directive %S" directive)
    (String.split_on_char '\n' text);
  let flow_lines = List.rev !flow_lines in
  if List.is_empty flow_lines then fail ~line:0 "scenario has no flows";
  (* CLI/run-spec overrides win over the file's directives: a spec names a
     (scenario, seed, horizon) triple, the file only provides defaults. *)
  Option.iter (fun s -> seed := s) seed_override;
  Option.iter (fun h -> horizon := h) horizon_override;
  let master = Wfs_util.Rng.create !seed in
  let rng () = Wfs_util.Rng.split master in
  let setups =
    Array.of_list
      (List.mapi
         (fun id fl ->
           let flow =
             Params.flow ~id ~weight:fl.weight ~drop:fl.drop ?buffer:fl.buffer ()
           in
           let source = parse_source ~line:fl.line ~rng fl.source_spec in
           let channel = parse_channel ~line:fl.line ~rng fl.channel_spec in
           { Simulator.flow; source; channel })
         flow_lines)
  in
  let addrs =
    Array.of_list
      (List.mapi
         (fun id fl ->
           (Option.value ~default:(id + 1) fl.host, fl.direction))
         flow_lines)
  in
  { setups; addrs; horizon = !horizon; predictor = !predictor; seed = !seed }

let load ?seed ?horizon path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse ?seed ?horizon text

let flows t = Presets.flows_of t.setups

let run ?scheduler t =
  let flow_params = flows t in
  let sched =
    match scheduler with
    | Some f -> f flow_params
    | None -> Wps.instance (Wps.create ~params:(Params.swapa ()) flow_params)
  in
  let cfg =
    Simulator.config ~predictor:t.predictor ~horizon:t.horizon t.setups
  in
  Simulator.run cfg sched
