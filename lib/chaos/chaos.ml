module Error = Wfs_util.Error
module Rng = Wfs_util.Rng
module Json = Wfs_util.Json
module Instruments = Wfs_obs.Instruments
module Spec = Wfs_runner.Spec

let who = "Wfs_chaos"

type fault =
  | Cell_crash of { cell : int }
  | Cell_recover of { cell : int }
  | Handoff_lost of { flow : int; src : int; dst : int }
  | Handoff_corrupt of { flow : int; src : int; dst : int }
  | Handoff_blocked of { flow : int; src : int; dst : int }
  | Blackout of { cell : int; until : int }
  | Worker_fault of { cell : int; persistent : bool }

type event = { slot : int; fault : fault }

(* Armed-fault cell: 0 = clean, 1 = transient, 2 = persistent.  Atomics
   because the owning worker domain consumes the flag ({!inject}) while
   the coordinator arms/disarms it between epochs. *)
let clean = 0
let transient = 1
let persistent = 2

type t = {
  plan : Spec.faults;
  rng : Rng.t;
  cells : int;
  down : bool array;
  blackout_until : int array;
  injected : int Atomic.t array;
  mutable timeline_rev : event list;
  registry : Instruments.t;
  c_crashes : Instruments.counter;
  c_recoveries : Instruments.counter;
  c_worker_faults : Instruments.counter;
  c_blackouts : Instruments.counter;
  c_rehomed : Instruments.counter;
  c_lost : Instruments.counter;
  c_corrupt : Instruments.counter;
  c_blocked : Instruments.counter;
  g_cells_down : Instruments.gauge;
  g_orphaned : Instruments.gauge;
  g_lost_lag : Instruments.gauge;
  g_lost_credit : Instruments.gauge;
  g_lost_packets : Instruments.gauge;
}

let create ~seed ~cells plan =
  if cells < 1 then Error.invalidf "Chaos.create" "cells must be >= 1, got %d" cells;
  let registry = Instruments.create () in
  {
    plan;
    rng = Rng.create seed;
    cells;
    down = Array.make cells false;
    blackout_until = Array.make cells 0;
    injected = Array.init cells (fun _ -> Atomic.make clean);
    timeline_rev = [];
    registry;
    c_crashes = Instruments.counter registry "chaos.crashes";
    c_recoveries = Instruments.counter registry "chaos.recoveries";
    c_worker_faults = Instruments.counter registry "chaos.worker_faults";
    c_blackouts = Instruments.counter registry "chaos.blackouts";
    c_rehomed = Instruments.counter registry "chaos.rehomed";
    c_lost = Instruments.counter registry "chaos.lost_handoffs";
    c_corrupt = Instruments.counter registry "chaos.corrupt_handoffs";
    c_blocked = Instruments.counter registry "chaos.blocked_handoffs";
    g_cells_down = Instruments.gauge registry "chaos.cells_down";
    g_orphaned = Instruments.gauge registry "chaos.orphaned";
    g_lost_lag = Instruments.gauge ~policy:Instruments.Sum registry "chaos.lost_lag";
    g_lost_credit =
      Instruments.gauge ~policy:Instruments.Sum registry "chaos.lost_credit";
    g_lost_packets =
      Instruments.gauge ~policy:Instruments.Sum registry "chaos.lost_packets";
  }

let plan t = t.plan
let record t ~slot fault = t.timeline_rev <- { slot; fault } :: t.timeline_rev

(* --- barrier draws --- *)

let draw_recoveries t ~slot =
  if t.plan.recover <= 0. then []
  else begin
    let recovered = ref [] in
    for c = 0 to t.cells - 1 do
      if t.down.(c) && Rng.bernoulli t.rng t.plan.recover then begin
        t.down.(c) <- false;
        Instruments.incr t.c_recoveries;
        record t ~slot (Cell_recover { cell = c });
        recovered := c :: !recovered
      end
    done;
    List.rev !recovered
  end

let draw_crashes t ~slot =
  if t.plan.crash <= 0. then []
  else begin
    let crashed = ref [] in
    for c = 0 to t.cells - 1 do
      if (not t.down.(c)) && Rng.bernoulli t.rng t.plan.crash then begin
        t.down.(c) <- true;
        Instruments.incr t.c_crashes;
        record t ~slot (Cell_crash { cell = c });
        crashed := c :: !crashed
      end
    done;
    List.rev !crashed
  end

let draw_blackouts t ~slot =
  if t.plan.blackout > 0. then
    for c = 0 to t.cells - 1 do
      if (not t.down.(c)) && Rng.bernoulli t.rng t.plan.blackout then begin
        let until = slot + t.plan.blackout_len in
        t.blackout_until.(c) <- until;
        Instruments.incr t.c_blackouts;
        record t ~slot (Blackout { cell = c; until })
      end
    done

let arm_worker_faults t ~slot =
  ignore slot;
  if t.plan.exn > 0. then
    for c = 0 to t.cells - 1 do
      if (not t.down.(c)) && Rng.bernoulli t.rng t.plan.exn then
        let kind =
          if Rng.bernoulli t.rng t.plan.persist then persistent else transient
        in
        Atomic.set t.injected.(c) kind
    done

type verdict = Deliver | Blocked | Lost | Corrupt

let handoff_verdict t ~slot ~flow ~src ~dst =
  if t.down.(dst) then begin
    (* Liveness is already decided, so refusing without a draw keeps the
       stream aligned with runs where this move went elsewhere. *)
    Instruments.incr t.c_blocked;
    record t ~slot (Handoff_blocked { flow; src; dst });
    Blocked
  end
  else if t.plan.lose > 0. && Rng.bernoulli t.rng t.plan.lose then begin
    Instruments.incr t.c_lost;
    record t ~slot (Handoff_lost { flow; src; dst });
    Lost
  end
  else if t.plan.corrupt > 0. && Rng.bernoulli t.rng t.plan.corrupt then begin
    Instruments.incr t.c_corrupt;
    record t ~slot (Handoff_corrupt { flow; src; dst });
    Corrupt
  end
  else Deliver

let down_count t =
  let n = ref 0 in
  Array.iter (fun d -> if d then incr n) t.down;
  !n

let rehome_target t =
  let up = t.cells - down_count t in
  if up = 0 then None
  else begin
    let k = ref (Rng.int t.rng up) in
    let target = ref 0 in
    (try
       for c = 0 to t.cells - 1 do
         if not t.down.(c) then
           if !k = 0 then begin
             target := c;
             raise Exit
           end
           else decr k
       done
     with Exit -> ());
    Some !target
  end

(* --- state queries --- *)

let is_down t ~cell = t.down.(cell)
let blacked_out t ~cell ~slot = slot < t.blackout_until.(cell)

(* --- worker-side injection --- *)

let inject t ~cell =
  let flag = t.injected.(cell) in
  match Atomic.get flag with
  | 1 ->
      Atomic.set flag clean;
      Error.sim_fault ~who "injected worker fault"
        ~context:
          [ ("chaos-fault", "transient"); ("cell", string_of_int cell) ]
  | 2 ->
      Error.sim_fault ~who "injected worker fault"
        ~context:
          [ ("chaos-fault", "persistent"); ("cell", string_of_int cell) ]
  | _ -> ()

let injected_fault (e : Error.t) =
  (match e.kind with Error.Sim_fault -> true | _ -> false)
  && String.equal e.who who
  && Option.is_some (List.assoc_opt "chaos-fault" e.context)

let retryable (e : Error.t) =
  (match e.kind with Error.Sim_fault -> true | _ -> false)
  && String.equal e.who who
  && (match List.assoc_opt "chaos-fault" e.context with
     | Some v -> String.equal v "transient"
     | None -> false)

let note_worker_fault t ~slot ~cell =
  t.down.(cell) <- true;
  Atomic.set t.injected.(cell) clean;
  Instruments.incr t.c_worker_faults;
  record t ~slot (Worker_fault { cell; persistent = true })

(* --- carried-state corruption --- *)

let carry_digest (c : Wfs_core.Wireless_sched.carry) =
  let mix h x = ((h lsl 7) - h) lxor x in
  let h = mix 0x5deece66d (Int64.to_int (Int64.bits_of_float c.lag)) in
  mix h c.credit

let mangle_carry (c : Wfs_core.Wireless_sched.carry) =
  (* Affine, so even carry_zero moves to a distinct point; the lag flip
     keeps the value finite and representable. *)
  { Wfs_core.Wireless_sched.lag = (-1.0 *. c.lag) -. 1.0e6;
    credit = -c.credit - 1_000_003 }

(* --- telemetry --- *)

let note_lost_carry t ~lag ~credit ~packets =
  Instruments.set t.g_lost_lag (Float.abs lag);
  Instruments.set t.g_lost_credit (Float.of_int (abs credit));
  Instruments.set t.g_lost_packets (Float.of_int packets)

let note_rehomed t = Instruments.incr t.c_rehomed

let note_gauges t ~orphaned =
  Instruments.set t.g_cells_down (Float.of_int (down_count t));
  Instruments.set t.g_orphaned (Float.of_int orphaned)

let instruments t = t.registry
let timeline t = List.rev t.timeline_rev

(* --- serialization --- *)

let fault_to_string = function
  | Cell_crash { cell } -> Printf.sprintf "crash cell=%d" cell
  | Cell_recover { cell } -> Printf.sprintf "recover cell=%d" cell
  | Handoff_lost { flow; src; dst } ->
      Printf.sprintf "lost-handoff flow=%d %d->%d" flow src dst
  | Handoff_corrupt { flow; src; dst } ->
      Printf.sprintf "corrupt-handoff flow=%d %d->%d" flow src dst
  | Handoff_blocked { flow; src; dst } ->
      Printf.sprintf "blocked-handoff flow=%d %d->%d" flow src dst
  | Blackout { cell; until } ->
      Printf.sprintf "blackout cell=%d until=%d" cell until
  | Worker_fault { cell; persistent } ->
      Printf.sprintf "worker-fault cell=%d %s" cell
        (if persistent then "persistent" else "transient")

let fault_to_json = function
  | Cell_crash { cell } ->
      Json.Obj [ ("kind", Json.Str "crash"); ("cell", Json.Int cell) ]
  | Cell_recover { cell } ->
      Json.Obj [ ("kind", Json.Str "recover"); ("cell", Json.Int cell) ]
  | Handoff_lost { flow; src; dst } ->
      Json.Obj
        [ ("kind", Json.Str "lost"); ("flow", Json.Int flow);
          ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Handoff_corrupt { flow; src; dst } ->
      Json.Obj
        [ ("kind", Json.Str "corrupt"); ("flow", Json.Int flow);
          ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Handoff_blocked { flow; src; dst } ->
      Json.Obj
        [ ("kind", Json.Str "blocked"); ("flow", Json.Int flow);
          ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Blackout { cell; until } ->
      Json.Obj
        [ ("kind", Json.Str "blackout"); ("cell", Json.Int cell);
          ("until", Json.Int until) ]
  | Worker_fault { cell; persistent } ->
      Json.Obj
        [ ("kind", Json.Str "worker"); ("cell", Json.Int cell);
          ("persistent", Json.Bool persistent) ]

let fault_of_json j =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let* kind = Option.bind (Json.member "kind" j) Json.to_str in
  match kind with
  | "crash" ->
      let* cell = int "cell" in
      Some (Cell_crash { cell })
  | "recover" ->
      let* cell = int "cell" in
      Some (Cell_recover { cell })
  | "lost" | "corrupt" | "blocked" ->
      let* flow = int "flow" in
      let* src = int "src" in
      let* dst = int "dst" in
      Some
        (match kind with
        | "lost" -> Handoff_lost { flow; src; dst }
        | "corrupt" -> Handoff_corrupt { flow; src; dst }
        | _ -> Handoff_blocked { flow; src; dst })
  | "blackout" ->
      let* cell = int "cell" in
      let* until = int "until" in
      Some (Blackout { cell; until })
  | "worker" ->
      let* cell = int "cell" in
      let* persistent =
        match Json.member "persistent" j with
        | Some (Json.Bool b) -> Some b
        | _ -> None
      in
      Some (Worker_fault { cell; persistent })
  | _ -> None

let event_to_json { slot; fault } =
  Json.Obj [ ("slot", Json.Int slot); ("fault", fault_to_json fault) ]

let event_of_json j =
  let ( let* ) = Option.bind in
  let* slot = Option.bind (Json.member "slot" j) Json.to_int in
  let* fault = Option.bind (Json.member "fault" j) fault_of_json in
  Some { slot; fault }

let fault_equal a b =
  match (a, b) with
  | Cell_crash { cell = a }, Cell_crash { cell = b }
  | Cell_recover { cell = a }, Cell_recover { cell = b } ->
      Int.equal a b
  | ( Handoff_lost { flow; src; dst },
      Handoff_lost { flow = flow'; src = src'; dst = dst' } )
  | ( Handoff_corrupt { flow; src; dst },
      Handoff_corrupt { flow = flow'; src = src'; dst = dst' } )
  | ( Handoff_blocked { flow; src; dst },
      Handoff_blocked { flow = flow'; src = src'; dst = dst' } ) ->
      Int.equal flow flow' && Int.equal src src' && Int.equal dst dst'
  | Blackout { cell; until }, Blackout { cell = cell'; until = until' } ->
      Int.equal cell cell' && Int.equal until until'
  | ( Worker_fault { cell; persistent },
      Worker_fault { cell = cell'; persistent = persistent' } ) ->
      Int.equal cell cell' && Bool.equal persistent persistent'
  | ( ( Cell_crash _ | Cell_recover _ | Handoff_lost _ | Handoff_corrupt _
      | Handoff_blocked _ | Blackout _ | Worker_fault _ ),
      _ ) ->
      false

let event_equal a b = Int.equal a.slot b.slot && fault_equal a.fault b.fault
let timeline_to_json t = Json.Arr (List.map event_to_json (timeline t))

let timeline_context t =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let recent = List.rev (take 8 t.timeline_rev) in
  let rendered =
    List.map
      (fun { slot; fault } ->
        Printf.sprintf "slot %d: %s" slot (fault_to_string fault))
      recent
  in
  [
    ("chaos-faults", string_of_int (List.length t.timeline_rev));
    ("chaos-timeline", String.concat "; " rendered);
  ]
