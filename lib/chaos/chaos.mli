(** Deterministic fault injection for multi-cell topology runs.

    A chaos engine turns a {!Wfs_runner.Spec.faults} plan into a concrete,
    reproducible fault schedule.  Every draw comes from the engine's own
    RNG stream (seeded from the master seed at a cell index above every
    real cell's, like the mobility stream) and happens only inside the
    sequential epoch barrier — never on a worker domain — so a faulted run
    is byte-identical across [--jobs] values, and an {e inert} plan (all
    rates zero) consumes zero draws and perturbs nothing.

    The engine owns the fault {e decisions} and their telemetry; the
    topology layer owns their {e consequences} (orphaning a crashed cell's
    flows, zeroing a corrupted carry, re-homing at the next barrier).
    Worker domains touch exactly two read paths — {!inject} (their own
    cell's armed-fault atomic) and {!blacked_out} (arrays written only
    between epochs) — everything else is barrier-side.

    Fault taxonomy and the determinism argument: [docs/ROBUSTNESS.md]. *)

(** One scheduled fault occurrence. *)
type fault =
  | Cell_crash of { cell : int }
      (** the cell dies at a barrier: its flows are orphaned, their
          banked service dissolved under the §5/§7 carry ledger *)
  | Cell_recover of { cell : int }  (** a crashed cell comes back empty *)
  | Handoff_lost of { flow : int; src : int; dst : int }
      (** the handoff parcel vanishes in transit: the flow arrives with
          {!Wfs_core.Wireless_sched.carry_zero} and an empty backlog *)
  | Handoff_corrupt of { flow : int; src : int; dst : int }
      (** the carried state is mangled in transit; the receiver detects
          the digest mismatch and falls back to a zero carry *)
  | Handoff_blocked of { flow : int; src : int; dst : int }
      (** the drawn destination cell is down; the move is cancelled *)
  | Blackout of { cell : int; until : int }
      (** every channel in the cell is forced Bad until slot [until] *)
  | Worker_fault of { cell : int; persistent : bool }
      (** an injected worker-domain exception fired during the cell's
          epoch advance *)

type event = { slot : int; fault : fault }

type t
(** A chaos engine for one topology run: the plan, its private RNG
    stream, per-cell liveness / blackout / armed-fault state, its own
    {!Wfs_obs.Instruments} registry, and the fault timeline. *)

val create : seed:int -> cells:int -> Wfs_runner.Spec.faults -> t
(** [create ~seed ~cells plan] — [seed] is the chaos stream's own seed
    (the topology derives it with
    [Topology.cell_seed ~seed ~cell:(cells + 1)]; the mobility stream
    sits at [cells]).
    @raise Invalid_argument when [cells < 1]. *)

val plan : t -> Wfs_runner.Spec.faults

(** {1 Barrier draws}

    All of these run on the coordinating domain between epochs, in a
    fixed order (recoveries, crashes, blackouts, armed faults, then the
    per-handoff verdicts and re-home draws as the topology replays
    moves).  Iteration is always in ascending cell / flow order, so the
    stream consumption — and hence every later draw — is deterministic. *)

val draw_recoveries : t -> slot:int -> int list
(** Bernoulli([plan.recover]) per {e down} cell; recovered cells (marked
    up, counted, timelined) in ascending order. *)

val draw_crashes : t -> slot:int -> int list
(** Bernoulli([plan.crash]) per {e up} cell; crashed cells (marked down,
    counted, timelined) in ascending order. *)

val draw_blackouts : t -> slot:int -> unit
(** Bernoulli([plan.blackout]) per up cell; a hit forces the cell's
    channels Bad for the next [plan.blackout_len] slots. *)

val arm_worker_faults : t -> slot:int -> unit
(** Bernoulli([plan.exn]) per up cell; a hit arms an injected exception
    for the cell's next epoch advance, persistent (survives the pool's
    retry) with probability [plan.persist]. *)

(** Transit outcome for one executed handoff. *)
type verdict = Deliver | Blocked | Lost | Corrupt

val handoff_verdict : t -> slot:int -> flow:int -> src:int -> dst:int -> verdict
(** Decide one handoff's fate.  A down destination is [Blocked] without
    consuming any draw (liveness is already deterministic); otherwise a
    [plan.lose] draw, then — only when not lost — a [plan.corrupt] draw.
    Counts and timelines every non-[Deliver] verdict. *)

val rehome_target : t -> int option
(** Uniform draw over the currently-up cells for one orphaned flow;
    [None] (and no draw consumed) when every cell is down. *)

(** {1 State queries} *)

val is_down : t -> cell:int -> bool
val down_count : t -> int

val blacked_out : t -> cell:int -> slot:int -> bool
(** Safe from worker domains: the blackout table is written only at
    barriers. *)

(** {1 Worker-side injection} *)

val inject : t -> cell:int -> unit
(** Called by the cell's epoch-advance thunk {e before} it mutates any
    session state.  Raises the armed fault as a typed [Sim_fault]
    (who ["Wfs_chaos"], context [chaos-fault = transient|persistent]) —
    a transient fault is consumed by the raise, so the pool's retry of
    the same clean-state thunk succeeds; a persistent one stays armed
    and fails every retry. *)

val injected_fault : Wfs_util.Error.t -> bool
(** True for any error raised by {!inject} (transient or persistent) —
    the topology uses it to tell budget-accountable injected faults from
    real worker errors, which must still propagate. *)

val retryable : Wfs_util.Error.t -> bool
(** The [retry_if] classifier for {!Wfs_runner.Pool.map_outcomes}: true
    exactly for transient injected faults. *)

val note_worker_fault : t -> slot:int -> cell:int -> unit
(** Accept a persistent injected fault that survived its retries: mark
    the cell down (its flows will be orphaned), disarm it, count and
    timeline the fault.  The caller enforces [plan.budget]. *)

(** {1 Carried-state corruption} *)

val carry_digest : Wfs_core.Wireless_sched.carry -> int
(** Deterministic digest of a §5/§7 carry (bit-exact over [lag]). *)

val mangle_carry : Wfs_core.Wireless_sched.carry -> Wfs_core.Wireless_sched.carry
(** The corruption applied in transit; guaranteed to change the digest
    of any carry (including {!Wfs_core.Wireless_sched.carry_zero}). *)

(** {1 Telemetry} *)

val note_lost_carry : t -> lag:float -> credit:int -> packets:int -> unit
(** Record the magnitude of state destroyed by a lost or corrupted
    handoff ([Sum] gauges [chaos.lost_lag] / [chaos.lost_credit] /
    [chaos.lost_packets]).  Crash orphans are {e not} lost state — their
    parcels re-home intact under the carry ledger. *)

val note_rehomed : t -> unit

val note_gauges : t -> orphaned:int -> unit
(** End-of-barrier gauge sweep: peak cells down, peak orphaned flows. *)

val instruments : t -> Wfs_obs.Instruments.t
(** The engine's own registry — deliberately {e not} merged into the
    per-cell scheduler instruments (those merge positionally across
    worker registries; chaos telemetry is barrier-side and global). *)

val timeline : t -> event list
(** Chronological. *)

val fault_to_string : fault -> string
val fault_to_json : fault -> Wfs_util.Json.t
val fault_of_json : Wfs_util.Json.t -> fault option
val event_to_json : event -> Wfs_util.Json.t
val event_of_json : Wfs_util.Json.t -> event option
val event_equal : event -> event -> bool

val timeline_to_json : t -> Wfs_util.Json.t
(** [Arr] of {!event_to_json}, chronological; round-trips through
    {!event_of_json}. *)

val timeline_context : t -> (string * string) list
(** The most recent faults rendered for {!Wfs_util.Error.add_context},
    so failure reports carry the fault history that led up to them. *)
