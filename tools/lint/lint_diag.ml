(* Diagnostics for wfs_lint: location, rule id, message, and a sink that
   deduplicates and sorts for stable output. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | Supp

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | Supp -> "SUPP"

let rule_of_id = function
  | "R1" | "r1" -> Some R1
  | "R2" | "r2" -> Some R2
  | "R3" | "r3" -> Some R3
  | "R4" | "r4" -> Some R4
  | "R5" | "r5" -> Some R5
  | "R6" | "r6" -> Some R6
  | "R7" | "r7" -> Some R7
  | "R8" | "r8" -> Some R8
  | "SUPP" | "supp" -> Some Supp
  | _ -> None

let rule_title = function
  | R1 -> "ambient nondeterminism"
  | R2 -> "polymorphic comparison"
  | R3 -> "exact float equality"
  | R4 -> "physical equality"
  | R5 -> "bare exception escape"
  | R6 -> "untyped error raising"
  | R7 -> "allocation in hot scope"
  | R8 -> "direct printing in library code"
  | Supp -> "suppression hygiene"

type t = {
  file : string;
  line : int;  (* 1-based *)
  col : int;  (* 0-based, matches compiler convention *)
  rule : rule;
  message : string;
}

let make ~file ~line ~col ~rule message = { file; line; col; rule; message }

let of_location ~rule ~message (loc : Location.t) =
  let pos = loc.loc_start in
  {
    file = pos.pos_fname;
    line = pos.pos_lnum;
    col = pos.pos_cnum - pos.pos_bol;
    rule;
    message;
  }

let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_id a.rule) (rule_id b.rule)

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col (rule_id d.rule)
    d.message

(* A sink collects diagnostics across files. *)

type sink = { mutable diags : t list }

let sink () = { diags = [] }
let report sink d = sink.diags <- d :: sink.diags

let contents sink =
  let sorted = List.sort compare_diag sink.diags in
  (* Drop exact duplicates (same site, same rule). *)
  let rec dedup = function
    | a :: b :: rest when compare_diag a b = 0 -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted
