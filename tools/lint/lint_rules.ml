(* The wfs_lint rule set, as an Ast_iterator walk over compiler-libs
   parsetrees.

   The rules formalize the determinism contract of the simulator: every
   published table must be bit-reproducible from a scenario and a seed, so
   no code path in lib/ may consult ambient state (R1), compare through
   the polymorphic runtime on non-immediate values (R2), test computed
   floats for exact equality (R3), use physical equality without a stated
   identity invariant (R4), or let container exceptions escape a hot path
   unhandled (R5).  bin/, bench/ and examples/ are held to R4 only — they
   render results rather than produce them.

   Everything here is purely syntactic (parsetree, not typedtree), so each
   detector errs toward the patterns that actually occur in this tree; the
   known blind spots are documented per rule in docs/LINT.md. *)

open Parsetree
module Diag = Analysis_kit.Diag

type file_class = Lib | Other

(* --- the rule table --- *)

let r1 = { Diag.id = "R1"; title = "ambient nondeterminism" }
let r2 = { Diag.id = "R2"; title = "polymorphic comparison" }
let r3 = { Diag.id = "R3"; title = "exact float equality" }
let r4 = { Diag.id = "R4"; title = "physical equality" }
let r5 = { Diag.id = "R5"; title = "bare exception escape" }
let r6 = { Diag.id = "R6"; title = "untyped error raising" }
let r7 = { Diag.id = "R7"; title = "allocation in hot scope" }
let r8 = { Diag.id = "R8"; title = "direct printing in library code" }
let supp = { Diag.id = "SUPP"; title = "suppression hygiene" }
let all_rules = [ r1; r2; r3; r4; r5; r6; r7; r8; supp ]

let rule_of_id tok =
  let tok = String.uppercase_ascii tok in
  List.find_opt (fun r -> String.equal r.Diag.id tok) all_rules

(* --- longident helpers --- *)

let name_of_lid lid =
  match Longident.flatten lid with
  | exception _ -> ""
  | parts -> String.concat "." parts

let drop_stdlib n =
  if String.length n > 7 && String.sub n 0 7 = "Stdlib." then
    String.sub n 7 (String.length n - 7)
  else n

let head_module n = match String.index_opt n '.' with
  | Some i -> String.sub n 0 i
  | None -> ""

let last_component n =
  match String.rindex_opt n '.' with
  | Some i -> String.sub n (i + 1) (String.length n - i - 1)
  | None -> n

(* --- R1: ambient nondeterminism --- *)

let r1_message name =
  match head_module name with
  | "Random" ->
      Printf.sprintf
        "%s uses the ambient global RNG; draw from a seeded Wfs_util.Rng \
         stream threaded through the scenario instead" name
  | "Unix" | "Sys" ->
      Printf.sprintf
        "%s reads wall-clock state; simulation time must flow through \
         Wfs_sim.Clock / slot indices only" name
  | _ ->
      Printf.sprintf
        "%s visits bindings in hash order, which is not a stable order \
         (and is randomizable via OCAMLRUNPARAM=R); collect the bindings \
         and sort by key, or keep an explicit key list" name

let r1_exact =
  [
    "Unix.gettimeofday"; "Unix.time"; "Unix.times"; "Sys.time";
    "Hashtbl.hash"; "Hashtbl.seeded_hash"; "Hashtbl.hash_param";
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.randomize";
    "Hashtbl.to_seq"; "Hashtbl.to_seq_keys"; "Hashtbl.to_seq_values";
  ]

let r1_match name =
  head_module name = "Random" || List.mem name r1_exact

(* --- R2: polymorphic comparison --- *)

let r2_poly_funs = [ "compare"; "min"; "max" ]

let r2_fun_message name =
  if name = "List.mem" then
    "List.mem compares with polymorphic equality; use List.memq for \
     immediates or List.exists with an explicit equality"
  else
    Printf.sprintf
      "polymorphic %s goes through the runtime comparator and cannot be \
       specialized when passed first-class; use Int.%s / Float.%s or a \
       module-explicit comparator" name name name

let comparison_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

let rec strip e =
  match e.pexp_desc with Pexp_constraint (e', _) -> strip e' | _ -> e

(* Operands whose syntax proves a non-immediate (structural) comparison. *)
let structural_kind e =
  match (strip e).pexp_desc with
  | Pexp_tuple _ -> Some "tuple operand: compare fields explicitly"
  | Pexp_record _ -> Some "record operand: compare fields explicitly"
  | Pexp_array _ -> Some "array operand: compare elementwise"
  | Pexp_constant (Pconst_string _) ->
      Some "string operand: use String.equal / String.compare"
  | Pexp_construct ({ txt; _ }, arg) -> (
      match (name_of_lid txt, arg) with
      | ("[]" | "::"), _ ->
          Some "list operand: match on the shape or use List.is_empty / List.equal"
      | "None", _ -> Some "option operand: use Option.is_none"
      | "Some", _ -> Some "option operand: use Option.is_some / Option.equal"
      | _, Some _ -> Some "constructor payload: compare through a typed equality"
      | _, None -> None)
  | _ -> None

(* --- R3: exact float equality --- *)

let float_idents =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

let float_funs =
  [
    "+."; "-."; "*."; "/."; "**"; "~-."; "sqrt"; "exp"; "log"; "log10";
    "expm1"; "log1p"; "floor"; "ceil"; "abs_float"; "mod_float"; "copysign";
    "float_of_int"; "float_of_string"; "ldexp"; "frexp";
  ]

(* Float.* functions that do NOT return float. *)
let float_module_nonfloat =
  [
    "Float.compare"; "Float.equal"; "Float.hash"; "Float.to_int";
    "Float.to_string"; "Float.is_nan"; "Float.is_finite"; "Float.is_integer";
    "Float.sign_bit"; "Float.classify_float";
  ]

let is_float_const e =
  let rec go e =
    match (strip e).pexp_desc with
    | Pexp_constant (Pconst_float _) -> true
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, arg) ])
      when drop_stdlib (name_of_lid txt) = "~-." ->
        go arg
    | _ -> false
  in
  go e

let is_floaty e =
  match (strip e).pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } ->
      let n = drop_stdlib (name_of_lid txt) in
      List.mem n float_idents || n = "Float.pi"
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let n = drop_stdlib (name_of_lid txt) in
      List.mem n float_funs
      || (head_module n = "Float" && not (List.mem n float_module_nonfloat))
  | _ -> false

(* --- R7: allocation in hot scopes --- *)

(* Scope marker: a [@hot] attribute on a let-binding (the usual form) or on
   an expression marks its body as a per-slot hot path.  Inside, closure
   literals and the fresh-container combinators below are flagged: each
   allocates on every execution, which is exactly what the preallocated
   scratch / hoisted-closure discipline of the optimized schedulers exists
   to avoid.  Purely syntactic, like everything here: partial applications
   (which also allocate) and allocations hidden in callees are known blind
   spots, reviewed by hand. *)

let has_hot_attr attrs =
  List.exists (fun (a : attribute) -> a.attr_name.txt = "hot") attrs

let r7_banned_calls =
  [
    "Array.map"; "Array.mapi"; "Array.init"; "Array.make";
    "Array.create_float"; "Array.make_matrix"; "Array.copy"; "Array.append";
    "Array.concat"; "Array.sub"; "Array.to_list"; "Array.of_list";
    "List.map"; "List.mapi"; "List.init"; "List.append"; "List.concat";
    "List.concat_map"; "List.filter"; "List.filter_map"; "List.rev_map";
    "List.rev"; "List.sort"; "List.stable_sort"; "List.sort_uniq";
  ]

let r7_call_message n =
  Printf.sprintf
    "%s allocates a fresh container on every pass through a [@hot] scope; \
     preallocate scratch outside the loop and fill it in place, or hoist \
     the computation out of the hot path" n

let r7_closure_message =
  "closure literal inside a [@hot] scope allocates on every pass; hoist it \
   to a toplevel function or a field preallocated at construction time \
   (see Iwfq.accept_eligible for the stash-field pattern)"

(* --- R8: direct printing in library code --- *)

(* Library code must stay silent: simulators and schedulers are driven by
   CLIs, the bench, and tests, all of which own stdout/stderr (the bench
   parses its own output; --csv pipes must stay clean).  Rendering belongs
   in returned values (strings, Tablefmt.t) and printing in bin/ and
   bench/.  The matcher is syntactic, so [Printf.sprintf] (which only
   builds a string) is untouched. *)

let r8_banned =
  [
    "print_string"; "print_endline"; "print_char"; "print_newline";
    "print_int"; "print_float"; "print_bytes";
    "prerr_string"; "prerr_endline"; "prerr_char"; "prerr_newline";
    "prerr_int"; "prerr_float"; "prerr_bytes";
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "Format.print_string"; "Format.print_newline";
  ]

let r8_message n =
  Printf.sprintf
    "%s writes to the process's standard channels from library code; \
     return a string or a Wfs_util.Tablefmt.t and let the binary decide \
     where output goes (bench --csv pipes and the runner's progress lines \
     must stay clean)" n

(* --- R6: untyped error raising --- *)

let r6_message what =
  Printf.sprintf
    "%s bypasses the typed error taxonomy; raise through Wfs_util.Error \
     (Error.invalid / Error.invalidf for the Invalid_argument convention, \
     bad_spec / bad_config / sim_fault for typed kinds) so sweep drivers \
     can classify and report the failure"
    what

(* --- R5: bare exception escapes --- *)

(* function -> (exception it raises, total replacement) *)
let r5_table =
  [
    ("Queue.pop", ("Queue.Empty", "Queue.take_opt"));
    ("Queue.take", ("Queue.Empty", "Queue.take_opt"));
    ("Queue.peek", ("Queue.Empty", "Queue.peek_opt"));
    ("Queue.top", ("Queue.Empty", "Queue.peek_opt"));
    ("Hashtbl.find", ("Not_found", "Hashtbl.find_opt"));
    ("List.assoc", ("Not_found", "List.assoc_opt"));
    ("List.find", ("Not_found", "List.find_opt"));
  ]

(* Exception constructors named by a try-case pattern. *)
let rec exn_names_of_pattern p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> [ drop_stdlib (name_of_lid txt) ]
  | Ppat_or (a, b) -> exn_names_of_pattern a @ exn_names_of_pattern b
  | Ppat_alias (p, _) -> exn_names_of_pattern p
  | Ppat_any | Ppat_var _ -> [ "*" ]
  | _ -> []

(* Exception constructors handled by a match's [exception p] cases. *)
let rec exn_cases_of_pattern p =
  match p.ppat_desc with
  | Ppat_exception q -> exn_names_of_pattern q
  | Ppat_or (a, b) -> exn_cases_of_pattern a @ exn_cases_of_pattern b
  | Ppat_alias (p, _) -> exn_cases_of_pattern p
  | _ -> []

let exn_matches ~handled exn =
  handled = "*" || handled = exn || handled = last_component exn

(* --- the walk --- *)

let check_file ~file_class ?(r6_exempt = false) ~sink ~suppress
    structure_or_sig =
  (* Stack of handled-exception sets: one frame per enclosing [try] body or
     [match] scrutinee currently being visited. *)
  let ctx : string list list ref = ref [] in
  (* Nesting depth of [@hot] scopes currently being visited (R7). *)
  let hot = ref 0 in
  let exn_handled exn =
    List.exists (List.exists (fun h -> exn_matches ~handled:h exn)) !ctx
  in
  let report ~loc ~rule msg =
    let d = Diag.of_location ~rule ~message:msg loc in
    if not (Analysis_kit.Suppress.covers suppress d) then Diag.report sink d
  in
  let check_ident txt loc =
    let n = drop_stdlib (name_of_lid txt) in
    if file_class = Lib then begin
      if r1_match n then report ~loc ~rule:r1 (r1_message n);
      if !hot > 0 && List.mem n r7_banned_calls then
        report ~loc ~rule:r7 (r7_call_message n);
      if List.mem n r2_poly_funs || n = "List.mem" then
        report ~loc ~rule:r2 (r2_fun_message n);
      if List.mem n r8_banned then
        report ~loc ~rule:r8 (r8_message n);
      if (n = "failwith" || n = "invalid_arg") && not r6_exempt then
        report ~loc ~rule:r6 (r6_message ("bare " ^ n));
      match List.assoc_opt n r5_table with
      | Some (exn, replacement) ->
          if not (exn_handled exn) then
            report ~loc ~rule:r5
              (Printf.sprintf
                 "%s may raise %s across the hot path; use %s or handle %s \
                  locally (try / match-exception around this call)"
                 n exn replacement exn)
      | None -> ()
    end
  in
  let check_apply e fn args =
    match (strip fn).pexp_desc with
    | Pexp_ident { txt; _ } -> (
        let n = drop_stdlib (name_of_lid txt) in
        let operands = List.map snd args in
        match (n, operands) with
        | ("==" | "!="), _ ->
            report ~loc:e.pexp_loc ~rule:r4
              (Printf.sprintf
                 "physical equality %s: use structural (=) on immutable data, \
                  or state the mutable-identity invariant in a lint \
                  allow-comment" n)
        | ("=" | "<>"), [ a; b ]
          when file_class = Lib
               && (is_floaty a || is_floaty b)
               && not (is_float_const a && is_float_const b) ->
            report ~loc:e.pexp_loc ~rule:r3
              (Printf.sprintf
                 "exact float %s on a computed value: virtual times and \
                  credits accumulate rounding, so exact equality is \
                  load-bearing luck; compare against a tolerance, an \
                  inequality, or document the sentinel" n)
        | "raise", [ arg ]
          when file_class = Lib && not r6_exempt -> (
            match (strip arg).pexp_desc with
            | Pexp_construct ({ txt; _ }, _)
              when List.mem
                     (drop_stdlib (name_of_lid txt))
                     [ "Invalid_argument"; "Failure" ] ->
                report ~loc:e.pexp_loc ~rule:r6
                  (r6_message
                     ("raise "
                     ^ drop_stdlib (name_of_lid txt)))
            | _ -> ())
        | op, a :: b :: _ when file_class = Lib && List.mem op comparison_ops
          -> (
            match
              match structural_kind a with
              | Some k -> Some k
              | None -> structural_kind b
            with
            | Some kind ->
                report ~loc:e.pexp_loc ~rule:r2
                  (Printf.sprintf
                     "polymorphic %s on a non-immediate value (%s)" op kind)
            | None -> ())
        | _ -> ())
    | _ -> ()
  in
  (* Skip over an annotated binding's own parameter list: the leading
     lambda chain IS the hot function, not a closure allocated inside it.
     Parameter patterns and optional-argument defaults are visited normally
     on the way down. *)
  let rec hot_strip self e =
    match e.pexp_desc with
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (self.Ast_iterator.expr self) default;
        self.Ast_iterator.pat self pat;
        hot_strip self body
    | Pexp_newtype (_, body) -> hot_strip self body
    | _ -> e
  in
  let expr self e =
    let dispatch e =
      match e.pexp_desc with
      | Pexp_try (body, cases) ->
          let handled = List.concat_map (fun c -> exn_names_of_pattern c.pc_lhs) cases in
          ctx := handled :: !ctx;
          self.Ast_iterator.expr self body;
          ctx := List.tl !ctx;
          List.iter (self.Ast_iterator.case self) cases
      | Pexp_match (scrut, cases) ->
          let handled = List.concat_map (fun c -> exn_cases_of_pattern c.pc_lhs) cases in
          ctx := handled :: !ctx;
          self.Ast_iterator.expr self scrut;
          ctx := List.tl !ctx;
          List.iter (self.Ast_iterator.case self) cases
      | Pexp_ident { txt; loc } -> check_ident txt loc
      | Pexp_apply (fn, args) ->
          check_apply e fn args;
          Ast_iterator.default_iterator.expr self e
      | (Pexp_fun _ | Pexp_function _) when file_class = Lib && !hot > 0 ->
          report ~loc:e.pexp_loc ~rule:r7 r7_closure_message;
          Ast_iterator.default_iterator.expr self e
      | _ -> Ast_iterator.default_iterator.expr self e
    in
    if has_hot_attr e.pexp_attributes then begin
      incr hot;
      dispatch (hot_strip self e);
      decr hot
    end
    else dispatch e
  in
  let value_binding self vb =
    if has_hot_attr vb.pvb_attributes then begin
      self.Ast_iterator.pat self vb.pvb_pat;
      incr hot;
      self.Ast_iterator.expr self (hot_strip self vb.pvb_expr);
      decr hot
    end
    else Ast_iterator.default_iterator.value_binding self vb
  in
  let iterator = { Ast_iterator.default_iterator with expr; value_binding } in
  match structure_or_sig with
  | `Impl structure -> iterator.structure iterator structure
  | `Intf signature -> iterator.signature iterator signature
