(* wfs_lint — determinism & correctness static analysis for the wfs tree.

   Usage:
     wfs_lint [--sarif PATH] DIR...   lint every .ml/.mli under the roots
     wfs_lint --fixtures DIR          self-test mode over known-bad snippets
     wfs_lint --list-rules            print the rule set

   Exit status: 0 clean, 1 violations found, 2 usage/parse failure.

   Files under a path component named [lib] get the full rule set; other
   roots (bin/, bench/, examples/) are held to R4 only.  See docs/LINT.md
   for the rationale of each rule.

   This is tier one of the two-tier pipeline: a parsetree walk that needs
   no build artifacts and runs on anything that parses.  Its typedtree
   complement, wfs_analyze, picks up what syntax cannot see (aliases,
   opens, cross-module flows); see docs/ANALYSIS.md.  Both share the
   diagnostic, suppression and SARIF machinery in tools/analysis_kit, so
   reports are globally sorted by (file, line, col, rule) and byte-stable
   regardless of traversal order. *)

module Diag = Analysis_kit.Diag

let usage =
  "usage: wfs_lint [--sarif PATH] DIR... | --fixtures DIR | --list-rules"

let rules_help =
  [
    ( "R1",
      "no ambient nondeterminism: Random.*, Unix.gettimeofday/time, \
       Sys.time, Hashtbl.hash, and hash-order iteration (Hashtbl.iter/\
       fold/to_seq*) are banned in lib/" );
    ( "R2",
      "no polymorphic comparison in lib/: bare compare/min/max/List.mem, \
       and =/<>/</>/<=/>= where an operand is syntactically a string, \
       list, option, tuple, record, array, or constructor payload" );
    ( "R3",
      "no exact float =/<> in lib/ where either operand is a computed \
       float expression (literal-vs-literal is allowed)" );
    ( "R4",
      "no physical equality ==/!= anywhere without an allow-comment \
       stating the mutable-identity invariant" );
    ( "R5",
      "no Queue.pop/peek/take/top, Hashtbl.find, List.assoc/find in lib/ \
       outside a local handler for Queue.Empty / Not_found; use the _opt \
       variants" );
    ( "R6",
      "no bare failwith/invalid_arg (or raise Invalid_argument/Failure) \
       in lib/ outside Wfs_util.Error itself; raise through the typed \
       error module so sweep drivers can classify failures" );
    ( "R7",
      "no fresh-container combinators (Array.map/mapi/init/make, List.map/\
       filter/sort, ...) or closure literals inside a [@hot]-annotated \
       binding or expression in lib/; preallocate scratch and hoist \
       closures, or justify with an allow-comment" );
    ( "R8",
      "no direct printing in lib/: print_*/prerr_*, Printf.printf/eprintf \
       and Format.printf/eprintf are banned; return strings or \
       Wfs_util.Tablefmt values and let binaries own stdout/stderr" );
    ( "SUPP",
      "suppression hygiene: '(* lint: allow R<n> <justification> *)' \
       needs a real justification and must actually silence something" );
  ]

let marker = "lint: allow"

(* --- file collection --- *)

let skip_dirs = [ "_build"; ".git"; "lint_fixtures"; "analyze_fixtures"; "node_modules" ]

let rec collect_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if List.mem entry skip_dirs then acc
           else collect_files acc (Filename.concat path entry))
         acc
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let classify path : Lint_rules.file_class =
  let parts = String.split_on_char '/' path in
  if List.mem "lib" parts then Lint_rules.Lib else Lint_rules.Other

(* --- per-file check --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

exception Parse_failure of string

let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  try
    if Filename.check_suffix path ".mli" then
      `Intf (Parse.interface lexbuf)
    else `Impl (Parse.implementation lexbuf)
  with exn ->
    let detail =
      match Location.error_of_exn exn with
      | Some (`Ok _) | Some `Already_displayed | None -> Printexc.to_string exn
    in
    raise (Parse_failure (Printf.sprintf "%s: parse failure (%s)" path detail))

(* Reports into [sink]; the caller renders once, globally sorted. *)
let check_file ~file_class ~sink path =
  let source = read_file path in
  let suppress =
    Analysis_kit.Suppress.scan ~marker ~hygiene:Lint_rules.supp
      ~rule_of_id:Lint_rules.rule_of_id ~file:path source
  in
  (* The error module is where the Invalid_argument convention lives; its
     own raise sites are the sanctioned ones. *)
  let r6_exempt =
    match Filename.basename path with
    | "error.ml" | "error.mli" -> true
    | _ -> false
  in
  Lint_rules.check_file ~file_class ~r6_exempt ~sink ~suppress
    (parse ~path source);
  List.iter (Diag.report sink)
    (Analysis_kit.Suppress.leftovers ~file:path suppress)

(* --- main lint mode --- *)

let write_sarif ~path diags =
  Analysis_kit.Sarif.write ~path ~tool:"wfs_lint" ~version:"1.0.0"
    ~info_uri:"docs/LINT.md" ~rules:Lint_rules.all_rules diags

let run_lint ?sarif roots =
  List.iter
    (fun root ->
      if not (Sys.file_exists root) then begin
        Printf.eprintf "wfs_lint: no such path: %s\n" root;
        exit 2
      end)
    roots;
  let files = List.fold_left collect_files [] roots |> List.sort String.compare in
  let sink = Diag.sink () in
  List.iter
    (fun path ->
      match check_file ~file_class:(classify path) ~sink path with
      | () -> ()
      | exception Parse_failure msg ->
          Printf.eprintf "wfs_lint: %s\n" msg;
          exit 2)
    files;
  let diags = Diag.contents sink in
  Option.iter (fun path -> write_sarif ~path diags) sarif;
  List.iter (fun d -> Format.printf "%a@." Diag.pp d) diags;
  match diags with
  | [] -> Printf.printf "wfs_lint: clean (%d files checked)\n" (List.length files)
  | _ ->
      Printf.printf "wfs_lint: %d violation(s) in %d file(s) (%d checked)\n"
        (List.length diags)
        (List.length (Diag.files diags))
        (List.length files);
      exit 1

(* --- fixture self-test mode --- *)

type expectation = Expect_rule of Diag.rule | Expect_clean

let expectation_of_filename base =
  let strip_prefix p s =
    let lp = String.length p in
    if String.length s >= lp && String.sub s 0 lp = p then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  match strip_prefix "bad_" base with
  | Some rest ->
      let tok =
        match String.index_opt rest '_' with
        | Some i -> String.sub rest 0 i
        | None -> Filename.remove_extension rest
      in
      Option.map (fun r -> Expect_rule r) (Lint_rules.rule_of_id tok)
  | None -> (
      match strip_prefix "ok_" base with
      | Some _ -> Some Expect_clean
      | None -> None)

let run_fixtures dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "wfs_lint: fixture dir not found: %s\n" dir;
    exit 2
  end;
  let files =
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
  in
  let failures = ref 0 in
  let seen_rules = ref [] and seen_clean = ref false in
  let fail path fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        Printf.printf "FAIL %s: %s\n" path msg)
      fmt
  in
  List.iter
    (fun base ->
      let path = Filename.concat dir base in
      match expectation_of_filename base with
      | None ->
          fail path
            "unrecognized fixture name (want bad_<rule>_*.ml or ok_*.ml)"
      | Some expect -> (
          (* Fixtures model lib/ code, so the full rule set applies. *)
          let sink = Diag.sink () in
          match check_file ~file_class:Lint_rules.Lib ~sink path with
          | exception Parse_failure msg -> fail path "%s" msg
          | () -> (
              let diags = Diag.contents sink in
              match expect with
              | Expect_clean ->
                  if diags = [] then begin
                    seen_clean := true;
                    Printf.printf "PASS %s: clean as expected\n" path
                  end
                  else begin
                    fail path "expected clean, got %d diagnostic(s):"
                      (List.length diags);
                    List.iter
                      (fun d -> Format.printf "  %a@." Diag.pp d)
                      diags
                  end
              | Expect_rule rule ->
                  let id = rule.Diag.id in
                  let matching, stray =
                    List.partition
                      (fun d -> Diag.rule_equal d.Diag.rule rule)
                      diags
                  in
                  if matching = [] then
                    fail path "expected at least one %s diagnostic, got none"
                      id
                  else if stray <> [] then begin
                    fail path "expected only %s diagnostics, also got:" id;
                    List.iter
                      (fun d -> Format.printf "  %a@." Diag.pp d)
                      stray
                  end
                  else begin
                    if not (List.mem id !seen_rules) then
                      seen_rules := id :: !seen_rules;
                    Printf.printf "PASS %s: %d %s diagnostic(s)\n" path
                      (List.length matching) id
                  end)))
    files;
  List.iter
    (fun id ->
      if not (List.mem id !seen_rules) then
        fail dir "no passing bad_%s fixture: rule %s is unproven"
          (String.lowercase_ascii id) id)
    [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8"; "SUPP" ];
  if not !seen_clean then fail dir "no passing ok_* fixture";
  if !failures > 0 then begin
    Printf.printf "wfs_lint --fixtures: %d failure(s)\n" !failures;
    exit 1
  end
  else Printf.printf "wfs_lint --fixtures: all %d fixture(s) pass\n"
      (List.length files)

let () =
  match Array.to_list Sys.argv with
  | _ :: "--list-rules" :: _ ->
      List.iter (fun (id, text) -> Printf.printf "%-4s %s\n" id text) rules_help
  | _ :: "--fixtures" :: [ dir ] -> run_fixtures dir
  | _ :: "--sarif" :: path :: (_ :: _ as roots)
    when not (String.length (List.hd roots) > 0 && (List.hd roots).[0] = '-') ->
      run_lint ~sarif:path roots
  | _ :: (_ :: _ as roots)
    when not (String.length (List.hd roots) > 0 && (List.hd roots).[0] = '-') ->
      run_lint roots
  | _ ->
      prerr_endline usage;
      exit 2
