(* SARIF 2.1.0 rendering for diagnostic lists.

   Static Analysis Results Interchange Format, the schema CI artifact
   viewers and code-scanning UIs ingest.  One run per report: the tool
   driver carries the rule table (id + short description), each diagnostic
   becomes a [result] with a physical location.  SARIF regions are 1-based
   in both line and column, so the kit's 0-based columns are shifted by
   one on the way out.

   The emitter is a purpose-built serializer rather than a dependency on
   the simulator's Wfs_util.Json: the analysis tools deliberately depend
   on compiler-libs only, so they build before (and independently of) the
   library tree they check. *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  buf_escape b s;
  Buffer.add_char b '"';
  Buffer.contents b

let obj fields = "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"
let arr items = "[" ^ String.concat "," items ^ "]"

let rule_json (r : Diag.rule) =
  obj
    [
      ("id", str r.Diag.id);
      ("name", str r.Diag.id);
      ("shortDescription", obj [ ("text", str r.Diag.title) ]);
      ("defaultConfiguration", obj [ ("level", str "error") ]);
    ]

let result_json (d : Diag.t) =
  obj
    [
      ("ruleId", str d.Diag.rule.Diag.id);
      ("level", str "error");
      ("message", obj [ ("text", str d.Diag.message) ]);
      ( "locations",
        arr
          [
            obj
              [
                ( "physicalLocation",
                  obj
                    [
                      ( "artifactLocation",
                        obj
                          [
                            ("uri", str d.Diag.file);
                            ("uriBaseId", str "SRCROOT");
                          ] );
                      ( "region",
                        obj
                          [
                            ("startLine", string_of_int d.Diag.line);
                            ("startColumn", string_of_int (d.Diag.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]

let to_string ~tool ~version ~info_uri ~rules diags =
  obj
    [
      ("version", str "2.1.0");
      ( "$schema",
        str
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ( "runs",
        arr
          [
            obj
              [
                ( "tool",
                  obj
                    [
                      ( "driver",
                        obj
                          [
                            ("name", str tool);
                            ("version", str version);
                            ("informationUri", str info_uri);
                            ("rules", arr (List.map rule_json rules));
                          ] );
                    ] );
                ( "originalUriBaseIds",
                  obj [ ("SRCROOT", obj [ ("uri", str "file:///") ]) ] );
                ("columnKind", str "utf16CodeUnits");
                ("results", arr (List.map result_json diags));
              ];
          ] );
    ]

let write ~path ~tool ~version ~info_uri ~rules diags =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string ~tool ~version ~info_uri ~rules diags);
      output_char oc '\n')
