(* Diagnostics shared by wfs_lint (parsetree) and wfs_analyze (typedtree).

   A rule is identified by a short id ("R3", "A1") plus a human title; the
   two tools each own their rule tables and hand the kit plain values, so
   the kit stays agnostic of what is being checked.  The sink collects
   diagnostics across every file of a run and renders them once, globally
   sorted by (file, line, col, rule id, message) and deduplicated by site —
   the report is byte-identical no matter in which order the tree was
   traversed. *)

type rule = { id : string; title : string }

let rule_equal a b = String.equal a.id b.id

type t = {
  file : string;
  line : int;  (* 1-based *)
  col : int;  (* 0-based, matches compiler convention *)
  rule : rule;
  message : string;
}

let make ~file ~line ~col ~rule message = { file; line; col; rule; message }

let of_location ~rule ~message (loc : Location.t) =
  let pos = loc.loc_start in
  {
    file = pos.pos_fname;
    line = pos.pos_lnum;
    col = pos.pos_cnum - pos.pos_bol;
    rule;
    message;
  }

(* Site order: the published output order and the dedup key. *)
let compare_site a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule.id b.rule.id

let compare_diag a b =
  let c = compare_site a b in
  if c <> 0 then c else String.compare a.message b.message

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule.id
    d.message

let to_string d = Format.asprintf "%a" pp d

(* A sink collects diagnostics across files. *)

type sink = { mutable diags : t list }

let sink () = { diags = [] }
let report sink d = sink.diags <- d :: sink.diags

let sorted diags =
  let sorted = List.sort compare_diag diags in
  (* Drop duplicates at the same site (same file/line/col/rule): two
     detectors tripping over one expression tell the reader nothing new. *)
  let rec dedup = function
    | a :: b :: rest when compare_site a b = 0 -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let contents sink = sorted sink.diags

let files diags =
  List.sort_uniq String.compare (List.map (fun d -> d.file) diags)
