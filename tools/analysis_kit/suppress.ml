(* Per-line suppressions, shared by wfs_lint and wfs_analyze.

   A violation may be silenced with a single-line comment of the form

     (* <marker> R3 -- exact sentinel comparison, value is never computed *)

   where <marker> is "lint: allow" for wfs_lint and "analyze: allow" for
   wfs_analyze — distinct markers, so each tool sees only its own
   suppressions and a stale comment cannot hide behind the other tool's
   scan.  The justification text after the rule id is mandatory (>= 8
   characters once trimmed).  A suppression written on the same line as
   the flagged expression covers that line; a suppression on a line of its
   own covers the next line.  Unused and malformed suppressions are
   themselves diagnostics (the tool's hygiene rule, passed as [hygiene]),
   so stale allow-comments cannot accumulate. *)

type entry = {
  rule : Diag.rule;
  comment_line : int;  (* where the comment sits, 1-based *)
  target_line : int;  (* the line of code it silences *)
  mutable used : bool;
}

type t = {
  marker : string;
  hygiene : Diag.rule;
  entries : entry list;
  mutable malformed : Diag.t list;
}

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* The comment opener before the marker, used to decide whether the line is
   a standalone comment (suppression targets the next line) or trails code
   (targets its own line). *)
let is_standalone_comment line marker_pos =
  match find_sub line "(*" with
  | Some open_pos when open_pos < marker_pos ->
      String.trim (String.sub line 0 open_pos) = ""
  | _ -> false

let strip_comment_close s =
  match find_sub s "*)" with Some i -> String.sub s 0 i | None -> s

let parse_line ~marker ~hygiene ~rule_of_id ~file ~lineno line =
  match find_sub line marker with
  | None -> Ok None
  | Some pos ->
      let rest =
        String.sub line
          (pos + String.length marker)
          (String.length line - pos - String.length marker)
      in
      let rest = String.trim rest in
      let rule_tok, justification =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some i ->
            ( String.sub rest 0 i,
              String.sub rest (i + 1) (String.length rest - i - 1) )
      in
      let justification = String.trim (strip_comment_close justification) in
      let justification =
        (* Tolerate a leading dash/em-dash separator before the prose. *)
        let is_sep c =
          c = '-' || c = ':' || c = '\xe2' || c = '\x80' || c = '\x94'
        in
        let n = String.length justification in
        let rec skip i =
          if i < n && is_sep justification.[i] then skip (i + 1) else i
        in
        let i = skip 0 in
        String.trim (String.sub justification i (n - i))
      in
      (match (rule_of_id rule_tok : Diag.rule option) with
      | None ->
          Error
            (Diag.make ~file ~line:lineno ~col:pos ~rule:hygiene
               (Printf.sprintf
                  "malformed suppression: expected '(* %s <rule> \
                   <justification> *)', got rule token %S"
                  marker rule_tok))
      | Some rule when Diag.rule_equal rule hygiene ->
          Error
            (Diag.make ~file ~line:lineno ~col:pos ~rule:hygiene
               (Printf.sprintf "%s diagnostics cannot be suppressed"
                  hygiene.Diag.id))
      | Some rule ->
          if String.length justification < 8 then
            Error
              (Diag.make ~file ~line:lineno ~col:pos ~rule:hygiene
                 (Printf.sprintf
                    "suppression of %s lacks a justification (state why the \
                     %s is intended here)"
                    rule.Diag.id rule.Diag.title))
          else
            let target_line =
              if is_standalone_comment line pos then lineno + 1 else lineno
            in
            Ok (Some { rule; comment_line = lineno; target_line; used = false }))

let scan ~marker ~hygiene ~rule_of_id ~file source =
  let lines = String.split_on_char '\n' source in
  let entries = ref [] and malformed = ref [] in
  List.iteri
    (fun i line ->
      match parse_line ~marker ~hygiene ~rule_of_id ~file ~lineno:(i + 1) line with
      | Ok (Some e) -> entries := e :: !entries
      | Ok None -> ()
      | Error d -> malformed := d :: !malformed)
    lines;
  {
    marker;
    hygiene;
    entries = List.rev !entries;
    malformed = List.rev !malformed;
  }

(* Consult the table: a diagnostic is suppressed if an entry for its rule
   targets its line. *)
let covers t (d : Diag.t) =
  match
    List.find_opt
      (fun e -> Diag.rule_equal e.rule d.Diag.rule && e.target_line = d.Diag.line)
      t.entries
  with
  | Some e ->
      e.used <- true;
      true
  | None -> false

(* After a file is fully checked: malformed plus unused entries.  An unused
   entry is a stale justification — the diagnostic it once silenced is
   gone, so the comment now asserts an invariant nobody checks. *)
let leftovers ~file t =
  t.malformed
  @ List.filter_map
      (fun e ->
        if e.used then None
        else
          Some
            (Diag.make ~file ~line:e.comment_line ~col:0 ~rule:t.hygiene
               (Printf.sprintf
                  "stale suppression for %s: no %s diagnostic on line %d \
                   (delete the comment or restate what it silences)"
                  e.rule.Diag.id e.rule.Diag.title e.target_line)))
      t.entries
