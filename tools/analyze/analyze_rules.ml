(* The wfs_analyze rule set.  Ids continue the wfs_lint numbering in their
   own namespace (A1..A4) so a diagnostic line always says which tier of
   the pipeline produced it.  See docs/ANALYSIS.md for the full model
   behind each analysis. *)

module Diag = Analysis_kit.Diag

let a1 = { Diag.id = "A1"; title = "untracked nondeterminism (typed taint)" }
let a2 = { Diag.id = "A2"; title = "cross-domain mutable state" }
let a3 = { Diag.id = "A3"; title = "registry coverage" }
let a4 = { Diag.id = "A4"; title = "stale analysis suppression" }
let all_rules = [ a1; a2; a3; a4 ]

let rule_of_id tok =
  let tok = String.uppercase_ascii tok in
  List.find_opt (fun r -> String.equal r.Diag.id tok) all_rules

let marker = "analyze: allow"

let help =
  [
    ( "A1",
      "determinism taint over the cross-module call graph: any lib/ \
       function that transitively reaches an ambient-nondeterminism \
       source (Random.*, wall-clock reads, hash-order iteration) without \
       going through the seeded Wfs_util.Rng / Wfs_sim.Clock boundary is \
       flagged, and so is any alias-resolved use of the polymorphic \
       runtime comparator at a non-immediate type (the cases the \
       syntactic R1/R2 rules cannot see)" );
    ( "A2",
      "domain-safety race check: a thunk that flows into Domain.spawn or \
       Wfs_runner.Pool.map/map_outcomes may not capture mutable state \
       (refs, arrays, bytes, mutable records, Hashtbl/Queue/Stack/Buffer) \
       unless it is Atomic.t/Mutex.t-class, and may not transitively \
       write module-global mutable state; justify provably-safe sharing \
       with an allow-comment stating the ownership invariant" );
    ( "A3",
      "registry coverage audit: every lib/ module that constructs a \
       Wireless_sched.instance must be reachable from a \
       Wfs_core.Registry.register site, wire at least one probe field \
       for the invariant monitors, and be referenced from the test \
       suite — a scheduler cannot ship unregistered, unprobed, or \
       untested" );
    ( "A4",
      "suppression hygiene: every '(* analyze: allow A<n> <justification> \
       *)' must be well-formed and must still silence a live diagnostic; \
       stale or malformed justifications fail the build" );
  ]
