(* wfs_analyze — typedtree-driven cross-module analysis for the wfs tree.

   Usage:
     wfs_analyze [--sarif PATH] [--source-root DIR] [--runs N]
                 [--lib DIR]... [--test DIR]...
     wfs_analyze --fixtures PROJ_DIR TESTS_DIR
     wfs_analyze --list-rules
     wfs_analyze --dump [--lib DIR]... [--test DIR]...

   The roots are scanned recursively for .cmt files (dune leaves them in
   .objs/byte under each library directory), so the intended invocation
   runs from _build/default where compiled artifacts and copied sources
   live side by side.  --lib roots get the full lib-discipline analyses;
   --test roots contribute call-graph facts and satisfy the A3
   tested-coverage audit but are not themselves held to lib rules.

   This is tier two of the pipeline: where wfs_lint sees one parsetree at
   a time, wfs_analyze sees resolved names and instantiated types across
   the whole build, which is what defeats aliasing, opens and functor
   indirection.  Exit status: 0 clean, 1 findings, 2 usage/load failure. *)

module Diag = Analysis_kit.Diag
module Suppress = Analysis_kit.Suppress

let usage =
  "usage: wfs_analyze [--sarif PATH] [--source-root DIR] [--runs N] \
   [--lib DIR]... [--test DIR]...\n\
  \       wfs_analyze --fixtures PROJ_DIR TESTS_DIR\n\
  \       wfs_analyze --list-rules"

(* --- cmt collection --- *)

let skip_dirs = [ "_build"; ".git"; "lint_fixtures"; "analyze_fixtures" ]

let rec collect_cmts acc path =
  if not (Sys.file_exists path) then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if List.mem entry skip_dirs then acc
           else collect_cmts acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* Fixture roots ARE analyze_fixtures directories, so the skip list must
   not apply to the root itself — collect_cmts only skips entries found
   while descending. *)

let load_model roots =
  let inputs =
    List.concat_map
      (fun (root, role) ->
        collect_cmts [] root |> List.sort String.compare
        |> List.map (fun p -> (p, role)))
      roots
  in
  if inputs = [] then begin
    Printf.eprintf "wfs_analyze: no .cmt files under the given roots\n";
    Printf.eprintf
      "(run from _build/default after a build, or pass --lib/--test \
       pointing at built library directories)\n";
    exit 2
  end;
  Analyze_model.load inputs

(* --- analysis pipeline (checks + A4 suppression pass) --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let resolve_source ~source_root file =
  if Filename.is_relative file then Filename.concat source_root file
  else file

(* Returns the final diagnostic list (post-suppression, sorted) plus
   (units, defs) counts.  Suppressions are scanned up front and consulted
   by the checks themselves — a justified A1 seed must stop tainting its
   callers, not merely hide its own report — and every unconsulted entry
   comes back as a stale-suppression A4 finding. *)
let analyze ~source_root roots =
  let m = load_model roots in
  let files =
    List.sort_uniq String.compare
      (List.map (fun u -> u.Analyze_model.u_file) m.Analyze_model.units)
  in
  let scans =
    List.filter_map
      (fun file ->
        let path = resolve_source ~source_root file in
        if Sys.file_exists path then
          Some
            ( file,
              Suppress.scan ~marker:Analyze_rules.marker
                ~hygiene:Analyze_rules.a4 ~rule_of_id:Analyze_rules.rule_of_id
                ~file (read_file path) )
        else None)
      files
  in
  let allow (d : Diag.t) =
    match List.assoc_opt d.Diag.file scans with
    | Some t -> Suppress.covers t d
    | None -> false
  in
  let sink = Diag.sink () in
  Analyze_checks.run m ~allow ~sink;
  List.iter
    (fun (file, t) ->
      List.iter (Diag.report sink) (Suppress.leftovers ~file t))
    scans;
  let defs =
    List.fold_left
      (fun acc u -> acc + List.length u.Analyze_model.u_defs)
      0 m.Analyze_model.units
  in
  (Diag.contents sink, List.length m.Analyze_model.units, defs)

let render (diags, units, defs) =
  let b = Buffer.create 1024 in
  List.iter
    (fun d -> Buffer.add_string b (Diag.to_string d ^ "\n"))
    diags;
  (match diags with
  | [] ->
      Buffer.add_string b
        (Printf.sprintf "wfs_analyze: clean (%d units, %d definitions)\n"
           units defs)
  | _ ->
      Buffer.add_string b
        (Printf.sprintf
           "wfs_analyze: %d finding(s) in %d file(s) (%d units, %d \
            definitions)\n"
           (List.length diags)
           (List.length (Diag.files diags))
           units defs));
  Buffer.contents b

(* --- main analysis mode --- *)

let run_analysis ~sarif ~source_root ~runs roots =
  List.iter
    (fun (root, _) ->
      if not (Sys.file_exists root) then begin
        Printf.eprintf "wfs_analyze: no such path: %s\n" root;
        exit 2
      end)
    roots;
  let result = analyze ~source_root roots in
  let out = render result in
  (* Determinism self-check: re-run the full pipeline and demand
     byte-identical output.  Model extraction, the taint fixpoint and the
     sink ordering are all supposed to be traversal-order independent;
     this gate makes that an enforced property instead of an intention. *)
  for run = 2 to runs do
    let out' = render (analyze ~source_root roots) in
    if not (String.equal out out') then begin
      Printf.eprintf
        "wfs_analyze: NONDETERMINISTIC OUTPUT (run %d differs)\n" run;
      Printf.eprintf "--- run 1 ---\n%s--- run %d ---\n%s" out run out';
      exit 2
    end
  done;
  let diags, _, _ = result in
  Option.iter
    (fun path ->
      Analysis_kit.Sarif.write ~path ~tool:"wfs_analyze" ~version:"1.0.0"
        ~info_uri:"docs/ANALYSIS.md" ~rules:Analyze_rules.all_rules diags)
    sarif;
  print_string out;
  if diags <> [] then exit 1

(* --- fixture self-test mode --- *)

(* Fixture expectations are carried by source basenames, like the lint
   fixtures: bad_a1_foo.ml must yield at least one A1 and nothing but A1;
   ok_bar.ml must yield nothing.  The whole fixture project is analyzed
   as one model so cross-file facts (registration reachability, test
   references) behave exactly as on the real tree. *)

let run_fixtures proj tests =
  List.iter
    (fun d ->
      if not (Sys.file_exists d && Sys.is_directory d) then begin
        Printf.eprintf "wfs_analyze: fixture dir not found: %s\n" d;
        exit 2
      end)
    [ proj; tests ];
  let diags, _, _ =
    analyze ~source_root:"."
      [ (proj, Analyze_model.Lib); (tests, Analyze_model.Test) ]
  in
  let by_base = Hashtbl.create 32 in
  List.iter
    (fun d ->
      let base = Filename.basename d.Diag.file in
      let prev = Option.value (Hashtbl.find_opt by_base base) ~default:[] in
      Hashtbl.replace by_base base (prev @ [ d ]))
    diags;
  let fixture_files =
    Sys.readdir proj |> Array.to_list |> List.sort String.compare
    |> List.filter (fun f ->
           Filename.check_suffix f ".ml"
           && (String.length f >= 4 && String.sub f 0 4 = "bad_")
              || (String.length f >= 3 && String.sub f 0 3 = "ok_"))
  in
  let failures = ref 0 in
  let fail name fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        Printf.printf "FAIL %s: %s\n" name msg)
      fmt
  in
  let seen_rules = ref [] in
  let seen_clean = ref false in
  List.iter
    (fun base ->
      let found = Option.value (Hashtbl.find_opt by_base base) ~default:[] in
      if String.length base >= 3 && String.sub base 0 3 = "ok_" then
        if found = [] then begin
          seen_clean := true;
          Printf.printf "PASS %s: clean as expected\n" base
        end
        else begin
          fail base "expected clean, got %d finding(s):" (List.length found);
          List.iter (fun d -> Printf.printf "  %s\n" (Diag.to_string d)) found
        end
      else
        let tok =
          let rest = String.sub base 4 (String.length base - 4) in
          match String.index_opt rest '_' with
          | Some i -> String.sub rest 0 i
          | None -> Filename.remove_extension rest
        in
        match Analyze_rules.rule_of_id tok with
        | None -> fail base "unrecognized fixture name (want bad_a<n>_*.ml)"
        | Some rule ->
            let id = rule.Diag.id in
            let matching, stray =
              List.partition
                (fun d -> Diag.rule_equal d.Diag.rule rule)
                found
            in
            if matching = [] then
              fail base "expected at least one %s finding, got none" id
            else if stray <> [] then begin
              fail base "expected only %s findings, also got:" id;
              List.iter
                (fun d -> Printf.printf "  %s\n" (Diag.to_string d))
                stray
            end
            else begin
              if not (List.mem id !seen_rules) then
                seen_rules := id :: !seen_rules;
              Printf.printf "PASS %s: %d %s finding(s)\n" base
                (List.length matching) id
            end)
    fixture_files;
  (* Findings that landed outside any recognized fixture file are noise
     worth failing on: something is leaking between fixtures. *)
  Hashtbl.iter
    (fun base ds ->
      if not (List.mem base fixture_files) then begin
        fail base "finding(s) outside a bad_*/ok_* fixture:";
        List.iter (fun d -> Printf.printf "  %s\n" (Diag.to_string d)) ds
      end)
    by_base;
  List.iter
    (fun id ->
      if not (List.mem id !seen_rules) then
        fail proj "no passing bad_%s fixture: analysis %s is unproven"
          (String.lowercase_ascii id) id)
    [ "A1"; "A2"; "A3"; "A4" ];
  if not !seen_clean then fail proj "no passing ok_* fixture";
  if !failures > 0 then begin
    Printf.printf "wfs_analyze --fixtures: %d failure(s)\n" !failures;
    exit 1
  end
  else
    Printf.printf "wfs_analyze --fixtures: all %d fixture(s) pass\n"
      (List.length fixture_files)

(* --- debug dump --- *)

let run_dump roots =
  let m = load_model roots in
  List.iter
    (fun u ->
      Printf.printf "unit %s (%s) file=%s\n" u.Analyze_model.u_name
        (match u.Analyze_model.u_role with
        | Analyze_model.Lib -> "lib"
        | Analyze_model.Test -> "test")
        u.Analyze_model.u_file;
      List.iter
        (fun d ->
          Printf.printf "  def %s\n" d.Analyze_model.def_name;
          List.iter
            (fun (n, _) -> Printf.printf "    ref %s\n" n)
            d.Analyze_model.refs;
          List.iter
            (fun (n, loc) ->
              Printf.printf "    source %s @ %s:%d\n" n
                loc.Location.loc_start.pos_fname
                loc.Location.loc_start.pos_lnum)
            d.Analyze_model.source_refs;
          List.iter
            (fun (n, reason, _) ->
              Printf.printf "    polycmp %s (%s)\n" n reason)
            d.Analyze_model.poly_cmps;
          List.iter
            (fun (g, _) -> Printf.printf "    gwrite %s\n" g)
            d.Analyze_model.global_writes;
          (match d.Analyze_model.makes_instance with
          | Some _ ->
              Printf.printf "    instance%s\n"
                (if d.Analyze_model.wires_probe then " +probe" else "")
          | None ->
              if d.Analyze_model.wires_probe then
                Printf.printf "    probe-wiring\n");
          List.iter
            (fun s ->
              Printf.printf "    spawn %s resolved=%b captures=[%s]\n"
                s.Analyze_model.spawn_entry s.Analyze_model.resolved
                (String.concat "; "
                   (List.map
                      (fun (v, k, _) -> v ^ ":" ^ k)
                      s.Analyze_model.captures)))
            d.Analyze_model.spawns)
        u.Analyze_model.u_defs)
    m.Analyze_model.units

(* --- CLI --- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "--list-rules" ] ->
      List.iter
        (fun (id, text) -> Printf.printf "%-4s %s\n" id text)
        Analyze_rules.help
  | [ "--fixtures"; proj; tests ] -> run_fixtures proj tests
  | _ ->
      let sarif = ref None in
      let source_root = ref "." in
      let runs = ref 1 in
      let roots = ref [] in
      let dump = ref false in
      let rec parse = function
        | [] -> ()
        | "--sarif" :: path :: rest ->
            sarif := Some path;
            parse rest
        | "--source-root" :: dir :: rest ->
            source_root := dir;
            parse rest
        | "--runs" :: n :: rest -> (
            match int_of_string_opt n with
            | Some n when n >= 1 ->
                runs := n;
                parse rest
            | _ ->
                prerr_endline usage;
                exit 2)
        | "--lib" :: dir :: rest ->
            roots := !roots @ [ (dir, Analyze_model.Lib) ];
            parse rest
        | "--test" :: dir :: rest ->
            roots := !roots @ [ (dir, Analyze_model.Test) ];
            parse rest
        | "--dump" :: rest ->
            dump := true;
            parse rest
        | _ ->
            prerr_endline usage;
            exit 2
      in
      parse args;
      if !roots = [] then begin
        prerr_endline usage;
        exit 2
      end;
      match
        if !dump then `Dump
        else `Run
      with
      | `Dump -> run_dump !roots
      | `Run -> (
          try
            run_analysis ~sarif:!sarif ~source_root:!source_root ~runs:!runs
              !roots
          with Analyze_model.Fail msg ->
            Printf.eprintf "wfs_analyze: %s\n" msg;
            exit 2)
