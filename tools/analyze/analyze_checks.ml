(* The A1–A3 analyses over an Analyze_model.model.  Each check reports
   into an Analysis_kit sink; ordering does not matter because the sink
   sorts globally, but every iteration below is still deterministic
   (definition order within units, units in the caller's sorted load
   order) so diagnostics — including via-chains inside messages — are
   byte-stable across runs.  A4 (suppression hygiene) lives in the driver
   because it needs source text, not the model. *)

module Diag = Analysis_kit.Diag
open Analyze_model

let all_defs m = List.concat_map (fun u -> u.u_defs) m.units

(* Report unless a justified allow-comment covers the site (consulting it
   marks the suppression used, which is what keeps A4 honest). *)
let emit ~allow ~sink d = if not (allow d) then Diag.report sink d

(* name -> defs (shadowing can produce several; taint merges them). *)
let index_defs defs =
  let tbl = Hashtbl.create 512 in
  List.iter
    (fun d ->
      let prev = Option.value (Hashtbl.find_opt tbl d.def_name) ~default:[] in
      Hashtbl.replace tbl d.def_name (prev @ [ d ]))
    defs;
  tbl

let in_lib d = d.def_role = Lib

let sanctioned_def d =
  List.exists
    (fun u ->
      String.equal d.def_unit u
      || (String.length d.def_unit > String.length u
          && String.sub d.def_unit 0 (String.length u) = u
          && d.def_unit.[String.length u] = '.'))
    sanctioned_units

let chain_string via =
  (* Keep both ends of a long chain: the first hops say where the flow
     enters, the last says what touches the source. *)
  let n = List.length via in
  let shown =
    if n > 6 then
      List.filteri (fun i _ -> i < 3) via
      @ [ "..." ]
      @ List.filteri (fun i _ -> i >= n - 2) via
    else via
  in
  String.concat " -> " shown

(* --- A1: determinism taint + typed comparator misuse --- *)

let direct_taint_msg d src =
  Printf.sprintf
    "%s uses ambient nondeterminism source %s; draw from the seeded \
     Wfs_util.Rng / Wfs_sim.Clock boundary instead"
    d.def_name src

let check_a1 m ~allow ~sink =
  let defs = all_defs m in
  (* evidence: def name -> (source, via chain, location to report) *)
  let tainted : (string, string * string list * Location.t) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Seed with direct uses of ambient sources.  A justified allow-comment
     on a lib seed asserts the definition's *result* is deterministic
     despite the source (e.g. hash-order folds erased by a sort), so a
     covered seed neither reports nor taints its callers. *)
  List.iter
    (fun d ->
      if not (sanctioned_def d) then
        match d.source_refs with
        | (src, loc) :: _ ->
            if not (Hashtbl.mem tainted d.def_name) then
              let justified =
                in_lib d
                && allow
                     (Diag.of_location ~rule:Analyze_rules.a1
                        ~message:(direct_taint_msg d src) loc)
              in
              if not justified then
                Hashtbl.replace tainted d.def_name (src, [], loc)
        | [] -> ())
    defs;
  (* Propagate along the call graph until fixpoint.  A call through the
     sanctioned Rng/Clock boundary never propagates (their defs are never
     tainted), so the cut is structural. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun d ->
        if (not (Hashtbl.mem tainted d.def_name)) && not (sanctioned_def d)
        then
          match
            List.find_map
              (fun (n, loc) ->
                if String.equal n d.def_name then None
                else
                  match Hashtbl.find_opt tainted n with
                  | Some (src, via, _) -> Some (n, src, via, loc)
                  | None -> None)
              d.refs
          with
          | Some (n, src, via, loc) ->
              Hashtbl.replace tainted d.def_name (src, n :: via, loc);
              changed := true
          | None -> ())
      defs
  done;
  List.iter
    (fun d ->
      if in_lib d then begin
        (match Hashtbl.find_opt tainted d.def_name with
        | Some (src, [], loc) ->
            emit ~allow ~sink
              (Diag.of_location ~rule:Analyze_rules.a1
                 ~message:(direct_taint_msg d src) loc)
        | Some (src, via, loc) ->
            emit ~allow ~sink
              (Diag.of_location ~rule:Analyze_rules.a1
                 ~message:
                   (Printf.sprintf
                      "%s transitively reaches ambient nondeterminism \
                       source %s (via %s); thread the seeded Wfs_util.Rng \
                       / Wfs_sim.Clock state through this path"
                      d.def_name src (chain_string via))
                 loc)
        | None -> ());
        List.iter
          (fun (name, reason, loc) ->
            emit ~allow ~sink
              (Diag.of_location ~rule:Analyze_rules.a1
                 ~message:
                   (Printf.sprintf
                      "polymorphic runtime comparator %s instantiated at %s"
                      name reason)
                 loc))
          d.poly_cmps
      end)
    defs

(* --- A2: mutable state crossing a Domain.spawn / Pool boundary --- *)

let check_a2 m ~allow ~sink =
  let defs = all_defs m in
  (* Which defs (by name) transitively perform a module-global write. *)
  let writes : (string, (string * string list) option) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun d ->
      match d.global_writes with
      | (g, _) :: _ -> Hashtbl.replace writes d.def_name (Some (g, []))
      | [] -> ())
    defs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun d ->
        if not (Hashtbl.mem writes d.def_name) then
          match
            List.find_map
              (fun (n, _) ->
                if String.equal n d.def_name then None
                else
                  match Hashtbl.find_opt writes n with
                  | Some (Some (g, via)) -> Some (n, g, via)
                  | _ -> None)
              d.refs
          with
          | Some (n, g, via) ->
              Hashtbl.replace writes d.def_name (Some (g, n :: via));
              changed := true
          | None -> ())
      defs
  done;
  List.iter
    (fun d ->
      if in_lib d then
        List.iter
          (fun s ->
            if s.resolved then begin
              List.iter
                (fun (var, kind, loc) ->
                  emit ~allow ~sink
                    (Diag.of_location ~rule:Analyze_rules.a2
                       ~message:
                         (Printf.sprintf
                            "thunk passed to %s captures mutable %s [%s]; \
                             guard it with a Mutex, switch to Atomic.t, or \
                             state the single-writer ownership invariant \
                             in an analyze: allow comment"
                            s.spawn_entry kind var)
                       loc))
                s.captures;
              (* Transitive module-global writes reachable from the thunk. *)
              let seen = Hashtbl.create 16 in
              List.iter
                (fun n ->
                  if not (Hashtbl.mem seen n) then begin
                    Hashtbl.replace seen n ();
                    match Hashtbl.find_opt writes n with
                    | Some (Some (g, via)) ->
                        emit ~allow ~sink
                          (Diag.of_location ~rule:Analyze_rules.a2
                             ~message:
                               (Printf.sprintf
                                  "thunk passed to %s reaches a write to \
                                   module-global %s (through %s); \
                                   cross-domain writes need a Mutex or \
                                   Atomic.t"
                                  s.spawn_entry g
                                  (chain_string (n :: via)))
                             s.spawn_loc)
                    | _ -> ()
                  end)
                s.thunk_refs
            end)
          d.spawns)
    defs;
  (* Direct global writes lexically inside a spawned thunk are attributed
     to the enclosing def; flag those too when the def spawns. *)
  List.iter
    (fun d ->
      if in_lib d && d.spawns <> [] then
        List.iter
          (fun (g, loc) ->
            List.iter
              (fun s ->
                if
                  s.resolved && s.spawn_loc.Location.loc_start.pos_cnum <= loc.Location.loc_start.pos_cnum
                  && loc.Location.loc_end.pos_cnum <= s.spawn_loc.Location.loc_end.pos_cnum
                then
                  emit ~allow ~sink
                    (Diag.of_location ~rule:Analyze_rules.a2
                       ~message:
                         (Printf.sprintf
                            "module-global %s is written inside a thunk \
                             passed to %s; cross-domain writes need a \
                             Mutex or Atomic.t"
                            g s.spawn_entry)
                       loc))
              d.spawns)
          d.global_writes)
    defs

(* --- A3: registry / probe / test coverage audit --- *)

type sched_unit = {
  su : unit_info;
  su_instance_loc : Location.t;
  su_probed : bool;
}

let check_a3 m ~allow ~sink =
  let defs = all_defs m in
  let by_name = index_defs defs in
  (* Scheduler units: lib units that construct a Wireless_sched.instance,
     excluding the module that declares the type itself. *)
  let sched_units =
    List.filter_map
      (fun u ->
        if u.u_role <> Lib then None
        else if
          match List.rev (String.split_on_char '.' u.u_name) with
          | last :: _ -> String.equal last "Wireless_sched"
          | [] -> false
        then None
        else
          let inst =
            List.find_map (fun d -> d.makes_instance) u.u_defs
          in
          match inst with
          | None -> None
          | Some loc ->
              Some
                {
                  su = u;
                  su_instance_loc = loc;
                  su_probed = List.exists (fun d -> d.wires_probe) u.u_defs;
                })
      m.units
  in
  (* Closure of everything reachable from a registry site: a register call,
     or a lookup (get/lookup/find) — the path cell-constructed scheduler
     instances take (Wfs_topo resolves an entry and calls entry.make), so
     they count as registry-reachable too. *)
  let register_name = "Wfs_core.Registry.register" in
  let seed_names =
    [
      register_name;
      "Wfs_core.Registry.get";
      "Wfs_core.Registry.lookup";
      "Wfs_core.Registry.find";
    ]
  in
  let reachable = Hashtbl.create 128 in
  let queue = Queue.create () in
  List.iter
    (fun d ->
      if
        List.exists
          (fun (n, _) -> List.exists (String.equal n) seed_names)
          d.refs
      then Queue.push d queue)
    defs;
  while not (Queue.is_empty queue) do
    let d = Queue.pop queue in
    if not (Hashtbl.mem reachable d.def_name) then begin
      Hashtbl.replace reachable d.def_name ();
      List.iter
        (fun (n, _) ->
          if not (Hashtbl.mem reachable n) then
            List.iter
              (fun callee -> Queue.push callee queue)
              (Option.value (Hashtbl.find_opt by_name n) ~default:[]))
        d.refs
    end
  done;
  let unit_prefix u = u.u_name ^ "." in
  let has_prefix p s =
    String.length s > String.length p && String.sub s 0 (String.length p) = p
  in
  (* Test references: any ref from a test-role def into the unit. *)
  let test_refs = Hashtbl.create 128 in
  List.iter
    (fun d ->
      if d.def_role = Test then
        List.iter (fun (n, _) -> Hashtbl.replace test_refs n ()) d.refs)
    defs;
  List.iter
    (fun s ->
      let name = s.su.u_name in
      let registered =
        List.exists
          (fun d -> Hashtbl.mem reachable d.def_name)
          s.su.u_defs
      in
      if not registered then
        emit ~allow ~sink
          (Diag.of_location ~rule:Analyze_rules.a3
             ~message:
               (Printf.sprintf
                  "%s constructs a Wireless_sched.instance but is not \
                   reachable from any %s site; register it (or retire the \
                   module)"
                  name register_name)
             s.su_instance_loc);
      if not s.su_probed then
        emit ~allow ~sink
          (Diag.of_location ~rule:Analyze_rules.a3
             ~message:
               (Printf.sprintf
                  "%s wires no probe fields into its \
                   Wireless_sched.instance; the invariant monitors are \
                   blind to it — implement \
                   virtual_time/finish_tag/credit/lag_sum probes"
                  name)
             s.su_instance_loc);
      let referenced_from_tests =
        Hashtbl.fold
          (fun n () acc -> acc || has_prefix (unit_prefix s.su) n)
          test_refs false
      in
      if not referenced_from_tests then
        emit ~allow ~sink
          (Diag.of_location ~rule:Analyze_rules.a3
             ~message:
               (Printf.sprintf
                  "%s is never referenced from the test suite; the \
                   differential/lockstep tests cannot be exercising it"
                  name)
             s.su_instance_loc))
    sched_units;
  (* Dead fault kinds: every constructor of a Chaos fault taxonomy must be
     built or matched somewhere in the test suite, else the fault-injection
     tests cannot be exercising that failure path. *)
  let exercised = Hashtbl.create 64 in
  List.iter
    (fun d ->
      if d.def_role = Test then
        List.iter (fun c -> Hashtbl.replace exercised c ()) d.constructs)
    defs;
  List.iter
    (fun (ty, cstr, loc) ->
      if not (Hashtbl.mem exercised (ty ^ "." ^ cstr)) then
        emit ~allow ~sink
          (Diag.of_location ~rule:Analyze_rules.a3
             ~message:
               (Printf.sprintf
                  "fault kind %s of %s is never constructed or matched by \
                   any test-role definition; the fault-injection suite \
                   cannot be exercising this failure path"
                  cstr ty)
             loc))
    m.fault_kinds;
  (* Dead xray event kinds: the same standard for the Causality instrument
     taxonomy — a handoff/fault event nobody ever builds or matches in a
     test means the causality replay suite has a blind spot. *)
  List.iter
    (fun (ty, cstr, loc) ->
      if not (Hashtbl.mem exercised (ty ^ "." ^ cstr)) then
        emit ~allow ~sink
          (Diag.of_location ~rule:Analyze_rules.a3
             ~message:
               (Printf.sprintf
                  "event kind %s of %s is never constructed or matched by \
                   any test-role definition; the xray causality replay \
                   suite cannot be exercising this instrument path"
                  cstr ty)
             loc))
    m.event_kinds

let run m ~allow ~sink =
  check_a1 m ~allow ~sink;
  check_a2 m ~allow ~sink;
  check_a3 m ~allow ~sink
