(* Model extraction for wfs_analyze: read the .cmt files dune produces and
   distill each compilation unit into the facts the analyses consume.

   Everything downstream works on *normalized names*: a dot-separated path
   ("Wfs_util.Rng.float") in which dune's module mangling ("Wfs_util__Rng",
   "Dune__exe__Test_iwfq") is unsplit, a leading Stdlib is dropped, local
   module aliases are resolved through the typedtree (which is what defeats
   the syntactic linter), and in-unit references are qualified with the
   unit path.  Because the typer has already resolved opens, aliases and
   include paths, two references to the same definition normalize to the
   same name regardless of how the source spelled them — the property the
   parsetree lint fundamentally lacks.

   The extraction is one walk per unit producing, per toplevel definition:
     - refs: every global value referenced (the approximate call graph);
     - source_refs: direct uses of ambient-nondeterminism sources (A1);
     - poly_cmps: uses of the polymorphic runtime comparator whose
       *instantiated* type is non-immediate (A1, alias-proof R2);
     - global_writes: writes to module-global mutable state (A2);
     - spawns: Domain.spawn / Pool.map(+_outcomes) call sites with the
       mutable state their thunk captures (A2);
     - makes_instance / wires_probe: Wireless_sched.instance and probe
       record constructions (A3).
   Functor bodies are skipped (no concrete instantiation to attribute
   facts to) — a documented approximation. *)

open Typedtree

type role = Lib | Test

type spawn = {
  spawn_entry : string;
  spawn_loc : Location.t;
  (* (variable, mutable kind, first use location) for every free variable
     of the thunk whose type is mutable and not an Atomic/Mutex class. *)
  captures : (string * string * Location.t) list;
  (* Global values the thunk references, for the transitive-write check. *)
  thunk_refs : string list;
  resolved : bool;  (* false when the thunk expression could not be found *)
}

type def = {
  def_name : string;
  def_unit : string;
  def_role : role;
  def_loc : Location.t;
  mutable refs : (string * Location.t) list;
  mutable source_refs : (string * Location.t) list;
  mutable poly_cmps : (string * string * Location.t) list;
  mutable global_writes : (string * Location.t) list;
  mutable makes_instance : Location.t option;
  mutable wires_probe : bool;
  mutable spawns : spawn list;
  mutable constructs : string list;
      (* normalized "<type path>.<constructor>" for every variant
         constructor this def builds or pattern-matches (A3 dead-fault) *)
}

type decl_kind =
  | Enum  (* variant, all constructors constant: an immediate *)
  | Structured  (* record or variant with payloads: runtime comparator *)
  | Mutable_decl  (* record with mutable fields *)
  | Alias of Types.type_expr

type unit_info = {
  u_name : string;
  u_role : role;
  u_file : string;
  mutable u_defs : def list;  (* in definition order *)
}

type model = {
  units : unit_info list;  (* in load order (sorted by the caller) *)
  decls : (string, decl_kind) Hashtbl.t;
  fault_kinds : (string * string * Location.t) list;
      (* (type full name, constructor, decl location) for every variant
         type named [fault] declared under a Chaos module — the fault
         taxonomy A3's dead-kind audit covers, in declaration order *)
  event_kinds : (string * string * Location.t) list;
      (* same shape for every variant type named [event] declared under a
         Causality module — the xray instrument taxonomy the A3 audit
         holds to the same never-dead standard *)
}

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

(* --- name normalization --- *)

(* "Wfs_util__Rng" -> ["Wfs_util"; "Rng"]; "Wfs_util__" -> ["Wfs_util"]. *)
let split_mangled s =
  let n = String.length s in
  let out = ref [] and start = ref 0 in
  let i = ref 0 in
  while !i < n - 1 do
    if s.[!i] = '_' && s.[!i + 1] = '_' then begin
      if !i > !start then out := String.sub s !start (!i - !start) :: !out;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  if n > !start then out := String.sub s !start (n - !start) :: !out;
  List.rev !out

let rec path_segs (p : Path.t) =
  match p with
  | Pident id -> split_mangled (Ident.name id)
  | Pdot (p, s) -> path_segs p @ split_mangled s
  | Papply (a, _) -> path_segs a  (* approximate: name functor results by the functor *)
  | Pextra_ty (p, _) -> path_segs p

let drop_stdlib = function "Stdlib" :: (_ :: _ as rest) -> rest | segs -> segs

type ctx = {
  unit_segs : string list;
  decls : (string, decl_kind) Hashtbl.t;  (* shared across all units *)
  aliases : (string, string list) Hashtbl.t;
      (* local module alias -> normalized target segments *)
  local_modules : (string, unit) Hashtbl.t;
      (* structure modules defined in this unit, for in-unit qualification *)
  toplevel : (string, string) Hashtbl.t;
      (* Ident.unique_name of unit-toplevel values -> normalized full name *)
  locals : (string, expression) Hashtbl.t;
      (* Ident.unique_name of let-bound values -> bound expression *)
}

let name_of_segs segs = String.concat "." segs

let normalize ctx p =
  let segs = drop_stdlib (path_segs p) in
  match segs with
  | [] -> ""
  | hd :: tl -> (
      match Hashtbl.find_opt ctx.aliases hd with
      | Some target -> name_of_segs (target @ tl)
      | None ->
          if Hashtbl.mem ctx.local_modules hd then
            name_of_segs (ctx.unit_segs @ segs)
          else name_of_segs segs)

(* A type path, qualified with the unit when it refers to an in-unit
   declaration ("t" inside rng.ml -> "Wfs_util.Rng.t").  Predefined types
   (int, list, option, ...) keep their bare names. *)
let normalize_type ctx (p : Path.t) =
  match p with
  | Pident id when not (Ident.is_predef id) -> (
      match split_mangled (Ident.name id) with
      | [ seg ]
        when (not (Hashtbl.mem ctx.aliases seg))
             && not (Hashtbl.mem ctx.local_modules seg) ->
          name_of_segs (ctx.unit_segs @ [ seg ])
      | _ -> normalize ctx p)
  | _ -> normalize ctx p

(* --- classification tables --- *)

let ambient_sources =
  [
    "Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Unix.times";
    "Hashtbl.hash"; "Hashtbl.seeded_hash"; "Hashtbl.hash_param";
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.randomize";
    "Hashtbl.to_seq"; "Hashtbl.to_seq_keys"; "Hashtbl.to_seq_values";
    "Domain.self";
  ]

let is_ambient_source name =
  (String.length name > 7 && String.sub name 0 7 = "Random.")
  || String.equal name "Random"
  || List.mem name ambient_sources

(* The blessed determinism boundary: calls into these modules do not
   propagate taint, and definitions inside them are never tainted. *)
let sanctioned_units = [ "Wfs_util.Rng"; "Wfs_sim.Clock" ]

let in_sanctioned_unit unit_name =
  List.exists (String.equal unit_name) sanctioned_units

let is_sanctioned_call name =
  List.exists
    (fun u ->
      let lu = String.length u in
      String.length name > lu
      && String.sub name 0 lu = u
      && name.[lu] = '.')
    sanctioned_units

let spawn_entries =
  [ "Domain.spawn"; "Wfs_runner.Pool.map"; "Wfs_runner.Pool.map_outcomes" ]

(* (function, its first positional argument is mutated) *)
let mutator_calls =
  [
    "Array.set"; "Array.unsafe_set"; "Array.fill"; "Array.blit";
    "Array.sort"; "Array.shuffle";
    "Bytes.set"; "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit";
    "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Hashtbl.filter_map_inplace";
    "Queue.push"; "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.clear";
    "Queue.transfer"; "Queue.add_seq";
    "Stack.push"; "Stack.pop"; "Stack.clear";
    "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
    "Buffer.clear"; "Buffer.reset"; "Buffer.truncate";
  ]

let poly_comparators = [ "compare"; "min"; "max" ]
let poly_operators = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

(* --- type classification --- *)

let rec head_constr decls fuel ty =
  if fuel = 0 then None
  else
    match Types.get_desc ty with
    | Tconstr (p, args, _) -> Some (p, args)
    | Tpoly (t, _) -> head_constr decls (fuel - 1) t
    | _ -> None

(* Mutability of a captured variable's type (A2). *)
type mutability = Mutable_kind of string | Sync_safe | Immutable_kind

let rec mutability_of ctx fuel ty =
  if fuel = 0 then Immutable_kind
  else
    match Types.get_desc ty with
    | Tpoly (t, _) -> mutability_of ctx (fuel - 1) t
    | Tconstr (p, _, _) -> (
        let n = normalize_type ctx p in
        match n with
        | "ref" -> Mutable_kind "ref cell"
        | "array" | "floatarray" | "Float.Array.t" -> Mutable_kind "array"
        | "bytes" | "Bytes.t" -> Mutable_kind "bytes"
        | "Buffer.t" -> Mutable_kind "Buffer.t"
        | "Hashtbl.t" -> Mutable_kind "Hashtbl.t"
        | "Queue.t" -> Mutable_kind "Queue.t"
        | "Stack.t" -> Mutable_kind "Stack.t"
        | "Atomic.t" | "Mutex.t" | "Condition.t" | "Semaphore.Counting.t"
        | "Semaphore.Binary.t" | "Domain.t" ->
            Sync_safe
        | _ -> (
            match Hashtbl.find_opt ctx.decls n with
            | Some Mutable_decl ->
                Mutable_kind (n ^ " (record with mutable fields)")
            | Some (Alias t) -> mutability_of ctx (fuel - 1) t
            | Some Enum | Some Structured | None -> Immutable_kind))
    | _ -> Immutable_kind

(* Is a comparison at this instantiated type safe for the polymorphic
   runtime comparator?  [`Flag reason] when it is not.  Unknown types err
   toward silence: the gate must stay clean on sound code. *)
let rec comparator_class ~operator ctx fuel ty =
  if fuel = 0 then `Ok
  else
    match Types.get_desc ty with
    | Tvar _ | Tunivar _ ->
        `Flag
          "a polymorphic type: the comparator escapes first-class and \
           cannot be specialized"
    | Tarrow _ -> `Flag "a function type: runtime comparison will raise"
    | Ttuple _ -> `Flag "a tuple: compare components explicitly"
    | Tpoly (t, _) -> comparator_class ~operator ctx (fuel - 1) t
    | Tconstr (p, _, _) -> (
        let n = normalize_type ctx p in
        match n with
        | "int" | "bool" | "char" | "unit" -> `Ok
        (* Operators on base scalar types specialize and stay
           deterministic; the style rules for them (R2/R3) are the
           syntactic tier's business.  Bare compare/min/max at these
           types is still flagged: it only reaches here via an alias. *)
        | "float" | "string" | "int32" | "int64" | "nativeint" ->
            if operator then `Ok
            else `Flag (Printf.sprintf "%s (use the typed comparator)" n)
        | "list" | "option" | "array" | "ref" | "result" | "lazy_t"
        | "Either.t" | "Seq.t" | "Queue.t" | "Stack.t" | "Hashtbl.t"
        | "Buffer.t" ->
            `Flag (n ^ ": deep structural comparison through the runtime")
        | _ -> (
            match Hashtbl.find_opt ctx.decls n with
            | Some Enum -> `Ok
            | Some (Alias t) -> comparator_class ~operator ctx (fuel - 1) t
            | Some Structured | Some Mutable_decl ->
                `Flag (n ^ ": structured type, compare through a typed equality")
            | None -> `Ok))
    | _ -> `Ok

(* First argument type of a (possibly 2-ary) comparator's instantiated
   type: [t -> t -> _] gives t; [t list -> ...] (List.mem's second arg)
   is handled by the caller choosing which arrow argument to look at. *)
let arrow_arg ty =
  match Types.get_desc ty with Tarrow (_, a, _, _) -> Some a | _ -> None

(* --- declaration collection (pass 1) --- *)

let decl_kind_of (td : Types.type_declaration) =
  match td.type_kind with
  | Type_variant (cstrs, _) ->
      let constant c =
        match c.Types.cd_args with Cstr_tuple [] -> true | _ -> false
      in
      if List.for_all constant cstrs then Some Enum else Some Structured
  | Type_record (lbls, _) ->
      if List.exists (fun l -> l.Types.ld_mutable = Mutable) lbls then
        Some Mutable_decl
      else Some Structured
  | _ -> (
      match td.type_manifest with Some t -> Some (Alias t) | None -> None)

let rec collect_decls ~decls ~faults ~events ~mpath str =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_type (_, tds) ->
          List.iter
            (fun td ->
              (match decl_kind_of td.typ_type with
              | Some k ->
                  Hashtbl.replace decls
                    (name_of_segs (mpath @ [ Ident.name td.typ_id ]))
                    k
              | None -> ());
              match td.typ_type.Types.type_kind with
              | Type_variant (cstrs, _)
                when String.equal (Ident.name td.typ_id) "fault"
                     && List.exists (String.equal "Chaos") mpath ->
                  let ty = name_of_segs (mpath @ [ Ident.name td.typ_id ]) in
                  List.iter
                    (fun c ->
                      faults :=
                        (ty, Ident.name c.Types.cd_id, c.Types.cd_loc)
                        :: !faults)
                    cstrs
              | Type_variant (cstrs, _)
                when String.equal (Ident.name td.typ_id) "event"
                     && List.exists (String.equal "Causality") mpath ->
                  let ty = name_of_segs (mpath @ [ Ident.name td.typ_id ]) in
                  List.iter
                    (fun c ->
                      events :=
                        (ty, Ident.name c.Types.cd_id, c.Types.cd_loc)
                        :: !events)
                    cstrs
              | _ -> ())
            tds
      | Tstr_module mb -> collect_decls_module ~decls ~faults ~events ~mpath mb
      | Tstr_recmodule mbs ->
          List.iter (collect_decls_module ~decls ~faults ~events ~mpath) mbs
      | _ -> ())
    str.str_items

and collect_decls_module ~decls ~faults ~events ~mpath mb =
  let name =
    match mb.mb_name.txt with Some n -> n | None -> "_"
  in
  let rec go me =
    match me.mod_desc with
    | Tmod_structure s ->
        collect_decls ~decls ~faults ~events ~mpath:(mpath @ [ name ]) s
    | Tmod_constraint (me, _, _, _) -> go me
    | _ -> ()
  in
  go mb.mb_expr

(* --- definition extraction (pass 2) --- *)

let iter_pattern_vars (type k) f (p : k general_pattern) =
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k2) it (q : k2 general_pattern) ->
          (match q.pat_desc with
          | Tpat_var (id, _) -> f id
          | Tpat_alias (_, id, _) -> f id
          | _ -> ());
          Tast_iterator.default_iterator.pat it q);
    }
  in
  it.pat it p

(* Free-variable scan of a thunk: bound = every ident bound inside; used =
   Pident references in visit order.  Captures = used, minus bound, minus
   the unit's toplevel values (those are reached through the module, not
   the closure environment).  Also returns the global names the thunk
   references, so A2 can chase transitive global writes. *)
let thunk_captures ctx thunk =
  let bound = Hashtbl.create 32 in
  let used = ref [] in
  let grefs = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) it (q : k general_pattern) ->
          (match q.pat_desc with
          | Tpat_var (id, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
          | Tpat_alias (_, id, _) ->
              Hashtbl.replace bound (Ident.unique_name id) ()
          | _ -> ());
          Tast_iterator.default_iterator.pat it q);
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_ident (Pident id, _, _) -> (
              used := (id, e.exp_loc, e.exp_type) :: !used;
              match Hashtbl.find_opt ctx.toplevel (Ident.unique_name id) with
              | Some full -> grefs := full :: !grefs
              | None -> ())
          | Texp_ident ((Pdot _ as p), _, _) ->
              grefs := normalize ctx p :: !grefs
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it thunk;
  let seen = Hashtbl.create 16 in
  let captures =
    List.filter_map
      (fun (id, loc, ty) ->
        let key = Ident.unique_name id in
        if
          Hashtbl.mem bound key || Hashtbl.mem ctx.toplevel key
          || Hashtbl.mem seen key
        then None
        else begin
          Hashtbl.replace seen key ();
          match mutability_of ctx 20 ty with
          | Mutable_kind kind -> Some (Ident.name id, kind, loc)
          | Sync_safe | Immutable_kind -> None
        end)
      (List.rev !used)
  in
  (captures, List.rev !grefs)

let probe_labels =
  [ "virtual_time"; "finish_tag"; "credit"; "lag_sum"; "work_conserving" ]

let last2 name =
  match List.rev (String.split_on_char '.' name) with
  | b :: a :: _ -> Some (a, b)
  | _ -> None

(* The walk over one definition body. *)
let walk_def ctx (def : def) expr0 =
  let global_target e =
    (* An expression denoting module-global state: a toplevel value of
       this unit, or a value in another module. *)
    match e.exp_desc with
    | Texp_ident (Pident id, _, _) ->
        Hashtbl.find_opt ctx.toplevel (Ident.unique_name id)
    | Texp_ident ((Pdot _ as p), _, _) -> Some (normalize ctx p)
    | _ -> None
  in
  let first_positional args =
    List.find_map
      (function Asttypes.Nolabel, Some e -> Some e | _ -> None)
      args
  in
  let record_construct (cstr : Types.constructor_description) =
    (* Name the constructor by its result type's normalized path, the same
       key collect_decls uses for the fault taxonomy. *)
    match head_constr ctx.decls 20 cstr.Types.cstr_res with
    | Some (p, _) ->
        def.constructs <-
          (normalize_type ctx p ^ "." ^ cstr.Types.cstr_name)
          :: def.constructs
    | None -> ()
  in
  let record_poly_cmp name e =
    (* [name] is a Stdlib comparator; classify its instantiation via the
       first arrow argument of the occurrence's type (for List.mem that
       is the element, which is what we want). *)
    let operator = List.mem name poly_operators in
    match arrow_arg e.exp_type with
    | None -> ()  (* eta-reduced into an unknown shape; stay silent *)
    | Some ty -> (
        match comparator_class ~operator ctx 20 ty with
        | `Ok -> ()
        | `Flag reason ->
            def.poly_cmps <- (name, reason, e.exp_loc) :: def.poly_cmps)
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) -> (
              match p with
              | Pident id -> (
                  match Hashtbl.find_opt ctx.toplevel (Ident.unique_name id) with
                  | Some full -> def.refs <- (full, e.exp_loc) :: def.refs
                  | None -> ())
              | _ ->
                  let n = normalize ctx p in
                  def.refs <- (n, e.exp_loc) :: def.refs;
                  if is_ambient_source n then
                    def.source_refs <- (n, e.exp_loc) :: def.source_refs;
                  if
                    List.mem n poly_comparators
                    || List.mem n poly_operators
                    || String.equal n "List.mem"
                  then record_poly_cmp n e)
          | Texp_apply (fn, args) -> (
              match fn.exp_desc with
              | Texp_ident (p, _, _) -> (
                  let n = normalize ctx p in
                  (if String.equal n ":=" then
                     match args with
                     | (Asttypes.Nolabel, Some tgt) :: _ -> (
                         match global_target tgt with
                         | Some g ->
                             def.global_writes <-
                               (g, e.exp_loc) :: def.global_writes
                         | None -> ())
                     | _ -> ());
                  (if List.mem n mutator_calls then
                     match first_positional args with
                     | Some tgt -> (
                         match global_target tgt with
                         | Some g ->
                             def.global_writes <-
                               (g, e.exp_loc) :: def.global_writes
                         | None -> ())
                     | None -> ());
                  if List.mem n spawn_entries then
                    (* The thunk: a function literal or a let-bound ident
                       is scanned for captures; a module-level function is
                       resolved by name so the call-graph write check can
                       chase it. *)
                    let thunk, named =
                      match first_positional args with
                      | Some ({ exp_desc = Texp_function _; _ } as f) ->
                          (Some f, [])
                      | Some { exp_desc = Texp_ident (Pident id, _, _); _ }
                        -> (
                          let key = Ident.unique_name id in
                          match Hashtbl.find_opt ctx.locals key with
                          | Some body -> (Some body, [])
                          | None -> (
                              match Hashtbl.find_opt ctx.toplevel key with
                              | Some full -> (None, [ full ])
                              | None -> (None, [])))
                      | Some { exp_desc = Texp_ident ((Pdot _ as p), _, _); _ }
                        ->
                          (None, [ normalize ctx p ])
                      | _ -> (None, [])
                    in
                    let spawn =
                      match thunk with
                      | Some body ->
                          let captures, thunk_refs =
                            thunk_captures ctx body
                          in
                          {
                            spawn_entry = n;
                            spawn_loc = e.exp_loc;
                            captures;
                            thunk_refs;
                            resolved = true;
                          }
                      | None ->
                          {
                            spawn_entry = n;
                            spawn_loc = e.exp_loc;
                            captures = [];
                            thunk_refs = named;
                            resolved = named <> [];
                          }
                    in
                    def.spawns <- spawn :: def.spawns)
              | _ -> ())
          | Texp_record { fields; extended_expression; _ } -> (
              match head_constr ctx.decls 20 e.exp_type with
              | Some (p, _) -> (
                  match last2 (normalize_type ctx p) with
                  | Some ("Wireless_sched", "instance") ->
                      if def.makes_instance = None then
                        def.makes_instance <- Some e.exp_loc
                  | Some ("Wireless_sched", "probe") ->
                      let nontrivial (d : record_label_definition) =
                        match d with
                        | Overridden (_, ex) -> (
                            match ex.exp_desc with
                            | Texp_construct (_, c, _) ->
                                not
                                  (List.mem c.Types.cstr_name
                                     [ "None"; "false" ])
                            | _ -> true)
                        | _ -> false
                      in
                      if
                        Array.exists
                          (fun (lbl, d) ->
                            List.mem lbl.Types.lbl_name probe_labels
                            && nontrivial d)
                          fields
                        || (extended_expression <> None
                            && Array.exists
                                 (fun (_, d) ->
                                   match d with
                                   | Overridden _ -> true
                                   | _ -> false)
                                 fields)
                      then def.wires_probe <- true
                  | _ -> ())
              | None -> ())
          | Texp_construct (_, cstr, _) -> record_construct cstr
          | Texp_setfield (tgt, _, _, _) -> (
              match global_target tgt with
              | Some g -> def.global_writes <- (g, e.exp_loc) :: def.global_writes
              | None -> ())
          | Texp_letmodule (_, name, _, me, _) -> (
              match (name.txt, me.mod_desc) with
              | Some n, Tmod_ident (p, _) ->
                  Hashtbl.replace ctx.aliases n (drop_stdlib (path_segs p))
              | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
      pat =
        (fun (type k) it (q : k general_pattern) ->
          (match q.pat_desc with
          | Tpat_construct (_, cstr, _, _) -> record_construct cstr
          | _ -> ());
          Tast_iterator.default_iterator.pat it q);
      value_binding =
        (fun it vb ->
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) ->
              Hashtbl.replace ctx.locals (Ident.unique_name id) vb.vb_expr
          | _ -> ());
          Tast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.expr it expr0;
  def.refs <- List.rev def.refs;
  def.source_refs <- List.rev def.source_refs;
  def.poly_cmps <- List.rev def.poly_cmps;
  def.global_writes <- List.rev def.global_writes;
  def.spawns <- List.rev def.spawns;
  def.constructs <- List.rev def.constructs

(* Structure walk: register aliases/local modules/toplevel names first (so
   in-unit references resolve), then extract one def per value binding. *)
let rec walk_structure ctx u ~mpath str =
  (* Registration pre-pass for this level. *)
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              iter_pattern_vars
                (fun id ->
                  Hashtbl.replace ctx.toplevel (Ident.unique_name id)
                    (name_of_segs (mpath @ [ Ident.name id ])))
                vb.vb_pat)
            vbs
      | Tstr_include incl ->
          (* Values bound by [include] (e.g. a registry functor's
             [register]) are toplevel values of this unit; qualify them so
             in-unit Pident references resolve to the unit path. *)
          List.iter
            (fun (si : Types.signature_item) ->
              match si with
              | Types.Sig_value (id, _, _) ->
                  Hashtbl.replace ctx.toplevel (Ident.unique_name id)
                    (name_of_segs (mpath @ [ Ident.name id ]))
              | _ -> ())
            incl.incl_type
      | Tstr_module mb | Tstr_recmodule [ mb ] -> (
          match mb.mb_name.txt with
          | Some n -> (
              let rec target me =
                match me.mod_desc with
                | Tmod_ident (p, _) -> Some (drop_stdlib (path_segs p))
                | Tmod_constraint (me, _, _, _) -> target me
                | _ -> None
              in
              match target mb.mb_expr with
              | Some segs -> Hashtbl.replace ctx.aliases n segs
              | None -> Hashtbl.replace ctx.local_modules n ())
          | None -> ())
      | _ -> ())
    str.str_items;
  (* Extraction pass. *)
  let init_count = ref 0 in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let name =
                let found = ref None in
                iter_pattern_vars
                  (fun id -> if !found = None then found := Some (Ident.name id))
                  vb.vb_pat;
                match !found with
                | Some n -> n
                | None ->
                    incr init_count;
                    Printf.sprintf "(init:%d)" !init_count
              in
              let def =
                {
                  def_name = name_of_segs (mpath @ [ name ]);
                  def_unit = name_of_segs mpath;
                  def_role = u.u_role;
                  def_loc = vb.vb_loc;
                  refs = [];
                  source_refs = [];
                  poly_cmps = [];
                  global_writes = [];
                  makes_instance = None;
                  wires_probe = false;
                  spawns = [];
                  constructs = [];
                }
              in
              walk_def ctx def vb.vb_expr;
              u.u_defs <- u.u_defs @ [ def ])
            vbs
      | Tstr_eval (e, _) ->
          incr init_count;
          let def =
            {
              def_name =
                name_of_segs
                  (mpath @ [ Printf.sprintf "(init:%d)" !init_count ]);
              def_unit = name_of_segs mpath;
              def_role = u.u_role;
              def_loc = item.str_loc;
              refs = [];
              source_refs = [];
              poly_cmps = [];
              global_writes = [];
              makes_instance = None;
              wires_probe = false;
              spawns = [];
              constructs = [];
            }
          in
          walk_def ctx def e;
          u.u_defs <- u.u_defs @ [ def ]
      | Tstr_module mb -> walk_module ctx u ~mpath mb
      | Tstr_recmodule mbs -> List.iter (walk_module ctx u ~mpath) mbs
      | _ -> ())
    str.str_items

and walk_module ctx u ~mpath mb =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  let rec go me =
    match me.mod_desc with
    | Tmod_structure s -> walk_structure ctx u ~mpath:(mpath @ [ name ]) s
    | Tmod_constraint (me, _, _, _) -> go me
    | _ -> ()  (* functors, applications: skipped (documented) *)
  in
  go mb.mb_expr

(* --- loading --- *)

let read_structure path =
  match Cmt_format.read_cmt path with
  | exception Sys_error msg -> failf "%s: %s" path msg
  | exception _ -> failf "%s: not a readable .cmt (compiler mismatch?)" path
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          Some (cmt.Cmt_format.cmt_modname, cmt.Cmt_format.cmt_sourcefile, str)
      | _ -> None)

let load inputs =
  let decls = Hashtbl.create 512 in
  let read =
    List.filter_map
      (fun (path, role) ->
        match read_structure path with
        | Some (modname, src, str) -> Some (modname, src, str, role)
        | None -> None)
      inputs
  in
  (* Dedup by unit name (byte and native compilations both leave a cmt);
     first occurrence wins and the caller feeds paths sorted. *)
  let seen = Hashtbl.create 64 in
  let read =
    List.filter
      (fun (modname, _, _, _) ->
        if Hashtbl.mem seen modname then false
        else begin
          Hashtbl.replace seen modname ();
          true
        end)
      read
  in
  (* Pass 1: declarations from every unit, so cross-module type references
     classify correctly during extraction. *)
  let faults = ref [] in
  let events = ref [] in
  List.iter
    (fun (modname, _, str, _) ->
      collect_decls ~decls ~faults ~events ~mpath:(split_mangled modname) str)
    read;
  (* Pass 2: definitions. *)
  let units =
    List.map
      (fun (modname, src, str, role) ->
        let unit_segs = split_mangled modname in
        let u =
          {
            u_name = name_of_segs unit_segs;
            u_role = role;
            u_file = Option.value src ~default:(name_of_segs unit_segs);
            u_defs = [];
          }
        in
        let ctx =
          {
            unit_segs;
            decls;
            aliases = Hashtbl.create 16;
            local_modules = Hashtbl.create 16;
            toplevel = Hashtbl.create 64;
            locals = Hashtbl.create 64;
          }
        in
        walk_structure ctx u ~mpath:unit_segs str;
        u)
      read
  in
  {
    units;
    decls;
    fault_kinds = List.rev !faults;
    event_kinds = List.rev !events;
  }
