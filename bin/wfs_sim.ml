(* Command-line driver: run any paper example, scenario file, or run spec
   with any registered scheduler.

   Examples:
     wfs_sim -e 1 -a all                    # Table-1-style grid
     wfs_sim -e 4 -a swapa -k predicted     # one variant of Example 4
     wfs_sim -e 1 -b 1.0 --csv              # memoryless channel, CSV output
     wfs_sim -e 6 --credit 2 --debit 0      # Example 6 with tighter caps
     wfs_sim -a WPS,IWFQ-I,CIF-Q            # registry names work directly
     wfs_sim --spec 'example:1?sum=0.5 | WPS | seed=7 | horizon=50000'
     wfs_sim -e 1 --seeds 5 --jobs 4        # 5 replicas/run, mean±CI cells

   Schedulers are resolved through Wfs_core.Registry (see --list), runs are
   typed Wfs_runner.Spec values, and replicas execute in parallel on a
   domain pool — output is identical for every --jobs value. *)

module Registry = Wfs_core.Registry
module Spec = Wfs_runner.Spec
module T = Wfs_util.Tablefmt
module M = Wfs_core.Metrics
module Summary = Wfs_util.Stats.Summary

type output = Table | Csv

(* Map the legacy family names (-a wrr -k both) onto registry names; pass
   anything else through the registry itself, so every canonical name and
   alias — "WPS", "IWFQ-I", "CIF-Q", comma-separated lists — works too. *)
let resolve_algorithms algo info =
  let infos =
    match info with
    | "ideal" -> [ "I" ]
    | "predicted" -> [ "P" ]
    | "both" -> [ "I"; "P" ]
    | s -> invalid_arg ("unknown knowledge: " ^ s)
  in
  let variants base = List.map (fun s -> base ^ "-" ^ s) infos in
  match String.lowercase_ascii algo with
  | "all" -> List.map (fun e -> e.Registry.name) (Registry.table1_extended ())
  | "blind" -> [ "Blind WRR" ]
  | "wrr" -> variants "WRR"
  | "noswap" -> variants "NoSwap"
  | "swapw" -> variants "SwapW"
  | "swapa" -> variants "SwapA"
  | "iwfq" -> variants "IWFQ"
  | "cifq" -> variants "CIF-Q"
  | "csdps" -> [ "CSDPS" ]
  | _ ->
      (* Registry names/aliases, possibly comma-separated.  get raises with
         the known-name list on a typo. *)
      String.split_on_char ',' algo
      |> List.map (fun name -> (Registry.get (String.trim name)).Registry.name)

type run_result = {
  metrics : M.t;
  jain_gap : (float * float) option;  (* windowed fairness, when requested *)
  instruments : Wfs_obs.Instruments.t option;  (* for --metrics-out *)
  skip : Wfs_core.Skip_stats.t option;  (* fast-path skip telemetry *)
}

(* Observability options threaded into every run.  Sinks and the profiler
   are shared mutable objects, so the driver forces --jobs 1 whenever they
   are present; instrument registries are per-run and merge afterwards in
   unit order, so they work at any job count. *)
type obs = {
  want_instruments : bool;
  sinks : Wfs_obs.Sink.t list;
  stride : int;
  profiler : Wfs_obs.Profiler.t option;
  flight : int option;  (* flight-recorder capacity *)
  windows : (string * int) option;  (* --windows path, --window-slots *)
}

(* One self-contained run: registry lookup, fresh seeded setups, optional
   fairness monitor and telemetry.  Safe to execute on any domain (with
   the sink/profiler caveat above). *)
let run_one ~credit ~debit ~fairness ~invariants ~fast_path ~obs
    (spec : Spec.t) =
  let entry = Registry.get spec.sched in
  let setups = Wfs_runner.Exec.setups_of spec in
  let flows = Wfs_core.Presets.flows_of setups in
  let sched = entry.Registry.make ~credit_limit:credit ~debit_limit:debit flows in
  let monitor =
    if fairness then
      Some
        (Wfs_core.Fairness.Monitor.create
           ~weights:(Array.map (fun (f : Wfs_core.Params.flow) -> f.weight) flows)
           ~window:100 ~sched)
    else None
  in
  let registry =
    if obs.want_instruments then Some (Wfs_obs.Instruments.create ()) else None
  in
  let slot_probe =
    if obs.want_instruments || obs.sinks <> [] then
      Some
        (Wfs_obs.Probe.create ~stride:obs.stride ~sinks:obs.sinks
           ?instruments:registry ~n_flows:(Array.length setups) sched)
    else None
  in
  let trace =
    Option.map
      (fun cap -> Wfs_core.Simulator.Tracelog.create ~capacity:cap ())
      obs.flight
  in
  (* Windowed aggregation is a per-slot observer here (it degenerates the
     fast path, like --fairness); topology runs sample at barriers
     instead and stay compressed. *)
  let wcoll =
    Option.map
      (fun (_, window) ->
        Wfs_xray.Windowed.create
          ~weights:
            (Array.map (fun (f : Wfs_core.Params.flow) -> f.weight) flows)
          ~window)
      obs.windows
  in
  let observer =
    match
      ( Option.map Wfs_core.Fairness.Monitor.observer monitor,
        Option.map Wfs_xray.Windowed.observer wcoll )
    with
    | None, None -> None
    | (Some _ as f), None -> f
    | None, (Some _ as g) -> g
    | Some f, Some g ->
        Some
          (fun slot m ->
            f slot m;
            g slot m)
  in
  (* Skip telemetry records at window granularity and is deliberately NOT
     part of the fast path's degeneration condition: a --fast-path run
     stays compressed while counting what it skipped. *)
  let skip = if fast_path then Some (Wfs_core.Skip_stats.create ()) else None in
  let cfg =
    Wfs_core.Simulator.config ~predictor:entry.Registry.predictor
      ?observer ?trace ?slot_probe
      ?profiler:(Option.map Wfs_obs.Profiler.hooks obs.profiler)
      ?skip_stats:skip ~invariants ~fast_path ~horizon:spec.horizon setups
  in
  match Wfs_core.Simulator.run cfg sched with
  | metrics ->
      (match (wcoll, obs.windows) with
      | Some w, Some (path, window) ->
          Wfs_xray.Windowed.flush w ~slot:(spec.horizon - 1) ~metrics;
          Wfs_xray.Windowed.write ~path ~window (Wfs_xray.Windowed.windows w)
      | _ -> ());
      {
        metrics;
        jain_gap =
          Option.map
            (fun mon ->
              ( Wfs_core.Fairness.Monitor.mean_jain mon,
                Wfs_core.Fairness.Monitor.worst_gap mon ))
            monitor;
        instruments = registry;
        skip;
      }
  | exception exn -> (
      (* With a flight recorder on, a dying run takes its last N events
         along: re-raise as a typed error whose context carries them, so
         the failure table shows what the scheduler was doing. *)
      match trace with
      | None -> raise exn
      | Some tr ->
          let backtrace = Printexc.get_raw_backtrace () in
          let e = Wfs_util.Error.of_exn ~who:"wfs_sim" ~backtrace exn in
          Wfs_util.Error.raise_
            (Wfs_util.Error.add_context (Wfs_runner.Exec.flight_context tr) e))

(* One rendered cell: plain value for a single replica, mean±95% CI across
   several. *)
let agg ?decimals results f =
  match results with
  | [| r |] -> T.cell_of_float ?decimals (f r)
  | results ->
      let s = Summary.create () in
      Array.iter (fun r -> Summary.add s (f r)) results;
      Printf.sprintf "%s±%s"
        (T.cell_of_float ?decimals (Summary.mean s))
        (T.cell_of_float ?decimals (Summary.ci95 s))

(* Run every (label, spec) with [seeds] replicas crash-isolated on the
   domain pool and print one row per flow per label.  A replica that fails
   (raise, or slot budget refusal) loses only its own label: that label's
   rows are skipped, the typed errors are listed in a failure table, and
   the process exits 3 instead of aborting mid-sweep. *)
let run_and_render ~title ~output ~jobs ~seeds ~credit ~debit ~fairness
    ~retries ~max_slots ~invariants ~fast_path ~flow_base ~metrics_out
    ~trace_out ~trace_csv ~trace_stride ~profile ~flight_recorder
    ~windows_out ~window_slots labeled_specs =
  let units =
    Array.of_list
      (List.concat_map
         (fun (_, sp) ->
           List.init seeds (fun k -> Spec.with_seed (sp.Spec.seed + k) sp))
         labeled_specs)
  in
  let tracing = trace_out <> None || trace_csv <> None in
  if tracing && Array.length units <> 1 then begin
    Printf.eprintf
      "wfs_sim: --trace-out/--trace-csv need exactly one run (one algorithm, \
       --seeds 1); got %d runs\n"
      (Array.length units);
    exit 2
  end;
  if windows_out <> None && Array.length units <> 1 then begin
    Printf.eprintf
      "wfs_sim: --windows needs exactly one run (one algorithm, --seeds 1); \
       got %d runs\n"
      (Array.length units);
    exit 2
  end;
  let sinks =
    if not tracing then []
    else begin
      let sp = units.(0) in
      let n_flows = Array.length (Wfs_runner.Exec.setups_of sp) in
      let hdr =
        Wfs_obs.Trace.header ~stride:trace_stride
          ~params:
            [
              ("sched", Wfs_util.Json.Str sp.Spec.sched);
              ("seed", Wfs_util.Json.Int sp.Spec.seed);
              ("horizon", Wfs_util.Json.Int sp.Spec.horizon);
            ]
          ~n_flows ()
      in
      List.filter_map Fun.id
        [
          Option.map (fun p -> Wfs_obs.Sink.jsonl ~path:p hdr) trace_out;
          Option.map (fun p -> Wfs_obs.Sink.csv ~path:p hdr) trace_csv;
        ]
    end
  in
  let profiler = if profile then Some (Wfs_obs.Profiler.create ()) else None in
  let obs =
    {
      want_instruments = metrics_out <> None;
      sinks;
      stride = trace_stride;
      profiler;
      flight = flight_recorder;
      windows = Option.map (fun p -> (p, window_slots)) windows_out;
    }
  in
  let outcomes =
    Wfs_runner.Pool.map_outcomes ~jobs ~retries
      (fun (sp : Spec.t) ->
        match max_slots with
        | Some cap when sp.Spec.horizon > cap ->
            (* Deterministic watchdog: the slot loop is horizon-bounded, so
               a run's cost is declared up front and over-budget runs are
               refused before they start. *)
            Error
              (Wfs_util.Error.v Wfs_util.Error.Sim_fault ~who:"wfs_sim"
                 "slot budget exceeded"
                 ~context:
                   [
                     ("spec", Spec.to_string sp);
                     ("horizon", string_of_int sp.Spec.horizon);
                     ("max_slots", string_of_int cap);
                   ])
        | _ ->
            Ok (run_one ~credit ~debit ~fairness ~invariants ~fast_path ~obs sp))
      units
  in
  List.iter Wfs_obs.Sink.close sinks;
  let columns =
    [ "algorithm"; "flow"; "mean_delay"; "loss"; "max_delay"; "stddev"; "thpt" ]
    @ (if fairness then [ "jain"; "worst_gap" ] else [])
  in
  let table = T.create ~title ~columns in
  let csv_rows = ref [] in
  let failures = ref [] in
  let emit cells =
    match output with
    | Table -> T.add_row table cells
    | Csv -> csv_rows := String.concat "," cells :: !csv_rows
  in
  List.iteri
    (fun li (label, (sp : Spec.t)) ->
      let reps_out = Array.sub outcomes (li * seeds) seeds in
      let failed =
        Array.exists (function Error _ -> true | Ok _ -> false) reps_out
      in
      if failed then
        Array.iteri
          (fun k out ->
            match out with
            | Error e ->
                failures :=
                  (Spec.to_string (Spec.with_seed (sp.Spec.seed + k) sp), e)
                  :: !failures
            | Ok _ -> ())
          reps_out
      else begin
        let reps =
          Array.map
            (function Ok r -> r | Error _ -> assert false)
            reps_out
        in
        let n_flows = M.n_flows reps.(0).metrics in
        for i = 0 to n_flows - 1 do
          let base =
            [
              label;
              string_of_int (i + flow_base);
              agg reps (fun r -> M.mean_delay r.metrics ~flow:i);
              agg ~decimals:4 reps (fun r -> M.loss r.metrics ~flow:i);
              agg reps (fun r -> M.max_delay r.metrics ~flow:i);
              agg reps (fun r -> M.stddev_delay r.metrics ~flow:i);
              agg ~decimals:4 reps (fun r ->
                  M.throughput r.metrics ~flow:i ~slots:sp.Spec.horizon);
            ]
          in
          let extra =
            if fairness then
              [
                agg ~decimals:4 reps (fun r -> fst (Option.get r.jain_gap));
                agg reps (fun r -> snd (Option.get r.jain_gap));
              ]
            else []
          in
          emit (base @ extra)
        done
      end)
    labeled_specs;
  (match output with
  | Table -> T.print table
  | Csv ->
      print_endline (String.concat "," columns);
      List.iter print_endline (List.rev !csv_rows));
  (* Fast-path skip telemetry, merged across runs in unit order.  stderr
     under --csv so the golden-gated stdout stays byte-identical. *)
  let skip_merged =
    Wfs_xray.Skip_telemetry.merge_all
      (Array.to_list outcomes
      |> List.filter_map (function
           | Ok { skip = Some k; _ } -> Some k
           | Ok _ | Error _ -> None))
  in
  (match skip_merged with
  | None -> ()
  | Some k ->
      let t = Wfs_xray.Skip_telemetry.to_table k in
      (match output with
      | Table -> T.print t
      | Csv -> output_string stderr (T.render t)));
  (match metrics_out with
  | None -> ()
  | Some path -> (
      let registries =
        Array.to_list outcomes
        |> List.filter_map (function
             | Ok { instruments = Some r; _ } -> Some r
             | Ok _ | Error _ -> None)
      in
      match registries with
      | [] -> ()  (* every run failed; the failure table tells the story *)
      | registries ->
          let merged = Wfs_obs.Instruments.merge_all registries in
          let t = Wfs_obs.Instruments.to_table ~title:"probe instruments" merged in
          let art_table =
            {
              Wfs_runner.Artifact.title = T.title t;
              columns = T.columns t;
              rows = T.rows t;
            }
          in
          let art_tables =
            [ art_table ]
            @
            match skip_merged with
            | Some k -> [ Wfs_xray.Skip_telemetry.artifact_table k ]
            | None -> []
          in
          let sp0 = units.(0) in
          let slots =
            Array.fold_left
              (fun acc (sp : Spec.t) -> acc + sp.Spec.horizon)
              0 units
          in
          (* jobs and wall_clock_s are normalised (1 / 0.) so the artifact
             is byte-identical for every --jobs value — registries merge in
             unit order regardless of which domain ran what. *)
          let art =
            Wfs_runner.Artifact.v ~horizon:sp0.Spec.horizon ~seed:sp0.Spec.seed
              ~seeds ~jobs:1 ~runs:(Array.length units) ~slots
              ~wall_clock_s:0. ~tables:art_tables
          in
          Wfs_runner.Artifact.write ~path art));
  (match obs.profiler with
  | None -> ()
  | Some prof ->
      let slots =
        Array.fold_left (fun acc (sp : Spec.t) -> acc + sp.Spec.horizon) 0 units
      in
      let phase = Wfs_obs.Profiler.phase_table ~slots prof in
      (* stderr under --csv, so piped output stays parseable *)
      (match output with
      | Table -> T.print phase
      | Csv -> output_string stderr (T.render phase)));
  match List.rev !failures with
  | [] -> ()
  | failures ->
      (* stderr, so piped --csv output stays parseable *)
      Printf.eprintf "\n=== Failed runs (%d) ===\n" (List.length failures);
      List.iter
        (fun (key, e) ->
          Printf.eprintf "  %s\n    %s\n" key (Wfs_util.Error.to_string e))
        failures;
      exit 3

(* Everything one finished topology run contributes to the rendered
   output — also the payload a Topo_journal result line carries, so a
   resumed driver can replay a completed spec without re-running it. *)
type topo_run = {
  t_metrics : M.t;
  t_homes : int array;
  t_n_cells : int;
  t_handoffs : int;
  t_instruments : Wfs_obs.Instruments.t;
  t_chaos : Wfs_obs.Instruments.t option;
  t_timeline : Wfs_chaos.Chaos.event list;
}

let topo_run_to_json r =
  let module J = Wfs_util.Json in
  J.Obj
    ([
       ("metrics", M.to_json r.t_metrics);
       ( "homes",
         J.Arr (Array.to_list (Array.map (fun c -> J.Int c) r.t_homes)) );
       ("n_cells", J.Int r.t_n_cells);
       ("handoffs", J.Int r.t_handoffs);
       ("instruments", Wfs_obs.Instruments.to_json r.t_instruments);
     ]
    @ (match r.t_chaos with
      | Some ins -> [ ("chaos", Wfs_obs.Instruments.to_json ins) ]
      | None -> [])
    @
    match r.t_timeline with
    | [] -> []
    | tl ->
        [ ("timeline", J.Arr (List.map Wfs_chaos.Chaos.event_to_json tl)) ])

let topo_run_of_json j =
  let module J = Wfs_util.Json in
  let ( let* ) = Option.bind in
  let* metrics = Option.bind (J.member "metrics" j) M.of_json in
  let* homes = Option.bind (J.member "homes" j) J.to_list in
  let* homes =
    List.fold_right
      (fun v acc ->
        match (J.to_int v, acc) with
        | Some c, Some tl -> Some (c :: tl)
        | _ -> None)
      homes (Some [])
  in
  let* n_cells = Option.bind (J.member "n_cells" j) J.to_int in
  let* handoffs = Option.bind (J.member "handoffs" j) J.to_int in
  let* instruments =
    Option.bind (J.member "instruments" j) Wfs_obs.Instruments.of_json
  in
  let* chaos =
    match J.member "chaos" j with
    | None -> Some None
    | Some c -> Option.map Option.some (Wfs_obs.Instruments.of_json c)
  in
  let* timeline =
    match J.member "timeline" j with
    | None -> Some []
    | Some tl ->
        Option.bind (J.to_list tl) (fun events ->
            List.fold_right
              (fun e acc ->
                match (Wfs_chaos.Chaos.event_of_json e, acc) with
                | Some ev, Some tl -> Some (ev :: tl)
                | _ -> None)
              events (Some []))
  in
  Some
    {
      t_metrics = metrics;
      t_homes = Array.of_list homes;
      t_n_cells = n_cells;
      t_handoffs = handoffs;
      t_instruments = instruments;
      t_chaos = chaos;
      t_timeline = timeline;
    }

let topo_params_equal a b =
  let module J = Wfs_util.Json in
  let norm l =
    List.sort (fun (k, _) (k', _) -> String.compare k k') l
    |> List.map (fun (k, v) -> (k, J.to_string ~pretty:false v))
  in
  List.equal
    (fun (k, v) (k', v') -> String.equal k k' && String.equal v v')
    (norm a) (norm b)

(* Multi-cell runs go through Wfs_topo.Topology instead of the replica
   pool: cells shard over the domain pool inside one run, handoffs apply
   at epoch barriers, and the rendered table is global-flow-id indexed
   with a home-cell column.  Byte-identical for every --jobs value.

   Specs are crash-isolated like the replica pool's runs: a spec that
   fails (worker-fault budget exceeded, invariant violation) loses only
   its own rows — the typed errors land in a stderr failure table and the
   process exits 3.  With --resume, completed specs replay from the topo
   journal and an interrupted spec is re-run with every already-journaled
   barrier snapshot verified against the replay. *)
let render_topo ~title ~output ~jobs ~credit ~debit ~invariants ~fast_path
    ~metrics_out ~resume ~fault_timeline ~trace_out ~trace_csv ~trace_stride
    ~causality_out ~windows_out ~window_slots labeled_specs =
  let module J = Wfs_util.Json in
  let module TJ = Wfs_topo.Topo_journal in
  let observing =
    trace_out <> None || trace_csv <> None || causality_out <> None
    || windows_out <> None
  in
  if observing && List.length labeled_specs <> 1 then begin
    Printf.eprintf
      "wfs_sim: --trace-out/--trace-csv/--causality/--windows need exactly \
       one topology run (one algorithm, one spec); got %d runs\n"
      (List.length labeled_specs);
    exit 2
  end;
  let columns =
    [
      "algorithm"; "flow"; "cell"; "mean_delay"; "loss"; "max_delay"; "stddev";
      "thpt";
    ]
  in
  let table = T.create ~title ~columns in
  let csv_rows = ref [] in
  let emit cells =
    match output with
    | Table -> T.add_row table cells
    | Csv -> csv_rows := String.concat "," cells :: !csv_rows
  in
  let params =
    [
      ("credit", J.Int credit);
      ("debit", J.Int debit);
      ("invariants", J.Bool invariants);
      ("fast_path", J.Bool fast_path);
    ]
  in
  let journal =
    match resume with
    | None -> None
    | Some path ->
        if Sys.file_exists path then (
          match TJ.load ~path with
          | Error e -> Wfs_util.Error.raise_ e
          | Ok contents ->
              if not (topo_params_equal contents.TJ.params params) then
                Wfs_util.Error.bad_spec ~who:"wfs_sim"
                  "topo journal was written for different settings"
                  ~context:
                    [
                      ("path", path);
                      ( "journal",
                        J.to_string ~pretty:false (J.Obj contents.TJ.params) );
                      ("run", J.to_string ~pretty:false (J.Obj params));
                    ];
              Some (contents, TJ.reopen ~path))
        else
          Some
            ( { TJ.params; snapshots = []; results = [] },
              TJ.create ~path ~params )
  in
  let failures = ref [] in
  let runs = ref [] in
  List.iter
    (fun (label, (sp : Spec.t)) ->
      let key = Spec.to_string sp in
      let replayed =
        Option.bind journal (fun (c, _) -> TJ.find_result c ~spec:key)
      in
      match replayed with
      | Some payload -> (
          match topo_run_of_json payload with
          | Some r -> runs := (label, sp, r) :: !runs
          | None ->
              Wfs_util.Error.bad_spec ~who:"wfs_sim"
                "unreadable topo-journal result" ~context:[ ("spec", key) ])
      | None -> (
          (* Per-cell tracing: each cell's probe writes to that cell's own
             part file during the parallel phase; rosters and causality
             events are recorded only from the sequential barrier.  The
             merge after the run is positional, so traced topology runs
             need no --jobs restriction. *)
          let mux =
            if trace_out = None && trace_csv = None then None
            else
              let cells =
                match sp.Spec.topo with Some tp -> tp.Spec.cells | None -> 1
              in
              let part_base =
                match trace_out with
                | Some p -> p
                | None -> Option.get trace_csv
              in
              Some
                (Wfs_xray.Mux.create ~stride:trace_stride
                   ~params:
                     [
                       ("sched", J.Str sp.Spec.sched);
                       ("seed", J.Int sp.Spec.seed);
                       ("horizon", J.Int sp.Spec.horizon);
                     ]
                   ~cells ~part_base ())
          in
          let cause =
            Option.map (fun _ -> Wfs_xray.Causality.create ()) causality_out
          in
          let tap =
            match (mux, cause) with
            | None, None -> None
            | _ ->
                Some
                  {
                    Wfs_topo.Cell.on_roster =
                      (fun ~cell ~slot ~gids ->
                        match mux with
                        | Some m -> Wfs_xray.Mux.note_roster m ~cell ~slot ~gids
                        | None -> ());
                    probe =
                      (fun ~cell ~n_flows sched ->
                        Option.map
                          (fun m -> Wfs_xray.Mux.probe m ~cell ~n_flows sched)
                          mux);
                    on_carry =
                      (fun ~cell ~slot ~gid ~carried ~accepted ->
                        match cause with
                        | Some c ->
                            Wfs_xray.Causality.record c
                              (Wfs_xray.Causality.Carry
                                 { slot; flow = gid; cell; carried; accepted })
                        | None -> ());
                  }
          in
          match
            let t =
              Wfs_topo.Topology.of_spec ~credit_limit:credit
                ~debit_limit:debit ~invariants ~fast_path ?tap
                ?causality:cause sp
            in
            let journal_cb =
              Option.map
                (fun (contents, w) ~slot ->
                  let snap = Wfs_topo.Topology.snapshot t ~slot in
                  match TJ.find_snapshot contents ~spec:key ~slot with
                  | Some recorded ->
                      if
                        not
                          (String.equal
                             (J.to_string ~pretty:false snap)
                             (J.to_string ~pretty:false recorded))
                      then
                        Wfs_util.Error.bad_spec ~who:"wfs_sim"
                          "topo journal diverges from replay"
                          ~context:
                            [
                              ("spec", key);
                              ("slot", string_of_int slot);
                              ("journal", J.to_string ~pretty:false recorded);
                              ("replay", J.to_string ~pretty:false snap);
                            ]
                  | None -> TJ.append_snapshot w ~spec:key ~slot snap)
                journal
            in
            (* Windowed aggregation samples the cumulative picture at each
               barrier — the fast path stays compressed, and [start_slot]/
               [end_slot] record the span the sampling actually covered. *)
            let wcoll =
              Option.map
                (fun _ ->
                  Wfs_xray.Windowed.create
                    ~weights:(Wfs_topo.Topology.weights t)
                    ~window:window_slots)
                windows_out
            in
            let on_barrier =
              match (journal_cb, wcoll) with
              | None, None -> None
              | jc, wc ->
                  Some
                    (fun ~slot ->
                      (match jc with Some f -> f ~slot | None -> ());
                      match wc with
                      | Some w ->
                          Wfs_xray.Windowed.observe w ~slot:(slot - 1)
                            ~metrics:(Wfs_topo.Topology.peek_metrics t)
                      | None -> ())
            in
            Wfs_topo.Topology.run ~jobs ?on_barrier t;
            let r =
              {
                t_metrics = Wfs_topo.Topology.metrics t;
                t_homes = Wfs_topo.Topology.homes t;
                t_n_cells = Wfs_topo.Topology.n_cells t;
                t_handoffs = Wfs_topo.Topology.handoffs t;
                t_instruments = Wfs_topo.Topology.instruments t;
                t_chaos = Wfs_topo.Topology.chaos_instruments t;
                t_timeline = Wfs_topo.Topology.fault_timeline t;
              }
            in
            (match wcoll with
            | Some w ->
                Wfs_xray.Windowed.flush w ~slot:(sp.Spec.horizon - 1)
                  ~metrics:r.t_metrics;
                Wfs_xray.Windowed.write
                  ~path:(Option.get windows_out)
                  ~window:window_slots
                  (Wfs_xray.Windowed.windows w)
            | None -> ());
            (match cause with
            | Some c ->
                Wfs_xray.Causality.write
                  ~path:(Option.get causality_out)
                  (Wfs_xray.Causality.events c)
            | None -> ());
            (match mux with
            | Some m ->
                Wfs_xray.Mux.finish m
                  ~n_flows:(Wfs_topo.Topology.n_flows t)
                  ?jsonl:trace_out ?csv:trace_csv ()
            | None -> ());
            Option.iter
              (fun (_, w) ->
                TJ.append_result w ~spec:key (topo_run_to_json r))
              journal;
            r
          with
          | r -> runs := (label, sp, r) :: !runs
          | exception Wfs_util.Error.Error e ->
              Option.iter Wfs_xray.Mux.abort mux;
              failures := (key, e) :: !failures))
    labeled_specs;
  Option.iter (fun (_, w) -> TJ.close w) journal;
  let runs = List.rev !runs in
  let total_slots = ref 0 in
  List.iter
    (fun (label, (sp : Spec.t), r) ->
      (* Spec labels may carry the topology clause's commas: quote them so
         the CSV stays parseable. *)
      let label =
        if output = Csv && String.contains label ',' then "\"" ^ label ^ "\""
        else label
      in
      let m = r.t_metrics in
      total_slots := !total_slots + (sp.Spec.horizon * r.t_n_cells);
      for gid = 0 to M.n_flows m - 1 do
        emit
          [
            label;
            string_of_int gid;
            string_of_int r.t_homes.(gid);
            T.cell_of_float (M.mean_delay m ~flow:gid);
            T.cell_of_float ~decimals:4 (M.loss m ~flow:gid);
            T.cell_of_float (M.max_delay m ~flow:gid);
            T.cell_of_float (M.stddev_delay m ~flow:gid);
            T.cell_of_float ~decimals:4
              (M.throughput m ~flow:gid ~slots:sp.Spec.horizon);
          ]
      done)
    runs;
  (match output with
  | Table -> T.print table
  | Csv ->
      print_endline (String.concat "," columns);
      List.iter print_endline (List.rev !csv_rows));
  (match fault_timeline with
  | None -> ()
  | Some path ->
      (* wfs-chaos/1-timeline: a header line, then one event per line
         stamped with its spec — the artifact CI uploads from fault
         sweeps. *)
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc
            (J.to_string ~pretty:false
               (J.Obj [ ("schema", J.Str "wfs-chaos/1-timeline") ]));
          output_char oc '\n';
          List.iter
            (fun (_, (sp : Spec.t), r) ->
              List.iter
                (fun ev ->
                  output_string oc
                    (J.to_string ~pretty:false
                       (J.Obj
                          [
                            ("spec", J.Str (Spec.to_string sp));
                            ( "event",
                              Wfs_chaos.Chaos.event_to_json ev );
                          ]));
                  output_char oc '\n')
                r.t_timeline)
            runs));
  (match metrics_out with
  | None -> ()
  | Some path -> (
      match runs with
      | [] -> ()  (* every spec failed; the failure table tells the story *)
      | runs ->
          let merged =
            Wfs_obs.Instruments.merge_all
              (List.map (fun (_, _, r) -> r.t_instruments) runs)
          in
          let t =
            Wfs_obs.Instruments.to_table ~title:"topology instruments" merged
          in
          let tables =
            ref
              [
                {
                  Wfs_runner.Artifact.title = T.title t;
                  columns = T.columns t;
                  rows = T.rows t;
                };
              ]
          in
          (* Chaos telemetry rides along as a second table — only when
             some spec actually ran with an active fault plan, so
             zero-fault artifacts stay byte-identical to pre-chaos
             ones. *)
          (match List.filter_map (fun (_, _, r) -> r.t_chaos) runs with
          | [] -> ()
          | chaos_regs ->
              let ct =
                Wfs_obs.Instruments.to_table ~title:"chaos instruments"
                  (Wfs_obs.Instruments.merge_all chaos_regs)
              in
              tables :=
                !tables
                @ [
                    {
                      Wfs_runner.Artifact.title = T.title ct;
                      columns = T.columns ct;
                      rows = T.rows ct;
                    };
                  ]);
          let sp0 =
            match runs with (_, sp, _) :: _ -> sp | [] -> assert false
          in
          (* jobs normalised to 1 so the artifact is byte-identical for
             every --jobs value, same convention as the replica-pool
             path. *)
          let art =
            Wfs_runner.Artifact.v ~horizon:sp0.Spec.horizon
              ~seed:sp0.Spec.seed ~seeds:1 ~jobs:1 ~runs:(List.length runs)
              ~slots:!total_slots ~wall_clock_s:0. ~tables:!tables
          in
          Wfs_runner.Artifact.write ~path art));
  match List.rev !failures with
  | [] -> ()
  | failures ->
      (* stderr, so piped --csv output stays parseable *)
      Printf.eprintf "\n=== Failed topology runs (%d) ===\n"
        (List.length failures);
      List.iter
        (fun (key, e) ->
          Printf.eprintf "  %s\n    %s\n" key (Wfs_util.Error.to_string e))
        failures;
      exit 3

let title_info ~seeds ~seed ~horizon =
  if seeds > 1 then
    Printf.sprintf "seeds=%d..%d, horizon=%d slots" seed (seed + seeds - 1)
      horizon
  else Printf.sprintf "seed=%d, horizon=%d slots" seed horizon

let list_schedulers () =
  let t = T.create ~title:"Registered schedulers" ~columns:[ "name"; "aliases" ] in
  List.iter
    (fun name ->
      let e = Registry.get name in
      T.add_row t [ e.Registry.name; String.concat ", " e.Registry.aliases ])
    (Registry.names ());
  T.print t

(* Artifact validation (--check-trace / --check-metrics): load, summarise,
   exit.  CI runs these on the files it just produced. *)
let check_trace path =
  match Wfs_obs.Trace.load ~path with
  | Ok c ->
      Printf.printf "%s: ok (%d flow(s), stride %d, %d sample(s))\n" path
        c.Wfs_obs.Trace.hdr.Wfs_obs.Trace.n_flows
        c.Wfs_obs.Trace.hdr.Wfs_obs.Trace.stride
        (List.length c.Wfs_obs.Trace.samples);
      exit 0
  | Error e ->
      Printf.eprintf "wfs_sim: %s: %s\n" path (Wfs_util.Error.to_string e);
      exit 2

let check_metrics path =
  match Wfs_runner.Artifact.read path with
  | Ok a ->
      Printf.printf "%s: ok (%s, %d table(s), %d run(s), %d slots)\n" path
        a.Wfs_runner.Artifact.schema
        (List.length a.Wfs_runner.Artifact.tables)
        a.Wfs_runner.Artifact.runs a.Wfs_runner.Artifact.slots;
      exit 0
  | Error msg ->
      Printf.eprintf "wfs_sim: %s: %s\n" path msg;
      exit 2

let main_checked example seed horizon sum credit debit csv fairness algo info
    scenario specs seeds jobs list retries max_slots invariants fast_path
    metrics_out trace_out trace_csv trace_stride profile flight_recorder cells
    mobility epoch faults resume fault_timeline causality windows window_slots
    check_trace_path check_metrics_path =
  (match check_trace_path with Some p -> check_trace p | None -> ());
  (match check_metrics_path with Some p -> check_metrics p | None -> ());
  let output = if csv then Csv else Table in
  if seeds < 1 then (
    Printf.eprintf "wfs_sim: --seeds must be >= 1, got %d\n" seeds;
    exit 2);
  if retries < 0 then (
    Printf.eprintf "wfs_sim: --retries must be >= 0, got %d\n" retries;
    exit 2);
  (match jobs with
  | Some n when n < 1 ->
      Printf.eprintf "wfs_sim: --jobs must be >= 1, got %d\n" n;
      exit 2
  | _ -> ());
  (match max_slots with
  | Some n when n < 1 ->
      Printf.eprintf "wfs_sim: --max-slots must be >= 1, got %d\n" n;
      exit 2
  | _ -> ());
  if trace_stride < 1 then (
    Printf.eprintf "wfs_sim: --trace-stride must be >= 1, got %d\n" trace_stride;
    exit 2);
  if window_slots < 1 then (
    Printf.eprintf "wfs_sim: --window-slots must be >= 1, got %d\n" window_slots;
    exit 2);
  (match flight_recorder with
  | Some n when n < 1 ->
      Printf.eprintf "wfs_sim: --flight-recorder must be >= 1, got %d\n" n;
      exit 2
  | _ -> ());
  let jobs =
    match jobs with Some n -> n | None -> Wfs_runner.Pool.default_jobs ()
  in
  (* Trace sinks, the windowed collector and the profiler are shared
     mutable state on the SINGLE-CELL replica pool: serialise it so samples
     land in slot order and timings aren't interleaved.  Topology runs are
     exempt — their tracing goes through per-cell part files merged at the
     end, so they keep the requested job count. *)
  let serial_jobs =
    if trace_out <> None || trace_csv <> None || profile || windows <> None
    then 1
    else jobs
  in
  let render =
    run_and_render ~output ~jobs:serial_jobs ~seeds ~credit ~debit ~fairness
      ~retries ~max_slots ~invariants ~fast_path ~metrics_out ~trace_out
      ~trace_csv ~trace_stride ~profile ~flight_recorder
      ~windows_out:windows ~window_slots
  in
  if list then list_schedulers ()
  else begin
    (* Spec.topo/Spec.faults validate their fields; Invalid_argument is
       turned into a clean exit by [main]. *)
    let fault_plan =
      match faults with
      | None -> None
      | Some s -> (
          match Spec.faults_of_string s with
          | Ok p -> Some p
          | Error msg ->
              Printf.eprintf "wfs_sim: --faults: %s\n" msg;
              exit 2)
    in
    let topo_clause =
      if cells > 1 then
        let tp = Spec.topo ~cells ~mobility ~epoch in
        Some
          (match fault_plan with
          | Some p -> Spec.with_faults p tp
          | None -> tp)
      else begin
        (match fault_plan with
        | Some _ ->
            Printf.eprintf
              "wfs_sim: --faults needs a multi-cell run (--cells > 1); give \
               --spec its own faults=... field instead\n";
            exit 2
        | None -> ());
        None
      end
    in
    let title, flow_base, labeled =
      if specs <> [] then
        (* Explicit run specs: each is its own experiment id. *)
        let labeled =
          List.map
            (fun s -> (Spec.to_string s, s))
            (List.map Spec.of_string_exn specs)
        in
        (Printf.sprintf "%d run spec(s)" (List.length labeled), 1, labeled)
      else
        let algorithms = resolve_algorithms algo info in
        match scenario with
        | Some path ->
            (* Seed and horizon come from the file's directives, as before. *)
            let labeled =
              List.map
                (fun name -> (name, Spec.of_scenario_file ~sched:name path))
                algorithms
            in
            let sp = snd (List.hd labeled) in
            ( Printf.sprintf "%s (%s)" path
                (title_info ~seeds ~seed:sp.Spec.seed ~horizon:sp.Spec.horizon),
              0,
              labeled )
        | None ->
            let scn =
              Spec.example ?sum:(if example <= 2 then Some sum else None) example
            in
            let labeled =
              List.map
                (fun name -> (name, Spec.make ~seed ~horizon ~sched:name scn))
                algorithms
            in
            ( Printf.sprintf "Example %d (%s)" example
                (title_info ~seeds ~seed ~horizon),
              1,
              labeled )
    in
    let labeled =
      match topo_clause with
      | None -> labeled
      | Some tp when specs = [] ->
          List.map (fun (l, sp) -> (l, Spec.with_topo tp sp)) labeled
      | Some _ ->
          Printf.eprintf
            "wfs_sim: --cells applies to -e/--scenario runs; give --spec its \
             own topology clause (cells=K,mobility=R,epoch=E)\n";
          exit 2
    in
    let topo_runs, plain =
      List.partition (fun (_, sp) -> sp.Spec.topo <> None) labeled
    in
    match topo_runs with
    | [] ->
        if resume <> None || fault_timeline <> None then begin
          Printf.eprintf
            "wfs_sim: --resume/--fault-timeline apply to topology runs only \
             (--cells > 1 or a spec with a topology clause)\n";
          exit 2
        end;
        if causality <> None then begin
          Printf.eprintf
            "wfs_sim: --causality applies to topology runs only (--cells > 1 \
             or a spec with a topology clause)\n";
          exit 2
        end;
        render ~title ~flow_base plain
    | _ ->
        if plain <> [] then begin
          Printf.eprintf
            "wfs_sim: cannot mix topology and single-cell runs in one \
             invocation\n";
          exit 2
        end;
        if seeds <> 1 then begin
          Printf.eprintf "wfs_sim: topology runs support --seeds 1 only\n";
          exit 2
        end;
        if fairness || profile || flight_recorder <> None || max_slots <> None
        then begin
          Printf.eprintf
            "wfs_sim: --fairness/--profile/--flight-recorder/--max-slots are \
             not supported for topology runs\n";
          exit 2
        end;
        render_topo ~title ~output ~jobs ~credit ~debit ~invariants
          ~fast_path ~metrics_out ~resume ~fault_timeline ~trace_out
          ~trace_csv ~trace_stride ~causality_out:causality
          ~windows_out:windows ~window_slots topo_runs
  end

(* Bad scheduler names, malformed specs and out-of-range examples all raise
   Invalid_argument (or a typed Bad_spec error) with a helpful message —
   turn them into a clean exit. *)
let main example seed horizon sum credit debit csv fairness algo info scenario
    specs seeds jobs list retries max_slots invariants fast_path metrics_out
    trace_out trace_csv trace_stride profile flight_recorder cells mobility
    epoch faults resume fault_timeline causality windows window_slots
    check_trace_path check_metrics_path =
  try
    main_checked example seed horizon sum credit debit csv fairness algo info
      scenario specs seeds jobs list retries max_slots invariants fast_path
      metrics_out trace_out trace_csv trace_stride profile flight_recorder
      cells mobility epoch faults resume fault_timeline causality windows
      window_slots check_trace_path check_metrics_path
  with
  | Invalid_argument msg ->
      Printf.eprintf "wfs_sim: %s\n" msg;
      exit 2
  | Wfs_util.Error.Error e ->
      Printf.eprintf "wfs_sim: %s\n" (Wfs_util.Error.to_string e);
      exit 2

open Cmdliner

let example_arg =
  Arg.(value & opt int 1 & info [ "e"; "example" ] ~doc:"Paper example (1-6).")

let seed_arg = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~doc:"PRNG seed.")

let horizon_arg =
  Arg.(
    value
    & opt int Spec.default_horizon
    & info [ "n"; "horizon" ] ~doc:"Slots to simulate.")

let sum_arg =
  Arg.(
    value & opt float 0.1
    & info [ "b"; "burstiness" ]
        ~doc:"pg+pe for examples 1-2 (0.1 bursty ... 1.0 memoryless).")

let credit_arg =
  Arg.(value & opt int 4 & info [ "credit" ] ~doc:"Credit cap (WPS variants).")

let debit_arg =
  Arg.(value & opt int 4 & info [ "debit" ] ~doc:"Debit cap (SwapA).")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")

let fairness_arg =
  Arg.(
    value & flag
    & info [ "fairness" ]
        ~doc:"Also report windowed Jain index and worst normalised-service gap.")

let algo_arg =
  Arg.(
    value & opt string "all"
    & info [ "a"; "algorithm" ]
        ~doc:
          "Scheduler(s): a legacy family name (all, blind, wrr, noswap, swapw, \
           swapa, iwfq, cifq, csdps — combined with $(b,-k)), or \
           comma-separated registry names/aliases (see $(b,--list)), e.g. \
           'WPS,IWFQ-I,CIF-Q'.")

let info_arg =
  Arg.(
    value & opt string "both"
    & info [ "k"; "knowledge" ] ~doc:"Channel knowledge: ideal, predicted, both.")

let scenario_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "scenario" ]
        ~doc:
          "Run a scenario file instead of a paper example (see \
           lib/core/scenario.mli for the format).")

let spec_arg =
  Arg.(
    value & opt_all string []
    & info [ "spec" ]
        ~doc:
          "Run an explicit run spec, e.g. 'example:1?sum=0.5 | WPS | seed=7 | \
           horizon=50000' or 'file:cell.scenario | IWFQ | seed=1 | \
           horizon=100000'.  Repeatable; overrides $(b,-e)/$(b,-a).")

let seeds_arg =
  Arg.(
    value & opt int 1
    & info [ "seeds" ]
        ~doc:
          "Replicas per run (consecutive seeds); with K > 1, cells show mean \
           ± 95% CI.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ]
        ~doc:"Worker domains (default: all cores).  Output is jobs-invariant.")

let list_arg =
  Arg.(
    value & flag
    & info [ "list" ] ~doc:"List registered schedulers and aliases, then exit.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ]
        ~doc:
          "Extra attempts per failed run (same RNG stream, so a retry that \
           succeeds is byte-identical to a first-attempt success).")

let max_slots_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-slots" ]
        ~doc:
          "Deterministic slot-budget watchdog: refuse any run whose horizon \
           exceeds N slots instead of executing it.")

let fast_path_arg =
  Arg.(
    value & flag
    & info [ "fast-path" ]
        ~doc:
          "Run the event-compressed slot engine: quiescent windows (no \
           backlog, no scheduled arrival) are advanced in closed form \
           instead of slot by slot.  Byte-identical results by \
           construction; automatically degenerates to the reference loop \
           when per-slot telemetry ($(b,--trace-out), $(b,--metrics-out), \
           $(b,--profile), $(b,--check-invariants), $(b,--fairness)) is \
           attached.")

let invariants_arg =
  Arg.(
    value & flag
    & info [ "check-invariants" ]
        ~doc:
          "Run the paper-property monitors (virtual-time monotonicity, \
           finish-tag sanity, credit bounds, lag conservation, work \
           conservation) on every slot; a violation fails that run.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Record probe instruments (sample/idle counters, backlog \
           histogram, virtual-time/lag gauges) for every run and write the \
           merged table as a wfs-bench/1 JSON artifact.  Byte-identical for \
           every $(b,--jobs) value.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Stream a per-slot wfs-trace/1 JSONL time series (queue depths, \
           channel states, scheduler tags/credits/virtual time) to FILE.  \
           Needs exactly one run (one algorithm, $(b,--seeds) 1); forces \
           $(b,--jobs) 1.  A topology run ($(b,--cells) > 1) writes a \
           merged cell-tagged wfs-xray-trace/1 timeline instead and keeps \
           the requested job count (per-cell part files, deterministic \
           merge).")

let trace_csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-csv" ] ~docv:"FILE"
        ~doc:"Like $(b,--trace-out) but a CSV sink; both may be given.")

let trace_stride_arg =
  Arg.(
    value & opt int 1
    & info [ "trace-stride" ] ~docv:"N"
        ~doc:"Sample every N-th slot (default 1: every slot).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Time each slot-loop phase (arrivals, predict, drops, select, \
           transmit, slot-end) with a monotonic clock and print a phase \
           table (stderr under $(b,--csv)).  Forces $(b,--jobs) 1.")

let flight_recorder_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "flight-recorder" ] ~docv:"N"
        ~doc:
          "Keep a ring buffer of the last N trace events per run; when a \
           run fails, they ride along in its failure-table entry.")

let cells_arg =
  Arg.(
    value & opt int 1
    & info [ "cells" ] ~docv:"K"
        ~doc:
          "Multi-cell topology: with K > 1 the scenario is instantiated once \
           per cell (statistically independent seeds) and the cells run in \
           lockstep epochs, sharded over the $(b,--jobs) domain pool, with \
           Section 5/7 handoff state carried at epoch barriers.  Output is \
           jobs-invariant.")

let mobility_arg =
  Arg.(
    value & opt float 0.
    & info [ "mobility" ] ~docv:"R"
        ~doc:
          "Per-flow handoff probability at each epoch barrier (multi-cell \
           runs; default 0: no handoffs).")

let epoch_arg =
  Arg.(
    value & opt int 500
    & info [ "epoch" ] ~docv:"N"
        ~doc:"Slots per lockstep epoch between handoff barriers (multi-cell \
              runs).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Deterministic fault plan for a multi-cell run ($(b,--cells) > 1): \
           'crash:R;recover:R;lose:R;corrupt:R;blackout:RxN;exn:R;persist:R;\
           budget:N'.  All draws happen at epoch barriers from the plan's \
           own seeded stream, so faulted runs stay byte-identical for every \
           $(b,--jobs) value.  Crashed cells degrade gracefully: their flows \
           re-home to surviving cells under the Section 5/7 carry ledger.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Epoch-checkpoint journal for topology runs \
           (wfs-bench/1-topo-journal).  A fresh run writes one snapshot per \
           epoch barrier; a killed run re-invoked with the same FILE replays \
           completed specs from the journal and re-runs the interrupted one, \
           verifying every already-journaled barrier against the replay.")

let fault_timeline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-timeline" ] ~docv:"FILE"
        ~doc:
          "Write the chronological fault timeline of a topology run \
           (wfs-chaos/1-timeline JSONL: crashes, recoveries, lost/corrupt/\
           blocked handoffs, blackouts, worker faults) to FILE.")

let causality_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "causality" ] ~docv:"FILE"
        ~doc:
          "Write the flow-journey causality log of a topology run \
           (wfs-causality/1 JSONL: every mobility draw with its chaos \
           verdict, every crash re-home, and every carry import with the \
           lag/credit actually accepted vs carried) to FILE.  Needs exactly \
           one topology run; recorded at the sequential epoch barrier, so \
           the log is byte-identical for every $(b,--jobs) value.")

let windows_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "windows" ] ~docv:"FILE"
        ~doc:
          "Write a wfs-windows/1 tumbling-window aggregation stream (Jain \
           index, eq-(1) normalized-service gap, arrival/delivery/drop/\
           backlog/loss deltas per window) to FILE.  Single-cell runs \
           sample every slot (needs exactly one run; forces $(b,--jobs) 1); \
           topology runs sample at epoch barriers and keep the requested \
           job count.")

let window_slots_arg =
  Arg.(
    value & opt int 1000
    & info [ "window-slots" ] ~docv:"N"
        ~doc:"Tumbling-window length in slots for $(b,--windows) (default \
              1000).")

let check_trace_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "check-trace" ] ~docv:"FILE"
        ~doc:
          "Validate a wfs-trace/1 file written by $(b,--trace-out), print a \
           summary, and exit (0 valid, 2 corrupt).")

let check_metrics_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "check-metrics" ] ~docv:"FILE"
        ~doc:
          "Validate a metrics artifact written by $(b,--metrics-out), print \
           a summary, and exit (0 valid, 2 corrupt).")

let cmd =
  let doc = "Wireless fair scheduling simulator (Lu/Bharghavan/Srikant 1997)" in
  Cmd.v
    (Cmd.info "wfs_sim" ~doc)
    Term.(
      const main $ example_arg $ seed_arg $ horizon_arg $ sum_arg $ credit_arg
      $ debit_arg $ csv_arg $ fairness_arg $ algo_arg $ info_arg $ scenario_arg
      $ spec_arg $ seeds_arg $ jobs_arg $ list_arg $ retries_arg
      $ max_slots_arg $ invariants_arg $ fast_path_arg $ metrics_out_arg
      $ trace_out_arg
      $ trace_csv_arg $ trace_stride_arg $ profile_arg $ flight_recorder_arg
      $ cells_arg $ mobility_arg $ epoch_arg $ faults_arg $ resume_arg
      $ fault_timeline_arg $ causality_arg $ windows_arg $ window_slots_arg
      $ check_trace_arg $ check_metrics_arg)

let () = exit (Cmd.eval cmd)
