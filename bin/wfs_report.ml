(* Offline observability report: load any mix of the repo's on-disk
   artifacts — wfs-bench/1 metrics/bench artifacts, wfs-trace/1 single-cell
   traces, wfs-xray-trace/1 merged topology timelines, wfs-causality/1
   flow-journey logs, wfs-windows/1 aggregation streams and
   wfs-chaos/1-timeline fault logs — and render one dashboard, as aligned
   text on stdout and optionally as a self-contained HTML page.

   Examples:
     wfs_report --bench bench/baselines/BENCH_macro_eventcomp.json
     wfs_report --xray-trace topo.jsonl --causality flows.jsonl \
                --windows win.jsonl --html dashboard.html
     wfs_report --trace cell.jsonl --timeline faults.jsonl *)

module Report = Wfs_xray.Report

let die path msg =
  Printf.eprintf "wfs_report: %s: %s\n" path msg;
  exit 2

let load_bench path =
  match Wfs_runner.Artifact.read path with
  | Ok a -> Report.of_artifact a
  | Error msg -> die path msg

let load_trace path =
  match Wfs_obs.Trace.load ~path with
  | Ok c -> Report.of_trace c
  | Error e -> die path (Wfs_util.Error.to_string e)

let load_xray path =
  match Wfs_xray.Mux.load ~path with
  | Ok c -> Report.of_xray c
  | Error e -> die path (Wfs_util.Error.to_string e)

let load_causality path =
  match Wfs_xray.Causality.load ~path with
  | Ok events -> Report.of_causality events
  | Error e -> die path (Wfs_util.Error.to_string e)

let load_windows path =
  match Wfs_xray.Windowed.load ~path with
  | Ok c -> Report.of_windows c
  | Error e -> die path (Wfs_util.Error.to_string e)

let load_timeline path =
  match Report.of_timeline ~path with
  | Ok s -> s
  | Error e -> die path (Wfs_util.Error.to_string e)

let main title bench traces xray causality windows timelines html quiet =
  let sections =
    List.concat
      [
        List.map load_bench bench;
        List.map load_xray xray;
        List.map load_trace traces;
        List.map load_causality causality;
        List.map load_windows windows;
        List.map load_timeline timelines;
      ]
  in
  if sections = [] then begin
    Printf.eprintf
      "wfs_report: nothing to report; give at least one of --bench, --trace, \
       --xray-trace, --causality, --windows, --timeline\n";
    exit 2
  end;
  if not quiet then Report.print sections;
  match html with
  | None -> ()
  | Some path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Report.to_html ~title sections))

open Cmdliner

let title_arg =
  Arg.(
    value & opt string "wfs report"
    & info [ "title" ] ~docv:"STR" ~doc:"Dashboard title (HTML page header).")

let bench_arg =
  Arg.(
    value & opt_all file []
    & info [ "bench" ] ~docv:"FILE"
        ~doc:
          "A wfs-bench/1 JSON artifact ($(b,wfs_bench) output or \
           $(b,wfs_sim --metrics-out)).  Repeatable.")

let trace_arg =
  Arg.(
    value & opt_all file []
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "A single-cell wfs-trace/1 JSONL stream ($(b,wfs_sim \
           --trace-out)).  Repeatable.")

let xray_arg =
  Arg.(
    value & opt_all file []
    & info [ "xray-trace" ] ~docv:"FILE"
        ~doc:
          "A merged wfs-xray-trace/1 topology timeline ($(b,wfs_sim \
           --cells K --trace-out)).  Repeatable.")

let causality_arg =
  Arg.(
    value & opt_all file []
    & info [ "causality" ] ~docv:"FILE"
        ~doc:
          "A wfs-causality/1 flow-journey log ($(b,wfs_sim --causality)).  \
           Repeatable.")

let windows_arg =
  Arg.(
    value & opt_all file []
    & info [ "windows" ] ~docv:"FILE"
        ~doc:
          "A wfs-windows/1 aggregation stream ($(b,wfs_sim --windows)).  \
           Repeatable.")

let timeline_arg =
  Arg.(
    value & opt_all file []
    & info [ "timeline" ] ~docv:"FILE"
        ~doc:
          "A wfs-chaos/1-timeline fault log ($(b,wfs_sim \
           --fault-timeline)).  Repeatable.")

let html_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "html" ] ~docv:"FILE"
        ~doc:
          "Also write the dashboard as a self-contained HTML page (inline \
           CSS, no external assets) to FILE.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "quiet"; "q" ] ~doc:"Suppress the text dashboard on stdout.")

let cmd =
  let doc = "Offline dashboards from wfs observability artifacts" in
  Cmd.v
    (Cmd.info "wfs_report" ~doc)
    Term.(
      const main $ title_arg $ bench_arg $ trace_arg $ xray_arg
      $ causality_arg $ windows_arg $ timeline_arg $ html_arg $ quiet_arg)

let () = exit (Cmd.eval cmd)
