(* MAC-level cell simulator: runs a scenario file through the Section-6
   medium access protocol (uplink invisibility, control-slot notification
   contention, piggybacked queue reports).

   Examples:
     wfs_mac examples/uplink.scenario
     wfs_mac --aloha 0.5 examples/uplink.scenario *)

module Mac = Wfs_mac
module Core = Wfs_core

let run ~path ~contention ~control_weight ~metrics_out ~trace_out ~trace_csv
    ~trace_stride ~profile ~flight_recorder =
  let scenario = Core.Scenario.load path in
  let flows =
    Array.mapi
      (fun i setup ->
        let host, direction = scenario.Core.Scenario.addrs.(i) in
        {
          Mac.Mac_sim.addr =
            {
              Mac.Frame.host;
              direction =
                (match direction with
                | Core.Scenario.Up -> Mac.Frame.Uplink
                | Core.Scenario.Down -> Mac.Frame.Downlink);
              index = i;
            };
          weight = setup.Core.Simulator.flow.Core.Params.weight;
          source = setup.Core.Simulator.source;
          channel = setup.Core.Simulator.channel;
          drop = setup.Core.Simulator.flow.Core.Params.drop;
        })
      scenario.Core.Scenario.setups
  in
  let n_flows = Array.length flows in
  let horizon = scenario.Core.Scenario.horizon in
  let sinks =
    if trace_out = None && trace_csv = None then []
    else
      let hdr =
        Wfs_obs.Trace.header ~stride:trace_stride
          ~params:
            [
              ("scenario", Wfs_util.Json.Str path);
              ("seed", Wfs_util.Json.Int scenario.Core.Scenario.seed);
              ("horizon", Wfs_util.Json.Int horizon);
            ]
          ~n_flows ()
      in
      List.filter_map Fun.id
        [
          Option.map (fun p -> Wfs_obs.Sink.jsonl ~path:p hdr) trace_out;
          Option.map (fun p -> Wfs_obs.Sink.csv ~path:p hdr) trace_csv;
        ]
  in
  let registry =
    if metrics_out <> None then Some (Wfs_obs.Instruments.create ()) else None
  in
  let slot_probe =
    if registry <> None || sinks <> [] then
      Some (Wfs_obs.Probe.create ~stride:trace_stride ~sinks ?instruments:registry ~n_flows)
    else None
  in
  let profiler = if profile then Some (Wfs_obs.Profiler.create ()) else None in
  (* The flight recorder rides the config's trace slot: Mac_sim feeds its
     WPS trace through it, so the ring holds the most recent swap/drop
     events when a run dies. *)
  let recorder =
    Option.map (fun cap -> Core.Simulator.Tracelog.create ~capacity:cap ()) flight_recorder
  in
  let cfg =
    Mac.Mac_sim.config
      ~rng:(Wfs_util.Rng.create scenario.Core.Scenario.seed)
      ~control_weight ~contention ?trace:recorder ?slot_probe
      ?profiler:(Option.map Wfs_obs.Profiler.hooks profiler)
      ~horizon flows
  in
  let r =
    match Mac.Mac_sim.run cfg with
    | r ->
        List.iter Wfs_obs.Sink.close sinks;
        r
    | exception exn -> (
        List.iter Wfs_obs.Sink.close sinks;
        match recorder with
        | None -> raise exn
        | Some tr ->
            let backtrace = Printexc.get_raw_backtrace () in
            let e = Wfs_util.Error.of_exn ~who:"wfs_mac" ~backtrace exn in
            Wfs_util.Error.raise_
              (Wfs_util.Error.add_context (Wfs_runner.Exec.flight_context tr) e))
  in
  (match (metrics_out, registry) with
  | Some out_path, Some reg ->
      let t = Wfs_obs.Instruments.to_table ~title:"probe instruments" reg in
      let art =
        Wfs_runner.Artifact.v ~horizon ~seed:scenario.Core.Scenario.seed
          ~seeds:1 ~jobs:1 ~runs:1 ~slots:horizon ~wall_clock_s:0.
          ~tables:
            [
              {
                Wfs_runner.Artifact.title = Wfs_util.Tablefmt.title t;
                columns = Wfs_util.Tablefmt.columns t;
                rows = Wfs_util.Tablefmt.rows t;
              };
            ]
      in
      Wfs_runner.Artifact.write ~path:out_path art
  | _ -> ());
  let m = r.Mac.Mac_sim.metrics in
  let table =
    Wfs_util.Tablefmt.create
      ~title:
        (Printf.sprintf "%s through the MAC (horizon=%d)" path
           scenario.Core.Scenario.horizon)
      ~columns:
        [ "flow"; "addr"; "arrivals"; "delivered"; "mean delay"; "loss" ]
  in
  Array.iteri
    (fun i (fl : Mac.Mac_sim.flow_spec) ->
      Wfs_util.Tablefmt.add_row table
        [
          string_of_int i;
          Format.asprintf "%a" Mac.Frame.pp_addr fl.Mac.Mac_sim.addr;
          string_of_int (Core.Metrics.arrivals m ~flow:i);
          string_of_int (Core.Metrics.delivered m ~flow:i);
          Wfs_util.Tablefmt.cell_of_float (Core.Metrics.mean_delay m ~flow:i);
          Wfs_util.Tablefmt.cell_of_float ~decimals:4 (Core.Metrics.loss m ~flow:i);
        ])
    flows;
  Wfs_util.Tablefmt.print table;
  Printf.printf
    "\ncontrol slots %d | data slots %d | idle %d | notifications %d (collisions %d) | piggyback reveals %d | mean reveal delay %.2f\n"
    r.Mac.Mac_sim.control_slots r.Mac.Mac_sim.data_slots r.Mac.Mac_sim.idle_slots
    r.Mac.Mac_sim.notifications_won r.Mac.Mac_sim.notification_collisions
    r.Mac.Mac_sim.piggyback_reveals r.Mac.Mac_sim.mean_reveal_delay;
  match profiler with
  | None -> ()
  | Some prof ->
      print_newline ();
      Wfs_util.Tablefmt.print (Wfs_obs.Profiler.phase_table ~slots:horizon prof)

open Cmdliner

let scenario_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCENARIO" ~doc:"Scenario file (see lib/core/scenario.mli).")

let aloha_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "aloha" ]
        ~doc:"Use p-persistent ALOHA notification contention with this persistence.")

let control_weight_arg =
  Arg.(
    value & opt float 1.
    & info [ "control-weight" ] ~doc:"Scheduling weight of the control flow.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write probe instruments as a wfs-bench/1 JSON artifact.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Stream a per-slot wfs-trace/1 JSONL time series to FILE \
           (selected may be the control-flow index n on a control slot).")

let trace_csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-csv" ] ~docv:"FILE"
        ~doc:"Like $(b,--trace-out) but a CSV sink; both may be given.")

let trace_stride_arg =
  Arg.(
    value & opt int 1
    & info [ "trace-stride" ] ~docv:"N"
        ~doc:"Sample every N-th slot (default 1: every slot).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Time each slot-loop phase with a monotonic clock and print a \
           phase table (control-slot contention counts under transmit).")

let flight_recorder_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "flight-recorder" ] ~docv:"N"
        ~doc:
          "Keep the last N WPS trace events in a ring; on a crash they are \
           reported in the error context.")

let main path aloha control_weight metrics_out trace_out trace_csv trace_stride
    profile flight_recorder =
  if trace_stride < 1 then begin
    Printf.eprintf "wfs_mac: --trace-stride must be >= 1, got %d\n" trace_stride;
    exit 2
  end;
  (match flight_recorder with
  | Some n when n < 1 ->
      Printf.eprintf "wfs_mac: --flight-recorder must be >= 1, got %d\n" n;
      exit 2
  | _ -> ());
  let contention =
    match aloha with
    | None -> Mac.Mac_sim.Single_shot
    | Some p -> Mac.Mac_sim.Aloha p
  in
  try
    run ~path ~contention ~control_weight ~metrics_out ~trace_out ~trace_csv
      ~trace_stride ~profile ~flight_recorder
  with
  | Invalid_argument msg ->
      Printf.eprintf "wfs_mac: %s\n" msg;
      exit 2
  | Wfs_util.Error.Error e ->
      Printf.eprintf "wfs_mac: %s\n" (Wfs_util.Error.to_string e);
      exit 2

let cmd =
  let doc = "Wireless cell simulator with the Section-6 MAC protocol" in
  Cmd.v (Cmd.info "wfs_mac" ~doc)
    Term.(
      const main $ scenario_arg $ aloha_arg $ control_weight_arg
      $ metrics_out_arg $ trace_out_arg $ trace_csv_arg $ trace_stride_arg
      $ profile_arg $ flight_recorder_arg)

let () = exit (Cmd.eval cmd)
