(* Tests for the slotted simulator driver: arrival/transmission accounting,
   drop policies, reproducibility, channel replay, metrics and observers. *)

module Core = Wfs_core
module Rng = Wfs_util.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let setup ?(drop = Core.Params.No_drop) ~source ~channel id =
  {
    Core.Simulator.flow = Core.Params.flow ~id ~weight:1. ~drop ();
    source;
    channel;
  }

let cbr interarrival = Wfs_traffic.Cbr.create ~interarrival ()

let wrr_sched flows = Core.Wps.instance (Core.Wps.create ~params:Core.Params.wrr flows)

let test_single_flow_error_free () =
  let setups = [| setup 0 ~source:(cbr 2.) ~channel:(Wfs_channel.Error_free.create ()) |] in
  let cfg = Core.Simulator.config ~horizon:100 setups in
  let m = Core.Simulator.run cfg (wrr_sched (Core.Presets.flows_of setups)) in
  check_int "all arrivals" 50 (Core.Metrics.arrivals m ~flow:0);
  check_int "all delivered" 50 (Core.Metrics.delivered m ~flow:0);
  check_int "no drops" 0 (Core.Metrics.dropped m ~flow:0);
  Alcotest.(check (float 1e-9)) "zero delay" 0. (Core.Metrics.mean_delay m ~flow:0);
  check_int "half the slots idle" 50 (Core.Metrics.idle_slots m)

let test_failed_attempts_and_retx_drop () =
  (* Channel bad in slots 0..9; blind transmission burns 3 attempts and
     drops the packet (Retx_limit 2). *)
  let source = Wfs_traffic.Trace_source.of_slots [ 0 ] in
  let channel = Wfs_channel.Periodic_ch.bad_burst ~start:0 ~length:10 in
  let setups = [| setup 0 ~drop:(Core.Params.Retx_limit 2) ~source ~channel |] in
  let cfg =
    Core.Simulator.config ~predictor:Wfs_channel.Predictor.Blind ~horizon:10
      setups
  in
  let m =
    Core.Simulator.run cfg
      (Core.Wps.instance
         (Core.Wps.create ~params:Core.Params.blind_wrr
            (Core.Presets.flows_of setups)))
  in
  check_int "three failed attempts" 3 (Core.Metrics.failed_attempts m ~flow:0);
  check_int "dropped after limit" 1 (Core.Metrics.dropped m ~flow:0);
  check_int "nothing delivered" 0 (Core.Metrics.delivered m ~flow:0)

let test_delay_bound_drop () =
  (* A packet stuck behind an error burst is dropped once its age exceeds
     the bound, even though it never transmitted. *)
  let source = Wfs_traffic.Trace_source.of_slots [ 0 ] in
  let channel = Wfs_channel.Periodic_ch.bad_burst ~start:0 ~length:50 in
  let setups = [| setup 0 ~drop:(Core.Params.Delay_bound 5) ~source ~channel |] in
  let cfg = Core.Simulator.config ~predictor:Wfs_channel.Predictor.Perfect ~horizon:20 setups in
  let m = Core.Simulator.run cfg (wrr_sched (Core.Presets.flows_of setups)) in
  check_int "delay-bound drop" 1 (Core.Metrics.dropped m ~flow:0);
  check_int "no attempts (perfect skip)" 0 (Core.Metrics.failed_attempts m ~flow:0)

let test_retx_or_delay_policy () =
  let source = Wfs_traffic.Trace_source.of_slots [ 0 ] in
  let channel = Wfs_channel.Periodic_ch.bad_burst ~start:0 ~length:50 in
  let setups =
    [| setup 0 ~drop:(Core.Params.Retx_or_delay (100, 5)) ~source ~channel |]
  in
  let cfg =
    Core.Simulator.config ~predictor:Wfs_channel.Predictor.Blind ~horizon:20 setups
  in
  let m =
    Core.Simulator.run cfg
      (Core.Wps.instance
         (Core.Wps.create ~params:Core.Params.blind_wrr
            (Core.Presets.flows_of setups)))
  in
  (* Delay bound fires first (age > 5). *)
  check_int "dropped by delay bound" 1 (Core.Metrics.dropped m ~flow:0);
  check_bool "attempted a few times first" true
    (Core.Metrics.failed_attempts m ~flow:0 >= 5)

let test_deterministic_given_seed () =
  let run () =
    let setups = Core.Presets.example1 ~seed:123 () in
    let cfg = Core.Simulator.config ~horizon:5_000 setups in
    let m =
      Core.Simulator.run cfg
        (Core.Presets.scheduler Core.Presets.Swapa (Core.Presets.flows_of setups))
    in
    ( Core.Metrics.mean_delay m ~flow:0,
      Core.Metrics.delivered m ~flow:0,
      Core.Metrics.dropped m ~flow:0 )
  in
  let a = run () and b = run () in
  check_bool "bitwise reproducible" true (a = b)

let test_seed_changes_sample_path () =
  let run seed =
    let setups = Core.Presets.example1 ~seed () in
    let cfg = Core.Simulator.config ~horizon:5_000 setups in
    let m =
      Core.Simulator.run cfg
        (Core.Presets.scheduler Core.Presets.Swapa (Core.Presets.flows_of setups))
    in
    Core.Metrics.mean_delay m ~flow:0
  in
  check_bool "different seeds differ" true (run 1 <> run 2)

let test_run_with_channels_replay () =
  (* Replaying recorded channel states gives identical results to the live
     run that produced them. *)
  let mk () = Core.Presets.example1 ~seed:77 () in
  let horizon = 2_000 in
  (* Record states from fresh channels. *)
  let recorded =
    Array.map
      (fun s -> Wfs_channel.Trace_ch.record s.Core.Simulator.channel ~slots:horizon)
      (mk ())
  in
  let run_replay () =
    let setups = mk () in
    let cfg = Core.Simulator.config ~horizon setups in
    let m =
      Core.Simulator.run_with_channels cfg
        (Core.Presets.scheduler Core.Presets.Swapa (Core.Presets.flows_of setups))
        ~channel_states:recorded
    in
    (Core.Metrics.delivered m ~flow:0, Core.Metrics.mean_delay m ~flow:0)
  in
  check_bool "replay deterministic" true (run_replay () = run_replay ())

let test_observer_called_every_slot () =
  let setups = [| setup 0 ~source:(cbr 2.) ~channel:(Wfs_channel.Error_free.create ()) |] in
  let calls = ref 0 in
  let cfg =
    Core.Simulator.config ~observer:(fun _slot _m -> incr calls) ~horizon:123 setups
  in
  ignore (Core.Simulator.run cfg (wrr_sched (Core.Presets.flows_of setups)));
  check_int "one call per slot" 123 !calls

let test_trace_records_lifecycle () =
  let trace = Wfs_sim.Tracelog.create () in
  let source = Wfs_traffic.Trace_source.of_slots [ 0; 1 ] in
  let setups = [| setup 0 ~source ~channel:(Wfs_channel.Error_free.create ()) |] in
  let cfg = Core.Simulator.config ~trace ~horizon:5 setups in
  ignore (Core.Simulator.run cfg (wrr_sched (Core.Presets.flows_of setups)));
  let count p = Wfs_sim.Tracelog.count trace p in
  check_int "2 arrivals" 2
    (count (fun e ->
         match e.Wfs_sim.Tracelog.event with
         | Wfs_sim.Tracelog.Arrival _ -> true
         | _ -> false));
  check_int "2 deliveries" 2
    (count (fun e ->
         match e.Wfs_sim.Tracelog.event with
         | Wfs_sim.Tracelog.Transmit_ok _ -> true
         | _ -> false));
  check_int "3 idle slots" 3
    (count (fun e -> e.Wfs_sim.Tracelog.event = Wfs_sim.Tracelog.Slot_idle))

let test_metrics_backlog_remaining () =
  (* Arrivals that neither got delivered nor dropped remain backlogged. *)
  let source = Wfs_traffic.Trace_source.create [ (0, 5) ] in
  let channel = Wfs_channel.Periodic_ch.bad_burst ~start:0 ~length:100 in
  let setups = [| setup 0 ~source ~channel |] in
  let cfg = Core.Simulator.config ~predictor:Wfs_channel.Predictor.Perfect ~horizon:10 setups in
  let m = Core.Simulator.run cfg (wrr_sched (Core.Presets.flows_of setups)) in
  check_int "all 5 still queued" 5 (Core.Metrics.backlog_remaining m ~flow:0)

let test_buffer_overflow_drops () =
  (* Buffer of 3: a burst of 10 packets into a blocked channel keeps 3 and
     drops 7 at the door. *)
  let source = Wfs_traffic.Trace_source.create [ (0, 10) ] in
  let channel = Wfs_channel.Periodic_ch.bad_burst ~start:0 ~length:100 in
  let setups =
    [|
      {
        Core.Simulator.flow =
          Core.Params.flow ~id:0 ~weight:1. ~buffer:3 ();
        source;
        channel;
      };
    |]
  in
  let cfg =
    Core.Simulator.config ~predictor:Wfs_channel.Predictor.Perfect ~horizon:5
      setups
  in
  let m = Core.Simulator.run cfg (wrr_sched (Core.Presets.flows_of setups)) in
  check_int "7 dropped at the buffer" 7 (Core.Metrics.dropped m ~flow:0);
  check_int "3 still queued" 3 (Core.Metrics.backlog_remaining m ~flow:0)

let test_scenario_buffer_attribute () =
  let s =
    Core.Scenario.parse "flow buffer=5 source=cbr:2 channel=good\n"
  in
  let flows = Core.Scenario.flows s in
  check_bool "buffer parsed" true (flows.(0).Core.Params.buffer = Some 5)

let test_config_validation () =
  let setups = [| setup 0 ~source:(cbr 2.) ~channel:(Wfs_channel.Error_free.create ()) |] in
  Alcotest.check_raises "negative horizon"
    (Invalid_argument "Simulator.config: negative horizon") (fun () ->
      ignore (Core.Simulator.config ~horizon:(-1) setups));
  Alcotest.check_raises "no flows"
    (Invalid_argument "Simulator.config: no flows") (fun () ->
      ignore (Core.Simulator.config ~horizon:1 [||]))

let test_metrics_drop_share () =
  (* drop_share is per settled packet, loss per arrival: a saturated flow
     with 10 arrivals, 2 delivered, 1 dropped has loss 0.1 but drop share
     1/3. *)
  let m = Core.Metrics.create ~n_flows:1 () in
  for _ = 1 to 10 do
    Core.Metrics.on_arrival m ~flow:0
  done;
  Core.Metrics.on_deliver m ~flow:0 ~delay:1;
  Core.Metrics.on_deliver m ~flow:0 ~delay:2;
  Core.Metrics.on_drop m ~flow:0;
  Alcotest.(check (float 1e-9)) "loss" 0.1 (Core.Metrics.loss m ~flow:0);
  Alcotest.(check (float 1e-9)) "drop share" (1. /. 3.)
    (Core.Metrics.drop_share m ~flow:0);
  check_int "backlog" 7 (Core.Metrics.backlog_remaining m ~flow:0)

let test_metrics_percentile_requires_histograms () =
  let m = Core.Metrics.create ~n_flows:1 () in
  (* Missing histograms is a configuration mistake and goes through the
     typed taxonomy; an empty histogram is an empty measurement → nan. *)
  (match Core.Metrics.delay_percentile m ~flow:0 ~p:50. with
  | _ -> Alcotest.fail "expected Bad_config"
  | exception Wfs_util.Error.Error e ->
      Alcotest.(check string)
        "kind" "bad-config"
        (Wfs_util.Error.kind_to_string e.Wfs_util.Error.kind));
  let mh = Core.Metrics.create ~histograms:true ~n_flows:1 () in
  Alcotest.(check bool)
    "empty histogram is nan" true
    (Float.is_nan (Core.Metrics.delay_percentile mh ~flow:0 ~p:50.))

let test_scheduler_misuse_raises () =
  (* complete/drop_head on an empty queue is a contract violation and must
     fail loudly in both schedulers. *)
  let flows = [| Core.Params.flow ~id:0 ~weight:1. () |] in
  let wps = Core.Wps.instance (Core.Wps.create flows) in
  Alcotest.check_raises "wps complete empty"
    (Invalid_argument "Wps.complete: empty queue") (fun () ->
      wps.complete ~flow:0);
  let iwfq = Core.Iwfq.instance (Core.Iwfq.create flows) in
  Alcotest.check_raises "iwfq complete empty"
    (Invalid_argument "Iwfq.complete: empty queue") (fun () ->
      iwfq.complete ~flow:0)

let test_presets_flow_shapes () =
  check_int "example1 has 2 flows" 2 (Array.length (Core.Presets.example1 ~seed:1 ()));
  check_int "example3 has 3 flows" 3 (Array.length (Core.Presets.example3 ~seed:1 ()));
  check_int "example4 has 5 flows" 5 (Array.length (Core.Presets.example4 ~seed:1 ()));
  check_int "example6 has 5 flows" 5 (Array.length (Core.Presets.example6 ~seed:1 ()));
  check_int "nine table-1 rows" 9 (List.length Core.Presets.table1_algorithms);
  check_int "registry mirrors table 1" 9 (List.length (Core.Registry.table1 ()));
  check_int "registry extended grid" 11
    (List.length (Core.Registry.table1_extended ()))

let test_presets_common_random_numbers () =
  (* Two constructions from the same seed produce identical arrivals. *)
  let totals setups =
    Array.map
      (fun s ->
        let sum = ref 0 in
        for slot = 0 to 999 do
          sum := !sum + Wfs_traffic.Arrival.arrivals s.Core.Simulator.source ~slot
        done;
        !sum)
      setups
  in
  check_bool "same seed, same arrivals" true
    (totals (Core.Presets.example4 ~seed:9 ()) = totals (Core.Presets.example4 ~seed:9 ()))

let test_algorithm_names () =
  Alcotest.(check string) "blind" "Blind WRR"
    (Core.Presets.algorithm_name Core.Presets.Blind_wrr Core.Presets.Predicted);
  Alcotest.(check string) "swapa-p" "SwapA-P"
    (Core.Presets.algorithm_name Core.Presets.Swapa Core.Presets.Predicted);
  Alcotest.(check string) "iwfq-i" "IWFQ-I"
    (Core.Presets.algorithm_name Core.Presets.Iwfq_alg Core.Presets.Ideal)

let suite =
  [
    ("single flow error-free", `Quick, test_single_flow_error_free);
    ("failed attempts and retx drop", `Quick, test_failed_attempts_and_retx_drop);
    ("delay-bound drop", `Quick, test_delay_bound_drop);
    ("retx-or-delay policy", `Quick, test_retx_or_delay_policy);
    ("deterministic given seed", `Quick, test_deterministic_given_seed);
    ("seed changes sample path", `Quick, test_seed_changes_sample_path);
    ("channel replay", `Quick, test_run_with_channels_replay);
    ("observer per slot", `Quick, test_observer_called_every_slot);
    ("trace lifecycle", `Quick, test_trace_records_lifecycle);
    ("backlog remaining", `Quick, test_metrics_backlog_remaining);
    ("buffer overflow drops", `Quick, test_buffer_overflow_drops);
    ("scenario buffer attribute", `Quick, test_scenario_buffer_attribute);
    ("config validation", `Quick, test_config_validation);
    ("metrics drop share", `Quick, test_metrics_drop_share);
    ("metrics percentile guard", `Quick, test_metrics_percentile_requires_histograms);
    ("scheduler misuse raises", `Quick, test_scheduler_misuse_raises);
    ("preset shapes", `Quick, test_presets_flow_shapes);
    ("preset common random numbers", `Quick, test_presets_common_random_numbers);
    ("algorithm names", `Quick, test_algorithm_names);
  ]
