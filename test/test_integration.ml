(* End-to-end integration tests: the paper's qualitative claims hold on
   moderate-horizon runs of the full pipeline (presets -> simulator ->
   metrics).  These mirror the conclusions drawn from Tables 1-11 without
   pinning exact numbers. *)

module Core = Wfs_core
module P = Core.Presets

let check_bool = Alcotest.(check bool)

let horizon = 60_000
let seed = 2024

(* Schedulers are resolved by registry name: the entry carries both the
   constructor and the channel knowledge ("-I"/"-P") of the variant. *)
let run ?(horizon = horizon) ?limits ~setups name =
  let entry = Core.Registry.get name in
  let flows = P.flows_of setups in
  let sched = entry.Core.Registry.make ?limits flows in
  let cfg =
    Core.Simulator.config ~predictor:entry.Core.Registry.predictor ~horizon
      setups
  in
  Core.Simulator.run cfg sched

let example1_metrics ?sum name = run ~setups:(P.example1 ?sum ~seed ()) name

let test_blind_lossy_others_lossless () =
  let blind = example1_metrics "Blind WRR" in
  check_bool "blind has real loss" true (Core.Metrics.loss blind ~flow:0 > 0.05);
  List.iter
    (fun name ->
      let m = example1_metrics name in
      check_bool "ideal-information variants lossless" true
        (Core.Metrics.loss m ~flow:0 < 1e-9))
    [ "WRR-I"; "NoSwap-I"; "SwapW-I"; "SwapA-I" ]

let test_credits_reduce_flow1_delay () =
  (* Table 1 ordering: compensating variants beat plain WRR for the
     errored flow. *)
  let d name = Core.Metrics.mean_delay (example1_metrics name) ~flow:0 in
  let wrr = d "WRR-I" in
  let noswap = d "NoSwap-I" in
  let swapa = d "SwapA-I" in
  check_bool "noswap < wrr" true (noswap < wrr);
  check_bool "swapa < wrr" true (swapa < wrr);
  check_bool "swapa <= noswap (debits help)" true (swapa <= noswap +. 0.2)

let test_compensation_costs_flow2_little () =
  (* The error-free flow pays only slightly (paper: d2 rises ~0 -> ~2). *)
  let d2 name = Core.Metrics.mean_delay (example1_metrics name) ~flow:1 in
  check_bool "flow2 cost bounded" true (d2 "SwapA-I" -. d2 "WRR-I" < 3.)

let test_prediction_worse_than_oracle () =
  let d name = Core.Metrics.mean_delay (example1_metrics name) ~flow:0 in
  check_bool "one-step within 2x of oracle on bursty channel" true
    (d "SwapA-P" < 2. *. d "SwapA-I");
  check_bool "oracle at least as good" true (d "SwapA-I" <= d "SwapA-P")

let test_bernoulli_breaks_prediction () =
  (* Table 3: with pg+pe = 1 the -P variants suffer loss; the -I variants
     do not. *)
  let p = example1_metrics ~sum:1.0 "SwapA-P" in
  let i = example1_metrics ~sum:1.0 "SwapA-I" in
  check_bool "P variant drops packets" true (Core.Metrics.loss p ~flow:0 > 0.01);
  check_bool "I variant lossless" true (Core.Metrics.loss i ~flow:0 < 1e-9)

let test_burstier_channel_hurts_more () =
  let d sum = Core.Metrics.mean_delay (example1_metrics ~sum "SwapA-P") ~flow:0 in
  check_bool "bursty worse than memoryless for delay" true (d 0.1 > d 1.0)

let test_example3_swapa_trades_delay () =
  (* Table 6: SwapA-P cuts the severely errored source's delay vs WRR-P at
     slight cost to the others. *)
  let setups () = P.example3 ~seed () in
  let wrr = run ~setups:(setups ()) "WRR-P" in
  let swapa = run ~setups:(setups ()) "SwapA-P" in
  check_bool "source 1 improves" true
    (Core.Metrics.mean_delay swapa ~flow:0 < Core.Metrics.mean_delay wrr ~flow:0);
  check_bool "source 2 not wrecked" true
    (Core.Metrics.mean_delay swapa ~flow:1
    < Core.Metrics.mean_delay wrr ~flow:1 +. 3.)

let test_example4_swapa_beats_wrr_for_mmpp () =
  (* Table 8: the MMPP sources' delays improve under SwapA-P vs WRR-P,
     most dramatically for source 5 (worst channel). *)
  let setups () = P.example4 ~seed () in
  let wrr = run ~setups:(setups ()) "WRR-P" in
  let swapa = run ~setups:(setups ()) "SwapA-P" in
  check_bool "source 5 improves substantially" true
    (Core.Metrics.mean_delay swapa ~flow:4
    < 0.9 *. Core.Metrics.mean_delay wrr ~flow:4);
  check_bool "source 3 improves" true
    (Core.Metrics.mean_delay swapa ~flow:2
    <= Core.Metrics.mean_delay wrr ~flow:2 +. 0.5)

let test_example5_stable_system_equalizes () =
  (* Table 9: in a stable system WRR-P and SwapA-P are nearly identical. *)
  let setups () = P.example5 ~seed () in
  let wrr = run ~setups:(setups ()) "WRR-P" in
  let swapa = run ~setups:(setups ()) "SwapA-P" in
  for flow = 0 to 4 do
    let a = Core.Metrics.mean_delay wrr ~flow
    and b = Core.Metrics.mean_delay swapa ~flow in
    check_bool
      (Printf.sprintf "flow %d within 30%% + 1 slot" flow)
      true
      (abs_float (a -. b) <= 1. +. (0.3 *. Float.max a b))
  done

let test_example6_credit_sweep () =
  (* Table 11: SwapA-P with credits dramatically improves the bad-channel
     source's loss vs WRR-P, controllably via (D, C). *)
  let loss_f4 m = Core.Metrics.loss m ~flow:4 in
  let setups () = P.example6 ~seed () in
  let wrr = run ~setups:(setups ()) "WRR-P" in
  let swapa_full =
    run ~limits:(P.example6_limits ~d:4 ~c:4) ~setups:(setups ()) "SwapA-P"
  in
  check_bool "swapa improves worst flow's loss" true
    (loss_f4 swapa_full < loss_f4 wrr +. 0.01)

let test_iwfq_close_to_swapa_average_case () =
  (* Section 8's closing observation: WPS approximates IWFQ's average-case
     behaviour. *)
  let swapa = example1_metrics "SwapA-I" in
  let iwfq = example1_metrics "IWFQ-I" in
  let d m = Core.Metrics.mean_delay m ~flow:0 in
  check_bool "same order of magnitude" true
    (d iwfq < 2.5 *. d swapa && d swapa < 6. *. d iwfq)

let test_throughputs_match_offered_load () =
  (* In the stable Example 1, every algorithm delivers the offered load. *)
  List.iter
    (fun name ->
      let m = example1_metrics name in
      let thpt f = Core.Metrics.throughput m ~flow:f ~slots:horizon in
      check_bool "flow1 near 0.2" true (abs_float (thpt 0 -. 0.2) < 0.05);
      check_bool "flow2 near 0.5" true (abs_float (thpt 1 -. 0.5) < 0.01))
    [ "WRR-I"; "SwapA-P"; "IWFQ-P" ]

let test_mac_cell_end_to_end () =
  (* A small mixed cell through the MAC: uplink flows with error channels
     still deliver the bulk of their traffic. *)
  let rng = Wfs_util.Rng.create 99 in
  let up i = { Wfs_mac.Frame.host = i; direction = Wfs_mac.Frame.Uplink; index = 0 } in
  let down i = { Wfs_mac.Frame.host = i; direction = Wfs_mac.Frame.Downlink; index = 0 } in
  let ge seed = Wfs_channel.Gilbert_elliott.create ~rng:(Wfs_util.Rng.create seed) ~pg:0.09 ~pe:0.01 () in
  let flows =
    [|
      {
        Wfs_mac.Mac_sim.addr = up 1;
        weight = 1.;
        source = Wfs_traffic.Cbr.create ~interarrival:5. ();
        channel = ge 1;
        drop = Core.Params.Retx_limit 4;
      };
      {
        Wfs_mac.Mac_sim.addr = up 2;
        weight = 1.;
        source = Wfs_traffic.Poisson.create ~rng:(Wfs_util.Rng.create 2) ~rate:0.15;
        channel = ge 3;
        drop = Core.Params.Retx_limit 4;
      };
      {
        Wfs_mac.Mac_sim.addr = down 3;
        weight = 2.;
        source = Wfs_traffic.Cbr.create ~interarrival:3. ();
        channel = ge 5;
        drop = Core.Params.No_drop;
      };
    |]
  in
  let cfg = Wfs_mac.Mac_sim.config ~rng ~horizon:20_000 flows in
  let r = Wfs_mac.Mac_sim.run cfg in
  let m = r.Wfs_mac.Mac_sim.metrics in
  for flow = 0 to 2 do
    let arr = Core.Metrics.arrivals m ~flow in
    let del = Core.Metrics.delivered m ~flow in
    check_bool
      (Printf.sprintf "flow %d delivers > 90%%" flow)
      true
      (float_of_int del > 0.9 *. float_of_int arr)
  done

let test_iwfq_error_free_matches_wireline_wfq () =
  (* Cross-validation of the two stacks: with every channel good, slotted
     IWFQ implements WFQ — its cumulative per-flow service should track the
     continuous-time wireline WFQ on the same arrivals within a couple of
     packets at every instant. *)
  let n = 3 in
  let horizon = 2_000 in
  let weights = [| 1.; 2.; 0.5 |] in
  (* A fixed random arrival pattern, integral slots. *)
  let rng = Wfs_util.Rng.create 77 in
  let arrivals =
    List.concat
      (List.init horizon (fun slot ->
           List.filter_map
             (fun flow ->
               if Wfs_util.Rng.bernoulli rng (0.25 *. weights.(flow)) then
                 Some (flow, slot)
               else None)
             [ 0; 1; 2 ]))
  in
  (* Wireline WFQ run. *)
  let wl_flows = Wfs_wireline.Flow.of_weights weights in
  let seqs = Array.make n 0 in
  let jobs =
    List.map
      (fun (flow, slot) ->
        let seq = seqs.(flow) in
        seqs.(flow) <- seq + 1;
        Wfs_wireline.Job.make ~flow ~seq ~arrival:(float_of_int slot) ~size:1.)
      arrivals
  in
  let completions =
    Wfs_wireline.Server.run ~capacity:1.
      (Wfs_wireline.Wfq.instance ~capacity:1. wl_flows)
      jobs
  in
  (* Cumulative wireline service per flow per slot boundary. *)
  let wl_service = Array.make_matrix n (horizon + 1) 0 in
  List.iter
    (fun c ->
      let f = c.Wfs_wireline.Server.job.Wfs_wireline.Job.flow in
      let t = int_of_float (ceil (c.Wfs_wireline.Server.finish -. 1e-9)) in
      if t <= horizon then wl_service.(f).(t) <- wl_service.(f).(t) + 1)
    completions;
  for f = 0 to n - 1 do
    for t = 1 to horizon do
      wl_service.(f).(t) <- wl_service.(f).(t) + wl_service.(f).(t - 1)
    done
  done;
  (* Slotted IWFQ run with the same arrivals. *)
  let flows = Array.mapi (fun id w -> Core.Params.flow ~id ~weight:w ()) weights in
  let sched = Core.Iwfq.instance (Core.Iwfq.create flows) in
  let by_slot = Hashtbl.create 256 in
  List.iter
    (fun (flow, slot) ->
      Hashtbl.replace by_slot slot
        ((flow, slot) :: Option.value ~default:[] (Hashtbl.find_opt by_slot slot)))
    arrivals;
  let iwfq_service = Array.make_matrix n (horizon + 1) 0 in
  let seqs = Array.make n 0 in
  for slot = 0 to horizon - 1 do
    List.iter
      (fun (flow, s) ->
        sched.enqueue ~slot
          (Wfs_traffic.Packet.make ~flow ~seq:seqs.(flow) ~arrival:s ());
        seqs.(flow) <- seqs.(flow) + 1)
      (List.rev (Option.value ~default:[] (Hashtbl.find_opt by_slot slot)));
    (match sched.select ~slot ~predicted_good:(fun _ -> true) with
    | Some f ->
        sched.complete ~flow:f;
        iwfq_service.(f).(slot + 1) <- 1
    | None -> ());
    sched.on_slot_end ~slot
  done;
  for f = 0 to n - 1 do
    for t = 1 to horizon do
      iwfq_service.(f).(t) <- iwfq_service.(f).(t) + iwfq_service.(f).(t - 1)
    done
  done;
  (* Compare cumulative services: within 3 packets at all times (tag ties
     break differently and the wireline server is not slot-aligned). *)
  for f = 0 to n - 1 do
    for t = 0 to horizon do
      let diff = abs (iwfq_service.(f).(t) - wl_service.(f).(t)) in
      if diff > 3 then
        Alcotest.failf "flow %d at slot %d: IWFQ %d vs WFQ %d" f t
          iwfq_service.(f).(t) wl_service.(f).(t)
    done
  done

let test_metrics_histograms () =
  let setups = P.example1 ~seed ~sum:0.1 () in
  let entry = Core.Registry.get "WPS" in
  let sched = entry.Core.Registry.make (P.flows_of setups) in
  let cfg =
    Core.Simulator.config ~predictor:entry.Core.Registry.predictor
      ~histograms:true ~horizon:20_000 setups
  in
  let m = Core.Simulator.run cfg sched in
  let p50 = Core.Metrics.delay_percentile m ~flow:0 ~p:50. in
  let p99 = Core.Metrics.delay_percentile m ~flow:0 ~p:99. in
  check_bool "percentiles ordered" true (p50 <= p99);
  check_bool "p99 within max" true (p99 <= Core.Metrics.max_delay m ~flow:0 +. 1.);
  check_bool "median below mean for heavy tail" true
    (p50 <= Core.Metrics.mean_delay m ~flow:0 +. 1.)

let suite =
  [
    ("blind lossy, others lossless", `Slow, test_blind_lossy_others_lossless);
    ("IWFQ error-free = wireline WFQ", `Slow, test_iwfq_error_free_matches_wireline_wfq);
    ("metrics histograms", `Slow, test_metrics_histograms);
    ("credits reduce errored-flow delay", `Slow, test_credits_reduce_flow1_delay);
    ("compensation cheap for clean flow", `Slow, test_compensation_costs_flow2_little);
    ("prediction near oracle when bursty", `Slow, test_prediction_worse_than_oracle);
    ("Bernoulli breaks prediction", `Slow, test_bernoulli_breaks_prediction);
    ("burstier hurts more", `Slow, test_burstier_channel_hurts_more);
    ("example 3 trade-off", `Slow, test_example3_swapa_trades_delay);
    ("example 4 SwapA wins", `Slow, test_example4_swapa_beats_wrr_for_mmpp);
    ("example 5 stability equalises", `Slow, test_example5_stable_system_equalizes);
    ("example 6 credit sweep", `Slow, test_example6_credit_sweep);
    ("IWFQ ~ SwapA average case", `Slow, test_iwfq_close_to_swapa_average_case);
    ("throughput = offered load", `Slow, test_throughputs_match_offered_load);
    ("MAC cell end-to-end", `Slow, test_mac_cell_end_to_end);
  ]
