let () =
  Alcotest.run "wfs"
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("traffic", Test_traffic.suite);
      ("channel", Test_channel.suite);
      ("predictor", Test_predictor.suite);
      ("wireline", Test_wireline.suite);
      ("iwfq", Test_iwfq.suite);
      ("wps", Test_wps.suite);
      ("simulator", Test_simulator.suite);
      ("mac", Test_mac.suite);
      ("bounds", Test_bounds.suite);
      ("extensions", Test_extensions.suite);
      ("scenario", Test_scenario.suite);
      ("runner", Test_runner.suite);
      ("guard", Test_guard.suite);
      ("topo", Test_topo.suite);
      ("perf_opt", Test_perf_opt.suite);
      ("integration", Test_integration.suite);
      ("obs", Test_obs.suite);
      ("xray", Test_xray.suite);
      ("analysis_kit", Test_analysis_kit.suite);
    ]
