(* Fault-injection suite for the wfs_guard robustness layer: crash
   isolation in the pool, typed spec errors, journal checkpoint/resume
   (including deliberate truncation and corruption), the deterministic
   slot-budget watchdog, and the runtime invariant monitors catching a
   scheduler that breaks the paper's own safety properties. *)

module Core = Wfs_core
module Error = Wfs_util.Error
module Json = Wfs_util.Json
module Spec = Wfs_runner.Spec
module Exec = Wfs_runner.Exec
module Pool = Wfs_runner.Pool
module Journal = Wfs_runner.Journal

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let with_temp_file ?(suffix = ".journal") f =
  let path = Filename.temp_file "wfs_guard" suffix in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* --- crash isolation --- *)

exception Sabotage of int

let test_crash_loses_only_that_job () =
  (* One worker raises; every other item must still produce its result, and
     the crashed item must carry a typed Sim_fault, not abort the sweep. *)
  let f i = if i = 5 then raise (Sabotage i) else Ok (i * i) in
  List.iter
    (fun jobs ->
      let outcomes = Pool.map_outcomes ~jobs f (Array.init 12 (fun i -> i)) in
      Array.iteri
        (fun i out ->
          match out with
          | Ok v when i <> 5 -> check_int "surviving job result" (i * i) v
          | Error e when i = 5 ->
              check_bool "crash classified as sim-fault" true
                (e.Error.kind = Error.Sim_fault)
          | Ok _ -> Alcotest.failf "job %d should have failed" i
          | Error e ->
              Alcotest.failf "job %d unexpectedly failed: %s" i
                (Error.to_string e))
        outcomes)
    [ 1; 4 ]

let test_typed_errors_pass_through () =
  let err = Error.v Error.Bad_config ~who:"test" "synthetic" in
  let f i = if i = 1 then Error err else Ok i in
  let outcomes = Pool.map_outcomes ~jobs:2 f [| 0; 1; 2 |] in
  match outcomes.(1) with
  | Error e ->
      check_bool "returned error untouched" true (e.Error.kind = Error.Bad_config);
      check_str "who preserved" "test" e.Error.who
  | Ok _ -> Alcotest.fail "Error outcome must pass through"

let test_retries_rerun_failed_jobs () =
  (* First attempt of item 3 fails, second succeeds: with one retry the
     sweep recovers; without retries the failure is accepted and stamped
     with the attempt count. *)
  let attempts = Atomic.make 0 in
  let flaky i =
    if i = 3 && Atomic.fetch_and_add attempts 1 = 0 then failwith "transient"
    else Ok i
  in
  let recovered =
    Pool.map_outcomes ~jobs:1 ~retries:1 flaky (Array.init 5 (fun i -> i))
  in
  check_bool "retry recovered the job" true (recovered.(3) = Ok 3);
  let permanent i = if i = 0 then failwith "always" else Ok i in
  let out = Pool.map_outcomes ~jobs:1 ~retries:2 permanent [| 0; 1 |] in
  (match out.(0) with
  | Error e ->
      check_str "attempts recorded" "3" (List.assoc "attempts" e.Error.context)
  | Ok _ -> Alcotest.fail "permanent failure must remain an error");
  match (Pool.map_outcomes ~jobs:1 permanent [| 0 |]).(0) with
  | Error e ->
      check_bool "no attempts context without retries" true
        (not (List.mem_assoc "attempts" e.Error.context))
  | Ok _ -> Alcotest.fail "permanent failure must remain an error"

let test_notify_fires_once_per_item () =
  let seen = Array.make 6 0 in
  let mutex = Mutex.create () in
  let notify i _out =
    Mutex.lock mutex;
    seen.(i) <- seen.(i) + 1;
    Mutex.unlock mutex
  in
  let f i = if i = 2 then failwith "boom" else Ok i in
  ignore (Pool.map_outcomes ~jobs:3 ~notify f (Array.init 6 (fun i -> i)));
  Array.iteri (fun i n -> check_int (Printf.sprintf "item %d notified" i) 1 n) seen

(* --- typed spec errors --- *)

let test_spec_parse_typed () =
  (match Spec.parse "example:1 | WPS | seed=1 | horizon=100" with
  | Ok sp -> check_int "parsed horizon" 100 sp.Spec.horizon
  | Error e -> Alcotest.failf "valid spec rejected: %s" (Error.to_string e));
  match Spec.parse "exa mple:9 ||| nonsense" with
  | Ok _ -> Alcotest.fail "malformed spec accepted"
  | Error e ->
      check_bool "malformed spec is bad-spec" true (e.Error.kind = Error.Bad_spec);
      check_str "spec echoed in context" "exa mple:9 ||| nonsense"
        (List.assoc "spec" e.Error.context)

let test_run_outcome_classifies () =
  let spec = Spec.make ~seed:5 ~horizon:500 ~sched:"SwapA-P" (Spec.example 1) in
  (* Healthy run: Ok, identical to the raising API. *)
  (match Exec.run_outcome spec with
  | Ok m ->
      check_bool "outcome metrics match Exec.run" true
        (Core.Metrics.to_json m = Core.Metrics.to_json (Exec.run spec))
  | Error e -> Alcotest.failf "healthy run failed: %s" (Error.to_string e));
  (* Deterministic watchdog: refused before running, typed Sim_fault. *)
  (match Exec.run_outcome ~max_slots:100 spec with
  | Ok _ -> Alcotest.fail "watchdog must refuse a 500-slot job capped at 100"
  | Error e ->
      check_bool "watchdog is sim-fault" true (e.Error.kind = Error.Sim_fault);
      check_str "cap recorded" "100" (List.assoc "max_slots" e.Error.context));
  (* Malformed scenario file: parse errors classify as Bad_spec. *)
  with_temp_file ~suffix:".scenario" (fun path ->
      let oc = open_out path in
      output_string oc "horizon 100\nflow nonsense=1\n";
      close_out oc;
      let bad = Spec.make ~sched:"SwapA-P" (Spec.file path) in
      match Exec.run_outcome bad with
      | Ok _ -> Alcotest.fail "malformed scenario accepted"
      | Error e ->
          check_bool "parse error is bad-spec" true
            (e.Error.kind = Error.Bad_spec))

(* --- journal checkpoint/resume --- *)

let params = [ ("horizon", Json.Int 1000); ("seed", Json.Int 7) ]

let test_journal_roundtrip () =
  with_temp_file (fun path ->
      let w = Journal.create ~path ~params () in
      Journal.append w ~key:"a" ~value:(Json.Int 1);
      Journal.append w ~key:"b" ~value:(Json.Str "two");
      Journal.close w;
      let w = Journal.reopen ~path in
      Journal.append w ~key:"c" ~value:(Json.Arr [ Json.Bool true ]);
      Journal.close w;
      match Journal.load ~path () with
      | Error e -> Alcotest.failf "load failed: %s" (Error.to_string e)
      | Ok { params = p; entries } ->
          check_bool "params survive" true (p = params);
          check_int "three entries" 3 (List.length entries);
          check_bool "entries in file order" true
            (List.map fst entries = [ "a"; "b"; "c" ]))

let test_journal_truncated_tail_dropped () =
  with_temp_file (fun path ->
      let w = Journal.create ~path ~params () in
      Journal.append w ~key:"a" ~value:(Json.Int 1);
      Journal.append w ~key:"b" ~value:(Json.Int 2);
      Journal.close w;
      (* Simulate a crash mid-append: an unterminated, unparsable last line. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"key\":\"c\",\"val";
      close_out oc;
      match Journal.load ~path () with
      | Error e -> Alcotest.failf "truncated tail must load: %s" (Error.to_string e)
      | Ok { entries; _ } ->
          check_bool "only the torn line is lost" true
            (List.map fst entries = [ "a"; "b" ]))

let test_journal_mid_file_corruption_rejected () =
  with_temp_file (fun path ->
      let w = Journal.create ~path ~params () in
      Journal.append w ~key:"a" ~value:(Json.Int 1);
      Journal.close w;
      (* Corruption before the final line is not an interrupted append —
         refusing beats resurrecting stale results. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "garbage line\n{\"key\":\"b\",\"value\":2}\n";
      close_out oc;
      match Journal.load ~path () with
      | Ok _ -> Alcotest.fail "mid-file corruption accepted"
      | Error e ->
          check_bool "corruption is bad-spec" true (e.Error.kind = Error.Bad_spec))

let guard_specs () =
  List.map
    (fun sched -> Spec.make ~seed:11 ~horizon:2_000 ~sched (Spec.example 1))
    [ "WRR-P"; "SwapA-P"; "IWFQ-P"; "CIF-Q-P" ]

let render_results specs results =
  (* Stand-in for the bench's table cells: the serialized metrics, which
     byte-identical resumption must reproduce exactly. *)
  List.map2
    (fun sp m ->
      Spec.to_string sp ^ " => " ^ Json.to_string ~pretty:false (Core.Metrics.to_json m))
    specs results

let test_resume_is_byte_identical () =
  (* Uninterrupted sweep vs: run two jobs, journal them, "crash", then
     resume — replaying journaled results and running only the rest.  The
     rendered output must match byte for byte. *)
  let specs = guard_specs () in
  let run sp = Exec.run sp in
  let full = render_results specs (List.map run specs) in
  with_temp_file (fun path ->
      let w = Journal.create ~path ~params () in
      List.iteri
        (fun i sp ->
          if i < 2 then
            Journal.append w ~key:(Spec.to_string sp)
              ~value:(Core.Metrics.to_json (run sp)))
        specs;
      Journal.close w;
      (* resume *)
      match Journal.load ~path () with
      | Error e -> Alcotest.failf "resume load failed: %s" (Error.to_string e)
      | Ok { entries; _ } ->
          let cached = Hashtbl.create 8 in
          List.iter (fun (k, v) -> Hashtbl.replace cached k v) entries;
          check_int "two jobs resumed" 2 (Hashtbl.length cached);
          let resumed =
            List.map
              (fun sp ->
                match Hashtbl.find_opt cached (Spec.to_string sp) with
                | Some v -> Option.get (Core.Metrics.of_json v)
                | None -> run sp)
              specs
          in
          List.iter2 (check_str "resumed cell identical") full
            (render_results specs resumed))

(* --- invariant monitors --- *)

(* A hand-built scheduler instance whose probe reports whatever the test
   wants — the monitor must catch it lying about the paper's properties. *)
let fake_sched ?(queue_length = fun _ -> 0) probe =
  {
    Core.Wireless_sched.name = "Evil";
    enqueue = (fun ~slot:_ _ -> ());
    select = (fun ~slot:_ ~predicted_good:_ -> None);
    head = (fun _ -> None);
    complete = (fun ~flow:_ -> ());
    fail = (fun ~flow:_ -> ());
    drop_head = (fun ~flow:_ -> ());
    drop_expired = (fun ~flow:_ ~now:_ ~bound:_ -> []);
    queue_length;
    on_slot_end = (fun ~slot:_ -> ());
    probe;
    handoff = None;
    quiescent = None;
  }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let expect_violation ~substring f =
  match f () with
  | () -> Alcotest.failf "expected an invariant violation (%s)" substring
  | exception Error.Error e ->
      check_bool "kind is invariant-violation" true
        (e.Error.kind = Error.Invariant_violation);
      check_bool
        (Printf.sprintf "paper section recorded (%s)" substring)
        true
        (match List.assoc_opt "paper" e.Error.context with
        | Some s -> contains ~sub:substring s
        | None -> false)

let check_one ~sched ?(n_flows = 1) ?(selected = None) mon =
  Core.Invariant.check mon ~slot:0 ~sched ~n_flows
    ~predicted_good:(fun _ -> true)
    ~selected

let test_invariant_credit_bounds () =
  (* Poisoned credit: balance 9 against limits [−4, 4] — the Section 7
     bounded credit/debit accounting the WPS variants must respect. *)
  let probe =
    { Core.Wireless_sched.no_probe with credit = Some (fun _ -> (9, 4, 4)) }
  in
  expect_violation ~substring:"Section 7" (fun () ->
      check_one ~sched:(fake_sched probe) (Core.Invariant.create ()))

let test_invariant_virtual_time () =
  let vt = ref 5.0 in
  let probe =
    { Core.Wireless_sched.no_probe with virtual_time = Some (fun () -> !vt) }
  in
  let sched = fake_sched probe in
  let mon = Core.Invariant.create () in
  check_one ~sched mon;
  vt := 3.0;  (* regression *)
  expect_violation ~substring:"Section 4.1" (fun () -> check_one ~sched mon);
  let poisoned =
    { Core.Wireless_sched.no_probe with virtual_time = Some (fun () -> Float.nan) }
  in
  expect_violation ~substring:"Section 4.1" (fun () ->
      check_one ~sched:(fake_sched poisoned) (Core.Invariant.create ()))

let test_invariant_finish_tags () =
  let probe =
    { Core.Wireless_sched.no_probe with finish_tag = Some (fun _ -> Float.nan) }
  in
  expect_violation ~substring:"Section 4.1" (fun () ->
      check_one ~sched:(fake_sched probe) (Core.Invariant.create ()));
  (* infinity is fine for an idle flow but not for a backlogged one *)
  let inf = { Core.Wireless_sched.no_probe with finish_tag = Some (fun _ -> infinity) } in
  check_one ~sched:(fake_sched inf) (Core.Invariant.create ());
  expect_violation ~substring:"Section 4.1" (fun () ->
      check_one
        ~sched:(fake_sched ~queue_length:(fun _ -> 3) inf)
        (Core.Invariant.create ()))

let test_invariant_lag_sum () =
  let sum = ref 0 in
  let probe =
    { Core.Wireless_sched.no_probe with lag_sum = Some (fun () -> !sum) }
  in
  let sched = fake_sched probe in
  let mon = Core.Invariant.create () in
  check_one ~sched mon;
  sum := 1;  (* +1: a failed transmission returned the debit — legal *)
  check_one ~sched mon;
  sum := 4;  (* +3 in one slot: conservation broken *)
  expect_violation ~substring:"Section 5" (fun () -> check_one ~sched mon)

let test_invariant_work_conservation () =
  let probe = { Core.Wireless_sched.no_probe with work_conserving = true } in
  let idle_with_backlog = fake_sched ~queue_length:(fun _ -> 2) probe in
  expect_violation ~substring:"Sections 4-5" (fun () ->
      check_one ~sched:idle_with_backlog (Core.Invariant.create ()));
  (* Idling with nothing serviceable, or while transmitting, is fine. *)
  check_one ~sched:(fake_sched probe) (Core.Invariant.create ());
  check_one ~sched:idle_with_backlog ~selected:(Some 0) (Core.Invariant.create ())

let test_invariants_clean_on_real_schedulers () =
  (* The real schedulers must pass their own monitors, and metrics with
     checks on must be byte-identical to checks off. *)
  List.iter
    (fun sp ->
      let off = Core.Metrics.to_json (Exec.run sp) in
      let on = Core.Metrics.to_json (Exec.run ~invariants:true sp) in
      check_str
        (Printf.sprintf "%s identical under monitors" sp.Spec.sched)
        (Json.to_string ~pretty:false off)
        (Json.to_string ~pretty:false on))
    (guard_specs ())

let test_invariants_do_not_perturb_snoop () =
  (* The stateful Periodic_snoop predictor is the one place an extra
     prediction query could shift behavior; the monitor goes through
     Predictor.peek precisely so it cannot.  Checked and unchecked runs
     must stay byte-identical. *)
  let run invariants =
    let setups = Core.Presets.example1 ~sum:0.1 ~seed:17 () in
    let sched =
      Core.Presets.(scheduler Swapa (flows_of setups))
    in
    let cfg =
      Core.Simulator.config
        ~predictor:(Wfs_channel.Predictor.Periodic_snoop 4)
        ~invariants ~horizon:3_000 setups
    in
    Json.to_string ~pretty:false
      (Core.Metrics.to_json (Core.Simulator.run cfg sched))
  in
  check_str "Periodic_snoop identical under monitors" (run false) (run true)

(* --- chaos fault injection: taxonomy, classification, retry --- *)

module Chaos = Wfs_chaos.Chaos

let all_fault_kinds =
  [
    Chaos.Cell_crash { cell = 3 };
    Chaos.Cell_recover { cell = 3 };
    Chaos.Handoff_lost { flow = 7; src = 1; dst = 2 };
    Chaos.Handoff_corrupt { flow = 7; src = 1; dst = 2 };
    Chaos.Handoff_blocked { flow = 7; src = 1; dst = 2 };
    Chaos.Blackout { cell = 0; until = 450 };
    Chaos.Worker_fault { cell = 2; persistent = true };
    Chaos.Worker_fault { cell = 2; persistent = false };
  ]

let test_chaos_event_roundtrip () =
  (* Every fault kind survives the JSON round-trip the --fault-timeline
     artifact and the flight-recorder attachments depend on. *)
  List.iteri
    (fun i fault ->
      let ev = { Chaos.slot = 100 * (i + 1); fault } in
      match Chaos.event_of_json (Chaos.event_to_json ev) with
      | None ->
          Alcotest.failf "event %S did not parse back"
            (Chaos.fault_to_string fault)
      | Some ev' ->
          check_bool (Chaos.fault_to_string fault) true
            (Chaos.event_equal ev ev'))
    all_fault_kinds;
  check_bool "kinds are distinguishable" true
    (not
       (Chaos.event_equal
          { Chaos.slot = 1; fault = Chaos.Cell_crash { cell = 0 } }
          { Chaos.slot = 1; fault = Chaos.Cell_recover { cell = 0 } }))

let test_chaos_inject_semantics () =
  (* Transient: armed once, consumed by the raise — the retry of the same
     clean-state thunk runs clear. *)
  let eng =
    Chaos.create ~seed:7 ~cells:2 (Spec.faults ~exn:1.0 ~persist:0. ())
  in
  Chaos.arm_worker_faults eng ~slot:100;
  (match Chaos.inject eng ~cell:0 with
  | () -> Alcotest.fail "armed transient fault must raise"
  | exception Error.Error e ->
      check_bool "typed sim-fault" true (e.Error.kind = Error.Sim_fault);
      check_bool "classified as injected" true (Chaos.injected_fault e);
      check_bool "transient is retryable" true (Chaos.retryable e));
  Chaos.inject eng ~cell:0;
  (* Persistent: stays armed, fails every retry, not retryable. *)
  let eng =
    Chaos.create ~seed:7 ~cells:2 (Spec.faults ~exn:1.0 ~persist:1.0 ())
  in
  Chaos.arm_worker_faults eng ~slot:100;
  (match Chaos.inject eng ~cell:1 with
  | () -> Alcotest.fail "armed persistent fault must raise"
  | exception Error.Error e ->
      check_bool "persistent is injected" true (Chaos.injected_fault e);
      check_bool "persistent is not retryable" true (not (Chaos.retryable e)));
  (match Chaos.inject eng ~cell:1 with
  | () -> Alcotest.fail "persistent fault must stay armed"
  | exception Error.Error _ -> ());
  (* A real worker error is neither retried nor budget-accountable. *)
  let real = Error.v Error.Sim_fault ~who:"worker" "oops" in
  check_bool "real errors are not injected faults" true
    (not (Chaos.injected_fault real));
  check_bool "real errors are not retryable" true (not (Chaos.retryable real))

let test_chaos_pool_retry () =
  (* End to end through the pool: transient faults recover under
     retry_if; persistent ones come back as classified failures. *)
  let arm persist =
    let eng =
      Chaos.create ~seed:3 ~cells:4 (Spec.faults ~exn:1.0 ~persist ())
    in
    Chaos.arm_worker_faults eng ~slot:100;
    eng
  in
  let eng = arm 0. in
  let out =
    Pool.map_outcomes ~jobs:2 ~retries:1 ~retry_if:Chaos.retryable
      (fun c ->
        Chaos.inject eng ~cell:c;
        Ok c)
      [| 0; 1; 2; 3 |]
  in
  Array.iteri
    (fun i o ->
      check_bool (Printf.sprintf "cell %d recovered" i) true (o = Ok i))
    out;
  let eng = arm 1.0 in
  let out =
    Pool.map_outcomes ~jobs:2 ~retries:1 ~retry_if:Chaos.retryable
      (fun c ->
        Chaos.inject eng ~cell:c;
        Ok c)
      [| 0; 1; 2; 3 |]
  in
  Array.iter
    (function
      | Error e ->
          check_bool "persistent failure classified" true
            (Chaos.injected_fault e)
      | Ok _ -> Alcotest.fail "persistent fault must fail its retries")
    out

let test_chaos_verdicts () =
  (* Certain-rate plans force each transit outcome deterministically. *)
  let eng = Chaos.create ~seed:1 ~cells:3 (Spec.faults ~lose:1.0 ()) in
  check_bool "certain loss" true
    (Chaos.handoff_verdict eng ~slot:100 ~flow:0 ~src:0 ~dst:1 = Chaos.Lost);
  let eng = Chaos.create ~seed:1 ~cells:3 (Spec.faults ~corrupt:1.0 ()) in
  check_bool "certain corruption" true
    (Chaos.handoff_verdict eng ~slot:100 ~flow:0 ~src:0 ~dst:1 = Chaos.Corrupt);
  let eng = Chaos.create ~seed:1 ~cells:3 (Spec.faults ()) in
  check_bool "inert plan delivers" true
    (Chaos.handoff_verdict eng ~slot:100 ~flow:0 ~src:0 ~dst:1 = Chaos.Deliver);
  (* Crash every cell: handoffs block, no re-home target remains. *)
  let eng = Chaos.create ~seed:1 ~cells:2 (Spec.faults ~crash:1.0 ()) in
  check_bool "both cells crash" true
    (Chaos.draw_crashes eng ~slot:100 = [ 0; 1 ]);
  check_int "down count" 2 (Chaos.down_count eng);
  check_bool "down destination blocks" true
    (Chaos.handoff_verdict eng ~slot:100 ~flow:0 ~src:0 ~dst:1 = Chaos.Blocked);
  check_bool "no re-home target when all cells are down" true
    (Chaos.rehome_target eng = None);
  check_int "timeline recorded the faults" 3
    (List.length (Chaos.timeline eng))

let test_chaos_mangle_digest () =
  let open Wfs_core.Wireless_sched in
  List.iter
    (fun c ->
      check_bool "mangling changes the digest" true
        (Chaos.carry_digest (Chaos.mangle_carry c) <> Chaos.carry_digest c))
    [ carry_zero; { lag = 2.5; credit = -3 }; { lag = -7.25; credit = 4 } ]

(* --- parser fuzzing: typed errors, never an escaped exception --- *)

let fuzz_spec_never_raises =
  QCheck.Test.make ~count:500 ~name:"Spec.of_string never raises"
    QCheck.(string_of_size Gen.(0 -- 80))
    (fun s ->
      match Spec.of_string s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let fuzz_spec_parse_never_raises =
  QCheck.Test.make ~count:500 ~name:"Spec.parse never raises"
    QCheck.(string_of_size Gen.(0 -- 80))
    (fun s ->
      match Spec.parse s with Ok _ | Error _ -> true | exception _ -> false)

let fuzz_json_never_raises =
  QCheck.Test.make ~count:500 ~name:"Json.of_string never raises"
    QCheck.(string_of_size Gen.(0 -- 120))
    (fun s ->
      match Json.of_string s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let fuzz_json_mutated_documents =
  (* Start from a well-formed document and flip one byte: parsing must
     still return a result, never raise. *)
  QCheck.Test.make ~count:300 ~name:"Json.of_string survives mutation"
    QCheck.(pair (int_bound 200) (int_bound 255))
    (fun (pos, byte) ->
      let doc =
        Json.to_string ~pretty:false
          (Json.Obj
             [
               ("key", Json.Str "value");
               ("xs", Json.Arr [ Json.Int 1; Json.Float 2.5; Json.Null ]);
             ])
      in
      let b = Bytes.of_string doc in
      Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
      match Json.of_string (Bytes.to_string b) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let suite =
  [
    ("crash loses only that job", `Quick, test_crash_loses_only_that_job);
    ("typed errors pass through", `Quick, test_typed_errors_pass_through);
    ("retries rerun failed jobs", `Quick, test_retries_rerun_failed_jobs);
    ("notify fires once per item", `Quick, test_notify_fires_once_per_item);
    ("spec parse is typed", `Quick, test_spec_parse_typed);
    ("run_outcome classifies failures", `Quick, test_run_outcome_classifies);
    ("journal round-trip", `Quick, test_journal_roundtrip);
    ("journal truncated tail dropped", `Quick, test_journal_truncated_tail_dropped);
    ("journal mid-file corruption rejected", `Quick,
     test_journal_mid_file_corruption_rejected);
    ("resume is byte-identical", `Slow, test_resume_is_byte_identical);
    ("invariant: credit bounds", `Quick, test_invariant_credit_bounds);
    ("invariant: virtual time", `Quick, test_invariant_virtual_time);
    ("invariant: finish tags", `Quick, test_invariant_finish_tags);
    ("invariant: lag conservation", `Quick, test_invariant_lag_sum);
    ("invariant: work conservation", `Quick, test_invariant_work_conservation);
    ("invariants clean on real schedulers", `Slow,
     test_invariants_clean_on_real_schedulers);
    ("invariants do not perturb snooping", `Quick,
     test_invariants_do_not_perturb_snoop);
    ("chaos events round-trip through JSON", `Quick,
     test_chaos_event_roundtrip);
    ("chaos inject: transient vs persistent", `Quick,
     test_chaos_inject_semantics);
    ("chaos faults through the pool retry path", `Quick,
     test_chaos_pool_retry);
    ("chaos handoff verdicts", `Quick, test_chaos_verdicts);
    ("chaos carry mangling changes the digest", `Quick,
     test_chaos_mangle_digest);
    QCheck_alcotest.to_alcotest fuzz_spec_never_raises;
    QCheck_alcotest.to_alcotest fuzz_spec_parse_never_raises;
    QCheck_alcotest.to_alcotest fuzz_json_never_raises;
    QCheck_alcotest.to_alcotest fuzz_json_mutated_documents;
  ]
