(* Tests for the wireline substrate: GPS fluid reference, WFQ/WF2Q tag
   machinery and Lemma-1 bounds, SCFQ/STFQ/VC/WRR/DRR behaviour. *)

module Flow = Wfs_wireline.Flow
module Job = Wfs_wireline.Job
module Gps = Wfs_wireline.Gps
module Server = Wfs_wireline.Server
module Rng = Wfs_util.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let job ~flow ~seq ~arrival ?(size = 1.) () = Job.make ~flow ~seq ~arrival ~size

(* --- GPS --- *)

let test_gps_equal_split () =
  (* Two equal flows, both backlogged: each gets half the capacity. *)
  let g = Gps.create ~capacity:1. (Flow.equal_weights 2) in
  ignore (Gps.arrive g ~time:0. ~flow:0 ~size:4.);
  ignore (Gps.arrive g ~time:0. ~flow:1 ~size:4.);
  Gps.advance_to g 4.;
  check_float "flow0 half" 2. (Gps.service g ~flow:0);
  check_float "flow1 half" 2. (Gps.service g ~flow:1)

let test_gps_weighted_split () =
  let g = Gps.create ~capacity:1. (Flow.of_weights [| 3.; 1. |]) in
  ignore (Gps.arrive g ~time:0. ~flow:0 ~size:10.);
  ignore (Gps.arrive g ~time:0. ~flow:1 ~size:10.);
  Gps.advance_to g 4.;
  check_float "3:1 split, flow0" 3. (Gps.service g ~flow:0);
  check_float "3:1 split, flow1" 1. (Gps.service g ~flow:1)

let test_gps_reclaims_idle_capacity () =
  (* When one flow drains, the other takes the full rate. *)
  let g = Gps.create ~capacity:1. (Flow.equal_weights 2) in
  ignore (Gps.arrive g ~time:0. ~flow:0 ~size:1.);
  ignore (Gps.arrive g ~time:0. ~flow:1 ~size:5.);
  Gps.advance_to g 4.;
  check_float "flow0 done" 1. (Gps.service g ~flow:0);
  (* flow1: 1 unit while sharing (t in [0,2]) then 2 alone = 3. *)
  check_float "flow1 reclaims" 3. (Gps.service g ~flow:1)

let test_gps_departure_times () =
  let g = Gps.create ~capacity:1. (Flow.equal_weights 2) in
  ignore (Gps.arrive g ~time:0. ~flow:0 ~size:1.);
  ignore (Gps.arrive g ~time:0. ~flow:1 ~size:3.);
  Gps.advance_to g 10.;
  match Gps.departures g with
  | [ d0; d1 ] ->
      check_int "flow0 first" 0 d0.Gps.flow;
      check_float "flow0 departs at 2" 2. d0.Gps.time;
      check_float "flow1 departs at 4" 4. d1.Gps.time
  | ds -> Alcotest.failf "expected 2 departures, got %d" (List.length ds)

let test_gps_virtual_time_slope () =
  let g = Gps.create ~capacity:1. (Flow.equal_weights 2) in
  ignore (Gps.arrive g ~time:0. ~flow:0 ~size:10.);
  (* only flow0 backlogged: dv/dt = 1/r = 1 *)
  check_float "v after 1s" 1. (Gps.virtual_time g ~time:1.);
  ignore (Gps.arrive g ~time:1. ~flow:1 ~size:10.);
  (* both backlogged: dv/dt = 1/2 *)
  check_float "v after 3s" 2. (Gps.virtual_time g ~time:3.)

let test_gps_idle_virtual_time_constant () =
  let g = Gps.create ~capacity:1. (Flow.equal_weights 1) in
  ignore (Gps.arrive g ~time:0. ~flow:0 ~size:1.);
  let v1 = Gps.virtual_time g ~time:5. in
  let v2 = Gps.virtual_time g ~time:50. in
  check_float "constant when idle" v1 v2;
  check_bool "not backlogged" false (Gps.is_backlogged g ~flow:0)

let test_gps_tags_chain () =
  let g = Gps.create ~capacity:1. (Flow.equal_weights 1) in
  let s1, f1 = Gps.arrive g ~time:0. ~flow:0 ~size:1. in
  let s2, f2 = Gps.arrive g ~time:0. ~flow:0 ~size:1. in
  check_float "first start at v" 0. s1;
  check_float "first finish" 1. f1;
  check_float "second chains" f1 s2;
  check_float "second finish" 2. f2

let test_gps_backlog_tracking () =
  let g = Gps.create ~capacity:1. (Flow.equal_weights 2) in
  ignore (Gps.arrive g ~time:0. ~flow:0 ~size:2.);
  check_float "initial backlog" 2. (Gps.backlog g ~flow:0);
  Gps.advance_to g 1.;
  check_float "after 1s alone" 1. (Gps.backlog g ~flow:0);
  check_float "weights of backlogged" 1. (Gps.backlogged_weight g)

(* --- Server driver + schedulers --- *)

let run_sched instance jobs = Server.run ~capacity:1. instance jobs

let test_wfq_simple_order () =
  (* Flow 1 (weight 3) should get 3 of the first 4 services under
     continuous backlog. *)
  let flows = Flow.of_weights [| 1.; 3. |] in
  let jobs =
    List.concat_map
      (fun seq ->
        [
          job ~flow:0 ~seq ~arrival:0. ();
          job ~flow:1 ~seq ~arrival:0. ();
        ])
      [ 0; 1; 2; 3 ]
  in
  let completions = run_sched (Wfs_wireline.Wfq.instance ~capacity:1. flows) jobs in
  let first4 = List.filteri (fun i _ -> i < 4) completions in
  let flow1 =
    List.length (List.filter (fun c -> c.Server.job.Job.flow = 1) first4)
  in
  check_int "weighted share" 3 flow1

let test_wfq_work_conserving () =
  let flows = Flow.equal_weights 2 in
  let jobs = [ job ~flow:0 ~seq:0 ~arrival:0. (); job ~flow:1 ~seq:0 ~arrival:5. () ] in
  let completions = run_sched (Wfs_wireline.Wfq.instance ~capacity:1. flows) jobs in
  match completions with
  | [ c0; c1 ] ->
      check_float "no gap for first" 1. c0.Server.finish;
      check_float "second starts on arrival" 5. c1.Server.start
  | _ -> Alcotest.fail "expected 2 completions"

(* Random workload generator shared by the conformance properties.
   Sequence numbers are per flow, matching the GPS reference's internal
   numbering. *)
let random_jobs ~seed ~n_flows ~n_jobs =
  let rng = Rng.create seed in
  let t = ref 0. in
  let seqs = Array.make n_flows 0 in
  List.init n_jobs (fun _ ->
      t := !t +. Rng.exponential rng ~rate:0.8;
      let flow = Rng.int rng n_flows in
      let size = 0.5 +. Rng.float rng in
      let seq = seqs.(flow) in
      seqs.(flow) <- seq + 1;
      Job.make ~flow ~seq ~arrival:!t ~size)

(* Lemma 1 (Parekh–Gallager): every packet finishes under WFQ no later
   than its GPS fluid finish time plus Lmax/C. *)
let test_wfq_lemma1_bound () =
  let flows = Flow.of_weights [| 1.; 2.; 0.5 |] in
  let jobs = random_jobs ~seed:42 ~n_flows:3 ~n_jobs:400 in
  let wfq = Wfs_wireline.Wfq.create ~capacity:1. flows in
  let instance =
    Wfs_wireline.Sched_intf.make ~name:"WFQ"
      ~enqueue:(Wfs_wireline.Wfq.enqueue wfq)
      ~dequeue:(fun ~time -> Wfs_wireline.Wfq.dequeue wfq ~time)
      ~queued:(fun () -> Wfs_wireline.Wfq.queued wfq)
  in
  let completions = Server.run ~capacity:1. instance jobs in
  let gps = Wfs_wireline.Wfq.gps wfq in
  Gps.advance_to gps 1e9;
  let fluid = Hashtbl.create 512 in
  List.iter
    (fun d -> Hashtbl.replace fluid (d.Gps.flow, d.Gps.seq) d.Gps.time)
    (Gps.departures gps);
  let lmax =
    List.fold_left (fun acc (j : Job.t) -> Float.max acc j.size) 0. jobs
  in
  List.iter
    (fun c ->
      let key = (c.Server.job.Job.flow, c.Server.job.Job.seq) in
      match Hashtbl.find_opt fluid key with
      | Some fluid_finish ->
          check_bool "WFQ finish <= GPS finish + Lmax/C" true
            (c.Server.finish <= fluid_finish +. lmax +. 1e-6)
      | None -> Alcotest.fail "missing fluid departure")
    completions

(* WF2Q is also within one packet of GPS, and additionally never ahead of
   the fluid service by more than one packet (worst-case fairness). *)
let test_wf2q_lemma1_bound () =
  let flows = Flow.of_weights [| 1.; 2.; 0.5 |] in
  let jobs = random_jobs ~seed:43 ~n_flows:3 ~n_jobs:400 in
  let wf2q = Wfs_wireline.Wf2q.create ~capacity:1. flows in
  let instance =
    Wfs_wireline.Sched_intf.make ~name:"WF2Q"
      ~enqueue:(Wfs_wireline.Wf2q.enqueue wf2q)
      ~dequeue:(fun ~time -> Wfs_wireline.Wf2q.dequeue wf2q ~time)
      ~queued:(fun () -> Wfs_wireline.Wf2q.queued wf2q)
  in
  let completions = Server.run ~capacity:1. instance jobs in
  let gps = Wfs_wireline.Wf2q.gps wf2q in
  Gps.advance_to gps 1e9;
  let fluid = Hashtbl.create 512 in
  List.iter
    (fun d -> Hashtbl.replace fluid (d.Gps.flow, d.Gps.seq) d.Gps.time)
    (Gps.departures gps);
  let lmax =
    List.fold_left (fun acc (j : Job.t) -> Float.max acc j.size) 0. jobs
  in
  List.iter
    (fun c ->
      let key = (c.Server.job.Job.flow, c.Server.job.Job.seq) in
      let fluid_finish = Hashtbl.find fluid key in
      check_bool "WF2Q finish <= GPS + Lmax" true
        (c.Server.finish <= fluid_finish +. lmax +. 1e-6))
    completions;
  (* Worst-case fairness: per flow, WF2Q is never ahead of the fluid
     system by more than one packet — when its k-th packet finishes, GPS
     must already have finished the flow's (k-1)-th. *)
  let by_flow f xs = List.filter (fun (fl, _) -> fl = f) xs |> List.map snd in
  let wf2q_times =
    List.map (fun c -> (c.Server.job.Job.flow, c.Server.finish)) completions
  in
  let gps_times =
    List.map (fun (d : Gps.departure) -> (d.flow, d.time)) (Gps.departures gps)
  in
  List.iter
    (fun f ->
      let w = List.sort compare (by_flow f wf2q_times) in
      let g = List.sort compare (by_flow f gps_times) in
      List.iteri
        (fun k ck ->
          if k >= 1 then
            check_bool "not ahead of fluid by > 1 packet" true
              (ck >= List.nth g (k - 1) -. 1e-6))
        w)
    [ 0; 1; 2 ]

(* The registry enumerates the whole wireline family; adding a scheduler
   there picks it up in these comparative tests automatically. *)
let all_instances flows = Wfs_wireline.Registry.instances ~capacity:1. flows

let test_all_schedulers_complete_everything () =
  let flows = Flow.of_weights [| 1.; 2. |] in
  let jobs = random_jobs ~seed:44 ~n_flows:2 ~n_jobs:300 in
  List.iter
    (fun instance ->
      let completions = Server.run ~capacity:1. instance jobs in
      check_int
        (Printf.sprintf "%s completes all" instance.Wfs_wireline.Sched_intf.name)
        300 (List.length completions))
    (all_instances flows)

let test_all_schedulers_work_conserving () =
  (* Total busy time equals total work whenever there is backlog: the last
     completion of a continuously backlogged burst ends at total size. *)
  let flows = Flow.equal_weights 3 in
  let jobs =
    List.init 30 (fun i -> job ~flow:(i mod 3) ~seq:(i / 3) ~arrival:0. ())
  in
  List.iter
    (fun instance ->
      let completions = Server.run ~capacity:1. instance jobs in
      let last =
        List.fold_left (fun acc c -> Float.max acc c.Server.finish) 0. completions
      in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "%s busy until 30" instance.Wfs_wireline.Sched_intf.name)
        30. last)
    (all_instances flows)

let test_throughput_fair_shares () =
  (* Saturated flows with weights 1:2:1 split a long busy period 25/50/25. *)
  let flows = Flow.of_weights [| 1.; 2.; 1. |] in
  let jobs =
    List.concat
      (List.init 300 (fun seq ->
           List.init 3 (fun flow -> job ~flow ~seq ~arrival:0. ())))
  in
  List.iter
    (fun instance ->
      let completions = Server.run ~capacity:1. instance jobs in
      let served = Server.throughput_by_flow completions ~until:200. in
      let get f = List.assoc f served in
      let name = instance.Wfs_wireline.Sched_intf.name in
      check_bool (name ^ " flow1 double share") true
        (abs_float ((get 1 /. get 0) -. 2.) < 0.15);
      check_bool (name ^ " flows 0,2 equal") true
        (abs_float (get 0 -. get 2) < 6.))
    (all_instances flows)

let test_scfq_virtual_time_follows_service () =
  let flows = Flow.equal_weights 2 in
  let s = Wfs_wireline.Scfq.create ~capacity:1. flows in
  Wfs_wireline.Scfq.enqueue s (job ~flow:0 ~seq:0 ~arrival:0. ());
  Alcotest.(check (float 1e-9)) "v starts 0" 0. (Wfs_wireline.Scfq.virtual_time s);
  ignore (Wfs_wireline.Scfq.dequeue s ~time:0.);
  Alcotest.(check (float 1e-9)) "v = finish of served" 1.
    (Wfs_wireline.Scfq.virtual_time s)

let test_stfq_orders_by_start_tag () =
  let flows = Flow.of_weights [| 1.; 10. |] in
  let s = Wfs_wireline.Stfq.create ~capacity:1. flows in
  (* Both arrive at v=0: starts are 0 and 0; flow1's second packet starts at
     0.1 while flow0's second starts at 1.0. *)
  Wfs_wireline.Stfq.enqueue s (job ~flow:0 ~seq:0 ~arrival:0. ());
  Wfs_wireline.Stfq.enqueue s (job ~flow:0 ~seq:1 ~arrival:0. ());
  Wfs_wireline.Stfq.enqueue s (job ~flow:1 ~seq:0 ~arrival:0. ());
  Wfs_wireline.Stfq.enqueue s (job ~flow:1 ~seq:1 ~arrival:0. ());
  let order =
    List.init 4 (fun _ ->
        let j = Option.get (Wfs_wireline.Stfq.dequeue s ~time:0.) in
        j.Job.flow)
  in
  (* start tags: f0#0=0, f1#0=0 (tie->finish: f1 smaller), f1#1=0.1, f0#1=1 *)
  Alcotest.(check (list int)) "start-tag order" [ 1; 0; 1; 0 ] order

let test_virtual_clock_punishes_bursts () =
  (* A flow that was idle keeps its clock at real time; a flow that ran
     ahead accumulated clock and now loses. *)
  let flows = Flow.equal_weights 2 in
  let vc = Wfs_wireline.Virtual_clock.create ~capacity:1. flows in
  (* flow0 sends 5 packets back to back at t=0 (clock runs to 5). *)
  for seq = 0 to 4 do
    Wfs_wireline.Virtual_clock.enqueue vc (job ~flow:0 ~seq ~arrival:0. ())
  done;
  Alcotest.(check (float 1e-9)) "clock ahead" 5.
    (Wfs_wireline.Virtual_clock.clock vc ~flow:0);
  (* flow1 arrives at t=2 with clock max(2,0)+1=3 < flow0's pending 4,5. *)
  Wfs_wireline.Virtual_clock.enqueue vc (job ~flow:1 ~seq:0 ~arrival:2. ());
  ignore (Wfs_wireline.Virtual_clock.dequeue vc ~time:2.);
  ignore (Wfs_wireline.Virtual_clock.dequeue vc ~time:2.);
  ignore (Wfs_wireline.Virtual_clock.dequeue vc ~time:2.);
  let j4 = Option.get (Wfs_wireline.Virtual_clock.dequeue vc ~time:3.) in
  check_int "newcomer preempts backlogged clock" 1 j4.Job.flow

let test_wrr_round_structure () =
  let flows = Flow.of_weights [| 2.; 1. |] in
  let w = Wfs_wireline.Wrr.create ~capacity:1. flows in
  for seq = 0 to 5 do
    Wfs_wireline.Wrr.enqueue w (job ~flow:0 ~seq ~arrival:0. ());
    Wfs_wireline.Wrr.enqueue w (job ~flow:1 ~seq ~arrival:0. ())
  done;
  let order =
    List.init 6 (fun _ -> (Option.get (Wfs_wireline.Wrr.dequeue w ~time:0.)).Job.flow)
  in
  Alcotest.(check (list int)) "2:1 rounds" [ 0; 0; 1; 0; 0; 1 ] order

let test_wrr_skips_empty () =
  let flows = Flow.equal_weights 3 in
  let w = Wfs_wireline.Wrr.create ~capacity:1. flows in
  Wfs_wireline.Wrr.enqueue w (job ~flow:2 ~seq:0 ~arrival:0. ());
  let j = Option.get (Wfs_wireline.Wrr.dequeue w ~time:0.) in
  check_int "work conserving skip" 2 j.Job.flow;
  check_bool "then empty" true
    (Option.is_none (Wfs_wireline.Wrr.dequeue w ~time:0.))

let test_drr_variable_sizes () =
  (* DRR with quantum 1: a size-2.5 packet waits ~3 rounds while size-1
     packets of the other flow flow through. *)
  let flows = Flow.equal_weights 2 in
  let d = Wfs_wireline.Drr.create ~quantum:1. ~capacity:1. flows in
  Wfs_wireline.Drr.enqueue d (Job.make ~flow:0 ~seq:0 ~arrival:0. ~size:2.5);
  for seq = 0 to 3 do
    Wfs_wireline.Drr.enqueue d (job ~flow:1 ~seq ~arrival:0. ())
  done;
  let order =
    List.init 5 (fun _ -> (Option.get (Wfs_wireline.Drr.dequeue d ~time:0.)).Job.flow)
  in
  (* Flow 0 needs 3 quanta before its big packet goes out. *)
  check_int "big packet served exactly once" 1
    (List.length (List.filter (fun f -> f = 0) order));
  check_bool "big packet not first" true (List.hd order = 1)

let test_drr_byte_fairness () =
  (* Long-run byte shares equal despite different packet sizes. *)
  let flows = Flow.equal_weights 2 in
  let jobs =
    List.concat
      (List.init 200 (fun seq ->
           [
             Job.make ~flow:0 ~seq ~arrival:0. ~size:2.;
             Job.make ~flow:1 ~seq:(2 * seq) ~arrival:0. ~size:1.;
             Job.make ~flow:1 ~seq:((2 * seq) + 1) ~arrival:0. ~size:1.;
           ]))
  in
  let completions =
    Server.run ~capacity:1. (Wfs_wireline.Drr.instance ~capacity:1. flows) jobs
  in
  let served = Server.throughput_by_flow completions ~until:300. in
  check_bool "byte-equal shares" true
    (abs_float (List.assoc 0 served -. List.assoc 1 served) < 8.)

let test_wfq_isolates_well_behaved_flow () =
  (* The separation property the paper leans on: a flow that floods the
     queue cannot degrade a conforming CBR flow's delay under WFQ beyond
     its fair-share bound, unlike FIFO would. *)
  let flows = Flow.equal_weights 2 in
  let jobs =
    (* flow 0: conforming, one packet every 2s; flow 1: dumps 200 packets
       at t=0. *)
    List.init 100 (fun seq -> job ~flow:0 ~seq ~arrival:(2. *. float_of_int seq) ())
    @ List.init 200 (fun seq -> job ~flow:1 ~seq ~arrival:0. ())
  in
  let completions = run_sched (Wfs_wireline.Wfq.instance ~capacity:1. flows) jobs in
  List.iter
    (fun c ->
      if c.Server.job.Job.flow = 0 then
        check_bool "conforming flow delay bounded" true
          (c.Server.finish -. c.Server.job.Job.arrival <= 3. +. 1e-6))
    completions

let test_scfq_stfq_bounded_unfairness () =
  (* SCFQ and STFQ track WFQ's long-run shares even though their virtual
     times are self-clocked: saturated 1:2 flows split 1/3 : 2/3. *)
  let flows = Flow.of_weights [| 1.; 2. |] in
  let jobs =
    List.concat
      (List.init 300 (fun seq ->
           [ job ~flow:0 ~seq ~arrival:0. (); job ~flow:1 ~seq ~arrival:0. () ]))
  in
  List.iter
    (fun instance ->
      let completions = Server.run ~capacity:1. instance jobs in
      let served = Server.throughput_by_flow completions ~until:300. in
      let share = List.assoc 1 served /. (List.assoc 0 served +. List.assoc 1 served) in
      check_bool
        (instance.Wfs_wireline.Sched_intf.name ^ " 2/3 share")
        true
        (abs_float (share -. (2. /. 3.)) < 0.02))
    [
      Wfs_wireline.Scfq.instance ~capacity:1. flows;
      Wfs_wireline.Stfq.instance ~capacity:1. flows;
    ]

let test_delays_by_flow_helper () =
  let flows = Flow.equal_weights 1 in
  let jobs = [ job ~flow:0 ~seq:0 ~arrival:0. (); job ~flow:0 ~seq:1 ~arrival:0. () ] in
  let completions = run_sched (Wfs_wireline.Wfq.instance ~capacity:1. flows) jobs in
  match Server.delays_by_flow completions with
  | [ (0, [ d1; d2 ]) ] ->
      check_float "first delay" 1. d1;
      check_float "second delay" 2. d2
  | _ -> Alcotest.fail "unexpected shape"

let prop_gps_invariants =
  (* Randomised GPS sanity: service is non-negative and non-decreasing,
     backlog never goes negative, total service never exceeds capacity ×
     elapsed time, and every packet eventually departs. *)
  QCheck.Test.make ~name:"GPS invariants under random workloads" ~count:50
    QCheck.(pair (0 -- 1000000) (2 -- 5))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let weights = Array.init n (fun _ -> 0.25 +. Rng.float rng) in
      let gps = Gps.create ~capacity:1. (Flow.of_weights weights) in
      let t = ref 0. in
      let sent = ref 0 in
      let prev_service = Array.make n 0. in
      let ok = ref true in
      for _ = 1 to 100 do
        t := !t +. Rng.exponential rng ~rate:1.;
        let flow = Rng.int rng n in
        let size = 0.25 +. Rng.float rng in
        ignore (Gps.arrive gps ~time:!t ~flow ~size);
        incr sent;
        let total = ref 0. in
        for i = 0 to n - 1 do
          let s = Gps.service gps ~flow:i in
          if s < prev_service.(i) -. 1e-9 then ok := false;
          if Gps.backlog gps ~flow:i < -1e-9 then ok := false;
          prev_service.(i) <- s;
          total := !total +. s
        done;
        if !total > !t +. 1e-6 then ok := false
      done;
      Gps.advance_to gps (!t +. 1e6);
      !ok && List.length (Gps.departures gps) = !sent)

let suite =
  [
    ("gps equal split", `Quick, test_gps_equal_split);
    ("gps weighted split", `Quick, test_gps_weighted_split);
    ("gps reclaims idle capacity", `Quick, test_gps_reclaims_idle_capacity);
    ("gps departure times", `Quick, test_gps_departure_times);
    ("gps virtual time slope", `Quick, test_gps_virtual_time_slope);
    ("gps idle virtual time", `Quick, test_gps_idle_virtual_time_constant);
    ("gps tags chain", `Quick, test_gps_tags_chain);
    ("gps backlog tracking", `Quick, test_gps_backlog_tracking);
    QCheck_alcotest.to_alcotest prop_gps_invariants;
    ("wfq weighted order", `Quick, test_wfq_simple_order);
    ("wfq work conserving", `Quick, test_wfq_work_conserving);
    ("wfq Lemma 1 bound", `Quick, test_wfq_lemma1_bound);
    ("wf2q Lemma 1 bound", `Quick, test_wf2q_lemma1_bound);
    ("all schedulers complete", `Quick, test_all_schedulers_complete_everything);
    ("all schedulers work-conserving", `Quick, test_all_schedulers_work_conserving);
    ("fair throughput shares", `Quick, test_throughput_fair_shares);
    ("scfq virtual time", `Quick, test_scfq_virtual_time_follows_service);
    ("stfq start-tag order", `Quick, test_stfq_orders_by_start_tag);
    ("virtual clock punishes bursts", `Quick, test_virtual_clock_punishes_bursts);
    ("wrr round structure", `Quick, test_wrr_round_structure);
    ("wrr skips empty", `Quick, test_wrr_skips_empty);
    ("drr variable sizes", `Quick, test_drr_variable_sizes);
    ("drr byte fairness", `Quick, test_drr_byte_fairness);
    ("wfq isolates conforming flow", `Quick, test_wfq_isolates_well_behaved_flow);
    ("scfq/stfq long-run shares", `Quick, test_scfq_stfq_bounded_unfairness);
    ("delays_by_flow helper", `Quick, test_delays_by_flow_helper);
  ]
