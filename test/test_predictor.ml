(* Property tests for channel predictors: the perfect predictor tracks the
   realized Gilbert-Elliott state exactly, and one-step prediction accuracy
   on a two-state Markov channel converges to the theoretical stationary
   hit rate. *)

module Rng = Wfs_util.Rng
module Channel = Wfs_channel.Channel
module Ge = Wfs_channel.Gilbert_elliott
module Predictor = Wfs_channel.Predictor

(* pg = P(bad->good), pe = P(good->bad); stationary P(good) = pg/(pg+pe).
   A one-step predictor repeats the previous state, so its hit rate is
   P(X_t = X_(t-1)) = pi_g*(1-pe) + (1-pi_g)*(1-pg). *)
let one_step_theoretical ~pg ~pe =
  let pi_g = pg /. (pg +. pe) in
  (pi_g *. (1. -. pe)) +. ((1. -. pi_g) *. (1. -. pg))

(* Transition probabilities bounded away from 0 keep the mixing time well
   under the simulated horizon. *)
let arb_params =
  QCheck.triple
    QCheck.(0 -- 1_000_000)
    (QCheck.float_range 0.02 0.3)
    (QCheck.float_range 0.02 0.3)

let drive ~slots ~pg ~pe ~seed kind =
  let ch = Ge.create ~rng:(Rng.create seed) ~pg ~pe () in
  let p = Predictor.create kind in
  let hits = ref 0 in
  for slot = 0 to slots - 1 do
    let realized = Channel.advance ch ~slot in
    let predicted = Predictor.predict p ch ~slot in
    if predicted = realized then incr hits
  done;
  float_of_int !hits /. float_of_int slots

let prop_perfect_matches_realized =
  QCheck.Test.make ~count:25
    ~name:"perfect predictor always matches the realized GE state" arb_params
    (fun (seed, pg, pe) ->
      drive ~slots:2_000 ~pg ~pe ~seed Predictor.Perfect = 1.0)

let prop_one_step_converges =
  QCheck.Test.make ~count:10
    ~name:"one-step accuracy converges to the stationary hit rate" arb_params
    (fun (seed, pg, pe) ->
      let accuracy = drive ~slots:120_000 ~pg ~pe ~seed Predictor.One_step in
      abs_float (accuracy -. one_step_theoretical ~pg ~pe) < 0.01)

let prop_snoop1_equals_one_step =
  QCheck.Test.make ~count:10
    ~name:"snoop with period 1 behaves exactly like one-step" arb_params
    (fun (seed, pg, pe) ->
      let ch = Ge.create ~rng:(Rng.create seed) ~pg ~pe () in
      let one = Predictor.create Predictor.One_step in
      let snoop = Predictor.create (Predictor.Periodic_snoop 1) in
      let ok = ref true in
      for slot = 0 to 4_999 do
        ignore (Channel.advance ch ~slot);
        if Predictor.predict one ch ~slot <> Predictor.predict snoop ch ~slot
        then ok := false
      done;
      !ok)

(* Sanity anchor with hand-checked numbers: pg=0.1, pe=0.05 gives
   pi_g = 2/3 and hit rate 2/3*0.95 + 1/3*0.9 = 0.93333... *)
let test_one_step_known_point () =
  let accuracy =
    drive ~slots:200_000 ~pg:0.1 ~pe:0.05 ~seed:42 Predictor.One_step
  in
  Alcotest.(check bool)
    "accuracy within 0.01 of 14/15" true
    (abs_float (accuracy -. (14. /. 15.)) < 0.01)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_perfect_matches_realized;
    QCheck_alcotest.to_alcotest prop_one_step_converges;
    QCheck_alcotest.to_alcotest prop_snoop1_equals_one_step;
    Alcotest.test_case "one-step accuracy at a known point" `Quick
      test_one_step_known_point;
  ]
