(* R4: physical equality without a stated identity invariant. *)
let same_ref a b = a == b
let distinct a b = a != b
