(* R6: untyped error raising — every exit below must go through
   Wfs_util.Error instead. *)

let check_positive x = if x < 0 then failwith "negative" else x
let check_small x = if x > 10 then invalid_arg "Fixture.check_small: too big" else x

let check_nonzero x =
  if x = 0 then raise (Invalid_argument "Fixture.check_nonzero: zero") else x

let check_odd x = if x mod 2 = 0 then raise (Failure "even") else x
