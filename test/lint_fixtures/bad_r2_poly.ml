(* R2: polymorphic comparison in scheduler code. *)
let sort_ids ids = List.sort compare ids
let clamp v lo hi = min (max v lo) hi
let is_nil l = l = []
let missing o = o = None
let named s = s = "IWFQ"
let has x xs = List.mem x xs
