(* R7: allocation in quiescent-skip code — the calendar requery and the
   per-scheduler [advance_quiescent] closed forms run once per busy
   window, inside the simulator's compressed slot loop.  A closure
   literal or fresh-container combinator there allocates on every skip,
   which is exactly the per-event cost event compression exists to
   remove.  Each binding below must hoist the closure to a preallocated
   field (as [Iwfq.t.accept_eligible] does) or scan in place. *)

(* Calendar top-up that captures [until] in a fresh closure per call. *)
let[@hot] requery_all sources until push =
  Array.iteri (fun i next -> if next < until then push i next) sources

(* Quiescent advance that rebuilds the live-flow list every window. *)
let[@hot] advance_quiescent backlog slots =
  let live = List.filter (fun q -> q > 0) backlog in
  ignore live;
  slots

(* Skip-horizon scan allocating a fresh keys array per window. *)
let[@hot] min_key cal = Array.map fst cal
