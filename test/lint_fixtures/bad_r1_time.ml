(* R1: wall-clock reads must not appear in lib/ code. *)
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
