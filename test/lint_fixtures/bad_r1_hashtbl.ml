(* R1: hash-order iteration is not a stable order. *)
let sum tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
let dump tbl = Hashtbl.iter (fun k v -> ignore (Printf.sprintf "%d %d" k v)) tbl
let digest x = Hashtbl.hash x
