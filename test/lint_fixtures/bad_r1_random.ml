(* R1: the ambient global RNG must not appear in lib/ code. *)
let jitter () = Random.float 1.0
let reseed () = Random.self_init ()
let pick n = Random.int n
