(* Justified suppressions: each allow-comment silences exactly one
   diagnostic, so the file is clean and no suppression is unused. *)

let next_must_exist q = Queue.pop q (* lint: allow R5 -- fixture: same-line suppression of a guarded pop *)

(* lint: allow R4 -- fixture: next-line suppression of a mutable-identity check *)
let same_cell a b = a == b
