(* R7: allocation in hot scope — [@hot] marks per-slot code, where
   fresh-container combinators and closure literals allocate on every
   call.  Each binding below must preallocate scratch or hoist the
   closure instead. *)

let[@hot] bump xs = Array.map (fun x -> x + 1) xs

let[@hot] live_ids ids = List.filter (fun i -> i >= 0) ids

let sum arr =
  (let total = ref 0 in
   Array.iter (fun x -> total := !total + x) arr;
   !total)
  [@hot]
