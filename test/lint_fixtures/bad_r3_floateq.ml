(* R3: exact equality on computed floats. *)
let drained backlog = backlog = 0.
let same_tag a b = a +. 0.1 = b
let not_sentinel v = v <> infinity
let caught_up virt target = Float.min virt target = target
