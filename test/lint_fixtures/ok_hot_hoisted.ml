(* The sanctioned shape of a hot scope: scratch preallocated outside the
   [@hot] region, per-element work hoisted to named toplevel functions,
   and the one rare-path closure carrying a justified allow-comment. *)

type t = { scratch : int array; mutable len : int }

(* Allocation is fine outside hot scopes, even with combinators. *)
let create n = { scratch = Array.make n 0; len = 0 }
let incr_at arr i = arr.(i) <- arr.(i) + 1

let[@hot] bump_all arr =
  for i = 0 to Array.length arr - 1 do
    incr_at arr i
  done

let[@hot] push t v =
  t.scratch.(t.len) <- v;
  t.len <- t.len + 1

let[@hot] reset t =
  (* lint: allow R7 rare path: reset runs once per experiment, not per slot *)
  Array.iteri (fun i _ -> t.scratch.(i) <- 0) t.scratch
