(* R8: direct printing in library code — every line below writes to the
   process's standard channels, which belong to the binaries. *)

let announce name = print_string name
let announce_line name = print_endline name
let shout n = Printf.printf "n = %d\n" n
let complain msg = prerr_endline msg
let complainf msg = Printf.eprintf "warning: %s\n" msg
let pretty n = Format.printf "%d@." n
