(* R5: container exceptions escaping without a local handler. *)
let head q = Queue.peek q
let next q = Queue.pop q
let lookup tbl k = Hashtbl.find tbl k
let field l k = List.assoc k l
