(* Each construct here is the sanctioned spelling of something the bad_*
   fixtures flag; the linter must stay quiet on all of it. *)

let head q = Queue.peek_opt q

let next q =
  match Queue.pop q with
  | pkt -> Some pkt
  | exception Queue.Empty -> None

let safe_next q = try Some (Queue.pop q) with Queue.Empty -> None
let sort_ids ids = List.sort Int.compare ids
let clamp v lo hi = Int.min (Int.max v lo) hi
let drained backlog = backlog <= 0.
let close a b = Float.abs (a -. b) < 1e-9
let same_int (a : int) (b : int) = a = b
let is_nil l = List.is_empty l
let named s = String.equal s "IWFQ"
let lookup tbl k = Hashtbl.find_opt tbl k
