(* SUPP: an allow-comment without a justification is itself a violation.
   Queue.length below is not a banned call, so the only diagnostic here is
   the malformed suppression. *)
let size q = Queue.length q (* lint: allow R5 *)
