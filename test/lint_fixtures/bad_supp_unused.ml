(* SUPP: a suppression that silences nothing must be reported, so stale
   allow-comments cannot accumulate as the code under them changes. *)

(* lint: allow R1 -- this comment matches no diagnostic and must be flagged as unused *)
let identity x = x
