(* wfs_xray: bit-exact codec round-trips for the causality / windowed /
   mux schemas, Journal-convention torn-tail tolerance, windowed-collector
   boundary behavior, skip-telemetry compression witnesses (a collector
   must never degenerate the fast path), and traced topology runs —
   byte-identical to bare runs and across every --jobs value. *)

module Causality = Wfs_xray.Causality
module Windowed = Wfs_xray.Windowed
module Mux = Wfs_xray.Mux
module Skip_stats = Wfs_core.Skip_stats
module Skip_telemetry = Wfs_xray.Skip_telemetry
module Trace = Wfs_obs.Trace
module Spec = Wfs_runner.Spec
module Exec = Wfs_runner.Exec
module Topology = Wfs_topo.Topology
module Cell = Wfs_topo.Cell
module Sched = Wfs_core.Wireless_sched
module Registry = Wfs_core.Registry
module Sim = Wfs_core.Simulator
module M = Wfs_core.Metrics
module Json = Wfs_util.Json
module Error = Wfs_util.Error

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_temp_file ?(suffix = ".xray") f =
  let path = Filename.temp_file "wfs_xray" suffix in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let append_raw path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

(* --- generators --- *)

let float_gen =
  (* Ordinary magnitudes plus every special the codec must preserve. *)
  QCheck.Gen.(
    frequency
      [
        (8, float_bound_exclusive 1e6);
        (2, map Float.neg (float_bound_exclusive 1e6));
        (1, return Float.nan);
        (1, return Float.infinity);
        (1, return Float.neg_infinity);
        (1, return 0.1);
      ])

let carry_gen =
  QCheck.Gen.(
    map
      (fun (lag, credit) -> { Sched.lag; credit })
      (pair float_gen (-100 -- 100)))

let verdict_gen =
  QCheck.Gen.oneofl
    [
      Causality.verdict_deliver;
      Causality.verdict_blocked;
      Causality.verdict_lost;
      Causality.verdict_corrupt;
    ]

(* Every constructor appears: the generators double as the liveness
   witness keeping the A3 dead-event audit clean for the real tree. *)
let event_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map
            (fun ((slot, flow), ((src, dst), verdict)) ->
              Causality.Move { slot; flow; src; dst; verdict })
            (pair
               (pair (0 -- 1_000_000) (0 -- 256))
               (pair (pair (0 -- 64) (0 -- 64)) verdict_gen)) );
        ( 1,
          map
            (fun ((slot, flow), dst) -> Causality.Rehome { slot; flow; dst })
            (pair (pair (0 -- 1_000_000) (0 -- 256)) (0 -- 64)) );
        ( 1,
          map
            (fun ((slot, cell), orphaned) ->
              Causality.Crash { slot; cell; orphaned })
            (pair
               (pair (0 -- 1_000_000) (0 -- 64))
               (list_size (0 -- 8) (0 -- 256))) );
        ( 3,
          map
            (fun ((slot, flow), (cell, (carried, accepted))) ->
              Causality.Carry { slot; flow; cell; carried; accepted })
            (pair
               (pair (0 -- 1_000_000) (0 -- 256))
               (pair (0 -- 64) (pair carry_gen carry_gen))) );
      ])

let window_gen =
  QCheck.Gen.(
    map
      (fun (((index, start_slot), (end_slot, (jain, gap))),
            ((arrivals, delivered), ((dropped, backlog), loss))) ->
        {
          Windowed.index;
          start_slot;
          end_slot;
          jain;
          gap;
          arrivals;
          delivered;
          dropped;
          backlog;
          loss;
        })
      (pair
         (pair
            (pair (0 -- 10_000) (0 -- 1_000_000))
            (pair (0 -- 1_000_000) (pair float_gen float_gen)))
         (pair
            (pair (0 -- 100_000) (0 -- 100_000))
            (pair (pair (0 -- 100_000) (0 -- 100_000)) float_gen))))

let flow_sample_gen =
  QCheck.Gen.(
    map
      (fun ((queue, good), (tag, credit)) -> { Trace.queue; good; tag; credit })
      (pair (pair (0 -- 1000) bool) (pair (opt float_gen) (opt (-100 -- 100)))))

let entry_gen =
  QCheck.Gen.(
    frequency
      [
        ( 1,
          map
            (fun ((cell, slot), gids) ->
              Mux.Roster { cell; slot; gids = Array.of_list gids })
            (pair (pair (0 -- 64) (0 -- 1_000_000)) (list_size (0 -- 8) (0 -- 256)))
        );
        ( 3,
          map
            (fun (cell, ((slot, selected), ((vt, lag), flows))) ->
              Mux.Sample
                {
                  cell;
                  sample =
                    {
                      Trace.slot;
                      selected;
                      virtual_time = vt;
                      lag_sum = lag;
                      flows = Array.of_list flows;
                    };
                })
            (pair (0 -- 64)
               (pair
                  (pair (0 -- 1_000_000) (opt (0 -- 32)))
                  (pair
                     (pair (opt float_gen) (opt (-1000 -- 1000)))
                     (list_size (1 -- 8) flow_sample_gen)))) );
      ])

(* --- codec round-trips --- *)

let prop_event_roundtrip =
  QCheck.Test.make ~name:"causality event JSONL round-trip is bit-exact"
    ~count:500 (QCheck.make event_gen) (fun e ->
      match Causality.event_of_string (Causality.event_to_string e) with
      | Some e' -> Causality.event_equal e e'
      | None -> false)

let prop_window_roundtrip =
  QCheck.Test.make ~name:"windowed window JSONL round-trip is bit-exact"
    ~count:500 (QCheck.make window_gen) (fun w ->
      match Windowed.window_of_string (Windowed.window_to_string w) with
      | Some w' -> Windowed.window_equal w w'
      | None -> false)

let prop_entry_roundtrip =
  QCheck.Test.make ~name:"xray-trace entry JSONL round-trip is bit-exact"
    ~count:500 (QCheck.make entry_gen) (fun e ->
      match Mux.entry_of_string (Mux.entry_to_string e) with
      | Some e' -> Mux.entry_equal e e'
      | None -> false)

let prop_causality_file_roundtrip =
  QCheck.Test.make ~name:"causality write/load round-trips event lists"
    ~count:50
    (QCheck.make QCheck.Gen.(list_size (0 -- 20) event_gen))
    (fun events ->
      with_temp_file (fun path ->
          Causality.write ~path events;
          match Causality.load ~path with
          | Ok events' -> List.equal Causality.event_equal events events'
          | Error _ -> false))

(* --- Journal convention: torn tail tolerated, corruption refused --- *)

let sample_events =
  [
    Causality.Move
      {
        slot = 500;
        flow = 3;
        src = 0;
        dst = 2;
        verdict = Causality.verdict_deliver;
      };
    Causality.Crash { slot = 1000; cell = 1; orphaned = [ 4; 5 ] };
    Causality.Rehome { slot = 1500; flow = 4; dst = 0 };
    Causality.Carry
      {
        slot = 1500;
        flow = 4;
        cell = 0;
        carried = { Sched.lag = 2.5; credit = 3 };
        accepted = { Sched.lag = 1.0; credit = 2 };
      };
  ]

let test_causality_torn_tail () =
  with_temp_file (fun path ->
      Causality.write ~path sample_events;
      append_raw path "{\"k\":\"move\",\"slot\":9";
      match Causality.load ~path with
      | Ok events ->
          check_int "torn tail dropped" (List.length sample_events)
            (List.length events)
      | Error e -> Alcotest.failf "load refused torn tail: %s" (Error.to_string e))

let test_causality_corruption_refused () =
  with_temp_file (fun path ->
      Causality.write ~path sample_events;
      append_raw path "garbage\n";
      append_raw path
        (Causality.event_to_string (List.hd sample_events) ^ "\n");
      match Causality.load ~path with
      | Ok _ -> Alcotest.fail "mid-file corruption loaded"
      | Error e ->
          check_bool "Bad_spec" true (e.Error.kind = Error.Bad_spec))

let test_windows_torn_tail () =
  with_temp_file (fun path ->
      let ws =
        [
          {
            Windowed.index = 0;
            start_slot = 0;
            end_slot = 1000;
            jain = 1.0;
            gap = 0.0;
            arrivals = 10;
            delivered = 9;
            dropped = 1;
            backlog = 0;
            loss = 0.1;
          };
        ]
      in
      Windowed.write ~path ~window:1000 ws;
      append_raw path "{\"i\":1,\"s\":10";
      match Windowed.load ~path with
      | Ok c ->
          check_int "window param" 1000 c.Windowed.window;
          check_int "torn tail dropped" 1 (List.length c.Windowed.windows)
      | Error e -> Alcotest.failf "load refused torn tail: %s" (Error.to_string e))

let test_windows_wrong_schema () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "{\"schema\":\"wfs-trace/1\",\"window\":5}\n";
      close_out oc;
      match Windowed.load ~path with
      | Ok _ -> Alcotest.fail "wrong schema loaded"
      | Error e ->
          check_bool "Bad_spec" true (e.Error.kind = Error.Bad_spec))

(* --- windowed collector over a real run --- *)

let single_cell_windows ~horizon ~window =
  let spec = Spec.make ~seed:7 ~horizon ~sched:"SwapA-P" (Spec.example 1) in
  let entry = Registry.get spec.Spec.sched in
  let setups = Exec.setups_of spec in
  let flows = Wfs_core.Presets.flows_of setups in
  let sched = entry.Registry.make flows in
  let weights =
    Array.map (fun (f : Wfs_core.Params.flow) -> f.weight) flows
  in
  let w = Windowed.create ~weights ~window in
  let cfg =
    Sim.config ~predictor:entry.Registry.predictor
      ~observer:(Windowed.observer w) ~horizon setups
  in
  let metrics = Sim.run cfg sched in
  Windowed.flush w ~slot:(horizon - 1) ~metrics;
  (Windowed.windows w, metrics)

let test_windowed_collector_boundaries () =
  let horizon = 5000 and window = 1000 in
  let ws, metrics = single_cell_windows ~horizon ~window in
  check_int "window count" (horizon / window) (List.length ws);
  List.iteri
    (fun i (w : Windowed.window) ->
      check_int "index" i w.Windowed.index;
      check_int "start" (i * window) w.Windowed.start_slot;
      check_int "end" ((i + 1) * window) w.Windowed.end_slot)
    ws;
  let total_delivered = ref 0 and total_arrivals = ref 0 in
  for f = 0 to M.n_flows metrics - 1 do
    total_delivered := !total_delivered + M.delivered metrics ~flow:f;
    total_arrivals := !total_arrivals + M.arrivals metrics ~flow:f
  done;
  check_int "delivered deltas sum to the run total" !total_delivered
    (List.fold_left (fun a (w : Windowed.window) -> a + w.Windowed.delivered) 0 ws);
  check_int "arrival deltas sum to the run total" !total_arrivals
    (List.fold_left (fun a (w : Windowed.window) -> a + w.Windowed.arrivals) 0 ws)

let test_windowed_partial_flush () =
  (* A horizon that is not a multiple of the window leaves a trailing
     partial window; flush must close it with the true span. *)
  let horizon = 2500 and window = 1000 in
  let ws, _ = single_cell_windows ~horizon ~window in
  check_int "window count" 3 (List.length ws);
  let last = List.nth ws 2 in
  check_int "partial start" 2000 last.Windowed.start_slot;
  check_int "partial end" 2500 last.Windowed.end_slot

let test_windowed_rejects_bad_config () =
  Alcotest.check_raises "window < 1"
    (Error.Error
       (Error.v Error.Bad_config ~who:"Windowed.create" "window must be >= 1"))
    (fun () -> ignore (Windowed.create ~weights:[| 1.0 |] ~window:0))

(* --- skip telemetry: observe the fast path without degenerating it --- *)

let macro_spec ~horizon =
  Spec.make ~seed:11 ~horizon ~sched:"SwapA-P" (Spec.example 1)

let run_with ?skip_stats ~fast_path ?observer ~horizon () =
  let spec = macro_spec ~horizon in
  let entry = Registry.get spec.Spec.sched in
  let setups = Exec.setups_of spec in
  let sched = entry.Registry.make (Wfs_core.Presets.flows_of setups) in
  let cfg =
    Sim.config ~predictor:entry.Registry.predictor ?skip_stats ?observer
      ~fast_path ~horizon setups
  in
  Sim.run cfg sched

let test_skip_stats_stays_compressed () =
  let horizon = 20_000 in
  let bare = run_with ~fast_path:true ~horizon () in
  let k = Skip_stats.create () in
  let observed = run_with ~skip_stats:k ~fast_path:true ~horizon () in
  check_bool "metrics identical under the collector" true
    (String.equal
       (Json.to_string ~pretty:false (M.to_json bare))
       (Json.to_string ~pretty:false (M.to_json observed)));
  check_bool "stayed compressed" true (Skip_stats.compressed k);
  check_int "engine saw the whole horizon" horizon (Skip_stats.engine_slots k);
  check_int "no reference slots" 0 (Skip_stats.reference_slots k);
  check_bool "absorbed something" true (Skip_stats.absorbed_slots k > 0);
  check_bool "absorbed bounded by horizon" true
    (Skip_stats.absorbed_slots k <= horizon);
  check_bool "max window bounded" true
    (Skip_stats.max_window k <= horizon)

let test_skip_stats_sees_degeneration () =
  let k = Skip_stats.create () in
  ignore
    (run_with ~skip_stats:k ~fast_path:true ~observer:(fun _ _ -> ())
       ~horizon:2000 ());
  check_bool "observer degenerated the run" false (Skip_stats.compressed k);
  check_int "all slots on the reference loop" 2000
    (Skip_stats.reference_slots k);
  check_int "no engine slots" 0 (Skip_stats.engine_slots k)

let test_skip_stats_merge_and_json () =
  let a = Skip_stats.create () and b = Skip_stats.create () in
  Skip_stats.note_engine a ~slots:100;
  Skip_stats.note_window a ~slots:40;
  Skip_stats.note_window a ~slots:25;
  Skip_stats.note_declined a;
  Skip_stats.note_engine b ~slots:50;
  Skip_stats.note_window b ~slots:50;
  Skip_stats.note_reference b ~slots:10;
  let m = Skip_stats.merge a b in
  check_int "absorbed windows" 3 (Skip_stats.absorbed_windows m);
  check_int "absorbed slots" 115 (Skip_stats.absorbed_slots m);
  check_int "declined" 1 (Skip_stats.declined_windows m);
  check_int "engine" 150 (Skip_stats.engine_slots m);
  check_int "reference" 10 (Skip_stats.reference_slots m);
  check_int "max window" 50 (Skip_stats.max_window m);
  check_bool "merge with reference slots is not compressed" false
    (Skip_stats.compressed m);
  (match Skip_stats.of_json (Skip_stats.to_json m) with
  | Some m' ->
      check_int "json round-trip absorbed" (Skip_stats.absorbed_slots m)
        (Skip_stats.absorbed_slots m');
      check_int "json round-trip max" (Skip_stats.max_window m)
        (Skip_stats.max_window m')
  | None -> Alcotest.fail "skip stats json round-trip failed");
  check_bool "merge_all [] is None" true (Skip_telemetry.merge_all [] = None);
  match Skip_telemetry.merge_all [ a; b ] with
  | Some m2 ->
      check_int "merge_all agrees with merge" (Skip_stats.absorbed_slots m)
        (Skip_stats.absorbed_slots m2)
  | None -> Alcotest.fail "merge_all dropped collectors"

(* --- traced topology runs: bare identity and jobs invariance --- *)

let topo_spec ?faults () =
  let tp = Spec.topo ~cells:3 ~mobility:0.02 ~epoch:250 in
  let tp = match faults with Some p -> Spec.with_faults p tp | None -> tp in
  Spec.with_topo tp
    (Spec.make ~seed:42 ~horizon:2000 ~sched:"SwapA-P" (Spec.example 1))

let fault_plan =
  Spec.faults ~crash:0.05 ~recover:0.5 ~lose:0.1 ~corrupt:0.1 ~blackout:0.05
    ~blackout_len:100 ~exn:0.05 ~persist:0.25 ~budget:2 ()

(* The same wiring wfs_sim uses for a traced topology run: per-cell Mux
   parts via the tap, causality at the barrier, windows from peek_metrics. *)
let run_traced ~jobs ~jsonl ~csv ~causality:cpath ~windows:wpath spec =
  let cells =
    match spec.Spec.topo with Some tp -> tp.Spec.cells | None -> 1
  in
  let mux = Mux.create ~cells ~part_base:jsonl () in
  let cause = Causality.create () in
  let tap =
    {
      Cell.on_roster =
        (fun ~cell ~slot ~gids -> Mux.note_roster mux ~cell ~slot ~gids);
      probe =
        (fun ~cell ~n_flows sched -> Some (Mux.probe mux ~cell ~n_flows sched));
      on_carry =
        (fun ~cell ~slot ~gid ~carried ~accepted ->
          Causality.record cause
            (Causality.Carry { slot; flow = gid; cell; carried; accepted }));
    }
  in
  match Topology.of_spec ~tap ~causality:cause spec with
  | t ->
      let w = Windowed.create ~weights:(Topology.weights t) ~window:500 in
      let on_barrier ~slot =
        Windowed.observe w ~slot:(slot - 1) ~metrics:(Topology.peek_metrics t)
      in
      Topology.run ~jobs ~on_barrier t;
      let metrics = Topology.metrics t in
      Windowed.flush w ~slot:(spec.Spec.horizon - 1) ~metrics;
      Windowed.write ~path:wpath ~window:500 (Windowed.windows w);
      Causality.write ~path:cpath (Causality.events cause);
      Mux.finish mux ~n_flows:(Topology.n_flows t) ~jsonl ~csv ();
      metrics
  | exception e ->
      Mux.abort mux;
      raise e

let run_bare ~jobs spec =
  let t = Topology.of_spec spec in
  Topology.run ~jobs t;
  Topology.metrics t

let with_traced_outputs f =
  with_temp_file ~suffix:".jsonl" (fun jsonl ->
      with_temp_file ~suffix:".csv" (fun csv ->
        with_temp_file ~suffix:".cause" (fun cpath ->
          with_temp_file ~suffix:".win" (fun wpath ->
            f ~jsonl ~csv ~cpath ~wpath))))

let test_traced_equals_bare () =
  List.iter
    (fun faults ->
      let spec = topo_spec ?faults () in
      let bare = run_bare ~jobs:2 spec in
      with_traced_outputs (fun ~jsonl ~csv ~cpath ~wpath ->
          let traced =
            run_traced ~jobs:2 ~jsonl ~csv ~causality:cpath ~windows:wpath spec
          in
          ignore csv;
          check_bool "tracing does not perturb the run" true
            (String.equal
               (Json.to_string ~pretty:false (M.to_json bare))
               (Json.to_string ~pretty:false (M.to_json traced)))))
    [ None; Some fault_plan ]

let test_traced_jobs_invariance () =
  List.iter
    (fun faults ->
      let spec = topo_spec ?faults () in
      let outputs =
        List.map
          (fun jobs ->
            let dir = Filename.temp_file "wfs_xray_jobs" "" in
            Sys.remove dir;
            Unix.mkdir dir 0o755;
            let jsonl = Filename.concat dir "t.jsonl"
            and csv = Filename.concat dir "t.csv"
            and cpath = Filename.concat dir "c.jsonl"
            and wpath = Filename.concat dir "w.jsonl" in
            ignore
              (run_traced ~jobs ~jsonl ~csv ~causality:cpath ~windows:wpath
                 spec);
            let all =
              ( read_file jsonl,
                read_file csv,
                read_file cpath,
                read_file wpath )
            in
            List.iter Sys.remove [ jsonl; csv; cpath; wpath ];
            Unix.rmdir dir;
            all)
          [ 1; 2; 4 ]
      in
      match outputs with
      | (j1, c1, ca1, w1) :: rest ->
          List.iteri
            (fun i (j, c, ca, w) ->
              let at = Printf.sprintf "jobs variant %d" (i + 1) in
              check_bool (at ^ " jsonl") true (String.equal j1 j);
              check_bool (at ^ " csv") true (String.equal c1 c);
              check_bool (at ^ " causality") true (String.equal ca1 ca);
              check_bool (at ^ " windows") true (String.equal w1 w))
            rest
      | [] -> assert false)
    [ None; Some fault_plan ]

let test_merged_stream_is_well_formed () =
  let spec = topo_spec ~faults:fault_plan () in
  with_traced_outputs (fun ~jsonl ~csv ~cpath ~wpath ->
      ignore (run_traced ~jobs:2 ~jsonl ~csv ~causality:cpath ~windows:wpath spec);
      (match Mux.load ~path:jsonl with
      | Ok c ->
          check_int "cells" 3 c.Mux.cells;
          check_bool "entries present" true (c.Mux.entries <> []);
          (* Merge order: slots nondecreasing, ties broken by cell. *)
          let ok, _ =
            List.fold_left
              (fun (ok, prev) e ->
                let key = (Mux.entry_slot e, Mux.entry_cell e) in
                (ok && (prev = None || Some key >= prev), Some key))
              (true, None) c.Mux.entries
          in
          check_bool "merge order (slot, cell)" true ok;
          (* Rosters precede their cell's samples: a sample must resolve
             through an already-seen roster. *)
          let seen = Hashtbl.create 8 in
          List.iter
            (function
              | Mux.Roster { cell; _ } -> Hashtbl.replace seen cell ()
              | Mux.Sample { cell; _ } ->
                  check_bool "sample after roster" true (Hashtbl.mem seen cell))
            c.Mux.entries;
          (* Part files are gone after finish. *)
          for cell = 0 to 2 do
            check_bool "part removed" false
              (Sys.file_exists (Printf.sprintf "%s.part%d" jsonl cell))
          done
      | Error e -> Alcotest.failf "mux load: %s" (Error.to_string e));
      (* Torn tail on the merged stream follows the Journal convention. *)
      let before =
        match Mux.load ~path:jsonl with
        | Ok c -> List.length c.Mux.entries
        | Error _ -> assert false
      in
      append_raw jsonl "{\"cell\":0,\"slot\":99";
      (match Mux.load ~path:jsonl with
      | Ok c -> check_int "torn tail dropped" before (List.length c.Mux.entries)
      | Error e -> Alcotest.failf "torn tail refused: %s" (Error.to_string e));
      match Causality.load ~path:cpath with
      | Ok events ->
          let moved = Causality.flows events in
          List.iter
            (fun flow ->
              let lag, credit = Causality.truncation events ~flow in
              check_bool "truncated lag is nonnegative" true (lag >= 0.);
              check_bool "truncated credit is nonnegative" true (credit >= 0))
            moved
      | Error e -> Alcotest.failf "causality load: %s" (Error.to_string e))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_event_roundtrip;
    QCheck_alcotest.to_alcotest prop_window_roundtrip;
    QCheck_alcotest.to_alcotest prop_entry_roundtrip;
    QCheck_alcotest.to_alcotest prop_causality_file_roundtrip;
    Alcotest.test_case "causality: torn tail tolerated" `Quick
      test_causality_torn_tail;
    Alcotest.test_case "causality: mid-file corruption refused" `Quick
      test_causality_corruption_refused;
    Alcotest.test_case "windows: torn tail tolerated" `Quick
      test_windows_torn_tail;
    Alcotest.test_case "windows: wrong schema refused" `Quick
      test_windows_wrong_schema;
    Alcotest.test_case "windowed collector closes tumbling boundaries" `Quick
      test_windowed_collector_boundaries;
    Alcotest.test_case "windowed collector flushes a trailing partial" `Quick
      test_windowed_partial_flush;
    Alcotest.test_case "windowed collector validates its config" `Quick
      test_windowed_rejects_bad_config;
    Alcotest.test_case "skip stats observe a compressed run" `Quick
      test_skip_stats_stays_compressed;
    Alcotest.test_case "skip stats witness degeneration" `Quick
      test_skip_stats_sees_degeneration;
    Alcotest.test_case "skip stats merge and JSON round-trip" `Quick
      test_skip_stats_merge_and_json;
    Alcotest.test_case "traced topology equals bare (clean and faulted)"
      `Quick test_traced_equals_bare;
    Alcotest.test_case "traced topology is jobs-invariant" `Quick
      test_traced_jobs_invariance;
    Alcotest.test_case "merged stream is well-formed" `Quick
      test_merged_stream_is_well_formed;
  ]
