(* A stand-in for the differential/lockstep suite: the probed fixture
   scheduler is constructed here, which is exactly the signal A3's
   tested-coverage audit looks for. *)

let exercise_probed () =
  let t = Analyze_fixtures_proj.Ok_a3_probed.create () in
  Analyze_fixtures_proj.Ok_a3_probed.instance t
