(* Domain-safe sharing: the spawned thunk only touches an Atomic.t, which
   A2 exempts — the point of the negative fixture is that the capture
   check keys on the captured value's type, not on spawning per se. *)

let count_par () =
  let hits = Atomic.make 0 in
  let worker () = Atomic.incr hits in
  let d = Domain.spawn worker in
  worker ();
  Domain.join d;
  Atomic.get hits
