(* The well-covered scheduler: registered, wires a live probe field, and
   the fixture test role references it — every A3 audit is satisfied. *)

module Sched = Wfs_core.Wireless_sched
module Packet = Wfs_traffic.Packet

type t = { q : Packet.t Queue.t; mutable served : int }

let create () = { q = Queue.create (); served = 0 }

let instance t =
  {
    Sched.name = "FIXTURE-PROBED";
    enqueue = (fun ~slot:_ pkt -> Queue.push pkt t.q);
    select =
      (fun ~slot:_ ~predicted_good:_ ->
        match Queue.peek_opt t.q with
        | Some p -> Some p.Packet.flow
        | None -> None);
    head = (fun _ -> Queue.peek_opt t.q);
    complete =
      (fun ~flow:_ ->
        t.served <- t.served + 1;
        ignore (Queue.take_opt t.q));
    fail = (fun ~flow:_ -> ());
    drop_head = (fun ~flow:_ -> ignore (Queue.take_opt t.q));
    drop_expired = (fun ~flow:_ ~now:_ ~bound:_ -> []);
    queue_length = (fun _ -> Queue.length t.q);
    on_slot_end = (fun ~slot:_ -> ());
    probe =
      {
        Sched.no_probe with
        lag_sum = Some (fun () -> t.served);
        work_conserving = true;
      };
    handoff = None;
    quiescent = None;
  }

let register () =
  Wfs_core.Registry.register
    {
      Wfs_core.Registry.name = "FIXTURE-PROBED";
      aliases = [];
      predictor = Wfs_channel.Predictor.Blind;
      make =
        (fun ?credit_limit:_ ?debit_limit:_ ?limits:_ _flows ->
          instance (create ()));
    }
