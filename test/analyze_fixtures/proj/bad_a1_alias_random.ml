(* An aliased Random defeats the syntactic R1 scan, which matches the
   module name textually; the typedtree resolves the alias back to
   Stdlib.Random, so A1 still sees the source — and carries the taint to
   the caller that never names it. *)

module R = Random

let jitter n = R.int n

let jittered_backoff base = base + jitter base
