(* An xray causality instrument taxonomy whose event kinds no test ever
   constructs or matches: the lib-side [label] consumer covers every
   constructor, but A3's dead-kind audit keys on *test-role* references —
   an event kind only a lib printer touches has no replay coverage, so
   every constructor below must be flagged.  The type must be named
   [event] and live under a [Causality] module path to enter the audited
   taxonomy. *)

module Causality = struct
  type event =
    | Fixture_move of { flow : int; src : int; dst : int }
    | Fixture_rehome of { flow : int; dst : int }
    | Fixture_orphan of { cell : int; flows : int }
end

let label = function
  | Causality.Fixture_move { flow; src; dst } ->
      Printf.sprintf "move flow=%d %d>%d" flow src dst
  | Causality.Fixture_rehome { flow; dst } ->
      Printf.sprintf "rehome flow=%d dst=%d" flow dst
  | Causality.Fixture_orphan { cell; flows } ->
      Printf.sprintf "orphan cell=%d flows=%d" cell flows
