(* A justified suppression: the hash-order fold is genuinely harmless
   because integer addition commutes, the comment says so, and the entry
   is consumed — so neither A1 nor the stale-suppression audit fires. *)

let sum_counts (tbl : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun _key v acc -> acc + v) tbl 0 (* analyze: allow A1 -- integer sum commutes; hash order cannot change the result *)
