(* A spawned thunk closing over a locally allocated array: two domains
   race on [cells] with no mutex, atomic, or ownership discipline. *)

let race () =
  let cells = Array.make 8 0 in
  let worker () = cells.(0) <- cells.(0) + 1 in
  let d = Domain.spawn worker in
  worker ();
  Domain.join d;
  cells.(0)
