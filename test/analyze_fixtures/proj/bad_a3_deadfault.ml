(* A chaos fault taxonomy whose kinds no test ever constructs or matches:
   the lib-side [describe] consumer covers every constructor, but A3's
   dead-kind audit keys on *test-role* references — a fault kind only a
   lib printer touches has no injection coverage, so every constructor
   below must be flagged.  The type must be named [fault] and live under
   a [Chaos] module path to enter the audited taxonomy. *)

module Chaos = struct
  type fault =
    | Fixture_crash of { cell : int }
    | Fixture_lost of { flow : int }
    | Fixture_blackout of { cell : int; until : int }
end

let describe = function
  | Chaos.Fixture_crash { cell } -> Printf.sprintf "crash cell=%d" cell
  | Chaos.Fixture_lost { flow } -> Printf.sprintf "lost flow=%d" flow
  | Chaos.Fixture_blackout { cell; until } ->
      Printf.sprintf "blackout cell=%d until=%d" cell until
