(* A let-bound Stdlib.compare slips past the syntactic R2 rule (no bare
   `compare` token ever reaches a call site); the typed check flags the
   binding itself, where the comparator escapes at a polymorphic type. *)

let cmp = compare

let sort_pairs (ps : (int * string) list) = List.sort cmp ps
