(* Suppression hygiene: a well-formed allow-comment that silences nothing
   is stale, and an unknown rule token is malformed; both must fail. *)

(* analyze: allow A1 -- deliberately stale: the next line is pure arithmetic *)
let pure_add a b = a + b

let bogus = 0 (* analyze: allow A9 unknown rule token on purpose *)
