(* The sanctioned determinism boundary: draws through the seeded
   Wfs_util.Rng stream are reproducible, so nothing here is tainted even
   though randomness flows through every definition. *)

let draw st = Wfs_util.Rng.float st

let pick st xs = List.nth xs (Wfs_util.Rng.int st (List.length xs))

let averaged ~seed n =
  let st = Wfs_util.Rng.create seed in
  let rec go acc k = if k = 0 then acc else go (acc +. draw st) (k - 1) in
  go 0.0 n /. float_of_int n
