(* A registered scheduler with no probe wiring: the instance ships with
   no_probe, so the invariant monitors cannot observe it — and nothing in
   the test role references it, so lockstep coverage is missing too.
   [register] is compiled, never executed; reachability is what A3 checks. *)

module Sched = Wfs_core.Wireless_sched
module Packet = Wfs_traffic.Packet

type t = { q : Packet.t Queue.t }

let create () = { q = Queue.create () }

let instance t =
  {
    Sched.name = "FIXTURE-UNPROBED";
    enqueue = (fun ~slot:_ pkt -> Queue.push pkt t.q);
    select =
      (fun ~slot:_ ~predicted_good:_ ->
        match Queue.peek_opt t.q with
        | Some p -> Some p.Packet.flow
        | None -> None);
    head = (fun _ -> Queue.peek_opt t.q);
    complete = (fun ~flow:_ -> ignore (Queue.take_opt t.q));
    fail = (fun ~flow:_ -> ());
    drop_head = (fun ~flow:_ -> ignore (Queue.take_opt t.q));
    drop_expired = (fun ~flow:_ ~now:_ ~bound:_ -> []);
    queue_length = (fun _ -> Queue.length t.q);
    on_slot_end = (fun ~slot:_ -> ());
    probe = Sched.no_probe;
    handoff = None;
    quiescent = None;
  }

let register () =
  Wfs_core.Registry.register
    {
      Wfs_core.Registry.name = "FIXTURE-UNPROBED";
      aliases = [];
      predictor = Wfs_channel.Predictor.Blind;
      make =
        (fun ?credit_limit:_ ?debit_limit:_ ?limits:_ _flows ->
          instance (create ()));
    }
