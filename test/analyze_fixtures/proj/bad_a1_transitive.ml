(* Wall-clock reached through a private helper: the public entry never
   names Sys.time, so a per-file syntactic rule has nothing to match; the
   cross-module call graph carries the taint. *)

let stamp () = Sys.time ()

let annotate x = (stamp (), x)
