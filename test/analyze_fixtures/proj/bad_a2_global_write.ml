(* The thunk is a module-level function whose body writes module-global
   state; only the call graph connects the spawn site to the write. *)

let hits = ref 0

let bump () = hits := !hits + 1

let fan_out () =
  let d = Domain.spawn bump in
  bump ();
  Domain.join d;
  !hits
