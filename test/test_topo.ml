(* Multi-cell topology: spec grammar round-trip (old and new forms,
   including fault plans), zero-mobility byte-identity against independent
   single-cell runs, handoff carry preservation within the Section 5 /
   Section 7 bounds, jobs-invariance of the sharded lockstep loop (clean
   and under chaos), graceful degradation under fault plans, and the
   Topo_journal kill/resume protocol. *)

module Spec = Wfs_runner.Spec
module Exec = Wfs_runner.Exec
module Topology = Wfs_topo.Topology
module Cell = Wfs_topo.Cell
module Topo_journal = Wfs_topo.Topo_journal
module Chaos = Wfs_chaos.Chaos
module M = Wfs_core.Metrics
module Sched = Wfs_core.Wireless_sched
module Registry = Wfs_core.Registry
module Json = Wfs_util.Json
module Error = Wfs_util.Error

(* --- Spec grammar: qcheck round-trip over old and new forms --- *)

let scenario_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map2
            (fun n sum -> Spec.example ?sum n)
            (1 -- 2)
            (opt (float_range 0.1 1.0)) );
        (3, map (fun n -> Spec.example n) (3 -- 6));
        ( 1,
          map
            (fun p -> Spec.file p)
            (oneofl
               [ "examples/cell.scenario"; "a/b.scenario"; "deep/nested path.scn" ])
        );
      ])

let faults_gen =
  QCheck.Gen.(
    map3
      (fun (crash, recover) ((lose, corrupt), (blackout, blackout_len))
           (exn, (persist, budget)) ->
        Spec.faults ~crash ~recover ~lose ~corrupt ~blackout ~blackout_len
          ~exn ~persist ~budget ())
      (pair (float_range 0. 1.) (float_range 0. 1.))
      (pair
         (pair (float_range 0. 1.) (float_range 0. 1.))
         (pair (float_range 0. 1.) (1 -- 500)))
      (pair (float_range 0. 1.) (pair (float_range 0. 1.) (0 -- 8))))

let topo_gen =
  QCheck.Gen.(
    map2
      (fun (cells, (mobility, epoch)) faults ->
        let tp = Spec.topo ~cells ~mobility ~epoch in
        match faults with Some p -> Spec.with_faults p tp | None -> tp)
      (pair (1 -- 64) (pair (float_range 0. 1.) (1 -- 10_000)))
      (opt faults_gen))

let spec_gen =
  QCheck.Gen.(
    map
      (fun ((scenario, sched), ((seed, horizon), topo)) ->
        { Spec.scenario; sched; seed; horizon; topo })
      (pair
         (pair scenario_gen
            (oneofl [ "WPS"; "SwapA-P"; "IWFQ-I"; "CIF-Q"; "CSDPS" ]))
         (pair (pair (0 -- 1_000_000) (1 -- 1_000_000)) (opt topo_gen))))

let prop_spec_roundtrip =
  QCheck.Test.make
    ~name:"spec string form round-trips, with and without a topology clause"
    ~count:500 (QCheck.make spec_gen) (fun sp ->
      match Spec.of_string (Spec.to_string sp) with
      | Ok sp' -> Spec.equal sp sp'
      | Error _ -> false)

let test_old_grammar_unchanged () =
  (* A pre-topology spec string parses to topo = None and re-serializes
     without a 5th field. *)
  let s = "example:1?sum=0.5 | WPS | seed=7 | horizon=50000" in
  match Spec.of_string s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok sp ->
      Alcotest.(check bool) "no topo" true (sp.Spec.topo = None);
      Alcotest.(check string) "round-trip" s (Spec.to_string sp)

let test_topo_clause_parses () =
  let s = "example:1 | WPS | seed=42 | horizon=20000 | cells=4,mobility=0.01,epoch=500" in
  match Spec.of_string s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok sp -> (
      match sp.Spec.topo with
      | None -> Alcotest.fail "expected a topology clause"
      | Some tp ->
          Alcotest.(check int) "cells" 4 tp.Spec.cells;
          Alcotest.(check (float 0.)) "mobility" 0.01 tp.Spec.mobility;
          Alcotest.(check int) "epoch" 500 tp.Spec.epoch;
          Alcotest.(check string) "round-trip" s (Spec.to_string sp))

let test_topo_clause_rejects () =
  let bad =
    [
      "example:1 | WPS | seed=1 | horizon=10 | cells=0,mobility=0,epoch=5";
      "example:1 | WPS | seed=1 | horizon=10 | cells=2,mobility=1.5,epoch=5";
      "example:1 | WPS | seed=1 | horizon=10 | cells=2,epoch=5,mobility=0";
      "example:1 | WPS | seed=1 | horizon=10 | bogus";
    ]
  in
  List.iter
    (fun s ->
      match Spec.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed clause: %s" s
      | Error _ -> ())
    bad

let test_faults_clause_parses () =
  let s =
    "example:1 | WPS | seed=42 | horizon=20000 | \
     cells=4,mobility=0.01,epoch=500,faults=crash:0.01;recover:0.5;lose:0.05;corrupt:0.05;blackout:0.02x250;exn:0.01;persist:0.25;budget:1"
  in
  match Spec.of_string s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok sp -> (
      match sp.Spec.topo with
      | None -> Alcotest.fail "expected a topology clause"
      | Some tp -> (
          match tp.Spec.faults with
          | None -> Alcotest.fail "expected a fault plan"
          | Some p ->
              Alcotest.(check (float 0.)) "crash" 0.01 p.Spec.crash;
              Alcotest.(check (float 0.)) "recover" 0.5 p.Spec.recover;
              Alcotest.(check int) "blackout_len" 250 p.Spec.blackout_len;
              Alcotest.(check int) "budget" 1 p.Spec.budget;
              Alcotest.(check bool) "active" true (Spec.faults_active p);
              Alcotest.(check string) "round-trip" s (Spec.to_string sp)))

let test_faults_clause_rejects () =
  let base =
    "example:1 | WPS | seed=1 | horizon=10 | cells=2,mobility=0,epoch=5,faults="
  in
  List.iter
    (fun plan ->
      match Spec.of_string (base ^ plan) with
      | Ok _ -> Alcotest.failf "accepted malformed fault plan: %s" plan
      | Error _ -> ())
    [
      "crash:0.5";
      "crash:2;recover:0;lose:0;corrupt:0;blackout:0x1;exn:0;persist:0;budget:0";
      "recover:0;crash:0;lose:0;corrupt:0;blackout:0x1;exn:0;persist:0;budget:0";
      "crash:0;recover:0;lose:0;corrupt:0;blackout:0x0;exn:0;persist:0;budget:0";
      "crash:0;recover:0;lose:0;corrupt:0;blackout:0x1;exn:0;persist:0;budget:-1";
    ]

let test_inert_plan_is_inactive () =
  Alcotest.(check bool) "all-zero plan is inert" false
    (Spec.faults_active (Spec.faults ()));
  Alcotest.(check bool) "recover alone does not activate" false
    (Spec.faults_active (Spec.faults ~recover:1.0 ~budget:3 ()));
  Alcotest.(check bool) "any injection rate activates" true
    (Spec.faults_active (Spec.faults ~lose:0.01 ()))

(* --- Zero-mobility byte-identity: the lockstep anchor --- *)

let check_flow_equal ~msg solo ~flow m ~gid =
  let pairs =
    [
      ("arrivals", float_of_int (M.arrivals solo ~flow), float_of_int (M.arrivals m ~flow:gid));
      ("delivered", float_of_int (M.delivered solo ~flow), float_of_int (M.delivered m ~flow:gid));
      ("dropped", float_of_int (M.dropped solo ~flow), float_of_int (M.dropped m ~flow:gid));
      ("mean", M.mean_delay solo ~flow, M.mean_delay m ~flow:gid);
      ("max", M.max_delay solo ~flow, M.max_delay m ~flow:gid);
      ("stddev", M.stddev_delay solo ~flow, M.stddev_delay m ~flow:gid);
    ]
  in
  List.for_all
    (fun (what, a, b) ->
      let ok = a = b in
      if not ok then
        Printf.eprintf "%s: flow %d gid %d %s: %g <> %g\n" msg flow gid what a b;
      ok)
    pairs

let prop_zero_mobility_identity =
  QCheck.Test.make
    ~name:
      "zero-mobility 2-cell topology is identical to two independent \
       single-cell runs"
    ~count:6
    (QCheck.make
       QCheck.Gen.(
         pair
           (oneofl [ "SwapA-P"; "CIF-Q-P"; "WRR-I" ])
           (pair (0 -- 1000) (50 -- 400))))
    (fun (sched, (seed, epoch)) ->
      let horizon = 2_000 in
      let spec =
        Spec.make ~seed ~horizon
          ~topo:(Spec.topo ~cells:2 ~mobility:0. ~epoch)
          ~sched (Spec.example 1)
      in
      let t = Topology.of_spec spec in
      Topology.run ~jobs:2 t;
      let m = Topology.metrics t in
      let base = { spec with Spec.topo = None } in
      List.for_all
        (fun cell ->
          let solo =
            Exec.run (Spec.with_seed (Topology.cell_seed ~seed ~cell) base)
          in
          let k = M.n_flows solo in
          List.for_all
            (fun f ->
              check_flow_equal ~msg:"zero-mobility" solo ~flow:f m
                ~gid:((cell * k) + f))
            (List.init k Fun.id))
        [ 0; 1 ])

(* --- Forced handoffs: carry survives within the paper's bounds --- *)

let test_full_mobility_completes () =
  (* mobility 1.0 with 2 cells: every flow hands off at every barrier.
     The ledger check in Cell.rebuild validates each import; after an odd
     number of barriers every flow sits in the opposite cell. *)
  let spec =
    Spec.make ~seed:3 ~horizon:2_000
      ~topo:(Spec.topo ~cells:2 ~mobility:1.0 ~epoch:100)
      ~sched:"SwapA-P" (Spec.example 1)
  in
  let t = Topology.of_spec spec in
  Topology.run t;
  let barriers = 19 in
  Alcotest.(check int) "handoffs" (4 * barriers) (Topology.handoffs t);
  Alcotest.(check (array int)) "all flows swapped cells" [| 1; 1; 0; 0 |]
    (Topology.homes t)

let test_wps_credit_carry () =
  (* Export out of a live WPS cell: Section 7 bounds the carried credit to
     the paper's default [-4, 4]; re-admitting into another cell with the
     same caps must accept it verbatim (carried = accepted, nothing
     truncated), and a re-export returns the same balance. *)
  let entry = Registry.get "SwapA-P" in
  let setups = Wfs_core.Presets.example1 ~seed:5 () in
  let members =
    Array.to_list (Array.mapi (fun i s -> { Cell.gid = i; setup = s }) setups)
  in
  let c0 = Cell.create ~id:0 ~sched:entry ~horizon:4_000 ~n_total:2 members in
  Cell.advance c0 ~until:1_500;
  let parcels = Cell.dissolve c0 in
  List.iter
    (fun p ->
      let c = p.Cell.carry.Sched.credit in
      Alcotest.(check bool) "credit within Section 7 caps" true
        (c >= -4 && c <= 4);
      Alcotest.(check (float 0.)) "wps carries no lag" 0. p.Cell.carry.Sched.lag)
    parcels;
  let c1 = Cell.create ~id:1 ~sched:entry ~horizon:4_000 ~n_total:2 [] in
  let moved = List.map (fun p -> { p with Cell.moved = true }) parcels in
  ignore (Cell.rebuild c1 ~slot:1_500 moved);
  let parcels' = Cell.dissolve c1 in
  List.iter2
    (fun p p' ->
      Alcotest.(check int) "credit survives the handoff"
        p.Cell.carry.Sched.credit p'.Cell.carry.Sched.credit)
    parcels parcels'

let test_wps_import_clamps () =
  (* An over-cap carry is clamped, and the accepted value is what import
     reports (carried = accepted + truncated). *)
  let flows =
    Array.init 2 (fun id -> Wfs_core.Params.flow ~id ~weight:1. ())
  in
  let entry = Registry.get "SwapA-P" in
  let sched =
    entry.Registry.make ~credit_limit:4 ~debit_limit:4 flows
  in
  let h = Option.get sched.Sched.handoff in
  let acc = h.Sched.import ~flow:0 { Sched.lag = 0.; credit = 9 } in
  Alcotest.(check int) "credit clamped to +cap" 4 acc.Sched.credit;
  let acc' = h.Sched.import ~flow:1 { Sched.lag = 0.; credit = -9 } in
  Alcotest.(check int) "debit clamped to -cap" (-4) acc'.Sched.credit;
  Alcotest.(check int) "export returns the accepted balance" 4
    (h.Sched.export ~flow:0).Sched.credit

let test_cifq_lag_carry () =
  (* CIF-Q rounds the virtual-time-denominated lag to its integral
     accounting; export then returns exactly what was accepted. *)
  let flows =
    Array.init 2 (fun id -> Wfs_core.Params.flow ~id ~weight:1. ())
  in
  let entry = Registry.get "CIF-Q-P" in
  let sched = entry.Registry.make flows in
  let h = Option.get sched.Sched.handoff in
  let acc = h.Sched.import ~flow:0 { Sched.lag = 2.4; credit = 0 } in
  Alcotest.(check (float 0.)) "lag rounds to integral" 2. acc.Sched.lag;
  Alcotest.(check (float 0.)) "re-export returns the accepted lag" 2.
    (h.Sched.export ~flow:0).Sched.lag;
  Alcotest.(check int) "cifq carries no credit" 0 acc.Sched.credit

(* --- Sharding: jobs-invariance of a mobile multi-cell run --- *)

let test_jobs_invariance () =
  let spec =
    Spec.of_string_exn
      "example:2 | WPS | seed=11 | horizon=6000 | cells=4,mobility=0.05,epoch=200"
  in
  let run jobs =
    let t = Topology.of_spec spec in
    Topology.run ~jobs t;
    ( Wfs_util.Json.to_string (M.to_json (Topology.metrics t)),
      Topology.homes t,
      Topology.handoffs t,
      Wfs_util.Json.to_string
        (Wfs_obs.Instruments.to_json (Topology.instruments t)) )
  in
  let m1, h1, n1, i1 = run 1 in
  let m2, h2, n2, i2 = run 2 in
  let m4, h4, n4, i4 = run 4 in
  Alcotest.(check string) "metrics jobs 1=2" m1 m2;
  Alcotest.(check string) "metrics jobs 2=4" m2 m4;
  Alcotest.(check (array int)) "homes jobs 1=2" h1 h2;
  Alcotest.(check (array int)) "homes jobs 2=4" h2 h4;
  Alcotest.(check int) "handoffs jobs 1=2" n1 n2;
  Alcotest.(check int) "handoffs jobs 2=4" n2 n4;
  Alcotest.(check string) "instruments jobs 1=2" i1 i2;
  Alcotest.(check string) "instruments jobs 2=4" i2 i4

(* --- Chaos: degradation, jobs-invariance, budget, inert identity --- *)

let faulted_spec_str =
  "example:2 | SwapA-P | seed=11 | horizon=6000 | \
   cells=4,mobility=0.05,epoch=200,faults=crash:0.1;recover:0.5;lose:0.2;corrupt:0.2;blackout:0.1x80;exn:0.1;persist:0.3;budget:4"

let run_faulted ~jobs spec =
  let t = Topology.of_spec spec in
  Topology.run ~jobs t;
  t

let test_chaos_degradation () =
  let t = run_faulted ~jobs:2 (Spec.of_string_exn faulted_spec_str) in
  Alcotest.(check bool) "chaos engaged" true (Topology.chaos_active t);
  let timeline = Topology.fault_timeline t in
  Alcotest.(check bool) "faults fired" true (timeline <> []);
  let crashes =
    List.length
      (List.filter
         (fun ev ->
           match ev.Chaos.fault with Chaos.Cell_crash _ -> true | _ -> false)
         timeline)
  in
  Alcotest.(check bool) "at least one cell crashed" true (crashes >= 1);
  (* Degradation, not collapse: the run finished, every flow has a home,
     and the global metrics row set is intact. *)
  Array.iter
    (fun home ->
      Alcotest.(check bool) "home in range" true (home >= 0 && home < 4))
    (Topology.homes t);
  Alcotest.(check int) "all flows accounted" (Topology.n_flows t)
    (M.n_flows (Topology.metrics t));
  match Topology.chaos_instruments t with
  | None -> Alcotest.fail "active plan must expose chaos instruments"
  | Some reg ->
      Alcotest.(check bool) "chaos registry populated" true
        (Wfs_obs.Instruments.size reg > 0)

let test_chaos_jobs_invariance () =
  let spec = Spec.of_string_exn faulted_spec_str in
  let run jobs =
    let t = run_faulted ~jobs spec in
    ( Json.to_string (M.to_json (Topology.metrics t)),
      Topology.homes t,
      Topology.handoffs t,
      Json.to_string
        (Wfs_obs.Instruments.to_json (Topology.instruments t)),
      Json.to_string
        (Wfs_obs.Instruments.to_json
           (Option.get (Topology.chaos_instruments t))),
      Json.to_string (Json.Arr (List.map Chaos.event_to_json (Topology.fault_timeline t))) )
  in
  let m1, h1, n1, i1, c1, t1 = run 1 in
  let m2, h2, n2, i2, c2, t2 = run 2 in
  let m4, h4, n4, i4, c4, t4 = run 4 in
  Alcotest.(check string) "metrics jobs 1=2" m1 m2;
  Alcotest.(check string) "metrics jobs 2=4" m2 m4;
  Alcotest.(check (array int)) "homes jobs 1=2" h1 h2;
  Alcotest.(check (array int)) "homes jobs 2=4" h2 h4;
  Alcotest.(check int) "handoffs jobs 1=2" n1 n2;
  Alcotest.(check int) "handoffs jobs 2=4" n2 n4;
  Alcotest.(check string) "instruments jobs 1=2" i1 i2;
  Alcotest.(check string) "instruments jobs 2=4" i2 i4;
  Alcotest.(check string) "chaos instruments jobs 1=2" c1 c2;
  Alcotest.(check string) "chaos instruments jobs 2=4" c2 c4;
  Alcotest.(check string) "fault timeline jobs 1=2" t1 t2;
  Alcotest.(check string) "fault timeline jobs 2=4" t2 t4

let test_chaos_budget_refuses () =
  let spec =
    Spec.of_string_exn
      "example:1 | SwapA-P | seed=5 | horizon=1000 | \
       cells=2,mobility=0,epoch=100,faults=crash:0;recover:0;lose:0;corrupt:0;blackout:0x1;exn:1;persist:1;budget:0"
  in
  let t = Topology.of_spec spec in
  match Topology.run ~jobs:2 t with
  | () -> Alcotest.fail "persistent faults over budget must refuse the run"
  | exception Error.Error e ->
      Alcotest.(check bool) "budget breach is sim-fault" true
        (e.Error.kind = Error.Sim_fault);
      Alcotest.(check string) "raised by the topology" "Wfs_topo.Topology"
        e.Error.who;
      Alcotest.(check bool) "fault timeline attached" true
        (List.mem_assoc "chaos-timeline" e.Error.context)

let test_inert_plan_identity () =
  let base =
    Spec.of_string_exn
      "example:2 | WPS | seed=11 | horizon=4000 | cells=3,mobility=0.05,epoch=200"
  in
  let inert =
    let tp = Option.get base.Spec.topo in
    Spec.with_topo (Spec.with_faults (Spec.faults ~recover:0.5 ~budget:2 ()) tp) base
  in
  let run spec =
    let t = Topology.of_spec spec in
    Topology.run ~jobs:2 t;
    ( Json.to_string (M.to_json (Topology.metrics t)),
      Json.to_string
        (Wfs_obs.Instruments.to_json (Topology.instruments t)),
      Topology.chaos_active t )
  in
  let m0, i0, a0 = run base in
  let m1, i1, a1 = run inert in
  Alcotest.(check bool) "no plan: chaos off" false a0;
  Alcotest.(check bool) "inert plan: chaos off" false a1;
  Alcotest.(check string) "metrics identical" m0 m1;
  Alcotest.(check string) "instruments identical" i0 i1

(* --- Topo_journal: schema, torn tail, corruption, kill/resume --- *)

let with_temp_journal f =
  let path = Filename.temp_file "wfs_topo" ".journal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let tj_params = [ ("credit", Json.Int 4); ("invariants", Json.Bool false) ]

let test_topo_journal_roundtrip () =
  with_temp_journal (fun path ->
      let w = Topo_journal.create ~path ~params:tj_params in
      Topo_journal.append_snapshot w ~spec:"s1" ~slot:100 (Json.Int 1);
      Topo_journal.append_snapshot w ~spec:"s1" ~slot:200 (Json.Int 2);
      Topo_journal.append_result w ~spec:"s1" (Json.Str "done");
      Topo_journal.close w;
      let w = Topo_journal.reopen ~path in
      Topo_journal.append_snapshot w ~spec:"s2" ~slot:100 (Json.Int 3);
      Topo_journal.close w;
      match Topo_journal.load ~path with
      | Error e -> Alcotest.failf "load failed: %s" (Error.to_string e)
      | Ok c ->
          Alcotest.(check bool) "params survive" true (c.Topo_journal.params = tj_params);
          Alcotest.(check bool) "snapshot found" true
            (Topo_journal.find_snapshot c ~spec:"s1" ~slot:200 = Some (Json.Int 2));
          Alcotest.(check bool) "result found" true
            (Topo_journal.find_result c ~spec:"s1" = Some (Json.Str "done"));
          Alcotest.(check bool) "interrupted spec has no result" true
            (Topo_journal.find_result c ~spec:"s2" = None);
          Alcotest.(check bool) "second spec's snapshot found" true
            (Topo_journal.find_snapshot c ~spec:"s2" ~slot:100 = Some (Json.Int 3)))

let test_topo_journal_torn_tail () =
  with_temp_journal (fun path ->
      let w = Topo_journal.create ~path ~params:tj_params in
      Topo_journal.append_snapshot w ~spec:"s" ~slot:100 (Json.Int 1);
      Topo_journal.close w;
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"key\":\"s #epoch:200\",\"val";
      close_out oc;
      match Topo_journal.load ~path with
      | Error e ->
          Alcotest.failf "torn tail must load: %s" (Error.to_string e)
      | Ok c ->
          Alcotest.(check bool) "only the torn barrier is lost" true
            (Topo_journal.find_snapshot c ~spec:"s" ~slot:200 = None);
          Alcotest.(check bool) "earlier barrier survives" true
            (Topo_journal.find_snapshot c ~spec:"s" ~slot:100 = Some (Json.Int 1)))

let test_topo_journal_corruption_rejected () =
  with_temp_journal (fun path ->
      let w = Topo_journal.create ~path ~params:tj_params in
      Topo_journal.append_snapshot w ~spec:"s" ~slot:100 (Json.Int 1);
      Topo_journal.close w;
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "garbage\n{\"key\":\"s #epoch:200\",\"value\":2}\n";
      close_out oc;
      match Topo_journal.load ~path with
      | Ok _ -> Alcotest.fail "mid-file corruption accepted"
      | Error e ->
          Alcotest.(check bool) "corruption is bad-spec" true
            (e.Error.kind = Error.Bad_spec))

let test_topo_journal_rejects_foreign_schema () =
  with_temp_journal (fun path ->
      (* A generic bench journal (default schema) must be refused. *)
      let w = Wfs_runner.Journal.create ~path ~params:tj_params () in
      Wfs_runner.Journal.append w ~key:"s #epoch:100" ~value:(Json.Int 1);
      Wfs_runner.Journal.close w;
      match Topo_journal.load ~path with
      | Ok _ -> Alcotest.fail "foreign schema accepted"
      | Error e ->
          Alcotest.(check bool) "schema mismatch is bad-spec" true
            (e.Error.kind = Error.Bad_spec))

let test_topo_journal_rejects_untagged_key () =
  with_temp_journal (fun path ->
      let w =
        Wfs_runner.Journal.create ~schema:Topo_journal.schema ~path
          ~params:tj_params ()
      in
      Wfs_runner.Journal.append w ~key:"no tag here" ~value:(Json.Int 1);
      Wfs_runner.Journal.close w;
      match Topo_journal.load ~path with
      | Ok _ -> Alcotest.fail "untagged key accepted"
      | Error e ->
          Alcotest.(check string) "typed by the loader" "Topo_journal.load"
            e.Error.who)

(* Kill-at-an-arbitrary-epoch, then resume: the resumed journal must be
   byte-identical to an uninterrupted run's, with every already-journaled
   barrier verified against the replay rather than trusted. *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

exception Killed

let journal_run ~path ~jobs ?kill_after spec =
  let key = Spec.to_string spec in
  let t = Topology.of_spec spec in
  let w = Topo_journal.create ~path ~params:tj_params in
  let barriers = ref 0 in
  let killed =
    match
      Topology.run ~jobs
        ~on_barrier:(fun ~slot ->
          Topo_journal.append_snapshot w ~spec:key ~slot
            (Topology.snapshot t ~slot);
          incr barriers;
          match kill_after with
          | Some k when !barriers >= k -> raise Killed
          | _ -> ())
        t
    with
    | () -> false
    | exception Killed -> true
  in
  if not killed then
    Topo_journal.append_result w ~spec:key (M.to_json (Topology.metrics t));
  Topo_journal.close w;
  killed

let resume_run ~path ~jobs spec =
  let key = Spec.to_string spec in
  let contents =
    match Topo_journal.load ~path with
    | Ok c -> c
    | Error e -> Alcotest.failf "resume load failed: %s" (Error.to_string e)
  in
  let w = Topo_journal.reopen ~path in
  let t = Topology.of_spec spec in
  Topology.run ~jobs
    ~on_barrier:(fun ~slot ->
      let snap = Topology.snapshot t ~slot in
      match Topo_journal.find_snapshot contents ~spec:key ~slot with
      | Some j ->
          Alcotest.(check string)
            (Printf.sprintf "journaled barrier %d verified" slot)
            (Json.to_string j) (Json.to_string snap)
      | None -> Topo_journal.append_snapshot w ~spec:key ~slot snap)
    t;
  Topo_journal.append_result w ~spec:key (M.to_json (Topology.metrics t));
  Topo_journal.close w

let prop_kill_resume_identity =
  QCheck.Test.make
    ~name:
      "a run killed at any epoch resumes to a byte-identical journal \
       (faulted, cross-jobs)"
    ~count:5
    (QCheck.make QCheck.Gen.(pair (1 -- 28) (oneofl [ 1; 2; 4 ])))
    (fun (kill_after, resume_jobs) ->
      let spec = Spec.of_string_exn faulted_spec_str in
      with_temp_journal (fun full_path ->
          with_temp_journal (fun killed_path ->
              ignore (journal_run ~path:full_path ~jobs:2 spec);
              let killed =
                journal_run ~path:killed_path ~jobs:2 ~kill_after spec
              in
              (* 29 barriers in a 6000-slot horizon at epoch 200; every
                 generated kill point interrupts the run. *)
              if not killed then
                Alcotest.failf "kill point %d did not interrupt" kill_after;
              resume_run ~path:killed_path ~jobs:resume_jobs spec;
              let a = read_file full_path and b = read_file killed_path in
              if not (String.equal a b) then
                QCheck.Test.fail_reportf
                  "resumed journal diverges (killed after %d barriers, \
                   resumed with jobs=%d)"
                  kill_after resume_jobs;
              true)))

(* --- Dispatch guards --- *)

let test_exec_rejects_topo () =
  let spec =
    Spec.make ~seed:1 ~horizon:100
      ~topo:(Spec.topo ~cells:2 ~mobility:0. ~epoch:10)
      ~sched:"WPS" (Spec.example 1)
  in
  Alcotest.check_raises "Exec.run refuses topology specs"
    (Invalid_argument
       "Exec.run: spec has a topology clause; run it through \
        Wfs_topo.Topology") (fun () -> ignore (Exec.run spec))

let test_of_spec_requires_topo () =
  let spec = Spec.make ~seed:1 ~horizon:100 ~sched:"WPS" (Spec.example 1) in
  Alcotest.check_raises "Topology.of_spec needs a topology clause"
    (Invalid_argument "Topology.of_spec: spec has no topology clause")
    (fun () -> ignore (Topology.of_spec spec))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_spec_roundtrip;
    Alcotest.test_case "old spec grammar parses unchanged" `Quick
      test_old_grammar_unchanged;
    Alcotest.test_case "topology clause parses and round-trips" `Quick
      test_topo_clause_parses;
    Alcotest.test_case "malformed topology clauses are rejected" `Quick
      test_topo_clause_rejects;
    Alcotest.test_case "fault plan clause parses and round-trips" `Quick
      test_faults_clause_parses;
    Alcotest.test_case "malformed fault plans are rejected" `Quick
      test_faults_clause_rejects;
    Alcotest.test_case "inert plans are inactive" `Quick
      test_inert_plan_is_inactive;
    QCheck_alcotest.to_alcotest prop_zero_mobility_identity;
    Alcotest.test_case "full-mobility run completes with exact handoff count"
      `Quick test_full_mobility_completes;
    Alcotest.test_case "wps credit survives a forced handoff" `Quick
      test_wps_credit_carry;
    Alcotest.test_case "wps import clamps to the Section 7 caps" `Quick
      test_wps_import_clamps;
    Alcotest.test_case "cifq lag carry rounds and re-exports" `Quick
      test_cifq_lag_carry;
    Alcotest.test_case "mobile multi-cell run is jobs-invariant" `Quick
      test_jobs_invariance;
    Alcotest.test_case "faulted run degrades without collapsing" `Quick
      test_chaos_degradation;
    Alcotest.test_case "faulted multi-cell run is jobs-invariant" `Slow
      test_chaos_jobs_invariance;
    Alcotest.test_case "worker faults over budget refuse the run" `Quick
      test_chaos_budget_refuses;
    Alcotest.test_case "inert fault plan is byte-identical to no plan" `Quick
      test_inert_plan_identity;
    Alcotest.test_case "topo journal round-trip" `Quick
      test_topo_journal_roundtrip;
    Alcotest.test_case "topo journal torn tail dropped" `Quick
      test_topo_journal_torn_tail;
    Alcotest.test_case "topo journal mid-file corruption rejected" `Quick
      test_topo_journal_corruption_rejected;
    Alcotest.test_case "topo journal rejects a foreign schema" `Quick
      test_topo_journal_rejects_foreign_schema;
    Alcotest.test_case "topo journal rejects untagged keys" `Quick
      test_topo_journal_rejects_untagged_key;
    QCheck_alcotest.to_alcotest prop_kill_resume_identity;
    Alcotest.test_case "exec rejects topology specs" `Quick
      test_exec_rejects_topo;
    Alcotest.test_case "of_spec requires a topology clause" `Quick
      test_of_spec_requires_topo;
  ]
