(* Multi-cell topology: spec grammar round-trip (old and new forms),
   zero-mobility byte-identity against independent single-cell runs,
   handoff carry preservation within the Section 5 / Section 7 bounds, and
   jobs-invariance of the sharded lockstep loop. *)

module Spec = Wfs_runner.Spec
module Exec = Wfs_runner.Exec
module Topology = Wfs_topo.Topology
module Cell = Wfs_topo.Cell
module M = Wfs_core.Metrics
module Sched = Wfs_core.Wireless_sched
module Registry = Wfs_core.Registry

(* --- Spec grammar: qcheck round-trip over old and new forms --- *)

let scenario_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map2
            (fun n sum -> Spec.example ?sum n)
            (1 -- 2)
            (opt (float_range 0.1 1.0)) );
        (3, map (fun n -> Spec.example n) (3 -- 6));
        ( 1,
          map
            (fun p -> Spec.file p)
            (oneofl
               [ "examples/cell.scenario"; "a/b.scenario"; "deep/nested path.scn" ])
        );
      ])

let topo_gen =
  QCheck.Gen.(
    map3
      (fun cells mobility epoch -> Spec.topo ~cells ~mobility ~epoch)
      (1 -- 64) (float_range 0. 1.) (1 -- 10_000))

let spec_gen =
  QCheck.Gen.(
    map
      (fun ((scenario, sched), ((seed, horizon), topo)) ->
        { Spec.scenario; sched; seed; horizon; topo })
      (pair
         (pair scenario_gen
            (oneofl [ "WPS"; "SwapA-P"; "IWFQ-I"; "CIF-Q"; "CSDPS" ]))
         (pair (pair (0 -- 1_000_000) (1 -- 1_000_000)) (opt topo_gen))))

let prop_spec_roundtrip =
  QCheck.Test.make
    ~name:"spec string form round-trips, with and without a topology clause"
    ~count:500 (QCheck.make spec_gen) (fun sp ->
      match Spec.of_string (Spec.to_string sp) with
      | Ok sp' -> Spec.equal sp sp'
      | Error _ -> false)

let test_old_grammar_unchanged () =
  (* A pre-topology spec string parses to topo = None and re-serializes
     without a 5th field. *)
  let s = "example:1?sum=0.5 | WPS | seed=7 | horizon=50000" in
  match Spec.of_string s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok sp ->
      Alcotest.(check bool) "no topo" true (sp.Spec.topo = None);
      Alcotest.(check string) "round-trip" s (Spec.to_string sp)

let test_topo_clause_parses () =
  let s = "example:1 | WPS | seed=42 | horizon=20000 | cells=4,mobility=0.01,epoch=500" in
  match Spec.of_string s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok sp -> (
      match sp.Spec.topo with
      | None -> Alcotest.fail "expected a topology clause"
      | Some tp ->
          Alcotest.(check int) "cells" 4 tp.Spec.cells;
          Alcotest.(check (float 0.)) "mobility" 0.01 tp.Spec.mobility;
          Alcotest.(check int) "epoch" 500 tp.Spec.epoch;
          Alcotest.(check string) "round-trip" s (Spec.to_string sp))

let test_topo_clause_rejects () =
  let bad =
    [
      "example:1 | WPS | seed=1 | horizon=10 | cells=0,mobility=0,epoch=5";
      "example:1 | WPS | seed=1 | horizon=10 | cells=2,mobility=1.5,epoch=5";
      "example:1 | WPS | seed=1 | horizon=10 | cells=2,epoch=5,mobility=0";
      "example:1 | WPS | seed=1 | horizon=10 | bogus";
    ]
  in
  List.iter
    (fun s ->
      match Spec.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed clause: %s" s
      | Error _ -> ())
    bad

(* --- Zero-mobility byte-identity: the lockstep anchor --- *)

let check_flow_equal ~msg solo ~flow m ~gid =
  let pairs =
    [
      ("arrivals", float_of_int (M.arrivals solo ~flow), float_of_int (M.arrivals m ~flow:gid));
      ("delivered", float_of_int (M.delivered solo ~flow), float_of_int (M.delivered m ~flow:gid));
      ("dropped", float_of_int (M.dropped solo ~flow), float_of_int (M.dropped m ~flow:gid));
      ("mean", M.mean_delay solo ~flow, M.mean_delay m ~flow:gid);
      ("max", M.max_delay solo ~flow, M.max_delay m ~flow:gid);
      ("stddev", M.stddev_delay solo ~flow, M.stddev_delay m ~flow:gid);
    ]
  in
  List.for_all
    (fun (what, a, b) ->
      let ok = a = b in
      if not ok then
        Printf.eprintf "%s: flow %d gid %d %s: %g <> %g\n" msg flow gid what a b;
      ok)
    pairs

let prop_zero_mobility_identity =
  QCheck.Test.make
    ~name:
      "zero-mobility 2-cell topology is identical to two independent \
       single-cell runs"
    ~count:6
    (QCheck.make
       QCheck.Gen.(
         pair
           (oneofl [ "SwapA-P"; "CIF-Q-P"; "WRR-I" ])
           (pair (0 -- 1000) (50 -- 400))))
    (fun (sched, (seed, epoch)) ->
      let horizon = 2_000 in
      let spec =
        Spec.make ~seed ~horizon
          ~topo:(Spec.topo ~cells:2 ~mobility:0. ~epoch)
          ~sched (Spec.example 1)
      in
      let t = Topology.of_spec spec in
      Topology.run ~jobs:2 t;
      let m = Topology.metrics t in
      let base = { spec with Spec.topo = None } in
      List.for_all
        (fun cell ->
          let solo =
            Exec.run (Spec.with_seed (Topology.cell_seed ~seed ~cell) base)
          in
          let k = M.n_flows solo in
          List.for_all
            (fun f ->
              check_flow_equal ~msg:"zero-mobility" solo ~flow:f m
                ~gid:((cell * k) + f))
            (List.init k Fun.id))
        [ 0; 1 ])

(* --- Forced handoffs: carry survives within the paper's bounds --- *)

let test_full_mobility_completes () =
  (* mobility 1.0 with 2 cells: every flow hands off at every barrier.
     The ledger check in Cell.rebuild validates each import; after an odd
     number of barriers every flow sits in the opposite cell. *)
  let spec =
    Spec.make ~seed:3 ~horizon:2_000
      ~topo:(Spec.topo ~cells:2 ~mobility:1.0 ~epoch:100)
      ~sched:"SwapA-P" (Spec.example 1)
  in
  let t = Topology.of_spec spec in
  Topology.run t;
  let barriers = 19 in
  Alcotest.(check int) "handoffs" (4 * barriers) (Topology.handoffs t);
  Alcotest.(check (array int)) "all flows swapped cells" [| 1; 1; 0; 0 |]
    (Topology.homes t)

let test_wps_credit_carry () =
  (* Export out of a live WPS cell: Section 7 bounds the carried credit to
     the paper's default [-4, 4]; re-admitting into another cell with the
     same caps must accept it verbatim (carried = accepted, nothing
     truncated), and a re-export returns the same balance. *)
  let entry = Registry.get "SwapA-P" in
  let setups = Wfs_core.Presets.example1 ~seed:5 () in
  let members =
    Array.to_list (Array.mapi (fun i s -> { Cell.gid = i; setup = s }) setups)
  in
  let c0 = Cell.create ~id:0 ~sched:entry ~horizon:4_000 ~n_total:2 members in
  Cell.advance c0 ~until:1_500;
  let parcels = Cell.dissolve c0 in
  List.iter
    (fun p ->
      let c = p.Cell.carry.Sched.credit in
      Alcotest.(check bool) "credit within Section 7 caps" true
        (c >= -4 && c <= 4);
      Alcotest.(check (float 0.)) "wps carries no lag" 0. p.Cell.carry.Sched.lag)
    parcels;
  let c1 = Cell.create ~id:1 ~sched:entry ~horizon:4_000 ~n_total:2 [] in
  let moved = List.map (fun p -> { p with Cell.moved = true }) parcels in
  ignore (Cell.rebuild c1 ~slot:1_500 moved);
  let parcels' = Cell.dissolve c1 in
  List.iter2
    (fun p p' ->
      Alcotest.(check int) "credit survives the handoff"
        p.Cell.carry.Sched.credit p'.Cell.carry.Sched.credit)
    parcels parcels'

let test_wps_import_clamps () =
  (* An over-cap carry is clamped, and the accepted value is what import
     reports (carried = accepted + truncated). *)
  let flows =
    Array.init 2 (fun id -> Wfs_core.Params.flow ~id ~weight:1. ())
  in
  let entry = Registry.get "SwapA-P" in
  let sched =
    entry.Registry.make ~credit_limit:4 ~debit_limit:4 flows
  in
  let h = Option.get sched.Sched.handoff in
  let acc = h.Sched.import ~flow:0 { Sched.lag = 0.; credit = 9 } in
  Alcotest.(check int) "credit clamped to +cap" 4 acc.Sched.credit;
  let acc' = h.Sched.import ~flow:1 { Sched.lag = 0.; credit = -9 } in
  Alcotest.(check int) "debit clamped to -cap" (-4) acc'.Sched.credit;
  Alcotest.(check int) "export returns the accepted balance" 4
    (h.Sched.export ~flow:0).Sched.credit

let test_cifq_lag_carry () =
  (* CIF-Q rounds the virtual-time-denominated lag to its integral
     accounting; export then returns exactly what was accepted. *)
  let flows =
    Array.init 2 (fun id -> Wfs_core.Params.flow ~id ~weight:1. ())
  in
  let entry = Registry.get "CIF-Q-P" in
  let sched = entry.Registry.make flows in
  let h = Option.get sched.Sched.handoff in
  let acc = h.Sched.import ~flow:0 { Sched.lag = 2.4; credit = 0 } in
  Alcotest.(check (float 0.)) "lag rounds to integral" 2. acc.Sched.lag;
  Alcotest.(check (float 0.)) "re-export returns the accepted lag" 2.
    (h.Sched.export ~flow:0).Sched.lag;
  Alcotest.(check int) "cifq carries no credit" 0 acc.Sched.credit

(* --- Sharding: jobs-invariance of a mobile multi-cell run --- *)

let test_jobs_invariance () =
  let spec =
    Spec.of_string_exn
      "example:2 | WPS | seed=11 | horizon=6000 | cells=4,mobility=0.05,epoch=200"
  in
  let run jobs =
    let t = Topology.of_spec spec in
    Topology.run ~jobs t;
    ( Wfs_util.Json.to_string (M.to_json (Topology.metrics t)),
      Topology.homes t,
      Topology.handoffs t,
      Wfs_util.Json.to_string
        (Wfs_obs.Instruments.to_json (Topology.instruments t)) )
  in
  let m1, h1, n1, i1 = run 1 in
  let m2, h2, n2, i2 = run 2 in
  let m4, h4, n4, i4 = run 4 in
  Alcotest.(check string) "metrics jobs 1=2" m1 m2;
  Alcotest.(check string) "metrics jobs 2=4" m2 m4;
  Alcotest.(check (array int)) "homes jobs 1=2" h1 h2;
  Alcotest.(check (array int)) "homes jobs 2=4" h2 h4;
  Alcotest.(check int) "handoffs jobs 1=2" n1 n2;
  Alcotest.(check int) "handoffs jobs 2=4" n2 n4;
  Alcotest.(check string) "instruments jobs 1=2" i1 i2;
  Alcotest.(check string) "instruments jobs 2=4" i2 i4

(* --- Dispatch guards --- *)

let test_exec_rejects_topo () =
  let spec =
    Spec.make ~seed:1 ~horizon:100
      ~topo:(Spec.topo ~cells:2 ~mobility:0. ~epoch:10)
      ~sched:"WPS" (Spec.example 1)
  in
  Alcotest.check_raises "Exec.run refuses topology specs"
    (Invalid_argument
       "Exec.run: spec has a topology clause; run it through \
        Wfs_topo.Topology") (fun () -> ignore (Exec.run spec))

let test_of_spec_requires_topo () =
  let spec = Spec.make ~seed:1 ~horizon:100 ~sched:"WPS" (Spec.example 1) in
  Alcotest.check_raises "Topology.of_spec needs a topology clause"
    (Invalid_argument "Topology.of_spec: spec has no topology clause")
    (fun () -> ignore (Topology.of_spec spec))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_spec_roundtrip;
    Alcotest.test_case "old spec grammar parses unchanged" `Quick
      test_old_grammar_unchanged;
    Alcotest.test_case "topology clause parses and round-trips" `Quick
      test_topo_clause_parses;
    Alcotest.test_case "malformed topology clauses are rejected" `Quick
      test_topo_clause_rejects;
    QCheck_alcotest.to_alcotest prop_zero_mobility_identity;
    Alcotest.test_case "full-mobility run completes with exact handoff count"
      `Quick test_full_mobility_completes;
    Alcotest.test_case "wps credit survives a forced handoff" `Quick
      test_wps_credit_carry;
    Alcotest.test_case "wps import clamps to the Section 7 caps" `Quick
      test_wps_import_clamps;
    Alcotest.test_case "cifq lag carry rounds and re-exports" `Quick
      test_cifq_lag_carry;
    Alcotest.test_case "mobile multi-cell run is jobs-invariant" `Quick
      test_jobs_invariance;
    Alcotest.test_case "exec rejects topology specs" `Quick
      test_exec_rejects_topo;
    Alcotest.test_case "of_spec requires a topology clause" `Quick
      test_of_spec_requires_topo;
  ]
