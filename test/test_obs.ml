(* Observability suite: wfs-trace/1 round-trips (qcheck bit-exact,
   torn-tail tolerance, corruption refusal), deterministic positional
   merge of sharded instrument registries across --jobs counts, flight
   recorder capacity/eviction, fault reports carrying recent events, and
   the lockstep property — a fully probed run produces byte-identical
   metrics to an unprobed one. *)

module Error = Wfs_util.Error
module Json = Wfs_util.Json
module Spec = Wfs_runner.Spec
module Exec = Wfs_runner.Exec
module Pool = Wfs_runner.Pool
module Trace = Wfs_obs.Trace
module Sink = Wfs_obs.Sink
module Instruments = Wfs_obs.Instruments
module Probe = Wfs_obs.Probe
module Tracelog = Wfs_sim.Tracelog

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let with_temp_file ?(suffix = ".trace") f =
  let path = Filename.temp_file "wfs_obs" suffix in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* --- generators --- *)

let float_gen =
  (* Ordinary magnitudes plus every special the codec must preserve. *)
  QCheck.Gen.(
    frequency
      [
        (8, float_bound_exclusive 1e6);
        (2, map Float.neg (float_bound_exclusive 1e6));
        (1, return Float.nan);
        (1, return Float.infinity);
        (1, return Float.neg_infinity);
        (1, return 0.1);
      ])

let flow_gen =
  QCheck.Gen.(
    map
      (fun ((queue, good), (tag, credit)) -> { Trace.queue; good; tag; credit })
      (pair
         (pair (0 -- 1000) bool)
         (pair (opt float_gen) (opt (-100 -- 100)))))

let sample_gen =
  QCheck.Gen.(
    map
      (fun ((slot, selected), ((vt, lag), flows)) ->
        {
          Trace.slot;
          selected;
          virtual_time = vt;
          lag_sum = lag;
          flows = Array.of_list flows;
        })
      (pair
         (pair (0 -- 1_000_000) (opt (0 -- 32)))
         (pair
            (pair (opt float_gen) (opt (-1000 -- 1000)))
            (list_size (1 -- 8) flow_gen))))

let sample_arb = QCheck.make sample_gen

(* --- wfs-trace/1 round-trips --- *)

let prop_sample_roundtrip =
  QCheck.Test.make ~name:"trace sample JSONL round-trip is bit-exact"
    ~count:500 sample_arb (fun s ->
      match Trace.sample_of_string (Trace.sample_to_string s) with
      | Some s' -> Trace.sample_equal s s'
      | None -> false)

let prop_header_roundtrip =
  QCheck.Test.make ~name:"trace header round-trip" ~count:200
    QCheck.(pair (1 -- 16) (1 -- 1000))
    (fun (n_flows, stride) ->
      let hdr =
        Trace.header ~stride
          ~params:[ ("sched", Json.Str "WPS"); ("seed", Json.Int 7) ]
          ~n_flows ()
      in
      match Trace.header_of_json (Trace.header_to_json hdr) with
      | Some h' -> Trace.header_equal hdr h'
      | None -> false)

let write_trace path hdr samples =
  let sink = Sink.jsonl ~path hdr in
  List.iter (Sink.write sink) samples
  (* leave closing to the caller when testing torn writes *);
  Sink.close sink

let sample ~slot =
  {
    Trace.slot;
    selected = Some 0;
    virtual_time = Some (float_of_int slot *. 0.5);
    lag_sum = None;
    flows = [| { Trace.queue = slot; good = true; tag = None; credit = None } |];
  }

let test_load_tolerates_torn_tail () =
  with_temp_file (fun path ->
      let hdr = Trace.header ~n_flows:1 () in
      write_trace path hdr [ sample ~slot:0; sample ~slot:1; sample ~slot:2 ];
      (* Simulate an interrupted append: half a JSON object, no newline. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"slot\":3,\"sel";
      close_out oc;
      match Trace.load ~path with
      | Ok { hdr = h; samples } ->
          check_bool "header survives" true (Trace.header_equal hdr h);
          check_int "torn final line dropped" 2
            (List.length samples - 1);
          check_bool "remaining samples intact" true
            (List.for_all2 Trace.sample_equal samples
               [ sample ~slot:0; sample ~slot:1; sample ~slot:2 ])
      | Error e -> Alcotest.failf "load failed: %s" (Error.to_string e))

let test_load_refuses_mid_file_corruption () =
  with_temp_file (fun path ->
      let hdr = Trace.header ~n_flows:1 () in
      let oc = open_out path in
      output_string oc (Trace.header_to_string hdr);
      output_char oc '\n';
      output_string oc (Trace.sample_to_string (sample ~slot:0));
      output_char oc '\n';
      output_string oc "not json at all\n";
      output_string oc (Trace.sample_to_string (sample ~slot:2));
      output_char oc '\n';
      close_out oc;
      match Trace.load ~path with
      | Ok _ -> Alcotest.fail "corrupt middle line must be refused"
      | Error e ->
          check_str "kind" "bad-spec" (Error.kind_to_string e.Error.kind))

let test_load_refuses_flow_count_mismatch () =
  with_temp_file (fun path ->
      let hdr = Trace.header ~n_flows:2 () in
      let oc = open_out path in
      output_string oc (Trace.header_to_string hdr);
      output_char oc '\n';
      (* one flow in the sample, two promised by the header *)
      output_string oc (Trace.sample_to_string (sample ~slot:0));
      output_char oc '\n';
      output_string oc (Trace.sample_to_string (sample ~slot:1));
      output_char oc '\n';
      close_out oc;
      match Trace.load ~path with
      | Ok _ -> Alcotest.fail "flow-count mismatch must be refused"
      | Error e ->
          check_str "kind" "bad-spec" (Error.kind_to_string e.Error.kind))

let test_sink_contracts () =
  with_temp_file ~suffix:".csv" (fun path ->
      let hdr = Trace.header ~n_flows:1 () in
      let sink = Sink.csv ~path hdr in
      Sink.write sink (sample ~slot:0);
      Sink.write sink (sample ~slot:1);
      check_int "written counts samples" 2 (Sink.written sink);
      Sink.close sink;
      Sink.close sink (* idempotent *);
      (match Sink.write sink (sample ~slot:2) with
      | () -> Alcotest.fail "write after close must be Bad_config"
      | exception Error.Error e ->
          check_str "kind" "bad-config" (Error.kind_to_string e.Error.kind));
      let wrong =
        { (sample ~slot:3) with Trace.flows = [||] }
      in
      let sink2 = Sink.jsonl ~path hdr in
      (match Sink.write sink2 wrong with
      | () -> Alcotest.fail "width mismatch must be Bad_config"
      | exception Error.Error e ->
          check_str "kind" "bad-config" (Error.kind_to_string e.Error.kind));
      Sink.close sink2)

(* --- sharded instruments: deterministic merge across jobs --- *)

let run_registry seed =
  let reg = Instruments.create () in
  let spec = Spec.make ~seed ~horizon:2000 ~sched:"SwapA-P" (Spec.example 1) in
  let n_flows = Array.length (Exec.setups_of spec) in
  let _metrics =
    Exec.run
      ~probe:(fun sched -> Probe.create ~instruments:reg ~n_flows sched)
      spec
  in
  reg

let merged_snapshot ~jobs =
  let regs = Pool.map ~jobs run_registry (Array.init 6 (fun k -> 40 + k)) in
  let merged = Instruments.merge_all (Array.to_list regs) in
  ( Wfs_util.Tablefmt.rows (Instruments.to_table merged),
    Json.to_string ~pretty:false (Instruments.to_json merged) )

let test_merge_is_jobs_invariant () =
  let rows1, json1 = merged_snapshot ~jobs:1 in
  let rows2, json2 = merged_snapshot ~jobs:2 in
  let rows4, json4 = merged_snapshot ~jobs:4 in
  check_bool "rows jobs=1 vs jobs=2" true (rows1 = rows2);
  check_bool "rows jobs=1 vs jobs=4" true (rows1 = rows4);
  check_str "json jobs=1 vs jobs=2" json1 json2;
  check_str "json jobs=1 vs jobs=4" json1 json4

let test_merge_refuses_mismatch () =
  let a = Instruments.create () in
  let _ = Instruments.counter a "x" in
  let b = Instruments.create () in
  let _ = Instruments.gauge b "x" in
  (match Instruments.merge a b with
  | _ -> Alcotest.fail "kind mismatch must be Bad_config"
  | exception Error.Error e ->
      check_str "kind" "bad-config" (Error.kind_to_string e.Error.kind));
  let c = Instruments.create () in
  let _ = Instruments.counter c "y" in
  match Instruments.merge a c with
  | _ -> Alcotest.fail "name mismatch must be Bad_config"
  | exception Error.Error e ->
      check_str "kind" "bad-config" (Error.kind_to_string e.Error.kind)

let test_instruments_json_roundtrip () =
  let reg = Instruments.create () in
  let c = Instruments.counter reg "events" in
  let g = Instruments.gauge ~policy:Instruments.Last reg "vt" in
  let unset = Instruments.gauge reg "never-set" in
  let h = Instruments.histogram reg "delay" in
  Instruments.add c 41;
  Instruments.incr c;
  Instruments.set g 3.25;
  Instruments.set g 7.5;
  ignore unset;
  List.iter (Instruments.observe h) [ 1.; 2.; 2.; 10. ];
  let j = Instruments.to_json reg in
  match Instruments.of_json j with
  | None -> Alcotest.fail "of_json rejected its own to_json"
  | Some reg' ->
      check_str "bit-exact round-trip"
        (Json.to_string ~pretty:false j)
        (Json.to_string ~pretty:false (Instruments.to_json reg'));
      check_bool "rendered tables agree" true
        (Wfs_util.Tablefmt.rows (Instruments.to_table reg)
        = Wfs_util.Tablefmt.rows (Instruments.to_table reg'))

(* --- flight recorder --- *)

let test_flight_recorder_capacity_and_eviction () =
  let tr = Tracelog.create ~capacity:4 () in
  check_bool "capacity accessor" true (Tracelog.capacity tr = Some 4);
  for slot = 0 to 9 do
    Tracelog.record tr ~slot (Tracelog.Arrival { flow = 0; seq = slot })
  done;
  check_int "ring retains capacity entries" 4 (Tracelog.length tr);
  let slots = List.map (fun e -> e.Tracelog.slot) (Tracelog.events tr) in
  check_bool "oldest evicted, order chronological" true (slots = [ 6; 7; 8; 9 ]);
  match Tracelog.create ~capacity:0 () with
  | _ -> Alcotest.fail "capacity 0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_fault_report_carries_flight_events () =
  let spec = Spec.make ~seed:7 ~horizon:5000 ~sched:"SwapA-P" (Spec.example 1) in
  let observer slot _ =
    if slot = 1500 then Error.sim_fault ~who:"test_obs" "injected fault"
  in
  match Exec.run_outcome ~observer ~flight_recorder:8 spec with
  | Ok _ -> Alcotest.fail "injected fault must fail the run"
  | Error e ->
      check_str "kind" "sim-fault" (Error.kind_to_string e.Error.kind);
      let ctx k = List.assoc_opt k e.Error.context in
      (match ctx "flight-recorder-events" with
      | Some n ->
          check_bool "recorder retained events" true (int_of_string n > 0);
          check_bool "recorder bounded by capacity" true (int_of_string n <= 8)
      | None -> Alcotest.fail "missing flight-recorder-events context");
      (match ctx "flight-recorder" with
      | Some dump ->
          (* Entries render as "s<slot> <event>" and the ring only holds
             slots near the fault. *)
          check_bool "dump is non-empty" true (String.length dump > 0);
          check_bool "dump mentions a recent slot" true
            (let re_slot = "s1" in
             let len = String.length dump and plen = String.length re_slot in
             let rec scan i =
               i + plen <= len
               && (String.equal (String.sub dump i plen) re_slot || scan (i + 1))
             in
             scan 0)
      | None -> Alcotest.fail "missing flight-recorder context")

let test_flight_recorder_excludes_trace () =
  let spec = Spec.make ~seed:7 ~horizon:100 ~sched:"SwapA-P" (Spec.example 1) in
  match
    Exec.run_outcome ~trace:(Tracelog.create ()) ~flight_recorder:4 spec
  with
  | Ok _ -> Alcotest.fail "trace + flight_recorder must be Bad_config"
  | Error e -> check_str "kind" "bad-config" (Error.kind_to_string e.Error.kind)

(* --- lockstep: probing must not change the simulation --- *)

let test_probed_run_is_lockstep () =
  let spec = Spec.make ~seed:11 ~horizon:4000 ~sched:"SwapA-P" (Spec.example 1) in
  let bare = Exec.run spec in
  with_temp_file (fun path ->
      let reg = Instruments.create () in
      let n_flows = Array.length (Exec.setups_of spec) in
      let hdr = Trace.header ~stride:3 ~n_flows () in
      let sink = Sink.jsonl ~path hdr in
      let probed =
        Exec.run
          ~probe:(fun sched ->
            Probe.create ~stride:3 ~sinks:[ sink ] ~instruments:reg ~n_flows
              sched)
          spec
      in
      Sink.close sink;
      check_str "metrics byte-identical with probing on"
        (Json.to_string ~pretty:false (Wfs_core.Metrics.to_json bare))
        (Json.to_string ~pretty:false (Wfs_core.Metrics.to_json probed));
      (* And the trace itself is loadable with the expected cadence. *)
      match Trace.load ~path with
      | Ok { samples; _ } ->
          check_int "stride-3 sample count" ((4000 + 2) / 3)
            (List.length samples)
      | Error e -> Alcotest.failf "trace load failed: %s" (Error.to_string e))

let test_probe_validation () =
  let spec = Spec.make ~seed:1 ~horizon:10 ~sched:"SwapA-P" (Spec.example 1) in
  match
    Exec.run
      ~probe:(fun sched -> Probe.create ~stride:0 ~n_flows:2 sched)
      spec
  with
  | _ -> Alcotest.fail "stride 0 must be Bad_config"
  | exception Error.Error e ->
      check_str "kind" "bad-config" (Error.kind_to_string e.Error.kind)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_sample_roundtrip;
    QCheck_alcotest.to_alcotest prop_header_roundtrip;
    Alcotest.test_case "load tolerates a torn final line" `Quick
      test_load_tolerates_torn_tail;
    Alcotest.test_case "load refuses mid-file corruption" `Quick
      test_load_refuses_mid_file_corruption;
    Alcotest.test_case "load refuses flow-count mismatch" `Quick
      test_load_refuses_flow_count_mismatch;
    Alcotest.test_case "sink write/close contracts" `Quick test_sink_contracts;
    Alcotest.test_case "sharded merge is jobs-invariant" `Quick
      test_merge_is_jobs_invariant;
    Alcotest.test_case "merge refuses mismatched registries" `Quick
      test_merge_refuses_mismatch;
    Alcotest.test_case "instruments JSON round-trip" `Quick
      test_instruments_json_roundtrip;
    Alcotest.test_case "flight recorder capacity and eviction" `Quick
      test_flight_recorder_capacity_and_eviction;
    Alcotest.test_case "fault report carries flight events" `Quick
      test_fault_report_carries_flight_events;
    Alcotest.test_case "flight recorder excludes full trace" `Quick
      test_flight_recorder_excludes_trace;
    Alcotest.test_case "probed run is lockstep with unprobed" `Quick
      test_probed_run_is_lockstep;
    Alcotest.test_case "probe validates stride" `Quick test_probe_validation;
  ]
