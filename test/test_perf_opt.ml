(* Tests for the perf-optimization layer: the Deque / Flow_heap / Flow_set
   containers against simple reference models, and differential lockstep
   drives pinning each backlog-indexed scheduler to its naive O(n)
   reference implementation (the [?naive:true] mode). *)

module Rng = Wfs_util.Rng
module Deque = Wfs_util.Deque
module Flow_heap = Wfs_util.Flow_heap
module Flow_set = Wfs_util.Flow_set
module Packet = Wfs_traffic.Packet
module Core = Wfs_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Deque vs list model --- *)

(* Ops: 0 push_back, 1 push_front, 2 pop_front, 3 pop_back. *)
let apply_deque_op dq model (op, x) =
  match op mod 4 with
  | 0 ->
      Deque.push_back dq x;
      model @ [ x ]
  | 1 ->
      Deque.push_front dq x;
      x :: model
  | 2 -> (
      let popped = Deque.pop_front dq in
      match model with
      | [] ->
          assert (popped = None);
          []
      | h :: tl ->
          assert (popped = Some h);
          tl)
  | _ -> (
      let popped = Deque.pop_back dq in
      match List.rev model with
      | [] ->
          assert (popped = None);
          []
      | h :: tl ->
          assert (popped = Some h);
          List.rev tl)

let prop_deque_model =
  QCheck.Test.make ~name:"deque matches list model under mixed ops" ~count:300
    QCheck.(list (pair small_int small_int))
    (fun ops ->
      let dq = Deque.create ~capacity:1 ~dummy:(-1) () in
      let final =
        List.fold_left (fun model op -> apply_deque_op dq model op) [] ops
      in
      Deque.to_list dq = final && Deque.length dq = List.length final)

let prop_deque_remove_range =
  QCheck.Test.make ~name:"deque remove_range matches list splice" ~count:300
    QCheck.(triple (list small_int) small_int small_int)
    (fun (xs, pos, len) ->
      let dq = Deque.create ~dummy:(-1) () in
      (* Mix of front/back pushes so the ring wraps in interesting ways. *)
      List.iteri
        (fun i x -> if i mod 3 = 0 then Deque.push_front dq x else Deque.push_back dq x)
        xs;
      let model = Deque.to_list dq in
      let n = List.length model in
      let pos = if n = 0 then 0 else pos mod n in
      let len = if n - pos = 0 then 0 else len mod (n - pos) in
      Deque.remove_range dq ~pos ~len;
      let expect =
        List.filteri (fun i _ -> i < pos || i >= pos + len) model
      in
      Deque.to_list dq = expect)

let test_deque_get_and_peeks () =
  let dq = Deque.create ~capacity:2 ~dummy:0 () in
  for i = 1 to 10 do
    Deque.push_back dq i
  done;
  check_int "front" 1 (Option.get (Deque.peek_front dq));
  check_int "back" 10 (Option.get (Deque.peek_back dq));
  for i = 0 to 9 do
    check_int "get" (i + 1) (Deque.get dq i)
  done;
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Deque.get: index 10 out of bounds (length 10)")
    (fun () -> ignore (Deque.get dq 10));
  Deque.clear dq;
  check_bool "cleared" true (Deque.is_empty dq)

(* --- Flow_heap vs naive model --- *)

(* Model: tag array with nan = absent; the reference minimum is the naive
   ascending-id scan keeping the first strictly smaller tag. *)
let model_min tags accept =
  let best = ref (-1) in
  Array.iteri
    (fun i tag ->
      if (not (Float.is_nan tag)) && accept i then
        match !best with
        | -1 -> best := i
        | b -> if Float.compare tag tags.(b) < 0 then best := i)
    tags;
  !best

let prop_flow_heap_model =
  QCheck.Test.make ~name:"flow_heap min/min_accept match naive scan" ~count:300
    QCheck.(pair small_int (list (triple small_int small_int bool)))
    (fun (seed, ops) ->
      let n = 16 in
      let h = Flow_heap.create ~n in
      let tags = Array.make n Float.nan in
      let rng = Rng.create seed in
      List.for_all
        (fun (flow, tag_raw, remove) ->
          let flow = flow mod n in
          if remove then begin
            Flow_heap.remove h ~flow;
            tags.(flow) <- Float.nan
          end
          else begin
            (* Small tag universe to force plenty of ties. *)
            let tag = float_of_int (tag_raw mod 8) /. 4. in
            Flow_heap.set h ~flow ~tag;
            tags.(flow) <- tag
          end;
          let mask = Array.init n (fun _ -> Rng.float rng < 0.5) in
          let accept i = mask.(i) in
          Flow_heap.min h = model_min tags (fun _ -> true)
          && Flow_heap.min_accept h ~accept = model_min tags accept
          (* min_accept must not disturb the heap. *)
          && Flow_heap.min h = model_min tags (fun _ -> true)
          && Flow_heap.cardinal h
             = Array.fold_left
                 (fun acc t -> if Float.is_nan t then acc else acc + 1)
                 0 tags)
        ops)

let test_flow_heap_basics () =
  let h = Flow_heap.create ~n:4 in
  check_int "empty min" (-1) (Flow_heap.min h);
  Flow_heap.set h ~flow:2 ~tag:1.0;
  Flow_heap.set h ~flow:1 ~tag:1.0;
  (* Equal tags: lowest flow id wins. *)
  check_int "tie to lower id" 1 (Flow_heap.min h);
  Flow_heap.set h ~flow:1 ~tag:2.0;
  check_int "retag reorders" 2 (Flow_heap.min h);
  Flow_heap.remove h ~flow:2;
  check_int "after remove" 1 (Flow_heap.min h);
  check_bool "mem" true (Flow_heap.mem h ~flow:1);
  check_bool "not mem" false (Flow_heap.mem h ~flow:2);
  check_int "reject all" (-1) (Flow_heap.min_accept h ~accept:(fun _ -> false))

(* --- Flow_set vs sorted-list model --- *)

let prop_flow_set_model =
  QCheck.Test.make ~name:"flow_set matches sorted-set model" ~count:300
    QCheck.(list (pair small_int bool))
    (fun ops ->
      let n = 24 in
      let s = Flow_set.create ~n in
      let model = ref [] in
      List.for_all
        (fun (x, add) ->
          let x = x mod n in
          if add then begin
            Flow_set.add s x;
            if not (List.mem x !model) then
              model := List.sort compare (x :: !model)
          end
          else begin
            Flow_set.remove s x;
            model := List.filter (fun y -> y <> x) !model
          end;
          Flow_set.elements s = !model
          && Flow_set.cardinal s = List.length !model
          && List.for_all (fun y -> Flow_set.mem s y) !model
          (* find_from: position of the first member >= x, cardinal if none. *)
          &&
          let pos = Flow_set.find_from s x in
          let expect =
            let rec count i = function
              | [] -> i
              | y :: tl -> if y >= x then i else count (i + 1) tl
            in
            count 0 !model
          in
          pos = expect)
        ops)

(* --- Differential scheduler drives: naive vs indexed --- *)

(* Lockstep driver: both instances receive byte-identical arrival,
   channel-prediction, transmission-outcome, and drop sequences; every
   selection, head packet, dropped-packet list, and queue length must agree
   at every slot.  The prediction table is pure, so differing predicate
   call orders between the two select implementations are unobservable. *)
let drive_pair ?(horizon = 300) ~n_flows ~seed make =
  let rng = Rng.create seed in
  let a : Core.Wireless_sched.instance = make () in
  let b : Core.Wireless_sched.instance = make () in
  let seqs = Array.make n_flows 0 in
  let retx_limit = 2 in
  let fail_ctx fmt = Printf.ksprintf (fun m -> Alcotest.fail (a.name ^ ": " ^ m)) fmt in
  for slot = 0 to horizon - 1 do
    for f = 0 to n_flows - 1 do
      if Rng.float rng < 0.35 then begin
        let mk () = Packet.make ~flow:f ~seq:seqs.(f) ~arrival:slot () in
        a.enqueue ~slot (mk ());
        b.enqueue ~slot (mk ());
        seqs.(f) <- seqs.(f) + 1
      end
    done;
    if Rng.float rng < 0.08 then begin
      let bound = 3 + Rng.int rng 20 in
      for f = 0 to n_flows - 1 do
        let da = a.drop_expired ~flow:f ~now:slot ~bound in
        let db = b.drop_expired ~flow:f ~now:slot ~bound in
        let seq_of (p : Packet.t) = p.seq in
        if List.map seq_of da <> List.map seq_of db then
          fail_ctx "slot %d: drop_expired diverged on flow %d" slot f
      done
    end;
    let good = Array.init n_flows (fun _ -> Rng.float rng < 0.7) in
    let actual_good = Rng.float rng < 0.75 in
    let predicted_good i = good.(i) in
    let sa = a.select ~slot ~predicted_good in
    let sb = b.select ~slot ~predicted_good in
    if sa <> sb then
      fail_ctx "slot %d: selected %s vs %s" slot
        (match sa with None -> "-" | Some f -> string_of_int f)
        (match sb with None -> "-" | Some f -> string_of_int f);
    (match sa with
    | None -> ()
    | Some f -> (
        match (a.head f, b.head f) with
        | Some pa, Some pb ->
            if pa.Packet.seq <> pb.Packet.seq then
              fail_ctx "slot %d: head seq diverged on flow %d" slot f;
            if actual_good then begin
              a.complete ~flow:f;
              b.complete ~flow:f
            end
            else begin
              pa.Packet.attempts <- pa.Packet.attempts + 1;
              pb.Packet.attempts <- pb.Packet.attempts + 1;
              a.fail ~flow:f;
              b.fail ~flow:f;
              if pa.Packet.attempts > retx_limit then begin
                a.drop_head ~flow:f;
                b.drop_head ~flow:f
              end
            end
        | _ -> fail_ctx "slot %d: selected flow %d with empty queue" slot f));
    a.on_slot_end ~slot;
    b.on_slot_end ~slot;
    for f = 0 to n_flows - 1 do
      if a.queue_length f <> b.queue_length f then
        fail_ctx "slot %d: queue length diverged on flow %d" slot f
    done
  done;
  true

let gen_flows rng n =
  Array.init n (fun id ->
      Core.Params.flow ~id ~weight:(0.5 +. float_of_int (Rng.int rng 4)) ())

let scheduler_pair_prop name make_pair =
  QCheck.Test.make ~name ~count:40
    QCheck.(pair small_int (2 -- 10))
    (fun (seed, n_flows) ->
      let rng = Rng.create (seed + (1000 * n_flows)) in
      let flows = gen_flows rng n_flows in
      drive_pair ~n_flows ~seed:(Rng.int rng 1_000_000) (make_pair rng flows))

(* Each make_pair returns a thunk producing alternately the naive and the
   indexed instance; drive_pair calls it exactly twice. *)
let alternating make_naive make_fast =
  let first = ref true in
  fun () ->
    if !first then begin
      first := false;
      make_naive ()
    end
    else make_fast ()

let prop_iwfq_differential =
  scheduler_pair_prop "IWFQ: naive scan == heap selection" (fun rng flows ->
      let wf2q = Rng.float rng < 0.5 in
      let params =
        { (Core.Params.iwfq_defaults ~n_flows:(Array.length flows)) with
          Core.Params.wf2q_selection = wf2q
        }
      in
      alternating
        (fun () -> Core.Iwfq.instance (Core.Iwfq.create ~params ~naive:true flows))
        (fun () -> Core.Iwfq.instance (Core.Iwfq.create ~params flows)))

let prop_cifq_differential =
  scheduler_pair_prop "CIF-Q: naive scan == heap selection" (fun rng flows ->
      let alpha = 0.25 *. float_of_int (Rng.int rng 5) in
      alternating
        (fun () -> Core.Cifq.instance (Core.Cifq.create ~alpha ~naive:true flows))
        (fun () -> Core.Cifq.instance (Core.Cifq.create ~alpha flows)))

let prop_wps_differential =
  scheduler_pair_prop "WPS: dense frame build == sparse frame build"
    (fun rng flows ->
      let params =
        match Rng.int rng 5 with
        | 0 -> Core.Params.blind_wrr
        | 1 -> Core.Params.wrr
        | 2 -> Core.Params.noswap ()
        | 3 -> Core.Params.swapw ()
        | _ -> Core.Params.swapa ()
      in
      alternating
        (fun () -> Core.Wps.instance (Core.Wps.create ~params ~naive:true flows))
        (fun () -> Core.Wps.instance (Core.Wps.create ~params flows)))

let prop_csdps_differential =
  scheduler_pair_prop "CSDPS: naive round-robin == indexed round-robin"
    (fun rng flows ->
      let backoff = 1 + Rng.int rng 15 in
      alternating
        (fun () -> Core.Csdps.instance (Core.Csdps.create ~backoff ~naive:true flows))
        (fun () -> Core.Csdps.instance (Core.Csdps.create ~backoff flows)))

(* --- Sparse spreading == dense spreading --- *)

let prop_frame_sparse_matches_dense =
  QCheck.Test.make ~name:"frame_sparse equals dense frame" ~count:300
    QCheck.(list_of_size Gen.(1 -- 12) (int_bound 5))
    (fun weights ->
      let dense = Array.of_list weights in
      let n = Array.length dense in
      let members = ref [] in
      for i = n - 1 downto 0 do
        if dense.(i) > 0 then members := i :: !members
      done;
      let flows = Array.of_list !members in
      let sparse_w = Array.map (fun i -> dense.(i)) flows in
      Core.Spreading.frame ~weights:dense
      = Core.Spreading.frame_sparse ~flows ~weights:sparse_w)

(* --- Null sources and static channels (simulator skip contracts) --- *)

let test_never_source () =
  let src = Wfs_traffic.Arrival.never () in
  check_bool "is_never" true (Wfs_traffic.Arrival.is_never src);
  for slot = 0 to 99 do
    check_int "no arrivals" 0 (Wfs_traffic.Arrival.arrivals src ~slot)
  done;
  check_bool "poisson not never" false
    (Wfs_traffic.Arrival.is_never
       (Wfs_traffic.Poisson.create ~rng:(Rng.create 1) ~rate:0.5))

let test_static_channel () =
  let ch = Wfs_channel.Channel.make_const ~label:"t" Wfs_channel.Channel.Good in
  check_bool "is_static" true (Wfs_channel.Channel.is_static ch);
  ignore (Wfs_channel.Channel.advance ch ~slot:0);
  check_bool "stays good" true
    (Wfs_channel.Channel.state_is_good (Wfs_channel.Channel.state ch));
  let ef = Wfs_channel.Error_free.create () in
  check_bool "error-free is static" true (Wfs_channel.Channel.is_static ef)

(* --- RNG-stream equivalence of pre-sampling (event compression) ---

   The fast path replaces per-slot queries with [Arrival.next_event] and
   [Channel.advance_run] windows.  Byte-identity rests on both consuming
   exactly the draws the stepwise walk would — no draw early, none late —
   even when the walk is chopped into arbitrary windows, which is what a
   topo epoch barrier does when it dissolves a Session mid-stream and the
   next Session resumes the same source/channel objects.  Each property
   drives twin objects (same seed) stepwise vs. windowed and then keeps
   stepping both past the horizon: the tails only agree if the window pass
   left the RNG stream in the stepwise position. *)

let source_of_kind kind seed =
  let rng = Rng.create seed in
  match kind with
  | 0 -> Wfs_traffic.Poisson.create ~rng ~rate:0.3
  | 1 -> Wfs_traffic.Cbr.create ~interarrival:3.5 ()
  | 2 -> Wfs_traffic.Onoff.create ~rng ~p_on_to_off:0.2 ~p_off_to_on:0.1 ()
  | 3 -> Wfs_traffic.Pareto_onoff.create ~rng ~mean_on:4. ~mean_off:12. ()
  | _ -> Wfs_traffic.Mmpp.create ~rng ~on_rate:0.6 ()

let prop_arrival_next_event_equiv =
  QCheck.Test.make ~name:"arrival next_event consumes the stepwise draws"
    ~count:100
    QCheck.(pair (0 -- 4) small_int)
    (fun (kind, seed) ->
      let horizon = 200 in
      let a = source_of_kind kind seed in
      let b = source_of_kind kind seed in
      let step_counts =
        Array.init horizon (fun slot -> Wfs_traffic.Arrival.arrivals a ~slot)
      in
      let ev_counts = Array.make horizon 0 in
      let wrng = Rng.create (seed + 7919) in
      let from = ref 0 in
      while !from < horizon do
        let upto = min horizon (!from + 1 + Rng.int wrng 40) in
        let s = ref !from in
        let continue = ref true in
        while !continue do
          match Wfs_traffic.Arrival.next_event b ~from:!s ~upto with
          | -1 -> continue := false
          | e ->
              ev_counts.(e) <- Wfs_traffic.Arrival.pending_count b;
              s := e + 1;
              if !s >= upto then continue := false
        done;
        from := upto
      done;
      let tail_a =
        Array.init 50 (fun i ->
            Wfs_traffic.Arrival.arrivals a ~slot:(horizon + i))
      in
      let tail_b =
        Array.init 50 (fun i ->
            Wfs_traffic.Arrival.arrivals b ~slot:(horizon + i))
      in
      step_counts = ev_counts && tail_a = tail_b)

let channel_of_kind kind seed =
  let rng = Rng.create seed in
  match kind with
  | 0 -> Wfs_channel.Gilbert_elliott.create ~rng ~pg:0.1 ~pe:0.3 ()
  | 1 -> Wfs_channel.Bernoulli_ch.create ~rng ~good_prob:0.7
  | _ ->
      Wfs_channel.Markov_ch.create ~rng
        {
          Wfs_channel.Markov_ch.transition =
            [| [| 0.9; 0.1 |]; [| 0.4; 0.6 |] |];
          good_prob = [| 0.95; 0.2 |];
        }

let prop_channel_advance_run_equiv =
  QCheck.Test.make ~name:"channel advance_run matches stepwise advance"
    ~count:100
    QCheck.(pair (0 -- 2) small_int)
    (fun (kind, seed) ->
      let horizon = 200 in
      let a = channel_of_kind kind seed in
      let b = channel_of_kind kind seed in
      let states =
        Array.init horizon (fun slot -> Wfs_channel.Channel.advance a ~slot)
      in
      let wrng = Rng.create (seed + 104729) in
      let ok = ref true in
      let from = ref 0 in
      while !from < horizon do
        let upto = min horizon (!from + 1 + Rng.int wrng 30) in
        let st = Wfs_channel.Channel.advance_run b ~from:!from ~slot:(upto - 1) in
        if st <> states.(upto - 1) then ok := false;
        if
          upto - 1 > 0
          && Wfs_channel.Channel.previous_state b <> states.(upto - 2)
        then ok := false;
        from := upto
      done;
      let tail_a =
        Array.init 50 (fun i ->
            Wfs_channel.Channel.advance a ~slot:(horizon + i))
      in
      let tail_b =
        Array.init 50 (fun i ->
            Wfs_channel.Channel.advance b ~slot:(horizon + i))
      in
      !ok && tail_a = tail_b)

(* --- Event calendar model --- *)

let prop_event_cal_model =
  QCheck.Test.make ~name:"event_cal matches sorted-pair model" ~count:200
    QCheck.(pair (1 -- 16) (list (pair small_int small_int)))
    (fun (n, ops) ->
      let cal = Wfs_util.Event_cal.create ~n in
      let model = ref [] in
      let ok = ref true in
      let model_min () =
        List.fold_left
          (fun acc kv -> if kv < acc then kv else acc)
          (max_int, max_int) !model
      in
      let pop_checked () =
        let k, id = model_min () in
        if Wfs_util.Event_cal.min_key cal <> k then ok := false;
        if Wfs_util.Event_cal.pop cal <> id then ok := false;
        model := List.filter (fun (_, i) -> i <> id) !model
      in
      List.iter
        (fun (key, x) ->
          let id = x mod n in
          if List.exists (fun (_, i) -> i = id) !model then begin
            (* A second pending event for the same id must be rejected. *)
            (match Wfs_util.Event_cal.push cal ~key ~id with
            | () -> ok := false
            | exception Invalid_argument _ -> ());
            pop_checked ()
          end
          else begin
            Wfs_util.Event_cal.push cal ~key ~id;
            model := (key, id) :: !model
          end)
        ops;
      while !model <> [] do
        pop_checked ()
      done;
      !ok
      && Wfs_util.Event_cal.is_empty cal
      && Wfs_util.Event_cal.min_key cal = max_int)

(* --- Fast path vs. reference loop: full-run byte-identity --- *)

let metrics_fingerprint m =
  Wfs_util.Json.to_string (Core.Metrics.to_json m)

let run_example ?probe ~fast ~sched ~example ~horizon ~seed () =
  let spec =
    Wfs_runner.Spec.make ~seed ~horizon ~sched
      (Wfs_runner.Spec.example example)
  in
  metrics_fingerprint (Wfs_runner.Exec.run ?probe ~fast_path:fast spec)

let test_fast_path_full_run_identity () =
  List.iter
    (fun sched ->
      List.iter
        (fun example ->
          let r = run_example ~fast:false ~sched ~example ~horizon:1500 ~seed:11 () in
          let f = run_example ~fast:true ~sched ~example ~horizon:1500 ~seed:11 () in
          Alcotest.(check string)
            (Printf.sprintf "%s example %d" sched example)
            r f)
        [ 1; 2 ])
    [ "SwapA-P"; "IWFQ-P"; "CIF-Q-P"; "CSDPS" ]

(* A probed run silently degenerates to the reference loop; the knob must
   still be byte-transparent. *)
let test_fast_path_probed_degenerates () =
  let spec =
    Wfs_runner.Spec.make ~seed:11 ~horizon:1000 ~sched:"SwapA-P"
      (Wfs_runner.Spec.example 2)
  in
  let n_flows = Array.length (Wfs_runner.Exec.setups_of spec) in
  let probe sched = Wfs_obs.Probe.create ~n_flows sched in
  let r = run_example ~probe ~fast:false ~sched:"SwapA-P" ~example:2 ~horizon:1000 ~seed:11 () in
  let f = run_example ~probe ~fast:true ~sched:"SwapA-P" ~example:2 ~horizon:1000 ~seed:11 () in
  Alcotest.(check string) "probed run identical" r f

(* Multi-cell topology with chaos faults: the fast path must stay
   byte-identical to the reference across jobs counts — epoch barriers
   bound the skip horizon, so handoff dissolve/rebuild sees the same
   source/channel streams either way. *)
let test_topo_fast_jobs_identity () =
  let faults =
    match
      Wfs_runner.Spec.faults_of_string
        "crash:0.05;recover:0.5;lose:0.05;corrupt:0.05;blackout:0.05x50;exn:0;persist:0;budget:20"
    with
    | Ok plan -> plan
    | Error e -> Alcotest.fail e
  in
  let topo =
    Wfs_runner.Spec.with_faults faults
      (Wfs_runner.Spec.topo ~cells:3 ~mobility:0.3 ~epoch:100)
  in
  let spec =
    Wfs_runner.Spec.make ~seed:5 ~horizon:600 ~sched:"SwapA-P" ~topo
      (Wfs_runner.Spec.example 3)
  in
  let render ~fast ~jobs =
    let t = Wfs_topo.Topology.of_spec ~fast_path:fast spec in
    Wfs_topo.Topology.run ~jobs t;
    Printf.sprintf "%s;handoffs=%d"
      (metrics_fingerprint (Wfs_topo.Topology.metrics t))
      (Wfs_topo.Topology.handoffs t)
  in
  let reference = render ~fast:false ~jobs:1 in
  Alcotest.(check string) "reference jobs=4" reference (render ~fast:false ~jobs:4);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "fast jobs=%d" jobs)
        reference
        (render ~fast:true ~jobs))
    [ 1; 2; 4 ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_deque_model;
    QCheck_alcotest.to_alcotest prop_deque_remove_range;
    Alcotest.test_case "deque get/peek/clear" `Quick test_deque_get_and_peeks;
    QCheck_alcotest.to_alcotest prop_flow_heap_model;
    Alcotest.test_case "flow_heap basics" `Quick test_flow_heap_basics;
    QCheck_alcotest.to_alcotest prop_flow_set_model;
    QCheck_alcotest.to_alcotest prop_iwfq_differential;
    QCheck_alcotest.to_alcotest prop_cifq_differential;
    QCheck_alcotest.to_alcotest prop_wps_differential;
    QCheck_alcotest.to_alcotest prop_csdps_differential;
    QCheck_alcotest.to_alcotest prop_frame_sparse_matches_dense;
    Alcotest.test_case "never source" `Quick test_never_source;
    Alcotest.test_case "static channel" `Quick test_static_channel;
    QCheck_alcotest.to_alcotest prop_arrival_next_event_equiv;
    QCheck_alcotest.to_alcotest prop_channel_advance_run_equiv;
    QCheck_alcotest.to_alcotest prop_event_cal_model;
    Alcotest.test_case "fast path full-run identity" `Quick
      test_fast_path_full_run_identity;
    Alcotest.test_case "fast path probed degeneration" `Quick
      test_fast_path_probed_degenerates;
    Alcotest.test_case "topo+faults fast path identity" `Quick
      test_topo_fast_jobs_identity;
  ]
